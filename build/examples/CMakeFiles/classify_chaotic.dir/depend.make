# Empty dependencies file for classify_chaotic.
# This may be replaced when dependencies are built.
