file(REMOVE_RECURSE
  "CMakeFiles/classify_chaotic.dir/classify_chaotic.cc.o"
  "CMakeFiles/classify_chaotic.dir/classify_chaotic.cc.o.d"
  "classify_chaotic"
  "classify_chaotic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_chaotic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
