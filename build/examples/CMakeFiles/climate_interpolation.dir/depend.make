# Empty dependencies file for climate_interpolation.
# This may be replaced when dependencies are built.
