file(REMOVE_RECURSE
  "CMakeFiles/climate_interpolation.dir/climate_interpolation.cc.o"
  "CMakeFiles/climate_interpolation.dir/climate_interpolation.cc.o.d"
  "climate_interpolation"
  "climate_interpolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
