# Empty compiler generated dependencies file for attention_inspection.
# This may be replaced when dependencies are built.
