file(REMOVE_RECURSE
  "CMakeFiles/attention_inspection.dir/attention_inspection.cc.o"
  "CMakeFiles/attention_inspection.dir/attention_inspection.cc.o.d"
  "attention_inspection"
  "attention_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
