# Empty compiler generated dependencies file for diffode_cli.
# This may be replaced when dependencies are built.
