file(REMOVE_RECURSE
  "CMakeFiles/diffode_cli.dir/diffode_cli.cc.o"
  "CMakeFiles/diffode_cli.dir/diffode_cli.cc.o.d"
  "diffode_cli"
  "diffode_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffode_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
