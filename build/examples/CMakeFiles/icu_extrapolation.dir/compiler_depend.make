# Empty compiler generated dependencies file for icu_extrapolation.
# This may be replaced when dependencies are built.
