file(REMOVE_RECURSE
  "CMakeFiles/icu_extrapolation.dir/icu_extrapolation.cc.o"
  "CMakeFiles/icu_extrapolation.dir/icu_extrapolation.cc.o.d"
  "icu_extrapolation"
  "icu_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icu_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
