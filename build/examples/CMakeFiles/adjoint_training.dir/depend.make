# Empty dependencies file for adjoint_training.
# This may be replaced when dependencies are built.
