file(REMOVE_RECURSE
  "CMakeFiles/adjoint_training.dir/adjoint_training.cc.o"
  "CMakeFiles/adjoint_training.dir/adjoint_training.cc.o.d"
  "adjoint_training"
  "adjoint_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adjoint_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
