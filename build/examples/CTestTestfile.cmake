# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attention_inspection "/root/repo/build/examples/attention_inspection")
set_tests_properties(example_attention_inspection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_roundtrip "/root/repo/build/examples/diffode_cli" "generate" "--dataset=synthetic" "--out=cli_smoke.csv" "--count=12")
set_tests_properties(example_cli_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
