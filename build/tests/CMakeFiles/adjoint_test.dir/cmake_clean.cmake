file(REMOVE_RECURSE
  "CMakeFiles/adjoint_test.dir/adjoint_test.cc.o"
  "CMakeFiles/adjoint_test.dir/adjoint_test.cc.o.d"
  "adjoint_test"
  "adjoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adjoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
