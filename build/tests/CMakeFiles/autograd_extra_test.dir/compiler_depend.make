# Empty compiler generated dependencies file for autograd_extra_test.
# This may be replaced when dependencies are built.
