file(REMOVE_RECURSE
  "CMakeFiles/autograd_extra_test.dir/autograd_extra_test.cc.o"
  "CMakeFiles/autograd_extra_test.dir/autograd_extra_test.cc.o.d"
  "autograd_extra_test"
  "autograd_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
