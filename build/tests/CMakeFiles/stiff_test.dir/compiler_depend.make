# Empty compiler generated dependencies file for stiff_test.
# This may be replaced when dependencies are built.
