file(REMOVE_RECURSE
  "CMakeFiles/stiff_test.dir/stiff_test.cc.o"
  "CMakeFiles/stiff_test.dir/stiff_test.cc.o.d"
  "stiff_test"
  "stiff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stiff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
