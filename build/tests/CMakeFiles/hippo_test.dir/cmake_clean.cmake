file(REMOVE_RECURSE
  "CMakeFiles/hippo_test.dir/hippo_test.cc.o"
  "CMakeFiles/hippo_test.dir/hippo_test.cc.o.d"
  "hippo_test"
  "hippo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hippo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
