# Empty dependencies file for hippo_test.
# This may be replaced when dependencies are built.
