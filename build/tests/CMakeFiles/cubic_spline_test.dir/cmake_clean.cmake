file(REMOVE_RECURSE
  "CMakeFiles/cubic_spline_test.dir/cubic_spline_test.cc.o"
  "CMakeFiles/cubic_spline_test.dir/cubic_spline_test.cc.o.d"
  "cubic_spline_test"
  "cubic_spline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubic_spline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
