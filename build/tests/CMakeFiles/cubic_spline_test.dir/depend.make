# Empty dependencies file for cubic_spline_test.
# This may be replaced when dependencies are built.
