file(REMOVE_RECURSE
  "CMakeFiles/diffode_model_test.dir/diffode_model_test.cc.o"
  "CMakeFiles/diffode_model_test.dir/diffode_model_test.cc.o.d"
  "diffode_model_test"
  "diffode_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffode_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
