# Empty compiler generated dependencies file for diffode_model_test.
# This may be replaced when dependencies are built.
