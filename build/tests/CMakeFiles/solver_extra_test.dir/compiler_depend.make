# Empty compiler generated dependencies file for solver_extra_test.
# This may be replaced when dependencies are built.
