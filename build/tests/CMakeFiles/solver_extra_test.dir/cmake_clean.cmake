file(REMOVE_RECURSE
  "CMakeFiles/solver_extra_test.dir/solver_extra_test.cc.o"
  "CMakeFiles/solver_extra_test.dir/solver_extra_test.cc.o.d"
  "solver_extra_test"
  "solver_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
