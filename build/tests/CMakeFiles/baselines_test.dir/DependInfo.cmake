
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/diffode_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/diffode_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/diffode_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/diffode_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/hippo/CMakeFiles/diffode_hippo.dir/DependInfo.cmake"
  "/root/repo/build/src/sparsity/CMakeFiles/diffode_sparsity.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/diffode_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/diffode_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/diffode_core.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/diffode_train.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/diffode_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
