file(REMOVE_RECURSE
  "CMakeFiles/jump_ode_test.dir/jump_ode_test.cc.o"
  "CMakeFiles/jump_ode_test.dir/jump_ode_test.cc.o.d"
  "jump_ode_test"
  "jump_ode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jump_ode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
