# Empty dependencies file for jump_ode_test.
# This may be replaced when dependencies are built.
