file(REMOVE_RECURSE
  "CMakeFiles/dhs_test.dir/dhs_test.cc.o"
  "CMakeFiles/dhs_test.dir/dhs_test.cc.o.d"
  "dhs_test"
  "dhs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
