file(REMOVE_RECURSE
  "CMakeFiles/layer_norm_test.dir/layer_norm_test.cc.o"
  "CMakeFiles/layer_norm_test.dir/layer_norm_test.cc.o.d"
  "layer_norm_test"
  "layer_norm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_norm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
