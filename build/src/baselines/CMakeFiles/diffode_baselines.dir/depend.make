# Empty dependencies file for diffode_baselines.
# This may be replaced when dependencies are built.
