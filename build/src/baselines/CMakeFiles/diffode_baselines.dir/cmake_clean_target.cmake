file(REMOVE_RECURSE
  "libdiffode_baselines.a"
)
