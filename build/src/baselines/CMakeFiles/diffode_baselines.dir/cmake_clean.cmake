file(REMOVE_RECURSE
  "CMakeFiles/diffode_baselines.dir/attention_models.cc.o"
  "CMakeFiles/diffode_baselines.dir/attention_models.cc.o.d"
  "CMakeFiles/diffode_baselines.dir/gru_baselines.cc.o"
  "CMakeFiles/diffode_baselines.dir/gru_baselines.cc.o.d"
  "CMakeFiles/diffode_baselines.dir/hippo_models.cc.o"
  "CMakeFiles/diffode_baselines.dir/hippo_models.cc.o.d"
  "CMakeFiles/diffode_baselines.dir/jump_ode_base.cc.o"
  "CMakeFiles/diffode_baselines.dir/jump_ode_base.cc.o.d"
  "CMakeFiles/diffode_baselines.dir/latent_ode.cc.o"
  "CMakeFiles/diffode_baselines.dir/latent_ode.cc.o.d"
  "CMakeFiles/diffode_baselines.dir/neural_cde.cc.o"
  "CMakeFiles/diffode_baselines.dir/neural_cde.cc.o.d"
  "CMakeFiles/diffode_baselines.dir/nrde.cc.o"
  "CMakeFiles/diffode_baselines.dir/nrde.cc.o.d"
  "CMakeFiles/diffode_baselines.dir/ode_lstm.cc.o"
  "CMakeFiles/diffode_baselines.dir/ode_lstm.cc.o.d"
  "CMakeFiles/diffode_baselines.dir/zoo.cc.o"
  "CMakeFiles/diffode_baselines.dir/zoo.cc.o.d"
  "libdiffode_baselines.a"
  "libdiffode_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffode_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
