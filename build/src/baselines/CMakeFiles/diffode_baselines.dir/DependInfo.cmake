
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/attention_models.cc" "src/baselines/CMakeFiles/diffode_baselines.dir/attention_models.cc.o" "gcc" "src/baselines/CMakeFiles/diffode_baselines.dir/attention_models.cc.o.d"
  "/root/repo/src/baselines/gru_baselines.cc" "src/baselines/CMakeFiles/diffode_baselines.dir/gru_baselines.cc.o" "gcc" "src/baselines/CMakeFiles/diffode_baselines.dir/gru_baselines.cc.o.d"
  "/root/repo/src/baselines/hippo_models.cc" "src/baselines/CMakeFiles/diffode_baselines.dir/hippo_models.cc.o" "gcc" "src/baselines/CMakeFiles/diffode_baselines.dir/hippo_models.cc.o.d"
  "/root/repo/src/baselines/jump_ode_base.cc" "src/baselines/CMakeFiles/diffode_baselines.dir/jump_ode_base.cc.o" "gcc" "src/baselines/CMakeFiles/diffode_baselines.dir/jump_ode_base.cc.o.d"
  "/root/repo/src/baselines/latent_ode.cc" "src/baselines/CMakeFiles/diffode_baselines.dir/latent_ode.cc.o" "gcc" "src/baselines/CMakeFiles/diffode_baselines.dir/latent_ode.cc.o.d"
  "/root/repo/src/baselines/neural_cde.cc" "src/baselines/CMakeFiles/diffode_baselines.dir/neural_cde.cc.o" "gcc" "src/baselines/CMakeFiles/diffode_baselines.dir/neural_cde.cc.o.d"
  "/root/repo/src/baselines/nrde.cc" "src/baselines/CMakeFiles/diffode_baselines.dir/nrde.cc.o" "gcc" "src/baselines/CMakeFiles/diffode_baselines.dir/nrde.cc.o.d"
  "/root/repo/src/baselines/ode_lstm.cc" "src/baselines/CMakeFiles/diffode_baselines.dir/ode_lstm.cc.o" "gcc" "src/baselines/CMakeFiles/diffode_baselines.dir/ode_lstm.cc.o.d"
  "/root/repo/src/baselines/zoo.cc" "src/baselines/CMakeFiles/diffode_baselines.dir/zoo.cc.o" "gcc" "src/baselines/CMakeFiles/diffode_baselines.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/diffode_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/diffode_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/diffode_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/diffode_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/hippo/CMakeFiles/diffode_hippo.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/diffode_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/sparsity/CMakeFiles/diffode_sparsity.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/diffode_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/diffode_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
