# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("tensor")
subdirs("linalg")
subdirs("autograd")
subdirs("ode")
subdirs("hippo")
subdirs("sparsity")
subdirs("nn")
subdirs("data")
subdirs("core")
subdirs("baselines")
subdirs("train")
