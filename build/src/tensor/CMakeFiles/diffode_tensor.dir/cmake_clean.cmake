file(REMOVE_RECURSE
  "CMakeFiles/diffode_tensor.dir/tensor.cc.o"
  "CMakeFiles/diffode_tensor.dir/tensor.cc.o.d"
  "libdiffode_tensor.a"
  "libdiffode_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffode_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
