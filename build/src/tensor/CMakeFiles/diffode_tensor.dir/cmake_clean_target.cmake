file(REMOVE_RECURSE
  "libdiffode_tensor.a"
)
