# Empty dependencies file for diffode_tensor.
# This may be replaced when dependencies are built.
