file(REMOVE_RECURSE
  "CMakeFiles/diffode_hippo.dir/hippo.cc.o"
  "CMakeFiles/diffode_hippo.dir/hippo.cc.o.d"
  "libdiffode_hippo.a"
  "libdiffode_hippo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffode_hippo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
