file(REMOVE_RECURSE
  "libdiffode_hippo.a"
)
