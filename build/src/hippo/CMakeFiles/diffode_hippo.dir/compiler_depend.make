# Empty compiler generated dependencies file for diffode_hippo.
# This may be replaced when dependencies are built.
