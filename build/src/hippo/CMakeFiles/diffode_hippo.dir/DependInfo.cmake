
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hippo/hippo.cc" "src/hippo/CMakeFiles/diffode_hippo.dir/hippo.cc.o" "gcc" "src/hippo/CMakeFiles/diffode_hippo.dir/hippo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/diffode_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/diffode_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
