# Empty compiler generated dependencies file for diffode_autograd.
# This may be replaced when dependencies are built.
