file(REMOVE_RECURSE
  "CMakeFiles/diffode_autograd.dir/ops.cc.o"
  "CMakeFiles/diffode_autograd.dir/ops.cc.o.d"
  "CMakeFiles/diffode_autograd.dir/ops_linalg.cc.o"
  "CMakeFiles/diffode_autograd.dir/ops_linalg.cc.o.d"
  "CMakeFiles/diffode_autograd.dir/variable.cc.o"
  "CMakeFiles/diffode_autograd.dir/variable.cc.o.d"
  "libdiffode_autograd.a"
  "libdiffode_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffode_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
