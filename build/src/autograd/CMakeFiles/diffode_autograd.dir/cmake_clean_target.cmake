file(REMOVE_RECURSE
  "libdiffode_autograd.a"
)
