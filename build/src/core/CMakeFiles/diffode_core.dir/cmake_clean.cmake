file(REMOVE_RECURSE
  "CMakeFiles/diffode_core.dir/dhs.cc.o"
  "CMakeFiles/diffode_core.dir/dhs.cc.o.d"
  "CMakeFiles/diffode_core.dir/diffode_model.cc.o"
  "CMakeFiles/diffode_core.dir/diffode_model.cc.o.d"
  "libdiffode_core.a"
  "libdiffode_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffode_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
