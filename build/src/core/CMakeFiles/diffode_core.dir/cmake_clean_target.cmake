file(REMOVE_RECURSE
  "libdiffode_core.a"
)
