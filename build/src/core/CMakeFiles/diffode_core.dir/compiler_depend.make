# Empty compiler generated dependencies file for diffode_core.
# This may be replaced when dependencies are built.
