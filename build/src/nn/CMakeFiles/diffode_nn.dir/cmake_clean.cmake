file(REMOVE_RECURSE
  "CMakeFiles/diffode_nn.dir/serialize.cc.o"
  "CMakeFiles/diffode_nn.dir/serialize.cc.o.d"
  "libdiffode_nn.a"
  "libdiffode_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffode_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
