
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/diffode_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/diffode_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/diffode_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/diffode_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/diffode_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
