# Empty compiler generated dependencies file for diffode_nn.
# This may be replaced when dependencies are built.
