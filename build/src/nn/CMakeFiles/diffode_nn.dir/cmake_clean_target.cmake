file(REMOVE_RECURSE
  "libdiffode_nn.a"
)
