# Empty dependencies file for diffode_train.
# This may be replaced when dependencies are built.
