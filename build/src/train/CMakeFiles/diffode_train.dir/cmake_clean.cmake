file(REMOVE_RECURSE
  "CMakeFiles/diffode_train.dir/metrics.cc.o"
  "CMakeFiles/diffode_train.dir/metrics.cc.o.d"
  "CMakeFiles/diffode_train.dir/trainer.cc.o"
  "CMakeFiles/diffode_train.dir/trainer.cc.o.d"
  "libdiffode_train.a"
  "libdiffode_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffode_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
