file(REMOVE_RECURSE
  "libdiffode_train.a"
)
