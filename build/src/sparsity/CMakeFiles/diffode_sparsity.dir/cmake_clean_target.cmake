file(REMOVE_RECURSE
  "libdiffode_sparsity.a"
)
