
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparsity/attention_image.cc" "src/sparsity/CMakeFiles/diffode_sparsity.dir/attention_image.cc.o" "gcc" "src/sparsity/CMakeFiles/diffode_sparsity.dir/attention_image.cc.o.d"
  "/root/repo/src/sparsity/hoyer.cc" "src/sparsity/CMakeFiles/diffode_sparsity.dir/hoyer.cc.o" "gcc" "src/sparsity/CMakeFiles/diffode_sparsity.dir/hoyer.cc.o.d"
  "/root/repo/src/sparsity/pt_solver.cc" "src/sparsity/CMakeFiles/diffode_sparsity.dir/pt_solver.cc.o" "gcc" "src/sparsity/CMakeFiles/diffode_sparsity.dir/pt_solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/diffode_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/diffode_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
