# Empty dependencies file for diffode_sparsity.
# This may be replaced when dependencies are built.
