file(REMOVE_RECURSE
  "CMakeFiles/diffode_sparsity.dir/attention_image.cc.o"
  "CMakeFiles/diffode_sparsity.dir/attention_image.cc.o.d"
  "CMakeFiles/diffode_sparsity.dir/hoyer.cc.o"
  "CMakeFiles/diffode_sparsity.dir/hoyer.cc.o.d"
  "CMakeFiles/diffode_sparsity.dir/pt_solver.cc.o"
  "CMakeFiles/diffode_sparsity.dir/pt_solver.cc.o.d"
  "libdiffode_sparsity.a"
  "libdiffode_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffode_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
