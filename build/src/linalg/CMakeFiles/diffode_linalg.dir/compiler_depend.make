# Empty compiler generated dependencies file for diffode_linalg.
# This may be replaced when dependencies are built.
