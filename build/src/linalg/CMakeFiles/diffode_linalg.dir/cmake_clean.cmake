file(REMOVE_RECURSE
  "CMakeFiles/diffode_linalg.dir/cholesky.cc.o"
  "CMakeFiles/diffode_linalg.dir/cholesky.cc.o.d"
  "CMakeFiles/diffode_linalg.dir/eigen.cc.o"
  "CMakeFiles/diffode_linalg.dir/eigen.cc.o.d"
  "CMakeFiles/diffode_linalg.dir/lu.cc.o"
  "CMakeFiles/diffode_linalg.dir/lu.cc.o.d"
  "CMakeFiles/diffode_linalg.dir/pinv.cc.o"
  "CMakeFiles/diffode_linalg.dir/pinv.cc.o.d"
  "CMakeFiles/diffode_linalg.dir/qr.cc.o"
  "CMakeFiles/diffode_linalg.dir/qr.cc.o.d"
  "CMakeFiles/diffode_linalg.dir/svd.cc.o"
  "CMakeFiles/diffode_linalg.dir/svd.cc.o.d"
  "libdiffode_linalg.a"
  "libdiffode_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffode_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
