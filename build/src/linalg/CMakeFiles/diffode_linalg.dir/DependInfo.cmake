
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cholesky.cc" "src/linalg/CMakeFiles/diffode_linalg.dir/cholesky.cc.o" "gcc" "src/linalg/CMakeFiles/diffode_linalg.dir/cholesky.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "src/linalg/CMakeFiles/diffode_linalg.dir/eigen.cc.o" "gcc" "src/linalg/CMakeFiles/diffode_linalg.dir/eigen.cc.o.d"
  "/root/repo/src/linalg/lu.cc" "src/linalg/CMakeFiles/diffode_linalg.dir/lu.cc.o" "gcc" "src/linalg/CMakeFiles/diffode_linalg.dir/lu.cc.o.d"
  "/root/repo/src/linalg/pinv.cc" "src/linalg/CMakeFiles/diffode_linalg.dir/pinv.cc.o" "gcc" "src/linalg/CMakeFiles/diffode_linalg.dir/pinv.cc.o.d"
  "/root/repo/src/linalg/qr.cc" "src/linalg/CMakeFiles/diffode_linalg.dir/qr.cc.o" "gcc" "src/linalg/CMakeFiles/diffode_linalg.dir/qr.cc.o.d"
  "/root/repo/src/linalg/svd.cc" "src/linalg/CMakeFiles/diffode_linalg.dir/svd.cc.o" "gcc" "src/linalg/CMakeFiles/diffode_linalg.dir/svd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/diffode_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
