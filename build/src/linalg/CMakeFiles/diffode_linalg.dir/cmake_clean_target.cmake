file(REMOVE_RECURSE
  "libdiffode_linalg.a"
)
