# Empty dependencies file for diffode_ode.
# This may be replaced when dependencies are built.
