file(REMOVE_RECURSE
  "libdiffode_ode.a"
)
