
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ode/adjoint.cc" "src/ode/CMakeFiles/diffode_ode.dir/adjoint.cc.o" "gcc" "src/ode/CMakeFiles/diffode_ode.dir/adjoint.cc.o.d"
  "/root/repo/src/ode/cubic_spline.cc" "src/ode/CMakeFiles/diffode_ode.dir/cubic_spline.cc.o" "gcc" "src/ode/CMakeFiles/diffode_ode.dir/cubic_spline.cc.o.d"
  "/root/repo/src/ode/dense_output.cc" "src/ode/CMakeFiles/diffode_ode.dir/dense_output.cc.o" "gcc" "src/ode/CMakeFiles/diffode_ode.dir/dense_output.cc.o.d"
  "/root/repo/src/ode/diff_integrator.cc" "src/ode/CMakeFiles/diffode_ode.dir/diff_integrator.cc.o" "gcc" "src/ode/CMakeFiles/diffode_ode.dir/diff_integrator.cc.o.d"
  "/root/repo/src/ode/dopri5.cc" "src/ode/CMakeFiles/diffode_ode.dir/dopri5.cc.o" "gcc" "src/ode/CMakeFiles/diffode_ode.dir/dopri5.cc.o.d"
  "/root/repo/src/ode/explicit_solvers.cc" "src/ode/CMakeFiles/diffode_ode.dir/explicit_solvers.cc.o" "gcc" "src/ode/CMakeFiles/diffode_ode.dir/explicit_solvers.cc.o.d"
  "/root/repo/src/ode/implicit_adams.cc" "src/ode/CMakeFiles/diffode_ode.dir/implicit_adams.cc.o" "gcc" "src/ode/CMakeFiles/diffode_ode.dir/implicit_adams.cc.o.d"
  "/root/repo/src/ode/stiff.cc" "src/ode/CMakeFiles/diffode_ode.dir/stiff.cc.o" "gcc" "src/ode/CMakeFiles/diffode_ode.dir/stiff.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/diffode_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/diffode_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/diffode_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
