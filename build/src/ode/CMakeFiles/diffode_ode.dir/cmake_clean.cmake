file(REMOVE_RECURSE
  "CMakeFiles/diffode_ode.dir/adjoint.cc.o"
  "CMakeFiles/diffode_ode.dir/adjoint.cc.o.d"
  "CMakeFiles/diffode_ode.dir/cubic_spline.cc.o"
  "CMakeFiles/diffode_ode.dir/cubic_spline.cc.o.d"
  "CMakeFiles/diffode_ode.dir/dense_output.cc.o"
  "CMakeFiles/diffode_ode.dir/dense_output.cc.o.d"
  "CMakeFiles/diffode_ode.dir/diff_integrator.cc.o"
  "CMakeFiles/diffode_ode.dir/diff_integrator.cc.o.d"
  "CMakeFiles/diffode_ode.dir/dopri5.cc.o"
  "CMakeFiles/diffode_ode.dir/dopri5.cc.o.d"
  "CMakeFiles/diffode_ode.dir/explicit_solvers.cc.o"
  "CMakeFiles/diffode_ode.dir/explicit_solvers.cc.o.d"
  "CMakeFiles/diffode_ode.dir/implicit_adams.cc.o"
  "CMakeFiles/diffode_ode.dir/implicit_adams.cc.o.d"
  "CMakeFiles/diffode_ode.dir/stiff.cc.o"
  "CMakeFiles/diffode_ode.dir/stiff.cc.o.d"
  "libdiffode_ode.a"
  "libdiffode_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffode_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
