file(REMOVE_RECURSE
  "libdiffode_data.a"
)
