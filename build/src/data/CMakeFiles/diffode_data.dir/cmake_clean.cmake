file(REMOVE_RECURSE
  "CMakeFiles/diffode_data.dir/csv_loader.cc.o"
  "CMakeFiles/diffode_data.dir/csv_loader.cc.o.d"
  "CMakeFiles/diffode_data.dir/encoding.cc.o"
  "CMakeFiles/diffode_data.dir/encoding.cc.o.d"
  "CMakeFiles/diffode_data.dir/generators.cc.o"
  "CMakeFiles/diffode_data.dir/generators.cc.o.d"
  "CMakeFiles/diffode_data.dir/splits.cc.o"
  "CMakeFiles/diffode_data.dir/splits.cc.o.d"
  "libdiffode_data.a"
  "libdiffode_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffode_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
