
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv_loader.cc" "src/data/CMakeFiles/diffode_data.dir/csv_loader.cc.o" "gcc" "src/data/CMakeFiles/diffode_data.dir/csv_loader.cc.o.d"
  "/root/repo/src/data/encoding.cc" "src/data/CMakeFiles/diffode_data.dir/encoding.cc.o" "gcc" "src/data/CMakeFiles/diffode_data.dir/encoding.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/data/CMakeFiles/diffode_data.dir/generators.cc.o" "gcc" "src/data/CMakeFiles/diffode_data.dir/generators.cc.o.d"
  "/root/repo/src/data/splits.cc" "src/data/CMakeFiles/diffode_data.dir/splits.cc.o" "gcc" "src/data/CMakeFiles/diffode_data.dir/splits.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/diffode_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
