# Empty dependencies file for diffode_data.
# This may be replaced when dependencies are built.
