file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sparsity.dir/bench_fig3_sparsity.cc.o"
  "CMakeFiles/bench_fig3_sparsity.dir/bench_fig3_sparsity.cc.o.d"
  "bench_fig3_sparsity"
  "bench_fig3_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
