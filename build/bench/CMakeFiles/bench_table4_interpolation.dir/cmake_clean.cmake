file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_interpolation.dir/bench_table4_interpolation.cc.o"
  "CMakeFiles/bench_table4_interpolation.dir/bench_table4_interpolation.cc.o.d"
  "bench_table4_interpolation"
  "bench_table4_interpolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
