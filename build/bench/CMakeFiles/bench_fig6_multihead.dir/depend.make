# Empty dependencies file for bench_fig6_multihead.
# This may be replaced when dependencies are built.
