file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_multihead.dir/bench_fig6_multihead.cc.o"
  "CMakeFiles/bench_fig6_multihead.dir/bench_fig6_multihead.cc.o.d"
  "bench_fig6_multihead"
  "bench_fig6_multihead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_multihead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
