file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_hoyer.dir/bench_table6_hoyer.cc.o"
  "CMakeFiles/bench_table6_hoyer.dir/bench_table6_hoyer.cc.o.d"
  "bench_table6_hoyer"
  "bench_table6_hoyer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_hoyer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
