#!/usr/bin/env bash
# Tier-1 verification: builds and runs the full test suite serially and in
# parallel, then rebuilds the threading-relevant tests under ThreadSanitizer.
#
#   scripts/check.sh               # full sweep
#   SKIP_TSAN=1 scripts/check.sh   # skip the ThreadSanitizer leg
#   SKIP_ASAN=1 scripts/check.sh   # skip the AddressSanitizer leg
#   SKIP_UBSAN=1 scripts/check.sh  # skip the UBSan leg
#
# The determinism contract (docs/performance.md) makes DIFFODE_NUM_THREADS=1
# and =4 produce bitwise-identical results, so running both configurations is
# a regression gate, not a flake source. The same holds per kernel ISA:
# DIFFODE_KERNEL_ISA=scalar must pass the identical suite the dispatched
# (AVX2 where available) build passes.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint: no std::function in kernel / op forward paths =="
# Node::backward_fn (variable.h) is the one sanctioned std::function on the
# tape; op forward paths are templated so no-grad forwards never pay a
# closure allocation, and the tensor kernels dispatch through raw function
# pointers. The legacy Tensor::Map declaration/definition pair is the only
# allowed code occurrence under src/tensor. Comment lines don't count.
tensor_fn=$(grep -rh "std::function" src/tensor/ | grep -cv '^[[:space:]]*//' || true)
ops_fn=$(grep -h "std::function" src/autograd/ops.cc src/autograd/ops_linalg.cc \
  | grep -cv '^[[:space:]]*//' || true)
if [[ "${tensor_fn}" -gt 2 || "${ops_fn}" -gt 0 ]]; then
  echo "lint FAIL: std::function in a forward path" \
       "(src/tensor: ${tensor_fn} > 2, src/autograd/ops*.cc: ${ops_fn} > 0)"
  exit 1
fi

echo "== lint: no raw double in the dtype-generic tensor surface =="
# The tensor/kernel substrate is templated on dtype; its headers must spell
# the element type T (or Scalar for the f64-typedef'd public aliases), never
# raw `double` — a raw double in a generic path silently widens the f32
# serving tier. Lines that are intentionally f64-specific carry a
# `// dtype:ok` escape with a reason; the ISA backend .cc files are exempt
# (each is a concrete-dtype implementation by design). Comment lines don't
# count.
dtype_raw=$(grep -rn '\bdouble\b' src/tensor/*.h \
  | grep -v 'dtype:ok' | grep -cv ':[0-9]*:[[:space:]]*//' || true)
if [[ "${dtype_raw}" -gt 0 ]]; then
  echo "lint FAIL: raw double in src/tensor headers (${dtype_raw} lines);"
  echo "use the dtype template parameter or add '// dtype:ok — <reason>':"
  grep -rn '\bdouble\b' src/tensor/*.h \
    | grep -v 'dtype:ok' | grep -v ':[0-9]*:[[:space:]]*//'
  exit 1
fi

echo "== tier-1: configure + build =="
cmake -B build -S . > /dev/null
cmake --build build -j > /dev/null

echo "== tier-1: ctest, DIFFODE_NUM_THREADS=1 =="
(cd build && DIFFODE_NUM_THREADS=1 ctest --output-on-failure -j)

echo "== tier-1: ctest, default thread count =="
(cd build && ctest --output-on-failure -j)

echo "== tier-1: ctest, DIFFODE_KERNEL_ISA=scalar =="
# Forces the portable scalar kernel backend through the runtime dispatcher;
# every test must pass on it bit-for-bit deterministically, since it is the
# fallback on machines without AVX2+FMA.
(cd build && DIFFODE_KERNEL_ISA=scalar ctest --output-on-failure -j)

echo "== tier-1: grad-off (NoGradScope) matrix entry =="
# The no-grad forward path must hold its bitwise-equivalence and
# zero-allocation contracts on both the serial and parallel schedules (the
# tests internally sweep 1/4 threads and both kernel ISAs as well).
(cd build && DIFFODE_NUM_THREADS=1 ctest --output-on-failure \
  -R 'nograd_test|serialize_roundtrip_test')
(cd build && ctest --output-on-failure -R 'nograd_test|serialize_roundtrip_test')

echo "== tier-1: batched lockstep equivalence, DIFFODE_KERNEL_ISA=scalar =="
# The lockstep engine must match the per-sequence path (bitwise at B=1) on
# the scalar backend too; the test internally sweeps both ISAs and 1/4
# threads, this leg pins the dispatcher itself to scalar.
(cd build && DIFFODE_KERNEL_ISA=scalar ctest --output-on-failure \
  -R 'batched_equiv_test')

echo "== tier-1: f32 serving tier, DIFFODE_KERNEL_ISA=scalar =="
# The f32 engine's accuracy and round-trip contracts must hold on the
# portable scalar f32 kernels — the fallback a non-AVX2 serving host runs.
(cd build && DIFFODE_KERNEL_ISA=scalar ctest --output-on-failure \
  -R 'precision_test|serialize_roundtrip_test|kernels_isa_test')

echo "== tier-1: f32 serving tier, DIFFODE_KERNEL_ISA=avx2 =="
# Same suite pinned to the AVX2 f32 backend (the dispatched default on x86;
# resolves to scalar with a warning elsewhere, so the leg is portable).
(cd build && DIFFODE_KERNEL_ISA=avx2 ctest --output-on-failure \
  -R 'precision_test|serialize_roundtrip_test|kernels_isa_test')

echo "== tier-1: f32 serving tier + kernel matrix, DIFFODE_KERNEL_ISA=avx512 =="
# The AVX-512 backend is opt-in (auto-resolution caps at AVX2). On hosts
# without AVX-512 F+DQ the dispatcher warns and falls back, and the
# ISA-matrix tests CPUID-skip their avx512 legs, so this runs everywhere.
(cd build && DIFFODE_KERNEL_ISA=avx512 ctest --output-on-failure \
  -R 'precision_test|serialize_roundtrip_test|kernels_isa_test')

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tsan: configure + build (-DDIFFODE_SANITIZE=thread) =="
  cmake -B build-tsan -S . -DDIFFODE_SANITIZE=thread > /dev/null
  cmake --build build-tsan -j \
    --target kernels_test trainer_test tensor_test autograd_test \
             alloc_stats_test nograd_test > /dev/null

  echo "== tsan: threading-relevant tests, DIFFODE_NUM_THREADS=4 =="
  (cd build-tsan && DIFFODE_NUM_THREADS=4 ctest --output-on-failure \
    -R 'kernels_test|trainer_test|tensor_test|autograd_test|alloc_stats_test|nograd_test')
fi

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  # The arena hands out raw bump-allocated storage and the pool recycles
  # buffers across tensors; ASan is the gate that no tape node or buffer is
  # ever touched after its arena was Reset or its block rebucketed.
  echo "== asan: configure + build (-DDIFFODE_SANITIZE=address) =="
  cmake -B build-asan -S . -DDIFFODE_SANITIZE=address > /dev/null
  cmake --build build-asan -j > /dev/null

  echo "== asan: NoGradScope eval path =="
  # Value-only Vars bypass the tape arena entirely; this leg is the gate
  # that no-grad forwards never read pooled buffers after recycling and
  # never touch a node that was elided.
  (cd build-asan && ctest --output-on-failure \
    -R 'nograd_test|serialize_roundtrip_test')

  echo "== asan: batched lockstep engine =="
  # The engine packs/scatters rows through raw kernel copies and row views;
  # this leg is the gate that no packed block or checkpoint row outlives its
  # buffer.
  (cd build-asan && ctest --output-on-failure -R 'batched_equiv_test')

  echo "== asan: f32 serving engine =="
  # The f32 tier carves flat scratch (p_buf / chunk_scratch) by chunk id and
  # caches stage tensors across RK stages; this leg is the gate that no
  # recovery pass indexes outside its chunk slice and no cached stage buffer
  # is read after the active-row count changed.
  (cd build-asan && ctest --output-on-failure -R 'precision_test')

  echo "== asan: full suite =="
  (cd build-asan && ctest --output-on-failure -j)
fi

if [[ "${SKIP_UBSAN:-0}" != "1" ]]; then
  # The AVX2 backend leans on pointer arithmetic over raw panels and masked
  # tail loads; UBSan (non-recovering) is the gate that no kernel indexes
  # out of its contractual range or hits signed overflow on the fixed-grid
  # partition math. Runs on both ISAs so the dispatcher and the scalar
  # fallback see identical coverage.
  echo "== ubsan: configure + build (-DDIFFODE_SANITIZE=undefined) =="
  cmake -B build-ubsan -S . -DDIFFODE_SANITIZE=undefined > /dev/null
  cmake --build build-ubsan -j > /dev/null

  echo "== ubsan: full suite (dispatched ISA) =="
  (cd build-ubsan && ctest --output-on-failure -j)

  echo "== ubsan: full suite, DIFFODE_KERNEL_ISA=scalar =="
  (cd build-ubsan && DIFFODE_KERNEL_ISA=scalar ctest --output-on-failure -j)
fi

echo "== check.sh: all green =="
