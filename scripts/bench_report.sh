#!/usr/bin/env bash
# Runs the Table V efficiency benchmark (training-throughput regression
# check), the single-sequence inference latency benchmark (the grad-on vs
# NoGradScope eval speedup), the lockstep execution-batch sweep (batched
# seqs/sec vs the per-sequence serving path recorded in BENCH_PR4.json), the
# serving-precision sweep (the same DIFFODE weights frozen at f64 vs f32,
# with the dispatched kernel ISA recorded per row), and the kernel ISA micro
# sweep (scalar / avx2 / avx512), then writes BENCH_PR6.json. "Before"
# defaults to the ms-per-epoch recorded on main after the AVX2 kernel
# backend (PR 3); point BASELINE_CSV at a saved
# `bench_table5_efficiency --csv` dump to compare against something else.
#
#   scripts/bench_report.sh                       # build, bench, report
#   BASELINE_CSV=old.csv scripts/bench_report.sh  # custom baseline
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR6.json}"

cmake -B build -S . > /dev/null
cmake --build build -j --target bench_table5_efficiency bench_infer_latency \
  bench_micro_substrates > /dev/null

AFTER_CSV="$(mktemp)"
INFER_CSV="$(mktemp)"
MICRO_JSON="$(mktemp)"
trap 'rm -f "$AFTER_CSV" "$INFER_CSV" "$MICRO_JSON"' EXIT
./build/bench/bench_table5_efficiency --csv > "$AFTER_CSV"
./build/bench/bench_infer_latency --csv > "$INFER_CSV"
./build/bench/bench_micro_substrates --benchmark_filter='Isa' \
  --benchmark_format=json > "$MICRO_JSON" 2>/dev/null

BASELINE_CSV="${BASELINE_CSV:-}" AFTER_CSV="$AFTER_CSV" INFER_CSV="$INFER_CSV" \
MICRO_JSON="$MICRO_JSON" OUT="$OUT" python3 - <<'EOF'
import csv, json, os

# ms/epoch measured on main (commit 51b820f) at the default bench scale,
# after the AVX2+FMA kernel backend (the BENCH_PR3.json "after" column).
# The dtype-generic substrate must not regress these by more than 2%.
DEFAULT_BEFORE = {
    "ContiFormer": 11.0,
    "HiPPO-obs": 3.8,
    "GRU-D": 12.6,
    "ODE-RNN": 13.5,
    "Latent ODE": 18.7,
    "PolyODE": 20.5,
    "DIFFODE": 64.3,
}

def load(path):
    out = {}
    with open(path) as f:
        for row in csv.reader(f):
            if len(row) >= 3 and row[0] not in ("table", "model"):
                try:
                    out[row[0]] = float(row[2])
                except ValueError:
                    pass
    return out

after = load(os.environ["AFTER_CSV"])
baseline_csv = os.environ.get("BASELINE_CSV", "")
before = load(baseline_csv) if baseline_csv else DEFAULT_BEFORE

models = []
for name, ms in after.items():
    entry = {"model": name, "after_ms_per_epoch": ms}
    if name in before:
        entry["before_ms_per_epoch"] = before[name]
        entry["speedup"] = round(before[name] / ms, 3) if ms else None
        entry["improvement_pct"] = round(100.0 * (before[name] - ms) / before[name], 1)
    models.append(entry)

# bench_infer_latency emits three `table,<name>` sections; dispatch rows on
# the section, not the column count (the latency table and the precision
# sweep are both 7 columns wide).
latency = []
batched = []
precision = []
table = ""
with open(os.environ["INFER_CSV"]) as f:
    for row in csv.reader(f):
        if not row:
            continue
        if row[0] == "table":
            table = row[1] if len(row) > 1 else ""
            continue
        if row[0] in ("model", "precision"):
            continue
        try:
            if table == "Inference latency" and len(row) >= 7:
                latency.append({
                    "model": row[0],
                    "grad_p50_ms": float(row[1]),
                    "grad_p95_ms": float(row[2]),
                    "nograd_p50_ms": float(row[3]),
                    "nograd_p95_ms": float(row[4]),
                    "nograd_seqs_per_sec": float(row[5]),
                    "nograd_speedup": float(row[6]),
                })
            elif table == "Batched execution" and len(row) >= 5:
                batched.append({
                    "model": row[0],
                    "batch": int(row[1]),
                    "seqs_per_sec": float(row[2]),
                    "request_p50_ms": float(row[3]),
                    "request_p95_ms": float(row[4]),
                })
            elif table == "Serving precision sweep" and len(row) >= 7:
                precision.append({
                    "model": row[0],
                    "precision": row[1],
                    "isa": row[2],
                    "batch": int(row[3]),
                    "seqs_per_sec": float(row[4]),
                    "request_p50_ms": float(row[5]),
                    "request_p95_ms": float(row[6]),
                })
        except ValueError:
            pass

# Per-sequence NoGradScope throughput recorded before the lockstep engine
# (BENCH_PR4.json); the batched sweep reports its speedup against these.
PER_SEQ_BEFORE = {}
if os.path.exists("BENCH_PR4.json"):
    with open("BENCH_PR4.json") as f:
        pr4 = json.load(f)
    for m in pr4.get("inference_latency", {}).get("models", []):
        PER_SEQ_BEFORE[m["model"]] = m["nograd_seqs_per_sec"]
for entry in batched:
    before_sps = PER_SEQ_BEFORE.get(entry["model"])
    if before_sps:
        entry["per_seq_before_seqs_per_sec"] = before_sps
        entry["speedup_vs_per_seq"] = round(entry["seqs_per_sec"] / before_sps, 2)

# Pair each batch size's f64/f32 cells (they ran back to back, so the ratio
# is taken within one thermal regime) into a per-batch f32 speedup column.
by_batch = {}
for entry in precision:
    by_batch.setdefault(entry["batch"], {})[entry["precision"]] = entry
precision_speedups = []
for batch in sorted(by_batch):
    cells = by_batch[batch]
    if "f64" in cells and "f32" in cells and cells["f64"]["seqs_per_sec"]:
        precision_speedups.append({
            "batch": batch,
            "isa": cells["f32"]["isa"],
            "f64_seqs_per_sec": cells["f64"]["seqs_per_sec"],
            "f32_seqs_per_sec": cells["f32"]["seqs_per_sec"],
            "f32_speedup": round(
                cells["f32"]["seqs_per_sec"] / cells["f64"]["seqs_per_sec"], 3),
        })

# Group the ISA micro sweep rows by benchmark shape; each shape gets one
# column per ISA that ran (avx512 rows are skipped on hosts without it).
ISA_NAMES = {"/isa:0": "scalar", "/isa:1": "avx2", "/isa:2": "avx512"}
with open(os.environ["MICRO_JSON"]) as f:
    micro = json.load(f)
rows = {}
for b in micro.get("benchmarks", []):
    name = b.get("name", "")
    if "/isa:" not in name or b.get("error_occurred"):
        continue
    shape, isa = name, None
    for tag, isa_name in ISA_NAMES.items():
        if tag in name:
            shape, isa = name.replace(tag, ""), isa_name
    if isa is None:
        continue
    rows.setdefault(shape, {})[isa] = b.get("real_time")
kernels = []
for shape in sorted(rows):
    r = rows[shape]
    entry = {"benchmark": shape}
    for isa in ("scalar", "avx2", "avx512"):
        if isa in r:
            entry[f"{isa}_ns"] = round(r[isa], 1)
    for isa in ("avx2", "avx512"):
        if "scalar" in r and isa in r and r[isa]:
            entry[f"{isa}_speedup"] = round(r["scalar"] / r[isa], 2)
    kernels.append(entry)

report = {
    "benchmark": "bench_table5_efficiency",
    "metric": "ms_per_epoch",
    "baseline": baseline_csv or "main@51b820f (BENCH_PR3 after)",
    "models": models,
    "inference_latency": {
        "benchmark": "bench_infer_latency",
        "metric": "single_sequence_forward_ms",
        "note": "grad-on (tape-building) vs ag::NoGradScope forward",
        "models": latency,
    },
    "batched_execution": {
        "benchmark": "bench_infer_latency (batched sweep)",
        "metric": "sustained_seqs_per_sec",
        "note": "lockstep execution batch vs the per-sequence NoGradScope "
                "path of BENCH_PR4.json; one request = one batch",
        "rows": batched,
    },
    "serving_precision": {
        "benchmark": "bench_infer_latency (serving precision sweep)",
        "metric": "sustained_seqs_per_sec",
        "note": "the same DIFFODE weights frozen at f64 vs f32 "
                "(Freeze(Precision::kF32), the diffode_f32.cc engine); isa "
                "is the dispatched kernel backend; each batch size's f64 and "
                "f32 cells ran back to back so their ratio shares one "
                "frequency regime",
        "rows": precision,
        "f32_speedup_by_batch": precision_speedups,
    },
    "kernel_isa_sweep": {
        "benchmark": "bench_micro_substrates --benchmark_filter=Isa",
        "metric": "real_time_ns",
        "kernels": kernels,
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(json.dumps(report, indent=2))
EOF

echo "wrote $OUT"
