#!/usr/bin/env bash
# Runs the Table V efficiency benchmark (training-throughput regression
# check), the single-sequence inference latency benchmark (the grad-on vs
# NoGradScope eval speedup), the lockstep execution-batch sweep (batched
# seqs/sec vs the per-sequence serving path recorded in BENCH_PR4.json), and
# the kernel ISA micro sweep, then writes BENCH_PR5.json. "Before" defaults
# to the ms-per-epoch recorded on main after the AVX2 kernel backend (PR 3);
# point BASELINE_CSV at a saved `bench_table5_efficiency --csv` dump to
# compare against something else.
#
#   scripts/bench_report.sh                       # build, bench, report
#   BASELINE_CSV=old.csv scripts/bench_report.sh  # custom baseline
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR5.json}"

cmake -B build -S . > /dev/null
cmake --build build -j --target bench_table5_efficiency bench_infer_latency \
  bench_micro_substrates > /dev/null

AFTER_CSV="$(mktemp)"
INFER_CSV="$(mktemp)"
MICRO_JSON="$(mktemp)"
trap 'rm -f "$AFTER_CSV" "$INFER_CSV" "$MICRO_JSON"' EXIT
./build/bench/bench_table5_efficiency --csv > "$AFTER_CSV"
./build/bench/bench_infer_latency --csv > "$INFER_CSV"
./build/bench/bench_micro_substrates --benchmark_filter='Isa' \
  --benchmark_format=json > "$MICRO_JSON" 2>/dev/null

BASELINE_CSV="${BASELINE_CSV:-}" AFTER_CSV="$AFTER_CSV" INFER_CSV="$INFER_CSV" \
MICRO_JSON="$MICRO_JSON" OUT="$OUT" python3 - <<'EOF'
import csv, json, os

# ms/epoch measured on main (commit 51b820f) at the default bench scale,
# after the AVX2+FMA kernel backend (the BENCH_PR3.json "after" column).
# The grad-mode refactor must not regress these by more than 2%.
DEFAULT_BEFORE = {
    "ContiFormer": 11.0,
    "HiPPO-obs": 3.8,
    "GRU-D": 12.6,
    "ODE-RNN": 13.5,
    "Latent ODE": 18.7,
    "PolyODE": 20.5,
    "DIFFODE": 64.3,
}

def load(path):
    out = {}
    with open(path) as f:
        for row in csv.reader(f):
            if len(row) >= 3 and row[0] not in ("table", "model"):
                try:
                    out[row[0]] = float(row[2])
                except ValueError:
                    pass
    return out

after = load(os.environ["AFTER_CSV"])
baseline_csv = os.environ.get("BASELINE_CSV", "")
before = load(baseline_csv) if baseline_csv else DEFAULT_BEFORE

models = []
for name, ms in after.items():
    entry = {"model": name, "after_ms_per_epoch": ms}
    if name in before:
        entry["before_ms_per_epoch"] = before[name]
        entry["speedup"] = round(before[name] / ms, 3) if ms else None
        entry["improvement_pct"] = round(100.0 * (before[name] - ms) / before[name], 1)
    models.append(entry)

# Inference latency table (7 columns): grad-on vs NoGradScope per model.
# Batched-execution sweep (5 columns): model,batch,seqs_per_sec,p50,p95.
latency = []
batched = []
with open(os.environ["INFER_CSV"]) as f:
    for row in csv.reader(f):
        if row and row[0] in ("table", "model"):
            continue
        try:
            if len(row) >= 7:
                latency.append({
                    "model": row[0],
                    "grad_p50_ms": float(row[1]),
                    "grad_p95_ms": float(row[2]),
                    "nograd_p50_ms": float(row[3]),
                    "nograd_p95_ms": float(row[4]),
                    "nograd_seqs_per_sec": float(row[5]),
                    "nograd_speedup": float(row[6]),
                })
            elif len(row) == 5:
                batched.append({
                    "model": row[0],
                    "batch": int(row[1]),
                    "seqs_per_sec": float(row[2]),
                    "request_p50_ms": float(row[3]),
                    "request_p95_ms": float(row[4]),
                })
        except ValueError:
            pass

# Per-sequence NoGradScope throughput recorded before the lockstep engine
# (BENCH_PR4.json); the batched sweep reports its speedup against these.
PER_SEQ_BEFORE = {}
if os.path.exists("BENCH_PR4.json"):
    with open("BENCH_PR4.json") as f:
        pr4 = json.load(f)
    for m in pr4.get("inference_latency", {}).get("models", []):
        PER_SEQ_BEFORE[m["model"]] = m["nograd_seqs_per_sec"]
for entry in batched:
    before_sps = PER_SEQ_BEFORE.get(entry["model"])
    if before_sps:
        entry["per_seq_before_seqs_per_sec"] = before_sps
        entry["speedup_vs_per_seq"] = round(entry["seqs_per_sec"] / before_sps, 2)

# Pair the scalar/avx2 rows of the ISA sweep by benchmark shape.
with open(os.environ["MICRO_JSON"]) as f:
    micro = json.load(f)
rows = {}
for b in micro.get("benchmarks", []):
    name = b.get("name", "")
    if "/isa:" not in name or b.get("error_occurred"):
        continue
    shape = name.replace("/isa:0", "").replace("/isa:1", "")
    isa = "scalar" if "/isa:0" in name else "avx2"
    rows.setdefault(shape, {})[isa] = b.get("real_time")
kernels = []
for shape in sorted(rows):
    r = rows[shape]
    entry = {"benchmark": shape}
    if "scalar" in r:
        entry["scalar_ns"] = round(r["scalar"], 1)
    if "avx2" in r:
        entry["avx2_ns"] = round(r["avx2"], 1)
    if "scalar" in r and "avx2" in r and r["avx2"]:
        entry["speedup"] = round(r["scalar"] / r["avx2"], 2)
    kernels.append(entry)

report = {
    "benchmark": "bench_table5_efficiency",
    "metric": "ms_per_epoch",
    "baseline": baseline_csv or "main@51b820f (BENCH_PR3 after)",
    "models": models,
    "inference_latency": {
        "benchmark": "bench_infer_latency",
        "metric": "single_sequence_forward_ms",
        "note": "grad-on (tape-building) vs ag::NoGradScope forward",
        "models": latency,
    },
    "batched_execution": {
        "benchmark": "bench_infer_latency (batched sweep)",
        "metric": "sustained_seqs_per_sec",
        "note": "lockstep execution batch vs the per-sequence NoGradScope "
                "path of BENCH_PR4.json; one request = one batch",
        "rows": batched,
    },
    "kernel_isa_sweep": {
        "benchmark": "bench_micro_substrates --benchmark_filter=Isa",
        "metric": "real_time_ns",
        "kernels": kernels,
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(json.dumps(report, indent=2))
EOF

echo "wrote $OUT"
