#!/usr/bin/env bash
# Runs the Table V efficiency benchmark and writes BENCH_PR2.json with the
# before/after ms-per-epoch of every model. "Before" defaults to the numbers
# recorded on main prior to the allocation-free hot path (PR 2); point
# BASELINE_CSV at a saved `bench_table5_efficiency --csv` dump to compare
# against a different baseline.
#
#   scripts/bench_report.sh                       # build, bench, report
#   BASELINE_CSV=old.csv scripts/bench_report.sh  # custom baseline
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR2.json}"

cmake -B build -S . > /dev/null
cmake --build build -j --target bench_table5_efficiency > /dev/null

AFTER_CSV="$(mktemp)"
trap 'rm -f "$AFTER_CSV"' EXIT
./build/bench/bench_table5_efficiency --csv > "$AFTER_CSV"

BASELINE_CSV="${BASELINE_CSV:-}" AFTER_CSV="$AFTER_CSV" OUT="$OUT" python3 - <<'EOF'
import csv, json, os

# ms/epoch measured on main (commit 8c27b36) at the default bench scale,
# before the tape arena / buffer pool / DHS cache landed.
DEFAULT_BEFORE = {
    "ContiFormer": 56.5,
    "HiPPO-obs": 9.3,
    "GRU-D": 36.4,
    "ODE-RNN": 37.2,
    "Latent ODE": 61.8,
    "PolyODE": 56.6,
    "DIFFODE": 155.9,
}

def load(path):
    out = {}
    with open(path) as f:
        for row in csv.reader(f):
            if len(row) >= 3 and row[0] not in ("table", "model"):
                try:
                    out[row[0]] = float(row[2])
                except ValueError:
                    pass
    return out

after = load(os.environ["AFTER_CSV"])
baseline_csv = os.environ.get("BASELINE_CSV", "")
before = load(baseline_csv) if baseline_csv else DEFAULT_BEFORE

models = []
for name, ms in after.items():
    entry = {"model": name, "after_ms_per_epoch": ms}
    if name in before:
        entry["before_ms_per_epoch"] = before[name]
        entry["speedup"] = round(before[name] / ms, 3) if ms else None
        entry["improvement_pct"] = round(100.0 * (before[name] - ms) / before[name], 1)
    models.append(entry)

report = {
    "benchmark": "bench_table5_efficiency",
    "metric": "ms_per_epoch",
    "baseline": baseline_csv or "main@8c27b36 (recorded)",
    "models": models,
}
with open(os.environ["OUT"], "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(json.dumps(report, indent=2))
EOF

echo "wrote $OUT"
