// Reproduces Fig. 5: ablation of DIFFODE's input network (GRU vs MLP
// encoder), output mechanism (HiPPO head vs direct readout), and attention
// (full model vs w/o Attn, which degenerates to a HiPPO-RNN-like system).
// Synthetic and Lorenz96 report classification accuracy; USHCN-like reports
// interpolation MSE.

#include "bench_common.h"

namespace diffode::bench {
namespace {

struct Variant {
  const char* name;
  void (*apply)(ModelSpec*);
};

const Variant kVariants[] = {
    {"full", [](ModelSpec*) {}},
    {"MLP-encoder",
     [](ModelSpec* s) { s->encoder = core::EncoderType::kMlp; }},
    {"w/o HiPPO", [](ModelSpec* s) { s->head = core::OutputHead::kDirect; }},
    {"w/o Attn", [](ModelSpec* s) { s->use_attention = false; }},
};

int Main(int argc, char** argv) {
  const bool csv = HasFlag(argc, argv, "--csv");
  const Index epochs = Scaled(14);

  data::SyntheticPeriodicConfig syn_config;
  syn_config.num_series = Scaled(100);
  syn_config.grid_points = 30;
  data::Dataset synthetic = data::MakeSyntheticPeriodic(syn_config);

  data::DynamicalSystemConfig l96_config;
  l96_config.dim = 12;
  l96_config.trajectory_steps = Scaled(50) * 30;
  l96_config.window = 30;
  data::Dataset lorenz96 = data::MakeLorenz96(l96_config);
  data::NormalizeDataset(&lorenz96);

  data::UshcnLikeConfig ushcn_config;
  ushcn_config.num_stations = Scaled(30);
  ushcn_config.num_days = 120;
  data::Dataset ushcn = data::MakeUshcnLike(ushcn_config);
  data::NormalizeDataset(&ushcn);

  std::vector<ResultRow> rows;
  for (const Variant& variant : kVariants) {
    ResultRow row;
    row.model = variant.name;
    // Classification datasets.
    for (const data::Dataset* ds : {&synthetic, &lorenz96}) {
      ModelSpec spec;
      spec.input_dim = ds->num_features;
      spec.num_classes = ds->num_classes;
      variant.apply(&spec);
      auto model = MakeModel("DIFFODE", spec);
      ClsResult result = RunClassification(model.get(), *ds, epochs);
      row.values.push_back(result.accuracy);
      std::fprintf(stderr, "[fig5] %s / %s: acc %.3f\n", variant.name,
                   ds->name.c_str(), result.accuracy);
    }
    // USHCN interpolation.
    {
      ModelSpec spec;
      spec.input_dim = ushcn.num_features;
      spec.step = 1.0;
      variant.apply(&spec);
      auto model = MakeModel("DIFFODE", spec);
      RegResult result = RunRegression(
          model.get(), ushcn, train::RegressionTask::kInterpolation,
          Scaled(5));
      row.values.push_back(result.mse);
      std::fprintf(stderr, "[fig5] %s / ushcn: mse %.4f\n", variant.name,
                   result.mse);
    }
    rows.push_back(std::move(row));
  }
  PrintTable("Fig. 5: ablation (acc / acc / MSE x 1e-2)",
             {"synthetic-acc", "lorenz96-acc", "ushcn-mse"}, rows, csv);
  return 0;
}

}  // namespace
}  // namespace diffode::bench

int main(int argc, char** argv) { return diffode::bench::Main(argc, argv); }
