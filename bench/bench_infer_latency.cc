// Single-sequence inference latency: per-forward p50/p95 and sustained
// sequences/sec for DIFFODE and three baselines, with the tape on (the
// training-shape forward, arena-backed) and off (ag::NoGradScope). The
// no-grad column is what a serving deployment pays; the ratio is the cost
// of building the backward graph nobody uses at eval time.
//
// A second table sweeps the lockstep execution batch (core/batched_model.h)
// over B in {1, 4, 16, 32, 64} for the natively batched models, reporting
// sustained seqs/sec plus p50/p95 per *request* (one request = one batch,
// union-grid construction included).

#include <algorithm>
#include <memory>
#include <vector>

#include "autograd/arena.h"
#include "bench_common.h"
#include "core/batched_model.h"
#include "data/sequence_batch.h"
#include "tensor/buffer_pool.h"
#include "tensor/simd.h"

namespace diffode::bench {
namespace {

constexpr const char* kModels[] = {"DIFFODE", "GRU-D", "ODE-RNN",
                                   "Latent ODE"};

struct LatencyStats {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double seqs_per_sec = 0.0;
};

double Percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

// Times one ClassifyLogits per sequence, cycling through the split. Every
// forward runs under a warm arena + pool scope (reset between sequences),
// matching how the trainer's eval loop schedules work on a pool thread.
template <typename Fn>
LatencyStats Measure(const std::vector<data::IrregularSeries>& split,
                     Index repeats, const Fn& forward) {
  std::vector<double> ms;
  ms.reserve(static_cast<std::size_t>(repeats));
  ag::TapeArena::Scope arena_scope;
  tensor::BufferPool::Scope pool_scope;
  // Warm-up: populate the pool depot and arena blocks.
  for (Index i = 0; i < 3; ++i) {
    forward(split[static_cast<std::size_t>(i % split.size())]);
    ag::TapeArena::ThreadLocal().Reset();
  }
  train::WallTimer total;
  for (Index i = 0; i < repeats; ++i) {
    const auto& s = split[static_cast<std::size_t>(i) % split.size()];
    train::WallTimer t;
    forward(s);
    ms.push_back(t.Seconds() * 1000.0);
    ag::TapeArena::ThreadLocal().Reset();
  }
  LatencyStats out;
  out.p50_ms = Percentile(ms, 0.50);
  out.p95_ms = Percentile(ms, 0.95);
  out.seqs_per_sec = static_cast<double>(repeats) / total.Seconds();
  return out;
}

// Models with a native lockstep engine; the sweep measures the engine, not
// the BatchedDispatch fallback loop.
constexpr const char* kBatchedModels[] = {"DIFFODE", "GRU-D", "ODE-RNN"};
constexpr Index kBatchSizes[] = {1, 4, 16, 32, 64};

// Times classification requests of B sequences each, cycling through the
// split (a batch may repeat a sequence when B exceeds the split). The
// SequenceBatch view is built inside the timed region — serving pays it.
LatencyStats MeasureBatched(core::BatchedDispatch* dispatch,
                            const std::vector<data::IrregularSeries>& split,
                            Index batch, Index requests) {
  std::vector<double> ms;
  ms.reserve(static_cast<std::size_t>(requests));
  ag::TapeArena::Scope arena_scope;
  tensor::BufferPool::Scope pool_scope;
  std::size_t cursor = 0;
  const auto next_batch = [&]() {
    std::vector<const data::IrregularSeries*> ptrs;
    ptrs.reserve(static_cast<std::size_t>(batch));
    for (Index j = 0; j < batch; ++j)
      ptrs.push_back(&split[cursor++ % split.size()]);
    return ptrs;
  };
  for (Index i = 0; i < 2; ++i) {
    (void)dispatch->ClassifyLogitsBatched(data::MakeSequenceBatch(next_batch()));
    ag::TapeArena::ThreadLocal().Reset();
  }
  train::WallTimer total;
  for (Index i = 0; i < requests; ++i) {
    const auto ptrs = next_batch();
    train::WallTimer t;
    (void)dispatch->ClassifyLogitsBatched(data::MakeSequenceBatch(ptrs));
    ms.push_back(t.Seconds() * 1000.0);
    ag::TapeArena::ThreadLocal().Reset();
  }
  LatencyStats out;
  out.p50_ms = Percentile(ms, 0.50);
  out.p95_ms = Percentile(ms, 0.95);
  out.seqs_per_sec =
      static_cast<double>(requests * batch) / total.Seconds();
  return out;
}

int Main(int argc, char** argv) {
  const bool csv = HasFlag(argc, argv, "--csv");
  data::UshcnLikeConfig config;
  config.num_stations = Scaled(24);
  config.num_days = 120;
  data::Dataset ds = data::MakeUshcnLike(config);
  data::NormalizeDataset(&ds);
  const Index repeats = Scaled(60);

  if (csv) {
    std::printf(
        "table,Inference latency\nmodel,grad_p50_ms,grad_p95_ms,"
        "nograd_p50_ms,nograd_p95_ms,nograd_seqs_per_sec,speedup\n");
  } else {
    std::printf("\n=== Single-sequence inference latency ===\n");
    std::printf("%-16s %12s %12s %12s %12s %12s %9s\n", "model",
                "grad p50", "grad p95", "nograd p50", "nograd p95",
                "seqs/sec", "speedup");
  }
  for (const char* name : kModels) {
    ModelSpec spec;
    spec.input_dim = ds.num_features;
    spec.step = 1.0;
    auto model = MakeModel(name, spec);
    auto forward = [&](const data::IrregularSeries& s) {
      (void)model->TakeAuxiliaryLoss();
      (void)model->ClassifyLogits(s);
      (void)model->TakeAuxiliaryLoss();
    };
    const LatencyStats grad = Measure(ds.test, repeats, forward);
    const LatencyStats nograd = Measure(ds.test, repeats,
                                        [&](const data::IrregularSeries& s) {
                                          ag::NoGradScope no_grad;
                                          forward(s);
                                        });
    const double speedup =
        nograd.p50_ms > 0.0 ? grad.p50_ms / nograd.p50_ms : 0.0;
    if (csv) {
      std::printf("%s,%.3f,%.3f,%.3f,%.3f,%.1f,%.2f\n", name, grad.p50_ms,
                  grad.p95_ms, nograd.p50_ms, nograd.p95_ms,
                  nograd.seqs_per_sec, speedup);
    } else {
      std::printf("%-16s %10.3fms %10.3fms %10.3fms %10.3fms %12.1f %8.2fx\n",
                  name, grad.p50_ms, grad.p95_ms, nograd.p50_ms,
                  nograd.p95_ms, nograd.seqs_per_sec, speedup);
    }
  }

  if (csv) {
    std::printf(
        "table,Batched execution\nmodel,batch,seqs_per_sec,p50_ms,p95_ms\n");
  } else {
    std::printf("\n=== Batched lockstep execution (classification) ===\n");
    std::printf("%-16s %6s %12s %14s %14s\n", "model", "batch", "seqs/sec",
                "req p50", "req p95");
  }
  for (const char* name : kBatchedModels) {
    ModelSpec spec;
    spec.input_dim = ds.num_features;
    spec.step = 1.0;
    auto model = MakeModel(name, spec);
    core::BatchedDispatch dispatch(model.get());
    for (Index batch : kBatchSizes) {
      const Index requests = std::max<Index>(16, repeats / batch);  // floor: stable p50/p95 at large B
      const LatencyStats stats =
          MeasureBatched(&dispatch, ds.test, batch, requests);
      if (csv) {
        std::printf("%s,%lld,%.1f,%.3f,%.3f\n", name,
                    static_cast<long long>(batch), stats.seqs_per_sec,
                    stats.p50_ms, stats.p95_ms);
      } else {
        std::printf("%-16s %6lld %12.1f %12.3fms %12.3fms\n", name,
                    static_cast<long long>(batch), stats.seqs_per_sec,
                    stats.p50_ms, stats.p95_ms);
      }
    }
  }
  // Serving precision sweep: the same DIFFODE weights frozen at f64 vs f32
  // (the f32 tier of diffode_f32.cc), across the lockstep batch sizes. ISA
  // and precision columns let the perf trajectory distinguish
  // f32-vs-f64 and avx2-vs-avx512 rows (scripts/bench_report.sh).
  const char* isa_name = simd::IsaName(simd::ActiveIsa());
  if (csv) {
    std::printf(
        "table,Serving precision sweep\n"
        "model,precision,isa,batch,seqs_per_sec,p50_ms,p95_ms\n");
  } else {
    std::printf("\n=== Serving precision sweep (DIFFODE, isa=%s) ===\n",
                isa_name);
    std::printf("%-10s %6s %12s %14s %14s\n", "precision", "batch",
                "seqs/sec", "req p50", "req p95");
  }
  // Batch-major, precision-minor: the f64 and f32 cells of one batch size
  // run back to back, so the pair shares the same thermal/frequency regime
  // and their ratio is meaningful even on a drifting host.
  std::vector<std::unique_ptr<core::SequenceModel>> precision_models;
  std::vector<std::unique_ptr<core::BatchedDispatch>> precision_dispatch;
  for (const Precision precision : {Precision::kF64, Precision::kF32}) {
    ModelSpec spec;
    spec.input_dim = ds.num_features;
    spec.step = 1.0;
    precision_models.push_back(MakeModel("DIFFODE", spec));
    precision_models.back()->Freeze(precision);
    precision_dispatch.push_back(std::make_unique<core::BatchedDispatch>(
        precision_models.back().get()));
  }
  for (Index batch : kBatchSizes) {
    const Index requests = std::max<Index>(16, repeats / batch);  // floor: stable p50/p95 at large B
    for (std::size_t pi = 0; pi < 2; ++pi) {
      const Precision precision = pi == 0 ? Precision::kF64 : Precision::kF32;
      const LatencyStats stats = MeasureBatched(precision_dispatch[pi].get(),
                                                ds.test, batch, requests);
      if (csv) {
        std::printf("DIFFODE,%s,%s,%lld,%.1f,%.3f,%.3f\n",
                    PrecisionName(precision), isa_name,
                    static_cast<long long>(batch), stats.seqs_per_sec,
                    stats.p50_ms, stats.p95_ms);
      } else {
        std::printf("%-10s %6lld %12.1f %12.3fms %12.3fms\n",
                    PrecisionName(precision), static_cast<long long>(batch),
                    stats.seqs_per_sec, stats.p50_ms, stats.p95_ms);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace diffode::bench

int main(int argc, char** argv) { return diffode::bench::Main(argc, argv); }
