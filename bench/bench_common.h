#ifndef DIFFODE_BENCH_BENCH_COMMON_H_
#define DIFFODE_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/zoo.h"
#include "core/diffode_model.h"
#include "data/generators.h"
#include "data/splits.h"
#include "train/timer.h"
#include "train/trainer.h"

namespace diffode::bench {

// Workload scale for the experiment benches. The paper trained on a GPU
// cluster; this harness reruns every experiment on one CPU core, so dataset
// sizes and epoch budgets are scaled down (the *shape* of the results — who
// wins and by roughly what factor — is the reproduction target, per
// EXPERIMENTS.md). Override with DIFFODE_BENCH_SCALE=tiny|small|full.
enum class Scale { kTiny, kSmall, kFull };

inline Scale GetScale() {
  const char* env = std::getenv("DIFFODE_BENCH_SCALE");
  if (env == nullptr) return Scale::kSmall;
  if (std::strcmp(env, "tiny") == 0) return Scale::kTiny;
  if (std::strcmp(env, "full") == 0) return Scale::kFull;
  return Scale::kSmall;
}

// Multiplier applied to sample counts / epochs.
inline Scalar ScaleFactor(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return 0.35;
    case Scale::kSmall:
      return 1.0;
    case Scale::kFull:
      return 3.0;
  }
  return 1.0;
}

inline Index Scaled(Index base) {
  const Scalar f = ScaleFactor(GetScale());
  return std::max<Index>(2, static_cast<Index>(static_cast<Scalar>(base) * f));
}

// Independent training seeds per (model, task) cell; the paper reports
// mean +/- std over repeats.
inline Index NumSeeds() {
  switch (GetScale()) {
    case Scale::kTiny:
      return 1;
    case Scale::kSmall:
      return 2;
    case Scale::kFull:
      return 3;
  }
  return 1;
}

struct MeanStd {
  Scalar mean = 0.0;
  Scalar stddev = 0.0;
};

inline MeanStd Summarize(const std::vector<Scalar>& xs) {
  MeanStd out;
  if (xs.empty()) return out;
  for (Scalar x : xs) out.mean += x;
  out.mean /= static_cast<Scalar>(xs.size());
  for (Scalar x : xs) out.stddev += (x - out.mean) * (x - out.mean);
  out.stddev = std::sqrt(out.stddev / static_cast<Scalar>(xs.size()));
  return out;
}

// Uniform model factory across DIFFODE and the baseline zoo, sized per the
// paper's implementation details (Sec. IV-A4) but with the single-core
// defaults documented in EXPERIMENTS.md.
struct ModelSpec {
  Index input_dim = 1;
  Index num_classes = 2;
  Index latent_dim = 16;
  Scalar step = 0.5;
  Index num_heads = 1;
  std::uint64_t seed = 42;
  // DIFFODE-only switches (Table VI / Fig. 3 / Fig. 5 sweeps).
  sparsity::PtStrategy pt_strategy = sparsity::PtStrategy::kMaxHoyer;
  core::EncoderType encoder = core::EncoderType::kGru;
  core::OutputHead head = core::OutputHead::kHippo;
  bool use_attention = true;
};

inline std::unique_ptr<core::SequenceModel> MakeModel(const std::string& name,
                                                      const ModelSpec& spec) {
  if (name == "DIFFODE") {
    core::DiffOdeConfig config;
    config.input_dim = spec.input_dim;
    config.num_classes = spec.num_classes;
    config.latent_dim = spec.latent_dim;
    config.hippo_dim = 12;
    config.info_dim = 12;
    config.step = spec.step;
    config.num_heads = spec.num_heads;
    config.pt_strategy = spec.pt_strategy;
    config.encoder = spec.encoder;
    config.head = spec.head;
    config.use_attention = spec.use_attention;
    config.seed = spec.seed;
    return std::make_unique<core::DiffOde>(config);
  }
  baselines::BaselineConfig config;
  config.input_dim = spec.input_dim;
  config.num_classes = spec.num_classes;
  config.hidden_dim = spec.latent_dim;
  config.hippo_dim = 12;
  config.step = spec.step;
  config.seed = spec.seed;
  return baselines::MakeBaseline(name, config);
}

// Rows of the paper tables we regenerate, with the published value attached
// so the printed output is directly comparable.
struct ResultRow {
  std::string model;
  std::vector<Scalar> values;
};

inline void PrintTable(const std::string& title,
                       const std::vector<std::string>& columns,
                       const std::vector<ResultRow>& rows, bool csv) {
  if (csv) {
    std::printf("table,%s\n", title.c_str());
    std::printf("model");
    for (const auto& c : columns) std::printf(",%s", c.c_str());
    std::printf("\n");
    for (const auto& r : rows) {
      std::printf("%s", r.model.c_str());
      for (Scalar v : r.values) std::printf(",%.4f", v);
      std::printf("\n");
    }
    return;
  }
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-16s", "model");
  for (const auto& c : columns) std::printf(" %14s", c.c_str());
  std::printf("\n");
  for (const auto& r : rows) {
    std::printf("%-16s", r.model.c_str());
    for (Scalar v : r.values) std::printf(" %14.4f", v);
    std::printf("\n");
  }
}

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

// Classification experiment: train, report test top-1 accuracy.
struct ClsResult {
  Scalar accuracy = 0.0;
  Scalar seconds_per_epoch = 0.0;
};

inline ClsResult RunClassification(core::SequenceModel* model,
                                   const data::Dataset& ds, Index epochs,
                                   Index max_train = -1,
                                   std::uint64_t seed = 7) {
  train::TrainOptions options;
  options.epochs = epochs;
  options.batch_size = 16;
  options.lr = 3e-3;          // faster convergence on the scaled workloads
  options.patience = epochs;  // fixed budget; no early stop in benches
  options.seed = seed;
  options.max_train_samples = max_train;
  train::FitResult fit = train::TrainClassifier(model, ds, options);
  ClsResult out;
  out.seconds_per_epoch = fit.seconds_per_epoch;
  out.accuracy = train::EvaluateAccuracy(model, ds.test);
  return out;
}

// Regression experiment: train on the task, report reported-scale MSE.
struct RegResult {
  Scalar mse = 0.0;  // x 10^-2 units (Eq. 38)
  Scalar seconds_per_epoch = 0.0;
};

inline RegResult RunRegression(core::SequenceModel* model,
                               const data::Dataset& ds,
                               train::RegressionTask task, Index epochs,
                               Index max_train = -1, Index max_eval = -1,
                               std::uint64_t seed = 7) {
  train::TrainOptions options;
  options.epochs = epochs;
  options.batch_size = 8;
  options.lr = 3e-3;
  options.patience = epochs;
  options.seed = seed;
  options.max_train_samples = max_train;
  options.max_eval_samples = max_eval;
  train::FitResult fit = train::TrainRegressor(model, ds, task, options);
  RegResult out;
  out.seconds_per_epoch = fit.seconds_per_epoch;
  out.mse = train::EvaluateMse(model, ds.test, task,
                               options.interp_target_frac, 17, max_eval);
  return out;
}

}  // namespace diffode::bench

#endif  // DIFFODE_BENCH_BENCH_COMMON_H_
