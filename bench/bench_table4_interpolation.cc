// Reproduces Table IV: interpolation and extrapolation MSE (x 10^-2, Eq. 38)
// on the USHCN-like, PhysioNet-like and LargeST-like datasets for DIFFODE
// and the baseline zoo.

#include "bench_common.h"

namespace diffode::bench {
namespace {

struct PaperRow {
  const char* model;
  // ushcn-interp, ushcn-extrap, physio-interp, physio-extrap,
  // largest-interp, largest-extrap
  Scalar v[6];
};

constexpr PaperRow kPaper[] = {
    {"mTAN", {1.766, 2.360, 0.208, 0.340, 411.81, 466.58}},
    {"ContiFormer", {0.837, 1.634, 0.212, 0.376, 413.62, 457.52}},
    {"HiPPO-obs", {1.268, 2.417, 0.323, 0.855, 475.82, 522.62}},
    {"HiPPO-RNN", {1.172, 2.324, 0.293, 0.769, 457.25, 497.25}},
    {"S4", {0.823, 1.504, 0.229, 0.535, 437.73, 453.73}},
    {"GRU", {1.068, 2.071, 0.364, 0.880, 522.36, 522.36}},
    {"GRU-D", {0.994, 1.718, 0.338, 0.873, 524.13, 527.46}},
    {"ODE-RNN", {0.831, 1.955, 0.236, 0.467, 417.45, 451.15}},
    {"Latent ODE", {1.798, 2.034, 0.212, 0.725, 467.26, 527.18}},
    {"GRU-ODE-Bayes", {0.841, 5.437, 0.521, 0.798, 486.82, 513.42}},
    {"NRDE", {0.961, 1.923, 0.434, 0.819, 517.35, 557.95}},
    {"PolyODE", {0.806, 1.842, 0.205, 0.598, 425.63, 485.57}},
    {"DIFFODE", {0.765, 0.869, 0.175, 0.308, 365.14, 396.23}},
};

int Main(int argc, char** argv) {
  const bool csv = HasFlag(argc, argv, "--csv");
  const Index epochs = Scaled(15);

  data::UshcnLikeConfig ushcn_config;
  ushcn_config.num_stations = Scaled(36);
  ushcn_config.num_days = 120;
  data::Dataset ushcn = data::MakeUshcnLike(ushcn_config);
  data::NormalizeDataset(&ushcn);

  data::PhysioNetLikeConfig physio_config;
  physio_config.num_patients = Scaled(36);
  physio_config.num_channels = 12;  // scaled-down 37-channel ICU panel
  physio_config.max_obs_per_patient = 40;
  data::Dataset physio = data::MakePhysioNetLike(physio_config);
  data::NormalizeDataset(&physio);

  data::LargeStLikeConfig traffic_config;
  traffic_config.num_sensors = Scaled(30);
  traffic_config.hours_per_sensor = 24 * 7;
  data::Dataset traffic = data::MakeLargeStLike(traffic_config);
  data::NormalizeDataset(&traffic);

  struct Job {
    const data::Dataset* ds;
    train::RegressionTask task;
    const char* tag;
  };
  const Job jobs[] = {
      {&ushcn, train::RegressionTask::kInterpolation, "ushcn-interp"},
      {&ushcn, train::RegressionTask::kExtrapolation, "ushcn-extrap"},
      {&physio, train::RegressionTask::kInterpolation, "physio-interp"},
      {&physio, train::RegressionTask::kExtrapolation, "physio-extrap"},
      {&traffic, train::RegressionTask::kInterpolation, "largest-interp"},
      {&traffic, train::RegressionTask::kExtrapolation, "largest-extrap"},
  };

  std::vector<ResultRow> rows;
  for (const PaperRow& paper : kPaper) {
    ResultRow row;
    row.model = paper.model;
    for (const Job& job : jobs) {
      std::vector<Scalar> mses;
      for (Index seed = 0; seed < NumSeeds(); ++seed) {
        ModelSpec spec;
        spec.input_dim = job.ds->num_features;
        spec.step = 0.5;
        spec.latent_dim = 32;
        spec.seed = 42 + static_cast<std::uint64_t>(seed);
        auto model = MakeModel(paper.model, spec);
        RegResult result =
            RunRegression(model.get(), *job.ds, job.task, epochs, -1, -1,
                          7 + static_cast<std::uint64_t>(seed));
        mses.push_back(result.mse);
      }
      MeanStd stat = Summarize(mses);
      row.values.push_back(stat.mean);
      std::fprintf(stderr, "[table4] %s / %s: mse %.4f +/- %.4f\n",
                   paper.model, job.tag, stat.mean, stat.stddev);
    }
    for (Scalar v : paper.v) row.values.push_back(v);
    rows.push_back(std::move(row));
  }
  PrintTable(
      "Table IV: interpolation/extrapolation MSE (x 1e-2)",
      {"ushcn-int", "ushcn-ext", "physio-int", "physio-ext", "traffic-int",
       "traffic-ext", "p_ush-int", "p_ush-ext", "p_phy-int", "p_phy-ext",
       "p_tra-int", "p_tra-ext"},
      rows, csv);
  return 0;
}

}  // namespace
}  // namespace diffode::bench

int main(int argc, char** argv) { return diffode::bench::Main(argc, argv); }
