// Ablation benches for this implementation's own design choices (the ones
// DESIGN.md calls out beyond the paper's Fig. 5): the DHS-definition
// consistency term, the unrolled solver scheme, the HiPPO timescale that
// keeps Eq. 36 non-stiff, and the Gram-matrix ridge in the attention
// inversion. Each row trains DIFFODE on USHCN-like extrapolation.

#include "bench_common.h"
#include "ode/diff_integrator.h"

namespace diffode::bench {
namespace {

struct Variant {
  const char* name;
  Scalar consistency_weight = 0.1;
  ode::DiffMethod method = ode::DiffMethod::kMidpoint;
  Scalar hippo_timescale = 0.0;  // 0 = auto
  Scalar ridge = 1e-6;
};

const Variant kVariants[] = {
    {"default"},
    {"consistency=0", 0.0},
    {"consistency=0.05", 0.05},
    {"consistency=0.3", 0.3},
    {"solver=euler", 0.1, ode::DiffMethod::kEuler},
    {"solver=rk4", 0.1, ode::DiffMethod::kRk4},
    {"hippo-tau=1(stiff)", 0.1, ode::DiffMethod::kMidpoint, 1.0},
    {"hippo-tau=24", 0.1, ode::DiffMethod::kMidpoint, 24.0},
    {"ridge=1e-8", 0.1, ode::DiffMethod::kMidpoint, 0.0, 1e-8},
    {"ridge=1e-3", 0.1, ode::DiffMethod::kMidpoint, 0.0, 1e-3},
};

int Main(int argc, char** argv) {
  const bool csv = HasFlag(argc, argv, "--csv");
  const Index epochs = Scaled(12);
  data::UshcnLikeConfig config;
  config.num_stations = Scaled(36);
  config.num_days = 120;
  data::Dataset ds = data::MakeUshcnLike(config);
  data::NormalizeDataset(&ds);

  if (csv) {
    std::printf("table,Design ablations\nvariant,extrap_mse,s_per_epoch\n");
  } else {
    std::printf("\n=== Design-choice ablations (USHCN-like extrapolation) "
                "===\n");
    std::printf("%-22s %14s %12s\n", "variant", "extrap MSE", "s/epoch");
  }
  for (const Variant& variant : kVariants) {
    core::DiffOdeConfig mconfig;
    mconfig.input_dim = ds.num_features;
    mconfig.latent_dim = 32;
    mconfig.hippo_dim = 12;
    mconfig.info_dim = 12;
    mconfig.step = 0.5;
    mconfig.consistency_weight = variant.consistency_weight;
    mconfig.hippo_timescale = variant.hippo_timescale;
    mconfig.ridge = variant.ridge;
    core::DiffOde model(mconfig);
    model.set_diff_method(variant.method);
    RegResult result = RunRegression(
        &model, ds, train::RegressionTask::kExtrapolation, epochs);
    if (csv) {
      std::printf("%s,%.4f,%.4f\n", variant.name, result.mse,
                  result.seconds_per_epoch);
    } else {
      std::printf("%-22s %14.4f %12.3f\n", variant.name, result.mse,
                  result.seconds_per_epoch);
    }
  }
  return 0;
}

}  // namespace
}  // namespace diffode::bench

int main(int argc, char** argv) { return diffode::bench::Main(argc, argv); }
