// Reproduces Table VI: DIFFODE with the three p_t recovery strategies
// (maxHoyer vs minNorm vs adaH) on the USHCN-like and PhysioNet-like
// interpolation / extrapolation tasks.

#include "bench_common.h"

namespace diffode::bench {
namespace {

struct PaperRow {
  const char* task;
  Scalar max_hoyer, min_norm, ada_h;
};

constexpr PaperRow kPaper[] = {
    {"ushcn-interp", 0.765, 0.804, 0.798},
    {"ushcn-extrap", 0.869, 0.922, 0.913},
    {"physio-interp", 0.175, 0.201, 0.197},
    {"physio-extrap", 0.308, 0.346, 0.351},
};

int Main(int argc, char** argv) {
  const bool csv = HasFlag(argc, argv, "--csv");
  const Index epochs = Scaled(15);

  data::UshcnLikeConfig ushcn_config;
  ushcn_config.num_stations = Scaled(30);
  ushcn_config.num_days = 120;
  data::Dataset ushcn = data::MakeUshcnLike(ushcn_config);
  data::NormalizeDataset(&ushcn);

  data::PhysioNetLikeConfig physio_config;
  physio_config.num_patients = Scaled(30);
  physio_config.num_channels = 12;
  physio_config.max_obs_per_patient = 40;
  data::Dataset physio = data::MakePhysioNetLike(physio_config);
  data::NormalizeDataset(&physio);

  struct Job {
    const data::Dataset* ds;
    train::RegressionTask task;
  };
  const Job jobs[] = {
      {&ushcn, train::RegressionTask::kInterpolation},
      {&ushcn, train::RegressionTask::kExtrapolation},
      {&physio, train::RegressionTask::kInterpolation},
      {&physio, train::RegressionTask::kExtrapolation},
  };
  const sparsity::PtStrategy strategies[] = {
      sparsity::PtStrategy::kMaxHoyer, sparsity::PtStrategy::kMinNorm,
      sparsity::PtStrategy::kAdaH};

  std::vector<ResultRow> rows;
  for (std::size_t j = 0; j < 4; ++j) {
    ResultRow row;
    row.model = kPaper[j].task;
    for (auto strategy : strategies) {
      std::vector<Scalar> mses;
      for (Index seed = 0; seed < NumSeeds(); ++seed) {
        ModelSpec spec;
        spec.input_dim = jobs[j].ds->num_features;
        spec.step = 0.5;
        spec.latent_dim = 32;
        spec.pt_strategy = strategy;
        spec.seed = 42 + static_cast<std::uint64_t>(seed);
        auto model = MakeModel("DIFFODE", spec);
        RegResult result =
            RunRegression(model.get(), *jobs[j].ds, jobs[j].task, epochs, -1,
                          -1, 7 + static_cast<std::uint64_t>(seed));
        mses.push_back(result.mse);
      }
      MeanStd stat = Summarize(mses);
      row.values.push_back(stat.mean);
      std::fprintf(stderr, "[table6] %s strategy %d: mse %.4f +/- %.4f\n",
                   kPaper[j].task, static_cast<int>(strategy), stat.mean,
                   stat.stddev);
    }
    row.values.push_back(kPaper[j].max_hoyer);
    row.values.push_back(kPaper[j].min_norm);
    row.values.push_back(kPaper[j].ada_h);
    rows.push_back(std::move(row));
  }
  PrintTable("Table VI: p_t strategy ablation, MSE (x 1e-2)",
             {"maxHoyer", "minNorm", "adaH", "p_maxH", "p_minN", "p_adaH"},
             rows, csv);
  return 0;
}

}  // namespace
}  // namespace diffode::bench

int main(int argc, char** argv) { return diffode::bench::Main(argc, argv); }
