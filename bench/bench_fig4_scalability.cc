// Reproduces Fig. 4: scalability of DIFFODE vs representative baselines as
// the USHCN-like dataset grows along two axes — number of stations
// ("features" axis in the paper) and temporal length. For each sub-dataset
// we report seconds per training epoch and interpolation MSE.

#include "bench_common.h"

namespace diffode::bench {
namespace {

const char* kModels[] = {"DIFFODE", "ODE-RNN", "ContiFormer",
                         "GRU-D",   "mTAN",    "HiPPO-obs"};

int Main(int argc, char** argv) {
  const bool csv = HasFlag(argc, argv, "--csv");
  const Index epochs = Scaled(3);
  const Scalar fractions[] = {0.2, 0.4, 0.6, 0.8, 1.0};
  const Index base_stations = Scaled(40);
  const Index base_days = 150;

  if (csv) {
    std::printf("table,Fig 4: scalability\n");
    std::printf("axis,fraction,model,seconds_per_epoch,interp_mse\n");
  } else {
    std::printf("\n=== Fig. 4: scalability (USHCN-like) ===\n");
    std::printf("%-10s %-8s %-14s %16s %12s\n", "axis", "frac", "model",
                "s/epoch", "interp MSE");
  }
  for (int axis = 0; axis < 2; ++axis) {
    const char* axis_name = axis == 0 ? "stations" : "temporal";
    for (Scalar frac : fractions) {
      data::UshcnLikeConfig config;
      config.num_stations =
          axis == 0 ? std::max<Index>(6, static_cast<Index>(base_stations * frac))
                    : base_stations;
      config.num_days =
          axis == 1 ? std::max<Index>(30, static_cast<Index>(base_days * frac))
                    : base_days;
      data::Dataset ds = data::MakeUshcnLike(config);
      data::NormalizeDataset(&ds);
      for (const char* name : kModels) {
        ModelSpec spec;
        spec.input_dim = ds.num_features;
        spec.step = 0.5;
        spec.latent_dim = 32;
        auto model = MakeModel(name, spec);
        RegResult result = RunRegression(
            model.get(), ds, train::RegressionTask::kInterpolation, epochs);
        if (csv) {
          std::printf("%s,%.1f,%s,%.4f,%.4f\n", axis_name, frac, name,
                      result.seconds_per_epoch, result.mse);
        } else {
          std::printf("%-10s %-8.1f %-14s %16.3f %12.4f\n", axis_name, frac,
                      name, result.seconds_per_epoch, result.mse);
        }
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace diffode::bench

int main(int argc, char** argv) { return diffode::bench::Main(argc, argv); }
