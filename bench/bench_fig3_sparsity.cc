// Reproduces Fig. 3: sparsity of the recovered attention weights p_t under
// the three strategies. The paper shows gray-scale maps; this bench prints
// the scalar summaries behind them — the Hoyer metric and the effective
// support (how many observations carry 90% of the attention mass) averaged
// over the DHS trajectory — plus an ASCII rendition of one attention map.

#include <cmath>

#include "bench_common.h"
#include "sparsity/hoyer.h"
#include "sparsity/pt_solver.h"

namespace diffode::bench {
namespace {

int Main(int argc, char** argv) {
  const bool csv = HasFlag(argc, argv, "--csv");
  // A briefly-trained DIFFODE on the USHCN-like interpolation task supplies
  // realistic latent matrices Z and hidden states S.
  data::UshcnLikeConfig config;
  config.num_stations = Scaled(20);
  config.num_days = 100;
  data::Dataset ds = data::MakeUshcnLike(config);
  data::NormalizeDataset(&ds);
  ModelSpec spec;
  spec.input_dim = ds.num_features;
  spec.step = 1.0;
  auto model_owner = MakeModel("DIFFODE", spec);
  auto* model = static_cast<core::DiffOde*>(model_owner.get());
  RunRegression(model, ds, train::RegressionTask::kInterpolation, Scaled(4));

  struct Stats {
    Scalar hoyer = 0.0;
    Scalar support = 0.0;
    Index count = 0;
  };
  Stats stats[3];
  const char* names[3] = {"maxHoyer", "minNorm", "adaH"};
  const sparsity::PtStrategy strategies[3] = {
      sparsity::PtStrategy::kMaxHoyer, sparsity::PtStrategy::kMinNorm,
      sparsity::PtStrategy::kAdaH};

  Rng rng(3);
  std::vector<std::vector<Tensor>> first_maps(3);
  const Index eval_series = std::min<Index>(8, ds.test.size());
  for (Index si = 0; si < eval_series; ++si) {
    const auto& series = ds.test[static_cast<std::size_t>(si)];
    if (series.length() < 6) continue;
    // Forward attention rows give the DHS trajectory S_t at each time.
    auto p_rows = model->AttentionTrajectory(series);
    Tensor z = model->LatentZ(series);
    sparsity::AttentionInverse inv = sparsity::AttentionInverse::Build(z);
    Tensor h_ada = rng.NormalTensor(Shape{1, z.rows()});
    for (const auto& p_fwd : p_rows) {
      Tensor s = p_fwd.MatMul(z);  // 1 x d hidden state
      for (int k = 0; k < 3; ++k) {
        Tensor p = sparsity::RecoverP(inv, s, strategies[k], &h_ada);
        stats[k].hoyer += sparsity::HoyerAbs(p);
        stats[k].support += static_cast<Scalar>(
            sparsity::EffectiveSupport(p));
        stats[k].count += 1;
        if (si == 0) first_maps[static_cast<std::size_t>(k)].push_back(p);
      }
    }
  }

  if (csv) {
    std::printf("table,Fig 3: attention sparsity\n");
    std::printf("strategy,mean_hoyer,mean_effective_support\n");
  } else {
    std::printf("\n=== Fig. 3: sparsity of recovered p_t ===\n");
    std::printf("%-12s %14s %22s\n", "strategy", "mean Hoyer",
                "mean 90pct support");
  }
  for (int k = 0; k < 3; ++k) {
    const Scalar n = std::max<Scalar>(stats[k].count, 1);
    if (csv) {
      std::printf("%s,%.4f,%.2f\n", names[k], stats[k].hoyer / n,
                  stats[k].support / n);
    } else {
      std::printf("%-12s %14.4f %22.2f\n", names[k], stats[k].hoyer / n,
                  stats[k].support / n);
    }
  }
  if (!csv) {
    // ASCII gray-scale maps (darker = larger |p|), one row per time point.
    const char* shades = " .:-=+*#%@";
    for (int k = 0; k < 3; ++k) {
      std::printf("\n--- attention map, %s (rows: query times; cols: "
                  "observations) ---\n",
                  names[k]);
      for (const auto& p : first_maps[static_cast<std::size_t>(k)]) {
        Scalar maxv = 1e-12;
        for (Index i = 0; i < p.numel(); ++i)
          maxv = std::max(maxv, std::fabs(p[i]));
        for (Index i = 0; i < p.numel(); ++i) {
          const int level = static_cast<int>(
              std::round(std::fabs(p[i]) / maxv * 9.0));
          std::putchar(shades[std::clamp(level, 0, 9)]);
        }
        std::putchar('\n');
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace diffode::bench

int main(int argc, char** argv) { return diffode::bench::Main(argc, argv); }
