// Reproduces Table III: irregular time-series classification accuracy on the
// synthetic periodic dataset and the Lorenz-63 / Lorenz-96 chaotic systems,
// for DIFFODE and the full baseline zoo. Paper values are printed alongside
// for comparison; EXPERIMENTS.md records both.

#include "bench_common.h"

namespace diffode::bench {
namespace {

struct PaperRow {
  const char* model;
  Scalar synthetic, lorenz63, lorenz96;
};

constexpr PaperRow kPaper[] = {
    {"mTAN", 0.757, 0.727, 0.713},
    {"ContiFormer", 0.992, 0.988, 0.987},
    {"HiPPO-obs", 0.758, 0.837, 0.949},
    {"HiPPO-RNN", 0.742, 0.804, 0.944},
    {"S4", 0.994, 0.911, 0.948},
    {"GRU", 0.771, 0.776, 0.749},
    {"GRU-D", 0.810, 0.733, 0.775},
    {"ODE-RNN", 0.870, 0.813, 0.954},
    {"Latent ODE", 0.782, 0.713, 0.762},
    {"GRU-ODE-Bayes", 0.968, 0.825, 0.925},
    {"NRDE", 0.773, 0.604, 0.606},
    {"PolyODE", 0.994, 0.992, 0.984},
    {"DIFFODE", 0.997, 0.993, 0.991},
};

data::Dataset MakeSynthetic() {
  data::SyntheticPeriodicConfig config;
  config.num_series = Scaled(300);
  config.grid_points = 30;
  config.keep_rate = 0.7;
  return data::MakeSyntheticPeriodic(config);
}

data::Dataset MakeL63() {
  data::DynamicalSystemConfig config;
  config.dim = 12;  // scaled-down stand-in for the 63-dim ensemble
  config.trajectory_steps = Scaled(150) * 25;
  config.window = 25;
  config.keep_rate = 0.3;
  data::Dataset ds = data::MakeLorenz63(config);
  data::NormalizeDataset(&ds);
  return ds;
}

data::Dataset MakeL96() {
  data::DynamicalSystemConfig config;
  config.dim = 12;
  config.trajectory_steps = Scaled(150) * 25;
  config.window = 25;
  config.keep_rate = 0.3;
  data::Dataset ds = data::MakeLorenz96(config);
  data::NormalizeDataset(&ds);
  return ds;
}

int Main(int argc, char** argv) {
  const bool csv = HasFlag(argc, argv, "--csv");
  const Index epochs = Scaled(16);
  std::vector<data::Dataset> datasets = {MakeSynthetic(), MakeL63(),
                                         MakeL96()};
  std::vector<ResultRow> rows;
  for (const PaperRow& paper : kPaper) {
    ResultRow row;
    row.model = paper.model;
    for (const auto& ds : datasets) {
      std::vector<Scalar> accs;
      for (Index seed = 0; seed < NumSeeds(); ++seed) {
        ModelSpec spec;
        spec.input_dim = ds.num_features;
        spec.num_classes = ds.num_classes;
        spec.seed = 42 + static_cast<std::uint64_t>(seed);
        auto model = MakeModel(paper.model, spec);
        ClsResult result = RunClassification(
            model.get(), ds, epochs, -1, 7 + static_cast<std::uint64_t>(seed));
        accs.push_back(result.accuracy);
      }
      MeanStd stat = Summarize(accs);
      row.values.push_back(stat.mean);
      std::fprintf(stderr, "[table3] %s / %s: acc %.3f +/- %.3f\n",
                   paper.model, ds.name.c_str(), stat.mean, stat.stddev);
    }
    row.values.push_back(paper.synthetic);
    row.values.push_back(paper.lorenz63);
    row.values.push_back(paper.lorenz96);
    rows.push_back(std::move(row));
  }
  PrintTable("Table III: classification top-1 accuracy",
             {"synthetic", "lorenz63", "lorenz96", "paper_syn", "paper_l63",
              "paper_l96"},
             rows, csv);
  return 0;
}

}  // namespace
}  // namespace diffode::bench

int main(int argc, char** argv) { return diffode::bench::Main(argc, argv); }
