// Reproduces Table V: theoretical time complexity plus measured seconds per
// training epoch on the USHCN-like dataset for the models the paper lists.
// Absolute times differ from the paper (single CPU core vs the authors'
// GPU); the reproduction target is the *relative ordering*.

#include "bench_common.h"

namespace diffode::bench {
namespace {

struct Row {
  const char* model;
  const char* complexity;
  Scalar paper_seconds;
};

constexpr Row kRows[] = {
    {"ContiFormer", "O(d^2 n^2 L)", 154},
    {"HiPPO-obs", "O(dc^2 L)", 86},
    {"GRU-D", "O(d^2 n)", 232},
    {"ODE-RNN", "O(d^2 L)", 91},
    {"Latent ODE", "O(d^2 L)", 110},
    {"PolyODE", "O(dc^2 d^2 L)", 131},
    {"DIFFODE", "O(dc^2 n L)", 126},
};

int Main(int argc, char** argv) {
  const bool csv = HasFlag(argc, argv, "--csv");
  data::UshcnLikeConfig config;
  config.num_stations = Scaled(30);
  config.num_days = 120;
  data::Dataset ds = data::MakeUshcnLike(config);
  data::NormalizeDataset(&ds);

  std::vector<ResultRow> rows;
  if (!csv) {
    std::printf("\n=== Table V: model efficiency ===\n");
    std::printf("%-16s %-16s %14s %14s\n", "model", "complexity",
                "ms/epoch", "paper s/epoch");
  } else {
    std::printf("table,Table V: efficiency\nmodel,complexity,ms_per_epoch,"
                "paper_s_per_epoch\n");
  }
  for (const Row& r : kRows) {
    ModelSpec spec;
    spec.input_dim = ds.num_features;
    spec.step = 1.0;
    auto model = MakeModel(r.model, spec);
    RegResult result = RunRegression(
        model.get(), ds, train::RegressionTask::kInterpolation, 3);
    const double ms = result.seconds_per_epoch * 1000.0;
    if (csv) {
      std::printf("%s,%s,%.1f,%.0f\n", r.model, r.complexity, ms,
                  r.paper_seconds);
    } else {
      std::printf("%-16s %-16s %14.1f %14.0f\n", r.model, r.complexity, ms,
                  r.paper_seconds);
    }
  }
  return 0;
}

}  // namespace
}  // namespace diffode::bench

int main(int argc, char** argv) { return diffode::bench::Main(argc, argv); }
