// google-benchmark micro-benchmarks for the numeric substrates: tensor
// algebra, pseudoinverses, ODE solver steps, the DHS derivative, and the
// attention inversion. These quantify the per-step costs behind the
// complexity rows of Table V.

#include <benchmark/benchmark.h>

#include "autograd/arena.h"
#include "autograd/ops.h"
#include "core/dhs.h"
#include "core/parallel.h"
#include "linalg/pinv.h"
#include "ode/solver.h"
#include "sparsity/pt_solver.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels.h"
#include "tensor/random.h"
#include "tensor/simd.h"

namespace diffode {
namespace {

void BM_MatMul(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  Tensor a = rng.NormalTensor(Shape{n, n});
  Tensor b = rng.NormalTensor(Shape{n, n});
  for (auto _ : state) benchmark::DoNotOptimize(a.MatMul(b));
  state.SetComplexityN(n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128)->Arg(256)->Complexity();

// The seed repository's unblocked triple loop, kept verbatim as the yardstick
// for the blocked/unrolled kernels::Gemm (the ratio BM_MatMul / BM_GemmNaive
// at equal n is the kernel speedup).
void BM_GemmNaive(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  Tensor a = rng.NormalTensor(Shape{n, n});
  Tensor b = rng.NormalTensor(Shape{n, n});
  for (auto _ : state) {
    Tensor out(Shape{n, n});
    for (Index i = 0; i < n; ++i) {
      for (Index p = 0; p < n; ++p) {
        const Scalar aip = a.at(i, p);
        if (aip == 0.0) continue;
        for (Index j = 0; j < n; ++j) out.at(i, j) += aip * b.at(p, j);
      }
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTN(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  Tensor a = rng.NormalTensor(Shape{n, n});
  Tensor b = rng.NormalTensor(Shape{n, n});
  for (auto _ : state) benchmark::DoNotOptimize(a.TransposedMatMul(b));
}
BENCHMARK(BM_GemmTN)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  Tensor a = rng.NormalTensor(Shape{n, n});
  Tensor b = rng.NormalTensor(Shape{n, n});
  for (auto _ : state) benchmark::DoNotOptimize(a.MatMulTransposed(b));
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(128)->Arg(256);

// Fused templated-functor map vs the std::function-based Tensor::Map.
void BM_FusedElementwise(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  Tensor x = rng.NormalTensor(Shape{n});
  Tensor out(Shape{n});
  for (auto _ : state) {
    kernels::Map(n, x.data(), out.data(),
                 [](Scalar v) { return v * v + 1.0; });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FusedElementwise)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_TensorMapElementwise(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  Tensor x = rng.NormalTensor(Shape{n});
  for (auto _ : state)
    benchmark::DoNotOptimize(x.Map([](Scalar v) { return v * v + 1.0; }));
}
BENCHMARK(BM_TensorMapElementwise)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

// ParallelFor scaling over the thread-count axis (Arg = pool size). The work
// is a chunked saxpy large enough to dwarf the dispatch overhead.
void BM_ParallelFor(benchmark::State& state) {
  parallel::ThreadPool::SetNumThreads(static_cast<int>(state.range(0)));
  const Index n = 1 << 22;
  Rng rng(1);
  Tensor x = rng.NormalTensor(Shape{n});
  Tensor y = rng.NormalTensor(Shape{n});
  for (auto _ : state) {
    parallel::ParallelFor(0, n, kernels::kElementwiseGrain,
                          [&](Index b, Index e) {
                            Scalar* yp = y.data();
                            const Scalar* xp = x.data();
                            for (Index i = b; i < e; ++i)
                              yp[i] += 0.5 * xp[i];
                          });
    benchmark::DoNotOptimize(y);
  }
  parallel::ThreadPool::SetNumThreads(0);
}
BENCHMARK(BM_ParallelFor)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PInverseSvd(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(2);
  Tensor a = rng.NormalTensor(Shape{n, n / 4});
  for (auto _ : state) benchmark::DoNotOptimize(linalg::PInverse(a));
}
BENCHMARK(BM_PInverseSvd)->Arg(32)->Arg(64)->Arg(128);

void BM_PInverseFullRowRank(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(3);
  Tensor a = rng.NormalTensor(Shape{n / 4, n});  // wide
  for (auto _ : state)
    benchmark::DoNotOptimize(linalg::PInverseFullRowRank(a));
}
BENCHMARK(BM_PInverseFullRowRank)->Arg(32)->Arg(64)->Arg(128);

void BM_Rk4StepLinearSystem(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(4);
  Tensor a = rng.NormalTensor(Shape{n, n}, 0.0, 0.1);
  Tensor y0 = rng.NormalTensor(Shape{1, n});
  ode::OdeFunc f = [&a](Scalar, const Tensor& y) {
    return y.MatMul(a.Transposed());
  };
  ode::SolveOptions options;
  options.method = ode::Method::kRk4;
  options.step = 0.1;
  for (auto _ : state)
    benchmark::DoNotOptimize(ode::Integrate(f, y0, 0.0, 1.0, options));
}
BENCHMARK(BM_Rk4StepLinearSystem)->Arg(16)->Arg(64);

void BM_Dopri5LinearSystem(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(5);
  Tensor a = rng.NormalTensor(Shape{n, n}, 0.0, 0.1);
  Tensor y0 = rng.NormalTensor(Shape{1, n});
  ode::OdeFunc f = [&a](Scalar, const Tensor& y) {
    return y.MatMul(a.Transposed());
  };
  ode::SolveOptions options;
  options.method = ode::Method::kDopri5;
  for (auto _ : state)
    benchmark::DoNotOptimize(ode::Integrate(f, y0, 0.0, 1.0, options));
}
BENCHMARK(BM_Dopri5LinearSystem)->Arg(16)->Arg(64);

void BM_AttentionInverseBuild(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(6);
  Tensor z = rng.NormalTensor(Shape{n, 16});
  for (auto _ : state)
    benchmark::DoNotOptimize(sparsity::AttentionInverse::Build(z));
}
BENCHMARK(BM_AttentionInverseBuild)->Arg(32)->Arg(128)->Arg(512);

void BM_RecoverPMaxHoyer(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(7);
  Tensor z = rng.NormalTensor(Shape{n, 16});
  sparsity::AttentionInverse inv = sparsity::AttentionInverse::Build(z);
  Tensor s = rng.NormalTensor(Shape{1, 16});
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sparsity::RecoverP(inv, s, sparsity::PtStrategy::kMaxHoyer));
}
BENCHMARK(BM_RecoverPMaxHoyer)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

// Theorem 1 vs Theorem 2: the exact KKT search is exponential while the
// relaxed closed form is linear — the paper's complexity claim.
void BM_ExactKktSmallN(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(8);
  Tensor z = rng.NormalTensor(Shape{n, 3});
  sparsity::AttentionInverse inv = sparsity::AttentionInverse::Build(z);
  Tensor s = rng.NormalTensor(Shape{1, 3});
  for (auto _ : state)
    benchmark::DoNotOptimize(sparsity::MaxHoyerExactKkt(inv, s));
}
BENCHMARK(BM_ExactKktSmallN)->Arg(6)->Arg(10)->Arg(14);

// A ~64-op tape chain (the shape of one unrolled integrator sweep), built
// and torn down once per iteration. The heap variant allocates every node
// with make_shared and every tensor with operator new; the arena/pool
// variant bump-allocates nodes and recycles tensor buffers. The ratio is
// the allocation overhead removed from each training step.
void RunTapeChain(Index width, Index ops) {
  Rng rng(10);
  ag::Var h = ag::Constant(rng.NormalTensor(Shape{1, width}));
  ag::Var c = ag::Constant(rng.NormalTensor(Shape{1, width}));
  for (Index i = 0; i < ops; ++i) h = ag::Tanh(ag::Add(ag::Mul(h, c), h));
  benchmark::DoNotOptimize(h.value());
}

void BM_TapeUnrollHeap(benchmark::State& state) {
  const Index width = state.range(0);
  for (auto _ : state) RunTapeChain(width, 64);
}
BENCHMARK(BM_TapeUnrollHeap)->Arg(16)->Arg(64);

void BM_TapeUnrollArenaPool(benchmark::State& state) {
  const Index width = state.range(0);
  for (auto _ : state) {
    ag::TapeArena::Scope arena_scope;
    tensor::BufferPool::Scope pool_scope;
    RunTapeChain(width, 64);
    ag::TapeArena::ThreadLocal().Reset();
  }
}
BENCHMARK(BM_TapeUnrollArenaPool)->Arg(16)->Arg(64);

// Raw buffer churn: allocate/free a batch of same-sized tensors, heap vs
// warm pool.
void RunTensorChurn(Index n) {
  for (int k = 0; k < 32; ++k) {
    Tensor t = Tensor::Uninit(Shape{n});
    t.data()[0] = static_cast<Scalar>(k);
    benchmark::DoNotOptimize(t);
  }
}

void BM_TensorAllocHeap(benchmark::State& state) {
  const Index n = state.range(0);
  for (auto _ : state) RunTensorChurn(n);
}
BENCHMARK(BM_TensorAllocHeap)->Arg(1 << 8)->Arg(1 << 14);

void BM_TensorAllocPooled(benchmark::State& state) {
  const Index n = state.range(0);
  tensor::BufferPool::Scope scope;
  for (auto _ : state) RunTensorChurn(n);
}
BENCHMARK(BM_TensorAllocPooled)->Arg(1 << 8)->Arg(1 << 14);

// ---- Kernel ISA sweep ------------------------------------------------------
// Scalar vs AVX2 backend on the GEMM shapes the model actually runs (Table V
// workloads): GRU gate projections, MLP heads, attention score/backward
// products, plus the vectorized transcendental maps. Arg 0 picks the ISA
// (0 = scalar, 1 = avx2); avx2 rows are skipped on hosts without AVX2+FMA.
// scripts/bench_report.sh pairs the rows into the BENCH_PR3 speedup table.

simd::Isa IsaArg(benchmark::State& state) {
  switch (state.range(0)) {
    case 0: return simd::Isa::kScalar;
    case 1: return simd::Isa::kAvx2;
    default: return simd::Isa::kAvx512;
  }
}

// Sets the requested ISA for the benchmark body; restores on destruction.
struct BenchIsaScope {
  explicit BenchIsaScope(benchmark::State& state)
      : prev(simd::ActiveIsa()), ok(simd::SetActiveIsa(IsaArg(state))) {
    if (!ok) state.SkipWithError("ISA not supported on this host/build");
    state.SetLabel(simd::IsaName(IsaArg(state)));
  }
  ~BenchIsaScope() { simd::SetActiveIsa(prev); }
  simd::Isa prev;
  bool ok;
};

void BM_GemmIsa(benchmark::State& state) {
  BenchIsaScope isa(state);
  if (!isa.ok) return;
  const Index m = state.range(1), k = state.range(2), n = state.range(3);
  Rng rng(20);
  Tensor a = rng.NormalTensor(Shape{m, k});
  Tensor b = rng.NormalTensor(Shape{k, n});
  Tensor c(Shape{m, n});
  for (auto _ : state) {
    kernels::Gemm(m, k, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_GemmIsa)
    ->ArgNames({"isa", "m", "k", "n"})
    ->Args({0, 1, 64, 192})      // GRU gate projection, one observation
    ->Args({1, 1, 64, 192})
    ->Args({2, 1, 64, 192})
    ->Args({0, 32, 64, 192})     // GRU gates, batched encoder sweep
    ->Args({1, 32, 64, 192})
    ->Args({2, 32, 64, 192})
    ->Args({0, 32, 64, 64})      // MLP head layer
    ->Args({1, 32, 64, 64})
    ->Args({2, 32, 64, 64})
    ->Args({0, 128, 128, 128})   // square reference point
    ->Args({1, 128, 128, 128})
    ->Args({2, 128, 128, 128});

void BM_GemmTNIsa(benchmark::State& state) {
  BenchIsaScope isa(state);
  if (!isa.ok) return;
  const Index m = state.range(1), k = state.range(2), n = state.range(3);
  Rng rng(21);
  Tensor a = rng.NormalTensor(Shape{k, m});  // A stored transposed
  Tensor b = rng.NormalTensor(Shape{k, n});
  Tensor c(Shape{m, n});
  for (auto _ : state) {
    kernels::GemmTN(m, k, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_GemmTNIsa)
    ->ArgNames({"isa", "m", "k", "n"})
    ->Args({0, 64, 128, 64})     // xᵀ·g weight-gradient shape
    ->Args({1, 64, 128, 64})
    ->Args({2, 64, 128, 64})
    ->Args({0, 128, 128, 128})
    ->Args({1, 128, 128, 128})
    ->Args({2, 128, 128, 128});

void BM_GemmNTIsa(benchmark::State& state) {
  BenchIsaScope isa(state);
  if (!isa.ok) return;
  const Index m = state.range(1), k = state.range(2), n = state.range(3);
  Rng rng(22);
  Tensor a = rng.NormalTensor(Shape{m, k});
  Tensor b = rng.NormalTensor(Shape{n, k});  // B stored transposed
  Tensor c(Shape{m, n});
  for (auto _ : state) {
    kernels::GemmNT(m, k, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_GemmNTIsa)
    ->ArgNames({"isa", "m", "k", "n"})
    ->Args({0, 128, 32, 128})    // attention scores z·zᵀ, d=32
    ->Args({1, 128, 32, 128})
    ->Args({2, 128, 32, 128})
    ->Args({0, 128, 64, 128})    // attention scores, d=64
    ->Args({1, 128, 64, 128})
    ->Args({2, 128, 64, 128});

void BM_MapTanhIsa(benchmark::State& state) {
  BenchIsaScope isa(state);
  if (!isa.ok) return;
  const Index n = state.range(1);
  Rng rng(23);
  Tensor x = rng.NormalTensor(Shape{n});
  Tensor out(Shape{n});
  for (auto _ : state) {
    kernels::MapTanh(n, x.data(), out.data());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MapTanhIsa)
    ->ArgNames({"isa", "n"})
    ->Args({0, 1 << 12})
    ->Args({1, 1 << 12})
    ->Args({2, 1 << 12})
    ->Args({0, 1 << 16})
    ->Args({1, 1 << 16})
    ->Args({2, 1 << 16});

void BM_MapExpIsa(benchmark::State& state) {
  BenchIsaScope isa(state);
  if (!isa.ok) return;
  const Index n = state.range(1);
  Rng rng(24);
  Tensor x = rng.NormalTensor(Shape{n});
  Tensor out(Shape{n});
  for (auto _ : state) {
    kernels::MapExp(n, x.data(), out.data());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MapExpIsa)
    ->ArgNames({"isa", "n"})
    ->Args({0, 1 << 12})
    ->Args({1, 1 << 12})
    ->Args({2, 1 << 12})
    ->Args({0, 1 << 16})
    ->Args({1, 1 << 16})
    ->Args({2, 1 << 16});

// Masked-row movement for the lockstep batched engine: MaskedRowUpdate with
// a full mask vs a half-empty one (the mask skips the copy, so a sparse wave
// should be cheaper), and the SelectRows/ScatterRows gather-scatter pair at
// serving batch shapes (rows = execution batch, cols = packed state dim).
void BM_MaskedRowUpdateIsa(benchmark::State& state) {
  BenchIsaScope isa(state);
  if (!isa.ok) return;
  const Index rows = state.range(1), cols = state.range(2);
  const bool full = state.range(3) != 0;
  Rng rng(25);
  Tensor src = rng.NormalTensor(Shape{rows, cols});
  Tensor dst(Shape{rows, cols});
  std::vector<unsigned char> mask(static_cast<std::size_t>(rows));
  for (Index r = 0; r < rows; ++r)
    mask[static_cast<std::size_t>(r)] = full || (r % 2 == 0) ? 1 : 0;
  for (auto _ : state) {
    kernels::MaskedRowUpdate(rows, cols, mask.data(), src.data(), dst.data());
    benchmark::DoNotOptimize(dst);
  }
}
BENCHMARK(BM_MaskedRowUpdateIsa)
    ->ArgNames({"isa", "rows", "cols", "full"})
    ->Args({0, 32, 48, 1})     // B=32 serving batch, packed DIFFODE state
    ->Args({1, 32, 48, 1})
    ->Args({2, 32, 48, 1})
    ->Args({0, 32, 48, 0})     // half the rows masked off
    ->Args({1, 32, 48, 0})
    ->Args({2, 32, 48, 0})
    ->Args({0, 256, 128, 1})   // wide reference point
    ->Args({1, 256, 128, 1})
    ->Args({2, 256, 128, 1});

void BM_SelectScatterRowsIsa(benchmark::State& state) {
  BenchIsaScope isa(state);
  if (!isa.ok) return;
  const Index rows = state.range(1), cols = state.range(2);
  Rng rng(26);
  Tensor pool = rng.NormalTensor(Shape{rows * 2, cols});
  Tensor packed(Shape{rows, cols});
  std::vector<Index> idx(static_cast<std::size_t>(rows));
  for (Index r = 0; r < rows; ++r) idx[static_cast<std::size_t>(r)] = 2 * r;
  for (auto _ : state) {
    kernels::SelectRows(rows, cols, idx.data(), pool.data(), packed.data());
    kernels::ScatterRows(rows, cols, idx.data(), packed.data(), pool.data());
    benchmark::DoNotOptimize(pool);
  }
}
BENCHMARK(BM_SelectScatterRowsIsa)
    ->ArgNames({"isa", "rows", "cols"})
    ->Args({0, 32, 48})
    ->Args({1, 32, 48})
    ->Args({2, 32, 48})
    ->Args({0, 256, 128})
    ->Args({1, 256, 128})
    ->Args({2, 256, 128});

void BM_DhsDerivative(benchmark::State& state) {
  const Index n = state.range(0);
  const Index d = 16;
  Rng rng(9);
  ag::Var z = ag::Constant(rng.NormalTensor(Shape{n, d}));
  core::DhsContext ctx = core::BuildDhsContext(z, 1e-8);
  ag::Var w = ag::Constant(rng.NormalTensor(Shape{1, d}));
  Tensor raw = rng.UniformTensor(Shape{1, n}, 0.01, 1.0);
  ag::Var p = ag::Constant(raw * (1.0 / raw.Sum()));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::DhsDerivative(ctx, w, p));
}
BENCHMARK(BM_DhsDerivative)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
}  // namespace diffode

BENCHMARK_MAIN();
