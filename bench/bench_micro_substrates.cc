// google-benchmark micro-benchmarks for the numeric substrates: tensor
// algebra, pseudoinverses, ODE solver steps, the DHS derivative, and the
// attention inversion. These quantify the per-step costs behind the
// complexity rows of Table V.

#include <benchmark/benchmark.h>

#include "core/dhs.h"
#include "linalg/pinv.h"
#include "ode/solver.h"
#include "sparsity/pt_solver.h"
#include "tensor/random.h"

namespace diffode {
namespace {

void BM_MatMul(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  Tensor a = rng.NormalTensor(Shape{n, n});
  Tensor b = rng.NormalTensor(Shape{n, n});
  for (auto _ : state) benchmark::DoNotOptimize(a.MatMul(b));
  state.SetComplexityN(n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128)->Complexity();

void BM_PInverseSvd(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(2);
  Tensor a = rng.NormalTensor(Shape{n, n / 4});
  for (auto _ : state) benchmark::DoNotOptimize(linalg::PInverse(a));
}
BENCHMARK(BM_PInverseSvd)->Arg(32)->Arg(64)->Arg(128);

void BM_PInverseFullRowRank(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(3);
  Tensor a = rng.NormalTensor(Shape{n / 4, n});  // wide
  for (auto _ : state)
    benchmark::DoNotOptimize(linalg::PInverseFullRowRank(a));
}
BENCHMARK(BM_PInverseFullRowRank)->Arg(32)->Arg(64)->Arg(128);

void BM_Rk4StepLinearSystem(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(4);
  Tensor a = rng.NormalTensor(Shape{n, n}, 0.0, 0.1);
  Tensor y0 = rng.NormalTensor(Shape{1, n});
  ode::OdeFunc f = [&a](Scalar, const Tensor& y) {
    return y.MatMul(a.Transposed());
  };
  ode::SolveOptions options;
  options.method = ode::Method::kRk4;
  options.step = 0.1;
  for (auto _ : state)
    benchmark::DoNotOptimize(ode::Integrate(f, y0, 0.0, 1.0, options));
}
BENCHMARK(BM_Rk4StepLinearSystem)->Arg(16)->Arg(64);

void BM_Dopri5LinearSystem(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(5);
  Tensor a = rng.NormalTensor(Shape{n, n}, 0.0, 0.1);
  Tensor y0 = rng.NormalTensor(Shape{1, n});
  ode::OdeFunc f = [&a](Scalar, const Tensor& y) {
    return y.MatMul(a.Transposed());
  };
  ode::SolveOptions options;
  options.method = ode::Method::kDopri5;
  for (auto _ : state)
    benchmark::DoNotOptimize(ode::Integrate(f, y0, 0.0, 1.0, options));
}
BENCHMARK(BM_Dopri5LinearSystem)->Arg(16)->Arg(64);

void BM_AttentionInverseBuild(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(6);
  Tensor z = rng.NormalTensor(Shape{n, 16});
  for (auto _ : state)
    benchmark::DoNotOptimize(sparsity::AttentionInverse::Build(z));
}
BENCHMARK(BM_AttentionInverseBuild)->Arg(32)->Arg(128)->Arg(512);

void BM_RecoverPMaxHoyer(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(7);
  Tensor z = rng.NormalTensor(Shape{n, 16});
  sparsity::AttentionInverse inv = sparsity::AttentionInverse::Build(z);
  Tensor s = rng.NormalTensor(Shape{1, 16});
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sparsity::RecoverP(inv, s, sparsity::PtStrategy::kMaxHoyer));
}
BENCHMARK(BM_RecoverPMaxHoyer)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

// Theorem 1 vs Theorem 2: the exact KKT search is exponential while the
// relaxed closed form is linear — the paper's complexity claim.
void BM_ExactKktSmallN(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(8);
  Tensor z = rng.NormalTensor(Shape{n, 3});
  sparsity::AttentionInverse inv = sparsity::AttentionInverse::Build(z);
  Tensor s = rng.NormalTensor(Shape{1, 3});
  for (auto _ : state)
    benchmark::DoNotOptimize(sparsity::MaxHoyerExactKkt(inv, s));
}
BENCHMARK(BM_ExactKktSmallN)->Arg(6)->Arg(10)->Arg(14);

void BM_DhsDerivative(benchmark::State& state) {
  const Index n = state.range(0);
  const Index d = 16;
  Rng rng(9);
  ag::Var z = ag::Constant(rng.NormalTensor(Shape{n, d}));
  core::DhsContext ctx = core::BuildDhsContext(z, 1e-8);
  ag::Var w = ag::Constant(rng.NormalTensor(Shape{1, d}));
  Tensor raw = rng.UniformTensor(Shape{1, n}, 0.01, 1.0);
  ag::Var p = ag::Constant(raw * (1.0 / raw.Sum()));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::DhsDerivative(ctx, w, p));
}
BENCHMARK(BM_DhsDerivative)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
}  // namespace diffode

BENCHMARK_MAIN();
