// Reproduces Fig. 6: extrapolation performance and per-epoch time of
// DIFFODE on the PhysioNet-like dataset as the number of attention heads
// grows. The paper finds the benefit of extra heads is limited while the
// cost rises.

#include "bench_common.h"

namespace diffode::bench {
namespace {

int Main(int argc, char** argv) {
  const bool csv = HasFlag(argc, argv, "--csv");
  data::PhysioNetLikeConfig config;
  config.num_patients = Scaled(30);
  config.num_channels = 12;
  config.max_obs_per_patient = 40;
  data::Dataset ds = data::MakePhysioNetLike(config);
  data::NormalizeDataset(&ds);

  if (csv) {
    std::printf("table,Fig 6: multi-head attention\n");
    std::printf("heads,extrap_mse,seconds_per_epoch\n");
  } else {
    std::printf("\n=== Fig. 6: multi-head attention (PhysioNet-like "
                "extrapolation) ===\n");
    std::printf("%-8s %14s %14s\n", "heads", "extrap MSE", "s/epoch");
  }
  for (Index heads : {1, 2, 4, 8}) {
    ModelSpec spec;
    spec.input_dim = ds.num_features;
    spec.step = 0.5;
    spec.num_heads = heads;
    spec.latent_dim = 16;  // divisible by every head count
    auto model = MakeModel("DIFFODE", spec);
    RegResult result = RunRegression(
        model.get(), ds, train::RegressionTask::kExtrapolation, Scaled(5));
    if (csv) {
      std::printf("%lld,%.4f,%.4f\n", static_cast<long long>(heads),
                  result.mse, result.seconds_per_epoch);
    } else {
      std::printf("%-8lld %14.4f %14.3f\n", static_cast<long long>(heads),
                  result.mse, result.seconds_per_epoch);
    }
  }
  return 0;
}

}  // namespace
}  // namespace diffode::bench

int main(int argc, char** argv) { return diffode::bench::Main(argc, argv); }
