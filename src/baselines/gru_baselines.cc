#include "baselines/gru_baselines.h"

#include <cmath>

#include "autograd/ops.h"
#include "data/encoding.h"

namespace diffode::baselines {

GruBaseline::GruBaseline(const BaselineConfig& config)
    : config_(config), rng_(config.seed) {
  const Index enc_in = 2 * config_.input_dim + 2;
  cell_ = std::make_unique<nn::GruCell>(enc_in, config_.hidden_dim, rng_);
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim + 1, config_.mlp_hidden,
                         config_.input_dim},
      rng_);
}

ag::Var GruBaseline::RunToEnd(const data::IrregularSeries& context,
                              Scalar* t_scale, Scalar* t_offset) const {
  data::EncoderInputs enc = data::BuildEncoderInputs(context);
  if (t_scale) *t_scale = enc.t_scale;
  if (t_offset) *t_offset = enc.t_offset;
  ag::Var x = ag::Constant(enc.inputs);
  ag::Var h = cell_->InitialState(1);
  for (Index i = 0; i < context.length(); ++i)
    h = cell_->Forward(ag::SliceRows(x, i, 1), h);
  return h;
}

ag::Var GruBaseline::ClassifyLogits(const data::IrregularSeries& context) {
  return cls_head_->Forward(RunToEnd(context, nullptr, nullptr));
}

std::vector<ag::Var> GruBaseline::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  Scalar scale = 1.0, offset = 0.0;
  ag::Var h = RunToEnd(context, &scale, &offset);
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    ag::Var t_var =
        ag::Constant(Tensor::Full(Shape{1, 1}, (t - offset) * scale));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({h, t_var})));
  }
  return preds;
}

void GruBaseline::CollectParams(std::vector<ag::Var>* out) const {
  cell_->CollectParams(out);
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
}

GruDBaseline::GruDBaseline(const BaselineConfig& config)
    : config_(config), rng_(config.seed) {
  const Index f = config_.input_dim;
  const Index enc_in = 2 * f + 2;
  cell_ = std::make_unique<nn::GruCell>(enc_in, config_.hidden_dim, rng_);
  input_decay_ = ag::Param(rng_.UniformTensor(Shape{1, f}, 0.1, 1.0));
  hidden_decay_ =
      ag::Param(rng_.UniformTensor(Shape{1, config_.hidden_dim}, 0.1, 1.0));
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim + 1, config_.mlp_hidden, f},
      rng_);
}

ag::Var GruDBaseline::RunToEnd(const data::IrregularSeries& context,
                               Scalar* t_scale, Scalar* t_offset) const {
  data::EncoderInputs enc = data::BuildEncoderInputs(context);
  if (t_scale) *t_scale = enc.t_scale;
  if (t_offset) *t_offset = enc.t_offset;
  const Index n = context.length();
  const Index f = config_.input_dim;
  // Empirical per-channel means (the GRU-D imputation target).
  Tensor mean(Shape{1, f});
  Tensor count(Shape{1, f});
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < f; ++j)
      if (context.mask.at(i, j) > 0) {
        mean.at(0, j) += context.values.at(i, j);
        count.at(0, j) += 1.0;
      }
  for (Index j = 0; j < f; ++j)
    mean.at(0, j) /= std::max(count.at(0, j), 1.0);
  ag::Var h = cell_->InitialState(1);
  // Per-channel last value and time-since-last-observed.
  Tensor last = mean;
  Tensor since(Shape{1, f});
  Scalar prev_t = enc.norm_times.front();
  for (Index i = 0; i < n; ++i) {
    const Scalar t = enc.norm_times[static_cast<std::size_t>(i)];
    const Scalar dt = t - prev_t;
    prev_t = t;
    // Hidden decay: h <- h * exp(-relu(w_h) * dt).
    ag::Var decay =
        ag::Exp(ag::MulScalar(ag::Relu(hidden_decay_), -dt));
    h = ag::Mul(h, decay);
    // Input decay weights per channel: gamma = exp(-relu(w) * delta_j).
    Tensor delta(Shape{1, f});
    for (Index j = 0; j < f; ++j) {
      since.at(0, j) += dt;
      delta.at(0, j) = since.at(0, j);
    }
    ag::Var gamma = ag::Exp(ag::Neg(
        ag::Mul(ag::Relu(input_decay_), ag::Constant(delta))));
    // Imputed input: m*x + (1-m)*(gamma*last + (1-gamma)*mean).
    Tensor x_row(Shape{1, f});
    Tensor m_row(Shape{1, f});
    for (Index j = 0; j < f; ++j) {
      x_row.at(0, j) = context.values.at(i, j);
      m_row.at(0, j) = context.mask.at(i, j);
    }
    ag::Var m_var = ag::Constant(m_row);
    ag::Var fallback =
        ag::Add(ag::Mul(gamma, ag::Constant(last)),
                ag::Mul(ag::AddScalar(ag::Neg(gamma), 1.0),
                        ag::Constant(mean)));
    ag::Var imputed =
        ag::Add(ag::Mul(m_var, ag::Constant(x_row)),
                ag::Mul(ag::AddScalar(ag::Neg(m_var), 1.0), fallback));
    // Assemble the full encoder row with the imputed values.
    Tensor meta(Shape{1, 2});
    meta.at(0, 0) = t;
    meta.at(0, 1) = dt;
    ag::Var row =
        ag::ConcatCols({imputed, m_var, ag::Constant(meta)});
    h = cell_->Forward(row, h);
    for (Index j = 0; j < f; ++j) {
      if (context.mask.at(i, j) > 0) {
        last.at(0, j) = context.values.at(i, j);
        since.at(0, j) = 0.0;
      }
    }
  }
  return h;
}

ag::Var GruDBaseline::ClassifyLogits(const data::IrregularSeries& context) {
  return cls_head_->Forward(RunToEnd(context, nullptr, nullptr));
}

std::vector<ag::Var> GruDBaseline::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  Scalar scale = 1.0, offset = 0.0;
  ag::Var h = RunToEnd(context, &scale, &offset);
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    ag::Var t_var =
        ag::Constant(Tensor::Full(Shape{1, 1}, (t - offset) * scale));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({h, t_var})));
  }
  return preds;
}

void GruDBaseline::CollectParams(std::vector<ag::Var>* out) const {
  cell_->CollectParams(out);
  out->push_back(input_decay_);
  out->push_back(hidden_decay_);
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
}

}  // namespace diffode::baselines
