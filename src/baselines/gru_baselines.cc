#include "baselines/gru_baselines.h"

#include <cmath>

#include "autograd/ops.h"
#include "data/encoding.h"
#include "tensor/kernels.h"

namespace diffode::baselines {

GruBaseline::GruBaseline(const BaselineConfig& config)
    : config_(config), rng_(config.seed) {
  const Index enc_in = 2 * config_.input_dim + 2;
  cell_ = std::make_unique<nn::GruCell>(enc_in, config_.hidden_dim, rng_);
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim + 1, config_.mlp_hidden,
                         config_.input_dim},
      rng_);
}

ag::Var GruBaseline::RunToEnd(const data::IrregularSeries& context,
                              Scalar* t_scale, Scalar* t_offset) const {
  data::EncoderInputs enc = data::BuildEncoderInputs(context);
  if (t_scale) *t_scale = enc.t_scale;
  if (t_offset) *t_offset = enc.t_offset;
  ag::Var x = ag::Constant(enc.inputs);
  ag::Var h = cell_->InitialState(1);
  for (Index i = 0; i < context.length(); ++i)
    h = cell_->Forward(ag::SliceRows(x, i, 1), h);
  return h;
}

ag::Var GruBaseline::ClassifyLogits(const data::IrregularSeries& context) {
  return cls_head_->Forward(RunToEnd(context, nullptr, nullptr));
}

std::vector<ag::Var> GruBaseline::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  Scalar scale = 1.0, offset = 0.0;
  ag::Var h = RunToEnd(context, &scale, &offset);
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    ag::Var t_var =
        ag::Constant(Tensor::Full(Shape{1, 1}, (t - offset) * scale));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({h, t_var})));
  }
  return preds;
}

void GruBaseline::CollectParams(std::vector<ag::Var>* out) const {
  cell_->CollectParams(out);
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
}

GruDBaseline::GruDBaseline(const BaselineConfig& config)
    : config_(config), rng_(config.seed) {
  const Index f = config_.input_dim;
  const Index enc_in = 2 * f + 2;
  cell_ = std::make_unique<nn::GruCell>(enc_in, config_.hidden_dim, rng_);
  input_decay_ = ag::Param(rng_.UniformTensor(Shape{1, f}, 0.1, 1.0));
  hidden_decay_ =
      ag::Param(rng_.UniformTensor(Shape{1, config_.hidden_dim}, 0.1, 1.0));
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim + 1, config_.mlp_hidden, f},
      rng_);
}

ag::Var GruDBaseline::RunToEnd(const data::IrregularSeries& context,
                               Scalar* t_scale, Scalar* t_offset) const {
  data::EncoderInputs enc = data::BuildEncoderInputs(context);
  if (t_scale) *t_scale = enc.t_scale;
  if (t_offset) *t_offset = enc.t_offset;
  const Index n = context.length();
  const Index f = config_.input_dim;
  // Empirical per-channel means (the GRU-D imputation target).
  Tensor mean(Shape{1, f});
  Tensor count(Shape{1, f});
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < f; ++j)
      if (context.mask.at(i, j) > 0) {
        mean.at(0, j) += context.values.at(i, j);
        count.at(0, j) += 1.0;
      }
  for (Index j = 0; j < f; ++j)
    mean.at(0, j) /= std::max(count.at(0, j), 1.0);
  ag::Var h = cell_->InitialState(1);
  // Per-channel last value and time-since-last-observed.
  Tensor last = mean;
  Tensor since(Shape{1, f});
  Scalar prev_t = enc.norm_times.front();
  for (Index i = 0; i < n; ++i) {
    const Scalar t = enc.norm_times[static_cast<std::size_t>(i)];
    const Scalar dt = t - prev_t;
    prev_t = t;
    // Hidden decay: h <- h * exp(-relu(w_h) * dt).
    ag::Var decay =
        ag::Exp(ag::MulScalar(ag::Relu(hidden_decay_), -dt));
    h = ag::Mul(h, decay);
    // Input decay weights per channel: gamma = exp(-relu(w) * delta_j).
    Tensor delta(Shape{1, f});
    for (Index j = 0; j < f; ++j) {
      since.at(0, j) += dt;
      delta.at(0, j) = since.at(0, j);
    }
    ag::Var gamma = ag::Exp(ag::Neg(
        ag::Mul(ag::Relu(input_decay_), ag::Constant(delta))));
    // Imputed input: m*x + (1-m)*(gamma*last + (1-gamma)*mean).
    Tensor x_row(Shape{1, f});
    Tensor m_row(Shape{1, f});
    for (Index j = 0; j < f; ++j) {
      x_row.at(0, j) = context.values.at(i, j);
      m_row.at(0, j) = context.mask.at(i, j);
    }
    ag::Var m_var = ag::Constant(m_row);
    ag::Var fallback =
        ag::Add(ag::Mul(gamma, ag::Constant(last)),
                ag::Mul(ag::AddScalar(ag::Neg(gamma), 1.0),
                        ag::Constant(mean)));
    ag::Var imputed =
        ag::Add(ag::Mul(m_var, ag::Constant(x_row)),
                ag::Mul(ag::AddScalar(ag::Neg(m_var), 1.0), fallback));
    // Assemble the full encoder row with the imputed values.
    Tensor meta(Shape{1, 2});
    meta.at(0, 0) = t;
    meta.at(0, 1) = dt;
    ag::Var row =
        ag::ConcatCols({imputed, m_var, ag::Constant(meta)});
    h = cell_->Forward(row, h);
    for (Index j = 0; j < f; ++j) {
      if (context.mask.at(i, j) > 0) {
        last.at(0, j) = context.values.at(i, j);
        since.at(0, j) = 0.0;
      }
    }
  }
  return h;
}

Tensor GruDBaseline::RunToEndBatched(
    const data::SequenceBatch& batch,
    std::vector<data::EncoderInputs>* encs) const {
  const Index b = batch.batch;
  const Index f = config_.input_dim;
  const Index hd = config_.hidden_dim;
  encs->clear();
  encs->reserve(static_cast<std::size_t>(b));
  // Per-row bookkeeping, exactly as RunToEnd: per-channel empirical means,
  // last observed value, time-since-observed, previous own-observation time.
  std::vector<Tensor> mean(static_cast<std::size_t>(b));
  std::vector<Tensor> last(static_cast<std::size_t>(b));
  std::vector<Tensor> since(static_cast<std::size_t>(b));
  std::vector<Scalar> prev_t(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r) {
    const data::IrregularSeries& context =
        *batch.series[static_cast<std::size_t>(r)];
    encs->push_back(data::BuildEncoderInputs(context));
    const Index n = context.length();
    Tensor m(Shape{1, f});
    Tensor count(Shape{1, f});
    for (Index i = 0; i < n; ++i)
      for (Index j = 0; j < f; ++j)
        if (context.mask.at(i, j) > 0) {
          m.at(0, j) += context.values.at(i, j);
          count.at(0, j) += 1.0;
        }
    for (Index j = 0; j < f; ++j)
      m.at(0, j) /= std::max(count.at(0, j), 1.0);
    mean[static_cast<std::size_t>(r)] = m;
    last[static_cast<std::size_t>(r)] = m;
    since[static_cast<std::size_t>(r)] = Tensor(Shape{1, f});
    prev_t[static_cast<std::size_t>(r)] = encs->back().norm_times.front();
  }
  Tensor h_all(Shape{b, hd});  // zeros, as InitialState per row
  const Index enc_in = 2 * f + 2;
  std::vector<Index> members;
  for (Index u = 0; u < batch.union_size(); ++u) {
    members.clear();
    for (Index r = 0; r < b; ++r)
      if (batch.IsMember(u, r)) members.push_back(r);
    if (members.empty()) continue;
    const Index e = static_cast<Index>(members.size());
    Tensor x_rows = Tensor::Uninit(Shape{e, enc_in});
    for (Index j = 0; j < e; ++j) {
      const Index r = members[static_cast<std::size_t>(j)];
      const data::IrregularSeries& context =
          *batch.series[static_cast<std::size_t>(r)];
      const Index i = batch.ObsIndex(u, r);
      const Scalar t = (*encs)[static_cast<std::size_t>(r)]
                           .norm_times[static_cast<std::size_t>(i)];
      const Scalar dt = t - prev_t[static_cast<std::size_t>(r)];
      prev_t[static_cast<std::size_t>(r)] = t;
      // Hidden decay, replaying the per-sequence op chain on this row.
      ag::Var decay = ag::Exp(ag::MulScalar(ag::Relu(hidden_decay_), -dt));
      ag::Var h_row = ag::Mul(ag::Constant(h_all.Row(r)), decay);
      h_all.SetRow(r, h_row.value());
      Tensor& sin = since[static_cast<std::size_t>(r)];
      Tensor delta(Shape{1, f});
      for (Index j2 = 0; j2 < f; ++j2) {
        sin.at(0, j2) += dt;
        delta.at(0, j2) = sin.at(0, j2);
      }
      ag::Var gamma = ag::Exp(ag::Neg(
          ag::Mul(ag::Relu(input_decay_), ag::Constant(delta))));
      Tensor x_row(Shape{1, f});
      Tensor m_row(Shape{1, f});
      for (Index j2 = 0; j2 < f; ++j2) {
        x_row.at(0, j2) = context.values.at(i, j2);
        m_row.at(0, j2) = context.mask.at(i, j2);
      }
      ag::Var m_var = ag::Constant(m_row);
      ag::Var fallback = ag::Add(
          ag::Mul(gamma, ag::Constant(last[static_cast<std::size_t>(r)])),
          ag::Mul(ag::AddScalar(ag::Neg(gamma), 1.0),
                  ag::Constant(mean[static_cast<std::size_t>(r)])));
      ag::Var imputed =
          ag::Add(ag::Mul(m_var, ag::Constant(x_row)),
                  ag::Mul(ag::AddScalar(ag::Neg(m_var), 1.0), fallback));
      Tensor meta(Shape{1, 2});
      meta.at(0, 0) = t;
      meta.at(0, 1) = dt;
      ag::Var row = ag::ConcatCols({imputed, m_var, ag::Constant(meta)});
      std::copy_n(row.value().data(), enc_in, x_rows.data() + j * enc_in);
      for (Index j2 = 0; j2 < f; ++j2) {
        if (context.mask.at(i, j2) > 0) {
          last[static_cast<std::size_t>(r)].at(0, j2) =
              context.values.at(i, j2);
          sin.at(0, j2) = 0.0;
        }
      }
    }
    Tensor h_rows = Tensor::Uninit(Shape{e, hd});
    kernels::SelectRows(e, hd, members.data(), h_all.data(), h_rows.data());
    const Tensor h_new =
        cell_->Forward(ag::Constant(x_rows), ag::Constant(h_rows)).value();
    kernels::ScatterRows(e, hd, members.data(), h_new.data(), h_all.data());
  }
  return h_all;
}

Tensor GruDBaseline::ClassifyLogitsBatched(const data::SequenceBatch& batch) {
  ag::NoGradScope no_grad;
  std::vector<data::EncoderInputs> encs;
  const Tensor h_all = RunToEndBatched(batch, &encs);
  return cls_head_->Forward(ag::Constant(h_all)).value();
}

std::vector<std::vector<Tensor>> GruDBaseline::PredictAtBatched(
    const data::SequenceBatch& batch,
    const std::vector<std::vector<Scalar>>& times) {
  ag::NoGradScope no_grad;
  const Index b = batch.batch;
  DIFFODE_CHECK_EQ(static_cast<Index>(times.size()), b);
  std::vector<data::EncoderInputs> encs;
  const Tensor h_all = RunToEndBatched(batch, &encs);
  std::vector<std::vector<Tensor>> out(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r) {
    // Per-pair head application on the per-sequence 1 x (hidden + 1) shape,
    // so predictions are bitwise at any B.
    const ag::Var h_row = ag::Constant(h_all.Row(r));
    auto& dst = out[static_cast<std::size_t>(r)];
    dst.reserve(times[static_cast<std::size_t>(r)].size());
    for (Scalar t : times[static_cast<std::size_t>(r)]) {
      const ag::Var t_var = ag::Constant(Tensor::Full(
          Shape{1, 1},
          (t - encs[static_cast<std::size_t>(r)].t_offset) *
              encs[static_cast<std::size_t>(r)].t_scale));
      dst.push_back(
          reg_head_->Forward(ag::ConcatCols({h_row, t_var})).value());
    }
  }
  return out;
}

ag::Var GruDBaseline::ClassifyLogits(const data::IrregularSeries& context) {
  return cls_head_->Forward(RunToEnd(context, nullptr, nullptr));
}

std::vector<ag::Var> GruDBaseline::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  Scalar scale = 1.0, offset = 0.0;
  ag::Var h = RunToEnd(context, &scale, &offset);
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    ag::Var t_var =
        ag::Constant(Tensor::Full(Shape{1, 1}, (t - offset) * scale));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({h, t_var})));
  }
  return preds;
}

void GruDBaseline::CollectParams(std::vector<ag::Var>* out) const {
  cell_->CollectParams(out);
  out->push_back(input_decay_);
  out->push_back(hidden_decay_);
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
}

}  // namespace diffode::baselines
