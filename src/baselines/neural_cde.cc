#include "baselines/neural_cde.h"

#include "autograd/ops.h"
#include "data/encoding.h"

namespace diffode::baselines {

NeuralCdeBaseline::NeuralCdeBaseline(const BaselineConfig& config)
    : config_(config),
      rng_(config.seed),
      control_channels_(config.input_dim + 1) {
  h0_from_x0_ =
      std::make_unique<nn::Linear>(control_channels_, config_.hidden_dim,
                                   rng_);
  field_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.hidden_dim * control_channels_},
      rng_);
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim + 1, config_.mlp_hidden,
                         config_.input_dim},
      rng_);
}

NeuralCdeBaseline::Prepared NeuralCdeBaseline::Prepare(
    const data::IrregularSeries& context) const {
  data::EncoderInputs enc = data::BuildEncoderInputs(context);
  const Index n = context.length();
  const Index f = config_.input_dim;
  // Time-augmented control path [t | filled values]; missing entries are
  // carried forward from the last observation (standard NCDE preprocessing).
  Tensor knots(Shape{n, control_channels_});
  std::vector<Scalar> last(static_cast<std::size_t>(f), 0.0);
  for (Index i = 0; i < n; ++i) {
    knots.at(i, 0) = enc.norm_times[static_cast<std::size_t>(i)];
    for (Index j = 0; j < f; ++j) {
      if (context.mask.at(i, j) > 0)
        last[static_cast<std::size_t>(j)] = context.values.at(i, j);
      knots.at(i, 1 + j) = last[static_cast<std::size_t>(j)];
    }
  }
  Prepared prep;
  prep.path =
      std::make_unique<ode::CubicSpline>(enc.norm_times, std::move(knots));
  prep.t_scale = enc.t_scale;
  prep.t_offset = enc.t_offset;
  return prep;
}

ag::Var NeuralCdeBaseline::InitialHidden(const Prepared& prep) const {
  Tensor x0 = prep.path->Evaluate(prep.path->t_min());
  return ag::Tanh(h0_from_x0_->Forward(ag::Constant(x0)));
}

ag::Var NeuralCdeBaseline::EvolveTo(const Prepared& prep, const ag::Var& h0,
                                    Scalar from, Scalar to) const {
  const ode::CubicSpline* path = prep.path.get();
  const Index hd = config_.hidden_dim;
  const Index cc = control_channels_;
  ode::DiffOdeFunc f = [this, path, hd, cc](Scalar t, const ag::Var& h) {
    // dh/dt = f(h) dX/dt: contract the (hd x cc) field with the control
    // derivative.
    ag::Var flat = ag::Tanh(field_->Forward(h));            // 1 x hd*cc
    ag::Var mat = ag::Reshape(flat, Shape{hd, cc});         // hd x cc
    Tensor dx = path->Derivative(t);                        // 1 x cc
    return ag::Transpose(
        ag::MatMul(mat, ag::Constant(dx.Transposed())));    // 1 x hd
  };
  ode::DiffSolveOptions options;
  options.method = ode::DiffMethod::kMidpoint;
  options.step = config_.step;
  return ode::IntegrateVar(f, h0, from, to, options);
}

ag::Var NeuralCdeBaseline::ClassifyLogits(
    const data::IrregularSeries& context) {
  Prepared prep = Prepare(context);
  ag::Var h = EvolveTo(prep, InitialHidden(prep), prep.path->t_min(),
                       prep.path->t_max());
  return cls_head_->Forward(h);
}

std::vector<ag::Var> NeuralCdeBaseline::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  Prepared prep = Prepare(context);
  ag::Var h0 = InitialHidden(prep);
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    const Scalar norm_t = (t - prep.t_offset) * prep.t_scale;
    ag::Var h = EvolveTo(prep, h0, prep.path->t_min(), norm_t);
    ag::Var t_var = ag::Constant(Tensor::Full(Shape{1, 1}, norm_t));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({h, t_var})));
  }
  return preds;
}

void NeuralCdeBaseline::CollectParams(std::vector<ag::Var>* out) const {
  h0_from_x0_->CollectParams(out);
  field_->CollectParams(out);
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
}

}  // namespace diffode::baselines
