#ifndef DIFFODE_BASELINES_NEURAL_CDE_H_
#define DIFFODE_BASELINES_NEURAL_CDE_H_

#include <memory>

#include "baselines/baseline_config.h"
#include "core/sequence_model.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "ode/cubic_spline.h"
#include "ode/diff_integrator.h"
#include "tensor/random.h"

namespace diffode::baselines {

// Neural CDE (Kidger et al. 2020): the observations are interpolated with a
// natural cubic spline into a continuous control path X(t), and the hidden
// state follows the controlled differential equation
//   dh/dt = f(h) dX/dt,
// where f maps the hidden state to a (hidden x channels) matrix. This is
// exactly the Fig. 1(b) family the paper contrasts DIFFODE against: the
// path is continuous, but each instant only sees the two nearest
// observations through the spline.
class NeuralCdeBaseline : public core::SequenceModel {
 public:
  explicit NeuralCdeBaseline(const BaselineConfig& config);

  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;
  std::string name() const override { return "NCDE"; }

 private:
  struct Prepared {
    std::unique_ptr<ode::CubicSpline> path;
    Scalar t_scale = 1.0;
    Scalar t_offset = 0.0;
  };
  Prepared Prepare(const data::IrregularSeries& context) const;
  ag::Var EvolveTo(const Prepared& prep, const ag::Var& h0, Scalar from,
                   Scalar to) const;
  ag::Var InitialHidden(const Prepared& prep) const;

  BaselineConfig config_;
  mutable Rng rng_;
  Index control_channels_;  // f + 1 (time-augmented path)
  std::unique_ptr<nn::Linear> h0_from_x0_;
  std::unique_ptr<nn::Mlp> field_;  // h -> h * channels (reshaped)
  std::unique_ptr<nn::Mlp> cls_head_;
  std::unique_ptr<nn::Mlp> reg_head_;
};

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_NEURAL_CDE_H_
