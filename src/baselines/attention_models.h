#ifndef DIFFODE_BASELINES_ATTENTION_MODELS_H_
#define DIFFODE_BASELINES_ATTENTION_MODELS_H_

#include <memory>

#include "baselines/baseline_config.h"
#include "core/sequence_model.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/random.h"

namespace diffode::baselines {

// Learned sinusoidal time embedding e(t) = sin(t wᵀ + b), shared by the
// attention-family baselines (mTAN's "multi-time attention" embedding).
class TimeEmbedding : public nn::Module {
 public:
  TimeEmbedding(Index dim, Rng& rng)
      : freq_(ag::Param(rng.UniformTensor(Shape{1, dim}, 0.1, 2.0))),
        phase_(ag::Param(rng.UniformTensor(Shape{1, dim}, 0.0, 6.28))) {}

  // times: k x 1 column of (normalized) times -> k x dim embeddings.
  ag::Var Forward(const ag::Var& times) const {
    return ag::Sin(ag::AddRowVec(ag::MatMul(times, freq_), phase_));
  }

  void CollectParams(std::vector<ag::Var>* out) const override {
    out->push_back(freq_);
    out->push_back(phase_);
  }

 private:
  ag::Var freq_;
  ag::Var phase_;
};

// mTAN-lite (Shukla & Marlin 2021): attention from learned reference time
// points to the observations through time embeddings produces a fixed-length
// representation; queries attend with their own time embedding. The full
// model's VAE branch is omitted (deterministic limit; see DESIGN.md).
class MtanBaseline : public core::SequenceModel {
 public:
  explicit MtanBaseline(const BaselineConfig& config);

  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;
  std::string name() const override { return "mTAN"; }

 private:
  struct Keys {
    ag::Var key_embed;   // n x E
    ag::Var values;      // n x hidden
    Scalar t_scale = 1.0;
    Scalar t_offset = 0.0;
  };
  Keys BuildKeys(const data::IrregularSeries& context) const;
  ag::Var Attend(const Keys& keys, const ag::Var& query_embed) const;

  BaselineConfig config_;
  mutable Rng rng_;
  std::unique_ptr<TimeEmbedding> time_embed_;
  std::unique_ptr<nn::Linear> value_proj_;
  ag::Var ref_points_;  // K x 1 learned reference times
  std::unique_ptr<nn::Mlp> cls_head_;
  std::unique_ptr<nn::Mlp> reg_head_;
};

// ContiFormer-lite (Chen et al. 2024): transformer attention in continuous
// time — GRU-encoded latents serve as keys/values, queries are built from
// time embeddings, and the attended representation is refined by a small
// neural ODE flow over the distance to the nearest observation (standing in
// for the full model's ODE-evolved keys).
class ContiFormerBaseline : public core::SequenceModel {
 public:
  explicit ContiFormerBaseline(const BaselineConfig& config);

  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;
  std::string name() const override { return "ContiFormer"; }

 private:
  struct Keys {
    ag::Var latents;     // n x hidden (GRU states)
    ag::Var key_proj;    // n x hidden
    std::vector<Scalar> norm_times;
    Scalar t_scale = 1.0;
    Scalar t_offset = 0.0;
  };
  Keys BuildKeys(const data::IrregularSeries& context) const;
  ag::Var RepresentationAt(const Keys& keys, Scalar norm_t) const;

  BaselineConfig config_;
  mutable Rng rng_;
  std::unique_ptr<nn::GruCell> encoder_;
  std::unique_ptr<TimeEmbedding> time_embed_;
  std::unique_ptr<nn::Linear> query_proj_;  // E -> hidden
  std::unique_ptr<nn::Linear> key_proj_;    // hidden -> hidden
  std::unique_ptr<nn::Mlp> flow_;           // hidden -> hidden ODE field
  std::unique_ptr<nn::Mlp> cls_head_;
  std::unique_ptr<nn::Mlp> reg_head_;
};

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_ATTENTION_MODELS_H_
