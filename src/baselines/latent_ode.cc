#include "baselines/latent_ode.h"

#include "autograd/ops.h"
#include "data/encoding.h"
#include "ode/diff_integrator.h"

namespace diffode::baselines {

LatentOdeBaseline::LatentOdeBaseline(const BaselineConfig& config)
    : config_(config), rng_(config.seed) {
  const Index enc_in = 2 * config_.input_dim + 2;
  encoder_ = std::make_unique<nn::GruCell>(enc_in, config_.hidden_dim, rng_);
  to_latent_ =
      std::make_unique<nn::Linear>(config_.hidden_dim, config_.hidden_dim,
                                   rng_);
  dynamics_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.hidden_dim},
      rng_);
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.input_dim},
      rng_);
}

LatentOdeBaseline::Encoded LatentOdeBaseline::Encode(
    const data::IrregularSeries& context) const {
  data::EncoderInputs enc = data::BuildEncoderInputs(context);
  ag::Var x = ag::Constant(enc.inputs);
  ag::Var h = encoder_->InitialState(1);
  // Backward pass (latest observation first), as in the original model.
  for (Index i = context.length() - 1; i >= 0; --i)
    h = encoder_->Forward(ag::SliceRows(x, i, 1), h);
  Encoded out;
  out.z0 = to_latent_->Forward(h);
  out.t_scale = enc.t_scale;
  out.t_offset = enc.t_offset;
  return out;
}

ag::Var LatentOdeBaseline::Evolve(const ag::Var& z0, Scalar from,
                                  Scalar to) const {
  ode::DiffSolveOptions options;
  options.method = ode::DiffMethod::kMidpoint;
  options.step = config_.step;
  ode::DiffOdeFunc f = [this](Scalar, const ag::Var& z) {
    return dynamics_->Forward(z);
  };
  return ode::IntegrateVar(f, z0, from, to, options);
}

ag::Var LatentOdeBaseline::ClassifyLogits(
    const data::IrregularSeries& context) {
  return cls_head_->Forward(Encode(context).z0);
}

std::vector<ag::Var> LatentOdeBaseline::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  Encoded enc = Encode(context);
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    const Scalar norm_t = (t - enc.t_offset) * enc.t_scale;
    preds.push_back(reg_head_->Forward(Evolve(enc.z0, 0.0, norm_t)));
  }
  return preds;
}

void LatentOdeBaseline::CollectParams(std::vector<ag::Var>* out) const {
  encoder_->CollectParams(out);
  to_latent_->CollectParams(out);
  dynamics_->CollectParams(out);
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
}

}  // namespace diffode::baselines
