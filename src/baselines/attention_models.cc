#include "baselines/attention_models.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "data/encoding.h"
#include "ode/diff_integrator.h"

namespace diffode::baselines {

// ---------------------------------------------------------------------------
// mTAN-lite
// ---------------------------------------------------------------------------

MtanBaseline::MtanBaseline(const BaselineConfig& config)
    : config_(config), rng_(config.seed) {
  const Index enc_in = 2 * config_.input_dim + 2;
  time_embed_ = std::make_unique<TimeEmbedding>(config_.time_embed_dim, rng_);
  value_proj_ = std::make_unique<nn::Linear>(enc_in, config_.hidden_dim, rng_);
  // Reference points spread over the normalized window [0, 10].
  Tensor refs(Shape{config_.num_ref_points, 1});
  for (Index k = 0; k < config_.num_ref_points; ++k)
    refs.at(k, 0) = 10.0 * static_cast<Scalar>(k) /
                    static_cast<Scalar>(std::max<Index>(config_.num_ref_points - 1, 1));
  ref_points_ = ag::Param(refs);
  const Index rep = config_.num_ref_points * config_.hidden_dim;
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{rep, config_.mlp_hidden, config_.num_classes}, rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim + 1, config_.mlp_hidden,
                         config_.input_dim},
      rng_);
}

MtanBaseline::Keys MtanBaseline::BuildKeys(
    const data::IrregularSeries& context) const {
  data::EncoderInputs enc = data::BuildEncoderInputs(context);
  Keys keys;
  Tensor times_col(Shape{context.length(), 1});
  for (Index i = 0; i < context.length(); ++i)
    times_col.at(i, 0) = enc.norm_times[static_cast<std::size_t>(i)];
  keys.key_embed = time_embed_->Forward(ag::Constant(times_col));
  keys.values = ag::Tanh(value_proj_->Forward(ag::Constant(enc.inputs)));
  keys.t_scale = enc.t_scale;
  keys.t_offset = enc.t_offset;
  return keys;
}

ag::Var MtanBaseline::Attend(const Keys& keys,
                             const ag::Var& query_embed) const {
  const Scalar scale =
      1.0 / std::sqrt(static_cast<Scalar>(config_.time_embed_dim));
  ag::Var logits = ag::MulScalar(
      ag::MatMulNT(query_embed, keys.key_embed), scale);
  return ag::MatMul(ag::Softmax(logits), keys.values);
}

ag::Var MtanBaseline::ClassifyLogits(const data::IrregularSeries& context) {
  Keys keys = BuildKeys(context);
  ag::Var ref_embed = time_embed_->Forward(ref_points_);   // K x E
  ag::Var rep = Attend(keys, ref_embed);                   // K x hidden
  return cls_head_->Forward(
      ag::Reshape(rep, Shape{1, config_.num_ref_points * config_.hidden_dim}));
}

std::vector<ag::Var> MtanBaseline::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  Keys keys = BuildKeys(context);
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    const Scalar norm_t = (t - keys.t_offset) * keys.t_scale;
    ag::Var q =
        time_embed_->Forward(ag::Constant(Tensor::Full(Shape{1, 1}, norm_t)));
    ag::Var attended = Attend(keys, q);
    ag::Var t_var = ag::Constant(Tensor::Full(Shape{1, 1}, norm_t));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({attended, t_var})));
  }
  return preds;
}

void MtanBaseline::CollectParams(std::vector<ag::Var>* out) const {
  time_embed_->CollectParams(out);
  value_proj_->CollectParams(out);
  out->push_back(ref_points_);
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
}

// ---------------------------------------------------------------------------
// ContiFormer-lite
// ---------------------------------------------------------------------------

ContiFormerBaseline::ContiFormerBaseline(const BaselineConfig& config)
    : config_(config), rng_(config.seed) {
  const Index enc_in = 2 * config_.input_dim + 2;
  encoder_ = std::make_unique<nn::GruCell>(enc_in, config_.hidden_dim, rng_);
  time_embed_ = std::make_unique<TimeEmbedding>(config_.time_embed_dim, rng_);
  query_proj_ = std::make_unique<nn::Linear>(config_.time_embed_dim,
                                             config_.hidden_dim, rng_);
  key_proj_ =
      std::make_unique<nn::Linear>(config_.hidden_dim, config_.hidden_dim,
                                   rng_);
  flow_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.hidden_dim},
      rng_);
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim + 1, config_.mlp_hidden,
                         config_.input_dim},
      rng_);
}

ContiFormerBaseline::Keys ContiFormerBaseline::BuildKeys(
    const data::IrregularSeries& context) const {
  data::EncoderInputs enc = data::BuildEncoderInputs(context);
  ag::Var x = ag::Constant(enc.inputs);
  ag::Var h = encoder_->InitialState(1);
  std::vector<ag::Var> rows;
  rows.reserve(static_cast<std::size_t>(context.length()));
  for (Index i = 0; i < context.length(); ++i) {
    h = encoder_->Forward(ag::SliceRows(x, i, 1), h);
    rows.push_back(h);
  }
  Keys keys;
  keys.latents = ag::ConcatRows(rows);
  keys.key_proj = ag::Tanh(key_proj_->Forward(keys.latents));
  keys.norm_times = enc.norm_times;
  keys.t_scale = enc.t_scale;
  keys.t_offset = enc.t_offset;
  return keys;
}

ag::Var ContiFormerBaseline::RepresentationAt(const Keys& keys,
                                              Scalar norm_t) const {
  ag::Var q_embed =
      time_embed_->Forward(ag::Constant(Tensor::Full(Shape{1, 1}, norm_t)));
  ag::Var q = ag::Tanh(query_proj_->Forward(q_embed));
  const Scalar scale = 1.0 / std::sqrt(static_cast<Scalar>(config_.hidden_dim));
  ag::Var logits =
      ag::MulScalar(ag::MatMulNT(q, keys.key_proj), scale);
  ag::Var attended = ag::MatMul(ag::Softmax(logits), keys.latents);
  // Continuous refinement: flow the attended vector over the gap to the
  // nearest observation (0 when the query coincides with one).
  Scalar gap = 1e30;
  for (Scalar ot : keys.norm_times) gap = std::min(gap, std::fabs(norm_t - ot));
  gap = std::min(gap, 2.0);
  if (gap > 1e-9) {
    ode::DiffSolveOptions options;
    options.method = ode::DiffMethod::kMidpoint;
    options.step = config_.step;
    ode::DiffOdeFunc f = [this](Scalar, const ag::Var& y) {
      return flow_->Forward(y);
    };
    attended = ode::IntegrateVar(f, attended, 0.0, gap, options);
  }
  return attended;
}

ag::Var ContiFormerBaseline::ClassifyLogits(
    const data::IrregularSeries& context) {
  Keys keys = BuildKeys(context);
  // Mean-pool representations at the observation times.
  ag::Var acc = RepresentationAt(keys, keys.norm_times.front());
  for (std::size_t i = 1; i < keys.norm_times.size(); ++i)
    acc = ag::Add(acc, RepresentationAt(keys, keys.norm_times[i]));
  acc = ag::MulScalar(acc,
                      1.0 / static_cast<Scalar>(keys.norm_times.size()));
  return cls_head_->Forward(acc);
}

std::vector<ag::Var> ContiFormerBaseline::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  Keys keys = BuildKeys(context);
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    const Scalar norm_t = (t - keys.t_offset) * keys.t_scale;
    ag::Var rep = RepresentationAt(keys, norm_t);
    ag::Var t_var = ag::Constant(Tensor::Full(Shape{1, 1}, norm_t));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({rep, t_var})));
  }
  return preds;
}

void ContiFormerBaseline::CollectParams(std::vector<ag::Var>* out) const {
  encoder_->CollectParams(out);
  time_embed_->CollectParams(out);
  query_proj_->CollectParams(out);
  key_proj_->CollectParams(out);
  flow_->CollectParams(out);
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
}

}  // namespace diffode::baselines
