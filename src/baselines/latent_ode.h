#ifndef DIFFODE_BASELINES_LATENT_ODE_H_
#define DIFFODE_BASELINES_LATENT_ODE_H_

#include <memory>

#include "baselines/baseline_config.h"
#include "core/sequence_model.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/random.h"

namespace diffode::baselines {

// Latent ODE (Chen et al. 2018 / Rubanova et al. 2019): a backward-in-time
// GRU encoder produces the initial latent z0; the whole trajectory is
// decoded from the single deterministic latent rolled forward by a learned
// ODE. (The VAE sampling of the original is replaced by its posterior mean —
// the deterministic limit — which keeps the training loop identical across
// baselines; see DESIGN.md substitutions.)
class LatentOdeBaseline : public core::SequenceModel {
 public:
  explicit LatentOdeBaseline(const BaselineConfig& config);

  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;
  std::string name() const override { return "Latent ODE"; }

 private:
  struct Encoded {
    ag::Var z0;  // 1 x hidden
    Scalar t_scale = 1.0;
    Scalar t_offset = 0.0;
  };
  Encoded Encode(const data::IrregularSeries& context) const;
  ag::Var Evolve(const ag::Var& z0, Scalar from, Scalar to) const;

  BaselineConfig config_;
  mutable Rng rng_;
  std::unique_ptr<nn::GruCell> encoder_;   // consumed back-to-front
  std::unique_ptr<nn::Linear> to_latent_;
  std::unique_ptr<nn::Mlp> dynamics_;
  std::unique_ptr<nn::Mlp> cls_head_;
  std::unique_ptr<nn::Mlp> reg_head_;
};

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_LATENT_ODE_H_
