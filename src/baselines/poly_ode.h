#ifndef DIFFODE_BASELINES_POLY_ODE_H_
#define DIFFODE_BASELINES_POLY_ODE_H_

#include <memory>

#include "baselines/jump_ode_base.h"
#include "hippo/hippo.h"
#include "nn/gru.h"
#include "nn/linear.h"

namespace diffode::baselines {

// PolyODE (Brouwer & Krishnan 2023, "anamnesic neural differential
// equations"): an ODE-RNN whose state is augmented with an orthogonal-
// polynomial (LegS) projection of the hidden trajectory, enforcing long-
// range memory. State layout: [h (hidden_dim) | c (hippo_dim)].
class PolyOdeBaseline : public JumpOdeBase {
 public:
  explicit PolyOdeBaseline(const BaselineConfig& config)
      : JumpOdeBase(config, config.hidden_dim + config.hippo_dim),
        hidden_dim_(config.hidden_dim),
        hippo_dim_(config.hippo_dim) {
    dynamics_ = std::make_unique<nn::Mlp>(
        std::vector<Index>{hidden_dim_, config.mlp_hidden, hidden_dim_},
        rng());
    memory_in_ = std::make_unique<nn::Linear>(hidden_dim_, 1, rng());
    cell_ = std::make_unique<nn::GruCell>(2 * config.input_dim + 2,
                                          hidden_dim_, rng());
    // LegS scaled so the unrolled explicit solver stays in its stability
    // region: |lambda_max| * step = (hippo_dim / tau) * step <= 1.
    const Scalar tau =
        std::max<Scalar>(static_cast<Scalar>(hippo_dim_) * config.step, 1e-3);
    a_t_ = hippo::MakeLegsA(hippo_dim_).Transposed() * (1.0 / tau);
    b_t_ = hippo::MakeLegsB(hippo_dim_).Transposed() * (1.0 / tau);
  }

  std::string name() const override { return "PolyODE"; }

 protected:
  ode::DiffOdeFunc ContinuousDynamics() const override {
    return [this](Scalar, const ag::Var& state) {
      ag::Var h = ag::SliceCols(state, 0, hidden_dim_);
      ag::Var c = ag::SliceCols(state, hidden_dim_, hippo_dim_);
      ag::Var dh = dynamics_->Forward(h);
      // dc/dt = A c + B (w h): the hidden trajectory streamed into the
      // polynomial memory.
      ag::Var dc = ag::Add(ag::MatMul(c, ag::Constant(a_t_)),
                           ag::MulByScalarVar(ag::Constant(b_t_),
                                              memory_in_->Forward(h)));
      return ag::ConcatCols({dh, dc});
    };
  }

  ag::Var JumpUpdate(const ag::Var& row, const ag::Var& state) const override {
    ag::Var h = ag::SliceCols(state, 0, hidden_dim_);
    ag::Var c = ag::SliceCols(state, hidden_dim_, hippo_dim_);
    return ag::ConcatCols({cell_->Forward(row, h), c});
  }

  void CollectOwnParams(std::vector<ag::Var>* out) const override {
    dynamics_->CollectParams(out);
    memory_in_->CollectParams(out);
    cell_->CollectParams(out);
  }

 private:
  Index hidden_dim_;
  Index hippo_dim_;
  std::unique_ptr<nn::Mlp> dynamics_;
  std::unique_ptr<nn::Linear> memory_in_;
  std::unique_ptr<nn::GruCell> cell_;
  Tensor a_t_;
  Tensor b_t_;
};

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_POLY_ODE_H_
