#include "baselines/zoo.h"

#include "baselines/attention_models.h"
#include "baselines/gru_baselines.h"
#include "baselines/gru_ode_bayes.h"
#include "baselines/hippo_models.h"
#include "baselines/latent_ode.h"
#include "baselines/neural_cde.h"
#include "baselines/nrde.h"
#include "baselines/ode_lstm.h"
#include "baselines/ode_rnn.h"
#include "baselines/poly_ode.h"

namespace diffode::baselines {

std::vector<std::string> BaselineNames() {
  return {"mTAN",       "ContiFormer",   "HiPPO-obs", "HiPPO-RNN",
          "S4",         "GRU",           "GRU-D",     "ODE-RNN",
          "Latent ODE", "GRU-ODE-Bayes", "NRDE",      "PolyODE",
          "NCDE",       "ODE-LSTM"};
}

std::unique_ptr<core::SequenceModel> MakeBaseline(
    const std::string& name, const BaselineConfig& config) {
  if (name == "mTAN") return std::make_unique<MtanBaseline>(config);
  if (name == "ContiFormer")
    return std::make_unique<ContiFormerBaseline>(config);
  if (name == "HiPPO-obs") return std::make_unique<HippoObsBaseline>(config);
  if (name == "HiPPO-RNN") return std::make_unique<HippoRnnBaseline>(config);
  if (name == "S4") return std::make_unique<S4LiteBaseline>(config);
  if (name == "GRU") return std::make_unique<GruBaseline>(config);
  if (name == "GRU-D") return std::make_unique<GruDBaseline>(config);
  if (name == "ODE-RNN") return std::make_unique<OdeRnnBaseline>(config);
  if (name == "Latent ODE") return std::make_unique<LatentOdeBaseline>(config);
  if (name == "GRU-ODE-Bayes")
    return std::make_unique<GruOdeBayesBaseline>(config);
  if (name == "NRDE") return std::make_unique<NrdeBaseline>(config);
  if (name == "NCDE") return std::make_unique<NeuralCdeBaseline>(config);
  if (name == "ODE-LSTM") return std::make_unique<OdeLstmBaseline>(config);
  if (name == "PolyODE") return std::make_unique<PolyOdeBaseline>(config);
  DIFFODE_CHECK_MSG(false, "unknown baseline name");
  return nullptr;
}

}  // namespace diffode::baselines
