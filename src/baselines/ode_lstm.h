#ifndef DIFFODE_BASELINES_ODE_LSTM_H_
#define DIFFODE_BASELINES_ODE_LSTM_H_

#include <memory>

#include "baselines/baseline_config.h"
#include "core/sequence_model.h"
#include "data/encoding.h"
#include "nn/lstm.h"
#include "nn/mlp.h"
#include "ode/diff_integrator.h"
#include "tensor/random.h"

namespace diffode::baselines {

// ODE-LSTM (Lechner & Hasani 2020), cited by the paper's related work: an
// LSTM whose *output* state h evolves by a learned ODE between
// observations while the memory cell c jumps only at observations —
// addressing the vanishing/exploding dynamics of pure ODE-RNNs.
class OdeLstmBaseline : public core::SequenceModel {
 public:
  explicit OdeLstmBaseline(const BaselineConfig& config);

  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;
  std::string name() const override { return "ODE-LSTM"; }

 private:
  struct Trace {
    std::vector<nn::LstmCell::State> states;  // post-update, per observation
    data::EncoderInputs enc;
  };
  Trace Process(const data::IrregularSeries& context) const;
  ag::Var EvolveH(const ag::Var& h, Scalar from, Scalar to) const;

  BaselineConfig config_;
  mutable Rng rng_;
  std::unique_ptr<nn::LstmCell> cell_;
  std::unique_ptr<nn::Mlp> dynamics_;  // h -> dh/dt between observations
  std::unique_ptr<nn::Mlp> cls_head_;
  std::unique_ptr<nn::Mlp> reg_head_;
};

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_ODE_LSTM_H_
