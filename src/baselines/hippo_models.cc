#include "baselines/hippo_models.h"

#include <algorithm>

#include "autograd/ops.h"
#include "data/encoding.h"
#include "hippo/hippo.h"

namespace diffode::baselines {

// ---------------------------------------------------------------------------
// HiPPO-RNN
// ---------------------------------------------------------------------------

HippoRnnBaseline::HippoRnnBaseline(const BaselineConfig& config)
    : config_(config), rng_(config.seed) {
  const Index enc_in = 2 * config_.input_dim + 2;
  cell_ = std::make_unique<nn::GruCell>(enc_in + config_.hippo_dim,
                                        config_.hidden_dim, rng_);
  memory_in_ = std::make_unique<nn::Linear>(config_.hidden_dim, 1, rng_);
  a_t_ = hippo::MakeLegsA(config_.hippo_dim).Transposed();
  b_t_ = hippo::MakeLegsB(config_.hippo_dim).Transposed();
  const Index state = config_.hidden_dim + config_.hippo_dim;
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{state, config_.mlp_hidden, config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{state + 1, config_.mlp_hidden, config_.input_dim},
      rng_);
}

HippoRnnBaseline::RunResult HippoRnnBaseline::Run(
    const data::IrregularSeries& context) const {
  data::EncoderInputs enc = data::BuildEncoderInputs(context);
  ag::Var x = ag::Constant(enc.inputs);
  ag::Var h = cell_->InitialState(1);
  ag::Var c = ag::Constant(Tensor(Shape{1, config_.hippo_dim}));
  ag::Var a_t = ag::Constant(a_t_);
  ag::Var b_t = ag::Constant(b_t_);
  Scalar prev = enc.norm_times.front();
  for (Index i = 0; i < context.length(); ++i) {
    // Clamp so the explicit memory update stays stable for the LegS
    // spectrum (|lambda_max| ~ hippo_dim needs dt * lambda_max <= 1).
    const Scalar dt = std::clamp(
        enc.norm_times[static_cast<std::size_t>(i)] - prev, 0.05,
        1.0 / static_cast<Scalar>(config_.hippo_dim));
    prev = enc.norm_times[static_cast<std::size_t>(i)];
    h = cell_->Forward(ag::ConcatCols({ag::SliceRows(x, i, 1), c}), h);
    // Discrete LegS memory update with the actual time gap:
    // c <- c + dt (A c + B w(h)).
    ag::Var dc = ag::Add(ag::MatMul(c, a_t),
                         ag::MulByScalarVar(b_t, memory_in_->Forward(h)));
    c = ag::Add(c, ag::MulScalar(dc, dt));
  }
  RunResult out;
  out.state = ag::ConcatCols({h, c});
  out.t_scale = enc.t_scale;
  out.t_offset = enc.t_offset;
  return out;
}

ag::Var HippoRnnBaseline::ClassifyLogits(
    const data::IrregularSeries& context) {
  return cls_head_->Forward(Run(context).state);
}

std::vector<ag::Var> HippoRnnBaseline::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  RunResult run = Run(context);
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    ag::Var t_var = ag::Constant(
        Tensor::Full(Shape{1, 1}, (t - run.t_offset) * run.t_scale));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({run.state, t_var})));
  }
  return preds;
}

void HippoRnnBaseline::CollectParams(std::vector<ag::Var>* out) const {
  cell_->CollectParams(out);
  memory_in_->CollectParams(out);
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
}

// ---------------------------------------------------------------------------
// HiPPO-obs
// ---------------------------------------------------------------------------

HippoObsBaseline::HippoObsBaseline(const BaselineConfig& config)
    : config_(config), rng_(config.seed) {
  const Index features = config_.input_dim * config_.hippo_dim;
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{features, config_.mlp_hidden, config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{features + 1, config_.mlp_hidden, config_.input_dim},
      rng_);
}

Tensor HippoObsBaseline::Project(const data::IrregularSeries& context) const {
  const Index f = config_.input_dim;
  Tensor features(Shape{1, f * config_.hippo_dim});
  for (Index j = 0; j < f; ++j) {
    hippo::LegsProjector projector(config_.hippo_dim);
    Scalar last = 0.0;
    for (Index i = 0; i < context.length(); ++i) {
      if (context.mask.at(i, j) > 0) last = context.values.at(i, j);
      projector.Update(last);  // carry the last observation forward
    }
    for (Index k = 0; k < config_.hippo_dim; ++k)
      features.at(0, j * config_.hippo_dim + k) = projector.coeffs().at(k, 0);
  }
  return features;
}

ag::Var HippoObsBaseline::ClassifyLogits(
    const data::IrregularSeries& context) {
  return cls_head_->Forward(ag::Constant(Project(context)));
}

std::vector<ag::Var> HippoObsBaseline::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  data::EncoderInputs enc = data::BuildEncoderInputs(context);
  ag::Var features = ag::Constant(Project(context));
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    ag::Var t_var = ag::Constant(Tensor::Full(Shape{1, 1}, enc.Normalize(t)));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({features, t_var})));
  }
  return preds;
}

void HippoObsBaseline::CollectParams(std::vector<ag::Var>* out) const {
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
}

// ---------------------------------------------------------------------------
// S4-lite
// ---------------------------------------------------------------------------

S4LiteBaseline::S4LiteBaseline(const BaselineConfig& config)
    : config_(config), rng_(config.seed) {
  const Index enc_in = 2 * config_.input_dim + 2;
  input_proj_ = std::make_unique<nn::Linear>(enc_in, 1, rng_);
  output_proj_ =
      std::make_unique<nn::Linear>(config_.hippo_dim, config_.hidden_dim,
                                   rng_);
  a_t_ = hippo::MakeLegsA(config_.hippo_dim).Transposed();
  b_t_ = hippo::MakeLegsB(config_.hippo_dim).Transposed();
  const Index state = config_.hippo_dim + config_.hidden_dim;
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{state, config_.mlp_hidden, config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{state + 1, config_.mlp_hidden, config_.input_dim},
      rng_);
}

S4LiteBaseline::RunResult S4LiteBaseline::Run(
    const data::IrregularSeries& context) const {
  data::EncoderInputs enc = data::BuildEncoderInputs(context);
  ag::Var x = ag::Constant(enc.inputs);
  ag::Var c = ag::Constant(Tensor(Shape{1, config_.hippo_dim}));
  ag::Var a_t = ag::Constant(a_t_);
  ag::Var b_t = ag::Constant(b_t_);
  ag::Var pooled = ag::Constant(Tensor(Shape{1, config_.hidden_dim}));
  Scalar prev = enc.norm_times.front();
  const Index n = context.length();
  for (Index i = 0; i < n; ++i) {
    // Clamp the step so the explicit SSM update stays stable for the LegS
    // spectrum (|lambda_max| ~ hippo_dim).
    const Scalar gap = enc.norm_times[static_cast<std::size_t>(i)] - prev;
    const Scalar dt =
        std::clamp(gap, 0.02, 1.5 / static_cast<Scalar>(config_.hippo_dim));
    prev = enc.norm_times[static_cast<std::size_t>(i)];
    ag::Var u = input_proj_->Forward(ag::SliceRows(x, i, 1));  // 1 x 1
    ag::Var dc = ag::Add(ag::MatMul(c, a_t), ag::MulByScalarVar(b_t, u));
    c = ag::Add(c, ag::MulScalar(dc, dt));
    pooled = ag::Add(pooled, ag::Tanh(output_proj_->Forward(c)));
  }
  RunResult out;
  out.state = c;
  out.pooled = ag::MulScalar(pooled, 1.0 / static_cast<Scalar>(n));
  out.t_scale = enc.t_scale;
  out.t_offset = enc.t_offset;
  return out;
}

ag::Var S4LiteBaseline::ClassifyLogits(const data::IrregularSeries& context) {
  RunResult run = Run(context);
  return cls_head_->Forward(ag::ConcatCols({run.state, run.pooled}));
}

std::vector<ag::Var> S4LiteBaseline::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  RunResult run = Run(context);
  ag::Var state = ag::ConcatCols({run.state, run.pooled});
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    ag::Var t_var = ag::Constant(
        Tensor::Full(Shape{1, 1}, (t - run.t_offset) * run.t_scale));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({state, t_var})));
  }
  return preds;
}

void S4LiteBaseline::CollectParams(std::vector<ag::Var>* out) const {
  input_proj_->CollectParams(out);
  output_proj_->CollectParams(out);
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
}

}  // namespace diffode::baselines
