#ifndef DIFFODE_BASELINES_BASELINE_CONFIG_H_
#define DIFFODE_BASELINES_BASELINE_CONFIG_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace diffode::baselines {

// Shared hyper-parameters for the baseline zoo (Sec. IV-A2 of the paper).
// Every baseline is sized comparably to DIFFODE so Tables III-V compare
// architectures, not capacities.
struct BaselineConfig {
  Index input_dim = 1;
  Index hidden_dim = 16;
  Index mlp_hidden = 32;
  Index num_classes = 2;
  Index hippo_dim = 16;     // LegS order for HiPPO-flavoured baselines
  Index time_embed_dim = 8; // mTAN / ContiFormer time embeddings
  Index num_ref_points = 8; // mTAN reference points
  Scalar step = 1.0;        // ODE integration step for ODE-based baselines
  std::uint64_t seed = 42;
};

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_BASELINE_CONFIG_H_
