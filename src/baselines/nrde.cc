#include "baselines/nrde.h"

#include <algorithm>

#include "autograd/ops.h"
#include "data/encoding.h"

namespace diffode::baselines {

Tensor NrdeBaseline::LogSignature2(const Tensor& path) {
  const Index rows = path.rows();
  const Index c = path.cols();
  DIFFODE_CHECK_GE(rows, 2);
  const Index num_areas = c * (c - 1) / 2;
  Tensor sig(Shape{1, c + num_areas});
  // Level 1: total increment.
  for (Index j = 0; j < c; ++j)
    sig.at(0, j) = path.at(rows - 1, j) - path.at(0, j);
  // Level 2 antisymmetric part (Lévy area), chained trapezoid form:
  // A_ij = 1/2 sum_k (x_i^k dx_j^k - x_j^k dx_i^k) with x relative to start.
  Index slot = c;
  for (Index i = 0; i < c; ++i) {
    for (Index j = i + 1; j < c; ++j) {
      Scalar area = 0.0;
      for (Index k = 0; k + 1 < rows; ++k) {
        const Scalar xi = path.at(k, i) - path.at(0, i);
        const Scalar xj = path.at(k, j) - path.at(0, j);
        const Scalar dxi = path.at(k + 1, i) - path.at(k, i);
        const Scalar dxj = path.at(k + 1, j) - path.at(k, j);
        area += 0.5 * (xi * dxj - xj * dxi);
      }
      sig.at(0, slot++) = area;
    }
  }
  return sig;
}

NrdeBaseline::NrdeBaseline(const BaselineConfig& config)
    : config_(config), rng_(config.seed) {
  projection_ = rng_.NormalTensor(
      Shape{config_.input_dim, kChannels - 1},
      0.0, 1.0 / std::sqrt(static_cast<Scalar>(config_.input_dim)));
  const Index sig_dim = kChannels + kChannels * (kChannels - 1) / 2;
  cde_field_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim + sig_dim, config_.mlp_hidden,
                         config_.hidden_dim},
      rng_);
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim + 1, config_.mlp_hidden,
                         config_.input_dim},
      rng_);
}

NrdeBaseline::RunResult NrdeBaseline::Run(
    const data::IrregularSeries& context) const {
  data::EncoderInputs enc = data::BuildEncoderInputs(context);
  const Index n = context.length();
  const Index f = config_.input_dim;
  // Time-augmented projected path: [t_norm | values * mask @ projection].
  Tensor path(Shape{n, kChannels});
  for (Index i = 0; i < n; ++i) {
    path.at(i, 0) = enc.norm_times[static_cast<std::size_t>(i)];
    for (Index p = 0; p < kChannels - 1; ++p) {
      Scalar acc = 0.0;
      for (Index j = 0; j < f; ++j)
        acc += context.values.at(i, j) * context.mask.at(i, j) *
               projection_.at(j, p);
      path.at(i, 1 + p) = acc;
    }
  }
  ag::Var h = ag::Constant(Tensor(Shape{1, config_.hidden_dim}));
  for (Index begin = 0; begin + 1 < n; begin += kWindow - 1) {
    const Index count = std::min<Index>(kWindow, n - begin);
    if (count < 2) break;
    Tensor window = path.Rows(begin, count);
    Tensor sig = LogSignature2(window);
    const Scalar span = window.at(count - 1, 0) - window.at(0, 0);
    ag::Var update =
        cde_field_->Forward(ag::ConcatCols({h, ag::Constant(sig)}));
    h = ag::Add(h, ag::MulScalar(ag::Tanh(update), std::max(span, 0.05)));
  }
  RunResult out;
  out.state = h;
  out.t_scale = enc.t_scale;
  out.t_offset = enc.t_offset;
  return out;
}

ag::Var NrdeBaseline::ClassifyLogits(const data::IrregularSeries& context) {
  return cls_head_->Forward(Run(context).state);
}

std::vector<ag::Var> NrdeBaseline::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  RunResult run = Run(context);
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    ag::Var t_var = ag::Constant(
        Tensor::Full(Shape{1, 1}, (t - run.t_offset) * run.t_scale));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({run.state, t_var})));
  }
  return preds;
}

void NrdeBaseline::CollectParams(std::vector<ag::Var>* out) const {
  cde_field_->CollectParams(out);
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
}

}  // namespace diffode::baselines
