#ifndef DIFFODE_BASELINES_GRU_ODE_BAYES_H_
#define DIFFODE_BASELINES_GRU_ODE_BAYES_H_

#include <memory>

#include "baselines/jump_ode_base.h"
#include "nn/gru.h"
#include "nn/linear.h"

namespace diffode::baselines {

// GRU-ODE-Bayes (De Brouwer et al. 2019): between observations the hidden
// state follows the autonomous GRU-ODE dh/dt = (1 - u(h)) * (c(h) - h)
// (a continuity prior pulling h toward the candidate activation); at each
// observation a discrete GRU "Bayes update" folds the measurement in.
class GruOdeBayesBaseline : public JumpOdeBase {
 public:
  explicit GruOdeBayesBaseline(const BaselineConfig& config)
      : JumpOdeBase(config, config.hidden_dim) {
    update_gate_ =
        std::make_unique<nn::Linear>(config.hidden_dim, config.hidden_dim,
                                     rng());
    candidate_ =
        std::make_unique<nn::Linear>(config.hidden_dim, config.hidden_dim,
                                     rng());
    cell_ = std::make_unique<nn::GruCell>(2 * config.input_dim + 2,
                                          config.hidden_dim, rng());
  }

  std::string name() const override { return "GRU-ODE-Bayes"; }

 protected:
  ode::DiffOdeFunc ContinuousDynamics() const override {
    return [this](Scalar, const ag::Var& h) {
      ag::Var u = ag::Sigmoid(update_gate_->Forward(h));
      ag::Var c = ag::Tanh(candidate_->Forward(h));
      // (1 - u) * (c - h)
      return ag::Mul(ag::AddScalar(ag::Neg(u), 1.0), ag::Sub(c, h));
    };
  }

  ag::Var JumpUpdate(const ag::Var& row, const ag::Var& state) const override {
    return cell_->Forward(row, state);
  }

  void CollectOwnParams(std::vector<ag::Var>* out) const override {
    update_gate_->CollectParams(out);
    candidate_->CollectParams(out);
    cell_->CollectParams(out);
  }

 private:
  std::unique_ptr<nn::Linear> update_gate_;
  std::unique_ptr<nn::Linear> candidate_;
  std::unique_ptr<nn::GruCell> cell_;
};

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_GRU_ODE_BAYES_H_
