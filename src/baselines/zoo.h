#ifndef DIFFODE_BASELINES_ZOO_H_
#define DIFFODE_BASELINES_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_config.h"
#include "core/sequence_model.h"

namespace diffode::baselines {

// Names accepted by MakeBaseline, in the paper's Table III order.
std::vector<std::string> BaselineNames();

// Factory for the baseline zoo. Aborts on an unknown name.
std::unique_ptr<core::SequenceModel> MakeBaseline(const std::string& name,
                                                  const BaselineConfig& config);

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_ZOO_H_
