#ifndef DIFFODE_BASELINES_GRU_BASELINES_H_
#define DIFFODE_BASELINES_GRU_BASELINES_H_

#include <memory>

#include "baselines/baseline_config.h"
#include "core/batched_model.h"
#include "core/sequence_model.h"
#include "data/encoding.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/random.h"

namespace diffode::baselines {

// Plain GRU (Chung et al. 2014) over the shared observation encoding.
// A purely discrete model: queries are answered from the final hidden state
// plus the (normalized) query time — the fragmented-representation baseline
// the paper's intro argues against.
class GruBaseline : public core::SequenceModel {
 public:
  explicit GruBaseline(const BaselineConfig& config);

  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;
  std::string name() const override { return "GRU"; }

 private:
  ag::Var RunToEnd(const data::IrregularSeries& context, Scalar* t_scale,
                   Scalar* t_offset) const;

  BaselineConfig config_;
  mutable Rng rng_;
  std::unique_ptr<nn::GruCell> cell_;
  std::unique_ptr<nn::Mlp> cls_head_;
  std::unique_ptr<nn::Mlp> reg_head_;
};

// GRU-D (Che et al. 2018): GRU with trainable input- and hidden-state decay
// driven by the time since the last observation of each channel.
class GruDBaseline : public core::SequenceModel,
                     public core::BatchedSequenceModel {
 public:
  explicit GruDBaseline(const BaselineConfig& config);

  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  // Union-grid lockstep: the batch walks the merged observation grid and at
  // each union point the member rows run one batched GruCell update. The
  // per-row decay/imputation chains replay the per-sequence autograd ops, so
  // B = 1 is bitwise identical to RunToEnd.
  Tensor ClassifyLogitsBatched(const data::SequenceBatch& batch) override;
  std::vector<std::vector<Tensor>> PredictAtBatched(
      const data::SequenceBatch& batch,
      const std::vector<std::vector<Scalar>>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;
  std::string name() const override { return "GRU-D"; }

 private:
  ag::Var RunToEnd(const data::IrregularSeries& context, Scalar* t_scale,
                   Scalar* t_offset) const;
  // Final hidden states for all rows (B x hidden) via union-grid lockstep.
  Tensor RunToEndBatched(const data::SequenceBatch& batch,
                         std::vector<data::EncoderInputs>* encs) const;

  BaselineConfig config_;
  mutable Rng rng_;
  std::unique_ptr<nn::GruCell> cell_;
  ag::Var input_decay_;   // 1 x f, >= 0 via relu in the decay exponent
  ag::Var hidden_decay_;  // 1 x hidden
  std::unique_ptr<nn::Mlp> cls_head_;
  std::unique_ptr<nn::Mlp> reg_head_;
};

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_GRU_BASELINES_H_
