#include "baselines/jump_ode_base.h"

#include <algorithm>

#include "autograd/ops.h"

namespace diffode::baselines {

JumpOdeBase::JumpOdeBase(const BaselineConfig& config, Index state_dim)
    : config_(config), rng_(config.seed), state_dim_(state_dim) {
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{state_dim_, config_.mlp_hidden, config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{state_dim_ + 1, config_.mlp_hidden,
                         config_.input_dim},
      rng_);
}

JumpOdeBase::Trace JumpOdeBase::Process(
    const data::IrregularSeries& context) const {
  Trace trace;
  trace.enc = data::BuildEncoderInputs(context);
  ode::DiffOdeFunc f = ContinuousDynamics();
  ode::DiffSolveOptions options;
  options.method = ode::DiffMethod::kMidpoint;
  options.step = config_.step;
  ag::Var x = ag::Constant(trace.enc.inputs);
  ag::Var state = ag::Constant(Tensor(Shape{1, state_dim_}));
  Scalar t_prev = trace.enc.norm_times.front();
  for (Index i = 0; i < context.length(); ++i) {
    const Scalar t = trace.enc.norm_times[static_cast<std::size_t>(i)];
    if (t > t_prev) state = ode::IntegrateVar(f, state, t_prev, t, options);
    state = JumpUpdate(ag::SliceRows(x, i, 1), state);
    trace.post_jump_states.push_back(state);
    t_prev = t;
  }
  return trace;
}

ag::Var JumpOdeBase::StateAt(const Trace& trace, Scalar norm_t) const {
  // Nearest observation at or before the query; the first one for queries
  // before the context (integrated backwards).
  const auto& times = trace.enc.norm_times;
  Index anchor = 0;
  for (std::size_t i = 0; i < times.size(); ++i)
    if (times[i] <= norm_t) anchor = static_cast<Index>(i);
  ode::DiffSolveOptions options;
  options.method = ode::DiffMethod::kMidpoint;
  options.step = config_.step;
  return ode::IntegrateVar(ContinuousDynamics(),
                           trace.post_jump_states[static_cast<std::size_t>(anchor)],
                           times[static_cast<std::size_t>(anchor)], norm_t,
                           options);
}

ag::Var JumpOdeBase::ClassifyLogits(const data::IrregularSeries& context) {
  Trace trace = Process(context);
  return cls_head_->Forward(trace.post_jump_states.back());
}

std::vector<ag::Var> JumpOdeBase::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  Trace trace = Process(context);
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    const Scalar norm_t = trace.enc.Normalize(t);
    ag::Var state = StateAt(trace, norm_t);
    ag::Var t_var = ag::Constant(Tensor::Full(Shape{1, 1}, norm_t));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({state, t_var})));
  }
  return preds;
}

void JumpOdeBase::CollectParams(std::vector<ag::Var>* out) const {
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
  CollectOwnParams(out);
}

}  // namespace diffode::baselines
