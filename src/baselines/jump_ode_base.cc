#include "baselines/jump_ode_base.h"

#include <algorithm>

#include "autograd/ops.h"
#include "ode/lockstep.h"
#include "tensor/kernels.h"

namespace diffode::baselines {

JumpOdeBase::JumpOdeBase(const BaselineConfig& config, Index state_dim)
    : config_(config), rng_(config.seed), state_dim_(state_dim) {
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{state_dim_, config_.mlp_hidden, config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{state_dim_ + 1, config_.mlp_hidden,
                         config_.input_dim},
      rng_);
}

JumpOdeBase::Trace JumpOdeBase::Process(
    const data::IrregularSeries& context) const {
  Trace trace;
  trace.enc = data::BuildEncoderInputs(context);
  ode::DiffOdeFunc f = ContinuousDynamics();
  ode::DiffSolveOptions options;
  options.method = ode::DiffMethod::kMidpoint;
  options.step = config_.step;
  ag::Var x = ag::Constant(trace.enc.inputs);
  ag::Var state = ag::Constant(Tensor(Shape{1, state_dim_}));
  Scalar t_prev = trace.enc.norm_times.front();
  for (Index i = 0; i < context.length(); ++i) {
    const Scalar t = trace.enc.norm_times[static_cast<std::size_t>(i)];
    if (t > t_prev) state = ode::IntegrateVar(f, state, t_prev, t, options);
    state = JumpUpdate(ag::SliceRows(x, i, 1), state);
    trace.post_jump_states.push_back(state);
    t_prev = t;
  }
  return trace;
}

ag::Var JumpOdeBase::StateAt(const Trace& trace, Scalar norm_t) const {
  // Nearest observation at or before the query; the first one for queries
  // before the context (integrated backwards).
  const auto& times = trace.enc.norm_times;
  Index anchor = 0;
  for (std::size_t i = 0; i < times.size(); ++i)
    if (times[i] <= norm_t) anchor = static_cast<Index>(i);
  ode::DiffSolveOptions options;
  options.method = ode::DiffMethod::kMidpoint;
  options.step = config_.step;
  return ode::IntegrateVar(ContinuousDynamics(),
                           trace.post_jump_states[static_cast<std::size_t>(anchor)],
                           times[static_cast<std::size_t>(anchor)], norm_t,
                           options);
}

JumpOdeBase::BatchedTrace JumpOdeBase::ProcessBatched(
    const data::SequenceBatch& batch) const {
  const Index b = batch.batch;
  BatchedTrace trace;
  trace.enc.reserve(static_cast<std::size_t>(b));
  trace.post_jump.resize(static_cast<std::size_t>(b));
  // One plan per row replaying Process(): integrate between consecutive
  // observation times, jump (checkpoint) at each observation.
  std::vector<ode::RowPlan> plans(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r) {
    trace.enc.push_back(data::BuildEncoderInputs(
        *batch.series[static_cast<std::size_t>(r)]));
    const std::vector<Scalar>& times = trace.enc.back().norm_times;
    ode::RowPlan& plan = plans[static_cast<std::size_t>(r)];
    Scalar t_prev = times.front();
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (times[i] > t_prev)
        ode::AppendSegment(&plan, t_prev, times[i], config_.step);
      ode::AppendCheckpoint(&plan, static_cast<Index>(i));
      t_prev = times[i];
    }
    trace.post_jump[static_cast<std::size_t>(r)].resize(times.size());
  }
  Tensor y(Shape{b, state_dim_});  // zeros, as the per-sequence start state
  const ode::BatchedRhs rhs = [this](const std::vector<Index>&,
                                     const std::vector<Scalar>&,
                                     const Tensor& ya) -> Tensor {
    return LockstepDynamics(ag::Constant(ya)).value();
  };
  const Index enc_in = trace.enc.front().inputs.cols();
  const ode::LockstepEventFn on_event =
      [&](const std::vector<ode::LockstepEvent>& events, Tensor* yp) {
        // Group this wave's jumps into one batched JumpUpdate.
        const Index e = static_cast<Index>(events.size());
        Tensor x_rows = Tensor::Uninit(Shape{e, enc_in});
        Tensor h_rows = Tensor::Uninit(Shape{e, state_dim_});
        std::vector<Index> rows(static_cast<std::size_t>(e));
        for (Index j = 0; j < e; ++j) {
          const ode::LockstepEvent& ev = events[static_cast<std::size_t>(j)];
          rows[static_cast<std::size_t>(j)] = ev.row;
          std::copy_n(
              trace.enc[static_cast<std::size_t>(ev.row)].inputs.data() +
                  ev.tag * enc_in,
              enc_in, x_rows.data() + j * enc_in);
        }
        kernels::SelectRows(e, state_dim_, rows.data(), yp->data(),
                            h_rows.data());
        const Tensor jumped =
            JumpUpdate(ag::Constant(x_rows), ag::Constant(h_rows)).value();
        kernels::ScatterRows(e, state_dim_, rows.data(), jumped.data(),
                             yp->data());
        for (Index j = 0; j < e; ++j) {
          const ode::LockstepEvent& ev = events[static_cast<std::size_t>(j)];
          trace.post_jump[static_cast<std::size_t>(ev.row)]
                         [static_cast<std::size_t>(ev.tag)] = jumped.Row(j);
        }
      };
  ode::LockstepIntegrate(plans, ode::DiffMethod::kMidpoint, rhs, on_event, &y);
  return trace;
}

Tensor JumpOdeBase::ClassifyLogitsBatched(const data::SequenceBatch& batch) {
  ag::NoGradScope no_grad;
  const Index b = batch.batch;
  if (!SupportsLockstep()) {
    Tensor out;
    for (Index r = 0; r < b; ++r) {
      const ag::Var logits =
          ClassifyLogits(*batch.series[static_cast<std::size_t>(r)]);
      if (r == 0) out = Tensor(Shape{b, logits.cols()});
      out.SetRow(r, logits.value());
    }
    return out;
  }
  BatchedTrace trace = ProcessBatched(batch);
  Tensor h = Tensor::Uninit(Shape{b, state_dim_});
  for (Index r = 0; r < b; ++r)
    std::copy_n(trace.post_jump[static_cast<std::size_t>(r)].back().data(),
                state_dim_, h.data() + r * state_dim_);
  return cls_head_->Forward(ag::Constant(h)).value();
}

std::vector<std::vector<Tensor>> JumpOdeBase::PredictAtBatched(
    const data::SequenceBatch& batch,
    const std::vector<std::vector<Scalar>>& times) {
  ag::NoGradScope no_grad;
  const Index b = batch.batch;
  DIFFODE_CHECK_EQ(static_cast<Index>(times.size()), b);
  std::vector<std::vector<Tensor>> out(static_cast<std::size_t>(b));
  if (!SupportsLockstep()) {
    for (Index r = 0; r < b; ++r) {
      const std::vector<ag::Var> preds =
          PredictAt(*batch.series[static_cast<std::size_t>(r)],
                    times[static_cast<std::size_t>(r)]);
      auto& dst = out[static_cast<std::size_t>(r)];
      dst.reserve(preds.size());
      for (const ag::Var& p : preds) dst.push_back(p.value());
    }
    return out;
  }
  BatchedTrace trace = ProcessBatched(batch);
  // Query integrations replay StateAt per (row, time) pair — the 1 x state
  // per-sequence shape — so predictions are bitwise at any B.
  ode::DiffSolveOptions options;
  options.method = ode::DiffMethod::kMidpoint;
  options.step = config_.step;
  const ode::DiffOdeFunc f = ContinuousDynamics();
  for (Index r = 0; r < b; ++r) {
    const data::EncoderInputs& enc = trace.enc[static_cast<std::size_t>(r)];
    const std::vector<Scalar>& obs_times = enc.norm_times;
    auto& dst = out[static_cast<std::size_t>(r)];
    dst.reserve(times[static_cast<std::size_t>(r)].size());
    for (Scalar t : times[static_cast<std::size_t>(r)]) {
      const Scalar norm_t = enc.Normalize(t);
      Index anchor = 0;
      for (std::size_t i = 0; i < obs_times.size(); ++i)
        if (obs_times[i] <= norm_t) anchor = static_cast<Index>(i);
      const ag::Var state = ode::IntegrateVar(
          f,
          ag::Constant(trace.post_jump[static_cast<std::size_t>(r)]
                                      [static_cast<std::size_t>(anchor)]),
          obs_times[static_cast<std::size_t>(anchor)], norm_t, options);
      const ag::Var t_var = ag::Constant(Tensor::Full(Shape{1, 1}, norm_t));
      dst.push_back(
          reg_head_->Forward(ag::ConcatCols({state, t_var})).value());
    }
  }
  return out;
}

ag::Var JumpOdeBase::ClassifyLogits(const data::IrregularSeries& context) {
  Trace trace = Process(context);
  return cls_head_->Forward(trace.post_jump_states.back());
}

std::vector<ag::Var> JumpOdeBase::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  Trace trace = Process(context);
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    const Scalar norm_t = trace.enc.Normalize(t);
    ag::Var state = StateAt(trace, norm_t);
    ag::Var t_var = ag::Constant(Tensor::Full(Shape{1, 1}, norm_t));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({state, t_var})));
  }
  return preds;
}

void JumpOdeBase::CollectParams(std::vector<ag::Var>* out) const {
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
  CollectOwnParams(out);
}

}  // namespace diffode::baselines
