#ifndef DIFFODE_BASELINES_JUMP_ODE_BASE_H_
#define DIFFODE_BASELINES_JUMP_ODE_BASE_H_

#include <memory>

#include "baselines/baseline_config.h"
#include "core/batched_model.h"
#include "core/sequence_model.h"
#include "data/encoding.h"
#include "nn/mlp.h"
#include "ode/diff_integrator.h"
#include "tensor/random.h"

namespace diffode::baselines {

// Shared machinery for the "discrete update" family of neural-ODE baselines
// (ODE-RNN, GRU-ODE-Bayes, PolyODE): a latent state evolves continuously
// between observations under ContinuousDynamics() and jumps through
// JumpUpdate() at each observation. Queries are answered by evolving the
// state from the nearest preceding observation — exactly the fragmented
// latent process of the paper's Fig. 1(a).
class JumpOdeBase : public core::SequenceModel,
                    public core::BatchedSequenceModel {
 public:
  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  // Lockstep batched serving: every row replays its per-sequence step
  // timeline, jump updates are grouped per wave through one batched
  // JumpUpdate call, and query-time integrations stay per-pair (bitwise at
  // any B). Models whose dynamics are not batched-safe (SupportsLockstep()
  // false) are served by a per-sequence fallback loop.
  Tensor ClassifyLogitsBatched(const data::SequenceBatch& batch) override;
  std::vector<std::vector<Tensor>> PredictAtBatched(
      const data::SequenceBatch& batch,
      const std::vector<std::vector<Scalar>>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;

 protected:
  JumpOdeBase(const BaselineConfig& config, Index state_dim);

  virtual ode::DiffOdeFunc ContinuousDynamics() const = 0;
  virtual ag::Var JumpUpdate(const ag::Var& row, const ag::Var& state) const = 0;
  // Derived classes append their own parameters.
  virtual void CollectOwnParams(std::vector<ag::Var>* out) const = 0;
  // Opt-in to the lockstep engine: true when ContinuousDynamics is
  // time-independent and row-wise (the RHS of a stacked B x state block is
  // the per-row RHS), and JumpUpdate accepts batched rows. When true,
  // LockstepDynamics must evaluate the dynamics on a B x state batch.
  virtual bool SupportsLockstep() const { return false; }
  virtual ag::Var LockstepDynamics(const ag::Var& y) const {
    (void)y;
    DIFFODE_CHECK_MSG(false, "LockstepDynamics requires SupportsLockstep");
    return ag::Var();
  }

  const BaselineConfig& config() const { return config_; }
  Rng& rng() const { return rng_; }

 private:
  struct Trace {
    data::EncoderInputs enc;
    std::vector<ag::Var> post_jump_states;  // state after each observation
  };

  struct BatchedTrace {
    std::vector<data::EncoderInputs> enc;
    std::vector<std::vector<Tensor>> post_jump;  // [row][obs], 1 x state
  };

  Trace Process(const data::IrregularSeries& context) const;
  ag::Var StateAt(const Trace& trace, Scalar norm_t) const;
  BatchedTrace ProcessBatched(const data::SequenceBatch& batch) const;

  BaselineConfig config_;
  mutable Rng rng_;
  Index state_dim_;
  std::unique_ptr<nn::Mlp> cls_head_;
  std::unique_ptr<nn::Mlp> reg_head_;
};

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_JUMP_ODE_BASE_H_
