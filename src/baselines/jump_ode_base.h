#ifndef DIFFODE_BASELINES_JUMP_ODE_BASE_H_
#define DIFFODE_BASELINES_JUMP_ODE_BASE_H_

#include <memory>

#include "baselines/baseline_config.h"
#include "core/sequence_model.h"
#include "data/encoding.h"
#include "nn/mlp.h"
#include "ode/diff_integrator.h"
#include "tensor/random.h"

namespace diffode::baselines {

// Shared machinery for the "discrete update" family of neural-ODE baselines
// (ODE-RNN, GRU-ODE-Bayes, PolyODE): a latent state evolves continuously
// between observations under ContinuousDynamics() and jumps through
// JumpUpdate() at each observation. Queries are answered by evolving the
// state from the nearest preceding observation — exactly the fragmented
// latent process of the paper's Fig. 1(a).
class JumpOdeBase : public core::SequenceModel {
 public:
  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;

 protected:
  JumpOdeBase(const BaselineConfig& config, Index state_dim);

  virtual ode::DiffOdeFunc ContinuousDynamics() const = 0;
  virtual ag::Var JumpUpdate(const ag::Var& row, const ag::Var& state) const = 0;
  // Derived classes append their own parameters.
  virtual void CollectOwnParams(std::vector<ag::Var>* out) const = 0;

  const BaselineConfig& config() const { return config_; }
  Rng& rng() const { return rng_; }

 private:
  struct Trace {
    data::EncoderInputs enc;
    std::vector<ag::Var> post_jump_states;  // state after each observation
  };

  Trace Process(const data::IrregularSeries& context) const;
  ag::Var StateAt(const Trace& trace, Scalar norm_t) const;

  BaselineConfig config_;
  mutable Rng rng_;
  Index state_dim_;
  std::unique_ptr<nn::Mlp> cls_head_;
  std::unique_ptr<nn::Mlp> reg_head_;
};

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_JUMP_ODE_BASE_H_
