#ifndef DIFFODE_BASELINES_NRDE_H_
#define DIFFODE_BASELINES_NRDE_H_

#include <memory>

#include "baselines/baseline_config.h"
#include "core/sequence_model.h"
#include "nn/mlp.h"
#include "tensor/random.h"

namespace diffode::baselines {

// NRDE-lite (Morrill et al. 2021): the observation path (time-augmented,
// projected to a small number of channels) is summarized per window by its
// depth-2 log-signature — increments plus Lévy areas — which drives a
// discretized controlled-differential-equation update of the hidden state:
//   h_{k+1} = h_k + f([h_k, logsig_k]) * |window_k|.
class NrdeBaseline : public core::SequenceModel {
 public:
  explicit NrdeBaseline(const BaselineConfig& config);

  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;
  std::string name() const override { return "NRDE"; }

  // Depth-2 log-signature of a path segment given as rows x channels:
  // [increments (c) | Lévy areas (c(c-1)/2)]. Exposed for tests.
  static Tensor LogSignature2(const Tensor& path);

 private:
  static constexpr Index kChannels = 4;  // projected path channels (incl. time)
  static constexpr Index kWindow = 4;    // observations per signature window

  struct RunResult {
    ag::Var state;
    Scalar t_scale = 1.0;
    Scalar t_offset = 0.0;
  };
  RunResult Run(const data::IrregularSeries& context) const;

  BaselineConfig config_;
  mutable Rng rng_;
  Tensor projection_;  // fixed random (f) -> (kChannels - 1) channel mixer
  std::unique_ptr<nn::Mlp> cde_field_;
  std::unique_ptr<nn::Mlp> cls_head_;
  std::unique_ptr<nn::Mlp> reg_head_;
};

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_NRDE_H_
