#ifndef DIFFODE_BASELINES_HIPPO_MODELS_H_
#define DIFFODE_BASELINES_HIPPO_MODELS_H_

#include <memory>

#include "baselines/baseline_config.h"
#include "core/sequence_model.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/random.h"

namespace diffode::baselines {

// HiPPO-RNN (Gu et al. 2020): a GRU whose input is augmented with the
// running LegS projection of a learned scalar readout of the hidden state,
// giving the recurrence long-range polynomial memory.
class HippoRnnBaseline : public core::SequenceModel {
 public:
  explicit HippoRnnBaseline(const BaselineConfig& config);

  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;
  std::string name() const override { return "HiPPO-RNN"; }

 private:
  struct RunResult {
    ag::Var state;  // 1 x (hidden + hippo)
    Scalar t_scale = 1.0;
    Scalar t_offset = 0.0;
  };
  RunResult Run(const data::IrregularSeries& context) const;

  BaselineConfig config_;
  mutable Rng rng_;
  std::unique_ptr<nn::GruCell> cell_;
  std::unique_ptr<nn::Linear> memory_in_;  // hidden -> 1
  Tensor a_t_;  // LegS Aᵀ
  Tensor b_t_;  // LegS Bᵀ
  std::unique_ptr<nn::Mlp> cls_head_;
  std::unique_ptr<nn::Mlp> reg_head_;
};

// HiPPO-obs (the paper's variant, following PolyODE): the LegS operator is
// applied directly to each observed channel; the resulting per-channel
// Legendre coefficients are static features for MLP heads.
class HippoObsBaseline : public core::SequenceModel {
 public:
  explicit HippoObsBaseline(const BaselineConfig& config);

  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;
  std::string name() const override { return "HiPPO-obs"; }

 private:
  // f * hippo_dim coefficient features (plain tensors; the projection is a
  // fixed operator, only the heads train).
  Tensor Project(const data::IrregularSeries& context) const;

  BaselineConfig config_;
  mutable Rng rng_;
  std::unique_ptr<nn::Mlp> cls_head_;
  std::unique_ptr<nn::Mlp> reg_head_;
};

// S4-lite (Gu et al. 2022, reduced): a diagonal-free structured SSM layer —
// fixed LegS state matrix, trained input/output projections, stepped with
// the observation gaps — followed by MLP heads. Captures the SSM-family
// behaviour at this harness's scale without the FFT kernel machinery.
class S4LiteBaseline : public core::SequenceModel {
 public:
  explicit S4LiteBaseline(const BaselineConfig& config);

  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;
  std::string name() const override { return "S4"; }

 private:
  struct RunResult {
    ag::Var state;    // 1 x hippo_dim SSM state after the last step
    ag::Var pooled;   // 1 x hidden mean-pooled SSM outputs
    Scalar t_scale = 1.0;
    Scalar t_offset = 0.0;
  };
  RunResult Run(const data::IrregularSeries& context) const;

  BaselineConfig config_;
  mutable Rng rng_;
  std::unique_ptr<nn::Linear> input_proj_;   // enc_in -> 1
  std::unique_ptr<nn::Linear> output_proj_;  // hippo_dim -> hidden
  Tensor a_t_;
  Tensor b_t_;
  std::unique_ptr<nn::Mlp> cls_head_;
  std::unique_ptr<nn::Mlp> reg_head_;
};

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_HIPPO_MODELS_H_
