#ifndef DIFFODE_BASELINES_ODE_RNN_H_
#define DIFFODE_BASELINES_ODE_RNN_H_

#include <memory>

#include "baselines/jump_ode_base.h"
#include "nn/gru.h"

namespace diffode::baselines {

// ODE-RNN (Rubanova et al. 2019): hidden state evolves by a learned ODE
// between observations and is updated by a GRU cell at each observation.
class OdeRnnBaseline : public JumpOdeBase {
 public:
  explicit OdeRnnBaseline(const BaselineConfig& config)
      : JumpOdeBase(config, config.hidden_dim) {
    dynamics_ = std::make_unique<nn::Mlp>(
        std::vector<Index>{config.hidden_dim, config.mlp_hidden,
                           config.hidden_dim},
        rng());
    cell_ = std::make_unique<nn::GruCell>(2 * config.input_dim + 2,
                                          config.hidden_dim, rng());
  }

  std::string name() const override { return "ODE-RNN"; }

 protected:
  ode::DiffOdeFunc ContinuousDynamics() const override {
    return [this](Scalar, const ag::Var& h) { return dynamics_->Forward(h); };
  }

  ag::Var JumpUpdate(const ag::Var& row, const ag::Var& state) const override {
    return cell_->Forward(row, state);
  }

  // Both the MLP dynamics and the GRU jump are row-wise over a stacked
  // batch, so the lockstep engine can drive them directly.
  bool SupportsLockstep() const override { return true; }
  ag::Var LockstepDynamics(const ag::Var& y) const override {
    return dynamics_->Forward(y);
  }

  void CollectOwnParams(std::vector<ag::Var>* out) const override {
    dynamics_->CollectParams(out);
    cell_->CollectParams(out);
  }

 private:
  std::unique_ptr<nn::Mlp> dynamics_;
  std::unique_ptr<nn::GruCell> cell_;
};

}  // namespace diffode::baselines

#endif  // DIFFODE_BASELINES_ODE_RNN_H_
