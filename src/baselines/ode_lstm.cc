#include "baselines/ode_lstm.h"

#include <algorithm>

#include "autograd/ops.h"

namespace diffode::baselines {

OdeLstmBaseline::OdeLstmBaseline(const BaselineConfig& config)
    : config_(config), rng_(config.seed) {
  const Index enc_in = 2 * config_.input_dim + 2;
  cell_ = std::make_unique<nn::LstmCell>(enc_in, config_.hidden_dim, rng_);
  dynamics_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.hidden_dim},
      rng_);
  cls_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim, config_.mlp_hidden,
                         config_.num_classes},
      rng_);
  reg_head_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{config_.hidden_dim + 1, config_.mlp_hidden,
                         config_.input_dim},
      rng_);
}

ag::Var OdeLstmBaseline::EvolveH(const ag::Var& h, Scalar from,
                                 Scalar to) const {
  if (from == to) return h;
  ode::DiffOdeFunc f = [this](Scalar, const ag::Var& y) {
    return ag::Tanh(dynamics_->Forward(y));
  };
  ode::DiffSolveOptions options;
  options.method = ode::DiffMethod::kMidpoint;
  options.step = config_.step;
  return ode::IntegrateVar(f, h, from, to, options);
}

OdeLstmBaseline::Trace OdeLstmBaseline::Process(
    const data::IrregularSeries& context) const {
  Trace trace;
  trace.enc = data::BuildEncoderInputs(context);
  ag::Var x = ag::Constant(trace.enc.inputs);
  nn::LstmCell::State state = cell_->InitialState(1);
  Scalar t_prev = trace.enc.norm_times.front();
  for (Index i = 0; i < context.length(); ++i) {
    const Scalar t = trace.enc.norm_times[static_cast<std::size_t>(i)];
    // Continuous evolution of h only; c carries discrete memory.
    state.h = EvolveH(state.h, t_prev, t);
    state = cell_->Forward(ag::SliceRows(x, i, 1), state);
    trace.states.push_back(state);
    t_prev = t;
  }
  return trace;
}

ag::Var OdeLstmBaseline::ClassifyLogits(const data::IrregularSeries& context) {
  Trace trace = Process(context);
  return cls_head_->Forward(trace.states.back().h);
}

std::vector<ag::Var> OdeLstmBaseline::PredictAt(
    const data::IrregularSeries& context, const std::vector<Scalar>& times) {
  Trace trace = Process(context);
  const auto& obs_times = trace.enc.norm_times;
  std::vector<ag::Var> preds;
  preds.reserve(times.size());
  for (Scalar t : times) {
    const Scalar norm_t = trace.enc.Normalize(t);
    // Evolve h from the nearest preceding observation.
    Index anchor = 0;
    for (std::size_t i = 0; i < obs_times.size(); ++i)
      if (obs_times[i] <= norm_t) anchor = static_cast<Index>(i);
    ag::Var h = EvolveH(trace.states[static_cast<std::size_t>(anchor)].h,
                        obs_times[static_cast<std::size_t>(anchor)], norm_t);
    ag::Var t_var = ag::Constant(Tensor::Full(Shape{1, 1}, norm_t));
    preds.push_back(reg_head_->Forward(ag::ConcatCols({h, t_var})));
  }
  return preds;
}

void OdeLstmBaseline::CollectParams(std::vector<ag::Var>* out) const {
  cell_->CollectParams(out);
  dynamics_->CollectParams(out);
  cls_head_->CollectParams(out);
  reg_head_->CollectParams(out);
}

}  // namespace diffode::baselines
