#include "train/metrics.h"

#include <cmath>
#include <cstdio>

namespace diffode::train {

RegressionMetrics::RegressionMetrics(Index num_channels)
    : num_channels_(num_channels),
      abs_sum_(static_cast<std::size_t>(num_channels), 0.0),
      sq_sum_(static_cast<std::size_t>(num_channels), 0.0),
      counts_(static_cast<std::size_t>(num_channels), 0.0) {}

void RegressionMetrics::Add(const Tensor& prediction, const Tensor& target,
                            const Tensor& mask) {
  DIFFODE_CHECK(prediction.shape() == target.shape());
  DIFFODE_CHECK(prediction.shape() == mask.shape());
  DIFFODE_CHECK_EQ(prediction.cols(), num_channels_);
  // Walk the three buffers with raw row pointers; at(i, j) re-derives the
  // offset (and bounds-checks) per element, which dominates this loop on
  // wide prediction matrices.
  const Scalar* pred_row = prediction.data();
  const Scalar* target_row = target.data();
  const Scalar* mask_row = mask.data();
  for (Index i = 0; i < prediction.rows(); ++i) {
    for (Index j = 0; j < num_channels_; ++j) {
      if (mask_row[j] <= 0) continue;
      const Scalar err = pred_row[j] - target_row[j];
      const Scalar abs_err = std::fabs(err);
      const Scalar sq_err = err * err;
      abs_sum_[static_cast<std::size_t>(j)] += abs_err;
      sq_sum_[static_cast<std::size_t>(j)] += sq_err;
      counts_[static_cast<std::size_t>(j)] += 1.0;
      total_abs_ += abs_err;
      total_sq_ += sq_err;
      total_count_ += 1.0;
    }
    pred_row += num_channels_;
    target_row += num_channels_;
    mask_row += num_channels_;
  }
}

Scalar RegressionMetrics::Mae() const {
  return total_count_ > 0 ? total_abs_ / total_count_ : 0.0;
}

Scalar RegressionMetrics::Rmse() const {
  return total_count_ > 0 ? std::sqrt(total_sq_ / total_count_) : 0.0;
}

Scalar RegressionMetrics::ChannelMae(Index channel) const {
  const auto c = static_cast<std::size_t>(channel);
  return counts_[c] > 0 ? abs_sum_[c] / counts_[c] : 0.0;
}

Scalar RegressionMetrics::ChannelRmse(Index channel) const {
  const auto c = static_cast<std::size_t>(channel);
  return counts_[c] > 0 ? std::sqrt(sq_sum_[c] / counts_[c]) : 0.0;
}

std::string RegressionMetrics::Report() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "MAE %.4f  RMSE %.4f  (n=%lld)\n", Mae(),
                Rmse(), static_cast<long long>(count()));
  std::string out = buf;
  for (Index j = 0; j < num_channels_; ++j) {
    std::snprintf(buf, sizeof(buf), "  ch%-3lld MAE %.4f  RMSE %.4f\n",
                  static_cast<long long>(j), ChannelMae(j), ChannelRmse(j));
    out += buf;
  }
  return out;
}

ConfusionMatrix::ConfusionMatrix(Index num_classes)
    : num_classes_(num_classes),
      cells_(static_cast<std::size_t>(num_classes * num_classes), 0) {}

void ConfusionMatrix::Add(Index predicted, Index actual) {
  DIFFODE_CHECK_GE(predicted, 0);
  DIFFODE_CHECK_LT(predicted, num_classes_);
  DIFFODE_CHECK_GE(actual, 0);
  DIFFODE_CHECK_LT(actual, num_classes_);
  ++cells_[static_cast<std::size_t>(predicted * num_classes_ + actual)];
  ++total_;
}

Index ConfusionMatrix::At(Index predicted, Index actual) const {
  return cells_[static_cast<std::size_t>(predicted * num_classes_ + actual)];
}

Scalar ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  Index correct = 0;
  for (Index c = 0; c < num_classes_; ++c) correct += At(c, c);
  return static_cast<Scalar>(correct) / static_cast<Scalar>(total_);
}

Scalar ConfusionMatrix::Precision(Index cls) const {
  Index predicted = 0;
  for (Index a = 0; a < num_classes_; ++a) predicted += At(cls, a);
  return predicted > 0
             ? static_cast<Scalar>(At(cls, cls)) / static_cast<Scalar>(predicted)
             : 0.0;
}

Scalar ConfusionMatrix::Recall(Index cls) const {
  Index actual = 0;
  for (Index p = 0; p < num_classes_; ++p) actual += At(p, cls);
  return actual > 0
             ? static_cast<Scalar>(At(cls, cls)) / static_cast<Scalar>(actual)
             : 0.0;
}

Scalar ConfusionMatrix::F1(Index cls) const {
  const Scalar p = Precision(cls);
  const Scalar r = Recall(cls);
  return p + r > 0 ? 2.0 * p * r / (p + r) : 0.0;
}

Scalar ConfusionMatrix::MacroF1() const {
  Scalar sum = 0.0;
  for (Index c = 0; c < num_classes_; ++c) sum += F1(c);
  return num_classes_ > 0 ? sum / static_cast<Scalar>(num_classes_) : 0.0;
}

std::string ConfusionMatrix::Report() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "accuracy %.4f  macro-F1 %.4f  (n=%lld)\n",
                Accuracy(), MacroF1(), static_cast<long long>(total_));
  std::string out = buf;
  for (Index p = 0; p < num_classes_; ++p) {
    out += "  ";
    for (Index a = 0; a < num_classes_; ++a) {
      std::snprintf(buf, sizeof(buf), "%8lld", static_cast<long long>(At(p, a)));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace diffode::train
