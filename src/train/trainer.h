#ifndef DIFFODE_TRAIN_TRAINER_H_
#define DIFFODE_TRAIN_TRAINER_H_

#include <cstdint>
#include <vector>

#include "core/sequence_model.h"
#include "data/irregular_series.h"
#include "data/splits.h"

namespace diffode::train {

// Paper-scale MSE reporting (Eq. 38): values are shown in units of 10^-2.
inline constexpr Scalar kMseReportScale = 100.0;

struct TrainOptions {
  Index epochs = 30;
  // Minibatch (gradient) size: how many sequences contribute to one
  // optimizer step (128 cls / 32 regression in the paper). Distinct from the
  // *execution batch* used by the lockstep inference engine — see
  // core/batched_model.h and docs/performance.md, "Execution batching".
  Index batch_size = 16;
  Scalar lr = 1e-3;            // paper: 1e-3
  Scalar weight_decay = 1e-3;  // paper: 1e-3
  Index patience = 20;         // paper: early stop after 20 stale epochs
  Scalar clip_norm = 5.0;
  Scalar interp_target_frac = 0.3;  // fraction of entries held out
  std::uint64_t seed = 7;
  bool verbose = false;
  // Sample caps for quick experiments; -1 means use every sample.
  Index max_train_samples = -1;
  Index max_eval_samples = -1;
};

struct FitResult {
  std::vector<Scalar> train_losses;  // per epoch
  Scalar best_val_metric = 0.0;      // accuracy, or -reported MSE
  Index epochs_run = 0;
  Scalar seconds_per_epoch = 0.0;
};

enum class RegressionTask { kInterpolation, kExtrapolation };

// Training and evaluation shard each minibatch across the shared thread pool
// (parallel::ThreadPool; size set by DIFFODE_NUM_THREADS). Per-shard
// gradients are kept in private buffers and merged through a fixed reduction
// tree, so losses and trained weights are bitwise identical at any thread
// count — see docs/performance.md.

// Cross-entropy training with validation-accuracy early stopping.
FitResult TrainClassifier(core::SequenceModel* model,
                          const data::Dataset& dataset,
                          const TrainOptions& options);

// Top-1 accuracy on a split (Eq. 37).
Scalar EvaluateAccuracy(core::SequenceModel* model,
                        const std::vector<data::IrregularSeries>& split,
                        Index max_samples = -1);

// Masked-MSE training on interpolation or extrapolation views.
FitResult TrainRegressor(core::SequenceModel* model,
                         const data::Dataset& dataset, RegressionTask task,
                         const TrainOptions& options);

// Reported MSE (x 10^-2 units, Eq. 38) on a split with deterministic views.
Scalar EvaluateMse(core::SequenceModel* model,
                   const std::vector<data::IrregularSeries>& split,
                   RegressionTask task, Scalar target_frac,
                   std::uint64_t seed, Index max_samples = -1);

}  // namespace diffode::train

#endif  // DIFFODE_TRAIN_TRAINER_H_
