#include "train/trainer.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "autograd/arena.h"
#include "autograd/ops.h"
#include "core/alloc_stats.h"
#include "core/parallel.h"
#include "nn/optimizer.h"
#include "tensor/buffer_pool.h"
#include "train/timer.h"

namespace diffode::train {
namespace {

Index CappedSize(const std::vector<data::IrregularSeries>& split, Index cap) {
  const Index n = static_cast<Index>(split.size());
  return cap < 0 ? n : std::min(cap, n);
}

// Builds the (times, values, mask) triple for the rows of `view.target`
// that hold at least one held-out entry.
struct TargetRows {
  std::vector<Scalar> times;
  Tensor values;
  Tensor mask;
  bool empty = true;
};

TargetRows CollectTargets(const data::TaskView& view) {
  const auto& t = view.target;
  std::vector<Index> rows;
  for (Index i = 0; i < t.length(); ++i) {
    bool any = false;
    for (Index j = 0; j < t.num_features(); ++j)
      if (t.mask.at(i, j) > 0) any = true;
    if (any) rows.push_back(i);
  }
  TargetRows out;
  if (rows.empty()) return out;
  out.empty = false;
  const Index m = static_cast<Index>(rows.size());
  const Index f = t.num_features();
  out.values = Tensor(Shape{m, f});
  out.mask = Tensor(Shape{m, f});
  for (Index k = 0; k < m; ++k) {
    out.times.push_back(t.times[static_cast<std::size_t>(rows[k])]);
    for (Index j = 0; j < f; ++j) {
      out.values.at(k, j) = t.values.at(rows[k], j);
      out.mask.at(k, j) = t.mask.at(rows[k], j);
    }
  }
  return out;
}

data::TaskView MakeView(const data::IrregularSeries& s, RegressionTask task,
                        Scalar target_frac, Rng& rng) {
  return task == RegressionTask::kInterpolation
             ? data::MakeInterpolationView(s, target_frac, rng)
             : data::MakeExtrapolationView(s);
}

// Runs `shard(k)` for every k in [0, b) across the thread pool, each under a
// private GradSink over `params` so concurrent Backward() calls never touch
// the shared parameter gradients. Shards are then merged pairwise in shard
// order — a fixed reduction tree, so the flushed gradients (and the returned
// per-shard losses) are bitwise identical at any thread count.
template <typename ShardFn>
std::vector<Scalar> RunShards(const std::vector<ag::Var>& params, Index b,
                              const ShardFn& shard) {
  std::vector<ag::GradSink> sinks;
  sinks.reserve(static_cast<std::size_t>(b));
  for (Index k = 0; k < b; ++k) sinks.emplace_back(params);
  std::vector<Scalar> losses(static_cast<std::size_t>(b), 0.0);
  parallel::ThreadPool::Get().Run(b, [&](Index k) {
    // Each shard builds its tape out of this thread's arena and draws tensor
    // buffers from its pool; once the shard returns, every Var it created is
    // dead (aux losses were taken, the loss Var was local), so the arena can
    // be reclaimed wholesale before the next shard reuses this thread.
    ag::TapeArena::Scope arena_scope;
    tensor::BufferPool::Scope pool_scope;
    {
      ag::GradSink::Scope scope(&sinks[static_cast<std::size_t>(k)]);
      losses[static_cast<std::size_t>(k)] = shard(k);
    }
    ag::TapeArena::ThreadLocal().Reset();
  });
  for (Index stride = 1; stride < b; stride *= 2)
    for (Index i = 0; i + stride < b; i += 2 * stride)
      sinks[static_cast<std::size_t>(i)].MergeFrom(
          sinks[static_cast<std::size_t>(i + stride)]);
  sinks[0].FlushToNodes();
  return losses;
}

// Forwards run on pool threads accumulate model aux-loss terms keyed by
// thread; anything left over from a previous (e.g. evaluation) forward on
// this thread must be dropped before a fresh tape is built.
void DropStaleAux(core::SequenceModel* model) {
  (void)model->TakeAuxiliaryLoss();
}

// Prints the allocation counters accumulated over one epoch when
// DIFFODE_ALLOC_STATS is set. pool_misses should be zero at steady state.
void ReportAllocStats(const std::string& model_name, Index epoch,
                      const core::AllocStats::Snapshot& before) {
  if (!core::AllocStats::ReportingEnabled()) return;
  const core::AllocStats::Snapshot d =
      core::AllocStats::Delta(before, core::AllocStats::Read());
  std::printf(
      "[%s] alloc epoch %lld: pool_hits=%llu depot_hits=%llu "
      "pool_misses=%llu bypass=%llu arena_nodes=%llu arena_bytes=%llu "
      "heap_nodes=%llu value_only=%llu\n",
      model_name.c_str(), static_cast<long long>(epoch),
      static_cast<unsigned long long>(d.pool_hits),
      static_cast<unsigned long long>(d.depot_hits),
      static_cast<unsigned long long>(d.pool_misses),
      static_cast<unsigned long long>(d.pool_bypass),
      static_cast<unsigned long long>(d.arena_nodes),
      static_cast<unsigned long long>(d.arena_bytes),
      static_cast<unsigned long long>(d.heap_nodes),
      static_cast<unsigned long long>(d.value_only_vars));
}

}  // namespace

Scalar EvaluateAccuracy(core::SequenceModel* model,
                        const std::vector<data::IrregularSeries>& split,
                        Index max_samples) {
  const Index n = CappedSize(split, max_samples);
  if (n == 0) return 0.0;
  std::vector<unsigned char> correct(static_cast<std::size_t>(n), 0);
  parallel::ThreadPool::Get().Run(n, [&](Index i) {
    ag::TapeArena::Scope arena_scope;
    tensor::BufferPool::Scope pool_scope;
    {
      // Evaluation never calls Backward; drop the tape entirely. Grad mode is
      // thread-local, so the scope must live inside the pool lambda.
      ag::NoGradScope no_grad;
      const auto& s = split[static_cast<std::size_t>(i)];
      DropStaleAux(model);
      ag::Var logits = model->ClassifyLogits(s);
      DropStaleAux(model);
      Index best = 0;
      for (Index c = 1; c < logits.cols(); ++c)
        if (logits.value().at(0, c) > logits.value().at(0, best)) best = c;
      correct[static_cast<std::size_t>(i)] = (best == s.label) ? 1 : 0;
    }
    ag::TapeArena::ThreadLocal().Reset();
  });
  Index hits = 0;
  for (unsigned char c : correct) hits += c;
  return static_cast<Scalar>(hits) / static_cast<Scalar>(n);
}

FitResult TrainClassifier(core::SequenceModel* model,
                          const data::Dataset& dataset,
                          const TrainOptions& options) {
  Rng rng(options.seed);
  std::vector<ag::Var> params = model->Params();
  nn::Adam optimizer(params, options.lr, options.weight_decay);
  FitResult result;
  Scalar best_val = -1.0;
  std::vector<Tensor> best_snapshot;
  Index stale = 0;
  WallTimer total;
  std::vector<Index> order(
      static_cast<std::size_t>(CappedSize(dataset.train, options.max_train_samples)));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<Index>(i);
  for (Index epoch = 0; epoch < options.epochs; ++epoch) {
    const core::AllocStats::Snapshot alloc_before = core::AllocStats::Read();
    std::shuffle(order.begin(), order.end(), rng.engine());
    Scalar epoch_loss = 0.0;
    optimizer.ZeroGrad();
    std::size_t pos = 0;
    while (pos < order.size()) {
      // Recycles the step's transients (sink buffers, Adam temporaries) so
      // steady-state batches allocate nothing from the heap.
      tensor::BufferPool::Scope step_pool;
      const Index b = std::min<Index>(options.batch_size,
                                      static_cast<Index>(order.size() - pos));
      const Index* batch = order.data() + pos;
      pos += static_cast<std::size_t>(b);
      std::vector<Scalar> losses = RunShards(params, b, [&](Index k) {
        const auto& s = dataset.train[static_cast<std::size_t>(batch[k])];
        DropStaleAux(model);
        ag::Var logits = model->ClassifyLogits(s);
        ag::Var loss = ag::SoftmaxCrossEntropy(logits, {s.label});
        ag::Var aux = model->TakeAuxiliaryLoss();
        if (aux.defined()) loss = ag::Add(loss, aux);
        loss.Backward();
        return loss.value().item();
      });
      for (Scalar l : losses) epoch_loss += l;
      optimizer.ScaleGrads(1.0 / static_cast<Scalar>(b));
      optimizer.ClipGradNorm(options.clip_norm);
      optimizer.StepAndZero();
    }
    epoch_loss /= static_cast<Scalar>(std::max<std::size_t>(order.size(), 1));
    result.train_losses.push_back(epoch_loss);
    result.epochs_run = epoch + 1;
    const Scalar val_acc =
        EvaluateAccuracy(model, dataset.val, options.max_eval_samples);
    ReportAllocStats(model->name(), epoch, alloc_before);
    if (options.verbose) {
      std::printf("[%s] epoch %lld loss %.4f val_acc %.3f\n",
                  model->name().c_str(), static_cast<long long>(epoch),
                  epoch_loss, val_acc);
    }
    if (val_acc > best_val + 1e-9) {
      best_val = val_acc;
      stale = 0;
      best_snapshot.clear();
      for (const auto& p : params) best_snapshot.push_back(p.value());
    } else if (++stale >= options.patience) {
      break;
    }
  }
  // Restore the best-validation weights (early-stopping checkpoint).
  if (!best_snapshot.empty()) {
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i].mutable_value() = best_snapshot[i];
  }
  result.best_val_metric = best_val;
  result.seconds_per_epoch =
      total.Seconds() / static_cast<Scalar>(std::max<Index>(result.epochs_run, 1));
  return result;
}

Scalar EvaluateMse(core::SequenceModel* model,
                   const std::vector<data::IrregularSeries>& split,
                   RegressionTask task, Scalar target_frac,
                   std::uint64_t seed, Index max_samples) {
  const Index n = CappedSize(split, max_samples);
  if (n == 0) return 0.0;
  // Per-sample view RNGs are seeded by index, so shards are independent and
  // the serial combine below is order-fixed regardless of thread count.
  std::vector<Scalar> sq(static_cast<std::size_t>(n), 0.0);
  std::vector<Scalar> cnt(static_cast<std::size_t>(n), 0.0);
  parallel::ThreadPool::Get().Run(n, [&](Index i) {
    ag::TapeArena::Scope arena_scope;
    tensor::BufferPool::Scope pool_scope;
    [&] {
      // Evaluation never calls Backward; drop the tape entirely.
      ag::NoGradScope no_grad;
      Rng rng(seed + static_cast<std::uint64_t>(i) * 1315423911ull);
      data::TaskView view =
          MakeView(split[static_cast<std::size_t>(i)], task, target_frac, rng);
      TargetRows targets = CollectTargets(view);
      if (targets.empty || view.context.length() < 2) return;
      DropStaleAux(model);
      std::vector<ag::Var> preds =
          model->PredictAt(view.context, targets.times);
      DropStaleAux(model);
      for (std::size_t k = 0; k < preds.size(); ++k) {
        for (Index j = 0; j < targets.values.cols(); ++j) {
          if (targets.mask.at(static_cast<Index>(k), j) > 0) {
            const Scalar diff = preds[k].value().at(0, j) -
                                targets.values.at(static_cast<Index>(k), j);
            sq[static_cast<std::size_t>(i)] += diff * diff;
            cnt[static_cast<std::size_t>(i)] += 1.0;
          }
        }
      }
    }();
    ag::TapeArena::ThreadLocal().Reset();
  });
  Scalar sq_sum = 0.0;
  Scalar count = 0.0;
  for (Index i = 0; i < n; ++i) {
    sq_sum += sq[static_cast<std::size_t>(i)];
    count += cnt[static_cast<std::size_t>(i)];
  }
  if (count == 0.0) return 0.0;
  return sq_sum / count * kMseReportScale;
}

FitResult TrainRegressor(core::SequenceModel* model,
                         const data::Dataset& dataset, RegressionTask task,
                         const TrainOptions& options) {
  Rng rng(options.seed);
  std::vector<ag::Var> params = model->Params();
  nn::Adam optimizer(params, options.lr, options.weight_decay);
  FitResult result;
  Scalar best_val = -1e300;  // -reported MSE
  std::vector<Tensor> best_snapshot;
  Index stale = 0;
  WallTimer total;
  const Index n_train = CappedSize(dataset.train, options.max_train_samples);
  std::vector<Index> order(static_cast<std::size_t>(n_train));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<Index>(i);
  struct Prepared {
    data::TaskView view;
    TargetRows targets;
  };
  for (Index epoch = 0; epoch < options.epochs; ++epoch) {
    const core::AllocStats::Snapshot alloc_before = core::AllocStats::Read();
    std::shuffle(order.begin(), order.end(), rng.engine());
    Scalar epoch_loss = 0.0;
    Index contributing = 0;
    optimizer.ZeroGrad();
    std::size_t pos = 0;
    while (pos < order.size()) {
      // Recycles the step's transients (sink buffers, Adam temporaries) so
      // steady-state batches allocate nothing from the heap.
      tensor::BufferPool::Scope step_pool;
      // Views draw from the epoch RNG, so they are built serially in sample
      // order; only the model forwards/backwards fan out.
      std::vector<Prepared> batch;
      while (pos < order.size() &&
             static_cast<Index>(batch.size()) < options.batch_size) {
        data::TaskView view =
            MakeView(dataset.train[static_cast<std::size_t>(order[pos])], task,
                     options.interp_target_frac, rng);
        ++pos;
        TargetRows targets = CollectTargets(view);
        if (targets.empty || view.context.length() < 2) continue;
        batch.push_back(Prepared{std::move(view), std::move(targets)});
      }
      if (batch.empty()) continue;
      const Index b = static_cast<Index>(batch.size());
      std::vector<Scalar> losses = RunShards(params, b, [&](Index k) {
        const Prepared& p = batch[static_cast<std::size_t>(k)];
        DropStaleAux(model);
        std::vector<ag::Var> preds =
            model->PredictAt(p.view.context, p.targets.times);
        ag::Var pred_mat = ag::ConcatRows(preds);
        ag::Var loss =
            ag::MaskedMseLoss(pred_mat, p.targets.values, p.targets.mask);
        ag::Var aux = model->TakeAuxiliaryLoss();
        if (aux.defined()) loss = ag::Add(loss, aux);
        loss.Backward();
        return loss.value().item();
      });
      for (Scalar l : losses) epoch_loss += l;
      contributing += b;
      optimizer.ScaleGrads(1.0 / static_cast<Scalar>(b));
      optimizer.ClipGradNorm(options.clip_norm);
      optimizer.StepAndZero();
    }
    epoch_loss /= static_cast<Scalar>(std::max<Index>(contributing, 1));
    result.train_losses.push_back(epoch_loss);
    result.epochs_run = epoch + 1;
    const Scalar val_mse =
        EvaluateMse(model, dataset.val, task, options.interp_target_frac,
                    options.seed + 1, options.max_eval_samples);
    ReportAllocStats(model->name(), epoch, alloc_before);
    if (options.verbose) {
      std::printf("[%s] epoch %lld loss %.5f val_mse(x1e-2) %.4f\n",
                  model->name().c_str(), static_cast<long long>(epoch),
                  epoch_loss, val_mse);
    }
    if (-val_mse > best_val + 1e-12) {
      best_val = -val_mse;
      stale = 0;
      best_snapshot.clear();
      for (const auto& p : params) best_snapshot.push_back(p.value());
    } else if (++stale >= options.patience) {
      break;
    }
  }
  // Restore the best-validation weights (early-stopping checkpoint).
  if (!best_snapshot.empty()) {
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i].mutable_value() = best_snapshot[i];
  }
  result.best_val_metric = best_val;
  result.seconds_per_epoch =
      total.Seconds() / static_cast<Scalar>(std::max<Index>(result.epochs_run, 1));
  return result;
}

}  // namespace diffode::train
