#ifndef DIFFODE_TRAIN_METRICS_H_
#define DIFFODE_TRAIN_METRICS_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace diffode::train {

// Masked regression error report: aggregate and per-channel MAE / RMSE,
// accumulated incrementally over (prediction, target, mask) rows.
class RegressionMetrics {
 public:
  explicit RegressionMetrics(Index num_channels);

  // All three are 1 x f rows (or equal-shape blocks processed row-wise).
  void Add(const Tensor& prediction, const Tensor& target,
           const Tensor& mask);

  Index count() const { return static_cast<Index>(total_count_); }
  Scalar Mae() const;
  Scalar Rmse() const;
  Scalar Mse() const { return Rmse() * Rmse(); }
  Scalar ChannelMae(Index channel) const;
  Scalar ChannelRmse(Index channel) const;

  std::string Report() const;

 private:
  Index num_channels_;
  std::vector<Scalar> abs_sum_;
  std::vector<Scalar> sq_sum_;
  std::vector<Scalar> counts_;
  Scalar total_abs_ = 0.0;
  Scalar total_sq_ = 0.0;
  Scalar total_count_ = 0.0;
};

// Binary / multiclass confusion matrix with the derived summary scores.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(Index num_classes);

  void Add(Index predicted, Index actual);

  Index count() const { return total_; }
  Scalar Accuracy() const;
  // One-vs-rest precision / recall / F1 for a class.
  Scalar Precision(Index cls) const;
  Scalar Recall(Index cls) const;
  Scalar F1(Index cls) const;
  // Unweighted mean F1 over classes (macro-F1).
  Scalar MacroF1() const;
  Index At(Index predicted, Index actual) const;

  std::string Report() const;

 private:
  Index num_classes_;
  std::vector<Index> cells_;  // predicted * num_classes + actual
  Index total_ = 0;
};

}  // namespace diffode::train

#endif  // DIFFODE_TRAIN_METRICS_H_
