#ifndef DIFFODE_TRAIN_TIMER_H_
#define DIFFODE_TRAIN_TIMER_H_

#include <chrono>

namespace diffode::train {

// Simple wall-clock timer for the efficiency experiments (Table V, Fig. 4).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace diffode::train

#endif  // DIFFODE_TRAIN_TIMER_H_
