#include "hippo/hippo.h"

#include <cmath>

#include "linalg/lu.h"

namespace diffode::hippo {

Tensor MakeLegsA(Index n) {
  Tensor a(Shape{n, n});
  for (Index i = 0; i < n; ++i) {
    for (Index k = 0; k < n; ++k) {
      if (i == k) {
        a.at(i, k) = -static_cast<Scalar>(i + 1);
      } else if (i > k) {
        a.at(i, k) = -std::sqrt(static_cast<Scalar>(2 * i + 1)) *
                     std::sqrt(static_cast<Scalar>(2 * k + 1));
      }
    }
  }
  return a;
}

Tensor MakeLegsB(Index n) {
  Tensor b(Shape{n, 1});
  for (Index i = 0; i < n; ++i)
    b.at(i, 0) = std::sqrt(static_cast<Scalar>(2 * i + 1));
  return b;
}

Discretized Bilinear(const Tensor& a, const Tensor& b, Scalar dt) {
  const Index n = a.rows();
  Tensor left = Tensor::Eye(n);   // I - dt/2 A
  Tensor right = Tensor::Eye(n);  // I + dt/2 A
  left -= a * (dt / 2.0);
  right += a * (dt / 2.0);
  Discretized d;
  d.a_bar = linalg::Solve(left, right);
  d.b_bar = linalg::Solve(left, b * dt);
  return d;
}

Discretized Euler(const Tensor& a, const Tensor& b, Scalar dt) {
  Discretized d;
  d.a_bar = Tensor::Eye(a.rows()) + a * dt;
  d.b_bar = b * dt;
  return d;
}

LegsProjector::LegsProjector(Index order)
    : a_(MakeLegsA(order)), b_(MakeLegsB(order)), c_(Shape{order, 1}) {}

void LegsProjector::Update(Scalar u) {
  ++count_;
  // Time-scaled LegS: dc/dt = (1/t)(A c + B u); one Euler step per sample
  // with dt = 1 gives c += (A c + B u) / k.
  const Scalar inv_k = 1.0 / static_cast<Scalar>(count_);
  Tensor rhs = a_.MatMul(c_) + b_ * u;
  c_ += rhs * inv_k;
}

void LegsProjector::Reset() {
  c_ = Tensor(c_.shape());
  count_ = 0;
}

}  // namespace diffode::hippo
