#ifndef DIFFODE_HIPPO_HIPPO_H_
#define DIFFODE_HIPPO_HIPPO_H_

#include "tensor/tensor.h"

namespace diffode::hippo {

// HiPPO-LegS operator (Gu et al., NeurIPS 2020): the optimal-polynomial-
// projection state-space pair used by the paper's output head (Eq. 36), by
// the HiPPO-RNN / HiPPO-obs baselines, and by the S4-lite baseline.
//
// The continuous dynamics are dc/dt = A c + B u with the *stable* sign
// convention (A has negative spectrum), so c carries a Legendre-coefficient
// summary of the input history u.

// n x n LegS state matrix: A[i][i] = -(i+1);
// A[i][k] = -sqrt(2i+1) sqrt(2k+1) for i > k; 0 above the diagonal.
Tensor MakeLegsA(Index n);

// n x 1 LegS input matrix: B[i] = sqrt(2i+1).
Tensor MakeLegsB(Index n);

// Zero-order-hold-free discretizations of dc/dt = A c + B u:
// c_{k+1} = a_bar c_k + b_bar u_k for step dt.
struct Discretized {
  Tensor a_bar;  // n x n
  Tensor b_bar;  // n x 1
};

// Bilinear (Tustin) transform: a_bar = (I - dt/2 A)^{-1} (I + dt/2 A),
// b_bar = (I - dt/2 A)^{-1} dt B.
Discretized Bilinear(const Tensor& a, const Tensor& b, Scalar dt);

// Forward-Euler discretization (used where the paper's baselines do).
Discretized Euler(const Tensor& a, const Tensor& b, Scalar dt);

// Online LegS projection of a scalar stream: maintains coefficients c over
// successive samples with the time-scaled LegS update
// c_k = (I - A/k) ^{-1}-free Euler form c_{k-1} + (1/k)(A c_{k-1} + B u_k).
class LegsProjector {
 public:
  explicit LegsProjector(Index order);

  // Consumes the next sample; k is the 1-based sample count.
  void Update(Scalar u);
  const Tensor& coeffs() const { return c_; }
  void Reset();

 private:
  Tensor a_;
  Tensor b_;
  Tensor c_;  // n x 1
  Index count_ = 0;
};

}  // namespace diffode::hippo

#endif  // DIFFODE_HIPPO_HIPPO_H_
