// Portable scalar backend for the kernel layer. These are the PR-1 blocked
// loops, unchanged: cache-tiled GEMM panels with a 4-row register kernel,
// plus straightforward range ops. Kept free of target-specific flags so the
// scalar ISA is buildable and bit-stable everywhere; the AVX2 backend in
// kernels_avx2.cc is the one allowed to assume vector hardware.

#include <algorithm>
#include <cmath>

#include "tensor/kernels_isa.h"

namespace diffode::kernels::detail {
namespace {

// Cache tile edge for the GEMM family: a 64x64 double tile is 32 KiB, so an
// A-panel tile plus the B tile stay resident in L1/L2 while a row panel of C
// streams through.
constexpr Index kTile = 64;

// One row panel [i0, i1) of C = A * B. For each (k-tile, j-tile) the inner
// kernel advances four rows of C at once, so every loaded b value feeds four
// multiply-adds. Accumulation into a given c[i][j] happens in strictly
// increasing p order regardless of tiling, which keeps results identical for
// any row partition.
void GemmPanel(Index i0, Index i1, Index k, Index n, const Scalar* a,
               const Scalar* b, Scalar* c) {
  std::fill(c + i0 * n, c + i1 * n, 0.0);
  for (Index p0 = 0; p0 < k; p0 += kTile) {
    const Index p1 = std::min(k, p0 + kTile);
    for (Index j0 = 0; j0 < n; j0 += kTile) {
      const Index j1 = std::min(n, j0 + kTile);
      Index i = i0;
      for (; i + 4 <= i1; i += 4) {
        Scalar* c0 = c + (i + 0) * n;
        Scalar* c1 = c + (i + 1) * n;
        Scalar* c2 = c + (i + 2) * n;
        Scalar* c3 = c + (i + 3) * n;
        for (Index p = p0; p < p1; ++p) {
          const Scalar a0 = a[(i + 0) * k + p];
          const Scalar a1 = a[(i + 1) * k + p];
          const Scalar a2 = a[(i + 2) * k + p];
          const Scalar a3 = a[(i + 3) * k + p];
          const Scalar* bp = b + p * n;
          for (Index j = j0; j < j1; ++j) {
            const Scalar bj = bp[j];
            c0[j] += a0 * bj;
            c1[j] += a1 * bj;
            c2[j] += a2 * bj;
            c3[j] += a3 * bj;
          }
        }
      }
      for (; i < i1; ++i) {
        Scalar* ci = c + i * n;
        for (Index p = p0; p < p1; ++p) {
          const Scalar aip = a[i * k + p];
          const Scalar* bp = b + p * n;
          for (Index j = j0; j < j1; ++j) ci[j] += aip * bp[j];
        }
      }
    }
  }
}

// One row panel of C = A^T * B with A stored (k x m): identical structure to
// GemmPanel but A is read down its columns (stride m).
void GemmTNPanel(Index i0, Index i1, Index m, Index k, Index n,
                 const Scalar* a, const Scalar* b, Scalar* c) {
  std::fill(c + i0 * n, c + i1 * n, 0.0);
  for (Index p0 = 0; p0 < k; p0 += kTile) {
    const Index p1 = std::min(k, p0 + kTile);
    for (Index j0 = 0; j0 < n; j0 += kTile) {
      const Index j1 = std::min(n, j0 + kTile);
      Index i = i0;
      for (; i + 4 <= i1; i += 4) {
        Scalar* c0 = c + (i + 0) * n;
        Scalar* c1 = c + (i + 1) * n;
        Scalar* c2 = c + (i + 2) * n;
        Scalar* c3 = c + (i + 3) * n;
        for (Index p = p0; p < p1; ++p) {
          const Scalar* ap = a + p * m + i;
          const Scalar a0 = ap[0];
          const Scalar a1 = ap[1];
          const Scalar a2 = ap[2];
          const Scalar a3 = ap[3];
          const Scalar* bp = b + p * n;
          for (Index j = j0; j < j1; ++j) {
            const Scalar bj = bp[j];
            c0[j] += a0 * bj;
            c1[j] += a1 * bj;
            c2[j] += a2 * bj;
            c3[j] += a3 * bj;
          }
        }
      }
      for (; i < i1; ++i) {
        Scalar* ci = c + i * n;
        for (Index p = p0; p < p1; ++p) {
          const Scalar aip = a[p * m + i];
          const Scalar* bp = b + p * n;
          for (Index j = j0; j < j1; ++j) ci[j] += aip * bp[j];
        }
      }
    }
  }
}

// One row panel of C = A * B^T with B stored (n x k): each output is a dot
// product of two contiguous rows, unrolled into four partial accumulators.
// The combine order of the partials is fixed by the code, so results are
// reproducible (though deliberately not identical to a 1-accumulator loop).
void GemmNTPanel(Index i0, Index i1, Index k, Index n, const Scalar* a,
                 const Scalar* b, Scalar* c) {
  for (Index i = i0; i < i1; ++i) {
    const Scalar* ai = a + i * k;
    Scalar* ci = c + i * n;
    for (Index j = 0; j < n; ++j) {
      const Scalar* bj = b + j * k;
      Scalar s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      Index p = 0;
      for (; p + 4 <= k; p += 4) {
        s0 += ai[p + 0] * bj[p + 0];
        s1 += ai[p + 1] * bj[p + 1];
        s2 += ai[p + 2] * bj[p + 2];
        s3 += ai[p + 3] * bj[p + 3];
      }
      Scalar s = (s0 + s1) + (s2 + s3);
      for (; p < k; ++p) s += ai[p] * bj[p];
      ci[j] = s;
    }
  }
}

void AxpyRange(Index n, Scalar alpha, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void AddScaledRange(Index n, const Scalar* x, Scalar alpha, const Scalar* y,
                    Scalar* out) {
  for (Index i = 0; i < n; ++i) out[i] = x[i] + alpha * y[i];
}

void ScaleRange(Index n, Scalar alpha, Scalar* x) {
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

Scalar SumRange(Index n, const Scalar* x) {
  Scalar s = 0.0;
  for (Index i = 0; i < n; ++i) s += x[i];
  return s;
}

Scalar DotRange(Index n, const Scalar* x, const Scalar* y) {
  Scalar s = 0.0;
  for (Index i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

// The scalar transcendental maps call libm directly, so the scalar ISA
// reproduces the pre-SIMD behavior bit for bit.
void TanhRange(Index n, const Scalar* x, Scalar* out) {
  for (Index i = 0; i < n; ++i) out[i] = std::tanh(x[i]);
}

void SigmoidRange(Index n, const Scalar* x, Scalar* out) {
  for (Index i = 0; i < n; ++i) out[i] = 1.0 / (1.0 + std::exp(-x[i]));
}

void ExpRange(Index n, const Scalar* x, Scalar* out) {
  for (Index i = 0; i < n; ++i) out[i] = std::exp(x[i]);
}

// Batched-row movement. Pure copies (no arithmetic), so every backend is
// bitwise identical by construction; the AVX2 versions only widen the moves.
void MaskedRowUpdateRows(Index rows, Index cols, const unsigned char* mask,
                         const Scalar* src, Scalar* dst) {
  for (Index r = 0; r < rows; ++r) {
    if (!mask[r]) continue;
    const Scalar* s = src + r * cols;
    Scalar* d = dst + r * cols;
    for (Index j = 0; j < cols; ++j) d[j] = s[j];
  }
}

void SelectRowsRange(Index count, Index cols, const Index* rows,
                     const Scalar* src, Scalar* dst) {
  for (Index i = 0; i < count; ++i) {
    const Scalar* s = src + rows[i] * cols;
    Scalar* d = dst + i * cols;
    for (Index j = 0; j < cols; ++j) d[j] = s[j];
  }
}

void ScatterRowsRange(Index count, Index cols, const Index* rows,
                      const Scalar* src, Scalar* dst) {
  for (Index i = 0; i < count; ++i) {
    const Scalar* s = src + i * cols;
    Scalar* d = dst + rows[i] * cols;
    for (Index j = 0; j < cols; ++j) d[j] = s[j];
  }
}

}  // namespace

constinit const KernelTable kScalarTable = {
    GemmPanel,      GemmTNPanel, GemmNTPanel, AxpyRange, AddScaledRange,
    ScaleRange,     SumRange,    DotRange,    TanhRange, SigmoidRange,
    ExpRange,       MaskedRowUpdateRows,      SelectRowsRange,
    ScatterRowsRange,
};

}  // namespace diffode::kernels::detail
