// Portable scalar backend for the kernel layer. These are the PR-1 blocked
// loops, templated on the element type but otherwise unchanged: cache-tiled
// GEMM panels with a 4-row register kernel, plus straightforward range ops.
// Kept free of target-specific flags so the scalar ISA is buildable and
// bit-stable everywhere; the AVX2/AVX-512 backends in kernels_avx2.cc /
// kernels_avx512.cc are the ones allowed to assume vector hardware.

#include <algorithm>
#include <cmath>

#include "tensor/kernels_isa.h"

namespace diffode::kernels::detail {
namespace {

// Cache tile edge for the GEMM family: a 64x64 double tile is 32 KiB, so an
// A-panel tile plus the B tile stay resident in L1/L2 while a row panel of C
// streams through (a float tile is half that; the same edge works for both).
constexpr Index kTile = 64;

// One row panel [i0, i1) of C = A * B. For each (k-tile, j-tile) the inner
// kernel advances four rows of C at once, so every loaded b value feeds four
// multiply-adds. Accumulation into a given c[i][j] happens in strictly
// increasing p order regardless of tiling, which keeps results identical for
// any row partition.
template <typename T>
void GemmPanel(Index i0, Index i1, Index k, Index n, const T* a, const T* b,
               T* c) {
  std::fill(c + i0 * n, c + i1 * n, T(0));
  for (Index p0 = 0; p0 < k; p0 += kTile) {
    const Index p1 = std::min(k, p0 + kTile);
    for (Index j0 = 0; j0 < n; j0 += kTile) {
      const Index j1 = std::min(n, j0 + kTile);
      Index i = i0;
      for (; i + 4 <= i1; i += 4) {
        T* c0 = c + (i + 0) * n;
        T* c1 = c + (i + 1) * n;
        T* c2 = c + (i + 2) * n;
        T* c3 = c + (i + 3) * n;
        for (Index p = p0; p < p1; ++p) {
          const T a0 = a[(i + 0) * k + p];
          const T a1 = a[(i + 1) * k + p];
          const T a2 = a[(i + 2) * k + p];
          const T a3 = a[(i + 3) * k + p];
          const T* bp = b + p * n;
          for (Index j = j0; j < j1; ++j) {
            const T bj = bp[j];
            c0[j] += a0 * bj;
            c1[j] += a1 * bj;
            c2[j] += a2 * bj;
            c3[j] += a3 * bj;
          }
        }
      }
      for (; i < i1; ++i) {
        T* ci = c + i * n;
        for (Index p = p0; p < p1; ++p) {
          const T aip = a[i * k + p];
          const T* bp = b + p * n;
          for (Index j = j0; j < j1; ++j) ci[j] += aip * bp[j];
        }
      }
    }
  }
}

// One row panel of C = A^T * B with A stored (k x m): identical structure to
// GemmPanel but A is read down its columns (stride m).
template <typename T>
void GemmTNPanel(Index i0, Index i1, Index m, Index k, Index n, const T* a,
                 const T* b, T* c) {
  std::fill(c + i0 * n, c + i1 * n, T(0));
  for (Index p0 = 0; p0 < k; p0 += kTile) {
    const Index p1 = std::min(k, p0 + kTile);
    for (Index j0 = 0; j0 < n; j0 += kTile) {
      const Index j1 = std::min(n, j0 + kTile);
      Index i = i0;
      for (; i + 4 <= i1; i += 4) {
        T* c0 = c + (i + 0) * n;
        T* c1 = c + (i + 1) * n;
        T* c2 = c + (i + 2) * n;
        T* c3 = c + (i + 3) * n;
        for (Index p = p0; p < p1; ++p) {
          const T* ap = a + p * m + i;
          const T a0 = ap[0];
          const T a1 = ap[1];
          const T a2 = ap[2];
          const T a3 = ap[3];
          const T* bp = b + p * n;
          for (Index j = j0; j < j1; ++j) {
            const T bj = bp[j];
            c0[j] += a0 * bj;
            c1[j] += a1 * bj;
            c2[j] += a2 * bj;
            c3[j] += a3 * bj;
          }
        }
      }
      for (; i < i1; ++i) {
        T* ci = c + i * n;
        for (Index p = p0; p < p1; ++p) {
          const T aip = a[p * m + i];
          const T* bp = b + p * n;
          for (Index j = j0; j < j1; ++j) ci[j] += aip * bp[j];
        }
      }
    }
  }
}

// One row panel of C = A * B^T with B stored (n x k): each output is a dot
// product of two contiguous rows, unrolled into four partial accumulators.
// The combine order of the partials is fixed by the code, so results are
// reproducible (though deliberately not identical to a 1-accumulator loop).
template <typename T>
void GemmNTPanel(Index i0, Index i1, Index k, Index n, const T* a, const T* b,
                 T* c) {
  for (Index i = i0; i < i1; ++i) {
    const T* ai = a + i * k;
    T* ci = c + i * n;
    for (Index j = 0; j < n; ++j) {
      const T* bj = b + j * k;
      T s0 = T(0), s1 = T(0), s2 = T(0), s3 = T(0);
      Index p = 0;
      for (; p + 4 <= k; p += 4) {
        s0 += ai[p + 0] * bj[p + 0];
        s1 += ai[p + 1] * bj[p + 1];
        s2 += ai[p + 2] * bj[p + 2];
        s3 += ai[p + 3] * bj[p + 3];
      }
      T s = (s0 + s1) + (s2 + s3);
      for (; p < k; ++p) s += ai[p] * bj[p];
      ci[j] = s;
    }
  }
}

template <typename T>
void AxpyRange(Index n, T alpha, const T* x, T* y) {
  for (Index i = 0; i < n; ++i) y[i] += alpha * x[i];
}

template <typename T>
void AddScaledRange(Index n, const T* x, T alpha, const T* y, T* out) {
  for (Index i = 0; i < n; ++i) out[i] = x[i] + alpha * y[i];
}

template <typename T>
void ScaleRange(Index n, T alpha, T* x) {
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

template <typename T>
T SumRange(Index n, const T* x) {
  T s = T(0);
  for (Index i = 0; i < n; ++i) s += x[i];
  return s;
}

template <typename T>
T DotRange(Index n, const T* x, const T* y) {
  T s = T(0);
  for (Index i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

// The scalar transcendental maps call libm directly (the float instantiation
// resolves to the float overloads), so the scalar ISA reproduces the
// pre-SIMD behavior bit for bit at each dtype.
template <typename T>
void TanhRange(Index n, const T* x, T* out) {
  for (Index i = 0; i < n; ++i) out[i] = std::tanh(x[i]);
}

template <typename T>
void SigmoidRange(Index n, const T* x, T* out) {
  for (Index i = 0; i < n; ++i) out[i] = T(1) / (T(1) + std::exp(-x[i]));
}

template <typename T>
void ExpRange(Index n, const T* x, T* out) {
  for (Index i = 0; i < n; ++i) out[i] = std::exp(x[i]);
}

// Batched-row movement. Pure copies (no arithmetic), so every backend is
// bitwise identical by construction; the SIMD versions only widen the moves.
template <typename T>
void MaskedRowUpdateRows(Index rows, Index cols, const unsigned char* mask,
                         const T* src, T* dst) {
  for (Index r = 0; r < rows; ++r) {
    if (!mask[r]) continue;
    const T* s = src + r * cols;
    T* d = dst + r * cols;
    for (Index j = 0; j < cols; ++j) d[j] = s[j];
  }
}

template <typename T>
void SelectRowsRange(Index count, Index cols, const Index* rows, const T* src,
                     T* dst) {
  for (Index i = 0; i < count; ++i) {
    const T* s = src + rows[i] * cols;
    T* d = dst + i * cols;
    for (Index j = 0; j < cols; ++j) d[j] = s[j];
  }
}

template <typename T>
void ScatterRowsRange(Index count, Index cols, const Index* rows, const T* src,
                      T* dst) {
  for (Index i = 0; i < count; ++i) {
    const T* s = src + i * cols;
    T* d = dst + rows[i] * cols;
    for (Index j = 0; j < cols; ++j) d[j] = s[j];
  }
}

template <typename T>
constexpr KernelTable<T> MakeScalarTable() {
  return KernelTable<T>{
      GemmPanel<T>,      GemmTNPanel<T>, GemmNTPanel<T>,
      AxpyRange<T>,      AddScaledRange<T>,
      ScaleRange<T>,     SumRange<T>,    DotRange<T>,
      TanhRange<T>,      SigmoidRange<T>,
      ExpRange<T>,       MaskedRowUpdateRows<T>,
      SelectRowsRange<T>,
      ScatterRowsRange<T>,
  };
}

}  // namespace

constinit const KernelTable<double>  // dtype:ok — per-dtype table
    kScalarTableF64 = MakeScalarTable<double>();
constinit const KernelTable<float> kScalarTableF32 = MakeScalarTable<float>();

}  // namespace diffode::kernels::detail
