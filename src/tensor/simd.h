#ifndef DIFFODE_TENSOR_SIMD_H_
#define DIFFODE_TENSOR_SIMD_H_

#include <atomic>

namespace diffode::simd {

// Instruction-set backends for the kernel layer (tensor/kernels.h). The
// scalar backend is portable C++ and always present; kAvx2 is the AVX2+FMA
// microkernel backend in kernels_avx2.cc and kAvx512 the AVX-512 (F+DQ)
// backend in kernels_avx512.cc, both compiled only on x86-64.
//
// Dispatch is resolved once at startup, overridable with
// DIFFODE_KERNEL_ISA=scalar|avx2|avx512. Auto-resolution deliberately caps
// at kAvx2 even on AVX-512 hardware: the default numeric path stays
// bit-stable across machine generations (and avoids 512-bit frequency
// licensing on older server parts); the AVX-512 tier is opt-in via the
// environment override or SetActiveIsa. The determinism contract is per
// ISA — for a fixed input and a fixed ISA every kernel is bitwise
// reproducible at any thread count; switching ISA may move results by
// rounding-level amounts (different accumulation widths / FMA).
enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

// Human-readable backend name ("scalar", "avx2", "avx512").
const char* IsaName(Isa isa);

// True if this binary and this CPU can run `isa` (CPUID feature detection).
bool IsaSupported(Isa isa);

// Best ISA both this binary and this CPU support. May exceed the startup
// default (see above): BestSupportedIsa() reports hardware truth, the
// resolver caps auto-dispatch at kAvx2.
Isa BestSupportedIsa();

namespace detail {
// Current ISA as an int, or -1 before first resolution. Constant-initialized
// so the fast path of ActiveIsa() is a single relaxed load with no
// function-local-static guard; kernel dispatch reads it on every entry.
extern std::atomic<int> g_active_isa;
// Resolves the startup ISA (CPU detection + DIFFODE_KERNEL_ISA override) and
// publishes it, unless an explicit SetActiveIsa already won the race.
Isa ResolveActiveIsaSlow();
}  // namespace detail

// The ISA the kernel layer is currently dispatching to. Resolved once at
// startup from CPU detection (capped at kAvx2) and the DIFFODE_KERNEL_ISA
// environment override; an override naming an unsupported ISA falls back
// with a warning on stderr. Inline: this sits on every kernel dispatch.
inline Isa ActiveIsa() {
  const int v = detail::g_active_isa.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Isa>(v);
  return detail::ResolveActiveIsaSlow();
}

// Test/bench hook: redirects kernel dispatch to `isa`. Returns false (and
// changes nothing) if the ISA is not supported on this CPU/build. Not safe
// to call while kernels are in flight on other threads.
bool SetActiveIsa(Isa isa);

}  // namespace diffode::simd

#endif  // DIFFODE_TENSOR_SIMD_H_
