#include "tensor/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace diffode::simd {
namespace {

bool CpuHasAvx2Fma() {
#if DIFFODE_HAS_AVX2_BUILD && (defined(__x86_64__) || defined(_M_X64))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if DIFFODE_HAS_AVX512_BUILD && (defined(__x86_64__) || defined(_M_X64))
  // The backend is compiled with -mavx512f -mavx512dq; both features must be
  // present (DQ covers the 64-bit integer vector ops the f64 exp uses).
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

// Startup resolution: DIFFODE_KERNEL_ISA if set and usable, else the best
// the hardware offers CAPPED AT AVX2 — the AVX-512 tier is opt-in (see
// simd.h). Warnings go to stderr so a bad override is visible but harmless.
Isa ResolveStartupIsa() {
  const Isa auto_isa = IsaSupported(Isa::kAvx2) ? Isa::kAvx2 : Isa::kScalar;
  const char* env = std::getenv("DIFFODE_KERNEL_ISA");
  if (env == nullptr || env[0] == '\0') return auto_isa;
  if (std::strcmp(env, "scalar") == 0) return Isa::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    if (IsaSupported(Isa::kAvx2)) return Isa::kAvx2;
    std::fprintf(stderr,
                 "[DIFFODE] DIFFODE_KERNEL_ISA=avx2 requested but this "
                 "CPU/build has no AVX2+FMA support; using scalar kernels\n");
    return Isa::kScalar;
  }
  if (std::strcmp(env, "avx512") == 0) {
    if (IsaSupported(Isa::kAvx512)) return Isa::kAvx512;
    std::fprintf(stderr,
                 "[DIFFODE] DIFFODE_KERNEL_ISA=avx512 requested but this "
                 "CPU/build has no AVX-512 F+DQ support; using %s kernels\n",
                 IsaName(auto_isa));
    return auto_isa;
  }
  std::fprintf(stderr,
               "[DIFFODE] unknown DIFFODE_KERNEL_ISA value \"%s\" "
               "(expected \"scalar\", \"avx2\", or \"avx512\"); using %s\n",
               env, IsaName(auto_isa));
  return auto_isa;
}

}  // namespace

namespace detail {

std::atomic<int> g_active_isa{-1};

Isa ResolveActiveIsaSlow() {
  // Publish the startup ISA with a CAS from the unresolved sentinel: if an
  // explicit SetActiveIsa landed between the caller's fast-path load and
  // this call, the override wins and startup resolution is discarded. The
  // local static keeps the stderr warnings to one occurrence.
  static const Isa startup = ResolveStartupIsa();
  int expected = -1;
  g_active_isa.compare_exchange_strong(expected, static_cast<int>(startup),
                                       std::memory_order_relaxed);
  return static_cast<Isa>(g_active_isa.load(std::memory_order_relaxed));
}

}  // namespace detail

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool IsaSupported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2: {
      static const bool has = CpuHasAvx2Fma();
      return has;
    }
    case Isa::kAvx512: {
      static const bool has = CpuHasAvx512();
      return has;
    }
  }
  return false;
}

Isa BestSupportedIsa() {
  static const Isa best = IsaSupported(Isa::kAvx512) ? Isa::kAvx512
                          : IsaSupported(Isa::kAvx2) ? Isa::kAvx2
                                                     : Isa::kScalar;
  return best;
}

bool SetActiveIsa(Isa isa) {
  if (!IsaSupported(isa)) return false;
  detail::g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return true;
}

}  // namespace diffode::simd
