#include "tensor/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace diffode::simd {
namespace {

bool CpuHasAvx2Fma() {
#if DIFFODE_HAS_AVX2_BUILD && (defined(__x86_64__) || defined(_M_X64))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// Startup resolution: DIFFODE_KERNEL_ISA if set and usable, else the best
// the hardware offers. Warnings go to stderr so a bad override is visible
// but harmless.
Isa ResolveStartupIsa() {
  const Isa best = BestSupportedIsa();
  const char* env = std::getenv("DIFFODE_KERNEL_ISA");
  if (env == nullptr || env[0] == '\0') return best;
  if (std::strcmp(env, "scalar") == 0) return Isa::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    if (best == Isa::kAvx2) return Isa::kAvx2;
    std::fprintf(stderr,
                 "[DIFFODE] DIFFODE_KERNEL_ISA=avx2 requested but this "
                 "CPU/build has no AVX2+FMA support; using scalar kernels\n");
    return Isa::kScalar;
  }
  std::fprintf(stderr,
               "[DIFFODE] unknown DIFFODE_KERNEL_ISA value \"%s\" "
               "(expected \"scalar\" or \"avx2\"); using %s\n",
               env, IsaName(best));
  return best;
}

}  // namespace

namespace detail {

std::atomic<int> g_active_isa{-1};

Isa ResolveActiveIsaSlow() {
  // Publish the startup ISA with a CAS from the unresolved sentinel: if an
  // explicit SetActiveIsa landed between the caller's fast-path load and
  // this call, the override wins and startup resolution is discarded. The
  // local static keeps the stderr warnings to one occurrence.
  static const Isa startup = ResolveStartupIsa();
  int expected = -1;
  g_active_isa.compare_exchange_strong(expected, static_cast<int>(startup),
                                       std::memory_order_relaxed);
  return static_cast<Isa>(g_active_isa.load(std::memory_order_relaxed));
}

}  // namespace detail

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Isa BestSupportedIsa() {
  static const Isa best = CpuHasAvx2Fma() ? Isa::kAvx2 : Isa::kScalar;
  return best;
}

bool SetActiveIsa(Isa isa) {
  if (isa == Isa::kAvx2 && BestSupportedIsa() != Isa::kAvx2) return false;
  detail::g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return true;
}

}  // namespace diffode::simd
