#include "tensor/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace diffode::simd {
namespace {

bool CpuHasAvx2Fma() {
#if DIFFODE_HAS_AVX2_BUILD && (defined(__x86_64__) || defined(_M_X64))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// Startup resolution: DIFFODE_KERNEL_ISA if set and usable, else the best
// the hardware offers. Runs exactly once (from the ActiveIsaState local
// static); warnings go to stderr so a bad override is visible but harmless.
Isa ResolveStartupIsa() {
  const Isa best = BestSupportedIsa();
  const char* env = std::getenv("DIFFODE_KERNEL_ISA");
  if (env == nullptr || env[0] == '\0') return best;
  if (std::strcmp(env, "scalar") == 0) return Isa::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    if (best == Isa::kAvx2) return Isa::kAvx2;
    std::fprintf(stderr,
                 "[DIFFODE] DIFFODE_KERNEL_ISA=avx2 requested but this "
                 "CPU/build has no AVX2+FMA support; using scalar kernels\n");
    return Isa::kScalar;
  }
  std::fprintf(stderr,
               "[DIFFODE] unknown DIFFODE_KERNEL_ISA value \"%s\" "
               "(expected \"scalar\" or \"avx2\"); using %s\n",
               env, IsaName(best));
  return best;
}

std::atomic<Isa>& ActiveIsaState() {
  static std::atomic<Isa> state{ResolveStartupIsa()};
  return state;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Isa BestSupportedIsa() {
  static const Isa best = CpuHasAvx2Fma() ? Isa::kAvx2 : Isa::kScalar;
  return best;
}

Isa ActiveIsa() { return ActiveIsaState().load(std::memory_order_relaxed); }

bool SetActiveIsa(Isa isa) {
  if (isa == Isa::kAvx2 && BestSupportedIsa() != Isa::kAvx2) return false;
  ActiveIsaState().store(isa, std::memory_order_relaxed);
  return true;
}

}  // namespace diffode::simd
