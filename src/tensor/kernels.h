#ifndef DIFFODE_TENSOR_KERNELS_H_
#define DIFFODE_TENSOR_KERNELS_H_

#include <cmath>
#include <type_traits>

#include "core/parallel.h"
#include "tensor/shape.h"

namespace diffode::kernels {

// Named computational kernels behind Tensor and the autograd ops. All heavy
// loops in the repository funnel through these so that cache blocking,
// unrolling, threading, and SIMD live in exactly one place. Raw-pointer
// interfaces keep them usable from both Tensor methods and backward closures
// without materializing intermediate tensors (notably: no explicit
// transposes).
//
// Dtype: every kernel is a function template over the element type T
// (double for training/autograd, float for the opt-in serving tier); T is
// deduced from the pointer arguments, so call sites are unchanged from the
// pre-template API. Definitions live in kernels.cc with explicit
// instantiations for double and float.
//
// ISA dispatch: every kernel routes through one of three backends — portable
// scalar C++ (kernels_scalar.cc), AVX2+FMA microkernels (kernels_avx2.cc),
// or AVX-512 microkernels (kernels_avx512.cc) — selected once at startup by
// CPUID feature detection, overridable with
// DIFFODE_KERNEL_ISA=scalar|avx2|avx512 (see tensor/simd.h). Auto-dispatch
// caps at AVX2; the AVX-512 tier is opt-in via the override or SetActiveIsa.
//
// Determinism contract (per ISA, per dtype): for a fixed input, a fixed ISA,
// and a fixed dtype, every kernel produces bitwise identical output at any
// thread count. Parallel kernels partition work by fixed chunk grids (see
// parallel::ParallelFor) with disjoint writes, and reductions combine
// fixed-grid partials in chunk order. Switching ISA may move results by
// rounding-level amounts (FMA, SIMD-lane accumulation); the equivalence
// between backends is ulp-level, not bitwise, and is pinned by
// tests/kernels_isa_test.cc for both dtypes.

// Elementwise work (maps, zips, vector ops) below this many elements stays
// on the calling thread. Purely a parallelization threshold: elementwise
// results are per-element functions of the input, so this value affects
// speed, never bits, and may be retuned freely.
inline constexpr Index kElementwiseGrain = 16384;

// Reductions get their own, smaller grain: a reduction chunk does far more
// work per output byte than a map chunk, so it pays to fan out earlier.
// Unlike kElementwiseGrain this is NOT a tuning knob — it is the fixed
// partial grid of the determinism contract. Sum/Dot evaluate one partial
// per 4096-element chunk and combine the partials in chunk order; changing
// the grid changes the combination tree and therefore the bit pattern of
// every reduction result, silently invalidating any stored golden values.
// It must stay 4096 (for every dtype).
inline constexpr Index kReductionGrain = 4096;

// C (m x n) = A (m x k) * B (k x n). All row-major, C is overwritten.
template <typename T>
void Gemm(Index m, Index k, Index n, const T* a, const T* b, T* c);

// C (m x n) = A^T * B where A is stored (k x m) row-major — the backward
// pass "A^T G" without materializing the transpose.
template <typename T>
void GemmTN(Index m, Index k, Index n, const T* a, const T* b, T* c);

// C (m x n) = A * B^T where A is (m x k) and B is stored (n x k) row-major —
// the backward pass "G B^T" without materializing the transpose.
template <typename T>
void GemmNT(Index m, Index k, Index n, const T* a, const T* b, T* c);

// y += alpha * x.
template <typename T>
void Axpy(Index n, T alpha, const T* x, T* y);

// out = x + alpha * y (fused; out may alias x).
template <typename T>
void AddScaled(Index n, const T* x, T alpha, const T* y, T* out);

// x *= alpha.
template <typename T>
void Scale(Index n, T alpha, T* x);

// Deterministic blocked reductions (fixed kReductionGrain partial grid).
template <typename T>
T Sum(Index n, const T* x);
template <typename T>
T Dot(Index n, const T* x, const T* y);

// ISA-dispatched transcendental maps (out may alias x). These are the hot
// functions of the GRU encoder, MLP heads, and softmax/Hoyer pipeline; the
// AVX2 backend evaluates them 4 double (8 float) lanes at a time.
template <typename T>
void MapTanh(Index n, const T* x, T* out);
template <typename T>
void MapSigmoid(Index n, const T* x, T* out);
template <typename T>
void MapExp(Index n, const T* x, T* out);

// Batched-row movement for the lockstep execution engine (docs/performance.md
// "Execution batching"). All three are pure row copies — no arithmetic — so
// every backend produces bitwise-identical results; the SIMD backends only
// widen the moves. Serial: a serving batch is at most a few hundred rows.
//
// dst[r] = src[r] for every row whose mask byte is non-zero (a masked jump
// costs a row copy, not a branch per element); masked-off rows untouched.
template <typename T>
void MaskedRowUpdate(Index rows, Index cols, const unsigned char* mask,
                     const T* src, T* dst);
// dst[i] = src[rows[i]]: gather `count` rows of a (· x cols) matrix into a
// packed (count x cols) block.
template <typename T>
void SelectRows(Index count, Index cols, const Index* rows, const T* src,
                T* dst);
// dst[rows[i]] = src[i]: scatter a packed (count x cols) block back.
template <typename T>
void ScatterRows(Index count, Index cols, const Index* rows, const T* src,
                 T* dst);

namespace ops {

// Named elementwise functors. kernels::Map recognizes these types at
// compile time and routes them to the ISA-dispatched vector maps above;
// arbitrary functors/lambdas take the generic inlined scalar loop. Call
// sites simply write kernels::Map(n, x, out, ops::Tanh{}).
struct Tanh {
  template <typename T>
  T operator()(T x) const {
    return std::tanh(x);
  }
};
struct Sigmoid {
  template <typename T>
  T operator()(T x) const {
    return T(1) / (T(1) + std::exp(-x));
  }
};
struct Exp {
  template <typename T>
  T operator()(T x) const {
    return std::exp(x);
  }
};

}  // namespace ops

// out[i] = fn(x[i]). Templated functor dispatch: the loop body inlines the
// functor, unlike Tensor::Map's std::function-per-element indirection.
// The ops:: functor types divert to the vectorized maps. out may alias x.
template <typename T, typename F>
void Map(Index n, const T* x, T* out, F fn) {
  if constexpr (std::is_same_v<F, ops::Tanh>) {
    MapTanh(n, x, out);
  } else if constexpr (std::is_same_v<F, ops::Sigmoid>) {
    MapSigmoid(n, x, out);
  } else if constexpr (std::is_same_v<F, ops::Exp>) {
    MapExp(n, x, out);
  } else if (n >= kElementwiseGrain) {
    parallel::ParallelFor(0, n, kElementwiseGrain, [&](Index b, Index e) {
      for (Index i = b; i < e; ++i) out[i] = fn(x[i]);
    });
  } else {
    for (Index i = 0; i < n; ++i) out[i] = fn(x[i]);
  }
}

// out[i] = fn(x[i], y[i]). out may alias either input.
template <typename T, typename F>
void Zip(Index n, const T* x, const T* y, T* out, F fn) {
  if (n >= kElementwiseGrain) {
    parallel::ParallelFor(0, n, kElementwiseGrain, [&](Index b, Index e) {
      for (Index i = b; i < e; ++i) out[i] = fn(x[i], y[i]);
    });
    return;
  }
  for (Index i = 0; i < n; ++i) out[i] = fn(x[i], y[i]);
}

}  // namespace diffode::kernels

#endif  // DIFFODE_TENSOR_KERNELS_H_
