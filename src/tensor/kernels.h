#ifndef DIFFODE_TENSOR_KERNELS_H_
#define DIFFODE_TENSOR_KERNELS_H_

#include "core/parallel.h"
#include "tensor/shape.h"

namespace diffode::kernels {

// Named computational kernels behind Tensor and the autograd ops. All heavy
// loops in the repository funnel through these so that cache blocking,
// unrolling, and threading live in exactly one place. Raw-pointer interfaces
// keep them usable from both Tensor methods and backward closures without
// materializing intermediate tensors (notably: no explicit transposes).
//
// Determinism contract: for a fixed input, every kernel produces bitwise
// identical output at any thread count. Parallel kernels partition work by
// fixed chunk grids (see parallel::ParallelFor) with disjoint writes, and
// reductions combine fixed-grid partials in chunk order.

// Elementwise work below this many elements stays on the calling thread.
inline constexpr Index kElementwiseGrain = 16384;

// C (m x n) = A (m x k) * B (k x n). All row-major, C is overwritten.
void Gemm(Index m, Index k, Index n, const Scalar* a, const Scalar* b,
          Scalar* c);

// C (m x n) = A^T * B where A is stored (k x m) row-major — the backward
// pass "A^T G" without materializing the transpose.
void GemmTN(Index m, Index k, Index n, const Scalar* a, const Scalar* b,
            Scalar* c);

// C (m x n) = A * B^T where A is (m x k) and B is stored (n x k) row-major —
// the backward pass "G B^T" without materializing the transpose.
void GemmNT(Index m, Index k, Index n, const Scalar* a, const Scalar* b,
            Scalar* c);

// y += alpha * x.
void Axpy(Index n, Scalar alpha, const Scalar* x, Scalar* y);

// out = x + alpha * y (fused; out may alias x).
void AddScaled(Index n, const Scalar* x, Scalar alpha, const Scalar* y,
               Scalar* out);

// x *= alpha.
void Scale(Index n, Scalar alpha, Scalar* x);

// Deterministic blocked reductions (fixed 4096-element partial grid).
Scalar Sum(Index n, const Scalar* x);
Scalar Dot(Index n, const Scalar* x, const Scalar* y);

// out[i] = fn(x[i]). Templated functor dispatch: the loop body inlines the
// functor, unlike Tensor::Map's std::function-per-element indirection.
// out may alias x.
template <typename F>
void Map(Index n, const Scalar* x, Scalar* out, F fn) {
  if (n >= kElementwiseGrain) {
    parallel::ParallelFor(0, n, kElementwiseGrain, [&](Index b, Index e) {
      for (Index i = b; i < e; ++i) out[i] = fn(x[i]);
    });
    return;
  }
  for (Index i = 0; i < n; ++i) out[i] = fn(x[i]);
}

// out[i] = fn(x[i], y[i]). out may alias either input.
template <typename F>
void Zip(Index n, const Scalar* x, const Scalar* y, Scalar* out, F fn) {
  if (n >= kElementwiseGrain) {
    parallel::ParallelFor(0, n, kElementwiseGrain, [&](Index b, Index e) {
      for (Index i = b; i < e; ++i) out[i] = fn(x[i], y[i]);
    });
    return;
  }
  for (Index i = 0; i < n; ++i) out[i] = fn(x[i], y[i]);
}

}  // namespace diffode::kernels

#endif  // DIFFODE_TENSOR_KERNELS_H_
