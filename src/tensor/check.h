#ifndef DIFFODE_TENSOR_CHECK_H_
#define DIFFODE_TENSOR_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Fatal-assertion macros for programmer errors (shape mismatches, index
// bounds, numerical preconditions). The library does not throw across its
// public API; violated contracts terminate with a source location, matching
// the CHECK idiom used by large C++ database codebases.

#define DIFFODE_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "DIFFODE_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #cond);                            \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define DIFFODE_CHECK_MSG(cond, msg)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "DIFFODE_CHECK failed at %s:%d: %s (%s)\n",    \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define DIFFODE_CHECK_EQ(a, b) DIFFODE_CHECK((a) == (b))
#define DIFFODE_CHECK_NE(a, b) DIFFODE_CHECK((a) != (b))
#define DIFFODE_CHECK_LT(a, b) DIFFODE_CHECK((a) < (b))
#define DIFFODE_CHECK_LE(a, b) DIFFODE_CHECK((a) <= (b))
#define DIFFODE_CHECK_GT(a, b) DIFFODE_CHECK((a) > (b))
#define DIFFODE_CHECK_GE(a, b) DIFFODE_CHECK((a) >= (b))

#endif  // DIFFODE_TENSOR_CHECK_H_
