// AVX2+FMA backend for the kernel layer. This translation unit is compiled
// with -mavx2 -mfma (see src/tensor/CMakeLists.txt); everything else in the
// tree stays portable and the scalar backend in kernels_scalar.cc is the
// guaranteed fallback.
//
// Two dtypes: the f64 kernels are the PR-3 microkernels, unchanged and
// bitwise-stable; the f32 kernels mirror them at 8 lanes per vector, which
// is where the serving tier's ~2x FLOP density comes from. The vector
// transcendentals live in kernels_x86_math.h, shared with the AVX-512
// backend.
//
// Determinism: the panel/range functions here obey the contract documented
// in kernels_isa.h — each output element is computed by a fixed sequence of
// operations that depends only on its indices and the problem shape, never
// on panel bounds or thread count. Register-block sizes (8/4/2/1 rows) give
// every row its own accumulator registers, and SIMD lanes partition the
// reduction axis by residue class, so regrouping rows or splitting ranges
// never changes what is computed for a given element.

#include "tensor/kernels_isa.h"

#if DIFFODE_HAS_AVX2_BUILD

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "tensor/kernels_x86_math.h"

namespace diffode::kernels::detail {
namespace {

using x86math::TailMaskPd;
using x86math::TailMaskPs;

// ---------------------------------------------------------------------------
// Shared helpers.

// Fixed horizontal sum: lanes combined as (l0+l2) + (l1+l3).
inline double HSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

// Fixed horizontal sum of 8 float lanes: ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
inline float HSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 quad = _mm_add_ps(lo, hi);
  const __m128 pair = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
  return _mm_cvtss_f32(
      _mm_add_ss(pair, _mm_shuffle_ps(pair, pair, _MM_SHUFFLE(1, 1, 1, 1))));
}

// ---------------------------------------------------------------------------
// GEMM: C = A * B. Register-blocked 8x4 (f64) / 8x8 (f32) microkernel — 8
// row accumulators × one vector of C columns, held in ymm registers across
// the whole k loop — with 4/2/1-row variants for the row tail and a scalar
// column tail. A is read by broadcast (contiguous per row), B by row
// vectors, so the N variant needs no packing.

template <int MR>
inline void MicroN(Index k, const double* a, Index lda, const double* b,
                   Index ldb, double* c, Index ldc) {
  __m256d acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = _mm256_setzero_pd();
  for (Index p = 0; p < k; ++p) {
    const __m256d bv = _mm256_loadu_pd(b + p * ldb);
    for (int r = 0; r < MR; ++r)
      acc[r] =
          _mm256_fmadd_pd(_mm256_broadcast_sd(a + r * lda + p), bv, acc[r]);
  }
  for (int r = 0; r < MR; ++r) _mm256_storeu_pd(c + r * ldc, acc[r]);
}

template <int MR>
inline void MicroN(Index k, const float* a, Index lda, const float* b,
                   Index ldb, float* c, Index ldc) {
  __m256 acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = _mm256_setzero_ps();
  for (Index p = 0; p < k; ++p) {
    const __m256 bv = _mm256_loadu_ps(b + p * ldb);
    for (int r = 0; r < MR; ++r)
      acc[r] =
          _mm256_fmadd_ps(_mm256_broadcast_ss(a + r * lda + p), bv, acc[r]);
  }
  for (int r = 0; r < MR; ++r) _mm256_storeu_ps(c + r * ldc, acc[r]);
}

// Masked-column variant for the f32 column tail: the same ascending-p fma
// chain per lane with the mask confined to loads/stores, so each surviving
// column is computed exactly as a full vector would compute it. The f32
// serving shapes make this matter — d_h = 12 puts a third of the output
// columns past the 8-lane boundary, and a scalar tail there costs more than
// the vector body. The f64 kernels keep their scalar tail: those bits have
// been frozen since the AVX2 backend landed and the 4-lane boundary already
// divides the common f64 shapes.
template <int MR>
inline void MicroNMasked(Index k, Index t, const float* a, Index lda,
                         const float* b, Index ldb, float* c, Index ldc) {
  const __m256i mask = TailMaskPs(t);
  __m256 acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = _mm256_setzero_ps();
  for (Index p = 0; p < k; ++p) {
    const __m256 bv = _mm256_maskload_ps(b + p * ldb, mask);
    for (int r = 0; r < MR; ++r)
      acc[r] =
          _mm256_fmadd_ps(_mm256_broadcast_ss(a + r * lda + p), bv, acc[r]);
  }
  for (int r = 0; r < MR; ++r) _mm256_maskstore_ps(c + r * ldc, mask, acc[r]);
}

// Vector width (elements) per dtype; the column blocking below is expressed
// in units of kVW so both dtypes share the panel structure.
template <typename T>
inline constexpr Index kVW = Index{32} / static_cast<Index>(sizeof(T));

template <int MR, typename T>
inline void RowBlockN(Index i, Index k, Index n, Index nv, const T* a,
                      const T* b, T* c) {
  constexpr Index W = kVW<T>;
  for (Index j = 0; j < nv; j += W)
    MicroN<MR>(k, a + i * k, k, b + j, n, c + i * n + j, n);
  if constexpr (std::is_same_v<T, float>) {
    if (nv < n)
      MicroNMasked<MR>(k, n - nv, a + i * k, k, b + nv, n, c + i * n + nv, n);
  } else {
    for (Index j = nv; j < n; ++j) {
      for (int r = 0; r < MR; ++r) {
        const T* ar = a + (i + r) * k;
        T s = T(0);
        for (Index p = 0; p < k; ++p) s += ar[p] * b[p * n + j];
        c[(i + r) * n + j] = s;
      }
    }
  }
}

// Single-row fast path: the 1 x n output row is held across up to 8 column
// accumulator vectors in one k loop, so each a[p] broadcast is shared by up
// to 8 vectors of columns instead of the one a MicroN<1> column group sees.
// This is the dominant GEMM shape at inference — ODE states and RNN hidden
// states are 1 x d rows against d x d weights. Per element the arithmetic is
// the same ascending-p fma chain as MicroN<1>, so mixing this path with the
// blocked path keeps output bitwise identical.
template <int NV>
inline void Row1Block(Index k, Index n, const double* a, const double* b,
                      double* c) {
  __m256d acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = _mm256_setzero_pd();
  for (Index p = 0; p < k; ++p) {
    const __m256d av = _mm256_broadcast_sd(a + p);
    const double* br = b + p * n;
    for (int v = 0; v < NV; ++v)
      acc[v] = _mm256_fmadd_pd(av, _mm256_loadu_pd(br + 4 * v), acc[v]);
  }
  for (int v = 0; v < NV; ++v) _mm256_storeu_pd(c + 4 * v, acc[v]);
}

template <int NV>
inline void Row1Block(Index k, Index n, const float* a, const float* b,
                      float* c) {
  __m256 acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = _mm256_setzero_ps();
  for (Index p = 0; p < k; ++p) {
    const __m256 av = _mm256_broadcast_ss(a + p);
    const float* br = b + p * n;
    for (int v = 0; v < NV; ++v)
      acc[v] = _mm256_fmadd_ps(av, _mm256_loadu_ps(br + 8 * v), acc[v]);
  }
  for (int v = 0; v < NV; ++v) _mm256_storeu_ps(c + 8 * v, acc[v]);
}

template <typename T>
inline void GemmRow1(Index k, Index n, const T* a, const T* b, T* c) {
  constexpr Index W = kVW<T>;
  const Index nv = n & ~(W - 1);
  Index j = 0;
  for (; j + 8 * W <= nv; j += 8 * W) Row1Block<8>(k, n, a, b + j, c + j);
  if (nv - j >= 4 * W) {
    Row1Block<4>(k, n, a, b + j, c + j);
    j += 4 * W;
  }
  if (nv - j >= 2 * W) {
    Row1Block<2>(k, n, a, b + j, c + j);
    j += 2 * W;
  }
  if (nv - j >= W) {
    Row1Block<1>(k, n, a, b + j, c + j);
    j += W;
  }
  if constexpr (std::is_same_v<T, float>) {
    if (j < n) MicroNMasked<1>(k, n - j, a, k, b + j, n, c + j, n);
  } else {
    for (; j < n; ++j) {
      T s = T(0);
      for (Index p = 0; p < k; ++p) s += a[p] * b[p * n + j];
      c[j] = s;
    }
  }
}

template <typename T>
void GemmPanelAvx2(Index i0, Index i1, Index k, Index n, const T* a,
                   const T* b, T* c) {
  const Index nv = n & ~(kVW<T> - 1);
  Index i = i0;
  for (; i + 8 <= i1; i += 8) RowBlockN<8>(i, k, n, nv, a, b, c);
  if (i1 - i >= 4) {
    RowBlockN<4>(i, k, n, nv, a, b, c);
    i += 4;
  }
  if (i1 - i >= 2) {
    RowBlockN<2>(i, k, n, nv, a, b, c);
    i += 2;
  }
  if (i1 - i >= 1) GemmRow1(k, n, a + i * k, b, c + i * n);
}

// ---------------------------------------------------------------------------
// GemmTN: C = A^T * B with A stored (k x m). Reading A down a column touches
// a new cache line every step, so each row block packs its A panel into a
// contiguous (kc x MR) buffer once and reuses it across all column-vector
// microkernel invocations. k is blocked at kKc to bound the pack buffer; C
// accumulates across k-blocks in increasing p order, which keeps per-element
// arithmetic independent of the blocking. The first k-block starts its
// accumulators at zero instead of loading C (same arithmetic:
// (0 + block0) + block1 + ...), so the common k <= kKc case touches C
// exactly once — no zero-fill pass, no reload. Backward weight gradients
// call this with tiny k, where those extra C passes used to dominate.

constexpr Index kKc = 256;

template <int MR>
inline void MicroPackedA(bool first, Index pc, const double* ap,
                         const double* b, Index ldb, double* c, Index ldc) {
  __m256d acc[MR];
  if (first) {
    for (int r = 0; r < MR; ++r) acc[r] = _mm256_setzero_pd();
  } else {
    for (int r = 0; r < MR; ++r) acc[r] = _mm256_loadu_pd(c + r * ldc);
  }
  for (Index p = 0; p < pc; ++p) {
    const __m256d bv = _mm256_loadu_pd(b + p * ldb);
    for (int r = 0; r < MR; ++r)
      acc[r] = _mm256_fmadd_pd(_mm256_broadcast_sd(ap + p * MR + r), bv,
                               acc[r]);
  }
  for (int r = 0; r < MR; ++r) _mm256_storeu_pd(c + r * ldc, acc[r]);
}

template <int MR>
inline void MicroPackedA(bool first, Index pc, const float* ap, const float* b,
                         Index ldb, float* c, Index ldc) {
  __m256 acc[MR];
  if (first) {
    for (int r = 0; r < MR; ++r) acc[r] = _mm256_setzero_ps();
  } else {
    for (int r = 0; r < MR; ++r) acc[r] = _mm256_loadu_ps(c + r * ldc);
  }
  for (Index p = 0; p < pc; ++p) {
    const __m256 bv = _mm256_loadu_ps(b + p * ldb);
    for (int r = 0; r < MR; ++r)
      acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + p * MR + r), bv,
                               acc[r]);
  }
  for (int r = 0; r < MR; ++r) _mm256_storeu_ps(c + r * ldc, acc[r]);
}

// Masked f32 column tail for the packed-A microkernel, mirroring
// MicroNMasked (same rationale; the f64 tail stays scalar and bit-frozen).
template <int MR>
inline void MicroPackedAMasked(bool first, Index pc, Index t, const float* ap,
                               const float* b, Index ldb, float* c,
                               Index ldc) {
  const __m256i mask = TailMaskPs(t);
  __m256 acc[MR];
  if (first) {
    for (int r = 0; r < MR; ++r) acc[r] = _mm256_setzero_ps();
  } else {
    for (int r = 0; r < MR; ++r) acc[r] = _mm256_maskload_ps(c + r * ldc, mask);
  }
  for (Index p = 0; p < pc; ++p) {
    const __m256 bv = _mm256_maskload_ps(b + p * ldb, mask);
    for (int r = 0; r < MR; ++r)
      acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + p * MR + r), bv,
                               acc[r]);
  }
  for (int r = 0; r < MR; ++r) _mm256_maskstore_ps(c + r * ldc, mask, acc[r]);
}

template <int MR, typename T>
inline void RowBlockTN(bool first, Index i, Index m, Index n, Index nv,
                       Index p0, Index pc, const T* a, const T* b, T* c,
                       T* apack) {
  constexpr Index W = kVW<T>;
  for (Index p = 0; p < pc; ++p) {
    const T* src = a + (p0 + p) * m + i;
    for (int r = 0; r < MR; ++r) apack[p * MR + r] = src[r];
  }
  for (Index j = 0; j < nv; j += W)
    MicroPackedA<MR>(first, pc, apack, b + p0 * n + j, n, c + i * n + j, n);
  if constexpr (std::is_same_v<T, float>) {
    if (nv < n)
      MicroPackedAMasked<MR>(first, pc, n - nv, apack, b + p0 * n + nv, n,
                             c + i * n + nv, n);
  } else {
    for (Index j = nv; j < n; ++j) {
      for (int r = 0; r < MR; ++r) {
        T s = first ? T(0) : c[(i + r) * n + j];
        for (Index p = 0; p < pc; ++p)
          s += apack[p * MR + r] * b[(p0 + p) * n + j];
        c[(i + r) * n + j] = s;
      }
    }
  }
}

template <typename T>
void GemmTNPanelAvx2(Index i0, Index i1, Index m, Index k, Index n,
                     const T* a, const T* b, T* c) {
  if (k == 0) {
    std::fill(c + i0 * n, c + i1 * n, T(0));
    return;
  }
  const Index nv = n & ~(kVW<T> - 1);
  alignas(32) T apack[kKc * 8];
  for (Index p0 = 0; p0 < k; p0 += kKc) {
    const bool first = p0 == 0;
    const Index pc = std::min(k - p0, kKc);
    Index i = i0;
    for (; i + 8 <= i1; i += 8)
      RowBlockTN<8>(first, i, m, n, nv, p0, pc, a, b, c, apack);
    if (i1 - i >= 4) {
      RowBlockTN<4>(first, i, m, n, nv, p0, pc, a, b, c, apack);
      i += 4;
    }
    if (i1 - i >= 2) {
      RowBlockTN<2>(first, i, m, n, nv, p0, pc, a, b, c, apack);
      i += 2;
    }
    if (i1 - i >= 1)
      RowBlockTN<1>(first, i, m, n, nv, p0, pc, a, b, c, apack);
  }
}

// ---------------------------------------------------------------------------
// GemmNT: C = A * B^T with B stored (n x k). Both operands are contiguous
// along k, so instead of packing, the microkernel vectorizes the reduction
// axis itself: each output element owns one vector accumulator (lane l sums
// the p ≡ l terms) finished by the fixed HSum — plus a scalar k-tail for
// f64, or one masked vector step for f32 (see NTBlock4). A 2x4 element
// block shares the a/b row loads; the arithmetic per element is that of
// VecDot regardless of the blocking, so row pairing never changes bits.

inline double VecDot(Index k, const double* x, const double* y) {
  const Index k4 = k & ~Index{3};
  __m256d acc = _mm256_setzero_pd();
  for (Index p = 0; p < k4; p += 4)
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(x + p), _mm256_loadu_pd(y + p), acc);
  double s = HSum(acc);
  for (Index p = k4; p < k; ++p) s += x[p] * y[p];
  return s;
}

inline float VecDot(Index k, const float* x, const float* y) {
  const Index k8 = k & ~Index{7};
  __m256 acc = _mm256_setzero_ps();
  for (Index p = 0; p < k8; p += 8)
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + p), _mm256_loadu_ps(y + p), acc);
  if (k8 < k) {
    const __m256i mask = TailMaskPs(k - k8);
    acc = _mm256_fmadd_ps(_mm256_maskload_ps(x + k8, mask),
                          _mm256_maskload_ps(y + k8, mask), acc);
  }
  return HSum(acc);
}

template <int MR>
inline void NTBlock4(Index i, Index j, Index k, Index n, const double* a,
                     const double* b, double* c) {
  const Index k4 = k & ~Index{3};
  __m256d acc[MR][4];
  for (int r = 0; r < MR; ++r)
    for (int jj = 0; jj < 4; ++jj) acc[r][jj] = _mm256_setzero_pd();
  for (Index p = 0; p < k4; p += 4) {
    __m256d av[MR];
    for (int r = 0; r < MR; ++r) av[r] = _mm256_loadu_pd(a + (i + r) * k + p);
    for (int jj = 0; jj < 4; ++jj) {
      const __m256d bv = _mm256_loadu_pd(b + (j + jj) * k + p);
      for (int r = 0; r < MR; ++r)
        acc[r][jj] = _mm256_fmadd_pd(av[r], bv, acc[r][jj]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int jj = 0; jj < 4; ++jj) {
      double s = HSum(acc[r][jj]);
      const double* ar = a + (i + r) * k;
      const double* bj = b + (j + jj) * k;
      for (Index p = k4; p < k; ++p) s += ar[p] * bj[p];
      c[(i + r) * n + j + jj] = s;
    }
  }
}

// The f32 variant folds the k-tail into the lane accumulators with a masked
// load (lane l still sums the p ≡ l terms; masked-off lanes contribute
// exactly zero), so the only scalar work left is the fixed HSum. This must
// stay arithmetic-identical to the f32 VecDot below — the blocking contract
// is that row pairing never changes an element's bits.
template <int MR>
inline void NTBlock4(Index i, Index j, Index k, Index n, const float* a,
                     const float* b, float* c) {
  const Index k8 = k & ~Index{7};
  __m256 acc[MR][4];
  for (int r = 0; r < MR; ++r)
    for (int jj = 0; jj < 4; ++jj) acc[r][jj] = _mm256_setzero_ps();
  for (Index p = 0; p < k8; p += 8) {
    __m256 av[MR];
    for (int r = 0; r < MR; ++r) av[r] = _mm256_loadu_ps(a + (i + r) * k + p);
    for (int jj = 0; jj < 4; ++jj) {
      const __m256 bv = _mm256_loadu_ps(b + (j + jj) * k + p);
      for (int r = 0; r < MR; ++r)
        acc[r][jj] = _mm256_fmadd_ps(av[r], bv, acc[r][jj]);
    }
  }
  if (k8 < k) {
    const __m256i mask = TailMaskPs(k - k8);
    __m256 av[MR];
    for (int r = 0; r < MR; ++r)
      av[r] = _mm256_maskload_ps(a + (i + r) * k + k8, mask);
    for (int jj = 0; jj < 4; ++jj) {
      const __m256 bv = _mm256_maskload_ps(b + (j + jj) * k + k8, mask);
      for (int r = 0; r < MR; ++r)
        acc[r][jj] = _mm256_fmadd_ps(av[r], bv, acc[r][jj]);
    }
  }
  for (int r = 0; r < MR; ++r)
    for (int jj = 0; jj < 4; ++jj) c[(i + r) * n + j + jj] = HSum(acc[r][jj]);
}

template <typename T>
void GemmNTPanelAvx2(Index i0, Index i1, Index k, Index n, const T* a,
                     const T* b, T* c) {
  const Index n4 = n & ~Index{3};
  Index i = i0;
  for (; i + 2 <= i1; i += 2) {
    for (Index j = 0; j < n4; j += 4) NTBlock4<2>(i, j, k, n, a, b, c);
    for (Index j = n4; j < n; ++j) {
      c[i * n + j] = VecDot(k, a + i * k, b + j * k);
      c[(i + 1) * n + j] = VecDot(k, a + (i + 1) * k, b + j * k);
    }
  }
  if (i < i1) {
    for (Index j = 0; j < n4; j += 4) NTBlock4<1>(i, j, k, n, a, b, c);
    for (Index j = n4; j < n; ++j)
      c[i * n + j] = VecDot(k, a + i * k, b + j * k);
  }
}

// ---------------------------------------------------------------------------
// Contiguous-range vector ops.

void AxpyRangeAvx2(Index n, double alpha, const double* x, double* y) {
  const __m256d av = _mm256_set1_pd(alpha);
  Index i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void AxpyRangeAvx2F32(Index n, float alpha, const float* x, float* y) {
  const __m256 av = _mm256_set1_ps(alpha);
  Index i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void AddScaledRangeAvx2(Index n, const double* x, double alpha,
                        const double* y, double* out) {
  const __m256d av = _mm256_set1_pd(alpha);
  Index i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        out + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(y + i),
                                 _mm256_loadu_pd(x + i)));
  for (; i < n; ++i) out[i] = x[i] + alpha * y[i];
}

void AddScaledRangeAvx2F32(Index n, const float* x, float alpha,
                           const float* y, float* out) {
  const __m256 av = _mm256_set1_ps(alpha);
  Index i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        out + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(y + i),
                                 _mm256_loadu_ps(x + i)));
  for (; i < n; ++i) out[i] = x[i] + alpha * y[i];
}

void ScaleRangeAvx2(Index n, double alpha, double* x) {
  const __m256d av = _mm256_set1_pd(alpha);
  Index i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(x + i, _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
  for (; i < n; ++i) x[i] *= alpha;
}

void ScaleRangeAvx2F32(Index n, float alpha, float* x) {
  const __m256 av = _mm256_set1_ps(alpha);
  Index i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(x + i, _mm256_mul_ps(av, _mm256_loadu_ps(x + i)));
  for (; i < n; ++i) x[i] *= alpha;
}

// Reduction partials over one fixed-grid chunk: two vector accumulator
// chains (lane = p mod W within each chain), combined in a fixed order, then
// the scalar tail in element order. The chunk grid itself lives in
// kernels.cc; this only fixes the intra-chunk association.

double SumRangeAvx2(Index n, const double* x) {
  const Index n8 = n & ~Index{7};
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  Index i = 0;
  for (; i < n8; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(x + i + 4));
  }
  double s = HSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += x[i];
  return s;
}

float SumRangeAvx2F32(Index n, const float* x) {
  const Index n16 = n & ~Index{15};
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  Index i = 0;
  for (; i < n16; i += 16) {
    acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(x + i));
    acc1 = _mm256_add_ps(acc1, _mm256_loadu_ps(x + i + 8));
  }
  float s = HSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) s += x[i];
  return s;
}

double DotRangeAvx2(Index n, const double* x, const double* y) {
  const Index n8 = n & ~Index{7};
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  Index i = 0;
  for (; i < n8; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                           _mm256_loadu_pd(y + i + 4), acc1);
  }
  double s = HSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

float DotRangeAvx2F32(Index n, const float* x, const float* y) {
  const Index n16 = n & ~Index{15};
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  Index i = 0;
  for (; i < n16; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8),
                           _mm256_loadu_ps(y + i + 8), acc1);
  }
  float s = HSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

// ---------------------------------------------------------------------------
// Vector transcendentals: thin wrappers around the shared 256-bit functions
// in kernels_x86_math.h (identical arithmetic on AVX2 and AVX-512).

void TanhRangeAvx2(Index n, const double* x, double* out) {
  x86math::MapRangePd<x86math::TanhPd>(n, x, out);
}

void SigmoidRangeAvx2(Index n, const double* x, double* out) {
  x86math::MapRangePd<x86math::SigmoidPd>(n, x, out);
}

void ExpRangeAvx2(Index n, const double* x, double* out) {
  x86math::MapRangePd<x86math::ExpPd>(n, x, out);
}

void TanhRangeAvx2F32(Index n, const float* x, float* out) {
  x86math::MapRangePs<x86math::TanhPs>(n, x, out);
}

void SigmoidRangeAvx2F32(Index n, const float* x, float* out) {
  x86math::MapRangePs<x86math::SigmoidPs>(n, x, out);
}

void ExpRangeAvx2F32(Index n, const float* x, float* out) {
  x86math::MapRangePs<x86math::ExpPs>(n, x, out);
}

// Batched-row movement: vector-wide copies with a masked tail. Copies carry
// bits unchanged, so these match the scalar backend bitwise.
inline void CopyRowAvx2(Index cols, const double* s, double* d) {
  Index j = 0;
  for (; j + 4 <= cols; j += 4)
    _mm256_storeu_pd(d + j, _mm256_loadu_pd(s + j));
  if (j < cols) {
    const __m256i mask = TailMaskPd(cols - j);
    _mm256_maskstore_pd(d + j, mask, _mm256_maskload_pd(s + j, mask));
  }
}

inline void CopyRowAvx2(Index cols, const float* s, float* d) {
  Index j = 0;
  for (; j + 8 <= cols; j += 8)
    _mm256_storeu_ps(d + j, _mm256_loadu_ps(s + j));
  if (j < cols) {
    const __m256i mask = TailMaskPs(cols - j);
    _mm256_maskstore_ps(d + j, mask, _mm256_maskload_ps(s + j, mask));
  }
}

template <typename T>
void MaskedRowUpdateRowsAvx2(Index rows, Index cols, const unsigned char* mask,
                             const T* src, T* dst) {
  for (Index r = 0; r < rows; ++r)
    if (mask[r]) CopyRowAvx2(cols, src + r * cols, dst + r * cols);
}

template <typename T>
void SelectRowsRangeAvx2(Index count, Index cols, const Index* rows,
                         const T* src, T* dst) {
  for (Index i = 0; i < count; ++i)
    CopyRowAvx2(cols, src + rows[i] * cols, dst + i * cols);
}

template <typename T>
void ScatterRowsRangeAvx2(Index count, Index cols, const Index* rows,
                          const T* src, T* dst) {
  for (Index i = 0; i < count; ++i)
    CopyRowAvx2(cols, src + i * cols, dst + rows[i] * cols);
}

}  // namespace

constinit const KernelTable<double>  // dtype:ok — per-dtype table
    kAvx2TableF64 = {
        GemmPanelAvx2<double>,      // dtype:ok — f64 instantiation
        GemmTNPanelAvx2<double>,    // dtype:ok
        GemmNTPanelAvx2<double>,    // dtype:ok
        AxpyRangeAvx2,   AddScaledRangeAvx2, ScaleRangeAvx2,
        SumRangeAvx2,    DotRangeAvx2,
        TanhRangeAvx2,   SigmoidRangeAvx2,   ExpRangeAvx2,
        MaskedRowUpdateRowsAvx2<double>,     // dtype:ok
        SelectRowsRangeAvx2<double>,         // dtype:ok
        ScatterRowsRangeAvx2<double>,        // dtype:ok
};

constinit const KernelTable<float> kAvx2TableF32 = {
    GemmPanelAvx2<float>,      GemmTNPanelAvx2<float>,
    GemmNTPanelAvx2<float>,
    AxpyRangeAvx2F32,          AddScaledRangeAvx2F32, ScaleRangeAvx2F32,
    SumRangeAvx2F32,           DotRangeAvx2F32,
    TanhRangeAvx2F32,          SigmoidRangeAvx2F32,   ExpRangeAvx2F32,
    MaskedRowUpdateRowsAvx2<float>,
    SelectRowsRangeAvx2<float>,
    ScatterRowsRangeAvx2<float>,
};

}  // namespace diffode::kernels::detail

#endif  // DIFFODE_HAS_AVX2_BUILD
