// AVX2+FMA backend for the kernel layer. This translation unit is the only
// one compiled with -mavx2 -mfma (see src/tensor/CMakeLists.txt); everything
// else in the tree stays portable and the scalar backend in
// kernels_scalar.cc is the guaranteed fallback.
//
// Determinism: the panel/range functions here obey the contract documented
// in kernels_isa.h — each output element is computed by a fixed sequence of
// operations that depends only on its indices and the problem shape, never
// on panel bounds or thread count. Register-block sizes (8/4/2/1 rows) give
// every row its own accumulator registers, and SIMD lanes partition the
// reduction axis by residue class, so regrouping rows or splitting ranges
// never changes what is computed for a given element.

#include "tensor/kernels_isa.h"

#if DIFFODE_HAS_AVX2_BUILD

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

namespace diffode::kernels::detail {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers.

// Fixed horizontal sum: lanes combined as (l0+l2) + (l1+l3).
inline double HSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

// Load/store mask covering the first `t` (1..3) lanes of a tail.
inline __m256i TailMask(Index t) {
  alignas(32) static const std::int64_t kMask[8] = {-1, -1, -1, -1,
                                                    0,  0,  0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMask + 4 - static_cast<int>(t)));
}

// ---------------------------------------------------------------------------
// GEMM: C = A * B. Register-blocked 8x4 microkernel (8 row accumulators ×
// one 4-wide vector of C columns, held in ymm registers across the whole k
// loop), with 4/2/1-row variants for the row tail and a scalar column tail.
// A is read by broadcast (contiguous per row), B by 4-wide row vectors, so
// the N variant needs no packing.

template <int MR>
inline void MicroN(Index k, const double* a, Index lda, const double* b,
                   Index ldb, double* c, Index ldc) {
  __m256d acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = _mm256_setzero_pd();
  for (Index p = 0; p < k; ++p) {
    const __m256d bv = _mm256_loadu_pd(b + p * ldb);
    for (int r = 0; r < MR; ++r)
      acc[r] =
          _mm256_fmadd_pd(_mm256_broadcast_sd(a + r * lda + p), bv, acc[r]);
  }
  for (int r = 0; r < MR; ++r) _mm256_storeu_pd(c + r * ldc, acc[r]);
}

template <int MR>
inline void RowBlockN(Index i, Index k, Index n, Index n4, const double* a,
                      const double* b, double* c) {
  for (Index j = 0; j < n4; j += 4)
    MicroN<MR>(k, a + i * k, k, b + j, n, c + i * n + j, n);
  for (Index j = n4; j < n; ++j) {
    for (int r = 0; r < MR; ++r) {
      const double* ar = a + (i + r) * k;
      double s = 0.0;
      for (Index p = 0; p < k; ++p) s += ar[p] * b[p * n + j];
      c[(i + r) * n + j] = s;
    }
  }
}

// Single-row fast path: the 1 x n output row is held across up to 8 column
// accumulator vectors in one k loop, so each a[p] broadcast is shared by up
// to 32 columns instead of the 4 a MicroN<1> column group sees. This is the
// dominant GEMM shape at inference — ODE states and RNN hidden states are
// 1 x d rows against d x d weights. Per element the arithmetic is the same
// ascending-p fma chain as MicroN<1>, so mixing this path with the blocked
// path keeps output bitwise identical.
template <int NV>
inline void Row1Block(Index k, Index n, const double* a, const double* b,
                      double* c) {
  __m256d acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = _mm256_setzero_pd();
  for (Index p = 0; p < k; ++p) {
    const __m256d av = _mm256_broadcast_sd(a + p);
    const double* br = b + p * n;
    for (int v = 0; v < NV; ++v)
      acc[v] = _mm256_fmadd_pd(av, _mm256_loadu_pd(br + 4 * v), acc[v]);
  }
  for (int v = 0; v < NV; ++v) _mm256_storeu_pd(c + 4 * v, acc[v]);
}

inline void GemmRow1(Index k, Index n, const double* a, const double* b,
                     double* c) {
  const Index n4 = n & ~Index{3};
  Index j = 0;
  for (; j + 32 <= n4; j += 32) Row1Block<8>(k, n, a, b + j, c + j);
  if (n4 - j >= 16) {
    Row1Block<4>(k, n, a, b + j, c + j);
    j += 16;
  }
  if (n4 - j >= 8) {
    Row1Block<2>(k, n, a, b + j, c + j);
    j += 8;
  }
  if (n4 - j >= 4) {
    Row1Block<1>(k, n, a, b + j, c + j);
    j += 4;
  }
  for (; j < n; ++j) {
    double s = 0.0;
    for (Index p = 0; p < k; ++p) s += a[p] * b[p * n + j];
    c[j] = s;
  }
}

void GemmPanelAvx2(Index i0, Index i1, Index k, Index n, const double* a,
                   const double* b, double* c) {
  const Index n4 = n & ~Index{3};
  Index i = i0;
  for (; i + 8 <= i1; i += 8) RowBlockN<8>(i, k, n, n4, a, b, c);
  if (i1 - i >= 4) {
    RowBlockN<4>(i, k, n, n4, a, b, c);
    i += 4;
  }
  if (i1 - i >= 2) {
    RowBlockN<2>(i, k, n, n4, a, b, c);
    i += 2;
  }
  if (i1 - i >= 1) GemmRow1(k, n, a + i * k, b, c + i * n);
}

// ---------------------------------------------------------------------------
// GemmTN: C = A^T * B with A stored (k x m). Reading A down a column touches
// a new cache line every step, so each row block packs its A panel into a
// contiguous (kc x MR) buffer once and reuses it across all n/4 microkernel
// invocations. k is blocked at kKc to bound the pack buffer; C accumulates
// across k-blocks in increasing p order, which keeps per-element arithmetic
// independent of the blocking. The first k-block starts its accumulators at
// zero instead of loading C (same arithmetic: (0 + block0) + block1 + ...),
// so the common k <= kKc case touches C exactly once — no zero-fill pass,
// no reload. Backward weight gradients call this with tiny k, where those
// extra C passes used to dominate.

constexpr Index kKc = 256;

template <int MR>
inline void MicroPackedA(bool first, Index pc, const double* ap,
                         const double* b, Index ldb, double* c, Index ldc) {
  __m256d acc[MR];
  if (first) {
    for (int r = 0; r < MR; ++r) acc[r] = _mm256_setzero_pd();
  } else {
    for (int r = 0; r < MR; ++r) acc[r] = _mm256_loadu_pd(c + r * ldc);
  }
  for (Index p = 0; p < pc; ++p) {
    const __m256d bv = _mm256_loadu_pd(b + p * ldb);
    for (int r = 0; r < MR; ++r)
      acc[r] = _mm256_fmadd_pd(_mm256_broadcast_sd(ap + p * MR + r), bv,
                               acc[r]);
  }
  for (int r = 0; r < MR; ++r) _mm256_storeu_pd(c + r * ldc, acc[r]);
}

template <int MR>
inline void RowBlockTN(bool first, Index i, Index m, Index n, Index n4,
                       Index p0, Index pc, const double* a, const double* b,
                       double* c, double* apack) {
  for (Index p = 0; p < pc; ++p) {
    const double* src = a + (p0 + p) * m + i;
    for (int r = 0; r < MR; ++r) apack[p * MR + r] = src[r];
  }
  for (Index j = 0; j < n4; j += 4)
    MicroPackedA<MR>(first, pc, apack, b + p0 * n + j, n, c + i * n + j, n);
  for (Index j = n4; j < n; ++j) {
    for (int r = 0; r < MR; ++r) {
      double s = first ? 0.0 : c[(i + r) * n + j];
      for (Index p = 0; p < pc; ++p)
        s += apack[p * MR + r] * b[(p0 + p) * n + j];
      c[(i + r) * n + j] = s;
    }
  }
}

void GemmTNPanelAvx2(Index i0, Index i1, Index m, Index k, Index n,
                     const double* a, const double* b, double* c) {
  if (k == 0) {
    std::fill(c + i0 * n, c + i1 * n, 0.0);
    return;
  }
  const Index n4 = n & ~Index{3};
  alignas(32) double apack[kKc * 8];
  for (Index p0 = 0; p0 < k; p0 += kKc) {
    const bool first = p0 == 0;
    const Index pc = std::min(k - p0, kKc);
    Index i = i0;
    for (; i + 8 <= i1; i += 8)
      RowBlockTN<8>(first, i, m, n, n4, p0, pc, a, b, c, apack);
    if (i1 - i >= 4) {
      RowBlockTN<4>(first, i, m, n, n4, p0, pc, a, b, c, apack);
      i += 4;
    }
    if (i1 - i >= 2) {
      RowBlockTN<2>(first, i, m, n, n4, p0, pc, a, b, c, apack);
      i += 2;
    }
    if (i1 - i >= 1)
      RowBlockTN<1>(first, i, m, n, n4, p0, pc, a, b, c, apack);
  }
}

// ---------------------------------------------------------------------------
// GemmNT: C = A * B^T with B stored (n x k). Both operands are contiguous
// along k, so instead of packing, the microkernel vectorizes the reduction
// axis itself: each output element owns one 4-lane accumulator (lane l sums
// the p ≡ l terms) finished by the fixed HSum plus a scalar k-tail. A 2x4
// element block shares the a/b row loads; the arithmetic per element is that
// of VecDot regardless of the blocking, so row pairing never changes bits.

inline double VecDot(Index k, const double* x, const double* y) {
  const Index k4 = k & ~Index{3};
  __m256d acc = _mm256_setzero_pd();
  for (Index p = 0; p < k4; p += 4)
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(x + p), _mm256_loadu_pd(y + p), acc);
  double s = HSum(acc);
  for (Index p = k4; p < k; ++p) s += x[p] * y[p];
  return s;
}

template <int MR>
inline void NTBlock4(Index i, Index j, Index k, Index n, const double* a,
                     const double* b, double* c) {
  const Index k4 = k & ~Index{3};
  __m256d acc[MR][4];
  for (int r = 0; r < MR; ++r)
    for (int jj = 0; jj < 4; ++jj) acc[r][jj] = _mm256_setzero_pd();
  for (Index p = 0; p < k4; p += 4) {
    __m256d av[MR];
    for (int r = 0; r < MR; ++r) av[r] = _mm256_loadu_pd(a + (i + r) * k + p);
    for (int jj = 0; jj < 4; ++jj) {
      const __m256d bv = _mm256_loadu_pd(b + (j + jj) * k + p);
      for (int r = 0; r < MR; ++r)
        acc[r][jj] = _mm256_fmadd_pd(av[r], bv, acc[r][jj]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int jj = 0; jj < 4; ++jj) {
      double s = HSum(acc[r][jj]);
      const double* ar = a + (i + r) * k;
      const double* bj = b + (j + jj) * k;
      for (Index p = k4; p < k; ++p) s += ar[p] * bj[p];
      c[(i + r) * n + j + jj] = s;
    }
  }
}

void GemmNTPanelAvx2(Index i0, Index i1, Index k, Index n, const double* a,
                     const double* b, double* c) {
  const Index n4 = n & ~Index{3};
  Index i = i0;
  for (; i + 2 <= i1; i += 2) {
    for (Index j = 0; j < n4; j += 4) NTBlock4<2>(i, j, k, n, a, b, c);
    for (Index j = n4; j < n; ++j) {
      c[i * n + j] = VecDot(k, a + i * k, b + j * k);
      c[(i + 1) * n + j] = VecDot(k, a + (i + 1) * k, b + j * k);
    }
  }
  if (i < i1) {
    for (Index j = 0; j < n4; j += 4) NTBlock4<1>(i, j, k, n, a, b, c);
    for (Index j = n4; j < n; ++j)
      c[i * n + j] = VecDot(k, a + i * k, b + j * k);
  }
}

// ---------------------------------------------------------------------------
// Contiguous-range vector ops.

void AxpyRangeAvx2(Index n, double alpha, const double* x, double* y) {
  const __m256d av = _mm256_set1_pd(alpha);
  Index i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void AddScaledRangeAvx2(Index n, const double* x, double alpha,
                        const double* y, double* out) {
  const __m256d av = _mm256_set1_pd(alpha);
  Index i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        out + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(y + i),
                                 _mm256_loadu_pd(x + i)));
  for (; i < n; ++i) out[i] = x[i] + alpha * y[i];
}

void ScaleRangeAvx2(Index n, double alpha, double* x) {
  const __m256d av = _mm256_set1_pd(alpha);
  Index i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(x + i, _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
  for (; i < n; ++i) x[i] *= alpha;
}

// Reduction partials over one fixed-grid chunk: two 4-lane accumulator
// chains (lane = p mod 4 within each chain), combined in a fixed order, then
// the scalar tail in element order. The chunk grid itself lives in
// kernels.cc; this only fixes the intra-chunk association.

double SumRangeAvx2(Index n, const double* x) {
  const Index n8 = n & ~Index{7};
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  Index i = 0;
  for (; i < n8; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(x + i + 4));
  }
  double s = HSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += x[i];
  return s;
}

double DotRangeAvx2(Index n, const double* x, const double* y) {
  const Index n8 = n & ~Index{7};
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  Index i = 0;
  for (; i < n8; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                           _mm256_loadu_pd(y + i + 4), acc1);
  }
  double s = HSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

// ---------------------------------------------------------------------------
// Vector transcendentals. ExpPd is a Cephes-style exp: round-to-nearest
// argument reduction against a two-part ln2, a rational approximation of
// exp(r) on |r| <= ln2/2 (~1 ulp), and reconstruction by two half-exponent
// scalings so borderline arguments (|x| near 709) neither overflow the
// exponent field nor flush prematurely. Inputs beyond the true overflow /
// total-underflow thresholds are blended to inf / 0; NaN propagates.

inline __m256d ExpPd(__m256d x) {
  const __m256d n_f = _mm256_round_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(1.44269504088896340736)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(n_f, _mm256_set1_pd(6.93145751953125e-1), x);
  r = _mm256_fnmadd_pd(n_f, _mm256_set1_pd(1.42860682030941723212e-6), r);
  const __m256d rr = _mm256_mul_pd(r, r);
  __m256d p = _mm256_set1_pd(1.26177193074810590878e-4);
  p = _mm256_fmadd_pd(p, rr, _mm256_set1_pd(3.02994407707441961300e-2));
  p = _mm256_fmadd_pd(p, rr, _mm256_set1_pd(9.99999999999999999910e-1));
  p = _mm256_mul_pd(p, r);
  __m256d q = _mm256_set1_pd(3.00198505138664455042e-6);
  q = _mm256_fmadd_pd(q, rr, _mm256_set1_pd(2.52448340349684104192e-3));
  q = _mm256_fmadd_pd(q, rr, _mm256_set1_pd(2.27265548208155028766e-1));
  q = _mm256_fmadd_pd(q, rr, _mm256_set1_pd(2.0));
  __m256d e = _mm256_div_pd(p, _mm256_sub_pd(q, p));
  e = _mm256_fmadd_pd(e, _mm256_set1_pd(2.0), _mm256_set1_pd(1.0));
  // e *= 2^n via two factors 2^(n/2) and 2^(n - n/2): each factor's biased
  // exponent stays in the normal range for every n that can reach here.
  const __m128i n_i = _mm256_cvtpd_epi32(n_f);
  const __m128i n_half = _mm_srai_epi32(n_i, 1);
  const __m128i bias = _mm_set1_epi32(1023);
  const __m256i f0 = _mm256_slli_epi64(
      _mm256_cvtepi32_epi64(_mm_add_epi32(n_half, bias)), 52);
  const __m256i f1 = _mm256_slli_epi64(
      _mm256_cvtepi32_epi64(
          _mm_add_epi32(_mm_sub_epi32(n_i, n_half), bias)), 52);
  e = _mm256_mul_pd(_mm256_mul_pd(e, _mm256_castsi256_pd(f0)),
                    _mm256_castsi256_pd(f1));
  // exp overflows above ln(DBL_MAX) and is exactly 0 below the subnormal
  // floor; in between the two-factor scaling produces gradual underflow.
  const __m256d inf = _mm256_set1_pd(__builtin_inf());
  e = _mm256_blendv_pd(
      e, inf, _mm256_cmp_pd(x, _mm256_set1_pd(709.782712893384), _CMP_GT_OQ));
  e = _mm256_blendv_pd(
      e, _mm256_setzero_pd(),
      _mm256_cmp_pd(x, _mm256_set1_pd(-745.2), _CMP_LT_OQ));
  return e;
}

// Cephes tanh: odd rational x + x^3 P(x^2)/Q(x^2) for |x| < 0.625, else
// sign(x) * (1 - 2/(exp(2|x|) + 1)); the small-|x| polynomial avoids the
// 1 - exp cancellation near zero, the exp branch saturates to ±1 exactly.
inline __m256d TanhPd(__m256d x) {
  const __m256d sign_bit = _mm256_set1_pd(-0.0);
  const __m256d sign = _mm256_and_pd(x, sign_bit);
  const __m256d z = _mm256_andnot_pd(sign_bit, x);
  const __m256d s = _mm256_mul_pd(x, x);
  __m256d pp = _mm256_set1_pd(-9.64399179425052238628e-1);
  pp = _mm256_fmadd_pd(pp, s, _mm256_set1_pd(-9.92877231001918586564e1));
  pp = _mm256_fmadd_pd(pp, s, _mm256_set1_pd(-1.61468768441708447952e3));
  __m256d qq = _mm256_add_pd(s, _mm256_set1_pd(1.12811678491632931402e2));
  qq = _mm256_fmadd_pd(qq, s, _mm256_set1_pd(2.23548839060100448583e3));
  qq = _mm256_fmadd_pd(qq, s, _mm256_set1_pd(4.84406305325125486048e3));
  const __m256d small = _mm256_fmadd_pd(
      _mm256_mul_pd(s, x), _mm256_div_pd(pp, qq), x);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d e = ExpPd(_mm256_mul_pd(z, two));
  const __m256d big = _mm256_or_pd(
      _mm256_sub_pd(one, _mm256_div_pd(two, _mm256_add_pd(e, one))), sign);
  return _mm256_blendv_pd(big, small,
                          _mm256_cmp_pd(z, _mm256_set1_pd(0.625), _CMP_LT_OQ));
}

inline __m256d SigmoidPd(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d e = ExpPd(_mm256_sub_pd(_mm256_setzero_pd(), x));
  return _mm256_div_pd(one, _mm256_add_pd(one, e));
}

// Range driver: full vectors, then one masked vector for the 1..3 tail
// elements so tails run the identical arithmetic.
template <__m256d (*F)(__m256d)>
void MapRange(Index n, const double* x, double* out) {
  Index i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, F(_mm256_loadu_pd(x + i)));
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    const __m256d v = _mm256_maskload_pd(x + i, mask);
    _mm256_maskstore_pd(out + i, mask, F(v));
  }
}

void TanhRangeAvx2(Index n, const double* x, double* out) {
  MapRange<TanhPd>(n, x, out);
}

void SigmoidRangeAvx2(Index n, const double* x, double* out) {
  MapRange<SigmoidPd>(n, x, out);
}

void ExpRangeAvx2(Index n, const double* x, double* out) {
  MapRange<ExpPd>(n, x, out);
}

// Batched-row movement: vector-wide copies with a masked tail. Copies carry
// bits unchanged, so these match the scalar backend bitwise.
inline void CopyRowAvx2(Index cols, const double* s, double* d) {
  Index j = 0;
  for (; j + 4 <= cols; j += 4)
    _mm256_storeu_pd(d + j, _mm256_loadu_pd(s + j));
  if (j < cols) {
    const __m256i mask = TailMask(cols - j);
    _mm256_maskstore_pd(d + j, mask, _mm256_maskload_pd(s + j, mask));
  }
}

void MaskedRowUpdateRowsAvx2(Index rows, Index cols, const unsigned char* mask,
                             const double* src, double* dst) {
  for (Index r = 0; r < rows; ++r)
    if (mask[r]) CopyRowAvx2(cols, src + r * cols, dst + r * cols);
}

void SelectRowsRangeAvx2(Index count, Index cols, const Index* rows,
                         const double* src, double* dst) {
  for (Index i = 0; i < count; ++i)
    CopyRowAvx2(cols, src + rows[i] * cols, dst + i * cols);
}

void ScatterRowsRangeAvx2(Index count, Index cols, const Index* rows,
                          const double* src, double* dst) {
  for (Index i = 0; i < count; ++i)
    CopyRowAvx2(cols, src + i * cols, dst + rows[i] * cols);
}

}  // namespace

constinit const KernelTable kAvx2Table = {
    GemmPanelAvx2,   GemmTNPanelAvx2, GemmNTPanelAvx2, AxpyRangeAvx2,
    AddScaledRangeAvx2, ScaleRangeAvx2, SumRangeAvx2,  DotRangeAvx2,
    TanhRangeAvx2,   SigmoidRangeAvx2, ExpRangeAvx2,
    MaskedRowUpdateRowsAvx2, SelectRowsRangeAvx2, ScatterRowsRangeAvx2,
};

}  // namespace diffode::kernels::detail

#endif  // DIFFODE_HAS_AVX2_BUILD
