#ifndef DIFFODE_TENSOR_RANDOM_H_
#define DIFFODE_TENSOR_RANDOM_H_

#include <cstdint>
#include <random>

#include "tensor/tensor.h"

namespace diffode {

// Deterministic random source. Every stochastic component in the library
// (weight init, dataset generators, Poisson subsampling) draws from an Rng
// seeded explicitly, so experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  Scalar Uniform(Scalar lo = 0.0, Scalar hi = 1.0) {
    return std::uniform_real_distribution<Scalar>(lo, hi)(engine_);
  }

  Scalar Normal(Scalar mean = 0.0, Scalar stddev = 1.0) {
    return std::normal_distribution<Scalar>(mean, stddev)(engine_);
  }

  // Exponential inter-arrival time with the given rate (events per unit t).
  Scalar Exponential(Scalar rate) {
    return std::exponential_distribution<Scalar>(rate)(engine_);
  }

  bool Bernoulli(Scalar p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  Index UniformInt(Index lo, Index hi) {  // inclusive bounds
    return std::uniform_int_distribution<Index>(lo, hi)(engine_);
  }

  Tensor NormalTensor(Shape shape, Scalar mean = 0.0, Scalar stddev = 1.0) {
    Tensor t(std::move(shape));
    for (Index i = 0; i < t.numel(); ++i) t[i] = Normal(mean, stddev);
    return t;
  }

  Tensor UniformTensor(Shape shape, Scalar lo = 0.0, Scalar hi = 1.0) {
    Tensor t(std::move(shape));
    for (Index i = 0; i < t.numel(); ++i) t[i] = Uniform(lo, hi);
    return t;
  }

  std::mt19937_64& engine() { return engine_; }

  // Derives an independent stream (e.g. one per dataset sample).
  Rng Fork() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace diffode

#endif  // DIFFODE_TENSOR_RANDOM_H_
