// Kernel dispatch and parallel orchestration. This TU owns every decision
// about threading: the fixed row-panel grid for GEMMs, the fixed elementwise
// chunk grid, and the fixed reduction partial grid with chunk-ordered
// combination. The arithmetic itself lives in the per-ISA backends
// (kernels_scalar.cc / kernels_avx2.cc / kernels_avx512.cc), reached through
// a dtype-specific KernelTable selected from simd::ActiveIsa(). Because the
// grids here never depend on the thread count and backend bodies never
// depend on partition bounds, output is bitwise reproducible at any pool
// size within a given (ISA, dtype) pair.

#include "tensor/kernels.h"

#include <type_traits>

#include "tensor/kernels_isa.h"
#include "tensor/simd.h"

namespace diffode::kernels {
namespace {

// Multiply count below which a GEMM is not worth fanning out.
constexpr Index kGemmParallelFlops = 1 << 15;

// Rows per parallel task. Fixed (thread-count independent) so the row
// partition — and therefore every output bit — never depends on the pool.
constexpr Index kGemmRowGrain = 32;

// Backend for the current ISA and dtype. Looked up once per kernel entry so
// one call never mixes backends even if a test flips SetActiveIsa
// concurrently. Everything here inlines to a relaxed load, compares, and a
// constant address — this runs on every kernel dispatch, thousands of times
// per forward pass on the small tensors these models use.
template <typename T>
inline const detail::KernelTable<T>* Table() {
  static_assert(std::is_same_v<T, double> || std::is_same_v<T, float>,
                "kernel dtype must be double or float");
  const simd::Isa isa = simd::ActiveIsa();
#if DIFFODE_HAS_AVX512_BUILD
  if (isa == simd::Isa::kAvx512) {
    if constexpr (std::is_same_v<T, double>)
      return &detail::kAvx512TableF64;
    else
      return &detail::kAvx512TableF32;
  }
#endif
#if DIFFODE_HAS_AVX2_BUILD
  if (isa == simd::Isa::kAvx2) {
    if constexpr (std::is_same_v<T, double>)
      return &detail::kAvx2TableF64;
    else
      return &detail::kAvx2TableF32;
  }
#endif
  (void)isa;
  if constexpr (std::is_same_v<T, double>)
    return &detail::kScalarTableF64;
  else
    return &detail::kScalarTableF32;
}

// Row-parallel driver shared by the GEMM variants.
template <typename Panel>
void RunRowPanels(Index m, Index k, Index n, Panel panel) {
  if (m * n * k >= kGemmParallelFlops && m > kGemmRowGrain) {
    parallel::ParallelFor(0, m, kGemmRowGrain, panel);
  } else {
    panel(0, m);
  }
}

template <typename T>
using MapRangeFn = void (*)(Index, const T*, T*);

template <typename T>
void RunMap(MapRangeFn<T> range, Index n, const T* x, T* out) {
  if (n >= kElementwiseGrain) {
    parallel::ParallelFor(0, n, kElementwiseGrain, [=](Index b, Index e) {
      range(e - b, x + b, out + b);
    });
    return;
  }
  range(n, x, out);
}

}  // namespace

template <typename T>
void Gemm(Index m, Index k, Index n, const T* a, const T* b, T* c) {
  const detail::KernelTable<T>* t = Table<T>();
  RunRowPanels(m, k, n, [=](Index i0, Index i1) {
    t->gemm_panel(i0, i1, k, n, a, b, c);
  });
}

template <typename T>
void GemmTN(Index m, Index k, Index n, const T* a, const T* b, T* c) {
  const detail::KernelTable<T>* t = Table<T>();
  RunRowPanels(m, k, n, [=](Index i0, Index i1) {
    t->gemm_tn_panel(i0, i1, m, k, n, a, b, c);
  });
}

template <typename T>
void GemmNT(Index m, Index k, Index n, const T* a, const T* b, T* c) {
  const detail::KernelTable<T>* t = Table<T>();
  RunRowPanels(m, k, n, [=](Index i0, Index i1) {
    t->gemm_nt_panel(i0, i1, k, n, a, b, c);
  });
}

template <typename T>
void Axpy(Index n, T alpha, const T* x, T* y) {
  const detail::KernelTable<T>* t = Table<T>();
  if (n >= kElementwiseGrain) {
    parallel::ParallelFor(0, n, kElementwiseGrain, [=](Index b, Index e) {
      t->axpy(e - b, alpha, x + b, y + b);
    });
    return;
  }
  t->axpy(n, alpha, x, y);
}

template <typename T>
void AddScaled(Index n, const T* x, T alpha, const T* y, T* out) {
  const detail::KernelTable<T>* t = Table<T>();
  if (n >= kElementwiseGrain) {
    parallel::ParallelFor(0, n, kElementwiseGrain, [=](Index b, Index e) {
      t->add_scaled(e - b, x + b, alpha, y + b, out + b);
    });
    return;
  }
  t->add_scaled(n, x, alpha, y, out);
}

template <typename T>
void Scale(Index n, T alpha, T* x) {
  const detail::KernelTable<T>* t = Table<T>();
  if (n >= kElementwiseGrain) {
    parallel::ParallelFor(0, n, kElementwiseGrain, [=](Index b, Index e) {
      t->scale(e - b, alpha, x + b);
    });
    return;
  }
  t->scale(n, alpha, x);
}

template <typename T>
T Sum(Index n, const T* x) {
  const detail::KernelTable<T>* t = Table<T>();
  if (n < kReductionGrain) return t->sum(n, x);
  // Chunk partials are combined in f64 regardless of T (ReduceSum's fixed
  // chunk-ordered serial sum), then rounded once to T — deterministic and,
  // for f32, strictly more accurate than a float combine.
  return static_cast<T>(
      parallel::ReduceSum(0, n, kReductionGrain, [=](Index b, Index e) {
        return static_cast<Scalar>(t->sum(e - b, x + b));
      }));
}

template <typename T>
T Dot(Index n, const T* x, const T* y) {
  const detail::KernelTable<T>* t = Table<T>();
  if (n < kReductionGrain) return t->dot(n, x, y);
  return static_cast<T>(
      parallel::ReduceSum(0, n, kReductionGrain, [=](Index b, Index e) {
        return static_cast<Scalar>(t->dot(e - b, x + b, y + b));
      }));
}

template <typename T>
void MapTanh(Index n, const T* x, T* out) {
  RunMap<T>(Table<T>()->tanh, n, x, out);
}

template <typename T>
void MapSigmoid(Index n, const T* x, T* out) {
  RunMap<T>(Table<T>()->sigmoid, n, x, out);
}

template <typename T>
void MapExp(Index n, const T* x, T* out) {
  RunMap<T>(Table<T>()->exp, n, x, out);
}

template <typename T>
void MaskedRowUpdate(Index rows, Index cols, const unsigned char* mask,
                     const T* src, T* dst) {
  Table<T>()->masked_row_update(rows, cols, mask, src, dst);
}

template <typename T>
void SelectRows(Index count, Index cols, const Index* rows, const T* src,
                T* dst) {
  Table<T>()->select_rows(count, cols, rows, src, dst);
}

template <typename T>
void ScatterRows(Index count, Index cols, const Index* rows, const T* src,
                 T* dst) {
  Table<T>()->scatter_rows(count, cols, rows, src, dst);
}

// Explicit instantiations: the two supported kernel dtypes.
#define DIFFODE_INSTANTIATE_KERNELS(T)                                        \
  template void Gemm<T>(Index, Index, Index, const T*, const T*, T*);         \
  template void GemmTN<T>(Index, Index, Index, const T*, const T*, T*);       \
  template void GemmNT<T>(Index, Index, Index, const T*, const T*, T*);       \
  template void Axpy<T>(Index, T, const T*, T*);                              \
  template void AddScaled<T>(Index, const T*, T, const T*, T*);               \
  template void Scale<T>(Index, T, T*);                                       \
  template T Sum<T>(Index, const T*);                                         \
  template T Dot<T>(Index, const T*, const T*);                               \
  template void MapTanh<T>(Index, const T*, T*);                              \
  template void MapSigmoid<T>(Index, const T*, T*);                           \
  template void MapExp<T>(Index, const T*, T*);                               \
  template void MaskedRowUpdate<T>(Index, Index, const unsigned char*,        \
                                   const T*, T*);                             \
  template void SelectRows<T>(Index, Index, const Index*, const T*, T*);      \
  template void ScatterRows<T>(Index, Index, const Index*, const T*, T*)

DIFFODE_INSTANTIATE_KERNELS(double);  // dtype:ok — explicit instantiation
DIFFODE_INSTANTIATE_KERNELS(float);

#undef DIFFODE_INSTANTIATE_KERNELS

}  // namespace diffode::kernels
