// Kernel dispatch and parallel orchestration. This TU owns every decision
// about threading: the fixed row-panel grid for GEMMs, the fixed elementwise
// chunk grid, and the fixed reduction partial grid with chunk-ordered
// combination. The arithmetic itself lives in the per-ISA backends
// (kernels_scalar.cc / kernels_avx2.cc), reached through a KernelTable
// selected from simd::ActiveIsa(). Because the grids here never depend on
// the thread count and backend bodies never depend on partition bounds,
// output is bitwise reproducible at any pool size within a given ISA.

#include "tensor/kernels.h"

#include "tensor/kernels_isa.h"
#include "tensor/simd.h"

namespace diffode::kernels {
namespace {

// Multiply count below which a GEMM is not worth fanning out.
constexpr Index kGemmParallelFlops = 1 << 15;

// Rows per parallel task. Fixed (thread-count independent) so the row
// partition — and therefore every output bit — never depends on the pool.
constexpr Index kGemmRowGrain = 32;

// Backend for the current ISA. Looked up once per kernel entry so one call
// never mixes backends even if a test flips SetActiveIsa concurrently.
// Everything here inlines to a relaxed load, a compare, and a constant
// address — this runs on every kernel dispatch, thousands of times per
// forward pass on the small tensors these models use.
inline const detail::KernelTable* Table() {
#if DIFFODE_HAS_AVX2_BUILD
  if (simd::ActiveIsa() == simd::Isa::kAvx2) return &detail::kAvx2Table;
#endif
  return &detail::kScalarTable;
}

// Row-parallel driver shared by the GEMM variants.
template <typename Panel>
void RunRowPanels(Index m, Index k, Index n, Panel panel) {
  if (m * n * k >= kGemmParallelFlops && m > kGemmRowGrain) {
    parallel::ParallelFor(0, m, kGemmRowGrain, panel);
  } else {
    panel(0, m);
  }
}

using MapRangeFn = void (*)(Index, const Scalar*, Scalar*);

void RunMap(MapRangeFn range, Index n, const Scalar* x, Scalar* out) {
  if (n >= kElementwiseGrain) {
    parallel::ParallelFor(0, n, kElementwiseGrain, [=](Index b, Index e) {
      range(e - b, x + b, out + b);
    });
    return;
  }
  range(n, x, out);
}

}  // namespace

void Gemm(Index m, Index k, Index n, const Scalar* a, const Scalar* b,
          Scalar* c) {
  const detail::KernelTable* t = Table();
  RunRowPanels(m, k, n, [=](Index i0, Index i1) {
    t->gemm_panel(i0, i1, k, n, a, b, c);
  });
}

void GemmTN(Index m, Index k, Index n, const Scalar* a, const Scalar* b,
            Scalar* c) {
  const detail::KernelTable* t = Table();
  RunRowPanels(m, k, n, [=](Index i0, Index i1) {
    t->gemm_tn_panel(i0, i1, m, k, n, a, b, c);
  });
}

void GemmNT(Index m, Index k, Index n, const Scalar* a, const Scalar* b,
            Scalar* c) {
  const detail::KernelTable* t = Table();
  RunRowPanels(m, k, n, [=](Index i0, Index i1) {
    t->gemm_nt_panel(i0, i1, k, n, a, b, c);
  });
}

void Axpy(Index n, Scalar alpha, const Scalar* x, Scalar* y) {
  const detail::KernelTable* t = Table();
  if (n >= kElementwiseGrain) {
    parallel::ParallelFor(0, n, kElementwiseGrain, [=](Index b, Index e) {
      t->axpy(e - b, alpha, x + b, y + b);
    });
    return;
  }
  t->axpy(n, alpha, x, y);
}

void AddScaled(Index n, const Scalar* x, Scalar alpha, const Scalar* y,
               Scalar* out) {
  const detail::KernelTable* t = Table();
  if (n >= kElementwiseGrain) {
    parallel::ParallelFor(0, n, kElementwiseGrain, [=](Index b, Index e) {
      t->add_scaled(e - b, x + b, alpha, y + b, out + b);
    });
    return;
  }
  t->add_scaled(n, x, alpha, y, out);
}

void Scale(Index n, Scalar alpha, Scalar* x) {
  const detail::KernelTable* t = Table();
  if (n >= kElementwiseGrain) {
    parallel::ParallelFor(0, n, kElementwiseGrain, [=](Index b, Index e) {
      t->scale(e - b, alpha, x + b);
    });
    return;
  }
  t->scale(n, alpha, x);
}

Scalar Sum(Index n, const Scalar* x) {
  const detail::KernelTable* t = Table();
  if (n < kReductionGrain) return t->sum(n, x);
  return parallel::ReduceSum(0, n, kReductionGrain, [=](Index b, Index e) {
    return t->sum(e - b, x + b);
  });
}

Scalar Dot(Index n, const Scalar* x, const Scalar* y) {
  const detail::KernelTable* t = Table();
  if (n < kReductionGrain) return t->dot(n, x, y);
  return parallel::ReduceSum(0, n, kReductionGrain, [=](Index b, Index e) {
    return t->dot(e - b, x + b, y + b);
  });
}

void MapTanh(Index n, const Scalar* x, Scalar* out) {
  RunMap(Table()->tanh, n, x, out);
}

void MapSigmoid(Index n, const Scalar* x, Scalar* out) {
  RunMap(Table()->sigmoid, n, x, out);
}

void MapExp(Index n, const Scalar* x, Scalar* out) {
  RunMap(Table()->exp, n, x, out);
}

void MaskedRowUpdate(Index rows, Index cols, const unsigned char* mask,
                     const Scalar* src, Scalar* dst) {
  Table()->masked_row_update(rows, cols, mask, src, dst);
}

void SelectRows(Index count, Index cols, const Index* rows, const Scalar* src,
                Scalar* dst) {
  Table()->select_rows(count, cols, rows, src, dst);
}

void ScatterRows(Index count, Index cols, const Index* rows, const Scalar* src,
                 Scalar* dst) {
  Table()->scatter_rows(count, cols, rows, src, dst);
}

}  // namespace diffode::kernels
