// AVX-512 (F+DQ) backend for the kernel layer. This translation unit is
// compiled with -mavx512f -mavx512dq (see src/tensor/CMakeLists.txt); the
// rest of the tree stays portable. Unlike the AVX2 backend there is no
// bitwise legacy to preserve, so both dtypes share one set of panel
// templates over a small vector-trait wrapper: 8 double or 16 float lanes
// per register, mask registers instead of blend tables for tails.
//
// The vector transcendentals are the shared 256-bit functions from
// kernels_x86_math.h — identical arithmetic to the AVX2 ISA. The wins of
// this backend are the GEMM panels and vector ops, which carry the batched
// serving engine; widening exp/tanh would change their results across ISAs
// for little gain.
//
// Determinism: same contract as every backend (kernels_isa.h) — each output
// element is computed by a fixed operation sequence depending only on its
// indices and the problem shape. Lanes partition the reduction axis by
// residue class mod the vector width; horizontal sums use one fixed
// combining tree.

#include "tensor/kernels_isa.h"

#if DIFFODE_HAS_AVX512_BUILD

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "tensor/kernels_x86_math.h"

namespace diffode::kernels::detail {
namespace {

// ---------------------------------------------------------------------------
// Vector traits: the only dtype-specific surface of this backend.

template <typename T>
struct V;

template <>
struct V<double> {
  using Reg = __m512d;
  using Mask = __mmask8;
  static constexpr Index kW = 8;
  static Reg Zero() { return _mm512_setzero_pd(); }
  static Reg Load(const double* p) { return _mm512_loadu_pd(p); }
  static void Store(double* p, Reg v) { _mm512_storeu_pd(p, v); }
  static Reg Broadcast(double v) { return _mm512_set1_pd(v); }
  static Reg Fma(Reg a, Reg b, Reg c) { return _mm512_fmadd_pd(a, b, c); }
  static Reg Add(Reg a, Reg b) { return _mm512_add_pd(a, b); }
  static Reg Mul(Reg a, Reg b) { return _mm512_mul_pd(a, b); }
  static Mask Tail(Index t) { return static_cast<Mask>((1u << t) - 1u); }
  static Reg MaskzLoad(Mask m, const double* p) {
    return _mm512_maskz_loadu_pd(m, p);
  }
  static void MaskStore(double* p, Mask m, Reg v) {
    _mm512_mask_storeu_pd(p, m, v);
  }
  // Fixed combining tree: lane l joins lane l+4, then l+2, then l+1, after
  // an initial lo256+hi256 fold — one order for every call site.
  static double HSum(Reg v) {
    const __m256d lo = _mm512_castpd512_pd256(v);
    const __m256d hi = _mm512_extractf64x4_pd(v, 1);
    const __m256d quad = _mm256_add_pd(lo, hi);
    const __m128d l = _mm256_castpd256_pd128(quad);
    const __m128d h = _mm256_extractf128_pd(quad, 1);
    const __m128d pair = _mm_add_pd(l, h);
    return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  }
};

template <>
struct V<float> {
  using Reg = __m512;
  using Mask = __mmask16;
  static constexpr Index kW = 16;
  static Reg Zero() { return _mm512_setzero_ps(); }
  static Reg Load(const float* p) { return _mm512_loadu_ps(p); }
  static void Store(float* p, Reg v) { _mm512_storeu_ps(p, v); }
  static Reg Broadcast(float v) { return _mm512_set1_ps(v); }
  static Reg Fma(Reg a, Reg b, Reg c) { return _mm512_fmadd_ps(a, b, c); }
  static Reg Add(Reg a, Reg b) { return _mm512_add_ps(a, b); }
  static Reg Mul(Reg a, Reg b) { return _mm512_mul_ps(a, b); }
  static Mask Tail(Index t) { return static_cast<Mask>((1u << t) - 1u); }
  static Reg MaskzLoad(Mask m, const float* p) {
    return _mm512_maskz_loadu_ps(m, p);
  }
  static void MaskStore(float* p, Mask m, Reg v) {
    _mm512_mask_storeu_ps(p, m, v);
  }
  static float HSum(Reg v) {
    const __m256 lo = _mm512_castps512_ps256(v);
    const __m256 hi = _mm512_extractf32x8_ps(v, 1);  // needs AVX-512 DQ
    const __m256 oct = _mm256_add_ps(lo, hi);
    const __m128 l = _mm256_castps256_ps128(oct);
    const __m128 h = _mm256_extractf128_ps(oct, 1);
    const __m128 quad = _mm_add_ps(l, h);
    const __m128 pair = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
    return _mm_cvtss_f32(_mm_add_ss(
        pair, _mm_shuffle_ps(pair, pair, _MM_SHUFFLE(1, 1, 1, 1))));
  }
};

// ---------------------------------------------------------------------------
// GEMM: C = A * B. Same register-blocking scheme as the AVX2 backend (8
// row accumulators × one vector of C columns, 4/2/1-row tails) at 512-bit
// width; column tails run a masked microkernel instead of a scalar loop —
// with mask registers the tail is the identical fma chain, just with dead
// lanes, so it needs no separate determinism argument.

template <int MR, typename T>
inline void MicroN(Index k, typename V<T>::Mask m, const T* a, Index lda,
                   const T* b, Index ldb, T* c, Index ldc) {
  using W = V<T>;
  typename W::Reg acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = W::Zero();
  for (Index p = 0; p < k; ++p) {
    const typename W::Reg bv = W::MaskzLoad(m, b + p * ldb);
    for (int r = 0; r < MR; ++r)
      acc[r] = W::Fma(W::Broadcast(a[r * lda + p]), bv, acc[r]);
  }
  for (int r = 0; r < MR; ++r) W::MaskStore(c + r * ldc, m, acc[r]);
}

template <int MR, typename T>
inline void RowBlockN(Index i, Index k, Index n, const T* a, const T* b,
                      T* c) {
  using W = V<T>;
  constexpr Index kW = W::kW;
  const Index nv = n & ~(kW - 1);
  const typename W::Mask full = W::Tail(kW == 8 ? 8 : 16);
  for (Index j = 0; j < nv; j += kW)
    MicroN<MR, T>(k, full, a + i * k, k, b + j, n, c + i * n + j, n);
  if (nv < n)
    MicroN<MR, T>(k, W::Tail(n - nv), a + i * k, k, b + nv, n, c + i * n + nv,
                  n);
}

// Single-row fast path (the dominant inference GEMM shape): up to 4 column
// vectors (64 f64 / 128 f32 columns per iteration) share each a[p]
// broadcast.
template <int NV, typename T>
inline void Row1Block(Index k, Index n, const T* a, const T* b, T* c) {
  using W = V<T>;
  typename W::Reg acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = W::Zero();
  for (Index p = 0; p < k; ++p) {
    const typename W::Reg av = W::Broadcast(a[p]);
    const T* br = b + p * n;
    for (int v = 0; v < NV; ++v)
      acc[v] = W::Fma(av, W::Load(br + W::kW * v), acc[v]);
  }
  for (int v = 0; v < NV; ++v) W::Store(c + W::kW * v, acc[v]);
}

template <typename T>
inline void GemmRow1(Index k, Index n, const T* a, const T* b, T* c) {
  using W = V<T>;
  constexpr Index kW = W::kW;
  const Index nv = n & ~(kW - 1);
  Index j = 0;
  for (; j + 4 * kW <= nv; j += 4 * kW) Row1Block<4, T>(k, n, a, b + j, c + j);
  if (nv - j >= 2 * kW) {
    Row1Block<2, T>(k, n, a, b + j, c + j);
    j += 2 * kW;
  }
  if (nv - j >= kW) {
    Row1Block<1, T>(k, n, a, b + j, c + j);
    j += kW;
  }
  if (j < n) MicroN<1, T>(k, W::Tail(n - j), a, k, b + j, n, c + j, n);
}

template <typename T>
void GemmPanelAvx512(Index i0, Index i1, Index k, Index n, const T* a,
                     const T* b, T* c) {
  Index i = i0;
  for (; i + 8 <= i1; i += 8) RowBlockN<8>(i, k, n, a, b, c);
  if (i1 - i >= 4) {
    RowBlockN<4>(i, k, n, a, b, c);
    i += 4;
  }
  if (i1 - i >= 2) {
    RowBlockN<2>(i, k, n, a, b, c);
    i += 2;
  }
  if (i1 - i >= 1) GemmRow1(k, n, a + i * k, b, c + i * n);
}

// ---------------------------------------------------------------------------
// GemmTN: C = A^T * B with A stored (k x m). Same packing scheme as the
// AVX2 backend: per row block, the A panel is packed (kc x MR) once; C
// accumulates across k-blocks in increasing p order with the first block
// starting from zero.

constexpr Index kKc = 256;

template <int MR, typename T>
inline void MicroPackedA(bool first, Index pc, typename V<T>::Mask m,
                         const T* ap, const T* b, Index ldb, T* c, Index ldc) {
  using W = V<T>;
  typename W::Reg acc[MR];
  if (first) {
    for (int r = 0; r < MR; ++r) acc[r] = W::Zero();
  } else {
    for (int r = 0; r < MR; ++r) acc[r] = W::MaskzLoad(m, c + r * ldc);
  }
  for (Index p = 0; p < pc; ++p) {
    const typename W::Reg bv = W::MaskzLoad(m, b + p * ldb);
    for (int r = 0; r < MR; ++r)
      acc[r] = W::Fma(W::Broadcast(ap[p * MR + r]), bv, acc[r]);
  }
  for (int r = 0; r < MR; ++r) W::MaskStore(c + r * ldc, m, acc[r]);
}

template <int MR, typename T>
inline void RowBlockTN(bool first, Index i, Index m, Index n, Index p0,
                       Index pc, const T* a, const T* b, T* c, T* apack) {
  using W = V<T>;
  constexpr Index kW = W::kW;
  const Index nv = n & ~(kW - 1);
  for (Index p = 0; p < pc; ++p) {
    const T* src = a + (p0 + p) * m + i;
    for (int r = 0; r < MR; ++r) apack[p * MR + r] = src[r];
  }
  const typename W::Mask full = W::Tail(kW == 8 ? 8 : 16);
  for (Index j = 0; j < nv; j += kW)
    MicroPackedA<MR, T>(first, pc, full, apack, b + p0 * n + j, n,
                        c + i * n + j, n);
  if (nv < n)
    MicroPackedA<MR, T>(first, pc, W::Tail(n - nv), apack, b + p0 * n + nv, n,
                        c + i * n + nv, n);
}

template <typename T>
void GemmTNPanelAvx512(Index i0, Index i1, Index m, Index k, Index n,
                       const T* a, const T* b, T* c) {
  if (k == 0) {
    std::fill(c + i0 * n, c + i1 * n, T(0));
    return;
  }
  alignas(64) T apack[kKc * 8];
  for (Index p0 = 0; p0 < k; p0 += kKc) {
    const bool first = p0 == 0;
    const Index pc = std::min(k - p0, kKc);
    Index i = i0;
    for (; i + 8 <= i1; i += 8)
      RowBlockTN<8>(first, i, m, n, p0, pc, a, b, c, apack);
    if (i1 - i >= 4) {
      RowBlockTN<4>(first, i, m, n, p0, pc, a, b, c, apack);
      i += 4;
    }
    if (i1 - i >= 2) {
      RowBlockTN<2>(first, i, m, n, p0, pc, a, b, c, apack);
      i += 2;
    }
    if (i1 - i >= 1) RowBlockTN<1>(first, i, m, n, p0, pc, a, b, c, apack);
  }
}

// ---------------------------------------------------------------------------
// GemmNT: C = A * B^T with B stored (n x k). Reduction-axis vectorization:
// each output element owns one vector accumulator finished by the fixed
// HSum; the masked k-tail runs the same fma chain with dead lanes. A 2x4
// element block shares the a/b row loads; per-element arithmetic equals
// VecDot regardless of blocking.

template <typename T>
inline T VecDot(Index k, const T* x, const T* y) {
  using W = V<T>;
  constexpr Index kW = W::kW;
  const Index kv = k & ~(kW - 1);
  typename W::Reg acc = W::Zero();
  for (Index p = 0; p < kv; p += kW)
    acc = W::Fma(W::Load(x + p), W::Load(y + p), acc);
  if (kv < k) {
    const typename W::Mask m = W::Tail(k - kv);
    acc = W::Fma(W::MaskzLoad(m, x + kv), W::MaskzLoad(m, y + kv), acc);
  }
  return W::HSum(acc);
}

template <int MR, typename T>
inline void NTBlock4(Index i, Index j, Index k, Index n, const T* a,
                     const T* b, T* c) {
  using W = V<T>;
  constexpr Index kW = W::kW;
  const Index kv = k & ~(kW - 1);
  typename W::Reg acc[MR][4];
  for (int r = 0; r < MR; ++r)
    for (int jj = 0; jj < 4; ++jj) acc[r][jj] = W::Zero();
  for (Index p = 0; p < kv; p += kW) {
    typename W::Reg av[MR];
    for (int r = 0; r < MR; ++r) av[r] = W::Load(a + (i + r) * k + p);
    for (int jj = 0; jj < 4; ++jj) {
      const typename W::Reg bv = W::Load(b + (j + jj) * k + p);
      for (int r = 0; r < MR; ++r) acc[r][jj] = W::Fma(av[r], bv, acc[r][jj]);
    }
  }
  if (kv < k) {
    const typename W::Mask m = W::Tail(k - kv);
    typename W::Reg av[MR];
    for (int r = 0; r < MR; ++r) av[r] = W::MaskzLoad(m, a + (i + r) * k + kv);
    for (int jj = 0; jj < 4; ++jj) {
      const typename W::Reg bv = W::MaskzLoad(m, b + (j + jj) * k + kv);
      for (int r = 0; r < MR; ++r) acc[r][jj] = W::Fma(av[r], bv, acc[r][jj]);
    }
  }
  for (int r = 0; r < MR; ++r)
    for (int jj = 0; jj < 4; ++jj)
      c[(i + r) * n + j + jj] = W::HSum(acc[r][jj]);
}

template <typename T>
void GemmNTPanelAvx512(Index i0, Index i1, Index k, Index n, const T* a,
                       const T* b, T* c) {
  const Index n4 = n & ~Index{3};
  Index i = i0;
  for (; i + 2 <= i1; i += 2) {
    for (Index j = 0; j < n4; j += 4) NTBlock4<2>(i, j, k, n, a, b, c);
    for (Index j = n4; j < n; ++j) {
      c[i * n + j] = VecDot(k, a + i * k, b + j * k);
      c[(i + 1) * n + j] = VecDot(k, a + (i + 1) * k, b + j * k);
    }
  }
  if (i < i1) {
    for (Index j = 0; j < n4; j += 4) NTBlock4<1>(i, j, k, n, a, b, c);
    for (Index j = n4; j < n; ++j)
      c[i * n + j] = VecDot(k, a + i * k, b + j * k);
  }
}

// ---------------------------------------------------------------------------
// Contiguous-range vector ops: full vectors plus one masked tail vector.

template <typename T>
void AxpyRangeAvx512(Index n, T alpha, const T* x, T* y) {
  using W = V<T>;
  const typename W::Reg av = W::Broadcast(alpha);
  const Index nv = n & ~(W::kW - 1);
  Index i = 0;
  for (; i < nv; i += W::kW)
    W::Store(y + i, W::Fma(av, W::Load(x + i), W::Load(y + i)));
  if (i < n) {
    const typename W::Mask m = W::Tail(n - i);
    W::MaskStore(y + i, m,
                 W::Fma(av, W::MaskzLoad(m, x + i), W::MaskzLoad(m, y + i)));
  }
}

template <typename T>
void AddScaledRangeAvx512(Index n, const T* x, T alpha, const T* y, T* out) {
  using W = V<T>;
  const typename W::Reg av = W::Broadcast(alpha);
  const Index nv = n & ~(W::kW - 1);
  Index i = 0;
  for (; i < nv; i += W::kW)
    W::Store(out + i, W::Fma(av, W::Load(y + i), W::Load(x + i)));
  if (i < n) {
    const typename W::Mask m = W::Tail(n - i);
    W::MaskStore(out + i, m,
                 W::Fma(av, W::MaskzLoad(m, y + i), W::MaskzLoad(m, x + i)));
  }
}

template <typename T>
void ScaleRangeAvx512(Index n, T alpha, T* x) {
  using W = V<T>;
  const typename W::Reg av = W::Broadcast(alpha);
  const Index nv = n & ~(W::kW - 1);
  Index i = 0;
  for (; i < nv; i += W::kW) W::Store(x + i, W::Mul(av, W::Load(x + i)));
  if (i < n) {
    const typename W::Mask m = W::Tail(n - i);
    W::MaskStore(x + i, m, W::Mul(av, W::MaskzLoad(m, x + i)));
  }
}

// Reduction partials over one fixed-grid chunk: two vector accumulator
// chains combined in a fixed order, then the scalar tail in element order.

template <typename T>
T SumRangeAvx512(Index n, const T* x) {
  using W = V<T>;
  const Index n2 = n & ~(2 * W::kW - 1);
  typename W::Reg acc0 = W::Zero();
  typename W::Reg acc1 = W::Zero();
  Index i = 0;
  for (; i < n2; i += 2 * W::kW) {
    acc0 = W::Add(acc0, W::Load(x + i));
    acc1 = W::Add(acc1, W::Load(x + i + W::kW));
  }
  T s = W::HSum(W::Add(acc0, acc1));
  for (; i < n; ++i) s += x[i];
  return s;
}

template <typename T>
T DotRangeAvx512(Index n, const T* x, const T* y) {
  using W = V<T>;
  const Index n2 = n & ~(2 * W::kW - 1);
  typename W::Reg acc0 = W::Zero();
  typename W::Reg acc1 = W::Zero();
  Index i = 0;
  for (; i < n2; i += 2 * W::kW) {
    acc0 = W::Fma(W::Load(x + i), W::Load(y + i), acc0);
    acc1 = W::Fma(W::Load(x + i + W::kW), W::Load(y + i + W::kW), acc1);
  }
  T s = W::HSum(W::Add(acc0, acc1));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

// ---------------------------------------------------------------------------
// Transcendentals: the shared 256-bit functions (see file comment).

void TanhRangeAvx512(Index n, const double* x, double* out) {
  x86math::MapRangePd<x86math::TanhPd>(n, x, out);
}
void SigmoidRangeAvx512(Index n, const double* x, double* out) {
  x86math::MapRangePd<x86math::SigmoidPd>(n, x, out);
}
void ExpRangeAvx512(Index n, const double* x, double* out) {
  x86math::MapRangePd<x86math::ExpPd>(n, x, out);
}
void TanhRangeAvx512F32(Index n, const float* x, float* out) {
  x86math::MapRangePs<x86math::TanhPs>(n, x, out);
}
void SigmoidRangeAvx512F32(Index n, const float* x, float* out) {
  x86math::MapRangePs<x86math::SigmoidPs>(n, x, out);
}
void ExpRangeAvx512F32(Index n, const float* x, float* out) {
  x86math::MapRangePs<x86math::ExpPs>(n, x, out);
}

// Batched-row movement: 512-bit copies with a masked tail; bitwise by
// construction.
template <typename T>
inline void CopyRowAvx512(Index cols, const T* s, T* d) {
  using W = V<T>;
  Index j = 0;
  for (; j + W::kW <= cols; j += W::kW) W::Store(d + j, W::Load(s + j));
  if (j < cols) {
    const typename W::Mask m = W::Tail(cols - j);
    W::MaskStore(d + j, m, W::MaskzLoad(m, s + j));
  }
}

template <typename T>
void MaskedRowUpdateRowsAvx512(Index rows, Index cols,
                               const unsigned char* mask, const T* src,
                               T* dst) {
  for (Index r = 0; r < rows; ++r)
    if (mask[r]) CopyRowAvx512(cols, src + r * cols, dst + r * cols);
}

template <typename T>
void SelectRowsRangeAvx512(Index count, Index cols, const Index* rows,
                           const T* src, T* dst) {
  for (Index i = 0; i < count; ++i)
    CopyRowAvx512(cols, src + rows[i] * cols, dst + i * cols);
}

template <typename T>
void ScatterRowsRangeAvx512(Index count, Index cols, const Index* rows,
                            const T* src, T* dst) {
  for (Index i = 0; i < count; ++i)
    CopyRowAvx512(cols, src + i * cols, dst + rows[i] * cols);
}

}  // namespace

constinit const KernelTable<double>  // dtype:ok — per-dtype table
    kAvx512TableF64 = {
        GemmPanelAvx512<double>,    // dtype:ok — f64 instantiation
        GemmTNPanelAvx512<double>,  // dtype:ok
        GemmNTPanelAvx512<double>,  // dtype:ok
        AxpyRangeAvx512<double>,    // dtype:ok
        AddScaledRangeAvx512<double>,  // dtype:ok
        ScaleRangeAvx512<double>,   // dtype:ok
        SumRangeAvx512<double>,     // dtype:ok
        DotRangeAvx512<double>,     // dtype:ok
        TanhRangeAvx512, SigmoidRangeAvx512, ExpRangeAvx512,
        MaskedRowUpdateRowsAvx512<double>,  // dtype:ok
        SelectRowsRangeAvx512<double>,      // dtype:ok
        ScatterRowsRangeAvx512<double>,     // dtype:ok
};

constinit const KernelTable<float> kAvx512TableF32 = {
    GemmPanelAvx512<float>,      GemmTNPanelAvx512<float>,
    GemmNTPanelAvx512<float>,
    AxpyRangeAvx512<float>,      AddScaledRangeAvx512<float>,
    ScaleRangeAvx512<float>,     SumRangeAvx512<float>,
    DotRangeAvx512<float>,
    TanhRangeAvx512F32,          SigmoidRangeAvx512F32, ExpRangeAvx512F32,
    MaskedRowUpdateRowsAvx512<float>,
    SelectRowsRangeAvx512<float>,
    ScatterRowsRangeAvx512<float>,
};

}  // namespace diffode::kernels::detail

#endif  // DIFFODE_HAS_AVX512_BUILD
