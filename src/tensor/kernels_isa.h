#ifndef DIFFODE_TENSOR_KERNELS_ISA_H_
#define DIFFODE_TENSOR_KERNELS_ISA_H_

#include "tensor/shape.h"

// Internal contract between the kernel dispatch layer (kernels.cc) and the
// per-ISA backends (kernels_scalar.cc, kernels_avx2.cc, kernels_avx512.cc).
// Not part of the public kernel API.
//
// The split of responsibilities keeps the determinism contract in one place:
// kernels.cc owns ALL threading — the fixed chunk grids of ParallelFor /
// ReduceSum and the chunk-ordered combination of reduction partials — while
// a backend provides strictly serial bodies:
//
//   * GEMM row-panel functions, called with fixed panel bounds [i0, i1).
//     A backend must compute each c[i][j] by a rule that depends only on
//     (i, j, m, k, n) — never on the panel bounds — so that any row
//     partition of the same problem produces bitwise-identical output.
//   * Contiguous-range vector ops and elementwise maps (pure per-element
//     functions, trivially partition-independent).
//   * Reduction partials over one chunk of the fixed 4096-element grid
//     (kernels::kReductionGrain). The backend fixes the intra-chunk
//     association (e.g. 4 SIMD lanes combined in lane order); kernels.cc
//     sums the chunk partials in chunk order.
//
// Dtype: the table is a template over the element type; each backend
// provides one table per supported dtype (f64 and f32). A backend's f32
// kernels carry the same determinism contract at float width.
namespace diffode {
using Scalar = double;  // dtype:ok — mirrors tensor/tensor.h (sits below it)
}  // namespace diffode

namespace diffode::kernels::detail {

template <typename T>
struct KernelTable {
  // C = A * B row panel, A (m x k), B (k x n), all row-major.
  void (*gemm_panel)(Index i0, Index i1, Index k, Index n, const T* a,
                     const T* b, T* c);
  // C = A^T * B row panel with A stored (k x m).
  void (*gemm_tn_panel)(Index i0, Index i1, Index m, Index k, Index n,
                        const T* a, const T* b, T* c);
  // C = A * B^T row panel with B stored (n x k).
  void (*gemm_nt_panel)(Index i0, Index i1, Index k, Index n, const T* a,
                        const T* b, T* c);

  // Contiguous-range vector ops (serial; caller slices the range).
  void (*axpy)(Index n, T alpha, const T* x, T* y);
  void (*add_scaled)(Index n, const T* x, T alpha, const T* y, T* out);
  void (*scale)(Index n, T alpha, T* x);

  // Serial reduction partials over one chunk.
  T (*sum)(Index n, const T* x);
  T (*dot)(Index n, const T* x, const T* y);

  // Contiguous-range transcendental maps (out may alias x).
  void (*tanh)(Index n, const T* x, T* out);
  void (*sigmoid)(Index n, const T* x, T* out);
  void (*exp)(Index n, const T* x, T* out);

  // Batched-row movement (serial; pure copies, so bitwise on any backend).
  // dst[r] = src[r] for rows whose mask byte is non-zero; others untouched.
  void (*masked_row_update)(Index rows, Index cols, const unsigned char* mask,
                            const T* src, T* dst);
  // dst[i] = src[rows[i]] — gather `count` rows into a packed block.
  void (*select_rows)(Index count, Index cols, const Index* rows, const T* src,
                      T* dst);
  // dst[rows[i]] = src[i] — scatter a packed block back.
  void (*scatter_rows)(Index count, Index cols, const Index* rows,
                       const T* src, T* dst);
};

// Backend tables are constant-initialized globals (function addresses are
// address constants), so dispatch in kernels.cc is a compare plus a constant
// address — no function-local-static guard on the per-op hot path.

// Portable C++ backend; always available.
extern const KernelTable<double> kScalarTableF64;  // dtype:ok — f64 table
extern const KernelTable<float> kScalarTableF32;

// AVX2+FMA backend; only linked on x86-64 builds (DIFFODE_HAS_AVX2_BUILD).
// Callers must gate on simd::IsaSupported before dispatching to it.
#if DIFFODE_HAS_AVX2_BUILD
extern const KernelTable<double> kAvx2TableF64;  // dtype:ok — f64 table
extern const KernelTable<float> kAvx2TableF32;
#endif

// AVX-512 backend (F+DQ); only linked when the toolchain can target it
// (DIFFODE_HAS_AVX512_BUILD). Same gating rule as the AVX2 table.
#if DIFFODE_HAS_AVX512_BUILD
extern const KernelTable<double> kAvx512TableF64;  // dtype:ok — f64 table
extern const KernelTable<float> kAvx512TableF32;
#endif

}  // namespace diffode::kernels::detail

#endif  // DIFFODE_TENSOR_KERNELS_ISA_H_
