#ifndef DIFFODE_TENSOR_KERNELS_X86_MATH_H_
#define DIFFODE_TENSOR_KERNELS_X86_MATH_H_

// 256-bit vector transcendentals shared by the x86 SIMD backends
// (kernels_avx2.cc and kernels_avx512.cc). Only those TUs may include this
// header: it uses AVX2+FMA intrinsics and must be compiled with the
// corresponding target flags. Keeping one copy means the AVX2 and AVX-512
// ISAs evaluate exp/tanh/sigmoid with identical arithmetic — the wider ISA
// only changes the GEMM/vector-op kernels, which is where its speed lives.
//
// The float versions widen to double, evaluate the double polynomial, and
// round once back to float: ~0.5 ulp (f32) accuracy for two double
// evaluations per 8 floats. The serving tier's hot loops are GEMM-bound, so
// trading transcendental throughput for accuracy and zero extra code is the
// right side of the bargain.

#include <immintrin.h>

#include <cstdint>

#include "tensor/shape.h"

namespace diffode::kernels::detail::x86math {

// ---------------------------------------------------------------------------
// Double precision (4 lanes). ExpPd is a Cephes-style exp: round-to-nearest
// argument reduction against a two-part ln2, a rational approximation of
// exp(r) on |r| <= ln2/2 (~1 ulp), and reconstruction by two half-exponent
// scalings so borderline arguments (|x| near 709) neither overflow the
// exponent field nor flush prematurely. Inputs beyond the true overflow /
// total-underflow thresholds are blended to inf / 0; NaN propagates.

inline __m256d ExpPd(__m256d x) {
  const __m256d n_f = _mm256_round_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(1.44269504088896340736)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(n_f, _mm256_set1_pd(6.93145751953125e-1), x);
  r = _mm256_fnmadd_pd(n_f, _mm256_set1_pd(1.42860682030941723212e-6), r);
  const __m256d rr = _mm256_mul_pd(r, r);
  __m256d p = _mm256_set1_pd(1.26177193074810590878e-4);
  p = _mm256_fmadd_pd(p, rr, _mm256_set1_pd(3.02994407707441961300e-2));
  p = _mm256_fmadd_pd(p, rr, _mm256_set1_pd(9.99999999999999999910e-1));
  p = _mm256_mul_pd(p, r);
  __m256d q = _mm256_set1_pd(3.00198505138664455042e-6);
  q = _mm256_fmadd_pd(q, rr, _mm256_set1_pd(2.52448340349684104192e-3));
  q = _mm256_fmadd_pd(q, rr, _mm256_set1_pd(2.27265548208155028766e-1));
  q = _mm256_fmadd_pd(q, rr, _mm256_set1_pd(2.0));
  __m256d e = _mm256_div_pd(p, _mm256_sub_pd(q, p));
  e = _mm256_fmadd_pd(e, _mm256_set1_pd(2.0), _mm256_set1_pd(1.0));
  // e *= 2^n via two factors 2^(n/2) and 2^(n - n/2): each factor's biased
  // exponent stays in the normal range for every n that can reach here.
  const __m128i n_i = _mm256_cvtpd_epi32(n_f);
  const __m128i n_half = _mm_srai_epi32(n_i, 1);
  const __m128i bias = _mm_set1_epi32(1023);
  const __m256i f0 = _mm256_slli_epi64(
      _mm256_cvtepi32_epi64(_mm_add_epi32(n_half, bias)), 52);
  const __m256i f1 = _mm256_slli_epi64(
      _mm256_cvtepi32_epi64(
          _mm_add_epi32(_mm_sub_epi32(n_i, n_half), bias)), 52);
  e = _mm256_mul_pd(_mm256_mul_pd(e, _mm256_castsi256_pd(f0)),
                    _mm256_castsi256_pd(f1));
  // exp overflows above ln(DBL_MAX) and is exactly 0 below the subnormal
  // floor; in between the two-factor scaling produces gradual underflow.
  const __m256d inf = _mm256_set1_pd(__builtin_inf());
  e = _mm256_blendv_pd(
      e, inf, _mm256_cmp_pd(x, _mm256_set1_pd(709.782712893384), _CMP_GT_OQ));
  e = _mm256_blendv_pd(
      e, _mm256_setzero_pd(),
      _mm256_cmp_pd(x, _mm256_set1_pd(-745.2), _CMP_LT_OQ));
  return e;
}

// Cephes tanh: odd rational x + x^3 P(x^2)/Q(x^2) for |x| < 0.625, else
// sign(x) * (1 - 2/(exp(2|x|) + 1)); the small-|x| polynomial avoids the
// 1 - exp cancellation near zero, the exp branch saturates to ±1 exactly.
inline __m256d TanhPd(__m256d x) {
  const __m256d sign_bit = _mm256_set1_pd(-0.0);
  const __m256d sign = _mm256_and_pd(x, sign_bit);
  const __m256d z = _mm256_andnot_pd(sign_bit, x);
  const __m256d s = _mm256_mul_pd(x, x);
  __m256d pp = _mm256_set1_pd(-9.64399179425052238628e-1);
  pp = _mm256_fmadd_pd(pp, s, _mm256_set1_pd(-9.92877231001918586564e1));
  pp = _mm256_fmadd_pd(pp, s, _mm256_set1_pd(-1.61468768441708447952e3));
  __m256d qq = _mm256_add_pd(s, _mm256_set1_pd(1.12811678491632931402e2));
  qq = _mm256_fmadd_pd(qq, s, _mm256_set1_pd(2.23548839060100448583e3));
  qq = _mm256_fmadd_pd(qq, s, _mm256_set1_pd(4.84406305325125486048e3));
  const __m256d small = _mm256_fmadd_pd(
      _mm256_mul_pd(s, x), _mm256_div_pd(pp, qq), x);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d e = ExpPd(_mm256_mul_pd(z, two));
  const __m256d big = _mm256_or_pd(
      _mm256_sub_pd(one, _mm256_div_pd(two, _mm256_add_pd(e, one))), sign);
  return _mm256_blendv_pd(big, small,
                          _mm256_cmp_pd(z, _mm256_set1_pd(0.625), _CMP_LT_OQ));
}

inline __m256d SigmoidPd(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d e = ExpPd(_mm256_sub_pd(_mm256_setzero_pd(), x));
  return _mm256_div_pd(one, _mm256_add_pd(one, e));
}

// ---------------------------------------------------------------------------
// Single precision (8 lanes): native float Cephes evaluations. These used to
// widen each half to double and run the f64 polynomials twice, which made
// every f32 transcendental MORE expensive than its f64 twin; the native
// degree-reduced polynomials stay within ~2 ulp of libm's float functions
// (tests/kernels_isa_test.cc budgets 4) at roughly 3x the throughput.

// Cephes expf: n = round(x log2 e), r = x − n ln 2 (two-step Cody–Waite),
// degree-5 polynomial for e^r on |r| <= ln(2)/2, scaled by 2^n through the
// exponent field in two factors so near-threshold inputs underflow
// gradually instead of flushing at 2^-126.
inline __m256 ExpPs(__m256 x) {
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  __m256 fx = _mm256_mul_ps(x, log2e);
  fx = _mm256_round_ps(fx, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), r);
  __m256 p = _mm256_set1_ps(1.9875691500e-4f);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.3981999507e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.3334519073e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.1665795894e-2f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.6666665459e-1f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(5.0000001201e-1f));
  const __m256 one = _mm256_set1_ps(1.0f);
  p = _mm256_fmadd_ps(p, _mm256_mul_ps(r, r), _mm256_add_ps(r, one));
  const __m256i n = _mm256_cvtps_epi32(fx);
  const __m256i n0 = _mm256_srai_epi32(n, 1);
  const __m256i n1 = _mm256_sub_epi32(n, n0);
  const __m256i bias = _mm256_set1_epi32(127);
  const __m256 f0 = _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_add_epi32(n0, bias), 23));
  const __m256 f1 = _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_add_epi32(n1, bias), 23));
  __m256 e = _mm256_mul_ps(_mm256_mul_ps(p, f0), f1);
  // expf overflows above ln(FLT_MAX) and is exactly 0 below the subnormal
  // floor; in between the two-factor scaling produces gradual underflow.
  const __m256 inf = _mm256_set1_ps(__builtin_inff());
  e = _mm256_blendv_ps(
      e, inf,
      _mm256_cmp_ps(x, _mm256_set1_ps(88.72283172607422f), _CMP_GT_OQ));
  e = _mm256_blendv_ps(
      e, _mm256_setzero_ps(),
      _mm256_cmp_ps(x, _mm256_set1_ps(-103.97f), _CMP_LT_OQ));
  return e;
}

// Cephes tanhf: odd polynomial x + x^3 P(x^2) for |x| < 0.625 — the same
// branch split as TanhPd, so cross-dtype behavior differs at no extra
// boundary — else sign(x) * (1 - 2/(exp(2|x|) + 1)).
inline __m256 TanhPs(__m256 x) {
  const __m256 sign_bit = _mm256_set1_ps(-0.0f);
  const __m256 sign = _mm256_and_ps(x, sign_bit);
  const __m256 z = _mm256_andnot_ps(sign_bit, x);
  const __m256 s = _mm256_mul_ps(x, x);
  __m256 p = _mm256_set1_ps(-5.70498872745e-3f);
  p = _mm256_fmadd_ps(p, s, _mm256_set1_ps(2.06390887954e-2f));
  p = _mm256_fmadd_ps(p, s, _mm256_set1_ps(-5.37397155531e-2f));
  p = _mm256_fmadd_ps(p, s, _mm256_set1_ps(1.33314422036e-1f));
  p = _mm256_fmadd_ps(p, s, _mm256_set1_ps(-3.33332819422e-1f));
  const __m256 small = _mm256_fmadd_ps(_mm256_mul_ps(s, x), p, x);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 two = _mm256_set1_ps(2.0f);
  const __m256 e = ExpPs(_mm256_mul_ps(z, two));
  const __m256 big = _mm256_or_ps(
      _mm256_sub_ps(one, _mm256_div_ps(two, _mm256_add_ps(e, one))), sign);
  return _mm256_blendv_ps(big, small,
                          _mm256_cmp_ps(z, _mm256_set1_ps(0.625f), _CMP_LT_OQ));
}

inline __m256 SigmoidPs(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = ExpPs(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

// ---------------------------------------------------------------------------
// Masked-tail range drivers: full vectors, then one masked vector for the
// tail elements so tails run the identical arithmetic. Usable by any backend
// whose transcendentals are the 256-bit functions above.

// Load/store mask covering the first `t` (1..3) double lanes of a tail.
inline __m256i TailMaskPd(Index t) {
  alignas(32) static const std::int64_t kMask[8] = {-1, -1, -1, -1,
                                                    0,  0,  0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMask + 4 - static_cast<int>(t)));
}

// Load/store mask covering the first `t` (1..7) float lanes of a tail.
inline __m256i TailMaskPs(Index t) {
  alignas(32) static const std::int32_t kMask[16] = {-1, -1, -1, -1, -1, -1,
                                                     -1, -1, 0,  0,  0,  0,
                                                     0,  0,  0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMask + 8 - static_cast<int>(t)));
}

template <__m256d (*F)(__m256d)>
void MapRangePd(Index n, const double* x, double* out) {  // dtype:ok — Pd helper
  Index i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, F(_mm256_loadu_pd(x + i)));
  if (i < n) {
    const __m256i mask = TailMaskPd(n - i);
    const __m256d v = _mm256_maskload_pd(x + i, mask);
    _mm256_maskstore_pd(out + i, mask, F(v));
  }
}

template <__m256 (*F)(__m256)>
void MapRangePs(Index n, const float* x, float* out) {
  Index i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(out + i, F(_mm256_loadu_ps(x + i)));
  if (i < n) {
    const __m256i mask = TailMaskPs(n - i);
    const __m256 v = _mm256_maskload_ps(x + i, mask);
    _mm256_maskstore_ps(out + i, mask, F(v));
  }
}

}  // namespace diffode::kernels::detail::x86math

#endif  // DIFFODE_TENSOR_KERNELS_X86_MATH_H_
