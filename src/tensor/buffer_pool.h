#ifndef DIFFODE_TENSOR_BUFFER_POOL_H_
#define DIFFODE_TENSOR_BUFFER_POOL_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>

#include "core/alloc_stats.h"

namespace diffode::tensor {

// Size-bucketed recycling allocator for tensor storage.
//
// Layout: allocations are rounded up to power-of-two buckets (64-byte
// minimum). Each thread owns a small free-list cache per bucket; caches
// spill to / refill from a process-wide depot in batches. The depot is
// immortal (allocated with `new`, reachable from a static pointer) so
// worker-thread teardown during process exit can never touch a destroyed
// object, and LeakSanitizer still sees every block as reachable.
//
// Activation: the pool only serves requests while a `BufferPool::Scope` is
// active on the current thread. Outside a scope every allocation takes the
// heap directly (recorded as a bypass) — but is STILL rounded to its bucket
// size, so a bypass block later freed inside a scope can be recycled safely.
// Scopes are re-entrant. The thread cache persists across scopes (the
// trainer opens a scope per step; tearing the cache down each time costs a
// depot round trip per cached block per step) and flushes to the depot only
// when the thread's pool is destroyed, or explicitly via Flush().
//
// Determinism: the pool changes where bytes live, never what is computed.
// Recycled buffers are handed out uninitialized; Tensor zero-fills (or the
// caller fully overwrites via Tensor::Uninit) exactly as it would with fresh
// heap memory.
class BufferPool {
 public:
  BufferPool();
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Allocates at least `bytes` (rounded to the bucket size). Never returns
  // nullptr (throws std::bad_alloc on exhaustion, like operator new). The
  // steady-state path — cache hit on the calling thread's free list — is
  // inline: at millions of small-tensor allocations per epoch the call
  // overhead of an out-of-line hot path is itself measurable.
  static void* Allocate(std::size_t bytes) {
    BufferPool* pool = tls_active_;
    if (pool == nullptr || !Enabled() ||
        bytes > (std::size_t{1} << kMaxShift)) {
      core::AllocStats::RecordPoolBypass();
      return ::operator new(BucketBytes(bytes));
    }
    const int bucket = BucketIndex(bytes);
    FreeBlock* head = pool->free_[bucket];
    if (head != nullptr) {
      pool->free_[bucket] = head->next;
      --pool->count_[bucket];
      core::AllocStats::RecordPoolHit();
      return head;
    }
    return pool->AllocateSlow(bucket);
  }

  // Returns a block obtained from Allocate with the same `bytes`.
  static void Deallocate(void* p, std::size_t bytes) noexcept {
    if (p == nullptr) return;
    BufferPool* pool = tls_active_;
    if (pool == nullptr || !Enabled() ||
        bytes > (std::size_t{1} << kMaxShift)) {
      ::operator delete(p);
      return;
    }
    const int bucket = BucketIndex(bytes);
    auto* block = static_cast<FreeBlock*>(p);
    block->next = pool->free_[bucket];
    pool->free_[bucket] = block;
    if (++pool->count_[bucket] >= CacheCapFor(bucket))
      pool->SpillToDepot(bucket);
  }

  // Rounded bucket capacity for a request (what Allocate really hands out).
  static std::size_t BucketBytes(std::size_t bytes) noexcept {
    return std::size_t{1} << (BucketIndex(bytes) + kMinShift);
  }

  // Master switch for A/B equivalence tests: when disabled, Allocate/
  // Deallocate degrade to plain heap calls (still bucket-rounded).
  static void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  // The calling thread's pool (created on first use).
  static BufferPool& ThreadLocal();

  // True if a Scope is active on the calling thread.
  static bool ScopeActive();

  // RAII activation of the calling thread's pool. Re-entrant.
  class Scope {
   public:
    Scope();
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    BufferPool* prev_;
  };

  // Returns every cached block on this thread to the depot (normally
  // automatic only when the thread's pool is destroyed).
  void Flush() noexcept;

 private:
  friend class Scope;

  struct FreeBlock {
    FreeBlock* next;
  };

  // Buckets: 2^6 (=64) .. 2^kMaxShift bytes. Larger requests bypass the
  // cache and go straight to the depot/heap bucket-rounded.
  static constexpr int kMinShift = 6;
  static constexpr int kMaxShift = 26;  // 64 MiB
  static constexpr int kNumBuckets = kMaxShift - kMinShift + 1;
  // Batch size for depot refills / spills.
  static constexpr int kBatch = 16;

  // Per-bucket cache cap: bounds the BYTES a thread may cache per bucket
  // (~4 MiB) rather than a flat block count, so the small buckets can hold
  // the thousands of short-lived tensors a training step cycles through
  // (a flat cap of 64 sent them to the mutex-protected depot and back
  // ~150k times per bench run) while multi-MiB buckets keep only a few
  // blocks. The floor of 2*kBatch keeps a spill from draining the cache
  // below one refill batch.
  static constexpr int CacheCapFor(int bucket) noexcept {
    const std::size_t blocks = (std::size_t{4} << 20) >> (bucket + kMinShift);
    if (blocks < static_cast<std::size_t>(2 * kBatch)) return 2 * kBatch;
    if (blocks > 4096) return 4096;
    return static_cast<int>(blocks);
  }

  // Bucket index whose capacity 2^(index + kMinShift) covers `bytes`.
  static int BucketIndex(std::size_t bytes) noexcept {
    if (bytes <= (std::size_t{1} << kMinShift)) return 0;
    return std::bit_width(bytes - 1) - kMinShift;
  }

  // Out-of-line tails of the inline fast paths: depot refill / heap
  // fallback, and the batched spill when a thread cache overflows.
  void* AllocateSlow(int bucket);
  void SpillToDepot(int bucket) noexcept;

  inline static std::atomic<bool> enabled_{true};
  inline static thread_local BufferPool* tls_active_ = nullptr;

  FreeBlock* free_[kNumBuckets] = {};
  int count_[kNumBuckets] = {};
};

// std::allocator-compatible adapter over BufferPool, with one extra
// property: the no-argument `construct(U*)` overload is a no-op, so
// `std::vector<T, PoolAllocator<T>>(n)` and `resize(n)` leave elements
// UNINITIALIZED. Tensor uses this to make zero-fill explicit and skippable
// (Tensor::Uninit) for buffers that are fully overwritten. Value-initialized
// forms (`construct(p, args...)`) behave normally.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;
  using propagate_on_container_move_assignment = std::true_type;
  using is_always_equal = std::true_type;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(BufferPool::Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    BufferPool::Deallocate(p, n * sizeof(T));
  }

  // Default-construct is a deliberate no-op for trivial T: elements come
  // back uninitialized and the owner is responsible for filling them.
  template <typename U>
  void construct(U*) noexcept {
    static_assert(std::is_trivially_default_constructible<U>::value,
                  "PoolAllocator skips default construction");
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(static_cast<Args&&>(args)...);
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>&) const noexcept {
    return false;
  }
};

}  // namespace diffode::tensor

#endif  // DIFFODE_TENSOR_BUFFER_POOL_H_
