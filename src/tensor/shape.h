#ifndef DIFFODE_TENSOR_SHAPE_H_
#define DIFFODE_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "tensor/check.h"

namespace diffode {

using Index = std::int64_t;

// Dense row-major tensor extents. Rank 0 (scalar) through rank 3 are used in
// practice; higher ranks are accepted but unused by the library.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<Index> dims) : dims_(dims) { Validate(); }
  explicit Shape(std::vector<Index> dims) : dims_(std::move(dims)) {
    Validate();
  }

  Index rank() const { return static_cast<Index>(dims_.size()); }

  Index dim(Index i) const {
    DIFFODE_CHECK_GE(i, 0);
    DIFFODE_CHECK_LT(i, rank());
    return dims_[static_cast<std::size_t>(i)];
  }

  Index numel() const {
    Index n = 1;
    for (Index d : dims_) n *= d;
    return n;
  }

  const std::vector<Index>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return dims_ != other.dims_; }

  std::string ToString() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  void Validate() const {
    for (Index d : dims_) DIFFODE_CHECK_GE(d, 0);
  }

  std::vector<Index> dims_;
};

}  // namespace diffode

#endif  // DIFFODE_TENSOR_SHAPE_H_
