#ifndef DIFFODE_TENSOR_SHAPE_H_
#define DIFFODE_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "tensor/check.h"

namespace diffode {

using Index = std::int64_t;

// Dense row-major tensor extents. Rank 0 (scalar) through rank 3 are used in
// practice; kMaxRank bounds what the library accepts. Extents live inline —
// a Shape never allocates, so tensor metadata stays off the heap in the
// training hot path.
class Shape {
 public:
  static constexpr Index kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<Index> dims) {
    DIFFODE_CHECK_LE(static_cast<Index>(dims.size()), kMaxRank);
    for (Index d : dims) {
      DIFFODE_CHECK_GE(d, 0);
      dims_[rank_++] = d;
    }
  }
  explicit Shape(const std::vector<Index>& dims) {
    DIFFODE_CHECK_LE(static_cast<Index>(dims.size()), kMaxRank);
    for (Index d : dims) {
      DIFFODE_CHECK_GE(d, 0);
      dims_[rank_++] = d;
    }
  }

  Index rank() const { return rank_; }

  Index dim(Index i) const {
    DIFFODE_CHECK_GE(i, 0);
    DIFFODE_CHECK_LT(i, rank_);
    return dims_[i];
  }

  Index numel() const {
    Index n = 1;
    for (Index i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  bool operator==(const Shape& other) const {
    if (rank_ != other.rank_) return false;
    for (Index i = 0; i < rank_; ++i)
      if (dims_[i] != other.dims_[i]) return false;
    return true;
  }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string ToString() const {
    std::string s = "[";
    for (Index i = 0; i < rank_; ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  Index dims_[kMaxRank] = {};
  Index rank_ = 0;
};

}  // namespace diffode

#endif  // DIFFODE_TENSOR_SHAPE_H_
