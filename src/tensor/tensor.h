#ifndef DIFFODE_TENSOR_TENSOR_H_
#define DIFFODE_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tensor/buffer_pool.h"
#include "tensor/check.h"
#include "tensor/shape.h"

namespace diffode {

using Scalar = double;

// Tensor storage draws from the size-bucketed buffer pool whenever a
// tensor::BufferPool::Scope is active on the current thread; otherwise the
// allocator degrades to (bucket-rounded) heap allocation.
using TensorData = std::vector<Scalar, tensor::PoolAllocator<Scalar>>;

// Dense row-major tensor of doubles. Value-semantic: copies copy the buffer.
// This is the numeric substrate for the autograd tape, the ODE solvers, and
// every model in the repository; it is deliberately small and predictable
// rather than clever (no views, no lazy evaluation, no broadcasting beyond
// the few forms models need).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), 0.0) {}
  Tensor(Shape shape, TensorData data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    DIFFODE_CHECK_EQ(shape_.numel(), static_cast<Index>(data_.size()));
  }
  Tensor(Shape shape, const std::vector<Scalar>& data)
      : shape_(std::move(shape)), data_(data.begin(), data.end()) {
    DIFFODE_CHECK_EQ(shape_.numel(), static_cast<Index>(data_.size()));
  }

  // Factories.
  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  // Allocates WITHOUT zero-filling. Only for buffers where every element is
  // written before it is read (e.g. GEMM outputs, full elementwise maps).
  static Tensor Uninit(Shape shape) {
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_.resize(static_cast<std::size_t>(t.shape_.numel()));
    return t;
  }
  static Tensor Ones(Shape shape) { return Full(std::move(shape), 1.0); }
  static Tensor Full(Shape shape, Scalar value);
  static Tensor Eye(Index n);
  static Tensor FromScalar(Scalar value);
  // Rank-1 tensor from values.
  static Tensor FromVector(const std::vector<Scalar>& values);
  // 1 x n and n x 1 matrices from values.
  static Tensor RowVector(const std::vector<Scalar>& values);
  static Tensor ColVector(const std::vector<Scalar>& values);
  // r x c matrix from row-major values.
  static Tensor FromRows(Index rows, Index cols,
                         const std::vector<Scalar>& values);

  // Metadata.
  const Shape& shape() const { return shape_; }
  Index rank() const { return shape_.rank(); }
  Index numel() const { return shape_.numel(); }
  bool empty() const { return data_.empty(); }
  // 2-D conveniences; a rank-1 tensor is treated as a single row. Inline:
  // these sit on the hot path of every elementwise loop in the tree.
  Index rows() const {
    if (rank() == 1) return 1;
    DIFFODE_CHECK_EQ(rank(), 2);
    return shape_.dim(0);
  }
  Index cols() const {
    if (rank() == 1) return shape_.dim(0);
    DIFFODE_CHECK_EQ(rank(), 2);
    return shape_.dim(1);
  }

  // Raw element access.
  Scalar* data() { return data_.data(); }
  const Scalar* data() const { return data_.data(); }
  const TensorData& values() const { return data_; }

  // Zeroes every element in place, keeping the buffer.
  void SetZero();

  Scalar& operator[](Index i) {
    DIFFODE_CHECK_GE(i, 0);
    DIFFODE_CHECK_LT(i, numel());
    return data_[static_cast<std::size_t>(i)];
  }
  Scalar operator[](Index i) const {
    DIFFODE_CHECK_GE(i, 0);
    DIFFODE_CHECK_LT(i, numel());
    return data_[static_cast<std::size_t>(i)];
  }
  Scalar& at(Index r, Index c) {
    DIFFODE_CHECK_GE(r, 0);
    DIFFODE_CHECK_LT(r, rows());
    DIFFODE_CHECK_GE(c, 0);
    DIFFODE_CHECK_LT(c, cols());
    return data_[static_cast<std::size_t>(r * cols() + c)];
  }
  Scalar at(Index r, Index c) const {
    DIFFODE_CHECK_GE(r, 0);
    DIFFODE_CHECK_LT(r, rows());
    DIFFODE_CHECK_GE(c, 0);
    DIFFODE_CHECK_LT(c, cols());
    return data_[static_cast<std::size_t>(r * cols() + c)];
  }
  // Value of a single-element tensor.
  Scalar item() const {
    DIFFODE_CHECK_EQ(numel(), 1);
    return data_[0];
  }

  // Elementwise arithmetic (shapes must match exactly).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);
  Tensor& operator+=(Scalar v);
  Tensor& operator*=(Scalar v);

  // `return a;` (not `return a += b;`): the compound assignment yields an
  // lvalue reference, and returning that expression copies the buffer where
  // returning the named parameter moves it — one whole buffer copy per
  // arithmetic op on the autograd hot path.
  friend Tensor operator+(Tensor a, const Tensor& b) {
    a += b;
    return a;
  }
  friend Tensor operator-(Tensor a, const Tensor& b) {
    a -= b;
    return a;
  }
  friend Tensor operator*(Tensor a, const Tensor& b) {
    a *= b;
    return a;
  }
  friend Tensor operator+(Tensor a, Scalar v) {
    a += v;
    return a;
  }
  friend Tensor operator+(Scalar v, Tensor a) {
    a += v;
    return a;
  }
  friend Tensor operator-(Tensor a, Scalar v) {
    a += -v;
    return a;
  }
  friend Tensor operator*(Tensor a, Scalar v) {
    a *= v;
    return a;
  }
  friend Tensor operator*(Scalar v, Tensor a) {
    a *= v;
    return a;
  }
  friend Tensor operator/(Tensor a, Scalar v) { return a *= (1.0 / v); }
  Tensor operator-() const;
  Tensor CwiseQuotient(const Tensor& other) const;

  // Applies fn to every element, returning a new tensor.
  Tensor Map(const std::function<Scalar(Scalar)>& fn) const;

  // Linear algebra (2-D unless noted; rank-1 operands act as single rows).
  Tensor MatMul(const Tensor& other) const;
  // this^T * other, without materializing the transpose (kernels::GemmTN).
  Tensor TransposedMatMul(const Tensor& other) const;
  // this * other^T, without materializing the transpose (kernels::GemmNT).
  Tensor MatMulTransposed(const Tensor& other) const;
  Tensor Transposed() const;
  Tensor Reshaped(Shape shape) const;

  // Reductions.
  Scalar Sum() const;
  Scalar Mean() const;
  Scalar MaxAbs() const;
  Scalar Max() const;
  Scalar Norm() const;  // Frobenius / L2.
  Scalar Dot(const Tensor& other) const;
  Tensor RowSums() const;  // (r x c) -> (r x 1)
  Tensor ColSums() const;  // (r x c) -> (1 x c)

  // Row slicing for 2-D tensors.
  Tensor Row(Index r) const;                   // 1 x c
  Tensor Rows(Index begin, Index count) const; // count x c
  Tensor Col(Index c) const;                   // r x 1
  void SetRow(Index r, const Tensor& row);

  // Concatenation of 2-D blocks.
  static Tensor ConcatRows(const std::vector<Tensor>& parts);
  static Tensor ConcatCols(const std::vector<Tensor>& parts);

  bool AllFinite() const;
  std::string ToString(int max_per_dim = 8) const;

 private:
  Shape shape_;
  TensorData data_;
};

}  // namespace diffode

#endif  // DIFFODE_TENSOR_TENSOR_H_
