#ifndef DIFFODE_TENSOR_TENSOR_H_
#define DIFFODE_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tensor/buffer_pool.h"
#include "tensor/check.h"
#include "tensor/shape.h"

namespace diffode {

// Default element type of the numeric stack. Training, autograd, and the
// tape are f64-only; `float` exists as an opt-in SERVING dtype reached
// through TensorT<float> (alias Tensor32) on the frozen/no-grad path.
using Scalar = double;  // dtype:ok — the one sanctioned raw spelling

// Inference dtype selector for the frozen serving path (nn::Module::Freeze,
// core::BatchedDispatch, core::BatchPredictor, diffode_cli --precision).
// kF64 is the default and is bitwise-identical to the training forward;
// kF32 casts a frozen parameter snapshot to float and runs the batched
// serving engine 8 SIMD lanes wide instead of 4.
enum class Precision {
  kF64 = 0,
  kF32 = 1,
};

// Human-readable precision name ("f64", "f32").
inline const char* PrecisionName(Precision p) {
  return p == Precision::kF32 ? "f32" : "f64";
}

// Tensor storage draws from the size-bucketed buffer pool whenever a
// tensor::BufferPool::Scope is active on the current thread; otherwise the
// allocator degrades to (bucket-rounded) heap allocation.
template <typename T>
using TensorDataT = std::vector<T, tensor::PoolAllocator<T>>;

// Dense row-major tensor over element type T (double for training, float on
// the opt-in serving tier). Value-semantic: copies copy the buffer.
// This is the numeric substrate for the autograd tape, the ODE solvers, and
// every model in the repository; it is deliberately small and predictable
// rather than clever (no views, no lazy evaluation, no broadcasting beyond
// the few forms models need).
template <typename T>
class TensorT {
 public:
  using value_type = T;

  TensorT() = default;
  explicit TensorT(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), T(0)) {}
  TensorT(Shape shape, TensorDataT<T> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    DIFFODE_CHECK_EQ(shape_.numel(), static_cast<Index>(data_.size()));
  }
  TensorT(Shape shape, const std::vector<T>& data)
      : shape_(std::move(shape)), data_(data.begin(), data.end()) {
    DIFFODE_CHECK_EQ(shape_.numel(), static_cast<Index>(data_.size()));
  }

  // Factories.
  static TensorT Zeros(Shape shape) { return TensorT(std::move(shape)); }
  // Allocates WITHOUT zero-filling. Only for buffers where every element is
  // written before it is read (e.g. GEMM outputs, full elementwise maps).
  static TensorT Uninit(Shape shape) {
    TensorT t;
    t.shape_ = std::move(shape);
    t.data_.resize(static_cast<std::size_t>(t.shape_.numel()));
    return t;
  }
  static TensorT Ones(Shape shape) { return Full(std::move(shape), T(1)); }
  static TensorT Full(Shape shape, T value);
  static TensorT Eye(Index n);
  static TensorT FromScalar(T value);
  // Rank-1 tensor from values.
  static TensorT FromVector(const std::vector<T>& values);
  // 1 x n and n x 1 matrices from values.
  static TensorT RowVector(const std::vector<T>& values);
  static TensorT ColVector(const std::vector<T>& values);
  // r x c matrix from row-major values.
  static TensorT FromRows(Index rows, Index cols,
                          const std::vector<T>& values);

  // Metadata.
  const Shape& shape() const { return shape_; }
  Index rank() const { return shape_.rank(); }
  Index numel() const { return shape_.numel(); }
  bool empty() const { return data_.empty(); }
  // 2-D conveniences; a rank-1 tensor is treated as a single row. Inline:
  // these sit on the hot path of every elementwise loop in the tree.
  Index rows() const {
    if (rank() == 1) return 1;
    DIFFODE_CHECK_EQ(rank(), 2);
    return shape_.dim(0);
  }
  Index cols() const {
    if (rank() == 1) return shape_.dim(0);
    DIFFODE_CHECK_EQ(rank(), 2);
    return shape_.dim(1);
  }

  // Raw element access.
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  const TensorDataT<T>& values() const { return data_; }

  // Zeroes every element in place, keeping the buffer.
  void SetZero();

  T& operator[](Index i) {
    DIFFODE_CHECK_GE(i, 0);
    DIFFODE_CHECK_LT(i, numel());
    return data_[static_cast<std::size_t>(i)];
  }
  T operator[](Index i) const {
    DIFFODE_CHECK_GE(i, 0);
    DIFFODE_CHECK_LT(i, numel());
    return data_[static_cast<std::size_t>(i)];
  }
  T& at(Index r, Index c) {
    DIFFODE_CHECK_GE(r, 0);
    DIFFODE_CHECK_LT(r, rows());
    DIFFODE_CHECK_GE(c, 0);
    DIFFODE_CHECK_LT(c, cols());
    return data_[static_cast<std::size_t>(r * cols() + c)];
  }
  T at(Index r, Index c) const {
    DIFFODE_CHECK_GE(r, 0);
    DIFFODE_CHECK_LT(r, rows());
    DIFFODE_CHECK_GE(c, 0);
    DIFFODE_CHECK_LT(c, cols());
    return data_[static_cast<std::size_t>(r * cols() + c)];
  }
  // Value of a single-element tensor.
  T item() const {
    DIFFODE_CHECK_EQ(numel(), 1);
    return data_[0];
  }

  // Elementwise arithmetic (shapes must match exactly).
  TensorT& operator+=(const TensorT& other);
  TensorT& operator-=(const TensorT& other);
  TensorT& operator*=(const TensorT& other);
  TensorT& operator+=(T v);
  TensorT& operator*=(T v);

  // `return a;` (not `return a += b;`): the compound assignment yields an
  // lvalue reference, and returning that expression copies the buffer where
  // returning the named parameter moves it — one whole buffer copy per
  // arithmetic op on the autograd hot path.
  friend TensorT operator+(TensorT a, const TensorT& b) {
    a += b;
    return a;
  }
  friend TensorT operator-(TensorT a, const TensorT& b) {
    a -= b;
    return a;
  }
  friend TensorT operator*(TensorT a, const TensorT& b) {
    a *= b;
    return a;
  }
  friend TensorT operator+(TensorT a, T v) {
    a += v;
    return a;
  }
  friend TensorT operator+(T v, TensorT a) {
    a += v;
    return a;
  }
  friend TensorT operator-(TensorT a, T v) {
    a += -v;
    return a;
  }
  friend TensorT operator*(TensorT a, T v) {
    a *= v;
    return a;
  }
  friend TensorT operator*(T v, TensorT a) {
    a *= v;
    return a;
  }
  friend TensorT operator/(TensorT a, T v) { return a *= (T(1) / v); }
  TensorT operator-() const;
  TensorT CwiseQuotient(const TensorT& other) const;

  // Applies fn to every element, returning a new tensor.
  TensorT Map(const std::function<T(T)>& fn) const;

  // Linear algebra (2-D unless noted; rank-1 operands act as single rows).
  TensorT MatMul(const TensorT& other) const;
  // this^T * other, without materializing the transpose (kernels::GemmTN).
  TensorT TransposedMatMul(const TensorT& other) const;
  // this * other^T, without materializing the transpose (kernels::GemmNT).
  TensorT MatMulTransposed(const TensorT& other) const;
  TensorT Transposed() const;
  TensorT Reshaped(Shape shape) const;

  // Reductions.
  T Sum() const;
  T Mean() const;
  T MaxAbs() const;
  T Max() const;
  T Norm() const;  // Frobenius / L2.
  T Dot(const TensorT& other) const;
  TensorT RowSums() const;  // (r x c) -> (r x 1)
  TensorT ColSums() const;  // (r x c) -> (1 x c)

  // Row slicing for 2-D tensors.
  TensorT Row(Index r) const;                    // 1 x c
  TensorT Rows(Index begin, Index count) const;  // count x c
  TensorT Col(Index c) const;                    // r x 1
  void SetRow(Index r, const TensorT& row);

  // Concatenation of 2-D blocks.
  static TensorT ConcatRows(const std::vector<TensorT>& parts);
  static TensorT ConcatCols(const std::vector<TensorT>& parts);

  // Element-by-element dtype conversion (same shape). The serving tier uses
  // Cast<float>() to snapshot frozen f64 parameters and Cast<double>() to
  // widen f32 results back into the uniform f64 Result surface.
  template <typename U>
  TensorT<U> Cast() const {
    TensorT<U> out = TensorT<U>::Uninit(shape_);
    U* dst = out.data();
    for (Index i = 0; i < numel(); ++i)
      dst[i] = static_cast<U>(data_[static_cast<std::size_t>(i)]);
    return out;
  }

  bool AllFinite() const;
  std::string ToString(int max_per_dim = 8) const;

 private:
  Shape shape_;
  TensorDataT<T> data_;
};

extern template class TensorT<double>;  // dtype:ok — explicit instantiation
extern template class TensorT<float>;

// The training/autograd tensor (f64) and the serving-tier tensor (f32).
using Tensor = TensorT<Scalar>;
using Tensor32 = TensorT<float>;
using TensorData = TensorDataT<Scalar>;

}  // namespace diffode

#endif  // DIFFODE_TENSOR_TENSOR_H_
