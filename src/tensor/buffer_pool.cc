#include "tensor/buffer_pool.h"

#include <atomic>
#include <mutex>

#include "core/alloc_stats.h"

namespace diffode::tensor {
namespace {

using core::AllocStats;

// Process-wide reservoir of recycled blocks. Immortal by design: worker
// threads may flush their caches here during thread_local destruction at
// process teardown, which must never race a depot destructor. The single
// static pointer keeps every block reachable for LeakSanitizer.
class Depot {
 public:
  static Depot& Get() {
    static Depot* d = new Depot();
    return *d;
  }

  // Moves up to `want` blocks of `bucket` into `out` (a singly linked list);
  // returns how many were taken.
  int Grab(int bucket, int want, void** out) {
    std::lock_guard<std::mutex> lock(mu_);
    int taken = 0;
    BufferPoolFreeBlock* head = free_[bucket];
    BufferPoolFreeBlock* chain = nullptr;
    while (head != nullptr && taken < want) {
      BufferPoolFreeBlock* next = head->next;
      head->next = chain;
      chain = head;
      head = next;
      ++taken;
    }
    free_[bucket] = head;
    *out = chain;
    return taken;
  }

  // Takes ownership of a pre-linked chain of `n` blocks.
  void Put(int bucket, void* chain_head, void* chain_tail) {
    auto* head = static_cast<BufferPoolFreeBlock*>(chain_head);
    auto* tail = static_cast<BufferPoolFreeBlock*>(chain_tail);
    std::lock_guard<std::mutex> lock(mu_);
    tail->next = free_[bucket];
    free_[bucket] = head;
  }

  struct BufferPoolFreeBlock {
    BufferPoolFreeBlock* next;
  };

 private:
  static constexpr int kNumBuckets = 26 - 6 + 1;
  std::mutex mu_;
  BufferPoolFreeBlock* free_[kNumBuckets] = {};
};

std::atomic<bool> g_enabled{true};

thread_local BufferPool* tls_active_pool = nullptr;

}  // namespace

BufferPool::BufferPool() = default;

BufferPool::~BufferPool() { Flush(); }

std::size_t BufferPool::BucketBytes(std::size_t bytes) noexcept {
  std::size_t cap = std::size_t{1} << kMinShift;
  while (cap < bytes) cap <<= 1;
  return cap;
}

int BufferPool::BucketIndex(std::size_t bytes) noexcept {
  int shift = kMinShift;
  std::size_t cap = std::size_t{1} << kMinShift;
  while (cap < bytes) {
    cap <<= 1;
    ++shift;
  }
  return shift - kMinShift;
}

void BufferPool::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool BufferPool::Enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

BufferPool& BufferPool::ThreadLocal() {
  static thread_local BufferPool pool;
  return pool;
}

bool BufferPool::ScopeActive() { return tls_active_pool != nullptr; }

BufferPool::Scope::Scope() : prev_(tls_active_pool) {
  tls_active_pool = &BufferPool::ThreadLocal();
}

BufferPool::Scope::~Scope() {
  if (prev_ == nullptr) tls_active_pool->Flush();
  tls_active_pool = prev_;
}

void* BufferPool::Allocate(std::size_t bytes) {
  // Always carve out the full bucket so any block — pooled or bypass — can
  // later be recycled under the same bucket.
  const std::size_t cap = BucketBytes(bytes);
  BufferPool* pool = tls_active_pool;
  if (pool == nullptr || !Enabled() || bytes > (std::size_t{1} << kMaxShift)) {
    AllocStats::RecordPoolBypass();
    return ::operator new(cap);
  }
  return pool->AllocateImpl(BucketIndex(bytes));
}

void BufferPool::Deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  BufferPool* pool = tls_active_pool;
  if (pool == nullptr || !Enabled() || bytes > (std::size_t{1} << kMaxShift)) {
    ::operator delete(p);
    return;
  }
  pool->DeallocateImpl(p, BucketIndex(bytes));
}

void* BufferPool::AllocateImpl(int bucket) {
  FreeBlock* head = free_[bucket];
  if (head != nullptr) {
    free_[bucket] = head->next;
    --count_[bucket];
    AllocStats::RecordPoolHit();
    return head;
  }
  // Refill from the depot in a batch.
  void* chain = nullptr;
  int got = Depot::Get().Grab(bucket, kBatch, &chain);
  if (got > 0) {
    auto* c = static_cast<FreeBlock*>(chain);
    FreeBlock* result = c;
    free_[bucket] = c->next;
    count_[bucket] = got - 1;
    AllocStats::RecordDepotHit();
    return result;
  }
  AllocStats::RecordPoolMiss();
  return ::operator new(std::size_t{1} << (bucket + kMinShift));
}

void BufferPool::DeallocateImpl(void* p, int bucket) noexcept {
  auto* block = static_cast<FreeBlock*>(p);
  block->next = free_[bucket];
  free_[bucket] = block;
  ++count_[bucket];
  if (count_[bucket] >= kCacheCap) {
    // Spill a batch (from the head) back to the depot.
    FreeBlock* head = free_[bucket];
    FreeBlock* tail = head;
    for (int i = 1; i < kBatch; ++i) tail = tail->next;
    free_[bucket] = tail->next;
    count_[bucket] -= kBatch;
    Depot::Get().Put(bucket, head, tail);
  }
}

void BufferPool::Flush() noexcept {
  for (int b = 0; b < kNumBuckets; ++b) {
    FreeBlock* head = free_[b];
    if (head == nullptr) continue;
    FreeBlock* tail = head;
    while (tail->next != nullptr) tail = tail->next;
    Depot::Get().Put(b, head, tail);
    free_[b] = nullptr;
    count_[b] = 0;
  }
}

}  // namespace diffode::tensor
