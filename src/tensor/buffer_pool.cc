#include "tensor/buffer_pool.h"

#include <mutex>

namespace diffode::tensor {
namespace {

using core::AllocStats;

// Process-wide reservoir of recycled blocks. Immortal by design: worker
// threads may flush their caches here during thread_local destruction at
// process teardown, which must never race a depot destructor. The single
// static pointer keeps every block reachable for LeakSanitizer.
class Depot {
 public:
  static Depot& Get() {
    static Depot* d = new Depot();
    return *d;
  }

  // Moves up to `want` blocks of `bucket` into `out` (a singly linked list);
  // returns how many were taken.
  int Grab(int bucket, int want, void** out) {
    std::lock_guard<std::mutex> lock(mu_);
    int taken = 0;
    BufferPoolFreeBlock* head = free_[bucket];
    BufferPoolFreeBlock* chain = nullptr;
    while (head != nullptr && taken < want) {
      BufferPoolFreeBlock* next = head->next;
      head->next = chain;
      chain = head;
      head = next;
      ++taken;
    }
    free_[bucket] = head;
    *out = chain;
    return taken;
  }

  // Takes ownership of a pre-linked chain of `n` blocks.
  void Put(int bucket, void* chain_head, void* chain_tail) {
    auto* head = static_cast<BufferPoolFreeBlock*>(chain_head);
    auto* tail = static_cast<BufferPoolFreeBlock*>(chain_tail);
    std::lock_guard<std::mutex> lock(mu_);
    tail->next = free_[bucket];
    free_[bucket] = head;
  }

  struct BufferPoolFreeBlock {
    BufferPoolFreeBlock* next;
  };

 private:
  static constexpr int kNumBuckets = 26 - 6 + 1;
  std::mutex mu_;
  BufferPoolFreeBlock* free_[kNumBuckets] = {};
};

}  // namespace

BufferPool::BufferPool() = default;

BufferPool::~BufferPool() { Flush(); }

BufferPool& BufferPool::ThreadLocal() {
  static thread_local BufferPool pool;
  return pool;
}

bool BufferPool::ScopeActive() { return tls_active_ != nullptr; }

BufferPool::Scope::Scope() : prev_(tls_active_) {
  tls_active_ = &BufferPool::ThreadLocal();
}

BufferPool::Scope::~Scope() {
  // The cache deliberately survives scope exit: the trainer opens a scope
  // per step, and the next step wants the same warm blocks without a depot
  // round trip. ~BufferPool (thread teardown) flushes to the depot.
  tls_active_ = prev_;
}

void* BufferPool::AllocateSlow(int bucket) {
  // Refill from the depot in a batch.
  void* chain = nullptr;
  int got = Depot::Get().Grab(bucket, kBatch, &chain);
  if (got > 0) {
    auto* c = static_cast<FreeBlock*>(chain);
    FreeBlock* result = c;
    free_[bucket] = c->next;
    count_[bucket] = got - 1;
    AllocStats::RecordDepotHit();
    return result;
  }
  AllocStats::RecordPoolMiss();
  return ::operator new(std::size_t{1} << (bucket + kMinShift));
}

void BufferPool::SpillToDepot(int bucket) noexcept {
  // Spill a batch (from the head) back to the depot.
  FreeBlock* head = free_[bucket];
  FreeBlock* tail = head;
  for (int i = 1; i < kBatch; ++i) tail = tail->next;
  free_[bucket] = tail->next;
  count_[bucket] -= kBatch;
  Depot::Get().Put(bucket, head, tail);
}

void BufferPool::Flush() noexcept {
  for (int b = 0; b < kNumBuckets; ++b) {
    FreeBlock* head = free_[b];
    if (head == nullptr) continue;
    FreeBlock* tail = head;
    while (tail->next != nullptr) tail = tail->next;
    Depot::Get().Put(b, head, tail);
    free_[b] = nullptr;
    count_[b] = 0;
  }
}

}  // namespace diffode::tensor
