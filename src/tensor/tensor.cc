#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "tensor/kernels.h"

namespace diffode {

template <typename T>
TensorT<T> TensorT<T>::Full(Shape shape, T value) {
  TensorT t = Uninit(std::move(shape));
  for (auto& v : t.data_) v = value;
  return t;
}

template <typename T>
TensorT<T> TensorT<T>::Eye(Index n) {
  TensorT t(Shape{n, n});
  for (Index i = 0; i < n; ++i) t.at(i, i) = T(1);
  return t;
}

template <typename T>
TensorT<T> TensorT<T>::FromScalar(T value) {
  TensorT t(Shape{});
  t.data_ = {value};
  return t;
}

template <typename T>
TensorT<T> TensorT<T>::FromVector(const std::vector<T>& values) {
  return TensorT(Shape{static_cast<Index>(values.size())}, values);
}

template <typename T>
TensorT<T> TensorT<T>::RowVector(const std::vector<T>& values) {
  return TensorT(Shape{1, static_cast<Index>(values.size())}, values);
}

template <typename T>
TensorT<T> TensorT<T>::ColVector(const std::vector<T>& values) {
  return TensorT(Shape{static_cast<Index>(values.size()), 1}, values);
}

template <typename T>
TensorT<T> TensorT<T>::FromRows(Index rows, Index cols,
                                const std::vector<T>& values) {
  return TensorT(Shape{rows, cols}, values);
}

template <typename T>
void TensorT<T>::SetZero() {
  std::fill(data_.begin(), data_.end(), T(0));
}

template <typename T>
TensorT<T>& TensorT<T>::operator+=(const TensorT& other) {
  DIFFODE_CHECK_MSG(shape_ == other.shape_, "operator+= shape mismatch");
  kernels::Axpy(numel(), T(1), other.data(), data());
  return *this;
}

template <typename T>
TensorT<T>& TensorT<T>::operator-=(const TensorT& other) {
  DIFFODE_CHECK_MSG(shape_ == other.shape_, "operator-= shape mismatch");
  kernels::Axpy(numel(), T(-1), other.data(), data());
  return *this;
}

template <typename T>
TensorT<T>& TensorT<T>::operator*=(const TensorT& other) {
  DIFFODE_CHECK_MSG(shape_ == other.shape_, "operator*= shape mismatch");
  kernels::Zip(numel(), data(), other.data(), data(),
               [](T x, T y) { return x * y; });
  return *this;
}

template <typename T>
TensorT<T>& TensorT<T>::operator+=(T v) {
  kernels::Map(numel(), data(), data(), [v](T x) { return x + v; });
  return *this;
}

template <typename T>
TensorT<T>& TensorT<T>::operator*=(T v) {
  kernels::Scale(numel(), v, data());
  return *this;
}

template <typename T>
TensorT<T> TensorT<T>::operator-() const {
  TensorT out = *this;
  kernels::Scale(out.numel(), T(-1), out.data());
  return out;
}

template <typename T>
TensorT<T> TensorT<T>::CwiseQuotient(const TensorT& other) const {
  DIFFODE_CHECK_MSG(shape_ == other.shape_, "CwiseQuotient shape mismatch");
  TensorT out = *this;
  kernels::Zip(out.numel(), out.data(), other.data(), out.data(),
               [](T x, T y) { return x / y; });
  return out;
}

template <typename T>
TensorT<T> TensorT<T>::Map(const std::function<T(T)>& fn) const {
  TensorT out = *this;
  kernels::Map(out.numel(), out.data(), out.data(),
               [&fn](T x) { return fn(x); });
  return out;
}

template <typename T>
TensorT<T> TensorT<T>::MatMul(const TensorT& other) const {
  const Index m = rows();
  const Index k = cols();
  DIFFODE_CHECK_MSG(other.rows() == k, "MatMul inner-dimension mismatch");
  const Index n = other.cols();
  TensorT out = Uninit(Shape{m, n});
  kernels::Gemm(m, k, n, data(), other.data(), out.data());
  return out;
}

template <typename T>
TensorT<T> TensorT<T>::TransposedMatMul(const TensorT& other) const {
  const Index k = rows();
  const Index m = cols();
  DIFFODE_CHECK_MSG(other.rows() == k,
                    "TransposedMatMul inner-dimension mismatch");
  const Index n = other.cols();
  TensorT out = Uninit(Shape{m, n});
  kernels::GemmTN(m, k, n, data(), other.data(), out.data());
  return out;
}

template <typename T>
TensorT<T> TensorT<T>::MatMulTransposed(const TensorT& other) const {
  const Index m = rows();
  const Index k = cols();
  DIFFODE_CHECK_MSG(other.cols() == k,
                    "MatMulTransposed inner-dimension mismatch");
  const Index n = other.rows();
  TensorT out = Uninit(Shape{m, n});
  kernels::GemmNT(m, k, n, data(), other.data(), out.data());
  return out;
}

template <typename T>
TensorT<T> TensorT<T>::Transposed() const {
  const Index r = rows();
  const Index c = cols();
  TensorT out = Uninit(Shape{c, r});
  const T* src_p = data();
  T* dst = out.data();
  for (Index i = 0; i < r; ++i)
    for (Index j = 0; j < c; ++j) dst[j * r + i] = src_p[i * c + j];
  return out;
}

template <typename T>
TensorT<T> TensorT<T>::Reshaped(Shape shape) const {
  DIFFODE_CHECK_EQ(shape.numel(), numel());
  return TensorT(std::move(shape), data_);
}

template <typename T>
T TensorT<T>::Sum() const {
  return kernels::Sum(numel(), data());
}

template <typename T>
T TensorT<T>::Mean() const {
  DIFFODE_CHECK_GT(numel(), 0);
  return Sum() / static_cast<T>(numel());
}

template <typename T>
T TensorT<T>::MaxAbs() const {
  T m = T(0);
  for (T x : data_) m = std::max(m, std::fabs(x));
  return m;
}

template <typename T>
T TensorT<T>::Max() const {
  DIFFODE_CHECK_GT(numel(), 0);
  T m = data_[0];
  for (T x : data_) m = std::max(m, x);
  return m;
}

template <typename T>
T TensorT<T>::Norm() const {
  return std::sqrt(kernels::Dot(numel(), data(), data()));
}

template <typename T>
T TensorT<T>::Dot(const TensorT& other) const {
  DIFFODE_CHECK_EQ(numel(), other.numel());
  return kernels::Dot(numel(), data(), other.data());
}

template <typename T>
TensorT<T> TensorT<T>::RowSums() const {
  const Index r = rows();
  const Index c = cols();
  TensorT out = Uninit(Shape{r, 1});
  const T* src = data();
  T* dst = out.data();
  for (Index i = 0; i < r; ++i) {
    const T* row = src + i * c;
    T s = T(0);
    for (Index j = 0; j < c; ++j) s += row[j];
    dst[i] = s;
  }
  return out;
}

template <typename T>
TensorT<T> TensorT<T>::ColSums() const {
  const Index r = rows();
  const Index c = cols();
  TensorT out = Uninit(Shape{1, c});
  // Row-major accumulation: each out[j] still sums rows in increasing i
  // order (bit-identical to the column-walk it replaces) but memory access
  // is contiguous.
  T* dst = out.data();
  std::fill(dst, dst + c, T(0));
  const T* src = data();
  for (Index i = 0; i < r; ++i) {
    const T* row = src + i * c;
    for (Index j = 0; j < c; ++j) dst[j] += row[j];
  }
  return out;
}

template <typename T>
TensorT<T> TensorT<T>::Row(Index r) const {
  return Rows(r, 1);
}

template <typename T>
TensorT<T> TensorT<T>::Rows(Index begin, Index count) const {
  DIFFODE_CHECK_GE(begin, 0);
  DIFFODE_CHECK_GE(count, 0);
  DIFFODE_CHECK_LE(begin + count, rows());
  const Index c = cols();
  TensorT out = Uninit(Shape{count, c});
  std::copy(data() + begin * c, data() + (begin + count) * c, out.data());
  return out;
}

template <typename T>
TensorT<T> TensorT<T>::Col(Index c) const {
  DIFFODE_CHECK_GE(c, 0);
  DIFFODE_CHECK_LT(c, cols());
  const Index r = rows();
  const Index nc = cols();
  TensorT out = Uninit(Shape{r, 1});
  const T* src = data() + c;
  T* dst = out.data();
  for (Index i = 0; i < r; ++i) dst[i] = src[i * nc];
  return out;
}

template <typename T>
void TensorT<T>::SetRow(Index r, const TensorT& row) {
  DIFFODE_CHECK_EQ(row.numel(), cols());
  std::copy(row.data(), row.data() + cols(), data() + r * cols());
}

template <typename T>
TensorT<T> TensorT<T>::ConcatRows(const std::vector<TensorT>& parts) {
  DIFFODE_CHECK(!parts.empty());
  const Index c = parts[0].cols();
  Index total = 0;
  for (const auto& p : parts) {
    DIFFODE_CHECK_EQ(p.cols(), c);
    total += p.rows();
  }
  TensorT out = Uninit(Shape{total, c});
  T* dst = out.data();
  for (const auto& p : parts) {
    dst = std::copy(p.data(), p.data() + p.numel(), dst);
  }
  return out;
}

template <typename T>
TensorT<T> TensorT<T>::ConcatCols(const std::vector<TensorT>& parts) {
  DIFFODE_CHECK(!parts.empty());
  const Index r = parts[0].rows();
  Index total = 0;
  for (const auto& p : parts) {
    DIFFODE_CHECK_EQ(p.rows(), r);
    total += p.cols();
  }
  TensorT out = Uninit(Shape{r, total});
  T* base = out.data();
  Index c = 0;
  for (const auto& p : parts) {
    const Index pc = p.cols();
    const T* src = p.data();
    for (Index i = 0; i < r; ++i)
      std::copy(src + i * pc, src + (i + 1) * pc, base + i * total + c);
    c += pc;
  }
  return out;
}

template <typename T>
bool TensorT<T>::AllFinite() const {
  for (T x : data_)
    if (!std::isfinite(x)) return false;
  return true;
}

template <typename T>
std::string TensorT<T>::ToString(int max_per_dim) const {
  std::string s = "Tensor" + shape_.ToString() + " {";
  char buf[32];
  const Index limit = std::min<Index>(numel(), max_per_dim * max_per_dim);
  for (Index i = 0; i < limit; ++i) {
    std::snprintf(buf, sizeof(buf), "%.5g",
                  static_cast<double>(  // dtype:ok — printf varargs promotion
                      data_[static_cast<std::size_t>(i)]));
    if (i > 0) s += ", ";
    s += buf;
  }
  if (limit < numel()) s += ", ...";
  return s + "}";
}

template class TensorT<double>;  // dtype:ok — explicit instantiation
template class TensorT<float>;

}  // namespace diffode
