#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "tensor/kernels.h"

namespace diffode {

Tensor Tensor::Full(Shape shape, Scalar value) {
  Tensor t = Uninit(std::move(shape));
  for (auto& v : t.data_) v = value;
  return t;
}

Tensor Tensor::Eye(Index n) {
  Tensor t(Shape{n, n});
  for (Index i = 0; i < n; ++i) t.at(i, i) = 1.0;
  return t;
}

Tensor Tensor::FromScalar(Scalar value) {
  Tensor t(Shape{});
  t.data_ = {value};
  return t;
}

Tensor Tensor::FromVector(const std::vector<Scalar>& values) {
  return Tensor(Shape{static_cast<Index>(values.size())}, values);
}

Tensor Tensor::RowVector(const std::vector<Scalar>& values) {
  return Tensor(Shape{1, static_cast<Index>(values.size())}, values);
}

Tensor Tensor::ColVector(const std::vector<Scalar>& values) {
  return Tensor(Shape{static_cast<Index>(values.size()), 1}, values);
}

Tensor Tensor::FromRows(Index rows, Index cols,
                        const std::vector<Scalar>& values) {
  return Tensor(Shape{rows, cols}, values);
}

void Tensor::SetZero() {
  std::fill(data_.begin(), data_.end(), 0.0);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  DIFFODE_CHECK_MSG(shape_ == other.shape_, "operator+= shape mismatch");
  kernels::Axpy(numel(), 1.0, other.data(), data());
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  DIFFODE_CHECK_MSG(shape_ == other.shape_, "operator-= shape mismatch");
  kernels::Axpy(numel(), -1.0, other.data(), data());
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  DIFFODE_CHECK_MSG(shape_ == other.shape_, "operator*= shape mismatch");
  kernels::Zip(numel(), data(), other.data(), data(),
               [](Scalar x, Scalar y) { return x * y; });
  return *this;
}

Tensor& Tensor::operator+=(Scalar v) {
  kernels::Map(numel(), data(), data(), [v](Scalar x) { return x + v; });
  return *this;
}

Tensor& Tensor::operator*=(Scalar v) {
  kernels::Scale(numel(), v, data());
  return *this;
}

Tensor Tensor::operator-() const {
  Tensor out = *this;
  kernels::Scale(out.numel(), -1.0, out.data());
  return out;
}

Tensor Tensor::CwiseQuotient(const Tensor& other) const {
  DIFFODE_CHECK_MSG(shape_ == other.shape_, "CwiseQuotient shape mismatch");
  Tensor out = *this;
  kernels::Zip(out.numel(), out.data(), other.data(), out.data(),
               [](Scalar x, Scalar y) { return x / y; });
  return out;
}

Tensor Tensor::Map(const std::function<Scalar(Scalar)>& fn) const {
  Tensor out = *this;
  kernels::Map(out.numel(), out.data(), out.data(),
               [&fn](Scalar x) { return fn(x); });
  return out;
}

Tensor Tensor::MatMul(const Tensor& other) const {
  const Index m = rows();
  const Index k = cols();
  DIFFODE_CHECK_MSG(other.rows() == k, "MatMul inner-dimension mismatch");
  const Index n = other.cols();
  Tensor out = Uninit(Shape{m, n});
  kernels::Gemm(m, k, n, data(), other.data(), out.data());
  return out;
}

Tensor Tensor::TransposedMatMul(const Tensor& other) const {
  const Index k = rows();
  const Index m = cols();
  DIFFODE_CHECK_MSG(other.rows() == k,
                    "TransposedMatMul inner-dimension mismatch");
  const Index n = other.cols();
  Tensor out = Uninit(Shape{m, n});
  kernels::GemmTN(m, k, n, data(), other.data(), out.data());
  return out;
}

Tensor Tensor::MatMulTransposed(const Tensor& other) const {
  const Index m = rows();
  const Index k = cols();
  DIFFODE_CHECK_MSG(other.cols() == k,
                    "MatMulTransposed inner-dimension mismatch");
  const Index n = other.rows();
  Tensor out = Uninit(Shape{m, n});
  kernels::GemmNT(m, k, n, data(), other.data(), out.data());
  return out;
}

Tensor Tensor::Transposed() const {
  const Index r = rows();
  const Index c = cols();
  Tensor out = Uninit(Shape{c, r});
  const Scalar* src_p = data();
  Scalar* dst = out.data();
  for (Index i = 0; i < r; ++i)
    for (Index j = 0; j < c; ++j) dst[j * r + i] = src_p[i * c + j];
  return out;
}

Tensor Tensor::Reshaped(Shape shape) const {
  DIFFODE_CHECK_EQ(shape.numel(), numel());
  return Tensor(std::move(shape), data_);
}

Scalar Tensor::Sum() const { return kernels::Sum(numel(), data()); }

Scalar Tensor::Mean() const {
  DIFFODE_CHECK_GT(numel(), 0);
  return Sum() / static_cast<Scalar>(numel());
}

Scalar Tensor::MaxAbs() const {
  Scalar m = 0.0;
  for (Scalar x : data_) m = std::max(m, std::fabs(x));
  return m;
}

Scalar Tensor::Max() const {
  DIFFODE_CHECK_GT(numel(), 0);
  Scalar m = data_[0];
  for (Scalar x : data_) m = std::max(m, x);
  return m;
}

Scalar Tensor::Norm() const {
  return std::sqrt(kernels::Dot(numel(), data(), data()));
}

Scalar Tensor::Dot(const Tensor& other) const {
  DIFFODE_CHECK_EQ(numel(), other.numel());
  return kernels::Dot(numel(), data(), other.data());
}

Tensor Tensor::RowSums() const {
  const Index r = rows();
  const Index c = cols();
  Tensor out = Uninit(Shape{r, 1});
  const Scalar* src = data();
  Scalar* dst = out.data();
  for (Index i = 0; i < r; ++i) {
    const Scalar* row = src + i * c;
    Scalar s = 0.0;
    for (Index j = 0; j < c; ++j) s += row[j];
    dst[i] = s;
  }
  return out;
}

Tensor Tensor::ColSums() const {
  const Index r = rows();
  const Index c = cols();
  Tensor out = Uninit(Shape{1, c});
  // Row-major accumulation: each out[j] still sums rows in increasing i
  // order (bit-identical to the column-walk it replaces) but memory access
  // is contiguous.
  Scalar* dst = out.data();
  std::fill(dst, dst + c, 0.0);
  const Scalar* src = data();
  for (Index i = 0; i < r; ++i) {
    const Scalar* row = src + i * c;
    for (Index j = 0; j < c; ++j) dst[j] += row[j];
  }
  return out;
}

Tensor Tensor::Row(Index r) const { return Rows(r, 1); }

Tensor Tensor::Rows(Index begin, Index count) const {
  DIFFODE_CHECK_GE(begin, 0);
  DIFFODE_CHECK_GE(count, 0);
  DIFFODE_CHECK_LE(begin + count, rows());
  const Index c = cols();
  Tensor out = Uninit(Shape{count, c});
  std::copy(data() + begin * c, data() + (begin + count) * c, out.data());
  return out;
}

Tensor Tensor::Col(Index c) const {
  DIFFODE_CHECK_GE(c, 0);
  DIFFODE_CHECK_LT(c, cols());
  const Index r = rows();
  const Index nc = cols();
  Tensor out = Uninit(Shape{r, 1});
  const Scalar* src = data() + c;
  Scalar* dst = out.data();
  for (Index i = 0; i < r; ++i) dst[i] = src[i * nc];
  return out;
}

void Tensor::SetRow(Index r, const Tensor& row) {
  DIFFODE_CHECK_EQ(row.numel(), cols());
  std::copy(row.data(), row.data() + cols(), data() + r * cols());
}

Tensor Tensor::ConcatRows(const std::vector<Tensor>& parts) {
  DIFFODE_CHECK(!parts.empty());
  const Index c = parts[0].cols();
  Index total = 0;
  for (const auto& p : parts) {
    DIFFODE_CHECK_EQ(p.cols(), c);
    total += p.rows();
  }
  Tensor out = Uninit(Shape{total, c});
  Scalar* dst = out.data();
  for (const auto& p : parts) {
    dst = std::copy(p.data(), p.data() + p.numel(), dst);
  }
  return out;
}

Tensor Tensor::ConcatCols(const std::vector<Tensor>& parts) {
  DIFFODE_CHECK(!parts.empty());
  const Index r = parts[0].rows();
  Index total = 0;
  for (const auto& p : parts) {
    DIFFODE_CHECK_EQ(p.rows(), r);
    total += p.cols();
  }
  Tensor out = Uninit(Shape{r, total});
  Scalar* base = out.data();
  Index c = 0;
  for (const auto& p : parts) {
    const Index pc = p.cols();
    const Scalar* src = p.data();
    for (Index i = 0; i < r; ++i)
      std::copy(src + i * pc, src + (i + 1) * pc, base + i * total + c);
    c += pc;
  }
  return out;
}

bool Tensor::AllFinite() const {
  for (Scalar x : data_)
    if (!std::isfinite(x)) return false;
  return true;
}

std::string Tensor::ToString(int max_per_dim) const {
  std::string s = "Tensor" + shape_.ToString() + " {";
  char buf[32];
  const Index limit = std::min<Index>(numel(), max_per_dim * max_per_dim);
  for (Index i = 0; i < limit; ++i) {
    std::snprintf(buf, sizeof(buf), "%.5g", data_[static_cast<std::size_t>(i)]);
    if (i > 0) s += ", ";
    s += buf;
  }
  if (limit < numel()) s += ", ...";
  return s + "}";
}

}  // namespace diffode
