#ifndef DIFFODE_NN_INIT_H_
#define DIFFODE_NN_INIT_H_

#include "tensor/random.h"
#include "tensor/tensor.h"

namespace diffode::nn {

// Xavier/Glorot uniform initialization for a fan_in x fan_out weight matrix.
inline Tensor XavierUniform(Index fan_in, Index fan_out, Rng& rng) {
  const Scalar limit =
      std::sqrt(6.0 / static_cast<Scalar>(fan_in + fan_out));
  return rng.UniformTensor(Shape{fan_in, fan_out}, -limit, limit);
}

// Orthogonal-ish initialization for recurrent weights: Xavier scaled down.
inline Tensor RecurrentInit(Index n, Rng& rng) {
  return rng.NormalTensor(Shape{n, n}, 0.0, 1.0 / std::sqrt(Scalar(n)));
}

}  // namespace diffode::nn

#endif  // DIFFODE_NN_INIT_H_
