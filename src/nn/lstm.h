#ifndef DIFFODE_NN_LSTM_H_
#define DIFFODE_NN_LSTM_H_

#include <memory>

#include "nn/linear.h"

namespace diffode::nn {

// Long short-term memory cell (Hochreiter & Schmidhuber 1997):
//   i = sigmoid(x W_xi + h W_hi + b_i)     input gate
//   f = sigmoid(x W_xf + h W_hf + b_f)     forget gate
//   o = sigmoid(x W_xo + h W_ho + b_o)     output gate
//   g = tanh  (x W_xg + h W_hg + b_g)      candidate
//   c' = f * c + i * g
//   h' = o * tanh(c')
class LstmCell : public Module {
 public:
  struct State {
    ag::Var h;  // b x hidden
    ag::Var c;  // b x hidden
  };

  LstmCell(Index input_size, Index hidden_size, Rng& rng)
      : hidden_size_(hidden_size),
        x_gates_(std::make_unique<Linear>(input_size, 4 * hidden_size, rng)),
        h_gates_(std::make_unique<Linear>(hidden_size, 4 * hidden_size, rng)) {
  }

  Index hidden_size() const { return hidden_size_; }

  State Forward(const ag::Var& x, const State& state) const {
    ag::Var gates =
        ag::Add(x_gates_->Forward(x), h_gates_->Forward(state.h));
    ag::Var i = ag::Sigmoid(ag::SliceCols(gates, 0, hidden_size_));
    ag::Var f = ag::Sigmoid(ag::SliceCols(gates, hidden_size_, hidden_size_));
    ag::Var o =
        ag::Sigmoid(ag::SliceCols(gates, 2 * hidden_size_, hidden_size_));
    ag::Var g = ag::Tanh(ag::SliceCols(gates, 3 * hidden_size_, hidden_size_));
    State next;
    next.c = ag::Add(ag::Mul(f, state.c), ag::Mul(i, g));
    next.h = ag::Mul(o, ag::Tanh(next.c));
    return next;
  }

  State InitialState(Index batch = 1) const {
    State s;
    s.h = ag::Constant(Tensor(Shape{batch, hidden_size_}));
    s.c = ag::Constant(Tensor(Shape{batch, hidden_size_}));
    return s;
  }

  void CollectParams(std::vector<ag::Var>* out) const override {
    x_gates_->CollectParams(out);
    h_gates_->CollectParams(out);
  }

 private:
  Index hidden_size_;
  std::unique_ptr<Linear> x_gates_;
  std::unique_ptr<Linear> h_gates_;
};

}  // namespace diffode::nn

#endif  // DIFFODE_NN_LSTM_H_
