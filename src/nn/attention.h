#ifndef DIFFODE_NN_ATTENTION_H_
#define DIFFODE_NN_ATTENTION_H_

#include "autograd/ops.h"

namespace diffode::nn {

// Scaled-dot-product attention: softmax(q kᵀ / sqrt(d)) v.
// q: (m x d), k: (n x d), v: (n x dv) -> (m x dv).
inline ag::Var ScaledDotAttention(const ag::Var& q, const ag::Var& k,
                                  const ag::Var& v) {
  const Scalar scale = 1.0 / std::sqrt(static_cast<Scalar>(q.cols()));
  ag::Var logits = ag::MulScalar(ag::MatMulNT(q, k), scale);
  return ag::MatMul(ag::Softmax(logits), v);
}

// Multi-head variant splitting the feature dimension into `heads` equal
// slices (q, k, v must share feature width divisible by heads). No output
// projection — callers add one if they need it. Matches the paper's Fig. 6
// multi-head ablation.
inline ag::Var MultiHeadAttention(const ag::Var& q, const ag::Var& k,
                                  const ag::Var& v, Index heads) {
  DIFFODE_CHECK_GT(heads, 0);
  DIFFODE_CHECK_EQ(q.cols() % heads, 0);
  const Index slice = q.cols() / heads;
  std::vector<ag::Var> outs;
  outs.reserve(static_cast<std::size_t>(heads));
  for (Index h = 0; h < heads; ++h) {
    ag::Var qh = ag::SliceCols(q, h * slice, slice);
    ag::Var kh = ag::SliceCols(k, h * slice, slice);
    ag::Var vh = ag::SliceCols(v, h * slice, slice);
    outs.push_back(ScaledDotAttention(qh, kh, vh));
  }
  return heads == 1 ? outs[0] : ag::ConcatCols(outs);
}

}  // namespace diffode::nn

#endif  // DIFFODE_NN_ATTENTION_H_
