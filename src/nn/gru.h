#ifndef DIFFODE_NN_GRU_H_
#define DIFFODE_NN_GRU_H_

#include <memory>
#include <vector>

#include "nn/linear.h"

namespace diffode::nn {

// Gated recurrent unit cell (Cho et al. 2014), PyTorch gate convention:
//   r = sigmoid(x W_xr + h W_hr + b_r)
//   u = sigmoid(x W_xu + h W_hu + b_u)
//   c = tanh(x W_xc + (r * h) W_hc + b_c)
//   h' = (1 - u) * c + u * h
class GruCell : public Module {
 public:
  GruCell(Index input_size, Index hidden_size, Rng& rng)
      : hidden_size_(hidden_size),
        x_gates_(std::make_unique<Linear>(input_size, 3 * hidden_size, rng)),
        h_gates_(std::make_unique<Linear>(hidden_size, 3 * hidden_size, rng)) {
  }

  Index hidden_size() const { return hidden_size_; }

  // x: (b x input), h: (b x hidden) -> (b x hidden).
  ag::Var Forward(const ag::Var& x, const ag::Var& h) const {
    ag::Var xg = x_gates_->Forward(x);
    ag::Var hg = h_gates_->Forward(h);
    ag::Var r = ag::Sigmoid(ag::Add(ag::SliceCols(xg, 0, hidden_size_),
                                    ag::SliceCols(hg, 0, hidden_size_)));
    ag::Var u = ag::Sigmoid(
        ag::Add(ag::SliceCols(xg, hidden_size_, hidden_size_),
                ag::SliceCols(hg, hidden_size_, hidden_size_)));
    ag::Var c = ag::Tanh(
        ag::Add(ag::SliceCols(xg, 2 * hidden_size_, hidden_size_),
                ag::Mul(r, ag::SliceCols(hg, 2 * hidden_size_, hidden_size_))));
    // h' = (1 - u) * c + u * h = c + u * (h - c)
    return ag::Add(c, ag::Mul(u, ag::Sub(h, c)));
  }

  ag::Var InitialState(Index batch = 1) const {
    return ag::Constant(Tensor(Shape{batch, hidden_size_}));
  }

  void CollectParams(std::vector<ag::Var>* out) const override {
    x_gates_->CollectParams(out);
    h_gates_->CollectParams(out);
  }

  // Gate access for frozen serving snapshots (nn/frozen.h).
  const Linear& x_gates() const { return *x_gates_; }
  const Linear& h_gates() const { return *h_gates_; }

 private:
  Index hidden_size_;
  std::unique_ptr<Linear> x_gates_;
  std::unique_ptr<Linear> h_gates_;
};

}  // namespace diffode::nn

#endif  // DIFFODE_NN_GRU_H_
