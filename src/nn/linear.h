#ifndef DIFFODE_NN_LINEAR_H_
#define DIFFODE_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/init.h"
#include "nn/module.h"
#include "tensor/random.h"

namespace diffode::nn {

// Affine layer y = x W + b for row-major inputs (rows are samples).
class Linear : public Module {
 public:
  Linear(Index in_features, Index out_features, Rng& rng)
      : weight_(ag::Param(XavierUniform(in_features, out_features, rng))),
        bias_(ag::Param(Tensor(Shape{1, out_features}))) {}

  ag::Var Forward(const ag::Var& x) const {
    return ag::AddRowVec(ag::MatMul(x, weight_), bias_);
  }

  void CollectParams(std::vector<ag::Var>* out) const override {
    out->push_back(weight_);
    out->push_back(bias_);
  }

  Index in_features() const { return weight_.rows(); }
  Index out_features() const { return weight_.cols(); }
  const ag::Var& weight() const { return weight_; }
  const ag::Var& bias() const { return bias_; }

 private:
  ag::Var weight_;  // in x out
  ag::Var bias_;    // 1 x out
};

}  // namespace diffode::nn

#endif  // DIFFODE_NN_LINEAR_H_
