#ifndef DIFFODE_NN_MLP_H_
#define DIFFODE_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/linear.h"

namespace diffode::nn {

enum class Activation { kTanh, kRelu, kSigmoid, kNone };

inline ag::Var Activate(const ag::Var& x, Activation act) {
  switch (act) {
    case Activation::kTanh:
      return ag::Tanh(x);
    case Activation::kRelu:
      return ag::Relu(x);
    case Activation::kSigmoid:
      return ag::Sigmoid(x);
    case Activation::kNone:
      return x;
  }
  return x;
}

// Multi-layer perceptron. `dims` lists layer widths including input and
// output, e.g. {in, hidden, out}. The activation is applied between layers
// but not after the last one.
class Mlp : public Module {
 public:
  Mlp(const std::vector<Index>& dims, Rng& rng,
      Activation activation = Activation::kTanh)
      : activation_(activation) {
    DIFFODE_CHECK_GE(dims.size(), 2u);
    for (std::size_t i = 0; i + 1 < dims.size(); ++i)
      layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
  }

  ag::Var Forward(const ag::Var& x) const {
    ag::Var h = x;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      const bool hidden = i + 1 < layers_.size();
      if (hidden && activation_ == Activation::kTanh) {
        // Fused hidden-layer step: one tape node for matmul+bias+tanh
        // instead of three (ag::TanhLinear).
        h = ag::TanhLinear(h, layers_[i]->weight(), layers_[i]->bias());
        continue;
      }
      h = layers_[i]->Forward(h);
      if (hidden) h = Activate(h, activation_);
    }
    return h;
  }

  void CollectParams(std::vector<ag::Var>* out) const override {
    for (const auto& l : layers_) l->CollectParams(out);
  }

  // Layer access for frozen serving snapshots (nn/frozen.h).
  const std::vector<std::unique_ptr<Linear>>& layers() const {
    return layers_;
  }
  Activation activation() const { return activation_; }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation activation_;
};

}  // namespace diffode::nn

#endif  // DIFFODE_NN_MLP_H_
