#ifndef DIFFODE_NN_OPTIMIZER_H_
#define DIFFODE_NN_OPTIMIZER_H_

#include <cmath>
#include <vector>

#include "autograd/variable.h"
#include "tensor/kernels.h"

namespace diffode::nn {

// First-order optimizers over a fixed parameter list. Gradients accumulate
// across Backward() calls; Step() applies the update and callers then
// ZeroGrad() (or use StepAndZero).
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Var> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;

  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  void StepAndZero() {
    Step();
    ZeroGrad();
  }

  // Rescales accumulated gradients (e.g. by 1/batch before stepping).
  void ScaleGrads(Scalar factor) {
    for (auto& p : params_) p.grad() *= factor;
  }

  Scalar GradNorm() {
    Scalar s = 0.0;
    for (auto& p : params_) {
      const Scalar n = p.grad().Norm();
      s += n * n;
    }
    return std::sqrt(s);
  }

  // Clips the global gradient norm to max_norm (no-op if already smaller).
  void ClipGradNorm(Scalar max_norm) {
    const Scalar norm = GradNorm();
    if (norm > max_norm && norm > 0.0) ScaleGrads(max_norm / norm);
  }

 protected:
  std::vector<ag::Var> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Var> params, Scalar lr, Scalar momentum = 0.0)
      : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
    if (momentum_ > 0.0)
      for (const auto& p : params_) velocity_.emplace_back(p.value().shape());
  }

  void Step() override {
    for (std::size_t i = 0; i < params_.size(); ++i) {
      auto& p = params_[i];
      if (momentum_ > 0.0) {
        velocity_[i] = velocity_[i] * momentum_ + p.grad();
        p.mutable_value() -= velocity_[i] * lr_;
      } else {
        p.mutable_value() -= p.grad() * lr_;
      }
    }
  }

 private:
  Scalar lr_;
  Scalar momentum_;
  std::vector<Tensor> velocity_;
};

// Adam (Kingma & Ba) with classic L2 weight decay folded into the gradient,
// matching the paper's lr = weight_decay = 1e-3 configuration.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Var> params, Scalar lr, Scalar weight_decay = 0.0,
       Scalar beta1 = 0.9, Scalar beta2 = 0.999, Scalar eps = 1e-8)
      : Optimizer(std::move(params)),
        lr_(lr),
        weight_decay_(weight_decay),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps) {
    for (const auto& p : params_) {
      m_.emplace_back(p.value().shape());
      v_.emplace_back(p.value().shape());
    }
  }

  void Step() override {
    ++t_;
    const Scalar bc1 = 1.0 - std::pow(beta1_, static_cast<Scalar>(t_));
    const Scalar bc2 = 1.0 - std::pow(beta2_, static_cast<Scalar>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
      auto& p = params_[i];
      Tensor g = p.grad();
      if (weight_decay_ > 0.0) g += p.value() * weight_decay_;
      m_[i] = m_[i] * beta1_ + g * (1.0 - beta1_);
      v_[i] = v_[i] * beta2_ + (g * g) * (1.0 - beta2_);
      Tensor update = m_[i] / bc1;
      Tensor denom = v_[i] / bc2;
      kernels::Map(denom.numel(), denom.data(), denom.data(),
                   [eps = eps_](Scalar x) { return std::sqrt(x) + eps; });
      p.mutable_value() -= update.CwiseQuotient(denom) * lr_;
    }
  }

 private:
  Scalar lr_;
  Scalar weight_decay_;
  Scalar beta1_;
  Scalar beta2_;
  Scalar eps_;
  long t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace diffode::nn

#endif  // DIFFODE_NN_OPTIMIZER_H_
