#ifndef DIFFODE_NN_FROZEN_H_
#define DIFFODE_NN_FROZEN_H_

#include <memory>
#include <vector>

#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/kernels.h"

// Frozen serving snapshots: plain-tensor, dtype-generic mirrors of the
// autograd layers, built once from a frozen Module's f64 parameters. Their
// forwards are exactly the value chains of the corresponding Module
// forwards (same kernel calls, same operand order) with no tape, no Var
// allocations, and the element type chosen at snapshot time — the compute
// layer behind Freeze(Precision::kF32) serving (docs/performance.md,
// "Serving precision").
//
// Snapshots are taken AFTER Module::Freeze has rounded the parameters to
// the target precision, so the Cast here never rounds twice and a
// save → load → Freeze round-trip rebuilds bit-identical snapshots.
namespace diffode::nn {

// Affine layer y = x W + b (mirror of nn::Linear::Forward).
template <typename T>
struct FrozenLinear {
  TensorT<T> w;  // in x out
  TensorT<T> b;  // 1 x out

  static FrozenLinear FromModule(const Linear& m) {
    FrozenLinear out;
    out.w = m.weight().value().template Cast<T>();
    out.b = m.bias().value().template Cast<T>();
    return out;
  }

  TensorT<T> Forward(const TensorT<T>& x) const {
    TensorT<T> y = x.MatMul(w);
    const Index cols = y.cols();
    for (Index i = 0; i < y.rows(); ++i) {
      T* row = y.data() + i * cols;
      for (Index j = 0; j < cols; ++j) row[j] += b.data()[j];
    }
    return y;
  }
};

// MLP mirror of nn::Mlp::Forward: activation between layers, none after the
// last. Only the activations the serving models use are implemented.
template <typename T>
struct FrozenMlp {
  std::vector<FrozenLinear<T>> layers;
  Activation activation = Activation::kTanh;

  static FrozenMlp FromModule(const Mlp& m) {
    FrozenMlp out;
    out.activation = m.activation();
    out.layers.reserve(m.layers().size());
    for (const auto& l : m.layers())
      out.layers.push_back(FrozenLinear<T>::FromModule(*l));
    return out;
  }

  TensorT<T> Forward(const TensorT<T>& x) const {
    TensorT<T> h = layers.front().Forward(x);
    for (std::size_t i = 1; i < layers.size(); ++i) {
      switch (activation) {
        case Activation::kTanh:
          kernels::MapTanh(h.numel(), h.data(), h.data());
          break;
        case Activation::kSigmoid:
          kernels::MapSigmoid(h.numel(), h.data(), h.data());
          break;
        case Activation::kRelu:
          for (Index j = 0; j < h.numel(); ++j)
            if (h.data()[j] < T(0)) h.data()[j] = T(0);
          break;
        case Activation::kNone:
          break;
      }
      h = layers[i].Forward(h);
    }
    return h;
  }
};

// GRU cell mirror of nn::GruCell::Forward (PyTorch gate convention):
//   r = sigmoid(xg_r + hg_r), u = sigmoid(xg_u + hg_u),
//   c = tanh(xg_c + r * hg_c), h' = c + u * (h - c).
template <typename T>
struct FrozenGru {
  Index hidden = 0;
  FrozenLinear<T> x_gates;  // in x 3H
  FrozenLinear<T> h_gates;  // H x 3H

  static FrozenGru FromModule(const GruCell& m) {
    FrozenGru out;
    out.hidden = m.hidden_size();
    out.x_gates = FrozenLinear<T>::FromModule(m.x_gates());
    out.h_gates = FrozenLinear<T>::FromModule(m.h_gates());
    return out;
  }

  // x: (b x in), h: (b x H) -> (b x H).
  TensorT<T> Forward(const TensorT<T>& x, const TensorT<T>& h) const {
    const Index bsz = x.rows();
    const Index H = hidden;
    const TensorT<T> xg = x_gates.Forward(x);  // b x 3H
    const TensorT<T> hg = h_gates.Forward(h);  // b x 3H
    TensorT<T> out = TensorT<T>::Uninit(Shape{bsz, H});
    TensorT<T> gate = TensorT<T>::Uninit(Shape{1, H});
    for (Index i = 0; i < bsz; ++i) {
      const T* xr = xg.data() + i * 3 * H;
      const T* hr = hg.data() + i * 3 * H;
      const T* hv = h.data() + i * H;
      T* o = out.data() + i * H;
      T* g = gate.data();
      // r, then c's recurrent half r * hg_c staged in `o` so one pass of
      // tanh/sigmoid kernels per gate keeps the arithmetic order fixed.
      for (Index j = 0; j < H; ++j) g[j] = xr[j] + hr[j];
      kernels::MapSigmoid(H, g, g);  // g = r
      for (Index j = 0; j < H; ++j) o[j] = xr[2 * H + j] + g[j] * hr[2 * H + j];
      kernels::MapTanh(H, o, o);  // o = c
      for (Index j = 0; j < H; ++j) g[j] = xr[H + j] + hr[H + j];
      kernels::MapSigmoid(H, g, g);  // g = u
      for (Index j = 0; j < H; ++j) o[j] = o[j] + g[j] * (hv[j] - o[j]);
    }
    return out;
  }
};

}  // namespace diffode::nn

#endif  // DIFFODE_NN_FROZEN_H_
