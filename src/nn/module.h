#ifndef DIFFODE_NN_MODULE_H_
#define DIFFODE_NN_MODULE_H_

#include <vector>

#include "autograd/variable.h"

namespace diffode::nn {

// Base class for anything with trainable parameters. Parameters are autograd
// Vars with requires_grad set; handles are shared, so collecting them copies
// cheap shared_ptr handles into the optimizer.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) = default;
  Module& operator=(Module&&) = default;

  // Appends this module's parameters (including submodules') to out.
  virtual void CollectParams(std::vector<ag::Var>* out) const = 0;

  std::vector<ag::Var> Params() const {
    std::vector<ag::Var> out;
    CollectParams(&out);
    return out;
  }

  Index NumParams() const {
    Index n = 0;
    for (const auto& p : Params()) n += p.value().numel();
    return n;
  }

  // Marks every parameter as non-trainable and drops any gradient buffers.
  // A frozen module's forward builds no backward closures even in grad mode
  // (nothing requires grad), which is the right shape for a model loaded
  // from a checkpoint to serve predictions. Irreversible by design: thaw by
  // rebuilding the model.
  void Freeze() {
    for (auto& p : Params()) {
      const auto& node = p.node();
      if (!node) continue;
      node->requires_grad = false;
      node->grad = Tensor();
    }
  }
};

}  // namespace diffode::nn

#endif  // DIFFODE_NN_MODULE_H_
