#ifndef DIFFODE_NN_MODULE_H_
#define DIFFODE_NN_MODULE_H_

#include <vector>

#include "autograd/variable.h"

namespace diffode::nn {

// Base class for anything with trainable parameters. Parameters are autograd
// Vars with requires_grad set; handles are shared, so collecting them copies
// cheap shared_ptr handles into the optimizer.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) = default;
  Module& operator=(Module&&) = default;

  // Appends this module's parameters (including submodules') to out.
  virtual void CollectParams(std::vector<ag::Var>* out) const = 0;

  std::vector<ag::Var> Params() const {
    std::vector<ag::Var> out;
    CollectParams(&out);
    return out;
  }

  Index NumParams() const {
    Index n = 0;
    for (const auto& p : Params()) n += p.value().numel();
    return n;
  }

  // Marks every parameter as non-trainable and drops any gradient buffers.
  // A frozen module's forward builds no backward closures even in grad mode
  // (nothing requires grad), which is the right shape for a model loaded
  // from a checkpoint to serve predictions. Irreversible by design: thaw by
  // rebuilding the model.
  //
  // `precision` selects the serving compute precision. Freeze(kF32) rounds
  // every parameter through float IN PLACE: the f64 master copies become
  // exactly f32-representable, so (a) any f32 snapshot a model derives in
  // OnFrozen casts without further rounding, and (b) serialization keeps
  // storing plain f64 on disk while a save → load → Freeze(kF32) round-trip
  // reproduces the frozen snapshot bit for bit
  // (tests/serialize_roundtrip_test.cc).
  void Freeze(Precision precision = Precision::kF64) {
    for (auto& p : Params()) {
      const auto& node = p.node();
      if (!node) continue;
      node->requires_grad = false;
      node->grad = Tensor();
      if (precision == Precision::kF32) {
        Tensor& v = node->value;
        for (Index i = 0; i < v.numel(); ++i)
          v.data()[i] = static_cast<Scalar>(static_cast<float>(v.data()[i]));
      }
    }
    serving_precision_ = precision;
    OnFrozen(precision);
  }

  // The precision the last Freeze() selected; kF64 for unfrozen modules.
  Precision serving_precision() const { return serving_precision_; }

 protected:
  // Hook for derived models to build precision-specific serving state (e.g.
  // DiffOde's frozen f32 parameter snapshot). Runs after the parameters have
  // been rounded, so a kF32 snapshot cast is exact.
  virtual void OnFrozen(Precision /*precision*/) {}

 private:
  Precision serving_precision_ = Precision::kF64;
};

}  // namespace diffode::nn

#endif  // DIFFODE_NN_MODULE_H_
