#ifndef DIFFODE_NN_MODULE_H_
#define DIFFODE_NN_MODULE_H_

#include <vector>

#include "autograd/variable.h"

namespace diffode::nn {

// Base class for anything with trainable parameters. Parameters are autograd
// Vars with requires_grad set; handles are shared, so collecting them copies
// cheap shared_ptr handles into the optimizer.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) = default;
  Module& operator=(Module&&) = default;

  // Appends this module's parameters (including submodules') to out.
  virtual void CollectParams(std::vector<ag::Var>* out) const = 0;

  std::vector<ag::Var> Params() const {
    std::vector<ag::Var> out;
    CollectParams(&out);
    return out;
  }

  Index NumParams() const {
    Index n = 0;
    for (const auto& p : Params()) n += p.value().numel();
    return n;
  }
};

}  // namespace diffode::nn

#endif  // DIFFODE_NN_MODULE_H_
