#include "nn/serialize.h"

#include <cstdio>
#include <memory>

namespace diffode::nn {
namespace {

constexpr std::uint64_t kMagic = 0x4449464f44453031ull;  // "DIFODE01"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU64(std::FILE* f, std::uint64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU64(std::FILE* f, std::uint64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

}  // namespace

bool SaveParams(const std::vector<ag::Var>& params, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  if (!WriteU64(f.get(), kMagic)) return false;
  if (!WriteU64(f.get(), params.size())) return false;
  for (const auto& p : params) {
    const Tensor& t = p.value();
    if (!WriteU64(f.get(), static_cast<std::uint64_t>(t.rank()))) return false;
    for (Index i = 0; i < t.rank(); ++i)
      if (!WriteU64(f.get(), static_cast<std::uint64_t>(t.shape().dim(i))))
        return false;
    const std::size_t n = static_cast<std::size_t>(t.numel());
    if (std::fwrite(t.data(), sizeof(Scalar), n, f.get()) != n) return false;
  }
  return true;
}

bool LoadParams(std::vector<ag::Var>* params, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  std::uint64_t magic = 0, count = 0;
  if (!ReadU64(f.get(), &magic) || magic != kMagic) return false;
  if (!ReadU64(f.get(), &count) || count != params->size()) return false;
  // Read everything into staging tensors first so a mismatch midway leaves
  // the model unchanged.
  std::vector<Tensor> staged;
  staged.reserve(params->size());
  for (const auto& p : *params) {
    std::uint64_t rank = 0;
    if (!ReadU64(f.get(), &rank)) return false;
    std::vector<Index> dims(rank);
    for (auto& d : dims) {
      std::uint64_t v = 0;
      if (!ReadU64(f.get(), &v)) return false;
      d = static_cast<Index>(v);
    }
    Shape shape(dims);
    if (shape != p.value().shape()) return false;
    Tensor t(shape);
    const std::size_t n = static_cast<std::size_t>(t.numel());
    if (std::fread(t.data(), sizeof(Scalar), n, f.get()) != n) return false;
    staged.push_back(std::move(t));
  }
  for (std::size_t i = 0; i < params->size(); ++i)
    (*params)[i].mutable_value() = std::move(staged[i]);
  return true;
}

}  // namespace diffode::nn
