#ifndef DIFFODE_NN_SERIALIZE_H_
#define DIFFODE_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "autograd/variable.h"

namespace diffode::nn {

// Flat binary checkpointing of a parameter list. The format stores, per
// parameter, its rank, dims and raw doubles; loading requires the exact
// same architecture (shape sequence), which is verified.

// Returns false on I/O failure.
bool SaveParams(const std::vector<ag::Var>& params, const std::string& path);

// Returns false on I/O failure or architecture mismatch; on mismatch the
// parameters are left untouched.
bool LoadParams(std::vector<ag::Var>* params, const std::string& path);

}  // namespace diffode::nn

#endif  // DIFFODE_NN_SERIALIZE_H_
