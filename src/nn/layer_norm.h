#ifndef DIFFODE_NN_LAYER_NORM_H_
#define DIFFODE_NN_LAYER_NORM_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace diffode::nn {

// Layer normalization with learned affine gain/bias (Ba et al. 2016):
// y = gain * (x - mu) / sqrt(var + eps) + bias, per row.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(Index features, Scalar eps = 1e-5)
      : eps_(eps),
        gain_(ag::Param(Tensor::Ones(Shape{1, features}))),
        bias_(ag::Param(Tensor(Shape{1, features}))) {}

  ag::Var Forward(const ag::Var& x) const {
    return ag::AddRowVec(ag::MulRowVec(ag::LayerNormRows(x, eps_), gain_),
                         bias_);
  }

  void CollectParams(std::vector<ag::Var>* out) const override {
    out->push_back(gain_);
    out->push_back(bias_);
  }

 private:
  Scalar eps_;
  ag::Var gain_;
  ag::Var bias_;
};

}  // namespace diffode::nn

#endif  // DIFFODE_NN_LAYER_NORM_H_
