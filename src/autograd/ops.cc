#include "autograd/ops.h"

#include <cmath>

#include "tensor/kernels.h"

namespace diffode::ag {
namespace {

// Lets MakeNodeFrom iterate ranges of Vars and of Var pointers alike.
inline const Var& AsVar(const Var& v) { return v; }
inline const Var& AsVar(const Var* v) { return *v; }

// Builds a node with the given forward value and parents; requires_grad is
// inherited from any parent. Nodes come from the thread's tape arena when a
// scope is active (AllocateNode); parents are taken as an initializer_list
// of POINTERS or as an existing vector, so op calls never materialize a
// temporary std::vector<Var> and never copy a Var handle — a brace list of
// Vars would refcount every parent per op, paid even on the no-grad path
// where the list is thrown away unread. With grad disabled the node is
// skipped entirely: the result is a value-only Var, parents are not
// captured, and the backward closure never materializes. The closure stays
// in its lambda type until a node actually needs it — converting to
// Node::backward_fn (std::function) eagerly would heap-allocate closures
// with tensor captures even on paths that immediately discard them.
template <typename ParentRange, typename BackwardFn>
Var MakeNodeFrom(Tensor value, const ParentRange& parents,
                 BackwardFn&& backward_fn) {
  if (!GradMode::IsEnabled()) return Var(std::move(value));
  auto node = AllocateNode();
  node->value = std::move(value);
  node->parents.reserve(parents.size());
  bool needs = false;
  for (const auto& raw : parents) {
    const Var& p = AsVar(raw);
    DIFFODE_CHECK(p.defined());
    std::shared_ptr<Node> pn = p.EnsureNode();
    needs = needs || pn->requires_grad || pn->backward_fn;
    node->parents.push_back(std::move(pn));
  }
  node->requires_grad = needs;
  if (needs) node->backward_fn = std::forward<BackwardFn>(backward_fn);
  return Var(std::move(node));
}

template <typename BackwardFn>
Var MakeNode(Tensor value, std::initializer_list<const Var*> parents,
             BackwardFn&& backward_fn) {
  return MakeNodeFrom(std::move(value), parents,
                      std::forward<BackwardFn>(backward_fn));
}

template <typename BackwardFn>
Var MakeNode(Tensor value, const std::vector<Var>& parents,
             BackwardFn&& backward_fn) {
  return MakeNodeFrom(std::move(value), parents,
                      std::forward<BackwardFn>(backward_fn));
}

void Accumulate(const std::shared_ptr<Node>& n, const Tensor& g) {
  n->AccumulateGrad(g);
}

// Fused elementwise derivative scatter: parent_grad += zip(g, v).
template <typename F>
void AccumulateZip(const std::shared_ptr<Node>& n, const Tensor& g,
                   const Tensor& v, F fn) {
  Tensor out = Tensor::Uninit(g.shape());
  kernels::Zip(g.numel(), g.data(), v.data(), out.data(), fn);
  n->AccumulateGrad(out);
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  return MakeNode(a.value() + b.value(), {&a, &b}, [](Node& n) {
    Accumulate(n.parents[0], n.grad);
    Accumulate(n.parents[1], n.grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  return MakeNode(a.value() - b.value(), {&a, &b}, [](Node& n) {
    Accumulate(n.parents[0], n.grad);
    Accumulate(n.parents[1], -n.grad);
  });
}

Var Mul(const Var& a, const Var& b) {
  return MakeNode(a.value() * b.value(), {&a, &b}, [](Node& n) {
    AccumulateZip(n.parents[0], n.grad, n.parents[1]->value,
                  [](Scalar g, Scalar v) { return g * v; });
    AccumulateZip(n.parents[1], n.grad, n.parents[0]->value,
                  [](Scalar g, Scalar v) { return g * v; });
  });
}

Var Div(const Var& a, const Var& b) {
  return MakeNode(a.value().CwiseQuotient(b.value()), {&a, &b}, [](Node& n) {
    const Tensor& bv = n.parents[1]->value;
    AccumulateZip(n.parents[0], n.grad, bv,
                  [](Scalar g, Scalar v) { return g / v; });
    // d/db (a/b) = -a / b^2 = -(a/b)/b = -value/b
    Tensor gb = Tensor::Uninit(n.grad.shape());
    kernels::Zip(n.grad.numel(), n.grad.data(), n.value.data(), gb.data(),
                 [](Scalar g, Scalar y) { return g * y; });
    AccumulateZip(n.parents[1], gb, bv,
                  [](Scalar g, Scalar v) { return -g / v; });
  });
}

Var AddScalar(const Var& a, Scalar s) {
  return MakeNode(a.value() + s, {&a},
                  [](Node& n) { Accumulate(n.parents[0], n.grad); });
}

Var MulScalar(const Var& a, Scalar s) {
  return MakeNode(a.value() * s, {&a},
                  [s](Node& n) { Accumulate(n.parents[0], n.grad * s); });
}

Var Neg(const Var& a) {
  return MakeNode(-a.value(), {&a},
                  [](Node& n) { Accumulate(n.parents[0], -n.grad); });
}

Var DivByScalarVar(const Var& a, const Var& s) {
  DIFFODE_CHECK_EQ(s.value().numel(), 1);
  const Scalar sv = s.value().item();
  return MakeNode(a.value() * (1.0 / sv), {&a, &s}, [](Node& n) {
    const Scalar sv = n.parents[1]->value.item();
    Accumulate(n.parents[0], n.grad * (1.0 / sv));
    // d/ds (a/s) = -a/s^2 = -value/s
    Tensor gs(n.parents[1]->value.shape());
    gs[0] = -n.grad.Dot(n.value) / sv;
    Accumulate(n.parents[1], gs);
  });
}

Var MulByScalarVar(const Var& a, const Var& s) {
  DIFFODE_CHECK_EQ(s.value().numel(), 1);
  const Scalar sv = s.value().item();
  return MakeNode(a.value() * sv, {&a, &s}, [](Node& n) {
    const Scalar sv = n.parents[1]->value.item();
    Accumulate(n.parents[0], n.grad * sv);
    Tensor gs(n.parents[1]->value.shape());
    gs[0] = n.grad.Dot(n.parents[0]->value);
    Accumulate(n.parents[1], gs);
  });
}

Var MatMul(const Var& a, const Var& b) {
  return MakeNode(a.value().MatMul(b.value()), {&a, &b}, [](Node& n) {
    const Tensor& av = n.parents[0]->value;
    const Tensor& bv = n.parents[1]->value;
    // dA = G B^T, dB = A^T G — transpose-free GEMM variants.
    Accumulate(n.parents[0], n.grad.MatMulTransposed(bv));
    Accumulate(n.parents[1], av.TransposedMatMul(n.grad));
  });
}

Var MatMulNT(const Var& a, const Var& b) {
  return MakeNode(a.value().MatMulTransposed(b.value()), {&a, &b}, [](Node& n) {
    const Tensor& av = n.parents[0]->value;
    const Tensor& bv = n.parents[1]->value;
    // C = A B^T: dA = G B, dB = G^T A.
    Accumulate(n.parents[0], n.grad.MatMul(bv));
    Accumulate(n.parents[1], n.grad.TransposedMatMul(av));
  });
}

Var Transpose(const Var& a) {
  return MakeNode(a.value().Transposed(), {&a}, [](Node& n) {
    Accumulate(n.parents[0], n.grad.Transposed());
  });
}

Var Reshape(const Var& a, Shape shape) {
  return MakeNode(a.value().Reshaped(std::move(shape)), {&a}, [](Node& n) {
    Accumulate(n.parents[0], n.grad.Reshaped(n.parents[0]->value.shape()));
  });
}

Var AddRowVec(const Var& m, const Var& v) {
  DIFFODE_CHECK_EQ(m.cols(), v.cols());
  DIFFODE_CHECK_EQ(v.rows(), 1);
  Tensor out = m.value();
  {
    const Index r = out.rows();
    const Index c = out.cols();
    Scalar* o = out.data();
    const Scalar* vv = v.value().data();
    for (Index i = 0; i < r; ++i)
      for (Index j = 0; j < c; ++j) o[i * c + j] += vv[j];
  }
  return MakeNode(std::move(out), {&m, &v}, [](Node& n) {
    Accumulate(n.parents[0], n.grad);
    Accumulate(n.parents[1], n.grad.ColSums());
  });
}

Var MulRowVec(const Var& m, const Var& v) {
  DIFFODE_CHECK_EQ(m.cols(), v.cols());
  DIFFODE_CHECK_EQ(v.rows(), 1);
  Tensor out = m.value();
  {
    const Index r = out.rows();
    const Index c = out.cols();
    Scalar* o = out.data();
    const Scalar* vv = v.value().data();
    for (Index i = 0; i < r; ++i)
      for (Index j = 0; j < c; ++j) o[i * c + j] *= vv[j];
  }
  return MakeNode(std::move(out), {&m, &v}, [](Node& n) {
    const Tensor& mv = n.parents[0]->value;
    const Tensor& vv = n.parents[1]->value;
    const Index r = mv.rows();
    const Index c = mv.cols();
    Tensor gm = Tensor::Uninit(mv.shape());
    Tensor gv(vv.shape());  // accumulated with +=, must start zeroed
    const Scalar* g = n.grad.data();
    const Scalar* mp = mv.data();
    const Scalar* vp = vv.data();
    Scalar* gmp = gm.data();
    Scalar* gvp = gv.data();
    for (Index i = 0; i < r; ++i) {
      for (Index j = 0; j < c; ++j) {
        const Scalar gij = g[i * c + j];
        gmp[i * c + j] = gij * vp[j];
        gvp[j] += gij * mp[i * c + j];
      }
    }
    Accumulate(n.parents[0], gm);
    Accumulate(n.parents[1], gv);
  });
}

Var LayerNormRows(const Var& a, Scalar eps) {
  const Tensor& x = a.value();
  const Index r = x.rows();
  const Index c = x.cols();
  DIFFODE_CHECK_GT(c, 0);
  Tensor y = Tensor::Uninit(x.shape());
  Tensor inv_sigma = Tensor::Uninit(Shape{r, 1});
  const Scalar* xp = x.data();
  Scalar* yp = y.data();
  for (Index i = 0; i < r; ++i) {
    const Scalar* xi = xp + i * c;
    Scalar* yi = yp + i * c;
    Scalar mean = 0.0;
    for (Index j = 0; j < c; ++j) mean += xi[j];
    mean /= static_cast<Scalar>(c);
    Scalar var = 0.0;
    for (Index j = 0; j < c; ++j) {
      const Scalar d = xi[j] - mean;
      var += d * d;
    }
    var /= static_cast<Scalar>(c);
    const Scalar inv = 1.0 / std::sqrt(var + eps);
    inv_sigma[i] = inv;
    for (Index j = 0; j < c; ++j) yi[j] = (xi[j] - mean) * inv;
  }
  return MakeNode(std::move(y), {&a}, [inv_sigma =
                                          std::move(inv_sigma)](Node& n) {
    // Per row: dx = (g - mean(g) - y * mean(g .* y)) * inv_sigma.
    const Tensor& y = n.value;
    const Index r = y.rows();
    const Index c = y.cols();
    Tensor gx = Tensor::Uninit(y.shape());
    const Scalar* yp = y.data();
    const Scalar* gp = n.grad.data();
    Scalar* gxp = gx.data();
    for (Index i = 0; i < r; ++i) {
      const Scalar* yi = yp + i * c;
      const Scalar* gi = gp + i * c;
      Scalar* gxi = gxp + i * c;
      Scalar g_mean = 0.0, gy_mean = 0.0;
      for (Index j = 0; j < c; ++j) {
        g_mean += gi[j];
        gy_mean += gi[j] * yi[j];
      }
      g_mean /= static_cast<Scalar>(c);
      gy_mean /= static_cast<Scalar>(c);
      const Scalar inv = inv_sigma[i];
      for (Index j = 0; j < c; ++j)
        gxi[j] = (gi[j] - g_mean - yi[j] * gy_mean) * inv;
    }
    Accumulate(n.parents[0], gx);
  });
}

Var Softmax(const Var& a) {
  const Tensor& x = a.value();
  Tensor y = Tensor::Uninit(x.shape());
  const Index r = x.rows();
  const Index c = x.cols();
  const Scalar* xp = x.data();
  Scalar* yp = y.data();
  // Three passes so the exp runs as one vectorized map over the whole
  // matrix: shift each row by its max, exponentiate, then normalize.
  for (Index i = 0; i < r; ++i) {
    const Scalar* xi = xp + i * c;
    Scalar* yi = yp + i * c;
    Scalar m = xi[0];
    for (Index j = 1; j < c; ++j) m = std::max(m, xi[j]);
    for (Index j = 0; j < c; ++j) yi[j] = xi[j] - m;
  }
  kernels::MapExp(r * c, yp, yp);
  for (Index i = 0; i < r; ++i) {
    Scalar* yi = yp + i * c;
    Scalar z = 0.0;
    for (Index j = 0; j < c; ++j) z += yi[j];
    const Scalar inv_z = 1.0 / z;
    for (Index j = 0; j < c; ++j) yi[j] *= inv_z;
  }
  return MakeNode(std::move(y), {&a}, [](Node& n) {
    // Per row: dx = y .* (g - (g . y))
    const Tensor& y = n.value;
    const Index r = y.rows();
    const Index c = y.cols();
    Tensor gx = Tensor::Uninit(y.shape());
    const Scalar* yp = y.data();
    const Scalar* gp = n.grad.data();
    Scalar* gxp = gx.data();
    for (Index i = 0; i < r; ++i) {
      const Scalar* yi = yp + i * c;
      const Scalar* gi = gp + i * c;
      Scalar* gxi = gxp + i * c;
      Scalar gy = 0.0;
      for (Index j = 0; j < c; ++j) gy += gi[j] * yi[j];
      for (Index j = 0; j < c; ++j) gxi[j] = yi[j] * (gi[j] - gy);
    }
    Accumulate(n.parents[0], gx);
  });
}

namespace {

// Shared shape for unary elementwise ops: forward maps x through Fwd, the
// backward multiplies the incoming gradient elementwise via Bwd(g, v) where
// v is the saved forward OUTPUT (value-based derivative).
template <typename Fwd, typename Bwd>
Var UnaryFromValue(const Var& a, Fwd fwd, Bwd bwd) {
  const Tensor& x = a.value();
  Tensor y = Tensor::Uninit(x.shape());
  kernels::Map(x.numel(), x.data(), y.data(), fwd);
  return MakeNode(std::move(y), {&a}, [bwd](Node& n) {
    AccumulateZip(n.parents[0], n.grad, n.value, bwd);
  });
}

// As above but the derivative reads the forward INPUT.
template <typename Fwd, typename Bwd>
Var UnaryFromInput(const Var& a, Fwd fwd, Bwd bwd) {
  const Tensor& x = a.value();
  Tensor y = Tensor::Uninit(x.shape());
  kernels::Map(x.numel(), x.data(), y.data(), fwd);
  return MakeNode(std::move(y), {&a}, [bwd](Node& n) {
    AccumulateZip(n.parents[0], n.grad, n.parents[0]->value, bwd);
  });
}

}  // namespace

Var Tanh(const Var& a) {
  return UnaryFromValue(a, kernels::ops::Tanh{},
                        [](Scalar g, Scalar y) { return g * (1.0 - y * y); });
}

Var Sigmoid(const Var& a) {
  return UnaryFromValue(a, kernels::ops::Sigmoid{},
                        [](Scalar g, Scalar y) { return g * y * (1.0 - y); });
}

Var Relu(const Var& a) {
  return UnaryFromInput(
      a, [](Scalar x) { return x > 0 ? x : 0.0; },
      [](Scalar g, Scalar x) { return x > 0 ? g : 0.0; });
}

Var Exp(const Var& a) {
  return UnaryFromValue(a, kernels::ops::Exp{},
                        [](Scalar g, Scalar y) { return g * y; });
}

Var Log(const Var& a) {
  return UnaryFromInput(
      a, [](Scalar x) { return std::log(x); },
      [](Scalar g, Scalar x) { return g / x; });
}

Var Sqrt(const Var& a) {
  return UnaryFromValue(
      a, [](Scalar x) { return std::sqrt(x); },
      [](Scalar g, Scalar y) { return g * 0.5 / y; });
}

Var Square(const Var& a) {
  return MakeNode(a.value() * a.value(), {&a}, [](Node& n) {
    AccumulateZip(n.parents[0], n.grad, n.parents[0]->value,
                  [](Scalar g, Scalar x) { return 2.0 * g * x; });
  });
}

Var Sin(const Var& a) {
  return UnaryFromInput(
      a, [](Scalar x) { return std::sin(x); },
      [](Scalar g, Scalar x) { return g * std::cos(x); });
}

Var Cos(const Var& a) {
  return UnaryFromInput(
      a, [](Scalar x) { return std::cos(x); },
      [](Scalar g, Scalar x) { return -g * std::sin(x); });
}

namespace {

// parent_grad += g * s without an intermediate copy-then-scale.
void AccumulateScaled(const std::shared_ptr<Node>& n, const Tensor& g,
                      Scalar s) {
  Tensor out = Tensor::Uninit(g.shape());
  kernels::Map(g.numel(), g.data(), out.data(),
               [s](Scalar x) { return x * s; });
  n->AccumulateGrad(out);
}

}  // namespace

Var AddInPlace(const Var& a, const Var& b) {
  DIFFODE_CHECK(a.value().shape() == b.value().shape());
  Tensor out = Tensor::Uninit(a.value().shape());
  kernels::Zip(out.numel(), a.value().data(), b.value().data(), out.data(),
               [](Scalar x, Scalar y) { return x + y; });
  return MakeNode(std::move(out), {&a, &b}, [](Node& n) {
    Accumulate(n.parents[0], n.grad);
    Accumulate(n.parents[1], n.grad);
  });
}

namespace detail {

void AxpyForward(Index n, const Scalar* y, const Scalar* k, Scalar h,
                 Scalar* out) {
  kernels::Zip(n, y, k, out, [h](Scalar yv, Scalar kv) { return yv + kv * h; });
}

void Rk4CombineForward(Index n, const Scalar* y, const Scalar* k1,
                       const Scalar* k2, const Scalar* k3, const Scalar* k4,
                       Scalar h, Scalar* out) {
  const Scalar h6 = h / 6.0;
  for (Index i = 0; i < n; ++i)
    out[i] = y[i] + h6 * ((k1[i] + 2.0 * k2[i]) + (2.0 * k3[i] + k4[i]));
}

}  // namespace detail

Var AxpyFused(const Var& y, const Var& k, Scalar h) {
  DIFFODE_CHECK(y.value().shape() == k.value().shape());
  Tensor out = Tensor::Uninit(y.value().shape());
  detail::AxpyForward(out.numel(), y.value().data(), k.value().data(), h,
                      out.data());
  return MakeNode(std::move(out), {&y, &k}, [h](Node& n) {
    Accumulate(n.parents[0], n.grad);
    AccumulateScaled(n.parents[1], n.grad, h);
  });
}

Var Rk4Combine(const Var& y, const Var& k1, const Var& k2, const Var& k3,
               const Var& k4, Scalar h) {
  const Shape& shape = y.value().shape();
  DIFFODE_CHECK(k1.value().shape() == shape);
  DIFFODE_CHECK(k2.value().shape() == shape);
  DIFFODE_CHECK(k3.value().shape() == shape);
  DIFFODE_CHECK(k4.value().shape() == shape);
  const Scalar h6 = h / 6.0;
  Tensor out = Tensor::Uninit(shape);
  detail::Rk4CombineForward(out.numel(), y.value().data(), k1.value().data(),
                            k2.value().data(), k3.value().data(),
                            k4.value().data(), h, out.data());
  return MakeNode(std::move(out), {&y, &k1, &k2, &k3, &k4}, [h6](Node& n) {
    Accumulate(n.parents[0], n.grad);
    AccumulateScaled(n.parents[1], n.grad, h6);
    AccumulateScaled(n.parents[2], n.grad, 2.0 * h6);
    AccumulateScaled(n.parents[3], n.grad, 2.0 * h6);
    AccumulateScaled(n.parents[4], n.grad, h6);
  });
}

Var TanhLinear(const Var& x, const Var& w, const Var& b) {
  DIFFODE_CHECK_EQ(x.cols(), w.rows());
  DIFFODE_CHECK_EQ(b.rows(), 1);
  DIFFODE_CHECK_EQ(b.cols(), w.cols());
  // y = tanh(x·W + b), built in one buffer: GEMM into it, bias and tanh
  // applied in place.
  Tensor y = x.value().MatMul(w.value());
  {
    const Index r = y.rows();
    const Index c = y.cols();
    Scalar* yp = y.data();
    const Scalar* bp = b.value().data();
    for (Index i = 0; i < r; ++i)
      for (Index j = 0; j < c; ++j) yp[i * c + j] += bp[j];
    kernels::MapTanh(r * c, yp, yp);
  }
  return MakeNode(std::move(y), {&x, &w, &b}, [](Node& n) {
    const Tensor& xv = n.parents[0]->value;
    const Tensor& wv = n.parents[1]->value;
    // gpre = g ⊙ (1 - y²); then gx = gpre·Wᵀ, gW = xᵀ·gpre, gb = colsum.
    Tensor gpre = Tensor::Uninit(n.value.shape());
    kernels::Zip(gpre.numel(), n.grad.data(), n.value.data(), gpre.data(),
                 [](Scalar g, Scalar yv) { return g * (1.0 - yv * yv); });
    Accumulate(n.parents[0], gpre.MatMulTransposed(wv));
    Accumulate(n.parents[1], xv.TransposedMatMul(gpre));
    Accumulate(n.parents[2], gpre.ColSums());
  });
}

Var Sum(const Var& a) {
  Tensor out(Shape{1, 1});
  out[0] = a.value().Sum();
  return MakeNode(std::move(out), {&a}, [](Node& n) {
    Accumulate(n.parents[0],
               Tensor::Full(n.parents[0]->value.shape(), n.grad[0]));
  });
}

Var Mean(const Var& a) {
  const Scalar inv = 1.0 / static_cast<Scalar>(a.value().numel());
  Tensor out(Shape{1, 1});
  out[0] = a.value().Sum() * inv;
  return MakeNode(std::move(out), {&a}, [inv](Node& n) {
    Accumulate(n.parents[0],
               Tensor::Full(n.parents[0]->value.shape(), n.grad[0] * inv));
  });
}

Var Dot(const Var& a, const Var& b) {
  DIFFODE_CHECK_EQ(a.value().numel(), b.value().numel());
  Tensor out(Shape{1, 1});
  out[0] = a.value().Dot(b.value());
  return MakeNode(std::move(out), {&a, &b}, [](Node& n) {
    const Scalar g = n.grad[0];
    Accumulate(n.parents[0],
               (n.parents[1]->value * g).Reshaped(n.parents[0]->value.shape()));
    Accumulate(n.parents[1],
               (n.parents[0]->value * g).Reshaped(n.parents[1]->value.shape()));
  });
}

Var ConcatCols(const std::vector<Var>& parts) {
  DIFFODE_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  std::vector<Index> widths;
  for (const auto& p : parts) {
    values.push_back(p.value());
    widths.push_back(p.cols());
  }
  return MakeNode(Tensor::ConcatCols(values), parts,
                  [widths = std::move(widths)](Node& n) {
                    const Index total = n.grad.cols();
                    const Scalar* gp = n.grad.data();
                    Index c = 0;
                    for (std::size_t k = 0; k < widths.size(); ++k) {
                      Tensor g = Tensor::Uninit(n.parents[k]->value.shape());
                      const Index r = g.rows();
                      const Index w = widths[k];
                      Scalar* out = g.data();
                      for (Index i = 0; i < r; ++i)
                        for (Index j = 0; j < w; ++j)
                          out[i * w + j] = gp[i * total + c + j];
                      Accumulate(n.parents[k], g);
                      c += w;
                    }
                  });
}

Var ConcatRows(const std::vector<Var>& parts) {
  DIFFODE_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  std::vector<Index> heights;
  for (const auto& p : parts) {
    values.push_back(p.value());
    heights.push_back(p.rows());
  }
  return MakeNode(Tensor::ConcatRows(values), parts,
                  [heights = std::move(heights)](Node& n) {
                    Index r = 0;
                    for (std::size_t k = 0; k < heights.size(); ++k) {
                      Accumulate(n.parents[k], n.grad.Rows(r, heights[k]));
                      r += heights[k];
                    }
                  });
}

Var SliceCols(const Var& a, Index begin, Index count) {
  DIFFODE_CHECK_GE(begin, 0);
  DIFFODE_CHECK_LE(begin + count, a.cols());
  const Index r = a.rows();
  const Index total = a.cols();
  Tensor out = Tensor::Uninit(Shape{r, count});
  {
    const Scalar* src = a.value().data();
    Scalar* dst = out.data();
    for (Index i = 0; i < r; ++i)
      for (Index j = 0; j < count; ++j)
        dst[i * count + j] = src[i * total + begin + j];
  }
  return MakeNode(std::move(out), {&a}, [begin, count](Node& n) {
    Tensor g(n.parents[0]->value.shape());
    const Index r = n.grad.rows();
    const Index total = g.cols();
    const Scalar* gp = n.grad.data();
    Scalar* out = g.data();
    for (Index i = 0; i < r; ++i)
      for (Index j = 0; j < count; ++j)
        out[i * total + begin + j] = gp[i * count + j];
    Accumulate(n.parents[0], g);
  });
}

Var SliceRows(const Var& a, Index begin, Index count) {
  return MakeNode(a.value().Rows(begin, count), {&a}, [begin, count](Node& n) {
    Tensor g(n.parents[0]->value.shape());
    const Index c = n.grad.cols();
    std::size_t offset = static_cast<std::size_t>(begin * c);
    const Scalar* gp = n.grad.data();
    Scalar* out = g.data() + offset;
    for (Index i = 0; i < count * c; ++i) out[i] = gp[i];
    Accumulate(n.parents[0], g);
  });
}

Var MseLoss(const Var& pred, const Tensor& target) {
  DIFFODE_CHECK(pred.value().shape() == target.shape());
  const Scalar inv = 1.0 / static_cast<Scalar>(target.numel());
  Tensor diff = pred.value() - target;
  Tensor out(Shape{1, 1});
  out[0] = diff.Dot(diff) * inv;
  return MakeNode(std::move(out), {&pred},
                  [diff = std::move(diff), inv](Node& n) {
                    Accumulate(n.parents[0], diff * (2.0 * inv * n.grad[0]));
                  });
}

Var MaskedMseLoss(const Var& pred, const Tensor& target, const Tensor& mask) {
  DIFFODE_CHECK(pred.value().shape() == target.shape());
  DIFFODE_CHECK(pred.value().shape() == mask.shape());
  Scalar count = mask.Sum();
  if (count <= 0) count = 1.0;
  const Scalar inv = 1.0 / count;
  Tensor diff = (pred.value() - target) * mask;
  Tensor out(Shape{1, 1});
  out[0] = diff.Dot(diff) * inv;
  return MakeNode(std::move(out), {&pred},
                  [diff = std::move(diff), inv](Node& n) {
                    Accumulate(n.parents[0], diff * (2.0 * inv * n.grad[0]));
                  });
}

Var SoftmaxCrossEntropy(const Var& logits, const std::vector<Index>& labels) {
  const Index b = logits.rows();
  const Index c = logits.cols();
  DIFFODE_CHECK_EQ(static_cast<Index>(labels.size()), b);
  const Tensor& x = logits.value();
  Tensor probs = Tensor::Uninit(x.shape());
  const Scalar* xp = x.data();
  Scalar* pp = probs.data();
  // Same three-pass shape as Softmax: shift, one vectorized exp over the
  // whole batch, then normalize and pick out the label probabilities.
  for (Index i = 0; i < b; ++i) {
    const Scalar* xi = xp + i * c;
    Scalar* pi = pp + i * c;
    Scalar m = xi[0];
    for (Index j = 1; j < c; ++j) m = std::max(m, xi[j]);
    for (Index j = 0; j < c; ++j) pi[j] = xi[j] - m;
  }
  kernels::MapExp(b * c, pp, pp);
  Scalar loss = 0.0;
  for (Index i = 0; i < b; ++i) {
    Scalar* pi = pp + i * c;
    Scalar z = 0.0;
    for (Index j = 0; j < c; ++j) z += pi[j];
    const Scalar inv_z = 1.0 / z;
    for (Index j = 0; j < c; ++j) pi[j] *= inv_z;
    const Index label = labels[static_cast<std::size_t>(i)];
    DIFFODE_CHECK_GE(label, 0);
    DIFFODE_CHECK_LT(label, c);
    loss -= std::log(std::max(pi[label], 1e-300));
  }
  Tensor out(Shape{1, 1});
  out[0] = loss / static_cast<Scalar>(b);
  return MakeNode(std::move(out), {&logits},
                  [probs = std::move(probs), labels](Node& n) {
    Tensor g = probs;
    const Scalar scale = n.grad[0] / static_cast<Scalar>(g.rows());
    const Index c = g.cols();
    Scalar* gp = g.data();
    for (Index i = 0; i < g.rows(); ++i) {
      gp[i * c + labels[static_cast<std::size_t>(i)]] -= 1.0;
      for (Index j = 0; j < c; ++j) gp[i * c + j] *= scale;
    }
    Accumulate(n.parents[0], g);
  });
}

}  // namespace diffode::ag
