#include "autograd/ops.h"

#include <cmath>

namespace diffode::ag {
namespace {

// Builds a node with the given forward value and parents; requires_grad is
// inherited from any parent.
Var MakeNode(Tensor value, std::vector<Var> parents,
             std::function<void(Node&)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  bool needs = false;
  for (const auto& p : parents) {
    DIFFODE_CHECK(p.defined());
    node->parents.push_back(p.node());
    needs = needs || p.node()->requires_grad || p.node()->backward_fn;
  }
  node->requires_grad = needs;
  if (needs) node->backward_fn = std::move(backward_fn);
  return Var(std::move(node));
}

void Accumulate(const std::shared_ptr<Node>& n, const Tensor& g) {
  n->EnsureGrad();
  n->grad += g;
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  return MakeNode(a.value() + b.value(), {a, b}, [](Node& n) {
    Accumulate(n.parents[0], n.grad);
    Accumulate(n.parents[1], n.grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  return MakeNode(a.value() - b.value(), {a, b}, [](Node& n) {
    Accumulate(n.parents[0], n.grad);
    Accumulate(n.parents[1], -n.grad);
  });
}

Var Mul(const Var& a, const Var& b) {
  return MakeNode(a.value() * b.value(), {a, b}, [](Node& n) {
    Accumulate(n.parents[0], n.grad * n.parents[1]->value);
    Accumulate(n.parents[1], n.grad * n.parents[0]->value);
  });
}

Var Div(const Var& a, const Var& b) {
  return MakeNode(a.value().CwiseQuotient(b.value()), {a, b}, [](Node& n) {
    const Tensor& bv = n.parents[1]->value;
    Tensor ga = n.grad.CwiseQuotient(bv);
    Accumulate(n.parents[0], ga);
    // d/db (a/b) = -a / b^2 = -(a/b)/b = -value/b
    Accumulate(n.parents[1], -(n.grad * n.value.CwiseQuotient(bv)));
  });
}

Var AddScalar(const Var& a, Scalar s) {
  return MakeNode(a.value() + s, {a},
                  [](Node& n) { Accumulate(n.parents[0], n.grad); });
}

Var MulScalar(const Var& a, Scalar s) {
  return MakeNode(a.value() * s, {a},
                  [s](Node& n) { Accumulate(n.parents[0], n.grad * s); });
}

Var Neg(const Var& a) {
  return MakeNode(-a.value(), {a},
                  [](Node& n) { Accumulate(n.parents[0], -n.grad); });
}

Var DivByScalarVar(const Var& a, const Var& s) {
  DIFFODE_CHECK_EQ(s.value().numel(), 1);
  const Scalar sv = s.value().item();
  return MakeNode(a.value() * (1.0 / sv), {a, s}, [](Node& n) {
    const Scalar sv = n.parents[1]->value.item();
    Accumulate(n.parents[0], n.grad * (1.0 / sv));
    // d/ds (a/s) = -a/s^2 = -value/s
    Tensor gs(n.parents[1]->value.shape());
    gs[0] = -n.grad.Dot(n.value) / sv;
    Accumulate(n.parents[1], gs);
  });
}

Var MulByScalarVar(const Var& a, const Var& s) {
  DIFFODE_CHECK_EQ(s.value().numel(), 1);
  const Scalar sv = s.value().item();
  return MakeNode(a.value() * sv, {a, s}, [](Node& n) {
    const Scalar sv = n.parents[1]->value.item();
    Accumulate(n.parents[0], n.grad * sv);
    Tensor gs(n.parents[1]->value.shape());
    gs[0] = n.grad.Dot(n.parents[0]->value);
    Accumulate(n.parents[1], gs);
  });
}

Var MatMul(const Var& a, const Var& b) {
  return MakeNode(a.value().MatMul(b.value()), {a, b}, [](Node& n) {
    const Tensor& av = n.parents[0]->value;
    const Tensor& bv = n.parents[1]->value;
    Accumulate(n.parents[0], n.grad.MatMul(bv.Transposed()));
    Accumulate(n.parents[1], av.Transposed().MatMul(n.grad));
  });
}

Var Transpose(const Var& a) {
  return MakeNode(a.value().Transposed(), {a}, [](Node& n) {
    Accumulate(n.parents[0], n.grad.Transposed());
  });
}

Var Reshape(const Var& a, Shape shape) {
  return MakeNode(a.value().Reshaped(std::move(shape)), {a}, [](Node& n) {
    Accumulate(n.parents[0], n.grad.Reshaped(n.parents[0]->value.shape()));
  });
}

Var AddRowVec(const Var& m, const Var& v) {
  DIFFODE_CHECK_EQ(m.cols(), v.cols());
  DIFFODE_CHECK_EQ(v.rows(), 1);
  Tensor out = m.value();
  for (Index i = 0; i < out.rows(); ++i)
    for (Index j = 0; j < out.cols(); ++j) out.at(i, j) += v.value().at(0, j);
  return MakeNode(std::move(out), {m, v}, [](Node& n) {
    Accumulate(n.parents[0], n.grad);
    Accumulate(n.parents[1], n.grad.ColSums());
  });
}

Var MulRowVec(const Var& m, const Var& v) {
  DIFFODE_CHECK_EQ(m.cols(), v.cols());
  DIFFODE_CHECK_EQ(v.rows(), 1);
  Tensor out = m.value();
  for (Index i = 0; i < out.rows(); ++i)
    for (Index j = 0; j < out.cols(); ++j) out.at(i, j) *= v.value().at(0, j);
  return MakeNode(std::move(out), {m, v}, [](Node& n) {
    const Tensor& mv = n.parents[0]->value;
    const Tensor& vv = n.parents[1]->value;
    Tensor gm(mv.shape());
    Tensor gv(vv.shape());
    for (Index i = 0; i < mv.rows(); ++i) {
      for (Index j = 0; j < mv.cols(); ++j) {
        gm.at(i, j) = n.grad.at(i, j) * vv.at(0, j);
        gv.at(0, j) += n.grad.at(i, j) * mv.at(i, j);
      }
    }
    Accumulate(n.parents[0], gm);
    Accumulate(n.parents[1], gv);
  });
}

Var LayerNormRows(const Var& a, Scalar eps) {
  const Tensor& x = a.value();
  const Index r = x.rows();
  const Index c = x.cols();
  DIFFODE_CHECK_GT(c, 0);
  Tensor y(x.shape());
  Tensor inv_sigma(Shape{r, 1});
  for (Index i = 0; i < r; ++i) {
    Scalar mean = 0.0;
    for (Index j = 0; j < c; ++j) mean += x.at(i, j);
    mean /= static_cast<Scalar>(c);
    Scalar var = 0.0;
    for (Index j = 0; j < c; ++j) {
      const Scalar d = x.at(i, j) - mean;
      var += d * d;
    }
    var /= static_cast<Scalar>(c);
    const Scalar inv = 1.0 / std::sqrt(var + eps);
    inv_sigma.at(i, 0) = inv;
    for (Index j = 0; j < c; ++j) y.at(i, j) = (x.at(i, j) - mean) * inv;
  }
  return MakeNode(std::move(y), {a}, [inv_sigma](Node& n) {
    // Per row: dx = (g - mean(g) - y * mean(g .* y)) * inv_sigma.
    const Tensor& y = n.value;
    const Index r = y.rows();
    const Index c = y.cols();
    Tensor gx(y.shape());
    for (Index i = 0; i < r; ++i) {
      Scalar g_mean = 0.0, gy_mean = 0.0;
      for (Index j = 0; j < c; ++j) {
        g_mean += n.grad.at(i, j);
        gy_mean += n.grad.at(i, j) * y.at(i, j);
      }
      g_mean /= static_cast<Scalar>(c);
      gy_mean /= static_cast<Scalar>(c);
      for (Index j = 0; j < c; ++j) {
        gx.at(i, j) = (n.grad.at(i, j) - g_mean - y.at(i, j) * gy_mean) *
                      inv_sigma.at(i, 0);
      }
    }
    Accumulate(n.parents[0], gx);
  });
}

Var Softmax(const Var& a) {
  const Tensor& x = a.value();
  Tensor y(x.shape());
  const Index r = x.rows();
  const Index c = x.cols();
  for (Index i = 0; i < r; ++i) {
    Scalar m = x.at(i, 0);
    for (Index j = 1; j < c; ++j) m = std::max(m, x.at(i, j));
    Scalar z = 0.0;
    for (Index j = 0; j < c; ++j) {
      const Scalar e = std::exp(x.at(i, j) - m);
      y.at(i, j) = e;
      z += e;
    }
    for (Index j = 0; j < c; ++j) y.at(i, j) /= z;
  }
  return MakeNode(std::move(y), {a}, [](Node& n) {
    // Per row: dx = y .* (g - (g . y))
    const Tensor& y = n.value;
    Tensor gx(y.shape());
    for (Index i = 0; i < y.rows(); ++i) {
      Scalar gy = 0.0;
      for (Index j = 0; j < y.cols(); ++j) gy += n.grad.at(i, j) * y.at(i, j);
      for (Index j = 0; j < y.cols(); ++j)
        gx.at(i, j) = y.at(i, j) * (n.grad.at(i, j) - gy);
    }
    Accumulate(n.parents[0], gx);
  });
}

Var Tanh(const Var& a) {
  return MakeNode(a.value().Map([](Scalar x) { return std::tanh(x); }), {a},
                  [](Node& n) {
                    Tensor g = n.grad;
                    for (Index i = 0; i < g.numel(); ++i)
                      g[i] *= 1.0 - n.value[i] * n.value[i];
                    Accumulate(n.parents[0], g);
                  });
}

Var Sigmoid(const Var& a) {
  return MakeNode(
      a.value().Map([](Scalar x) { return 1.0 / (1.0 + std::exp(-x)); }), {a},
      [](Node& n) {
        Tensor g = n.grad;
        for (Index i = 0; i < g.numel(); ++i)
          g[i] *= n.value[i] * (1.0 - n.value[i]);
        Accumulate(n.parents[0], g);
      });
}

Var Relu(const Var& a) {
  return MakeNode(a.value().Map([](Scalar x) { return x > 0 ? x : 0.0; }), {a},
                  [](Node& n) {
                    Tensor g = n.grad;
                    for (Index i = 0; i < g.numel(); ++i)
                      if (n.parents[0]->value[i] <= 0) g[i] = 0.0;
                    Accumulate(n.parents[0], g);
                  });
}

Var Exp(const Var& a) {
  return MakeNode(a.value().Map([](Scalar x) { return std::exp(x); }), {a},
                  [](Node& n) { Accumulate(n.parents[0], n.grad * n.value); });
}

Var Log(const Var& a) {
  return MakeNode(a.value().Map([](Scalar x) { return std::log(x); }), {a},
                  [](Node& n) {
                    Accumulate(n.parents[0],
                               n.grad.CwiseQuotient(n.parents[0]->value));
                  });
}

Var Sqrt(const Var& a) {
  return MakeNode(a.value().Map([](Scalar x) { return std::sqrt(x); }), {a},
                  [](Node& n) {
                    Tensor g = n.grad;
                    for (Index i = 0; i < g.numel(); ++i)
                      g[i] *= 0.5 / n.value[i];
                    Accumulate(n.parents[0], g);
                  });
}

Var Square(const Var& a) {
  return MakeNode(a.value() * a.value(), {a}, [](Node& n) {
    Accumulate(n.parents[0], n.grad * n.parents[0]->value * 2.0);
  });
}

Var Sin(const Var& a) {
  return MakeNode(a.value().Map([](Scalar x) { return std::sin(x); }), {a},
                  [](Node& n) {
                    Tensor g = n.grad;
                    for (Index i = 0; i < g.numel(); ++i)
                      g[i] *= std::cos(n.parents[0]->value[i]);
                    Accumulate(n.parents[0], g);
                  });
}

Var Cos(const Var& a) {
  return MakeNode(a.value().Map([](Scalar x) { return std::cos(x); }), {a},
                  [](Node& n) {
                    Tensor g = n.grad;
                    for (Index i = 0; i < g.numel(); ++i)
                      g[i] *= -std::sin(n.parents[0]->value[i]);
                    Accumulate(n.parents[0], g);
                  });
}

Var Sum(const Var& a) {
  Tensor out(Shape{1, 1});
  out[0] = a.value().Sum();
  return MakeNode(std::move(out), {a}, [](Node& n) {
    Accumulate(n.parents[0],
               Tensor::Full(n.parents[0]->value.shape(), n.grad[0]));
  });
}

Var Mean(const Var& a) {
  const Scalar inv = 1.0 / static_cast<Scalar>(a.value().numel());
  Tensor out(Shape{1, 1});
  out[0] = a.value().Sum() * inv;
  return MakeNode(std::move(out), {a}, [inv](Node& n) {
    Accumulate(n.parents[0],
               Tensor::Full(n.parents[0]->value.shape(), n.grad[0] * inv));
  });
}

Var Dot(const Var& a, const Var& b) {
  DIFFODE_CHECK_EQ(a.value().numel(), b.value().numel());
  Tensor out(Shape{1, 1});
  out[0] = a.value().Dot(b.value());
  return MakeNode(std::move(out), {a, b}, [](Node& n) {
    const Scalar g = n.grad[0];
    Accumulate(n.parents[0],
               (n.parents[1]->value * g).Reshaped(n.parents[0]->value.shape()));
    Accumulate(n.parents[1],
               (n.parents[0]->value * g).Reshaped(n.parents[1]->value.shape()));
  });
}

Var ConcatCols(const std::vector<Var>& parts) {
  DIFFODE_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  std::vector<Index> widths;
  for (const auto& p : parts) {
    values.push_back(p.value());
    widths.push_back(p.cols());
  }
  return MakeNode(Tensor::ConcatCols(values),
                  std::vector<Var>(parts.begin(), parts.end()),
                  [widths](Node& n) {
                    Index c = 0;
                    for (std::size_t k = 0; k < widths.size(); ++k) {
                      Tensor g(n.parents[k]->value.shape());
                      for (Index i = 0; i < g.rows(); ++i)
                        for (Index j = 0; j < widths[k]; ++j)
                          g.at(i, j) = n.grad.at(i, c + j);
                      Accumulate(n.parents[k], g);
                      c += widths[k];
                    }
                  });
}

Var ConcatRows(const std::vector<Var>& parts) {
  DIFFODE_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  std::vector<Index> heights;
  for (const auto& p : parts) {
    values.push_back(p.value());
    heights.push_back(p.rows());
  }
  return MakeNode(Tensor::ConcatRows(values),
                  std::vector<Var>(parts.begin(), parts.end()),
                  [heights](Node& n) {
                    Index r = 0;
                    for (std::size_t k = 0; k < heights.size(); ++k) {
                      Tensor g(n.parents[k]->value.shape());
                      for (Index i = 0; i < heights[k]; ++i)
                        for (Index j = 0; j < g.cols(); ++j)
                          g.at(i, j) = n.grad.at(r + i, j);
                      Accumulate(n.parents[k], g);
                      r += heights[k];
                    }
                  });
}

Var SliceCols(const Var& a, Index begin, Index count) {
  DIFFODE_CHECK_GE(begin, 0);
  DIFFODE_CHECK_LE(begin + count, a.cols());
  const Index r = a.rows();
  Tensor out(Shape{r, count});
  for (Index i = 0; i < r; ++i)
    for (Index j = 0; j < count; ++j) out.at(i, j) = a.value().at(i, begin + j);
  return MakeNode(std::move(out), {a}, [begin, count](Node& n) {
    Tensor g(n.parents[0]->value.shape());
    for (Index i = 0; i < n.grad.rows(); ++i)
      for (Index j = 0; j < count; ++j) g.at(i, begin + j) = n.grad.at(i, j);
    Accumulate(n.parents[0], g);
  });
}

Var SliceRows(const Var& a, Index begin, Index count) {
  return MakeNode(a.value().Rows(begin, count), {a}, [begin, count](Node& n) {
    Tensor g(n.parents[0]->value.shape());
    for (Index i = 0; i < count; ++i)
      for (Index j = 0; j < n.grad.cols(); ++j)
        g.at(begin + i, j) = n.grad.at(i, j);
    Accumulate(n.parents[0], g);
  });
}

Var MseLoss(const Var& pred, const Tensor& target) {
  DIFFODE_CHECK(pred.value().shape() == target.shape());
  const Scalar inv = 1.0 / static_cast<Scalar>(target.numel());
  Tensor diff = pred.value() - target;
  Tensor out(Shape{1, 1});
  out[0] = diff.Dot(diff) * inv;
  return MakeNode(std::move(out), {pred}, [diff, inv](Node& n) {
    Accumulate(n.parents[0], diff * (2.0 * inv * n.grad[0]));
  });
}

Var MaskedMseLoss(const Var& pred, const Tensor& target, const Tensor& mask) {
  DIFFODE_CHECK(pred.value().shape() == target.shape());
  DIFFODE_CHECK(pred.value().shape() == mask.shape());
  Scalar count = mask.Sum();
  if (count <= 0) count = 1.0;
  const Scalar inv = 1.0 / count;
  Tensor diff = (pred.value() - target) * mask;
  Tensor out(Shape{1, 1});
  out[0] = diff.Dot(diff) * inv;
  return MakeNode(std::move(out), {pred}, [diff, inv](Node& n) {
    Accumulate(n.parents[0], diff * (2.0 * inv * n.grad[0]));
  });
}

Var SoftmaxCrossEntropy(const Var& logits, const std::vector<Index>& labels) {
  const Index b = logits.rows();
  const Index c = logits.cols();
  DIFFODE_CHECK_EQ(static_cast<Index>(labels.size()), b);
  const Tensor& x = logits.value();
  Tensor probs(x.shape());
  Scalar loss = 0.0;
  for (Index i = 0; i < b; ++i) {
    Scalar m = x.at(i, 0);
    for (Index j = 1; j < c; ++j) m = std::max(m, x.at(i, j));
    Scalar z = 0.0;
    for (Index j = 0; j < c; ++j) {
      const Scalar e = std::exp(x.at(i, j) - m);
      probs.at(i, j) = e;
      z += e;
    }
    for (Index j = 0; j < c; ++j) probs.at(i, j) /= z;
    const Index label = labels[static_cast<std::size_t>(i)];
    DIFFODE_CHECK_GE(label, 0);
    DIFFODE_CHECK_LT(label, c);
    loss -= std::log(std::max(probs.at(i, label), 1e-300));
  }
  Tensor out(Shape{1, 1});
  out[0] = loss / static_cast<Scalar>(b);
  return MakeNode(std::move(out), {logits}, [probs, labels](Node& n) {
    Tensor g = probs;
    const Scalar scale = n.grad[0] / static_cast<Scalar>(g.rows());
    for (Index i = 0; i < g.rows(); ++i) {
      g.at(i, labels[static_cast<std::size_t>(i)]) -= 1.0;
      for (Index j = 0; j < g.cols(); ++j) g.at(i, j) *= scale;
    }
    Accumulate(n.parents[0], g);
  });
}

}  // namespace diffode::ag
