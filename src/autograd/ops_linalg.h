#ifndef DIFFODE_AUTOGRAD_OPS_LINALG_H_
#define DIFFODE_AUTOGRAD_OPS_LINALG_H_

#include "autograd/variable.h"

namespace diffode::ag {

// Differentiable inverse of a square matrix (LU under the hood).
// Backward: dA = -A^{-T} G A^{-T}.
Var Inverse(const Var& a);

// Differentiable inverse of (A + ridge*I); the ridge stabilizes Gram
// matrices like ZᵀZ when Z is nearly rank-deficient.
Var RidgeInverse(const Var& a, Scalar ridge);

}  // namespace diffode::ag

#endif  // DIFFODE_AUTOGRAD_OPS_LINALG_H_
