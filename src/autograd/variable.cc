#include "autograd/variable.h"

#include "core/alloc_stats.h"

namespace diffode::ag {
namespace {

// Per-thread scratch for Backward. The containers keep their capacity
// between calls, so a warm backward pass performs no scratch allocation.
struct BackwardScratch {
  std::vector<Node*> order;
  std::vector<std::pair<Node*, std::size_t>> stack;
};

BackwardScratch& Scratch() {
  static thread_local BackwardScratch scratch;
  return scratch;
}

// Traversal epoch source. Each Backward call takes a globally unique epoch
// and stamps it into Node::visit_mark as its visited test — a hash set over
// a million-node tape was a measurable share of backward time. Shards share
// only leaf nodes (params, constants), so a concurrent traversal clobbering
// a shared leaf's mark at worst re-pushes that leaf; leaves have no
// backward_fn, so a duplicate in `order` is a no-op.
std::atomic<std::uint64_t> g_visit_epoch{0};

// Iterative post-order DFS over parents; returns nodes so that every node
// appears after all nodes that depend on it when iterated in reverse.
void TopoSort(Node* root, BackwardScratch& s, std::uint64_t epoch) {
  s.order.clear();
  s.stack.clear();
  s.stack.emplace_back(root, 0);
  root->visit_mark.store(epoch, std::memory_order_relaxed);
  while (!s.stack.empty()) {
    auto& [node, next_child] = s.stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child].get();
      ++next_child;
      if (child != nullptr &&
          child->visit_mark.load(std::memory_order_relaxed) != epoch) {
        child->visit_mark.store(epoch, std::memory_order_relaxed);
        s.stack.emplace_back(child, 0);
      }
    } else {
      s.order.push_back(node);
      s.stack.pop_back();
    }
  }
}

thread_local GradSink* tls_sink = nullptr;

}  // namespace

std::shared_ptr<Node> AllocateNode() {
  if (TapeArena* arena = TapeArena::Active()) {
    core::AllocStats::RecordArenaNode();
    return std::allocate_shared<Node>(ArenaAllocator<Node>(arena));
  }
  core::AllocStats::RecordHeapNode();
  return std::make_shared<Node>();
}

void Node::AccumulateGrad(const Tensor& g) {
  if (GradSink* sink = tls_sink) {
    if (sink->Accumulate(this, g)) return;
    // Unregistered leaves that don't require grad are shared read-only
    // inputs under data-parallel training; drop their gradients rather than
    // racing on them (nothing reads a constant's gradient).
    if (!requires_grad && !backward_fn && parents.empty()) return;
  }
  EnsureGrad();
  grad += g;
}

GradSink::GradSink(const std::vector<Var>& params) {
  nodes_.reserve(params.size());
  grads_.resize(params.size());
  for (const auto& p : params) {
    DIFFODE_CHECK(p.defined());
    p.node()->sink_slot = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(p.node().get());
  }
}

bool GradSink::Accumulate(const Node* node, const Tensor& g) {
  const std::int32_t slot = node->sink_slot;
  if (slot < 0 || static_cast<std::size_t>(slot) >= nodes_.size() ||
      nodes_[static_cast<std::size_t>(slot)] != node)
    return false;
  Tensor& buf = grads_[static_cast<std::size_t>(slot)];
  if (buf.shape() != node->value.shape()) buf = Tensor(node->value.shape());
  buf += g;
  return true;
}

void GradSink::MergeFrom(const GradSink& other) {
  DIFFODE_CHECK_EQ(static_cast<Index>(nodes_.size()),
                   static_cast<Index>(other.nodes_.size()));
  for (std::size_t i = 0; i < grads_.size(); ++i) {
    const Tensor& theirs = other.grads_[i];
    if (theirs.empty()) continue;
    Tensor& mine = grads_[i];
    if (mine.empty()) {
      mine = theirs;
    } else {
      mine += theirs;
    }
  }
}

void GradSink::FlushToNodes() {
  for (std::size_t i = 0; i < grads_.size(); ++i) {
    if (grads_[i].empty()) continue;
    Node* n = nodes_[i];
    n->EnsureGrad();
    n->grad += grads_[i];
  }
}

GradSink* GradSink::Active() { return tls_sink; }

GradSink::Scope::Scope(GradSink* sink) {
  DIFFODE_CHECK(tls_sink == nullptr);
  tls_sink = sink;
}

GradSink::Scope::~Scope() { tls_sink = nullptr; }

void Var::Backward() {
  DIFFODE_CHECK_MSG(node_ != nullptr,
                    "Backward on a value-only (no-grad) Var");
  Backward(Tensor::Ones(node_->value.shape()));
}

void Var::Backward(const Tensor& seed) {
  DIFFODE_CHECK_MSG(node_ != nullptr,
                    "Backward on a value-only (no-grad) Var");
  DIFFODE_CHECK(seed.shape() == node_->value.shape());
  BackwardScratch& s = Scratch();
  const std::uint64_t epoch =
      g_visit_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  TopoSort(node_.get(), s, epoch);
  node_->AccumulateGrad(seed);
  // Post-order places dependencies first; walk from the root backwards.
  for (auto it = s.order.rbegin(); it != s.order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn) {
      n->EnsureGrad();
      n->backward_fn(*n);
    }
  }
}

}  // namespace diffode::ag
