#include "autograd/variable.h"

#include <unordered_set>

namespace diffode::ag {
namespace {

// Iterative post-order DFS over parents; returns nodes so that every node
// appears after all nodes that depend on it when iterated in reverse.
void TopoSort(Node* root, std::vector<Node*>* order) {
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child].get();
      ++next_child;
      if (child != nullptr && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Var::Backward() { Backward(Tensor::Ones(node_->value.shape())); }

void Var::Backward(const Tensor& seed) {
  DIFFODE_CHECK(node_ != nullptr);
  DIFFODE_CHECK(seed.shape() == node_->value.shape());
  std::vector<Node*> order;
  TopoSort(node_.get(), &order);
  node_->EnsureGrad();
  node_->grad += seed;
  // Post-order places dependencies first; walk from the root backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn) {
      n->EnsureGrad();
      n->backward_fn(*n);
    }
  }
}

}  // namespace diffode::ag
