#ifndef DIFFODE_AUTOGRAD_ARENA_H_
#define DIFFODE_AUTOGRAD_ARENA_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/alloc_stats.h"
#include "tensor/check.h"

namespace diffode::ag {

// Bump allocator for tape storage: autograd `Node`s (via
// `std::allocate_shared`, so the shared_ptr control block and the node land
// in one arena slot) and their parent-pointer vectors. A training step
// allocates thousands of short-lived nodes; the arena serves them by pointer
// bump and reclaims them wholesale with `Reset()` once the step's tape has
// been destroyed. Blocks are retained across resets, so a warm step touches
// the allocator only to move a pointer.
//
// Lifetime rule (enforced by ASan in scripts/check.sh): every shared_ptr
// into the arena must be gone before Reset(). The trainer guarantees this by
// resetting only after the shard's tape (loss Var, aux-loss entries) has
// been destroyed. Long-lived parameter nodes are never arena-allocated.
//
// Scopes are re-entrant and per-thread; `ArenaAllocator` captures the active
// arena at construction so deallocation stays consistent even if the scope
// has since changed.
class TapeArena {
 public:
  TapeArena() = default;
  ~TapeArena() = default;

  TapeArena(const TapeArena&) = delete;
  TapeArena& operator=(const TapeArena&) = delete;

  // Bump-allocates `bytes` with the given alignment. The warm path — room
  // left in the current block — is inline: a training step makes millions of
  // node/parent-vector allocations and the call overhead of an out-of-line
  // pointer bump is itself measurable. Block advance/growth stays in
  // AllocateSlow.
  void* Allocate(std::size_t bytes, std::size_t align) {
    DIFFODE_CHECK_GT(align, 0u);
    if (cur_ < blocks_.size()) {
      Block& b = blocks_[cur_];
      std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= b.capacity) {
        void* p = b.data.get() + aligned;
        offset_ = aligned + bytes;
        in_use_ += bytes;
        core::AllocStats::RecordArenaBytes(bytes);
        return p;
      }
    }
    return AllocateSlow(bytes, align);
  }

  // Makes all arena memory reusable. Blocks are kept. The caller must have
  // dropped every pointer into the arena first.
  void Reset();

  // Bytes handed out since the last Reset.
  std::size_t BytesInUse() const { return in_use_; }

  // The arena installed on the current thread, or nullptr if no scope is
  // active (or arenas are disabled). Inline for the same reason as
  // Allocate: ArenaAllocator construction queries it per tape allocation.
  static TapeArena* Active() {
    if (!Enabled()) return nullptr;
    return tls_active_;
  }

  // The calling thread's arena (created on first use).
  static TapeArena& ThreadLocal();

  // Master switch for A/B equivalence tests. When disabled, Active()
  // returns nullptr even inside a Scope, so nodes fall back to make_shared.
  static void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  // RAII installer of the calling thread's arena. Re-entrant.
  class Scope {
   public:
    Scope();
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TapeArena* prev_;
  };

 private:
  static constexpr std::size_t kBlockSize = 256 * 1024;

  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t capacity = 0;
  };

  // Out-of-line tail of Allocate: advances to a retained block or grows the
  // arena, then bumps.
  void* AllocateSlow(std::size_t bytes, std::size_t align);

  inline static std::atomic<bool> enabled_{true};
  inline static thread_local TapeArena* tls_active_ = nullptr;

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;     // index of the block being bumped
  std::size_t offset_ = 0;  // bump offset within blocks_[cur_]
  std::size_t in_use_ = 0;
};

// Minimal allocator over TapeArena. Captures the thread's active arena at
// construction time; with no active arena it degrades to plain heap calls.
// Arena deallocation is a no-op (reclamation happens in Reset()).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept : arena_(TapeArena::Active()) {}
  explicit ArenaAllocator(TapeArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ != nullptr)
      return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  TapeArena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const noexcept {
    return arena_ != other.arena();
  }

 private:
  TapeArena* arena_;
};

}  // namespace diffode::ag

#endif  // DIFFODE_AUTOGRAD_ARENA_H_
