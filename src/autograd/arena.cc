#include "autograd/arena.h"

#include <algorithm>
#include <atomic>

#include "core/alloc_stats.h"
#include "tensor/check.h"

namespace diffode::ag {
namespace {

std::atomic<bool> g_arena_enabled{true};

thread_local TapeArena* tls_active_arena = nullptr;

}  // namespace

void* TapeArena::Allocate(std::size_t bytes, std::size_t align) {
  DIFFODE_CHECK_GT(align, 0u);
  for (;;) {
    if (cur_ < blocks_.size()) {
      Block& b = blocks_[cur_];
      std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= b.capacity) {
        void* p = b.data.get() + aligned;
        offset_ = aligned + bytes;
        in_use_ += bytes;
        core::AllocStats::RecordArenaBytes(bytes);
        return p;
      }
      // Current block exhausted; move on (possibly to a retained block).
      ++cur_;
      offset_ = 0;
      continue;
    }
    Block b;
    b.capacity = std::max(kBlockSize, bytes + align);
    b.data.reset(new char[b.capacity]);
    blocks_.push_back(std::move(b));
  }
}

void TapeArena::Reset() {
  cur_ = 0;
  offset_ = 0;
  in_use_ = 0;
}

TapeArena* TapeArena::Active() {
  if (!Enabled()) return nullptr;
  return tls_active_arena;
}

TapeArena& TapeArena::ThreadLocal() {
  static thread_local TapeArena arena;
  return arena;
}

void TapeArena::SetEnabled(bool enabled) {
  g_arena_enabled.store(enabled, std::memory_order_relaxed);
}

bool TapeArena::Enabled() {
  return g_arena_enabled.load(std::memory_order_relaxed);
}

TapeArena::Scope::Scope() : prev_(tls_active_arena) {
  tls_active_arena = &TapeArena::ThreadLocal();
}

TapeArena::Scope::~Scope() { tls_active_arena = prev_; }

}  // namespace diffode::ag
