#include "autograd/arena.h"

#include <algorithm>

namespace diffode::ag {

void* TapeArena::AllocateSlow(std::size_t bytes, std::size_t align) {
  for (;;) {
    if (cur_ < blocks_.size()) {
      Block& b = blocks_[cur_];
      std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= b.capacity) {
        void* p = b.data.get() + aligned;
        offset_ = aligned + bytes;
        in_use_ += bytes;
        core::AllocStats::RecordArenaBytes(bytes);
        return p;
      }
      // Current block exhausted; move on (possibly to a retained block).
      ++cur_;
      offset_ = 0;
      continue;
    }
    Block b;
    b.capacity = std::max(kBlockSize, bytes + align);
    b.data.reset(new char[b.capacity]);
    blocks_.push_back(std::move(b));
  }
}

void TapeArena::Reset() {
  cur_ = 0;
  offset_ = 0;
  in_use_ = 0;
}

TapeArena& TapeArena::ThreadLocal() {
  static thread_local TapeArena arena;
  return arena;
}

TapeArena::Scope::Scope() : prev_(tls_active_) {
  tls_active_ = &TapeArena::ThreadLocal();
}

TapeArena::Scope::~Scope() { tls_active_ = prev_; }

}  // namespace diffode::ag
