#include "autograd/ops_linalg.h"

#include "autograd/ops.h"
#include "linalg/lu.h"

namespace diffode::ag {
namespace {

Var MakeInverseNode(const Var& a, Tensor inv) {
  if (!GradMode::IsEnabled()) return Var(std::move(inv));
  auto node = AllocateNode();
  node->value = std::move(inv);
  std::shared_ptr<Node> pn = a.EnsureNode();
  node->requires_grad = pn->requires_grad || bool(pn->backward_fn);
  node->parents.push_back(std::move(pn));
  if (node->requires_grad) {
    node->backward_fn = [](Node& n) {
      // d/dA of A^{-1}: dA = -A^{-T} G A^{-T}, via the transpose-free GEMMs.
      const Tensor& inv = n.value;
      Tensor ga = inv.TransposedMatMul(n.grad).MatMulTransposed(inv) * -1.0;
      n.parents[0]->AccumulateGrad(ga);
    };
  }
  return Var(std::move(node));
}

}  // namespace

Var Inverse(const Var& a) {
  DIFFODE_CHECK_EQ(a.rows(), a.cols());
  return MakeInverseNode(a, linalg::Inverse(a.value()));
}

Var RidgeInverse(const Var& a, Scalar ridge) {
  DIFFODE_CHECK_EQ(a.rows(), a.cols());
  Tensor reg = a.value();
  for (Index i = 0; i < reg.rows(); ++i) reg.at(i, i) += ridge;
  // The ridge shifts only the forward value; d(A + rI)/dA = I, so the
  // inverse-gradient formula applies unchanged with the regularized inverse.
  return MakeInverseNode(a, linalg::Inverse(reg));
}

}  // namespace diffode::ag
