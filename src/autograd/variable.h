#ifndef DIFFODE_AUTOGRAD_VARIABLE_H_
#define DIFFODE_AUTOGRAD_VARIABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "autograd/arena.h"
#include "core/alloc_stats.h"
#include "tensor/tensor.h"

namespace diffode::ag {

// One node of the reverse-mode tape. Nodes own their forward value and an
// accumulated gradient buffer. Intermediate nodes are created afresh on every
// forward pass (from the thread's TapeArena when a scope is active);
// parameter nodes are long-lived and shared between passes, so gradient
// accumulation across samples falls out naturally.
struct Node {
  // Parent pointers live in the same arena as the node itself (or on the
  // heap for arena-less nodes; the allocator captures the choice at node
  // construction).
  using ParentVec =
      std::vector<std::shared_ptr<Node>, ArenaAllocator<std::shared_ptr<Node>>>;

  Tensor value;
  Tensor grad;  // allocated lazily, same shape as value
  bool requires_grad = false;
  // Registration slot in the current GradSink generation, or -1. Written by
  // GradSink construction (single-threaded, before shards fan out), read by
  // Accumulate on pool threads. A stale slot from an earlier sink is
  // harmless: Accumulate verifies nodes_[slot] == this before trusting it.
  std::int32_t sink_slot = -1;
  // Last traversal that visited this node (see TopoSort in variable.cc).
  // Epochs are globally unique per Backward call, so a concurrent traversal
  // writing its own epoch into a shared leaf can never alias this one's;
  // relaxed atomics only rule out torn values.
  std::atomic<std::uint64_t> visit_mark{0};
  ParentVec parents;
  // Scatters this node's gradient into its parents' gradients.
  std::function<void(Node&)> backward_fn;

  // Grad buffers are allocated once and then reused: ZeroGrad clears them in
  // place, so at steady state this is a shape compare and nothing else.
  void EnsureGrad() {
    if (grad.shape() != value.shape()) grad = Tensor(value.shape());
  }

  // Accumulates g into this node's gradient. Every backward_fn must route
  // gradient scatter through this (not `grad +=` directly): when a GradSink
  // scope is active on the current thread, gradients of registered
  // (parameter) nodes are redirected into the sink's private buffers so that
  // concurrent Backward() calls over tapes sharing parameters never race.
  void AccumulateGrad(const Tensor& g);
};

// A private parameter-gradient buffer for one shard of a data-parallel
// batch. Construct one per shard over the model's parameter list, install it
// with a Scope for the duration of the shard's forward/backward, then merge
// shards deterministically and flush into the shared parameter nodes from a
// single thread:
//
//   ag::GradSink sink(params);
//   {
//     ag::GradSink::Scope scope(&sink);
//     loss.Backward();               // param grads land in `sink`
//   }
//   sink_a.MergeFrom(sink_b);        // fixed merge order => deterministic
//   sink_a.FlushToNodes();           // node->grad += buffer
//
// While a scope is active, gradients of *unregistered* leaf nodes that do
// not require grad (shared constants) are dropped instead of accumulated:
// nothing reads them, and writing would race across shards.
class GradSink {
 public:
  explicit GradSink(const std::vector<class Var>& params);

  // Accumulates into the buffer for `node` if registered; false otherwise.
  bool Accumulate(const Node* node, const Tensor& g);
  // Adds other's buffers into this one (parameter registration order).
  void MergeFrom(const GradSink& other);
  // Adds the buffered gradients into the registered nodes' grad fields.
  // Call from one thread only, with no scope active.
  void FlushToNodes();

  // The sink installed on the current thread, or nullptr.
  static GradSink* Active();

  // RAII installer; scopes may not nest on a thread.
  class Scope {
   public:
    explicit Scope(GradSink* sink);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };

 private:
  // Raw pointers: registered params are owned by the caller for the sink's
  // whole lifetime (the trainer holds the Vars across the step). Lookup is
  // by Node::sink_slot — one sink is built per shard per step, and a hash
  // map per sink (plus a probe per accumulated gradient) was measurable.
  std::vector<Node*> nodes_;   // registration order
  std::vector<Tensor> grads_;  // lazily shaped, same order
};

// Allocates a tape node: from the calling thread's active TapeArena when a
// scope is installed (wholesale reclamation at step end), or from the heap
// otherwise. Defined in variable.cc.
std::shared_ptr<Node> AllocateNode();

// Per-thread gradient mode. While grad is enabled (the default), every op
// builds a tape node; with grad disabled, ops return value-only Vars — no
// node, no parent capture, no backward closure — so a forward pass is pure
// kernel calls over pooled tensors. Thread-local because data-parallel
// shards and eval loops toggle it independently per pool thread.
class GradMode {
 public:
  static bool IsEnabled() { return tls_enabled_; }
  static void SetEnabled(bool enabled) { tls_enabled_ = enabled; }

 private:
  inline static thread_local bool tls_enabled_ = true;
};

// RAII grad-off scope for inference / evaluation. Nests: the previous mode
// is restored on exit, so a NoGradScope inside another is harmless.
class NoGradScope {
 public:
  NoGradScope() : prev_(GradMode::IsEnabled()) { GradMode::SetEnabled(false); }
  ~NoGradScope() { GradMode::SetEnabled(prev_); }
  NoGradScope(const NoGradScope&) = delete;
  NoGradScope& operator=(const NoGradScope&) = delete;

 private:
  bool prev_;
};

// Lightweight handle to a tape node (shared ownership), or — in no-grad
// mode — to a bare value. A value-only Var holds its tensor behind a
// refcounted holder and never touches the node allocators, so copying one is
// a refcount bump exactly like copying a node-backed Var (models store Vars
// in maps and vectors on the hot path; a buffer copy per insert would eat
// the tape savings). The holder's refcount is deliberately NON-atomic: a
// no-grad forward churns through thousands of value-only temporaries, all
// born and destroyed on the thread running that forward, and the atomic
// inc/dec pairs of a shared_ptr were a measurable slice of the serving
// forward. The rule this buys into: a value-only Var may move between
// threads only across a synchronization point (e.g. the trainer joining its
// eval shards), never be copied concurrently. Long-lived cross-thread state
// (parameters) is node-backed and keeps shared_ptr semantics.
//
// Using a value-only Var as the operand of a grad-mode op wraps it in a
// fresh constant node (detached-leaf semantics).
class Var {
 public:
  Var() = default;
  // Nodes that require grad are parameters: long-lived, so they are always
  // heap-allocated and never touch the (per-step) arena — even inside a
  // NoGradScope, so a model can be constructed or loaded under either mode.
  // Non-parameter wraps become value-only when grad is off.
  explicit Var(Tensor value, bool requires_grad = false) {
    if (requires_grad) {
      node_ = std::make_shared<Node>();
      node_->value = std::move(value);
      node_->requires_grad = true;
    } else if (GradMode::IsEnabled()) {
      node_ = AllocateNode();
      node_->value = std::move(value);
    } else {
      core::AllocStats::RecordValueOnlyVar();
      value_ = MakeValueHolder(std::move(value));
    }
  }
  explicit Var(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  Var(const Var& other) : node_(other.node_), value_(other.value_) {
    if (value_ != nullptr) ++value_->refs;
  }
  Var(Var&& other) noexcept
      : node_(std::move(other.node_)), value_(other.value_) {
    other.value_ = nullptr;
  }
  Var& operator=(const Var& other) {
    if (this != &other) {
      ValueHolder* const keep = other.value_;  // self-alias via holder
      if (keep != nullptr) ++keep->refs;
      ReleaseValue();
      node_ = other.node_;
      value_ = keep;
    }
    return *this;
  }
  Var& operator=(Var&& other) noexcept {
    if (this != &other) {
      ReleaseValue();
      node_ = std::move(other.node_);
      value_ = other.value_;
      other.value_ = nullptr;
    }
    return *this;
  }
  ~Var() { ReleaseValue(); }

  bool defined() const { return node_ != nullptr || value_ != nullptr; }
  const Tensor& value() const { return node_ ? node_->value : value_->value; }
  Tensor& mutable_value() { return node_ ? node_->value : value_->value; }
  Tensor& grad() {
    DIFFODE_CHECK_MSG(node_ != nullptr,
                      "grad() on a value-only (no-grad) Var");
    node_->EnsureGrad();
    return node_->grad;
  }
  bool requires_grad() const { return node_ && node_->requires_grad; }
  const std::shared_ptr<Node>& node() const { return node_; }

  // The tape node backing this Var, wrapping a value-only Var in a fresh
  // constant node. Op construction uses this so detached / no-grad-produced
  // values can feed a grad-mode graph as constant leaves.
  std::shared_ptr<Node> EnsureNode() const {
    if (node_) return node_;
    auto node = AllocateNode();
    node->value = value_->value;
    return node;
  }

  // A value-only copy of this Var: same forward value, no tape history, so
  // gradients never flow through it (and downstream no-grad forwards stay
  // node-free). The detached handle is always durable — backed by pool/heap
  // storage, never the tape arena — so it survives TapeArena::Reset; a
  // pool-backed value-only source is shared (refcount bump), everything else
  // is copied out. The serving entry point together with Module::Freeze().
  Var Detach() const {
    Var out;
    if (node_) {
      out.value_ = MakeDurableHolder(Tensor(node_->value));
    } else if (value_ != nullptr) {
      if (value_->arena_owned) {
        out.value_ = MakeDurableHolder(Tensor(value_->value));
      } else {
        ++value_->refs;
        out.value_ = value_;
      }
    }
    return out;
  }

  Index rows() const { return value().rows(); }
  Index cols() const { return value().cols(); }
  const Shape& shape() const { return value().shape(); }

  // Runs reverse-mode accumulation from this (scalar) node. Seeds the output
  // gradient with 1 (or `seed` if given) and walks the tape in reverse
  // topological order.
  void Backward();
  void Backward(const Tensor& seed);

  // Zeroes the gradient in place, reusing the existing buffer (allocates
  // only on first use or shape change).
  void ZeroGrad() {
    if (!node_) return;
    if (node_->grad.shape() == node_->value.shape()) {
      node_->grad.SetZero();
    } else {
      node_->grad = Tensor(node_->value.shape());
    }
  }

 private:
  // Intrusive, thread-confined refcount (see the class comment for why it is
  // not atomic). Starts at 1 for the constructing Var.
  struct ValueHolder {
    explicit ValueHolder(Tensor v) : value(std::move(v)) {}
    Tensor value;
    std::uint32_t refs = 1;
    // Memory reclaimed wholesale by TapeArena::Reset rather than freed at
    // refs == 0 (the destructor still runs then, returning the tensor's
    // buffer to its pool). Same lifetime rule as tape nodes: every Var into
    // the arena must be gone before Reset().
    bool arena_owned = false;
  };

  // Holder storage is bump-allocated from the thread's tape arena when a
  // scope is active (one holder per op in a no-grad forward — the arena
  // gives it away for a pointer bump, exactly as it does for the tape nodes
  // the no-grad path replaces), else from the BufferPool, else the heap.
  static ValueHolder* MakeValueHolder(Tensor value) {
    if (TapeArena* arena = TapeArena::Active()) {
      void* mem = arena->Allocate(sizeof(ValueHolder), alignof(ValueHolder));
      auto* h = ::new (mem) ValueHolder(std::move(value));
      h->arena_owned = true;
      return h;
    }
    return MakeDurableHolder(std::move(value));
  }

  // A holder that survives TapeArena::Reset (for Detach / serving handles).
  static ValueHolder* MakeDurableHolder(Tensor value) {
    void* mem = tensor::BufferPool::Allocate(sizeof(ValueHolder));
    return ::new (mem) ValueHolder(std::move(value));
  }

  void ReleaseValue() noexcept {
    ValueHolder* h = value_;
    value_ = nullptr;
    if (h == nullptr || --h->refs != 0) return;
    const bool arena_owned = h->arena_owned;
    h->~ValueHolder();  // returns the tensor buffer to its pool
    if (!arena_owned) tensor::BufferPool::Deallocate(h, sizeof(ValueHolder));
  }

  std::shared_ptr<Node> node_;
  // Value-only representation (node_ == nullptr): the tensor lives behind a
  // refcounted holder so Var copies never copy the buffer. Non-null even for
  // zero-element tensors, so emptiness stays representable.
  ValueHolder* value_ = nullptr;
};

// Creates a non-trainable constant node.
inline Var Constant(Tensor value) { return Var(std::move(value), false); }

// Creates a trainable parameter node (long-lived; gradients accumulate).
inline Var Param(Tensor value) { return Var(std::move(value), true); }

}  // namespace diffode::ag

#endif  // DIFFODE_AUTOGRAD_VARIABLE_H_
