#ifndef DIFFODE_AUTOGRAD_VARIABLE_H_
#define DIFFODE_AUTOGRAD_VARIABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "autograd/arena.h"
#include "tensor/tensor.h"

namespace diffode::ag {

// One node of the reverse-mode tape. Nodes own their forward value and an
// accumulated gradient buffer. Intermediate nodes are created afresh on every
// forward pass (from the thread's TapeArena when a scope is active);
// parameter nodes are long-lived and shared between passes, so gradient
// accumulation across samples falls out naturally.
struct Node {
  // Parent pointers live in the same arena as the node itself (or on the
  // heap for arena-less nodes; the allocator captures the choice at node
  // construction).
  using ParentVec =
      std::vector<std::shared_ptr<Node>, ArenaAllocator<std::shared_ptr<Node>>>;

  Tensor value;
  Tensor grad;  // allocated lazily, same shape as value
  bool requires_grad = false;
  // Registration slot in the current GradSink generation, or -1. Written by
  // GradSink construction (single-threaded, before shards fan out), read by
  // Accumulate on pool threads. A stale slot from an earlier sink is
  // harmless: Accumulate verifies nodes_[slot] == this before trusting it.
  std::int32_t sink_slot = -1;
  // Last traversal that visited this node (see TopoSort in variable.cc).
  // Epochs are globally unique per Backward call, so a concurrent traversal
  // writing its own epoch into a shared leaf can never alias this one's;
  // relaxed atomics only rule out torn values.
  std::atomic<std::uint64_t> visit_mark{0};
  ParentVec parents;
  // Scatters this node's gradient into its parents' gradients.
  std::function<void(Node&)> backward_fn;

  // Grad buffers are allocated once and then reused: ZeroGrad clears them in
  // place, so at steady state this is a shape compare and nothing else.
  void EnsureGrad() {
    if (grad.shape() != value.shape()) grad = Tensor(value.shape());
  }

  // Accumulates g into this node's gradient. Every backward_fn must route
  // gradient scatter through this (not `grad +=` directly): when a GradSink
  // scope is active on the current thread, gradients of registered
  // (parameter) nodes are redirected into the sink's private buffers so that
  // concurrent Backward() calls over tapes sharing parameters never race.
  void AccumulateGrad(const Tensor& g);
};

// A private parameter-gradient buffer for one shard of a data-parallel
// batch. Construct one per shard over the model's parameter list, install it
// with a Scope for the duration of the shard's forward/backward, then merge
// shards deterministically and flush into the shared parameter nodes from a
// single thread:
//
//   ag::GradSink sink(params);
//   {
//     ag::GradSink::Scope scope(&sink);
//     loss.Backward();               // param grads land in `sink`
//   }
//   sink_a.MergeFrom(sink_b);        // fixed merge order => deterministic
//   sink_a.FlushToNodes();           // node->grad += buffer
//
// While a scope is active, gradients of *unregistered* leaf nodes that do
// not require grad (shared constants) are dropped instead of accumulated:
// nothing reads them, and writing would race across shards.
class GradSink {
 public:
  explicit GradSink(const std::vector<class Var>& params);

  // Accumulates into the buffer for `node` if registered; false otherwise.
  bool Accumulate(const Node* node, const Tensor& g);
  // Adds other's buffers into this one (parameter registration order).
  void MergeFrom(const GradSink& other);
  // Adds the buffered gradients into the registered nodes' grad fields.
  // Call from one thread only, with no scope active.
  void FlushToNodes();

  // The sink installed on the current thread, or nullptr.
  static GradSink* Active();

  // RAII installer; scopes may not nest on a thread.
  class Scope {
   public:
    explicit Scope(GradSink* sink);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };

 private:
  // Raw pointers: registered params are owned by the caller for the sink's
  // whole lifetime (the trainer holds the Vars across the step). Lookup is
  // by Node::sink_slot — one sink is built per shard per step, and a hash
  // map per sink (plus a probe per accumulated gradient) was measurable.
  std::vector<Node*> nodes_;   // registration order
  std::vector<Tensor> grads_;  // lazily shaped, same order
};

// Allocates a tape node: from the calling thread's active TapeArena when a
// scope is installed (wholesale reclamation at step end), or from the heap
// otherwise. Defined in variable.cc.
std::shared_ptr<Node> AllocateNode();

// Lightweight handle to a tape node (shared ownership).
class Var {
 public:
  Var() = default;
  // Nodes that require grad are parameters: long-lived, so they are always
  // heap-allocated and never touch the (per-step) arena.
  explicit Var(Tensor value, bool requires_grad = false)
      : node_(requires_grad ? std::make_shared<Node>() : AllocateNode()) {
    node_->value = std::move(value);
    node_->requires_grad = requires_grad;
  }
  explicit Var(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  Tensor& grad() {
    node_->EnsureGrad();
    return node_->grad;
  }
  bool requires_grad() const { return node_ && node_->requires_grad; }
  const std::shared_ptr<Node>& node() const { return node_; }

  Index rows() const { return node_->value.rows(); }
  Index cols() const { return node_->value.cols(); }
  const Shape& shape() const { return node_->value.shape(); }

  // Runs reverse-mode accumulation from this (scalar) node. Seeds the output
  // gradient with 1 (or `seed` if given) and walks the tape in reverse
  // topological order.
  void Backward();
  void Backward(const Tensor& seed);

  // Zeroes the gradient in place, reusing the existing buffer (allocates
  // only on first use or shape change).
  void ZeroGrad() {
    if (!node_) return;
    if (node_->grad.shape() == node_->value.shape()) {
      node_->grad.SetZero();
    } else {
      node_->grad = Tensor(node_->value.shape());
    }
  }

 private:
  std::shared_ptr<Node> node_;
};

// Creates a non-trainable constant node.
inline Var Constant(Tensor value) { return Var(std::move(value), false); }

// Creates a trainable parameter node (long-lived; gradients accumulate).
inline Var Param(Tensor value) { return Var(std::move(value), true); }

}  // namespace diffode::ag

#endif  // DIFFODE_AUTOGRAD_VARIABLE_H_
