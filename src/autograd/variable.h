#ifndef DIFFODE_AUTOGRAD_VARIABLE_H_
#define DIFFODE_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace diffode::ag {

// One node of the reverse-mode tape. Nodes own their forward value and an
// accumulated gradient buffer. Intermediate nodes are created afresh on every
// forward pass; parameter nodes are long-lived and shared between passes, so
// gradient accumulation across samples falls out naturally.
struct Node {
  Tensor value;
  Tensor grad;  // allocated lazily, same shape as value
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Scatters this node's gradient into its parents' gradients.
  std::function<void(Node&)> backward_fn;

  void EnsureGrad() {
    if (grad.shape() != value.shape()) grad = Tensor(value.shape());
  }
};

// Lightweight handle to a tape node (shared ownership).
class Var {
 public:
  Var() = default;
  explicit Var(Tensor value, bool requires_grad = false)
      : node_(std::make_shared<Node>()) {
    node_->value = std::move(value);
    node_->requires_grad = requires_grad;
  }
  explicit Var(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  Tensor& grad() {
    node_->EnsureGrad();
    return node_->grad;
  }
  bool requires_grad() const { return node_ && node_->requires_grad; }
  const std::shared_ptr<Node>& node() const { return node_; }

  Index rows() const { return node_->value.rows(); }
  Index cols() const { return node_->value.cols(); }
  const Shape& shape() const { return node_->value.shape(); }

  // Runs reverse-mode accumulation from this (scalar) node. Seeds the output
  // gradient with 1 (or `seed` if given) and walks the tape in reverse
  // topological order.
  void Backward();
  void Backward(const Tensor& seed);

  void ZeroGrad() {
    if (node_) node_->grad = Tensor(node_->value.shape());
  }

 private:
  std::shared_ptr<Node> node_;
};

// Creates a non-trainable constant node.
inline Var Constant(Tensor value) { return Var(std::move(value), false); }

// Creates a trainable parameter node (long-lived; gradients accumulate).
inline Var Param(Tensor value) { return Var(std::move(value), true); }

}  // namespace diffode::ag

#endif  // DIFFODE_AUTOGRAD_VARIABLE_H_
