#ifndef DIFFODE_AUTOGRAD_OPS_H_
#define DIFFODE_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"

namespace diffode::ag {

// Differentiable operations over Vars. Each builds a fresh tape node whose
// backward_fn scatters gradients into the operands. Scalars produced by
// reductions are 1x1 matrices so every Var stays 2-D.

// Elementwise (identical shapes).
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var Div(const Var& a, const Var& b);

// Scalar (compile-time constant) forms.
Var AddScalar(const Var& a, Scalar s);
Var MulScalar(const Var& a, Scalar s);
Var Neg(const Var& a);

// a / s where s is a 1x1 Var.
Var DivByScalarVar(const Var& a, const Var& s);
// a * s where s is a 1x1 Var.
Var MulByScalarVar(const Var& a, const Var& s);

// Matrix ops (2-D).
Var MatMul(const Var& a, const Var& b);
// a * b^T without materializing the transpose (attention scores Q K^T).
Var MatMulNT(const Var& a, const Var& b);
Var Transpose(const Var& a);
Var Reshape(const Var& a, Shape shape);

// Broadcast: each row of m (r x c) plus the row vector v (1 x c).
Var AddRowVec(const Var& m, const Var& v);
// Broadcast: each row of m (r x c) times the row vector v (1 x c).
Var MulRowVec(const Var& m, const Var& v);

// Row-wise layer normalization: each row is shifted to zero mean and
// scaled to unit variance (y = (x - mu) / sqrt(var + eps)). Affine gain
// and bias are composed externally via MulRowVec / AddRowVec.
Var LayerNormRows(const Var& a, Scalar eps = 1e-5);

// Row-wise softmax of a 2-D tensor.
Var Softmax(const Var& a);

// Elementwise nonlinearities.
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);
Var Relu(const Var& a);
Var Exp(const Var& a);
Var Log(const Var& a);
Var Sqrt(const Var& a);
Var Square(const Var& a);
Var Sin(const Var& a);
Var Cos(const Var& a);

// Fused hot-path ops. Each computes the same quantity as the op chain it
// replaces but builds ONE tape node and runs one elementwise pass, so the
// ODE unroll's per-step tape stays small.
// a + b in a single pass (no copy-then-axpy).
Var AddInPlace(const Var& a, const Var& b);
// y + h*k in a single pass: the Euler / midpoint state update.
Var AxpyFused(const Var& y, const Var& k, Scalar h);
// y + h/6 * (k1 + 2 k2 + 2 k3 + k4): the RK4 combination step.
Var Rk4Combine(const Var& y, const Var& k1, const Var& k2, const Var& k3,
               const Var& k4, Scalar h);
// tanh(x·W + b) with b a 1 x c row vector: the tanh-MLP hidden-layer step.
Var TanhLinear(const Var& x, const Var& w, const Var& b);

namespace detail {
// The forward arithmetic of AxpyFused / Rk4Combine as plain range functions.
// The lockstep batched stepper (ode/lockstep.cc) calls these per state row so
// a batched step is the same machine code — hence bitwise identical — as the
// per-sequence unroll, independent of compiler FP-contraction choices.
void AxpyForward(Index n, const Scalar* y, const Scalar* k, Scalar h,
                 Scalar* out);
void Rk4CombineForward(Index n, const Scalar* y, const Scalar* k1,
                       const Scalar* k2, const Scalar* k3, const Scalar* k4,
                       Scalar h, Scalar* out);
}  // namespace detail

// Reductions to a 1x1 Var.
Var Sum(const Var& a);
Var Mean(const Var& a);
Var Dot(const Var& a, const Var& b);

// Structural ops.
Var ConcatCols(const std::vector<Var>& parts);
Var ConcatRows(const std::vector<Var>& parts);
Var SliceCols(const Var& a, Index begin, Index count);
Var SliceRows(const Var& a, Index begin, Index count);

// Losses (targets are plain tensors / labels, not differentiated).
// Mean squared error over all elements; `mask` (same shape, 0/1) restricts
// the average to observed entries when provided.
Var MseLoss(const Var& pred, const Tensor& target);
Var MaskedMseLoss(const Var& pred, const Tensor& target, const Tensor& mask);
// Mean cross-entropy of row-wise softmax(logits) against integer labels.
Var SoftmaxCrossEntropy(const Var& logits, const std::vector<Index>& labels);

// Convenience operators.
inline Var operator+(const Var& a, const Var& b) { return Add(a, b); }
inline Var operator-(const Var& a, const Var& b) { return Sub(a, b); }
inline Var operator*(const Var& a, const Var& b) { return Mul(a, b); }
inline Var operator*(const Var& a, Scalar s) { return MulScalar(a, s); }
inline Var operator*(Scalar s, const Var& a) { return MulScalar(a, s); }
inline Var operator+(const Var& a, Scalar s) { return AddScalar(a, s); }
inline Var operator-(const Var& a) { return Neg(a); }

}  // namespace diffode::ag

#endif  // DIFFODE_AUTOGRAD_OPS_H_
