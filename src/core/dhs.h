#ifndef DIFFODE_CORE_DHS_H_
#define DIFFODE_CORE_DHS_H_

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "sparsity/pt_solver.h"

namespace diffode::core {

// Differentiable (autograd) counterpart of sparsity::AttentionInverse: the
// per-sequence factorization of the attention inversion, built once per
// forward pass so gradients flow through Z, the Gram inverse, and every
// recovery. One context per attention head (Z is the head's column slice).
//
// The context doubles as the per-sequence factorization cache: everything
// that depends only on Z (and the free vectors) — Zᵀ, the Gram inverse
// behind (Zᵀ)†, the projector sums, the adaH correction — is a tape node
// built exactly once here and shared by every solver step and
// consistency-loss evaluation of the sequence. Gradients from all uses
// accumulate into the shared nodes, which is exactly the correct adjoint.
struct DhsContext {
  ag::Var z;          // n x d_h latent codes (key/value matrix)
  ag::Var zt;         // Zᵀ, d_h x n (shared by gram, projections)
  ag::Var zt_pinv;    // (Zᵀ)† = Z (ZᵀZ + ridge I)^{-1}, n x d_h
  ag::Var ap_colsum;  // A_p J_{n,1} = (I - (Zᵀ)† Zᵀ) 1, n x 1
  ag::Var ap_rowsum;  // (A_p J)ᵀ, 1 x n (reused every max-Hoyer recovery)
  ag::Var ap_total;   // J A_p J, 1 x 1
  ag::Var ones_row;   // constant 1 x n (reused every z-recovery)
  ag::Var ada_corr;   // h A_p, 1 x n; set by CacheAdaHCorrection (adaH only)
  Index n = 0;
  Index d = 0;
};

DhsContext BuildDhsContext(const ag::Var& z, Scalar ridge);

// Precomputes the adaH correction h A_p = h - ((h (Zᵀ)†) Zᵀ) so the kAdaH
// recovery reuses it instead of two GEMMs per solver step.
void CacheAdaHCorrection(DhsContext* ctx, const ag::Var& h_ada);

// Forward DHS read-out (paper Eq. 5): S = softmax(z_q Zᵀ / sqrt(d)) Z.
ag::Var DhsForward(const DhsContext& ctx, const ag::Var& z_query);

// Differentiable attention-weight recovery p(S) (Eq. 13 / Eq. 32).
// `h_ada` (1 x n) is consulted only for the kAdaH strategy.
ag::Var RecoverPVar(const DhsContext& ctx, const ag::Var& s,
                    sparsity::PtStrategy strategy, const ag::Var& h_ada);

// Differentiable latent-code recovery z(p) (Eq. 34 via the rank-one
// projector identity; see DESIGN.md). `h2` is the trained free vector.
ag::Var RecoverZVar(const DhsContext& ctx, const ag::Var& p,
                    const ag::Var& h2);

// The DHS time derivative (Eq. 12) given the recovered quantities:
//   dS/dt = w Zᵀ (P_diag - pᵀp) Z / sqrt(d)
// evaluated in O(n d) as ((w Zᵀ) ⊙ p) Z - (w Zᵀ pᵀ) (p Z), where w = φ(z,t).
ag::Var DhsDerivative(const DhsContext& ctx, const ag::Var& w,
                      const ag::Var& p);

}  // namespace diffode::core

#endif  // DIFFODE_CORE_DHS_H_
