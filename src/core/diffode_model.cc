#include "core/diffode_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "data/encoding.h"
#include "hippo/hippo.h"
#include "tensor/kernels.h"

namespace diffode::core {
namespace {

// Normalized integration span: the context's observation window maps to
// [0, kSpan], matching the paper's synthetic-time scale so one integration
// step size works across datasets.
constexpr Scalar kSpan = 10.0;

}  // namespace

DiffOde::DiffOde(const DiffOdeConfig& config)
    : config_(config), rng_(config.seed) {
  DIFFODE_CHECK_GT(config_.latent_dim, 0);
  DIFFODE_CHECK_EQ(config_.latent_dim % config_.num_heads, 0);
  const Index f = config_.input_dim;
  const Index d = config_.latent_dim;
  const Index enc_in = 2 * f + 2;  // [x*m, m, t, dt]
  if (config_.encoder == EncoderType::kGru) {
    gru_encoder_ = std::make_unique<nn::GruCell>(enc_in, d, rng_);
  } else {
    mlp_encoder_ = std::make_unique<nn::Mlp>(
        std::vector<Index>{enc_in, config_.mlp_hidden, d}, rng_);
  }
  phi_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{d + 1, config_.mlp_hidden, d}, rng_);
  h2_head_ = std::make_unique<nn::Linear>(d, 1, rng_);
  h_ada_head_ = std::make_unique<nn::Linear>(d, 1, rng_);
  f_r_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{d + config_.hippo_dim + config_.info_dim,
                         config_.mlp_hidden, config_.info_dim},
      rng_);
  w_r_ = std::make_unique<nn::Linear>(config_.info_dim, 1, rng_);
  r_init_ = std::make_unique<nn::Linear>(d, config_.info_dim, rng_);
  // Classification sees the DHS "at all integration time points"
  // (Sec. III-D): a mean-pool over the trajectory plus the final state.
  f_out_cls_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{2 * ReadoutDim(), config_.mlp_hidden,
                         config_.num_classes},
      rng_);
  // The regression head additionally receives the (normalized) query time,
  // like every baseline's decoder.
  f_out_reg_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{ReadoutDim() + 1, config_.mlp_hidden, f}, rng_);
  Scalar timescale = config_.hippo_timescale;
  if (timescale <= 0.0)
    timescale = static_cast<Scalar>(config_.hippo_dim) * config_.step;
  timescale = std::max(timescale, 1e-3);
  hippo_a_ = hippo::MakeLegsA(config_.hippo_dim) * (1.0 / timescale);
  hippo_a_t_ = hippo_a_.Transposed();
  hippo_b_t_ =
      hippo::MakeLegsB(config_.hippo_dim).Transposed() * (1.0 / timescale);
}

Index DiffOde::StateDim() const {
  if (!config_.use_attention) return config_.hippo_dim + config_.info_dim;
  if (config_.head == OutputHead::kDirect) return config_.latent_dim;
  return config_.latent_dim + config_.hippo_dim + config_.info_dim;
}

Index DiffOde::ReadoutDim() const {
  if (!config_.use_attention) return config_.latent_dim + config_.info_dim;
  if (config_.head == OutputHead::kDirect) return config_.latent_dim;
  return config_.latent_dim + config_.info_dim;
}

DiffOde::Encoded DiffOde::Encode(const data::IrregularSeries& context) const {
  const Index n = context.length();
  DIFFODE_CHECK_GE(n, 2);
  const Index f = config_.input_dim;
  DIFFODE_CHECK_EQ(context.num_features(), f);
  Encoded enc;
  data::EncoderInputs encoded = data::BuildEncoderInputs(context, kSpan);
  const Tensor& inputs = encoded.inputs;
  enc.t_scale = encoded.t_scale;
  enc.t_offset = encoded.t_offset;
  enc.norm_times = encoded.norm_times;
  if (gru_encoder_) {
    ag::Var h = gru_encoder_->InitialState(1);
    std::vector<ag::Var> rows;
    rows.reserve(static_cast<std::size_t>(n));
    ag::Var x_all = ag::Constant(inputs);
    for (Index i = 0; i < n; ++i) {
      h = gru_encoder_->Forward(ag::SliceRows(x_all, i, 1), h);
      rows.push_back(h);
    }
    enc.z = ag::ConcatRows(rows);
  } else {
    enc.z = mlp_encoder_->Forward(ag::Constant(inputs));
  }
  BuildContexts(&enc);
  return enc;
}

void DiffOde::BuildContexts(Encoded* enc_ptr) const {
  Encoded& enc = *enc_ptr;
  const Index n = enc.z.rows();
  if (config_.use_attention) {
    const Index dh = config_.latent_dim / config_.num_heads;
    for (Index hidx = 0; hidx < config_.num_heads; ++hidx) {
      ag::Var z_h = config_.num_heads == 1
                        ? enc.z
                        : ag::SliceCols(enc.z, hidx * dh, dh);
      enc.heads.push_back(BuildDhsContext(z_h, config_.ridge));
    }
    enc.h2 = ag::Transpose(h2_head_->Forward(enc.z));  // 1 x n
    if (config_.pt_strategy == sparsity::PtStrategy::kAdaH) {
      enc.h_ada = ag::Transpose(h_ada_head_->Forward(enc.z));
      // The adaH correction h A_p depends only on the sequence, not the
      // solver state: build it once here, reuse in every RecoverPVar.
      for (auto& head : enc.heads) CacheAdaHCorrection(&head, enc.h_ada);
    }
  }
  // Mean latent code; used by the w/o-attention ablation path.
  enc.z_mean = ag::MatMul(
      ag::Constant(Tensor::Full(Shape{1, n}, 1.0 / static_cast<Scalar>(n))),
      enc.z);
  if (config_.use_attention && config_.hoyer_weight > 0.0 && n > 1 &&
      ag::GradMode::IsEnabled()) {
    // The Hoyer term only feeds the training loss; under no-grad forwards
    // (evaluation, serving) it is never read, so skip building it.
    // Maximize the mean Hoyer sparsity of the forward attention rows.
    // Rows of softmax sum to 1, so Hoyer(p) = (√n − 1/‖p‖) / (√n − 1) and
    // the per-row norm is all that's needed.
    const Scalar scale = 1.0 / std::sqrt(static_cast<Scalar>(config_.latent_dim));
    ag::Var logits =
        ag::MulScalar(ag::MatMulNT(enc.z, enc.z), scale);
    ag::Var p = ag::Softmax(logits);                       // n x n
    ag::Var row_sq = ag::MatMul(ag::Mul(p, p),
                                ag::Constant(Tensor::Ones(Shape{n, 1})));
    ag::Var inv_norms =
        ag::Div(ag::Constant(Tensor::Ones(Shape{n, 1})), ag::Sqrt(row_sq));
    const Scalar sqrt_n = std::sqrt(static_cast<Scalar>(n));
    // 1 − mean Hoyer = (mean(1/‖p‖) − 1) / (√n − 1).
    ag::Var one_minus_hoyer = ag::MulScalar(
        ag::AddScalar(ag::Mean(inv_norms), -1.0), 1.0 / (sqrt_n - 1.0));
    ag::Var term = ag::MulScalar(one_minus_hoyer, config_.hoyer_weight);
    AddAuxiliaryLoss(term);
  }
}

void DiffOde::AddAuxiliaryLoss(const ag::Var& term) const {
  std::lock_guard<std::mutex> lock(aux_mu_);
  ag::Var& slot = aux_loss_[std::this_thread::get_id()];
  slot = slot.defined() ? ag::Add(slot, term) : term;
}

ag::Var DiffOde::InitialState(const Encoded& enc) const {
  // The information state r starts from a learned summary of the encoded
  // context (z̄) rather than zero, so station/patient identity does not have
  // to squeeze through the DHS bottleneck during the rollout.
  ag::Var r0 = ag::Tanh(r_init_->Forward(enc.z_mean));
  if (!config_.use_attention) {
    ag::Var c0 = ag::Constant(Tensor(Shape{1, config_.hippo_dim}));
    return ag::ConcatCols({c0, r0});
  }
  // S at the first observation via the forward DHS (Eq. 5).
  const Index dh = config_.latent_dim / config_.num_heads;
  ag::Var zq = ag::SliceRows(enc.z, 0, 1);
  std::vector<ag::Var> s_heads;
  for (Index hidx = 0; hidx < config_.num_heads; ++hidx) {
    ag::Var zq_h =
        config_.num_heads == 1 ? zq : ag::SliceCols(zq, hidx * dh, dh);
    s_heads.push_back(
        DhsForward(enc.heads[static_cast<std::size_t>(hidx)], zq_h));
  }
  ag::Var s0 = config_.num_heads == 1 ? s_heads[0] : ag::ConcatCols(s_heads);
  if (config_.head == OutputHead::kDirect) return s0;
  ag::Var c0 = ag::Constant(Tensor(Shape{1, config_.hippo_dim}));
  return ag::ConcatCols({s0, c0, r0});
}

ode::DiffOdeFunc DiffOde::Dynamics(const Encoded& enc) const {
  const Index d = config_.latent_dim;
  const Index dc = config_.hippo_dim;
  const Index dr = config_.info_dim;
  ag::Var a_t = ag::Constant(hippo_a_t_);
  ag::Var b_t = ag::Constant(hippo_b_t_);
  if (!config_.use_attention) {
    // HiPPO-RNN-like ablation: dc = A c + B (W_r r), dr = f_r([z̄|c|r]).
    return [this, enc, a_t, b_t, dc, dr](Scalar, const ag::Var& y) {
      ag::Var c = ag::SliceCols(y, 0, dc);
      ag::Var r = ag::SliceCols(y, dc, dr);
      ag::Var u_r = f_r_->Forward(ag::ConcatCols({enc.z_mean, c, r}));
      ag::Var dc_dt = ag::Add(ag::MatMul(c, a_t),
                              ag::MulByScalarVar(b_t, w_r_->Forward(r)));
      return ag::ConcatCols({dc_dt, u_r});
    };
  }
  const Index heads = config_.num_heads;
  const Index dh = d / heads;
  return [this, enc, a_t, b_t, d, dc, dr, heads, dh](Scalar t,
                                                     const ag::Var& y) {
    ag::Var s = heads == 1 && config_.head == OutputHead::kDirect
                    ? y
                    : ag::SliceCols(y, 0, d);
    // Invert the attention per head: p from S (Eq. 32), z from p (Eq. 34).
    std::vector<ag::Var> p_heads(static_cast<std::size_t>(heads));
    std::vector<ag::Var> z_heads(static_cast<std::size_t>(heads));
    for (Index hidx = 0; hidx < heads; ++hidx) {
      const DhsContext& ctx = enc.heads[static_cast<std::size_t>(hidx)];
      ag::Var s_h = heads == 1 ? s : ag::SliceCols(s, hidx * dh, dh);
      ag::Var p = RecoverPVar(ctx, s_h, config_.pt_strategy, enc.h_ada);
      p_heads[static_cast<std::size_t>(hidx)] = p;
      z_heads[static_cast<std::size_t>(hidx)] = RecoverZVar(ctx, p, enc.h2);
    }
    ag::Var z = heads == 1 ? z_heads[0] : ag::ConcatCols(z_heads);
    // w = φ(z, t): the learned dz/dt. The tanh bound keeps long rollouts
    // (extrapolation far past the observation window) from blowing up.
    ag::Var t_var = ag::Constant(Tensor::Full(Shape{1, 1}, t));
    ag::Var w = ag::Tanh(phi_->Forward(ag::ConcatCols({z, t_var})));
    std::vector<ag::Var> ds_heads(static_cast<std::size_t>(heads));
    for (Index hidx = 0; hidx < heads; ++hidx) {
      ag::Var w_h = heads == 1 ? w : ag::SliceCols(w, hidx * dh, dh);
      ds_heads[static_cast<std::size_t>(hidx)] =
          DhsDerivative(enc.heads[static_cast<std::size_t>(hidx)], w_h,
                        p_heads[static_cast<std::size_t>(hidx)]);
    }
    ag::Var ds = heads == 1 ? ds_heads[0] : ag::ConcatCols(ds_heads);
    if (config_.head == OutputHead::kDirect) return ds;
    // Coupled HiPPO system (Eq. 36).
    ag::Var c = ag::SliceCols(y, d, dc);
    ag::Var r = ag::SliceCols(y, d + dc, dr);
    ag::Var u_r = f_r_->Forward(ag::ConcatCols({s, c, r}));
    ag::Var dc_dt = ag::Add(ag::MatMul(c, a_t),
                            ag::MulByScalarVar(b_t, w_r_->Forward(r)));
    return ag::ConcatCols({ds, dc_dt, u_r});
  };
}

ag::Var DiffOde::ReadoutInput(const Encoded& enc, const ag::Var& state) const {
  const Index d = config_.latent_dim;
  const Index dc = config_.hippo_dim;
  const Index dr = config_.info_dim;
  if (!config_.use_attention) {
    return ag::ConcatCols({enc.z_mean, ag::SliceCols(state, dc, dr)});
  }
  if (config_.head == OutputHead::kDirect) return state;
  return ag::ConcatCols(
      {ag::SliceCols(state, 0, d), ag::SliceCols(state, d + dc, dr)});
}

std::vector<ag::Var> DiffOde::StatesAt(
    const Encoded& enc, const std::vector<Scalar>& norm_times) const {
  ode::DiffOdeFunc f = Dynamics(enc);
  ode::DiffSolveOptions options;
  options.method = diff_method_;
  options.step = config_.step;
  ag::Var y0 = InitialState(enc);
  const bool anchored =
      config_.use_attention && config_.consistency_weight > 0.0;
  // The consistency MSE itself is a training-only loss term, but the anchor
  // times it inserts into the grid change how IntegrateVar partitions each
  // span (the last step is clamped to the remaining distance). Keep the grid
  // insertion active in every mode and gate only the term computation, so
  // no-grad forwards stay bitwise identical to grad-on forwards.
  const bool anchor_terms = anchored && ag::GradMode::IsEnabled();
  // Sort unique query times; integrate a forward chain for t >= 0 and a
  // backward chain for t < 0 (queries before the first observation). When
  // the consistency term is on, the forward chain also visits every
  // observation time so S(t_i) can be pulled toward its Eq. 5 definition.
  std::map<Scalar, ag::Var> cache;
  std::vector<Scalar> sorted = norm_times;
  std::set<Scalar> anchor_times;
  if (anchored) {
    for (Scalar t : enc.norm_times) anchor_times.insert(t);
    sorted.insert(sorted.end(), enc.norm_times.begin(), enc.norm_times.end());
  }
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  // Forward chain.
  {
    Scalar t_prev = 0.0;
    ag::Var y = y0;
    ag::Var anchor_acc;
    Index anchor_count = 0;
    const Index d = config_.latent_dim;
    const Index dh = d / config_.num_heads;
    for (Scalar t : sorted) {
      if (t < 0.0) continue;
      y = ode::IntegrateVar(f, y, t_prev, t, options);
      cache[t] = y;
      t_prev = t;
      if (anchor_terms && anchor_times.count(t)) {
        // Index of this observation in the context.
        const auto it = std::find(enc.norm_times.begin(),
                                  enc.norm_times.end(), t);
        const Index obs =
            static_cast<Index>(it - enc.norm_times.begin());
        ag::Var s_cur = config_.head == OutputHead::kDirect
                            ? y
                            : ag::SliceCols(y, 0, d);
        ag::Var zq = ag::SliceRows(enc.z, obs, 1);
        std::vector<ag::Var> anchor_heads;
        for (Index hidx = 0; hidx < config_.num_heads; ++hidx) {
          ag::Var zq_h = config_.num_heads == 1
                             ? zq
                             : ag::SliceCols(zq, hidx * dh, dh);
          anchor_heads.push_back(
              DhsForward(enc.heads[static_cast<std::size_t>(hidx)], zq_h));
        }
        ag::Var anchor = config_.num_heads == 1 ? anchor_heads[0]
                                                : ag::ConcatCols(anchor_heads);
        ag::Var term = ag::Mean(ag::Square(ag::Sub(s_cur, anchor)));
        anchor_acc = anchor_acc.defined() ? ag::Add(anchor_acc, term) : term;
        ++anchor_count;
      }
    }
    if (anchor_terms && anchor_count > 0) {
      ag::Var scaled = ag::MulScalar(
          anchor_acc,
          config_.consistency_weight / static_cast<Scalar>(anchor_count));
      AddAuxiliaryLoss(scaled);
    }
  }
  // Backward chain.
  {
    Scalar t_prev = 0.0;
    ag::Var y = y0;
    for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
      const Scalar t = *it;
      if (t >= 0.0) continue;
      y = ode::IntegrateVar(f, y, t_prev, t, options);
      cache[t] = y;
      t_prev = t;
    }
  }
  std::vector<ag::Var> out;
  out.reserve(norm_times.size());
  for (Scalar t : norm_times) out.push_back(cache.at(t));
  return out;
}

ag::Var DiffOde::ClassifyLogits(const data::IrregularSeries& context) {
  Encoded enc = Encode(context);
  std::vector<ag::Var> states = StatesAt(enc, enc.norm_times);
  // Mean-pool the readout inputs over all integration (observation) times —
  // "S refers to DHS at all integration time points" (Sec. III-D).
  ag::Var acc = ReadoutInput(enc, states[0]);
  for (std::size_t i = 1; i < states.size(); ++i)
    acc = ag::AddInPlace(acc, ReadoutInput(enc, states[i]));
  acc = ag::MulScalar(acc, 1.0 / static_cast<Scalar>(states.size()));
  ag::Var final_state = ReadoutInput(enc, states.back());
  return f_out_cls_->Forward(ag::ConcatCols({acc, final_state}));
}

std::vector<ag::Var> DiffOde::PredictAt(const data::IrregularSeries& context,
                                        const std::vector<Scalar>& times) {
  Encoded enc = Encode(context);
  std::vector<Scalar> norm;
  norm.reserve(times.size());
  for (Scalar t : times) norm.push_back((t - enc.t_offset) * enc.t_scale);
  std::vector<ag::Var> states = StatesAt(enc, norm);
  std::vector<ag::Var> preds;
  preds.reserve(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    ag::Var t_var = ag::Constant(Tensor::Full(Shape{1, 1}, norm[i]));
    preds.push_back(f_out_reg_->Forward(
        ag::ConcatCols({ReadoutInput(enc, states[i]), t_var})));
  }
  return preds;
}

std::vector<Tensor> DiffOde::AttentionTrajectory(
    const data::IrregularSeries& context) {
  Encoded enc = Encode(context);
  DIFFODE_CHECK(config_.use_attention);
  const DhsContext& ctx = enc.heads[0];
  const Scalar scale = 1.0 / std::sqrt(static_cast<Scalar>(ctx.d));
  std::vector<Tensor> rows;
  rows.reserve(static_cast<std::size_t>(ctx.n));
  Tensor z = ctx.z.value();
  for (Index i = 0; i < ctx.n; ++i) {
    Tensor logits = z.Row(i).MatMul(z.Transposed()) * scale;
    // Softmax: shift by the max, vectorized exp, normalize.
    const Scalar m = logits.Max();
    Tensor p = logits - m;
    kernels::MapExp(p.numel(), p.data(), p.data());
    p *= 1.0 / p.Sum();
    rows.push_back(p);
  }
  return rows;
}

Tensor DiffOde::LatentZ(const data::IrregularSeries& context) {
  return Encode(context).z.value();
}

void DiffOde::CollectParams(std::vector<ag::Var>* out) const {
  if (gru_encoder_) gru_encoder_->CollectParams(out);
  if (mlp_encoder_) mlp_encoder_->CollectParams(out);
  phi_->CollectParams(out);
  h2_head_->CollectParams(out);
  h_ada_head_->CollectParams(out);
  f_r_->CollectParams(out);
  w_r_->CollectParams(out);
  r_init_->CollectParams(out);
  f_out_cls_->CollectParams(out);
  f_out_reg_->CollectParams(out);
}

}  // namespace diffode::core
