#include "core/batch_predictor.h"

#include <utility>

namespace diffode::core {

BatchPredictor::BatchPredictor(SequenceModel* model, Index max_batch)
    : dispatch_(model), max_batch_(max_batch) {
  DIFFODE_CHECK_GT(max_batch_, 0);
}

Index BatchPredictor::Enqueue(const data::IrregularSeries& series,
                              std::vector<Scalar> times) {
  const Index id = static_cast<Index>(results_.size());
  results_.emplace_back();
  done_.push_back(false);
  pending_.push_back(Pending{id, &series, std::move(times)});
  if (static_cast<Index>(pending_.size()) >= max_batch_) Flush();
  return id;
}

void BatchPredictor::Flush() {
  if (pending_.empty()) return;
  std::vector<const Pending*> cls;
  std::vector<const Pending*> reg;
  for (const Pending& p : pending_)
    (p.times.empty() ? cls : reg).push_back(&p);
  if (!cls.empty()) {
    std::vector<const data::IrregularSeries*> series;
    series.reserve(cls.size());
    for (const Pending* p : cls) series.push_back(p->series);
    const data::SequenceBatch batch = data::MakeSequenceBatch(series);
    const Tensor logits = dispatch_.ClassifyLogitsBatched(batch);
    for (std::size_t i = 0; i < cls.size(); ++i) {
      Result& res = results_[static_cast<std::size_t>(cls[i]->id)];
      res.logits = logits.Row(static_cast<Index>(i));
      done_[static_cast<std::size_t>(cls[i]->id)] = true;
    }
  }
  if (!reg.empty()) {
    std::vector<const data::IrregularSeries*> series;
    std::vector<std::vector<Scalar>> times;
    series.reserve(reg.size());
    times.reserve(reg.size());
    for (const Pending* p : reg) {
      series.push_back(p->series);
      times.push_back(p->times);
    }
    const data::SequenceBatch batch = data::MakeSequenceBatch(series);
    std::vector<std::vector<Tensor>> preds =
        dispatch_.PredictAtBatched(batch, times);
    for (std::size_t i = 0; i < reg.size(); ++i) {
      Result& res = results_[static_cast<std::size_t>(reg[i]->id)];
      res.predictions = std::move(preds[i]);
      done_[static_cast<std::size_t>(reg[i]->id)] = true;
    }
  }
  pending_.clear();
}

const BatchPredictor::Result& BatchPredictor::result(Index id) const {
  DIFFODE_CHECK_GE(id, 0);
  DIFFODE_CHECK_LT(id, static_cast<Index>(results_.size()));
  DIFFODE_CHECK_MSG(done_[static_cast<std::size_t>(id)],
                    "BatchPredictor::result before its Flush");
  return results_[static_cast<std::size_t>(id)];
}

}  // namespace diffode::core
