#ifndef DIFFODE_CORE_DIFFODE_MODEL_H_
#define DIFFODE_CORE_DIFFODE_MODEL_H_

#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/batched_model.h"
#include "core/config.h"
#include "core/dhs.h"
#include "core/sequence_model.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "ode/diff_integrator.h"
#include "tensor/random.h"

namespace diffode::core {

// Frozen f32 parameter snapshot + cast contexts for the f32 serving engine
// (built by Freeze(Precision::kF32), defined in diffode_f32.cc).
struct ServingF32;

// The DIFFODE model (paper Secs. III-B to III-D):
//   encoder ψ  : observations -> latent codes Z (GRU with history, or MLP)
//   DHS        : S_t = softmax(z_t Zᵀ/√d) Z, with ODE dynamics obtained by
//                inverting the attention via generalized inverses (Eq. 32/34)
//   φ          : MLP modelling dz/dt
//   output     : HiPPO-coupled system (Eq. 36) or a direct readout of S_t
//
// The free vectors of the inversion (h₂ of Eq. 34 and h of the adaH
// ablation) must have the per-sequence length n, so they are produced by
// tiny trained linear maps applied row-wise to Z — the trained-vector
// semantics of the paper generalized to variable-length sequences.
class DiffOde : public SequenceModel, public BatchedSequenceModel {
 public:
  explicit DiffOde(const DiffOdeConfig& config);

  ag::Var ClassifyLogits(const data::IrregularSeries& context) override;
  std::vector<ag::Var> PredictAt(const data::IrregularSeries& context,
                                 const std::vector<Scalar>& times) override;
  // Lockstep batched forwards (diffode_batched.cc): all sequences advance
  // together along their own per-sequence step timelines, so the shared
  // MLPs (phi, f_r, heads) run at GEMM shape m = B while the per-sequence
  // DHS recoveries replay the exact per-sequence arithmetic. Serving/eval
  // only: runs under its own NoGradScope. After Freeze(Precision::kF32)
  // both forwards route to the f32 serving engine (diffode_f32.cc), which
  // runs the hot loop — encoder, DHS recoveries, phi/f_r/w_r/f_out GEMMs,
  // lockstep integration — in float over the same RowPlan timelines and
  // casts results back to f64 at the boundary.
  Tensor ClassifyLogitsBatched(const data::SequenceBatch& batch) override;
  std::vector<std::vector<Tensor>> PredictAtBatched(
      const data::SequenceBatch& batch,
      const std::vector<std::vector<Scalar>>& times) override;
  void CollectParams(std::vector<ag::Var>* out) const override;
  std::string name() const override { return "DIFFODE"; }
  // Takes (and clears) the aux loss accumulated by forwards on the *calling*
  // thread; under data-parallel training each shard collects only its own.
  ag::Var TakeAuxiliaryLoss() override {
    std::lock_guard<std::mutex> lock(aux_mu_);
    auto it = aux_loss_.find(std::this_thread::get_id());
    if (it == aux_loss_.end()) return ag::Var();
    ag::Var out = it->second;
    aux_loss_.erase(it);
    return out;
  }

  const DiffOdeConfig& config() const { return config_; }

  // Integration scheme for the unrolled (training) solver.
  void set_diff_method(ode::DiffMethod m) { diff_method_ = m; }

  // Attention-weight trajectories p_t at the context observation times, on
  // the current (trained or untrained) encoder — the data behind Fig. 3.
  // Returns one 1 x n tensor per observation time (head 0).
  std::vector<Tensor> AttentionTrajectory(
      const data::IrregularSeries& context);

  // The latent matrix Z (n x d) for a context, evaluated with the current
  // weights — used by the Fig. 3 sparsity analysis.
  Tensor LatentZ(const data::IrregularSeries& context);

 private:
  struct Encoded {
    ag::Var z;                         // n x d
    std::vector<DhsContext> heads;     // per-head inversion contexts
    ag::Var h2;                        // 1 x n
    ag::Var h_ada;                     // 1 x n (adaH only)
    ag::Var z_mean;                    // 1 x d (w/o-attention path)
    std::vector<Scalar> norm_times;    // observation times, normalized
    Scalar t_scale = 1.0;              // maps raw time -> normalized
    Scalar t_offset = 0.0;
  };

  Encoded Encode(const data::IrregularSeries& context) const;
  // Everything Encode builds after the latent matrix Z: the per-head DHS
  // contexts, free vectors, z_mean, and (grad mode only) the Hoyer term.
  // Shared by the per-sequence and batched encoders.
  void BuildContexts(Encoded* enc) const;
  // Per-row encodings with the GRU recurrence advanced in lockstep across
  // the batch (diffode_batched.cc).
  std::vector<Encoded> EncodeBatched(const data::SequenceBatch& batch) const;
  // States for every (row, query-time) pair via one lockstep integration;
  // out[r][k] is the 1 x StateDim() state of row r at norm_queries[r][k].
  std::vector<std::vector<Tensor>> BatchedStatesAt(
      const std::vector<Encoded>& encs,
      const std::vector<std::vector<Scalar>>& norm_queries) const;
  // Augmented initial state [S | c | r] (or [c | r] without attention).
  ag::Var InitialState(const Encoded& enc) const;
  // Augmented dynamics closure over the encoded context.
  ode::DiffOdeFunc Dynamics(const Encoded& enc) const;
  // Readout input ([S | r], S, or [z̄ | r] depending on config).
  ag::Var ReadoutInput(const Encoded& enc, const ag::Var& state) const;
  // States at the given (normalized, may be unsorted) times; integrates
  // forward and backward from the first observation as needed.
  std::vector<ag::Var> StatesAt(const Encoded& enc,
                                const std::vector<Scalar>& norm_times) const;

  Index StateDim() const;
  Index ReadoutDim() const;

  // Builds (kF32) or drops (kF64) the frozen f32 serving snapshot; runs
  // after Module::Freeze has rounded the parameters through float, so the
  // snapshot casts are exact (diffode_f32.cc).
  void OnFrozen(Precision precision) override;

  // Adds a DHS consistency / sparsity term to this thread's aux loss.
  void AddAuxiliaryLoss(const ag::Var& term) const;

  DiffOdeConfig config_;
  mutable Rng rng_;
  ode::DiffMethod diff_method_ = ode::DiffMethod::kMidpoint;
  // Aux-loss terms from forwards, keyed by the thread that ran them so that
  // concurrent shards of a data-parallel batch never share tape state.
  mutable std::mutex aux_mu_;
  mutable std::unordered_map<std::thread::id, ag::Var> aux_loss_;

  std::unique_ptr<nn::GruCell> gru_encoder_;
  std::unique_ptr<nn::Mlp> mlp_encoder_;
  std::unique_ptr<nn::Mlp> phi_;        // (d+1) -> d
  std::unique_ptr<nn::Linear> h2_head_;    // d -> 1, rows of Z -> h2
  std::unique_ptr<nn::Linear> h_ada_head_; // d -> 1, rows of Z -> h (adaH)
  std::unique_ptr<nn::Mlp> f_r_;        // (d + d_c + d_r) -> d_r
  std::unique_ptr<nn::Linear> w_r_;     // d_r -> 1
  std::unique_ptr<nn::Linear> r_init_;  // d -> d_r, r_0 from the encoder
  std::unique_ptr<nn::Mlp> f_out_cls_;  // readout -> num_classes
  std::unique_ptr<nn::Mlp> f_out_reg_;  // readout -> f
  Tensor hippo_a_;    // d_c x d_c (LegS, stable)
  Tensor hippo_a_t_;  // Aᵀ, cached so Dynamics never re-transposes
  Tensor hippo_b_t_;  // 1 x d_c (Bᵀ)

  // Set by Freeze(Precision::kF32); presence routes the batched forwards to
  // the f32 engine. The engine (a friend so it can replay the private
  // context/initial-state builds) lives in diffode_f32.cc.
  friend struct DiffOdeF32Engine;
  std::shared_ptr<ServingF32> serving_f32_;
};

}  // namespace diffode::core

#endif  // DIFFODE_CORE_DIFFODE_MODEL_H_
