#include "core/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace diffode::parallel {
namespace {

// Depth of pool involvement on this thread: pool workers run at depth >= 1
// permanently, callers bump it while participating in their own Run. Any
// Run issued at depth > 0 executes inline (rule 2 in the class comment).
thread_local int tls_pool_depth = 0;

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

int ThreadPool::DefaultNumThreads() {
  if (const char* env = std::getenv("DIFFODE_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(num_threads, 1)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 0; i + 1 < num_threads_; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::ExecuteChunks(Job* job) {
  for (;;) {
    const Index i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->total) break;
    (*job->fn)(i);
    job->done.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::WorkerLoop() {
  tls_pool_depth = 1;
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      job_cv_.wait(lk, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    if (!job) continue;
    ExecuteChunks(job.get());
    // Wake the caller; its predicate re-checks the done count under mu_.
    std::lock_guard<std::mutex> lk(mu_);
    done_cv_.notify_all();
  }
}

void ThreadPool::Run(Index num_tasks, const std::function<void(Index)>& fn) {
  if (num_tasks <= 0) return;
  if (num_tasks == 1 || num_threads_ == 1 || tls_pool_depth > 0) {
    ++tls_pool_depth;
    for (Index i = 0; i < num_tasks; ++i) fn(i);
    --tls_pool_depth;
    return;
  }
  std::lock_guard<std::mutex> run_lk(run_mu_);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->total = num_tasks;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
    ++generation_;
  }
  job_cv_.notify_all();
  ++tls_pool_depth;
  ExecuteChunks(job.get());
  --tls_pool_depth;
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return job->done.load(std::memory_order_acquire) >= job->total;
  });
  job_ = nullptr;
}

ThreadPool& ThreadPool::Get() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(DefaultNumThreads());
  return *g_pool;
}

void ThreadPool::SetNumThreads(int n) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool = std::make_unique<ThreadPool>(n > 0 ? n : DefaultNumThreads());
}

void ParallelFor(Index begin, Index end, Index grain,
                 const std::function<void(Index, Index)>& fn) {
  const Index n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const Index chunks = (n + grain - 1) / grain;
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  ThreadPool::Get().Run(chunks, [&](Index c) {
    const Index b = begin + c * grain;
    fn(b, std::min(end, b + grain));
  });
}

Scalar ReduceSum(Index begin, Index end, Index grain,
                 const std::function<Scalar(Index, Index)>& fn) {
  const Index n = end - begin;
  if (n <= 0) return 0.0;
  if (grain < 1) grain = 1;
  const Index chunks = (n + grain - 1) / grain;
  if (chunks <= 1) return fn(begin, end);
  std::vector<Scalar> partials(static_cast<std::size_t>(chunks), 0.0);
  ThreadPool::Get().Run(chunks, [&](Index c) {
    const Index b = begin + c * grain;
    partials[static_cast<std::size_t>(c)] = fn(b, std::min(end, b + grain));
  });
  Scalar total = 0.0;
  for (Scalar p : partials) total += p;
  return total;
}

}  // namespace diffode::parallel
