#ifndef DIFFODE_CORE_BATCHED_MODEL_H_
#define DIFFODE_CORE_BATCHED_MODEL_H_

#include <vector>

#include "core/sequence_model.h"
#include "data/sequence_batch.h"

namespace diffode::core {

// Lockstep execution interface: B sequences advance together so the model's
// hot matvecs run at GEMM shape m = B instead of m = 1 (docs/performance.md,
// "Execution batching"). Implemented natively by DiffOde, OdeRnnBaseline,
// and GruDBaseline; every other model is served through BatchedDispatch's
// per-sequence fallback loop.
//
// Both methods are serving/eval paths: they open their own ag::NoGradScope,
// never build tape, and never accumulate auxiliary losses. Contract with the
// per-sequence path: identical within 1e-10 relative at any B, bitwise
// identical at B = 1 (tests/batched_equiv_test.cc).
class BatchedSequenceModel {
 public:
  virtual ~BatchedSequenceModel() = default;

  // B x num_classes logits, row r for batch.series[r].
  virtual Tensor ClassifyLogitsBatched(const data::SequenceBatch& batch) = 0;

  // out[r][k] is the 1 x f prediction for batch.series[r] at times[r][k].
  virtual std::vector<std::vector<Tensor>> PredictAtBatched(
      const data::SequenceBatch& batch,
      const std::vector<std::vector<Scalar>>& times) = 0;
};

// Routes batched calls to the model's native lockstep engine when it has
// one, else loops the per-sequence path under one NoGradScope. Non-owning.
class BatchedDispatch {
 public:
  explicit BatchedDispatch(SequenceModel* model);

  // True when the model integrates the batch in lockstep (native engine).
  bool native() const { return native_ != nullptr; }

  Tensor ClassifyLogitsBatched(const data::SequenceBatch& batch);
  std::vector<std::vector<Tensor>> PredictAtBatched(
      const data::SequenceBatch& batch,
      const std::vector<std::vector<Scalar>>& times);

 private:
  SequenceModel* model_;
  BatchedSequenceModel* native_;
};

}  // namespace diffode::core

#endif  // DIFFODE_CORE_BATCHED_MODEL_H_
