#ifndef DIFFODE_CORE_PARALLEL_H_
#define DIFFODE_CORE_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "tensor/shape.h"

namespace diffode {
// Keep the numeric alias identical to tensor/tensor.h; parallel sits below
// the tensor layer so it cannot include it.
using Scalar = double;
}  // namespace diffode

namespace diffode::parallel {

// Shared fixed-size thread pool behind every parallel kernel and the
// data-parallel trainer. Design constraints, in order:
//   1. Determinism: work is split into chunks whose boundaries depend only on
//      the problem size and grain, never on the thread count, so any code
//      whose chunks write disjoint outputs (or that reduces partials in chunk
//      order) is bitwise reproducible at any DIFFODE_NUM_THREADS.
//   2. No nested fan-out: a task running on a pool thread that calls back
//      into Run()/ParallelFor() executes inline, so kernels can be used
//      freely inside parallel training shards without deadlock.
//   3. The calling thread participates in the work, so a 1-thread pool is
//      exactly the serial code path.
class ThreadPool {
 public:
  // num_threads >= 1 counts the calling thread; a pool of 1 spawns no
  // workers and runs everything inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(i) for every i in [0, num_tasks) and blocks until all are done.
  // Tasks are claimed dynamically; callers needing determinism must make the
  // tasks themselves deterministic (disjoint writes / ordered combination).
  void Run(Index num_tasks, const std::function<void(Index)>& fn);

  // The process-wide pool, created on first use with DefaultNumThreads().
  static ThreadPool& Get();

  // Rebuilds the shared pool with n threads (n <= 0 restores the default).
  // Test/bench hook; must not race with an in-flight Run on the old pool.
  static void SetNumThreads(int n);

  // DIFFODE_NUM_THREADS if set and positive, else hardware_concurrency.
  static int DefaultNumThreads();

 private:
  struct Job {
    const std::function<void(Index)>* fn = nullptr;
    Index total = 0;
    std::atomic<Index> next{0};
    std::atomic<Index> done{0};
  };

  void WorkerLoop();
  static void ExecuteChunks(Job* job);

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable job_cv_;   // workers: a new job was published
  std::condition_variable done_cv_;  // caller: all tasks of the job finished
  std::shared_ptr<Job> job_;         // null when idle
  std::uint64_t generation_ = 0;     // bumped per published job
  bool stop_ = false;
  std::mutex run_mu_;  // serializes Run() calls from distinct threads
};

// Splits [begin, end) into chunks of `grain` elements (the last chunk may be
// short) and runs fn(chunk_begin, chunk_end) for each on the shared pool.
// Chunk boundaries depend only on begin/end/grain, so disjoint-write loops
// are deterministic at any thread count. Single-chunk calls run inline.
void ParallelFor(Index begin, Index end, Index grain,
                 const std::function<void(Index, Index)>& fn);

// Deterministic chunked reduction over the same fixed chunk grid as
// ParallelFor: evaluates fn(chunk_begin, chunk_end) per chunk (in parallel)
// and sums the partials serially in chunk order, so the result is bitwise
// identical at any thread count.
Scalar ReduceSum(Index begin, Index end, Index grain,
                 const std::function<Scalar(Index, Index)>& fn);

}  // namespace diffode::parallel

#endif  // DIFFODE_CORE_PARALLEL_H_
