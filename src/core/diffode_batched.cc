// Lockstep batched execution for DIFFODE (core/batched_model.h).
//
// Equivalence contract with the per-sequence path: every row replays its
// exact per-sequence integration timeline (same (t, h) step pairs, built by
// ode::AppendSegment with IntegrateVar's stop rule), and every per-sequence
// quantity — the DHS recoveries, the HiPPO tail, the readouts — is computed
// by the same Tensor/kernel calls the autograd op forwards use, decomposed
// into the same rounding steps. The only arithmetic that differs at B > 1
// is the GEMM m-shape of the shared MLPs (phi, f_r, w_r, the GRU encoder,
// f_out_cls), whose backends guarantee c[i][j] depends only on
// (i, j, m, k, n); at B = 1 every call collapses to the per-sequence shape
// and the result is bitwise identical (tests/batched_equiv_test.cc).
#include <algorithm>
#include <cmath>
#include <vector>

#include "core/batch_plans.h"
#include "core/diffode_f32.h"
#include "core/diffode_model.h"
#include "core/parallel.h"
#include "data/encoding.h"
#include "ode/lockstep.h"
#include "tensor/kernels.h"

namespace diffode::core {
namespace {

// Must match the kSpan of diffode_model.cc: the per-sequence Encode maps
// the observation window onto [0, kSpan] before integration.
constexpr Scalar kSpan = 10.0;

// Plain-tensor mirrors of dhs.cc's RecoverPVar / RecoverZVar /
// DhsDerivative value chains. Each statement reproduces one autograd op's
// forward (same Tensor method, same operand order, same scalar
// decomposition — e.g. the reciprocal multiply of DivByScalarVar), so the
// recovered values are bitwise the per-sequence ones. Multiply-then-add
// pairs stay in separate statements through stored temporaries so the
// compiler cannot contract them into FMAs the per-sequence ops don't use.
Tensor RecoverPRow(const DhsContext& ctx, const Tensor& s_h,
                   sparsity::PtStrategy strategy) {
  Tensor b = s_h.MatMulTransposed(ctx.zt_pinv.value());  // 1 x n
  switch (strategy) {
    case sparsity::PtStrategy::kMinNorm:
      return b;
    case sparsity::PtStrategy::kAdaH: {
      // EncodeBatched runs the same CacheAdaHCorrection as Encode, so the
      // correction is always present here.
      DIFFODE_CHECK(ctx.ada_corr.defined());
      b += ctx.ada_corr.value();
      return b;
    }
    case sparsity::PtStrategy::kExactKkt:
      [[fallthrough]];
    case sparsity::PtStrategy::kMaxHoyer: {
      const Scalar total = ctx.ap_total.value().item();
      if (std::fabs(total) < 1e-10) return b;
      const Scalar coeff = (b.Sum() + -1.0) * (1.0 / total);
      Tensor corr = ctx.ap_rowsum.value() * coeff;
      b -= corr;
      return b;
    }
  }
  DIFFODE_CHECK(false);
  return b;
}

Tensor RecoverZRow(const DhsContext& ctx, const Tensor& p, const Tensor& h2) {
  const Scalar pp = p.Dot(p);
  const Scalar ph = p.Dot(h2);
  const Scalar c = ph / pp;
  Tensor a_h = p * c;
  for (Index j = 0; j < a_h.numel(); ++j) a_h.data()[j] -= 1.0;
  Tensor z = a_h.MatMul(ctx.zt_pinv.value());
  z *= std::sqrt(static_cast<Scalar>(ctx.d));
  return z;
}

Tensor DerivativeRow(const DhsContext& ctx, const Tensor& w_h,
                     const Tensor& p) {
  const Scalar scale = 1.0 / std::sqrt(static_cast<Scalar>(ctx.d));
  const Tensor& zv = ctx.z.value();
  Tensor u = w_h.MatMulTransposed(zv);  // 1 x n
  Tensor up_elem = u * p;
  Tensor term1 = up_elem.MatMul(zv);  // 1 x d_h
  const Scalar up = u.Dot(p);
  Tensor term2 = p.MatMul(zv);
  term2 *= up;
  term1 -= term2;
  term1 *= scale;
  return term1;
}

}  // namespace

std::vector<DiffOde::Encoded> DiffOde::EncodeBatched(
    const data::SequenceBatch& batch) const {
  const Index b = batch.batch;
  const Index f = config_.input_dim;
  const Index d = config_.latent_dim;
  DIFFODE_CHECK_EQ(batch.features, f);
  std::vector<data::EncoderInputs> inputs;
  inputs.reserve(static_cast<std::size_t>(b));
  Index max_n = 0;
  for (Index r = 0; r < b; ++r) {
    const data::IrregularSeries& s = *batch.series[static_cast<std::size_t>(r)];
    DIFFODE_CHECK_GE(s.length(), 2);
    inputs.push_back(data::BuildEncoderInputs(s, kSpan));
    max_n = std::max(max_n, s.length());
  }
  std::vector<Tensor> z_rows(static_cast<std::size_t>(b));
  if (gru_encoder_) {
    // The GRU recurrence is indexed by observation number, not time, so all
    // rows advance one observation per wave: gather the still-active rows,
    // run one batched GruCell step (GEMM shape m = E), scatter back.
    for (Index r = 0; r < b; ++r)
      z_rows[static_cast<std::size_t>(r)] = Tensor::Uninit(
          Shape{batch.lengths[static_cast<std::size_t>(r)], d});
    const Index enc_in = inputs.front().inputs.cols();
    Tensor h_all(Shape{b, d});  // zeros, as GruCell::InitialState per row
    std::vector<Index> active;
    for (Index i = 0; i < max_n; ++i) {
      active.clear();
      for (Index r = 0; r < b; ++r)
        if (i < batch.lengths[static_cast<std::size_t>(r)]) active.push_back(r);
      const Index e = static_cast<Index>(active.size());
      Tensor x_step = Tensor::Uninit(Shape{e, enc_in});
      for (Index j = 0; j < e; ++j)
        std::copy_n(
            inputs[static_cast<std::size_t>(active[static_cast<std::size_t>(j)])]
                    .inputs.data() +
                i * enc_in,
            enc_in, x_step.data() + j * enc_in);
      Tensor h_step = Tensor::Uninit(Shape{e, d});
      kernels::SelectRows(e, d, active.data(), h_all.data(), h_step.data());
      Tensor h_new =
          gru_encoder_->Forward(ag::Constant(x_step), ag::Constant(h_step))
              .value();
      kernels::ScatterRows(e, d, active.data(), h_new.data(), h_all.data());
      for (Index j = 0; j < e; ++j)
        std::copy_n(
            h_new.data() + j * d, d,
            z_rows[static_cast<std::size_t>(active[static_cast<std::size_t>(j)])]
                    .data() +
                i * d);
    }
  } else {
    for (Index r = 0; r < b; ++r)
      z_rows[static_cast<std::size_t>(r)] =
          mlp_encoder_->Forward(
                  ag::Constant(inputs[static_cast<std::size_t>(r)].inputs))
              .value();
  }
  std::vector<Encoded> encs(static_cast<std::size_t>(b));
  // The per-row context builds (pseudoinverse, h2/adaH heads) are
  // independent, so they shard across the deterministic pool. GradMode is
  // thread-local and the engine is eval-only, so every chunk pins NoGrad:
  // worker threads would otherwise default to grad-on and build tapes.
  parallel::ParallelFor(0, b, 1, [&](Index r0, Index r1) {
    ag::NoGradScope no_grad;
    for (Index r = r0; r < r1; ++r) {
      Encoded& enc = encs[static_cast<std::size_t>(r)];
      data::EncoderInputs& in = inputs[static_cast<std::size_t>(r)];
      enc.t_scale = in.t_scale;
      enc.t_offset = in.t_offset;
      enc.norm_times = std::move(in.norm_times);
      enc.z = ag::Constant(z_rows[static_cast<std::size_t>(r)]);
      BuildContexts(&enc);
    }
  });
  return encs;
}

std::vector<std::vector<Tensor>> DiffOde::BatchedStatesAt(
    const std::vector<Encoded>& encs,
    const std::vector<std::vector<Scalar>>& norm_queries) const {
  const Index b = static_cast<Index>(encs.size());
  const Index sd = StateDim();
  const Index d = config_.latent_dim;
  const Index dc = config_.hippo_dim;
  const Index dr = config_.info_dim;
  const Index heads = config_.num_heads;
  const Index dh = d / heads;
  const bool attn = config_.use_attention;
  const bool direct = config_.head == OutputHead::kDirect;
  const bool anchored = attn && config_.consistency_weight > 0.0;

  // Per-row plans replicating StatesAt's grid (see core/batch_plans.h); the
  // builder is shared with the f32 serving engine so both precisions replay
  // identical timelines.
  std::vector<const std::vector<Scalar>*> anchors(static_cast<std::size_t>(b),
                                                  nullptr);
  if (anchored)
    for (Index r = 0; r < b; ++r)
      anchors[static_cast<std::size_t>(r)] =
          &encs[static_cast<std::size_t>(r)].norm_times;
  BatchPlans bp = BuildBatchPlans(norm_queries, anchors, config_.step);
  const std::vector<ode::RowPlan>& plans = bp.plans;
  const std::vector<Index>& orig_of_row = bp.orig_of_row;
  const std::vector<std::vector<Scalar>>& slots = bp.slots;
  const std::vector<Index>& back_row = bp.back_row;
  std::vector<const Encoded*> row_enc;
  row_enc.reserve(orig_of_row.size());
  for (Index orig : orig_of_row)
    row_enc.push_back(&encs[static_cast<std::size_t>(orig)]);

  const Index rows_total = static_cast<Index>(plans.size());
  Tensor y = Tensor::Uninit(Shape{rows_total, sd});
  for (Index r = 0; r < b; ++r) {
    const Tensor y0 = InitialState(encs[static_cast<std::size_t>(r)]).value();
    std::copy_n(y0.data(), sd, y.data() + r * sd);
    const Index br = back_row[static_cast<std::size_t>(r)];
    if (br >= 0) std::copy_n(y0.data(), sd, y.data() + br * sd);
  }

  // The batched RHS: per-row DHS inversion with the exact per-sequence
  // arithmetic, shared MLPs evaluated once for all active rows.
  const ode::BatchedRhs rhs = [&](const std::vector<Index>& rows,
                                  const std::vector<Scalar>& tt,
                                  const Tensor& ya) -> Tensor {
    const Index a = static_cast<Index>(rows.size());
    Tensor k_out = Tensor::Uninit(Shape{a, sd});
    // The HiPPO tail dc/dt = c Aᵀ + Bᵀ (w_r r), dr/dt = f_r(...): u_r comes
    // from the batched f_r forward; the Bᵀ outer product and the add are
    // per-row loops split across stored temporaries (exact elementwise ops,
    // so bitwise regardless of batching).
    std::vector<Scalar> outer(static_cast<std::size_t>(dc));
    const auto hippo_tail = [&](Index s_width, const Tensor& u_r) {
      Tensor c_mat = Tensor::Uninit(Shape{a, dc});
      Tensor r_mat = Tensor::Uninit(Shape{a, dr});
      for (Index i = 0; i < a; ++i) {
        std::copy_n(ya.data() + i * sd + s_width, dc, c_mat.data() + i * dc);
        std::copy_n(ya.data() + i * sd + s_width + dc, dr,
                    r_mat.data() + i * dr);
      }
      Tensor dcm = c_mat.MatMul(hippo_a_t_);                          // a x dc
      Tensor wr = w_r_->Forward(ag::Constant(r_mat)).value();         // a x 1
      const Scalar* bt = hippo_b_t_.data();
      for (Index i = 0; i < a; ++i) {
        Scalar* krow = k_out.data() + i * sd + s_width;
        const Scalar* dcrow = dcm.data() + i * dc;
        const Scalar wri = wr.data()[i];
        for (Index j = 0; j < dc; ++j)
          outer[static_cast<std::size_t>(j)] = bt[j] * wri;
        for (Index j = 0; j < dc; ++j)
          krow[j] = dcrow[j] + outer[static_cast<std::size_t>(j)];
        std::copy_n(u_r.data() + i * dr, dr, krow + dc);
      }
    };
    if (!attn) {
      // HiPPO-RNN-like ablation: rows are [c | r], f_r sees [z_mean | c | r].
      Tensor xfr = Tensor::Uninit(Shape{a, d + dc + dr});
      for (Index i = 0; i < a; ++i) {
        const Encoded& enc = *row_enc[static_cast<std::size_t>(
            rows[static_cast<std::size_t>(i)])];
        std::copy_n(enc.z_mean.value().data(), d, xfr.data() + i * (d + dc + dr));
        std::copy_n(ya.data() + i * sd, dc + dr,
                    xfr.data() + i * (d + dc + dr) + d);
      }
      const Tensor u_r = f_r_->Forward(ag::Constant(xfr)).value();
      hippo_tail(0, u_r);
      return k_out;
    }
    // Invert the attention per row and head, then run phi once for the
    // whole wave: rows of xphi are [z_recovered | t_row]. The per-row
    // recoveries are independent Tensor chains with disjoint writes, so they
    // shard across the deterministic pool (each row's serial arithmetic is
    // untouched — same bits at any thread count); grain 1 because one row
    // costs several n-sized GEMMs.
    std::vector<std::vector<Tensor>> p_rows(
        static_cast<std::size_t>(heads),
        std::vector<Tensor>(static_cast<std::size_t>(a)));
    Tensor xphi = Tensor::Uninit(Shape{a, d + 1});
    parallel::ParallelFor(0, a, 1, [&](Index i0, Index i1) {
      Tensor s_h = Tensor::Uninit(Shape{1, dh});
      for (Index i = i0; i < i1; ++i) {
        const Encoded& enc = *row_enc[static_cast<std::size_t>(
            rows[static_cast<std::size_t>(i)])];
        const Scalar* yrow = ya.data() + i * sd;
        for (Index hh = 0; hh < heads; ++hh) {
          const DhsContext& ctx = enc.heads[static_cast<std::size_t>(hh)];
          std::copy_n(yrow + hh * dh, dh, s_h.data());
          Tensor p = RecoverPRow(ctx, s_h, config_.pt_strategy);
          const Tensor z_h = RecoverZRow(ctx, p, enc.h2.value());
          std::copy_n(z_h.data(), dh, xphi.data() + i * (d + 1) + hh * dh);
          p_rows[static_cast<std::size_t>(hh)][static_cast<std::size_t>(i)] =
              std::move(p);
        }
        xphi.data()[i * (d + 1) + d] = tt[static_cast<std::size_t>(i)];
      }
    });
    const Tensor w = ag::Tanh(phi_->Forward(ag::Constant(xphi))).value();
    parallel::ParallelFor(0, a, 1, [&](Index i0, Index i1) {
      Tensor w_h = Tensor::Uninit(Shape{1, dh});
      for (Index i = i0; i < i1; ++i) {
        const Encoded& enc = *row_enc[static_cast<std::size_t>(
            rows[static_cast<std::size_t>(i)])];
        for (Index hh = 0; hh < heads; ++hh) {
          std::copy_n(w.data() + i * d + hh * dh, dh, w_h.data());
          const Tensor ds = DerivativeRow(
              enc.heads[static_cast<std::size_t>(hh)], w_h,
              p_rows[static_cast<std::size_t>(hh)][static_cast<std::size_t>(i)]);
          std::copy_n(ds.data(), dh, k_out.data() + i * sd + hh * dh);
        }
      }
    });
    if (!direct) {
      // f_r's input [s | c | r] is exactly the packed state row.
      const Tensor u_r = f_r_->Forward(ag::Constant(ya)).value();
      hippo_tail(d, u_r);
    }
    return k_out;
  };

  std::vector<std::vector<Tensor>> slot_states(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r)
    slot_states[static_cast<std::size_t>(r)].resize(
        slots[static_cast<std::size_t>(r)].size());
  const ode::LockstepEventFn on_event =
      [&](const std::vector<ode::LockstepEvent>& events, Tensor* yp) {
        for (const ode::LockstepEvent& e : events)
          slot_states[static_cast<std::size_t>(
              orig_of_row[static_cast<std::size_t>(e.row)])]
                     [static_cast<std::size_t>(e.tag)] = yp->Row(e.row);
      };
  ode::LockstepIntegrate(plans, diff_method_, rhs, on_event, &y);

  std::vector<std::vector<Tensor>> out(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r) {
    const std::vector<Scalar>& sl = slots[static_cast<std::size_t>(r)];
    auto& dst = out[static_cast<std::size_t>(r)];
    dst.reserve(norm_queries[static_cast<std::size_t>(r)].size());
    for (Scalar t : norm_queries[static_cast<std::size_t>(r)]) {
      const auto it = std::lower_bound(sl.begin(), sl.end(), t);
      dst.push_back(slot_states[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(it - sl.begin())]);
    }
  }
  return out;
}

Tensor DiffOde::ClassifyLogitsBatched(const data::SequenceBatch& batch) {
  if (serving_f32_)
    return DiffOdeF32Engine::ClassifyLogitsBatched(*this, batch);
  ag::NoGradScope no_grad;
  std::vector<Encoded> encs = EncodeBatched(batch);
  const Index b = batch.batch;
  std::vector<std::vector<Scalar>> queries(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r)
    queries[static_cast<std::size_t>(r)] =
        encs[static_cast<std::size_t>(r)].norm_times;
  const std::vector<std::vector<Tensor>> states =
      BatchedStatesAt(encs, queries);
  const Index ro = ReadoutDim();
  const Index sd = StateDim();
  const Index d = config_.latent_dim;
  const Index dc = config_.hippo_dim;
  const Index dr = config_.info_dim;
  const bool attn = config_.use_attention;
  const bool direct = config_.head == OutputHead::kDirect;
  Tensor x = Tensor::Uninit(Shape{b, 2 * ro});
  // One mean-pooled readout chain per row, as raw loops: ReadoutInput is
  // pure slicing/concat and AddInPlace/MulScalar are elementwise in fixed
  // order, so accumulating the slices directly reproduces the per-sequence
  // chain bit for bit without its per-state Var and concat allocations.
  // Rows are independent and write disjoint slices of x, so they shard
  // across the pool.
  parallel::ParallelFor(0, b, 1, [&](Index r0, Index r1) {
    std::vector<Scalar> acc(static_cast<std::size_t>(ro));
    std::vector<Scalar> ri(static_cast<std::size_t>(ro));
    for (Index r = r0; r < r1; ++r) {
      const Encoded& enc = encs[static_cast<std::size_t>(r)];
      const std::vector<Tensor>& st = states[static_cast<std::size_t>(r)];
      const Scalar* zm = attn ? nullptr : enc.z_mean.value().data();
      const auto read_into = [&](const Tensor& state, Scalar* dst) {
        const Scalar* sv = state.data();
        if (!attn) {
          std::copy_n(zm, d, dst);
          std::copy_n(sv + dc, dr, dst + d);
        } else if (direct) {
          std::copy_n(sv, sd, dst);
        } else {
          std::copy_n(sv, d, dst);
          std::copy_n(sv + d + dc, dr, dst + d);
        }
      };
      read_into(st[0], acc.data());
      for (std::size_t i = 1; i < st.size(); ++i) {
        read_into(st[static_cast<std::size_t>(i)], ri.data());
        for (Index j = 0; j < ro; ++j)
          acc[static_cast<std::size_t>(j)] += ri[static_cast<std::size_t>(j)];
      }
      const Scalar inv = 1.0 / static_cast<Scalar>(st.size());
      for (Index j = 0; j < ro; ++j) acc[static_cast<std::size_t>(j)] *= inv;
      Scalar* xr = x.data() + r * 2 * ro;
      std::copy_n(acc.data(), ro, xr);
      read_into(st.back(), xr + ro);
    }
  });
  return f_out_cls_->Forward(ag::Constant(x)).value();
}

std::vector<std::vector<Tensor>> DiffOde::PredictAtBatched(
    const data::SequenceBatch& batch,
    const std::vector<std::vector<Scalar>>& times) {
  if (serving_f32_) return DiffOdeF32Engine::PredictAtBatched(*this, batch, times);
  ag::NoGradScope no_grad;
  DIFFODE_CHECK_EQ(static_cast<Index>(times.size()), batch.batch);
  std::vector<Encoded> encs = EncodeBatched(batch);
  const Index b = batch.batch;
  std::vector<std::vector<Scalar>> norm(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r) {
    const Encoded& enc = encs[static_cast<std::size_t>(r)];
    auto& dst = norm[static_cast<std::size_t>(r)];
    dst.reserve(times[static_cast<std::size_t>(r)].size());
    for (Scalar t : times[static_cast<std::size_t>(r)])
      dst.push_back((t - enc.t_offset) * enc.t_scale);
  }
  const std::vector<std::vector<Tensor>> states = BatchedStatesAt(encs, norm);
  std::vector<std::vector<Tensor>> out(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r) {
    const Encoded& enc = encs[static_cast<std::size_t>(r)];
    auto& dst = out[static_cast<std::size_t>(r)];
    const auto& nq = norm[static_cast<std::size_t>(r)];
    dst.reserve(nq.size());
    for (std::size_t k = 0; k < nq.size(); ++k) {
      // Per-pair head application on 1 x (ReadoutDim()+1), exactly the
      // per-sequence shape, so regression outputs are bitwise at any B.
      const ag::Var t_var = ag::Constant(Tensor::Full(Shape{1, 1}, nq[k]));
      dst.push_back(
          f_out_reg_
              ->Forward(ag::ConcatCols(
                  {ReadoutInput(
                       enc, ag::Constant(
                                states[static_cast<std::size_t>(r)][k])),
                   t_var}))
              .value());
    }
  }
  return out;
}

}  // namespace diffode::core
