#include "core/batched_model.h"

#include "autograd/variable.h"

namespace diffode::core {

BatchedDispatch::BatchedDispatch(SequenceModel* model)
    : model_(model), native_(dynamic_cast<BatchedSequenceModel*>(model)) {}

Tensor BatchedDispatch::ClassifyLogitsBatched(
    const data::SequenceBatch& batch) {
  if (native_) return native_->ClassifyLogitsBatched(batch);
  ag::NoGradScope no_grad;
  Tensor out;
  for (Index r = 0; r < batch.batch; ++r) {
    (void)model_->TakeAuxiliaryLoss();
    const ag::Var logits =
        model_->ClassifyLogits(*batch.series[static_cast<std::size_t>(r)]);
    (void)model_->TakeAuxiliaryLoss();
    if (r == 0) out = Tensor(Shape{batch.batch, logits.cols()});
    out.SetRow(r, logits.value());
  }
  return out;
}

std::vector<std::vector<Tensor>> BatchedDispatch::PredictAtBatched(
    const data::SequenceBatch& batch,
    const std::vector<std::vector<Scalar>>& times) {
  if (native_) return native_->PredictAtBatched(batch, times);
  ag::NoGradScope no_grad;
  std::vector<std::vector<Tensor>> out(static_cast<std::size_t>(batch.batch));
  for (Index r = 0; r < batch.batch; ++r) {
    (void)model_->TakeAuxiliaryLoss();
    const std::vector<ag::Var> preds = model_->PredictAt(
        *batch.series[static_cast<std::size_t>(r)],
        times[static_cast<std::size_t>(r)]);
    (void)model_->TakeAuxiliaryLoss();
    auto& rows = out[static_cast<std::size_t>(r)];
    rows.reserve(preds.size());
    for (const ag::Var& p : preds) rows.push_back(p.value());
  }
  return out;
}

}  // namespace diffode::core
