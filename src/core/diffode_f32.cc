// The f32 serving engine behind Freeze(Precision::kF32): float mirrors of
// the lockstep batched forwards in diffode_batched.cc.
//
// Precision contract. The step TIMELINES are exactly the f64 engine's —
// BuildBatchPlans and the per-row stage times stay f64 — and the DHS
// factorization (the ridge Gram inverse behind (Zᵀ)†, the projector sums)
// is still built in f64 by DiffOde::BuildContexts, from the f32-encoded
// latents widened once. Everything per STEP — encoder GEMMs, the
// p/z recoveries, phi / f_r / w_r / f_out, the RK stage combines — runs in
// float through the same kernel entry points (8 AVX2 lanes instead of 4).
// Each float statement below mirrors one statement of the f64 engine, so
// the two paths differ only by rounding, never by algorithm; the zoo-level
// agreement bound lives in tests/precision_test.cc.
#include "core/diffode_f32.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/batch_plans.h"
#include "core/diffode_model.h"
#include "core/parallel.h"
#include "data/encoding.h"
#include "nn/frozen.h"
#include "ode/lockstep.h"
#include "tensor/kernels.h"

namespace diffode::core {
namespace {

// Must match the kSpan of diffode_model.cc.
constexpr Scalar kSpan = 10.0;

// Allocation-free float recoveries: the same math as diffode_batched.cc's
// RecoverPRow / RecoverZRow / DerivativeRow, fused into raw loops over
// caller-provided scratch. Per RK stage the tensor-temporary formulation
// pays ~8 pool round-trips per (row, head); at f32 serving rates that
// bookkeeping, not the arithmetic, dominates, so the f32 tier writes
// p / z / dstate straight into flat buffers instead.

// p = s_h (Zᵀ)† (+ strategy correction), written into p_out[n].
void RecoverPRow32(const DhsContextF32& ctx, const float* s_h, Index dh,
                   sparsity::PtStrategy strategy, float* p_out) {
  const Index n = ctx.zt_pinv.rows();
  // p (1 x n) = s_h (1 x dh) · pinvᵀ, pinv stored n x dh row-major.
  kernels::GemmNT(1, dh, n, s_h, ctx.zt_pinv.data(), p_out);
  switch (strategy) {
    case sparsity::PtStrategy::kMinNorm:
      return;
    case sparsity::PtStrategy::kAdaH:
      DIFFODE_CHECK_GT(ctx.ada_corr.numel(), 0);
      kernels::Axpy(n, 1.0f, ctx.ada_corr.data(), p_out);
      return;
    case sparsity::PtStrategy::kExactKkt:
      [[fallthrough]];
    case sparsity::PtStrategy::kMaxHoyer: {
      const float total = ctx.ap_total;
      // Same degenerate-projector guard as the f64 recovery (1e-10 is far
      // below f32 resolution of a well-conditioned total, so both paths
      // take the same branch on real contexts).
      if (std::fabs(total) < 1e-10f) return;
      const float coeff = (kernels::Sum(n, p_out) - 1.0f) * (1.0f / total);
      kernels::Axpy(n, -coeff, ctx.ap_rowsum.data(), p_out);
      return;
    }
  }
  DIFFODE_CHECK(false);
}

// z_h = sqrt(d) * (c p - 1) (Zᵀ)† with c = <p,h2>/<p,p>, written into
// z_out[dh]. Expanded as c*sqrt(d)*(p · pinv) - sqrt(d)*colsum(pinv), with
// the column sums precomputed (in f64) by CastContext — one GEMM, no
// scratch vector, no trailing Scale.
void RecoverZRow32(const DhsContextF32& ctx, const float* p, const float* h2,
                   Index dh, float* z_out) {
  const Index n = ctx.zt_pinv.rows();
  const float pp = kernels::Dot(n, p, p);
  const float ph = kernels::Dot(n, p, h2);
  const float sq = std::sqrt(static_cast<float>(ctx.d));
  const float c = ph / pp * sq;
  kernels::Gemm(1, n, dh, p, ctx.zt_pinv.data(), z_out);
  const float* cs = ctx.pinv_colsum.data();
  for (Index j = 0; j < dh; ++j) z_out[j] = c * z_out[j] - sq * cs[j];
}

// ds = scale * ((u ⊙ p) Z - <u,p> p Z) with u = Z w_h, written into
// ds_out[dh]; scratch must hold 3*n + 2*dh floats (u ‖ [u⊙p ; p] ‖ C2).
// The two (1 x n)·(n x dh) products share Z, so they run as ONE m=2 GEMM:
// same arithmetic per output, half the kernel dispatches, and the panel
// reuses each Z row for both output rows while it is hot.
void DerivativeRow32(const DhsContextF32& ctx, const float* w_h,
                     const float* p, Index dh, float* scratch,
                     float* ds_out) {
  const Index n = ctx.z.rows();
  const float* z = ctx.z.data();  // n x dh, row-major
  float* u = scratch;
  float* a2 = scratch + n;      // [u ⊙ p ; p], 2 x n
  float* c2 = a2 + 2 * n;       // [term1 ; term2], 2 x dh
  kernels::GemmNT(1, dh, n, w_h, z, u);  // u (1 x n) = w_h · Zᵀ
  const float up = kernels::Dot(n, u, p);
  for (Index k = 0; k < n; ++k) a2[k] = u[k] * p[k];
  std::copy_n(p, n, a2 + n);
  kernels::Gemm(2, n, dh, a2, z, c2);
  const float scale = 1.0f / std::sqrt(static_cast<float>(ctx.d));
  for (Index j = 0; j < dh; ++j)
    ds_out[j] = scale * (c2[j] - up * c2[dh + j]);
}

DhsContextF32 CastContext(const DhsContext& ctx) {
  DhsContextF32 out;
  out.zt_pinv = ctx.zt_pinv.value().Cast<float>();
  {
    // Column sums of (Zᵀ)†, accumulated in f64 before the single rounding:
    // RecoverZRow32 subtracts them instead of materialising the (cp - 1)
    // vector, saving a scratch pass and a Scale per (row, head, stage).
    const Tensor& pinv = ctx.zt_pinv.value();
    const Index n = pinv.rows(), dh = pinv.cols();
    out.pinv_colsum = Tensor32::Uninit(Shape{1, dh});
    for (Index j = 0; j < dh; ++j) {
      Scalar acc = 0.0;
      for (Index k = 0; k < n; ++k) acc += pinv.at(k, j);
      out.pinv_colsum.data()[j] = static_cast<float>(acc);
    }
  }
  out.ap_rowsum = ctx.ap_rowsum.value().Cast<float>();
  if (ctx.ada_corr.defined())
    out.ada_corr = ctx.ada_corr.value().Cast<float>();
  out.z = ctx.z.value().Cast<float>();
  out.ap_total = static_cast<float>(ctx.ap_total.value().item());
  out.d = ctx.d;
  return out;
}

}  // namespace

// The frozen f32 parameter snapshot. Built by DiffOde::OnFrozen AFTER
// Module::Freeze has rounded every parameter through float, so each Cast
// here is exact and a save → load → Freeze(kF32) round-trip rebuilds the
// snapshot bit-identically (tests/serialize_roundtrip_test.cc).
struct ServingF32 {
  bool has_gru = false;
  nn::FrozenGru<float> gru;
  nn::FrozenMlp<float> mlp_encoder;
  nn::FrozenMlp<float> phi;
  nn::FrozenMlp<float> f_r;
  nn::FrozenLinear<float> w_r;
  nn::FrozenMlp<float> f_out_cls;
  nn::FrozenMlp<float> f_out_reg;
  Tensor32 hippo_a_t;  // dc x dc (Aᵀ; constants, cast directly)
  Tensor32 hippo_b_t;  // 1 x dc (Bᵀ)
};

std::shared_ptr<ServingF32> DiffOdeF32Engine::Snapshot(const DiffOde& model) {
  auto snap = std::make_shared<ServingF32>();
  if (model.gru_encoder_) {
    snap->has_gru = true;
    snap->gru = nn::FrozenGru<float>::FromModule(*model.gru_encoder_);
  } else {
    snap->mlp_encoder = nn::FrozenMlp<float>::FromModule(*model.mlp_encoder_);
  }
  snap->phi = nn::FrozenMlp<float>::FromModule(*model.phi_);
  snap->f_r = nn::FrozenMlp<float>::FromModule(*model.f_r_);
  snap->w_r = nn::FrozenLinear<float>::FromModule(*model.w_r_);
  snap->f_out_cls = nn::FrozenMlp<float>::FromModule(*model.f_out_cls_);
  snap->f_out_reg = nn::FrozenMlp<float>::FromModule(*model.f_out_reg_);
  snap->hippo_a_t = model.hippo_a_t_.Cast<float>();
  snap->hippo_b_t = model.hippo_b_t_.Cast<float>();
  return snap;
}

void DiffOde::OnFrozen(Precision precision) {
  serving_f32_ = precision == Precision::kF32
                     ? DiffOdeF32Engine::Snapshot(*this)
                     : nullptr;
}

std::vector<EncodedF32> DiffOdeF32Engine::EncodeBatched(
    const DiffOde& model, const data::SequenceBatch& batch) {
  const ServingF32& snap = *model.serving_f32_;
  const DiffOdeConfig& config = model.config_;
  const Index b = batch.batch;
  const Index f = config.input_dim;
  const Index d = config.latent_dim;
  DIFFODE_CHECK_EQ(batch.features, f);
  // Encoder inputs are built by the shared f64 featurizer and rounded to
  // float once per row — the encoder GEMMs themselves run in f32.
  std::vector<data::EncoderInputs> inputs;
  std::vector<Tensor32> in32(static_cast<std::size_t>(b));
  inputs.reserve(static_cast<std::size_t>(b));
  Index max_n = 0;
  for (Index r = 0; r < b; ++r) {
    const data::IrregularSeries& s = *batch.series[static_cast<std::size_t>(r)];
    DIFFODE_CHECK_GE(s.length(), 2);
    inputs.push_back(data::BuildEncoderInputs(s, kSpan));
    in32[static_cast<std::size_t>(r)] =
        inputs.back().inputs.Cast<float>();
    max_n = std::max(max_n, s.length());
  }
  std::vector<Tensor32> z_rows(static_cast<std::size_t>(b));
  if (snap.has_gru) {
    // Same observation-indexed waves as the f64 engine: gather active rows,
    // one batched FrozenGru step at GEMM shape m = E, scatter back.
    for (Index r = 0; r < b; ++r)
      z_rows[static_cast<std::size_t>(r)] = Tensor32::Uninit(
          Shape{batch.lengths[static_cast<std::size_t>(r)], d});
    const Index enc_in = in32.front().cols();
    Tensor32 h_all(Shape{b, d});
    std::vector<Index> active;
    for (Index i = 0; i < max_n; ++i) {
      active.clear();
      for (Index r = 0; r < b; ++r)
        if (i < batch.lengths[static_cast<std::size_t>(r)]) active.push_back(r);
      const Index e = static_cast<Index>(active.size());
      Tensor32 x_step = Tensor32::Uninit(Shape{e, enc_in});
      for (Index j = 0; j < e; ++j)
        std::copy_n(
            in32[static_cast<std::size_t>(active[static_cast<std::size_t>(j)])]
                    .data() +
                i * enc_in,
            enc_in, x_step.data() + j * enc_in);
      Tensor32 h_step = Tensor32::Uninit(Shape{e, d});
      kernels::SelectRows(e, d, active.data(), h_all.data(), h_step.data());
      Tensor32 h_new = snap.gru.Forward(x_step, h_step);
      kernels::ScatterRows(e, d, active.data(), h_new.data(), h_all.data());
      for (Index j = 0; j < e; ++j)
        std::copy_n(
            h_new.data() + j * d, d,
            z_rows[static_cast<std::size_t>(active[static_cast<std::size_t>(j)])]
                    .data() +
                i * d);
    }
  } else {
    for (Index r = 0; r < b; ++r)
      z_rows[static_cast<std::size_t>(r)] =
          snap.mlp_encoder.Forward(in32[static_cast<std::size_t>(r)]);
  }
  // Context factorization: widen the f32 latents once and reuse the f64
  // BuildContexts (pseudoinverse, h2/adaH heads) verbatim, then cast the
  // per-step tensors down. The inversion is the numerically delicate part
  // of DHS; keeping it f64 costs one factorization per sequence, not per
  // step, and is what keeps the f32 logits inside the 1e-4 agreement band.
  std::vector<EncodedF32> encs(static_cast<std::size_t>(b));
  parallel::ParallelFor(0, b, 1, [&](Index r0, Index r1) {
    ag::NoGradScope no_grad;
    for (Index r = r0; r < r1; ++r) {
      EncodedF32& out = encs[static_cast<std::size_t>(r)];
      data::EncoderInputs& in = inputs[static_cast<std::size_t>(r)];
      DiffOde::Encoded enc;
      enc.t_scale = in.t_scale;
      enc.t_offset = in.t_offset;
      enc.norm_times = std::move(in.norm_times);
      enc.z = ag::Constant(
          z_rows[static_cast<std::size_t>(r)].Cast<double>());  // dtype:ok
      model.BuildContexts(&enc);
      out.heads.reserve(enc.heads.size());
      for (const DhsContext& ctx : enc.heads)
        out.heads.push_back(CastContext(ctx));
      if (enc.h2.defined()) out.h2 = enc.h2.value().Cast<float>();
      out.z_mean = enc.z_mean.value().Cast<float>();
      out.y0 = model.InitialState(enc).value().Cast<float>();
      out.norm_times = std::move(enc.norm_times);
      out.t_scale = enc.t_scale;
      out.t_offset = enc.t_offset;
    }
  });
  return encs;
}

std::vector<std::vector<Tensor32>> DiffOdeF32Engine::BatchedStatesAt(
    const DiffOde& model, const std::vector<EncodedF32>& encs,
    const std::vector<std::vector<Scalar>>& norm_queries) {
  const ServingF32& snap = *model.serving_f32_;
  const DiffOdeConfig& config = model.config_;
  const Index b = static_cast<Index>(encs.size());
  const Index sd = model.StateDim();
  const Index d = config.latent_dim;
  const Index dc = config.hippo_dim;
  const Index dr = config.info_dim;
  const Index heads = config.num_heads;
  const Index dh = d / heads;
  const bool attn = config.use_attention;
  const bool direct = config.head == OutputHead::kDirect;
  const bool anchored = attn && config.consistency_weight > 0.0;

  // Identical timelines to the f64 engine: same builder, same f64 grids.
  std::vector<const std::vector<Scalar>*> anchors(static_cast<std::size_t>(b),
                                                  nullptr);
  if (anchored)
    for (Index r = 0; r < b; ++r)
      anchors[static_cast<std::size_t>(r)] =
          &encs[static_cast<std::size_t>(r)].norm_times;
  BatchPlans bp = BuildBatchPlans(norm_queries, anchors, config.step);
  const std::vector<ode::RowPlan>& plans = bp.plans;
  const std::vector<Index>& orig_of_row = bp.orig_of_row;
  const std::vector<std::vector<Scalar>>& slots = bp.slots;
  const std::vector<Index>& back_row = bp.back_row;
  std::vector<const EncodedF32*> row_enc;
  row_enc.reserve(orig_of_row.size());
  for (Index orig : orig_of_row)
    row_enc.push_back(&encs[static_cast<std::size_t>(orig)]);

  // The carried state is f64 even in the f32 tier: the integrator's
  // accumulate (y += h*sum b_i k_i) is a rounding injection point that the
  // DHS pseudo-inverse amplifies every step, and keeping it wide is nearly
  // free — the per-stage cost is two dense casts, dwarfed by the RHS GEMMs
  // that stay f32. Only the RHS evaluation drops to float.
  const Index rows_total = static_cast<Index>(plans.size());
  Tensor y = Tensor::Uninit(Shape{rows_total, sd});
  for (Index r = 0; r < b; ++r) {
    const Tensor32& y0 = encs[static_cast<std::size_t>(r)].y0;
    std::copy_n(y0.data(), sd, y.data() + r * sd);
    const Index br = back_row[static_cast<std::size_t>(r)];
    if (br >= 0) std::copy_n(y0.data(), sd, y.data() + br * sd);
  }

  // Longest context length across the batch: the stride of the flat
  // per-(row, head) p buffer the two recovery passes share.
  Index max_n = 0;
  for (const EncodedF32& e : encs)
    if (!e.heads.empty())
      max_n = std::max(max_n, e.heads.front().zt_pinv.rows());
  max_n = std::max<Index>(max_n, 1);
  // Scratch reused across RK stages: the flat per-(row, head) attention
  // buffer, per-chunk recovery scratch (chunks of kChunk rows), and the
  // cached stage inputs (reallocated only when the active-row count drops).
  constexpr Index kChunk = 16;
  std::vector<float> p_buf;
  std::vector<float> chunk_scratch;
  Tensor32 xphi_cache, c_mat_cache, r_mat_cache, xfr_cache;
  Index cached_a = -1;  // active-row count the caches are shaped for

  // Float mirror of the f64 batched RHS (see diffode_batched.cc for the
  // per-statement rationale); stage times arrive as f64 and round to float
  // only where they enter the state arithmetic (phi's time feature).
  const ode::BatchedRhsT<float> rhs =
      [&](const std::vector<Index>& rows, const std::vector<Scalar>& tt,
          const Tensor32& ya) -> Tensor32 {
    const Index a = static_cast<Index>(rows.size());
    if (cached_a != a) {
      cached_a = a;
      if (attn)
        xphi_cache = Tensor32::Uninit(Shape{a, d + 1});
      else
        xfr_cache = Tensor32::Uninit(Shape{a, d + dc + dr});
      if (!attn || !direct) {
        c_mat_cache = Tensor32::Uninit(Shape{a, dc});
        r_mat_cache = Tensor32::Uninit(Shape{a, dr});
      }
    }
    Tensor32 k_out = Tensor32::Uninit(Shape{a, sd});
    const auto hippo_tail = [&](Index s_width, const Tensor32& u_r) {
      Tensor32& c_mat = c_mat_cache;
      Tensor32& r_mat = r_mat_cache;
      for (Index i = 0; i < a; ++i) {
        std::copy_n(ya.data() + i * sd + s_width, dc, c_mat.data() + i * dc);
        std::copy_n(ya.data() + i * sd + s_width + dc, dr,
                    r_mat.data() + i * dr);
      }
      Tensor32 dcm = c_mat.MatMul(snap.hippo_a_t);  // a x dc
      Tensor32 wr = snap.w_r.Forward(r_mat);        // a x 1
      const float* bt = snap.hippo_b_t.data();
      for (Index i = 0; i < a; ++i) {
        float* krow = k_out.data() + i * sd + s_width;
        const float* dcrow = dcm.data() + i * dc;
        const float wri = wr.data()[i];
        for (Index j = 0; j < dc; ++j) krow[j] = dcrow[j] + bt[j] * wri;
        std::copy_n(u_r.data() + i * dr, dr, krow + dc);
      }
    };
    if (!attn) {
      Tensor32& xfr = xfr_cache;
      for (Index i = 0; i < a; ++i) {
        const EncodedF32& enc = *row_enc[static_cast<std::size_t>(
            rows[static_cast<std::size_t>(i)])];
        std::copy_n(enc.z_mean.data(), d, xfr.data() + i * (d + dc + dr));
        std::copy_n(ya.data() + i * sd, dc + dr,
                    xfr.data() + i * (d + dc + dr) + d);
      }
      const Tensor32 u_r = snap.f_r.Forward(xfr);
      hippo_tail(0, u_r);
      return k_out;
    }
    // Flat p buffer, stride max_n per (row, head): recovered in the first
    // pass, consumed by the derivative pass after phi. No per-row tensors.
    p_buf.resize(static_cast<std::size_t>(a * heads * max_n));
    // Chunk boundaries in ParallelFor are deterministic in (a, kChunk), so
    // each chunk owns a disjoint slice of the flat scratch buffer.
    const Index scratch_stride = 3 * max_n + 2 * dh;
    chunk_scratch.resize(
        static_cast<std::size_t>(((a + kChunk - 1) / kChunk) * scratch_stride));
    Tensor32& xphi = xphi_cache;
    parallel::ParallelFor(0, a, kChunk, [&](Index i0, Index i1) {
      for (Index i = i0; i < i1; ++i) {
        const EncodedF32& enc = *row_enc[static_cast<std::size_t>(
            rows[static_cast<std::size_t>(i)])];
        const float* yrow = ya.data() + i * sd;
        const float* h2 = enc.h2.data();
        for (Index hh = 0; hh < heads; ++hh) {
          const DhsContextF32& ctx = enc.heads[static_cast<std::size_t>(hh)];
          float* p = p_buf.data() + (i * heads + hh) * max_n;
          RecoverPRow32(ctx, yrow + hh * dh, dh, config.pt_strategy, p);
          RecoverZRow32(ctx, p, h2, dh,
                        xphi.data() + i * (d + 1) + hh * dh);
        }
        xphi.data()[i * (d + 1) + d] =
            static_cast<float>(tt[static_cast<std::size_t>(i)]);
      }
    });
    Tensor32 w = snap.phi.Forward(xphi);
    kernels::MapTanh(w.numel(), w.data(), w.data());
    parallel::ParallelFor(0, a, kChunk, [&](Index i0, Index i1) {
      float* scratch = chunk_scratch.data() + (i0 / kChunk) * scratch_stride;
      for (Index i = i0; i < i1; ++i) {
        const EncodedF32& enc = *row_enc[static_cast<std::size_t>(
            rows[static_cast<std::size_t>(i)])];
        for (Index hh = 0; hh < heads; ++hh) {
          DerivativeRow32(enc.heads[static_cast<std::size_t>(hh)],
                          w.data() + i * d + hh * dh,
                          p_buf.data() + (i * heads + hh) * max_n, dh,
                          scratch, k_out.data() + i * sd + hh * dh);
        }
      }
    });
    if (!direct) {
      const Tensor32 u_r = snap.f_r.Forward(ya);
      hippo_tail(d, u_r);
    }
    return k_out;
  };

  std::vector<std::vector<Tensor32>> slot_states(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r)
    slot_states[static_cast<std::size_t>(r)].resize(
        slots[static_cast<std::size_t>(r)].size());
  const ode::LockstepEventFnT<double> on_event =
      [&](const std::vector<ode::LockstepEvent>& events, Tensor* yp) {
        for (const ode::LockstepEvent& e : events)
          slot_states[static_cast<std::size_t>(
              orig_of_row[static_cast<std::size_t>(e.row)])]
                     [static_cast<std::size_t>(e.tag)] =
              yp->Row(e.row).Cast<float>();
      };
  ode::LockstepIntegrateMixed(plans, model.diff_method_, rhs, on_event, &y);

  std::vector<std::vector<Tensor32>> out(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r) {
    const std::vector<Scalar>& sl = slots[static_cast<std::size_t>(r)];
    auto& dst = out[static_cast<std::size_t>(r)];
    dst.reserve(norm_queries[static_cast<std::size_t>(r)].size());
    for (Scalar t : norm_queries[static_cast<std::size_t>(r)]) {
      const auto it = std::lower_bound(sl.begin(), sl.end(), t);
      dst.push_back(slot_states[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(it - sl.begin())]);
    }
  }
  return out;
}

Tensor DiffOdeF32Engine::ClassifyLogitsBatched(
    const DiffOde& model, const data::SequenceBatch& batch) {
  ag::NoGradScope no_grad;
  const ServingF32& snap = *model.serving_f32_;
  const DiffOdeConfig& config = model.config_;
  std::vector<EncodedF32> encs = EncodeBatched(model, batch);
  const Index b = batch.batch;
  std::vector<std::vector<Scalar>> queries(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r)
    queries[static_cast<std::size_t>(r)] =
        encs[static_cast<std::size_t>(r)].norm_times;
  const std::vector<std::vector<Tensor32>> states =
      BatchedStatesAt(model, encs, queries);
  const Index ro = model.ReadoutDim();
  const Index sd = model.StateDim();
  const Index d = config.latent_dim;
  const Index dc = config.hippo_dim;
  const Index dr = config.info_dim;
  const bool attn = config.use_attention;
  const bool direct = config.head == OutputHead::kDirect;
  Tensor32 x = Tensor32::Uninit(Shape{b, 2 * ro});
  parallel::ParallelFor(0, b, 1, [&](Index r0, Index r1) {
    std::vector<float> acc(static_cast<std::size_t>(ro));
    std::vector<float> ri(static_cast<std::size_t>(ro));
    for (Index r = r0; r < r1; ++r) {
      const EncodedF32& enc = encs[static_cast<std::size_t>(r)];
      const std::vector<Tensor32>& st = states[static_cast<std::size_t>(r)];
      const float* zm = attn ? nullptr : enc.z_mean.data();
      const auto read_into = [&](const Tensor32& state, float* dst) {
        const float* sv = state.data();
        if (!attn) {
          std::copy_n(zm, d, dst);
          std::copy_n(sv + dc, dr, dst + d);
        } else if (direct) {
          std::copy_n(sv, sd, dst);
        } else {
          std::copy_n(sv, d, dst);
          std::copy_n(sv + d + dc, dr, dst + d);
        }
      };
      read_into(st[0], acc.data());
      for (std::size_t i = 1; i < st.size(); ++i) {
        read_into(st[static_cast<std::size_t>(i)], ri.data());
        for (Index j = 0; j < ro; ++j)
          acc[static_cast<std::size_t>(j)] += ri[static_cast<std::size_t>(j)];
      }
      const float inv = 1.0f / static_cast<float>(st.size());
      for (Index j = 0; j < ro; ++j) acc[static_cast<std::size_t>(j)] *= inv;
      float* xr = x.data() + r * 2 * ro;
      std::copy_n(acc.data(), ro, xr);
      read_into(st.back(), xr + ro);
    }
  });
  return snap.f_out_cls.Forward(x).Cast<double>();  // dtype:ok — boundary
}

std::vector<std::vector<Tensor>> DiffOdeF32Engine::PredictAtBatched(
    const DiffOde& model, const data::SequenceBatch& batch,
    const std::vector<std::vector<Scalar>>& times) {
  ag::NoGradScope no_grad;
  const ServingF32& snap = *model.serving_f32_;
  const DiffOdeConfig& config = model.config_;
  DIFFODE_CHECK_EQ(static_cast<Index>(times.size()), batch.batch);
  std::vector<EncodedF32> encs = EncodeBatched(model, batch);
  const Index b = batch.batch;
  std::vector<std::vector<Scalar>> norm(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r) {
    const EncodedF32& enc = encs[static_cast<std::size_t>(r)];
    auto& dst = norm[static_cast<std::size_t>(r)];
    dst.reserve(times[static_cast<std::size_t>(r)].size());
    for (Scalar t : times[static_cast<std::size_t>(r)])
      dst.push_back((t - enc.t_offset) * enc.t_scale);
  }
  const std::vector<std::vector<Tensor32>> states =
      BatchedStatesAt(model, encs, norm);
  const Index ro = model.ReadoutDim();
  const Index sd = model.StateDim();
  const Index d = config.latent_dim;
  const Index dc = config.hippo_dim;
  const Index dr = config.info_dim;
  const bool attn = config.use_attention;
  const bool direct = config.head == OutputHead::kDirect;
  std::vector<std::vector<Tensor>> out(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r) {
    const EncodedF32& enc = encs[static_cast<std::size_t>(r)];
    auto& dst = out[static_cast<std::size_t>(r)];
    const auto& nq = norm[static_cast<std::size_t>(r)];
    dst.reserve(nq.size());
    for (std::size_t k = 0; k < nq.size(); ++k) {
      // Per-pair head application on 1 x (ReadoutDim()+1), the float mirror
      // of the f64 engine's ReadoutInput ‖ t concat.
      const Tensor32& state = states[static_cast<std::size_t>(r)][k];
      const float* sv = state.data();
      Tensor32 xrow = Tensor32::Uninit(Shape{1, ro + 1});
      float* xr = xrow.data();
      if (!attn) {
        std::copy_n(enc.z_mean.data(), d, xr);
        std::copy_n(sv + dc, dr, xr + d);
      } else if (direct) {
        std::copy_n(sv, sd, xr);
      } else {
        std::copy_n(sv, d, xr);
        std::copy_n(sv + d + dc, dr, xr + d);
      }
      xr[ro] = static_cast<float>(nq[k]);
      dst.push_back(
          snap.f_out_reg.Forward(xrow).Cast<double>());  // dtype:ok
    }
  }
  return out;
}

}  // namespace diffode::core
