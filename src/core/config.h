#ifndef DIFFODE_CORE_CONFIG_H_
#define DIFFODE_CORE_CONFIG_H_

#include <cstdint>

#include "sparsity/pt_solver.h"
#include "tensor/tensor.h"

namespace diffode::core {

enum class EncoderType { kGru, kMlp };
enum class OutputHead { kHippo, kDirect };

// Hyper-parameters of the DIFFODE model. Defaults follow the paper's
// implementation details (Sec. IV-A4): one-layer GRU encoder, one-hidden-
// layer MLPs of width 32, HiPPO output head, maxHoyer attention inversion.
struct DiffOdeConfig {
  Index input_dim = 1;   // f: observed feature count
  Index latent_dim = 16; // d: DHS dimension (16 classification / 32 regression)
  Index hippo_dim = 16;  // d_c: HiPPO coefficient count
  Index info_dim = 16;   // dimension of the information state r_t
  Index mlp_hidden = 32;
  Index num_classes = 2;
  Index num_heads = 1;   // Fig. 6 sweep
  EncoderType encoder = EncoderType::kGru;   // Fig. 5 ablation: kMlp
  OutputHead head = OutputHead::kHippo;      // Fig. 5 ablation: kDirect
  bool use_attention = true;                 // Fig. 5 ablation: w/o Attn
  sparsity::PtStrategy pt_strategy = sparsity::PtStrategy::kMaxHoyer;
  Scalar step = 0.05;    // ODE integration step (0.05 cls / 5 regression)
  Scalar ridge = 1e-6;   // Gram-matrix ridge in the attention inversion
  // Weight of the DHS-definition consistency term: the integrated S(t_i)
  // is pulled toward the attention read-out softmax(z_i Zᵀ/√d) Z at every
  // observation time (Eq. 5 is the *definition* of the DHS; this term makes
  // the learned dynamics honour it). 0 disables.
  Scalar consistency_weight = 0.1;
  // Timescale of the HiPPO block in Eq. 36: the LegS pair is used as
  // (A/τ, B/τ). The LegS spectrum reaches -hippo_dim, so the unrolled
  // explicit solver is stable only when (hippo_dim/τ)·step stays inside its
  // stability region; 0 selects τ = hippo_dim * step automatically.
  Scalar hippo_timescale = 0.0;
  // Optional training regularizer that *maximizes* the Hoyer sparsity of
  // the forward attention rows softmax(z_i Zᵀ/√d) — the paper's "sharpen
  // the attention" principle applied as an explicit loss. 0 disables
  // (default: the sparsity principle is already enforced through the
  // maxHoyer inversion).
  Scalar hoyer_weight = 0.0;
  std::uint64_t seed = 42;
};

}  // namespace diffode::core

#endif  // DIFFODE_CORE_CONFIG_H_
