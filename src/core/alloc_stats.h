#ifndef DIFFODE_CORE_ALLOC_STATS_H_
#define DIFFODE_CORE_ALLOC_STATS_H_

#include <atomic>
#include <cstdint>

namespace diffode::core {

// Process-wide allocation telemetry for the training hot path. The tensor
// buffer pool and the tape arena record where every allocation was served
// from; the trainer reports per-epoch deltas when DIFFODE_ALLOC_STATS is set,
// and tests assert the steady-state contract (a warm training step performs
// zero pool misses — no heap allocation on intermediates).
//
// Counters are always on: they are relaxed atomic increments, far below the
// cost of the allocations they replace. The environment variable only gates
// the trainer's reporting.
class AllocStats {
 public:
  struct Snapshot {
    std::uint64_t pool_hits = 0;    // buffer served from a thread-local cache
    std::uint64_t depot_hits = 0;   // buffer served from the shared depot
    std::uint64_t pool_misses = 0;  // pool scope active but heap had to serve
    std::uint64_t pool_bypass = 0;  // allocation with no pool scope active
    std::uint64_t arena_nodes = 0;  // tape nodes bump-allocated from an arena
    std::uint64_t arena_bytes = 0;  // bytes bump-allocated from arenas
    std::uint64_t heap_nodes = 0;   // tape nodes allocated without an arena
  };

  static void RecordPoolHit() { Inc(Raw().pool_hits); }
  static void RecordDepotHit() { Inc(Raw().depot_hits); }
  static void RecordPoolMiss() { Inc(Raw().pool_misses); }
  static void RecordPoolBypass() { Inc(Raw().pool_bypass); }
  static void RecordArenaNode() { Inc(Raw().arena_nodes); }
  static void RecordArenaBytes(std::uint64_t bytes) {
    Raw().arena_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  static void RecordHeapNode() { Inc(Raw().heap_nodes); }

  // Consistent-enough point-in-time read (counters are monotone).
  static Snapshot Read();

  // after - before, fieldwise.
  static Snapshot Delta(const Snapshot& before, const Snapshot& after);

  // True when the DIFFODE_ALLOC_STATS environment variable is set and
  // non-zero (checked once per process).
  static bool ReportingEnabled();

 private:
  struct Counters {
    std::atomic<std::uint64_t> pool_hits{0};
    std::atomic<std::uint64_t> depot_hits{0};
    std::atomic<std::uint64_t> pool_misses{0};
    std::atomic<std::uint64_t> pool_bypass{0};
    std::atomic<std::uint64_t> arena_nodes{0};
    std::atomic<std::uint64_t> arena_bytes{0};
    std::atomic<std::uint64_t> heap_nodes{0};
  };

  static Counters& Raw();
  static void Inc(std::atomic<std::uint64_t>& c) {
    c.fetch_add(1, std::memory_order_relaxed);
  }
};

}  // namespace diffode::core

#endif  // DIFFODE_CORE_ALLOC_STATS_H_
