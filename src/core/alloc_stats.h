#ifndef DIFFODE_CORE_ALLOC_STATS_H_
#define DIFFODE_CORE_ALLOC_STATS_H_

#include <atomic>
#include <cstdint>

namespace diffode::core {

// Process-wide allocation telemetry for the training hot path. The tensor
// buffer pool and the tape arena record where every allocation was served
// from; the trainer reports per-epoch deltas when DIFFODE_ALLOC_STATS is set,
// and tests assert the steady-state contract (a warm training step performs
// zero pool misses — no heap allocation on intermediates).
//
// Counters are always on, so they must be cheap at a per-op call rate. Each
// thread owns a private, cache-line-aligned counter block and is the only
// writer to it: increments are relaxed load+store pairs (plain movs on x86,
// no lock prefix, no cache-line bouncing between pool threads — a shared
// atomic block was measurable both single-threaded and, worse, across
// data-parallel shards). Read() sums every thread's block, giving the same
// monotone process-wide totals as before; blocks outlive their threads so
// totals never go backwards.
class AllocStats {
 public:
  struct Snapshot {
    std::uint64_t pool_hits = 0;    // buffer served from a thread-local cache
    std::uint64_t depot_hits = 0;   // buffer served from the shared depot
    std::uint64_t pool_misses = 0;  // pool scope active but heap had to serve
    std::uint64_t pool_bypass = 0;  // allocation with no pool scope active
    std::uint64_t arena_nodes = 0;  // tape nodes bump-allocated from an arena
    std::uint64_t arena_bytes = 0;  // bytes bump-allocated from arenas
    std::uint64_t heap_nodes = 0;   // tape nodes allocated without an arena
    std::uint64_t value_only_vars = 0;  // no-grad Vars built without any node
  };

  static void RecordPoolHit() { Inc(Cell().pool_hits); }
  static void RecordDepotHit() { Inc(Cell().depot_hits); }
  static void RecordPoolMiss() { Inc(Cell().pool_misses); }
  static void RecordPoolBypass() { Inc(Cell().pool_bypass); }
  static void RecordArenaNode() { Inc(Cell().arena_nodes); }
  static void RecordArenaBytes(std::uint64_t bytes) {
    Add(Cell().arena_bytes, bytes);
  }
  static void RecordHeapNode() { Inc(Cell().heap_nodes); }
  static void RecordValueOnlyVar() { Inc(Cell().value_only_vars); }

  // Consistent-enough point-in-time read (counters are monotone): the sum of
  // every thread's block, including threads that have since exited.
  static Snapshot Read();

  // after - before, fieldwise.
  static Snapshot Delta(const Snapshot& before, const Snapshot& after);

  // True when the DIFFODE_ALLOC_STATS environment variable is set and
  // non-zero (checked once per process).
  static bool ReportingEnabled();

 private:
  // Single-writer counters: only the owning thread increments, any thread
  // may read. The atomics exist for tear-free cross-thread reads; writes are
  // relaxed load+store (not fetch_add), which the single-writer rule makes
  // exact.
  struct alignas(64) Counters {
    std::atomic<std::uint64_t> pool_hits{0};
    std::atomic<std::uint64_t> depot_hits{0};
    std::atomic<std::uint64_t> pool_misses{0};
    std::atomic<std::uint64_t> pool_bypass{0};
    std::atomic<std::uint64_t> arena_nodes{0};
    std::atomic<std::uint64_t> arena_bytes{0};
    std::atomic<std::uint64_t> heap_nodes{0};
    std::atomic<std::uint64_t> value_only_vars{0};
  };

  // The calling thread's block (registered with the process-wide list on
  // first use; the block is immortal so exited threads keep counting toward
  // Read()'s totals).
  static Counters& Cell() {
    thread_local Counters* cell = RegisterThisThread();
    return *cell;
  }
  static Counters* RegisterThisThread();

  static void Inc(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }
  static void Add(std::atomic<std::uint64_t>& c, std::uint64_t d) {
    c.store(c.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
  }
};

}  // namespace diffode::core

#endif  // DIFFODE_CORE_ALLOC_STATS_H_
