#include "core/dhs.h"

#include <cmath>

#include "autograd/ops_linalg.h"

namespace diffode::core {

DhsContext BuildDhsContext(const ag::Var& z, Scalar ridge) {
  DhsContext ctx;
  ctx.z = z;
  ctx.n = z.rows();
  ctx.d = z.cols();
  ctx.zt = ag::Transpose(z);
  // (Zᵀ)† = Z (ZᵀZ + ridge I)^{-1}; differentiable through the inverse.
  ag::Var gram = ag::MatMul(ctx.zt, z);
  ag::Var gram_inv = ag::RidgeInverse(gram, ridge);
  ctx.zt_pinv = ag::MatMul(z, gram_inv);
  // A_p J = 1 - (Zᵀ)† (Zᵀ 1).
  ag::Var ones_col = ag::Constant(Tensor::Ones(Shape{ctx.n, 1}));
  ag::Var zt_ones = ag::MatMul(ctx.zt, ones_col);   // d x 1
  ag::Var proj = ag::MatMul(ctx.zt_pinv, zt_ones);  // n x 1
  ctx.ap_colsum = ag::Sub(ones_col, proj);
  ctx.ap_rowsum = ag::Transpose(ctx.ap_colsum);
  ctx.ap_total = ag::Sum(ctx.ap_colsum);
  ctx.ones_row = ag::Constant(Tensor::Ones(Shape{1, ctx.n}));
  return ctx;
}

void CacheAdaHCorrection(DhsContext* ctx, const ag::Var& h_ada) {
  DIFFODE_CHECK(ctx != nullptr);
  DIFFODE_CHECK(h_ada.defined());
  // h A_p with A_p = I - (Zᵀ)† Zᵀ (symmetric).
  ag::Var h_proj = ag::MatMulNT(ag::MatMul(h_ada, ctx->zt_pinv), ctx->z);
  ctx->ada_corr = ag::Sub(h_ada, h_proj);
}

ag::Var DhsForward(const DhsContext& ctx, const ag::Var& z_query) {
  const Scalar scale = 1.0 / std::sqrt(static_cast<Scalar>(ctx.d));
  ag::Var logits =
      ag::MulScalar(ag::MatMulNT(z_query, ctx.z), scale);
  return ag::MatMul(ag::Softmax(logits), ctx.z);
}

ag::Var RecoverPVar(const DhsContext& ctx, const ag::Var& s,
                    sparsity::PtStrategy strategy, const ag::Var& h_ada) {
  // b = S (Zᵀ)†ᵀ, 1 x n.
  ag::Var b = ag::MatMulNT(s, ctx.zt_pinv);
  switch (strategy) {
    case sparsity::PtStrategy::kMinNorm:
      return b;
    case sparsity::PtStrategy::kAdaH: {
      // p = b + h A_p. The correction is per-sequence, so Encode caches it
      // once (CacheAdaHCorrection); fall back to computing it inline for
      // callers that did not.
      if (ctx.ada_corr.defined()) return ag::AddInPlace(b, ctx.ada_corr);
      DIFFODE_CHECK(h_ada.defined());
      ag::Var h_proj = ag::MatMulNT(ag::MatMul(h_ada, ctx.zt_pinv), ctx.z);
      return ag::Add(b, ag::Sub(h_ada, h_proj));
    }
    case sparsity::PtStrategy::kExactKkt:
      // The combinatorial Theorem-1 search is not differentiable; training
      // uses the relaxed closed form, and the exact solver is exposed on the
      // plain-tensor path (sparsity::MaxHoyerExactKkt) for analysis.
      [[fallthrough]];
    case sparsity::PtStrategy::kMaxHoyer: {
      // Eq. 32: p = b - (Σb - 1) (A_p J)ᵀ / (J A_p J).
      if (std::fabs(ctx.ap_total.value().item()) < 1e-10) return b;
      ag::Var coeff =
          ag::DivByScalarVar(ag::AddScalar(ag::Sum(b), -1.0), ctx.ap_total);
      ag::Var corr = ag::MulByScalarVar(ctx.ap_rowsum, coeff);
      return ag::Sub(b, corr);
    }
  }
  DIFFODE_CHECK(false);
  return b;
}

ag::Var RecoverZVar(const DhsContext& ctx, const ag::Var& p,
                    const ag::Var& h2) {
  // a_h = ((h2·p)/(p·p)) p - 1 (rank-one form of Eq. 34).
  ag::Var pp = ag::Dot(p, p);
  ag::Var ph = ag::Dot(p, h2);
  ag::Var c = ag::Div(ph, pp);  // 1 x 1
  ag::Var a_h = ag::Sub(ag::MulByScalarVar(p, c), ctx.ones_row);
  return ag::MulScalar(ag::MatMul(a_h, ctx.zt_pinv),
                       std::sqrt(static_cast<Scalar>(ctx.d)));
}

ag::Var DhsDerivative(const DhsContext& ctx, const ag::Var& w,
                      const ag::Var& p) {
  const Scalar scale = 1.0 / std::sqrt(static_cast<Scalar>(ctx.d));
  ag::Var u = ag::MatMulNT(w, ctx.z);                   // 1 x n
  ag::Var term1 = ag::MatMul(ag::Mul(u, p), ctx.z);     // 1 x d
  ag::Var up = ag::Dot(u, p);                           // 1 x 1
  ag::Var term2 = ag::MulByScalarVar(ag::MatMul(p, ctx.z), up);
  return ag::MulScalar(ag::Sub(term1, term2), scale);
}

}  // namespace diffode::core
