#ifndef DIFFODE_CORE_SEQUENCE_MODEL_H_
#define DIFFODE_CORE_SEQUENCE_MODEL_H_

#include <string>
#include <vector>

#include "autograd/variable.h"
#include "data/irregular_series.h"
#include "nn/module.h"

namespace diffode::core {

// Common interface for DIFFODE and every baseline: classify an irregular
// series, or predict feature values at arbitrary query times given a
// conditioning context. The benchmark harness (Tables III-V, Fig. 4-6) is
// written against this interface so models are interchangeable.
class SequenceModel : public nn::Module {
 public:
  // Logits (1 x num_classes) for the whole series.
  virtual ag::Var ClassifyLogits(const data::IrregularSeries& context) = 0;

  // Feature predictions (each 1 x f) at the given query times, conditioned
  // on `context`. Times need not be sorted; implementations handle queries
  // both inside and beyond the context span (interpolation/extrapolation).
  virtual std::vector<ag::Var> PredictAt(
      const data::IrregularSeries& context,
      const std::vector<Scalar>& times) = 0;

  virtual std::string name() const = 0;

  // Auxiliary training loss produced by the most recent forward pass (e.g.
  // DIFFODE's DHS-definition consistency term), already weighted. Returns
  // an undefined Var when the model has none; calling it clears the stored
  // term so losses are never double-counted.
  virtual ag::Var TakeAuxiliaryLoss() { return ag::Var(); }
};

}  // namespace diffode::core

#endif  // DIFFODE_CORE_SEQUENCE_MODEL_H_
