#ifndef DIFFODE_CORE_DIFFODE_F32_H_
#define DIFFODE_CORE_DIFFODE_F32_H_

#include <memory>
#include <vector>

#include "data/sequence_batch.h"
#include "tensor/tensor.h"

namespace diffode::core {

class DiffOde;
struct ServingF32;

// Float casts of one attention head's DhsContext (core/dhs.h). The
// factorization behind these tensors — the ridge Gram inverse of (Zᵀ)†,
// the projector sums — is always computed in f64 and cast down once per
// sequence; only the per-step recoveries consume the float copies.
struct DhsContextF32 {
  Tensor32 zt_pinv;       // (Zᵀ)†, n x d_h
  Tensor32 pinv_colsum;   // 1ᵀ (Zᵀ)†, 1 x d_h; column sums, summed in f64
  Tensor32 ap_rowsum;     // (A_p J)ᵀ, 1 x n
  Tensor32 ada_corr;      // h A_p, 1 x n; empty unless the adaH strategy
  Tensor32 z;             // n x d_h
  float ap_total = 0.0f;
  Index d = 0;
};

// Float mirror of DiffOde::Encoded for one sequence: everything the f32
// RHS and readouts touch per step, plus the f64-built initial state cast
// down once.
struct EncodedF32 {
  std::vector<DhsContextF32> heads;
  Tensor32 h2;      // 1 x n (attention paths)
  Tensor32 z_mean;  // 1 x d
  Tensor32 y0;      // 1 x StateDim()
  std::vector<Scalar> norm_times;
  Scalar t_scale = 1.0;
  Scalar t_offset = 0.0;
};

// The f32 serving engine (diffode_f32.cc): float mirrors of the lockstep
// batched forwards in diffode_batched.cc, running over the frozen f32
// parameter snapshot that Freeze(Precision::kF32) builds. A friend of
// DiffOde so it can reuse the private context/initial-state builds.
// Everything on the per-step path — encoder, DHS recoveries, phi/f_r/w_r/
// f_out GEMMs, lockstep integration — runs in float over the same RowPlan
// timelines as the f64 engine (core/batch_plans.h). Results are cast back
// to f64 at the boundary, so callers (BatchedDispatch, BatchPredictor, the
// CLI) see the usual Tensor surface.
struct DiffOdeF32Engine {
  // Builds the frozen parameter snapshot; call only after the model's
  // parameters have been rounded through float (Module::Freeze(kF32)).
  static std::shared_ptr<ServingF32> Snapshot(const DiffOde& model);

  static Tensor ClassifyLogitsBatched(const DiffOde& model,
                                      const data::SequenceBatch& batch);
  static std::vector<std::vector<Tensor>> PredictAtBatched(
      const DiffOde& model, const data::SequenceBatch& batch,
      const std::vector<std::vector<Scalar>>& times);

  // Building blocks of the two forwards (exposed for tests): encode the
  // batch (f32 encoder, f64 context factorization cast down), then evaluate
  // states at normalized query times via one f32 lockstep integration.
  static std::vector<EncodedF32> EncodeBatched(
      const DiffOde& model, const data::SequenceBatch& batch);
  static std::vector<std::vector<Tensor32>> BatchedStatesAt(
      const DiffOde& model, const std::vector<EncodedF32>& encs,
      const std::vector<std::vector<Scalar>>& norm_queries);
};

}  // namespace diffode::core

#endif  // DIFFODE_CORE_DIFFODE_F32_H_
