#include "core/alloc_stats.h"

#include <cstdlib>
#include <cstring>

namespace diffode::core {

AllocStats::Counters& AllocStats::Raw() {
  static Counters counters;
  return counters;
}

AllocStats::Snapshot AllocStats::Read() {
  const Counters& c = Raw();
  Snapshot s;
  s.pool_hits = c.pool_hits.load(std::memory_order_relaxed);
  s.depot_hits = c.depot_hits.load(std::memory_order_relaxed);
  s.pool_misses = c.pool_misses.load(std::memory_order_relaxed);
  s.pool_bypass = c.pool_bypass.load(std::memory_order_relaxed);
  s.arena_nodes = c.arena_nodes.load(std::memory_order_relaxed);
  s.arena_bytes = c.arena_bytes.load(std::memory_order_relaxed);
  s.heap_nodes = c.heap_nodes.load(std::memory_order_relaxed);
  return s;
}

AllocStats::Snapshot AllocStats::Delta(const Snapshot& before,
                                       const Snapshot& after) {
  Snapshot d;
  d.pool_hits = after.pool_hits - before.pool_hits;
  d.depot_hits = after.depot_hits - before.depot_hits;
  d.pool_misses = after.pool_misses - before.pool_misses;
  d.pool_bypass = after.pool_bypass - before.pool_bypass;
  d.arena_nodes = after.arena_nodes - before.arena_nodes;
  d.arena_bytes = after.arena_bytes - before.arena_bytes;
  d.heap_nodes = after.heap_nodes - before.heap_nodes;
  return d;
}

bool AllocStats::ReportingEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("DIFFODE_ALLOC_STATS");
    return env != nullptr && std::strcmp(env, "0") != 0 &&
           std::strcmp(env, "") != 0;
  }();
  return enabled;
}

}  // namespace diffode::core
