#include "core/alloc_stats.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace diffode::core {
namespace {

// Registry of every thread's counter block. Heap-allocated and reachable
// from a static pointer (immortal, like the buffer pool's depot): worker
// threads may tear down in any order during process exit, and LeakSanitizer
// still sees every block as reachable. The mutex guards registration and
// Read()'s sweep only — never an increment.
struct Registry {
  std::mutex mu;
  std::vector<void*> blocks;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

AllocStats::Counters* AllocStats::RegisterThisThread() {
  auto* cell = new Counters();
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.blocks.push_back(cell);
  return cell;
}

AllocStats::Snapshot AllocStats::Read() {
  Snapshot s;
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (void* block : registry.blocks) {
    const Counters& c = *static_cast<const Counters*>(block);
    s.pool_hits += c.pool_hits.load(std::memory_order_relaxed);
    s.depot_hits += c.depot_hits.load(std::memory_order_relaxed);
    s.pool_misses += c.pool_misses.load(std::memory_order_relaxed);
    s.pool_bypass += c.pool_bypass.load(std::memory_order_relaxed);
    s.arena_nodes += c.arena_nodes.load(std::memory_order_relaxed);
    s.arena_bytes += c.arena_bytes.load(std::memory_order_relaxed);
    s.heap_nodes += c.heap_nodes.load(std::memory_order_relaxed);
    s.value_only_vars += c.value_only_vars.load(std::memory_order_relaxed);
  }
  return s;
}

AllocStats::Snapshot AllocStats::Delta(const Snapshot& before,
                                       const Snapshot& after) {
  Snapshot d;
  d.pool_hits = after.pool_hits - before.pool_hits;
  d.depot_hits = after.depot_hits - before.depot_hits;
  d.pool_misses = after.pool_misses - before.pool_misses;
  d.pool_bypass = after.pool_bypass - before.pool_bypass;
  d.arena_nodes = after.arena_nodes - before.arena_nodes;
  d.arena_bytes = after.arena_bytes - before.arena_bytes;
  d.heap_nodes = after.heap_nodes - before.heap_nodes;
  d.value_only_vars = after.value_only_vars - before.value_only_vars;
  return d;
}

bool AllocStats::ReportingEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("DIFFODE_ALLOC_STATS");
    return env != nullptr && std::strcmp(env, "0") != 0 &&
           std::strcmp(env, "") != 0;
  }();
  return enabled;
}

}  // namespace diffode::core
