#ifndef DIFFODE_CORE_BATCH_PLANS_H_
#define DIFFODE_CORE_BATCH_PLANS_H_

#include <vector>

#include "ode/lockstep.h"

namespace diffode::core {

// Per-batch lockstep timelines for DIFFODE's batched state evaluation,
// shared by the f64 engine (diffode_batched.cc) and the f32 serving engine
// (diffode_f32.cc) so both precisions integrate the EXACT same (t, h) step
// grids — timeline construction is always f64 and dtype-free.
//
// Each batch row gets a forward plan replicating StatesAt's grid:
// sorted-unique query times (plus the observation anchors when the
// consistency term is configured, which change how IntegrateVar partitions
// each span), a forward chain from t = 0 and — for queries before the first
// observation — an extra engine row integrating the backward chain from the
// same initial state. Checkpoints are tagged with the query's index in the
// row's sorted-unique `slots`.
struct BatchPlans {
  // Engine rows: rows [0, b) are the forward chains (engine row r is batch
  // row r); any backward chains follow.
  std::vector<ode::RowPlan> plans;
  // Engine row -> originating batch row (identity for the first b rows).
  std::vector<Index> orig_of_row;
  // Per batch row, the sorted-unique query times; checkpoint tags index
  // into this.
  std::vector<std::vector<Scalar>> slots;
  // Per batch row, its backward engine row, or -1 when every query is at
  // t >= 0.
  std::vector<Index> back_row;
};

// `anchors[r]` lists row r's observation anchor times to fold into the step
// grid (nullptr when the model has no consistency anchoring). `step` is the
// solver step size.
BatchPlans BuildBatchPlans(
    const std::vector<std::vector<Scalar>>& norm_queries,
    const std::vector<const std::vector<Scalar>*>& anchors, Scalar step);

}  // namespace diffode::core

#endif  // DIFFODE_CORE_BATCH_PLANS_H_
