#ifndef DIFFODE_CORE_BATCH_PREDICTOR_H_
#define DIFFODE_CORE_BATCH_PREDICTOR_H_

#include <vector>

#include "core/batched_model.h"

namespace diffode::core {

// Micro-batched serving front-end (docs/performance.md, "Execution
// batching"): collects up to max_batch requests, then serves them all in
// one lockstep NoGradScope forward through BatchedDispatch. Requests with
// query times are regression requests (PredictAtBatched); requests without
// are classification requests (ClassifyLogitsBatched). The two kinds are
// flushed as separate sequence batches.
//
// Usage: Enqueue() returns a request id; call Flush() (or let the queue
// auto-flush at max_batch pending requests), then read result(id). Enqueued
// series must stay alive until the flush.
class BatchPredictor {
 public:
  struct Result {
    Tensor logits;                    // 1 x C (classification requests)
    std::vector<Tensor> predictions;  // one 1 x f row per query time
  };

  BatchPredictor(SequenceModel* model, Index max_batch);

  // Queues a request and returns its id; flushes automatically once
  // max_batch requests are pending.
  Index Enqueue(const data::IrregularSeries& series,
                std::vector<Scalar> times = {});

  // Serves every pending request in one batched forward per request kind.
  void Flush();

  // Result for a request id; its flush must have happened.
  const Result& result(Index id) const;

  Index pending() const { return static_cast<Index>(pending_.size()); }
  Index max_batch() const { return max_batch_; }
  // True when the model integrates batches in lockstep (native engine).
  bool native() const { return dispatch_.native(); }

 private:
  struct Pending {
    Index id;
    const data::IrregularSeries* series;
    std::vector<Scalar> times;
  };

  BatchedDispatch dispatch_;
  Index max_batch_;
  std::vector<Pending> pending_;
  std::vector<Result> results_;
  std::vector<bool> done_;
};

}  // namespace diffode::core

#endif  // DIFFODE_CORE_BATCH_PREDICTOR_H_
