#include "core/batch_plans.h"

#include <algorithm>

namespace diffode::core {

BatchPlans BuildBatchPlans(
    const std::vector<std::vector<Scalar>>& norm_queries,
    const std::vector<const std::vector<Scalar>*>& anchors, Scalar step) {
  const Index b = static_cast<Index>(norm_queries.size());
  BatchPlans out;
  out.plans.resize(static_cast<std::size_t>(b));
  out.orig_of_row.reserve(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r) out.orig_of_row.push_back(r);
  out.slots.resize(static_cast<std::size_t>(b));
  out.back_row.assign(static_cast<std::size_t>(b), -1);

  for (Index r = 0; r < b; ++r) {
    std::vector<Scalar>& sl = out.slots[static_cast<std::size_t>(r)];
    sl = norm_queries[static_cast<std::size_t>(r)];
    std::sort(sl.begin(), sl.end());
    sl.erase(std::unique(sl.begin(), sl.end()), sl.end());
    std::vector<Scalar> grid = sl;
    const std::vector<Scalar>* anchor = anchors[static_cast<std::size_t>(r)];
    if (anchor != nullptr)
      grid.insert(grid.end(), anchor->begin(), anchor->end());
    std::sort(grid.begin(), grid.end());
    grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
    const auto slot_of = [&sl](Scalar t) -> Index {
      const auto it = std::lower_bound(sl.begin(), sl.end(), t);
      if (it != sl.end() && *it == t) return static_cast<Index>(it - sl.begin());
      return -1;
    };
    {
      ode::RowPlan& plan = out.plans[static_cast<std::size_t>(r)];
      Scalar t_prev = 0.0;
      for (Scalar t : grid) {
        if (t < 0.0) continue;
        ode::AppendSegment(&plan, t_prev, t, step);
        const Index slot = slot_of(t);
        if (slot >= 0) ode::AppendCheckpoint(&plan, slot);
        t_prev = t;
      }
    }
    if (!sl.empty() && sl.front() < 0.0) {
      out.back_row[static_cast<std::size_t>(r)] =
          static_cast<Index>(out.plans.size());
      out.plans.emplace_back();
      out.orig_of_row.push_back(r);
      ode::RowPlan& plan = out.plans.back();
      Scalar t_prev = 0.0;
      for (auto it = grid.rbegin(); it != grid.rend(); ++it) {
        if (*it >= 0.0) continue;  // anchors are all >= 0, so every
        ode::AppendSegment(&plan, t_prev, *it, step);
        ode::AppendCheckpoint(&plan, slot_of(*it));  // negative is a query
        t_prev = *it;
      }
    }
  }
  return out;
}

}  // namespace diffode::core
