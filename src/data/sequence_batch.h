#ifndef DIFFODE_DATA_SEQUENCE_BATCH_H_
#define DIFFODE_DATA_SEQUENCE_BATCH_H_

#include <cstdint>
#include <vector>

#include "data/irregular_series.h"

namespace diffode::data {

// A batch view over B irregular series for lockstep execution
// (core/batched_model.h): padded per-row observation tensors plus the merged
// (union) observation grid with per-sequence membership bitmaps. The view
// only copies/indexes — it never normalizes or transforms values, so every
// number a model reads through it is bitwise the number in the source series.
//
// Padded layout: observation i of sequence r lives at row r * max_len + i of
// `values` / `mask`; `row_mask[r * max_len + i]` is 1 iff that slot holds a
// real observation (0 rows are zero padding).
//
// Union grid: `union_times` is the sorted union of the raw observation times
// of all B series. For union point u, `IsMember(u, r)` says whether sequence
// r observes at that time and `ObsIndex(u, r)` gives the observation index
// into sequence r (-1 when absent). Membership is stored as bitmaps, one
// 64-bit word per 64 rows.
struct SequenceBatch {
  std::vector<const IrregularSeries*> series;

  Index batch = 0;
  Index features = 0;
  Index max_len = 0;
  std::vector<Index> lengths;

  Tensor values;                       // (B * max_len) x f, zero padded
  Tensor mask;                         // (B * max_len) x f, zero padded
  std::vector<unsigned char> row_mask; // B * max_len

  std::vector<Scalar> union_times;      // sorted, unique
  std::vector<std::uint64_t> membership; // U * words_per_point
  Index words_per_point = 0;
  std::vector<Index> obs_index;         // U * B, -1 when absent

  Index union_size() const { return static_cast<Index>(union_times.size()); }

  bool IsMember(Index u, Index r) const {
    const std::uint64_t word =
        membership[static_cast<std::size_t>(u * words_per_point + r / 64)];
    return (word >> (r % 64)) & 1u;
  }

  Index ObsIndex(Index u, Index r) const {
    return obs_index[static_cast<std::size_t>(u * batch + r)];
  }
};

// Builds the batch view. Requires a non-empty list of non-empty series with
// matching feature counts and strictly increasing times (the documented
// IrregularSeries contract).
SequenceBatch MakeSequenceBatch(std::vector<const IrregularSeries*> series);

// Convenience overload over a contiguous split.
SequenceBatch MakeSequenceBatch(const std::vector<IrregularSeries>& split,
                                Index begin, Index count);

}  // namespace diffode::data

#endif  // DIFFODE_DATA_SEQUENCE_BATCH_H_
