#ifndef DIFFODE_DATA_GENERATORS_H_
#define DIFFODE_DATA_GENERATORS_H_

#include <cstdint>

#include "data/irregular_series.h"
#include "tensor/random.h"

namespace diffode::data {

// ---------------------------------------------------------------------------
// Synthetic periodic classification dataset (paper Sec. IV-A):
// x(t) = sin(t + phi) * cos(3 (t + phi)), t in (0, 10), phi ~ N(0, 2*pi),
// label y = 1[x(5) > 0.5], observations kept by a Bernoulli(keep_rate)
// thinning of a dense grid (the paper's "Poisson process with rate 70%").
// Split 50/25/25.
// ---------------------------------------------------------------------------
struct SyntheticPeriodicConfig {
  Index num_series = 1000;
  Index grid_points = 50;  // dense grid over (0, 10) before thinning
  Scalar keep_rate = 0.7;
  Scalar noise_std = 0.0;
  std::uint64_t seed = 1;
};
Dataset MakeSyntheticPeriodic(const SyntheticPeriodicConfig& config);

// ---------------------------------------------------------------------------
// Chaotic dynamical systems (Lorenz63 / Lorenz96). A long trajectory is
// integrated with RK4, the last state dimension is dropped (never fully
// observed, as in the paper), the trajectory is cut into fixed-length
// windows, each window is Poisson-thinned, and the window is labelled by
// whether the *hidden* dimension at the window end exceeds its median — so
// the classifier must infer the unobserved dynamics.
// ---------------------------------------------------------------------------
struct DynamicalSystemConfig {
  // "lorenz63": dim copies of the 3-variable Lorenz-63 attractor coupled to
  // reach `dim` total states; "lorenz96": the dim-variable Lorenz-96 ring.
  Index dim = 96;
  Index trajectory_steps = 1000;
  Scalar dt = 0.02;
  Index window = 40;
  Scalar keep_rate = 0.3;
  std::uint64_t seed = 2;
};
Dataset MakeLorenz63(DynamicalSystemConfig config);
Dataset MakeLorenz96(DynamicalSystemConfig config);

// Raw integrators, exposed for tests and examples.
// Lorenz-63: dx = sigma(y-x), dy = x(rho-z)-y, dz = xy - beta z.
Tensor IntegrateLorenz63(const Tensor& state, Scalar dt, Index steps);
// Lorenz-96 ring of `dim` variables with forcing F = 8.
Tensor IntegrateLorenz96(const Tensor& state, Scalar dt, Index steps);

// ---------------------------------------------------------------------------
// USHCN-like climate interpolation dataset. Each series is a weather
// station with 5 correlated variables (precipitation, snowfall, snow depth,
// min/max temperature) driven by an annual cycle plus station-specific
// offsets and weather noise. Observations are sparse per channel; then half
// of the time points are removed and `drop_rate` of the remaining
// observations are dropped, as in the paper. Split 60/20/20.
// ---------------------------------------------------------------------------
struct UshcnLikeConfig {
  Index num_stations = 64;
  Index num_days = 160;       // paper: 4 years of daily data
  Scalar obs_rate = 0.5;      // per-channel base observation probability
  Scalar drop_rate = 0.2;     // paper's extra 20% random removal
  Scalar keep_time_rate = 0.5;  // paper removes half the time points
  std::uint64_t seed = 3;
};
Dataset MakeUshcnLike(const UshcnLikeConfig& config);

// ---------------------------------------------------------------------------
// PhysioNet-2012-like ICU dataset: `num_patients` patients, `num_channels`
// vitals/labs with very different observation rates, over a 48-hour stay
// rounded to 6-minute ticks. A slow latent "severity" process drives
// correlated drift in the channels. Split 60/20/20.
// ---------------------------------------------------------------------------
struct PhysioNetLikeConfig {
  Index num_patients = 100;
  Index num_channels = 37;
  Scalar horizon_hours = 48.0;
  Scalar tick_hours = 0.1;  // 6 minutes
  Index max_obs_per_patient = 60;
  std::uint64_t seed = 4;
};
Dataset MakePhysioNetLike(const PhysioNetLikeConfig& config);

// ---------------------------------------------------------------------------
// LargeST-like traffic dataset: univariate hourly flow with daily and
// weekly periodicity, rush-hour peaks, random congestion events, cut into
// windows per sensor, with half the points randomly masked out as in the
// paper. Split 60/20/20.
// ---------------------------------------------------------------------------
struct LargeStLikeConfig {
  Index num_sensors = 60;
  Index hours_per_sensor = 24 * 14;  // two weeks per window
  Scalar keep_rate = 0.5;
  std::uint64_t seed = 5;
};
Dataset MakeLargeStLike(const LargeStLikeConfig& config);

}  // namespace diffode::data

#endif  // DIFFODE_DATA_GENERATORS_H_
