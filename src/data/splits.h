#ifndef DIFFODE_DATA_SPLITS_H_
#define DIFFODE_DATA_SPLITS_H_

#include "data/irregular_series.h"
#include "tensor/random.h"

namespace diffode::data {

// Per-feature first/second moments over observed (masked) entries.
struct FeatureStats {
  Tensor mean;  // 1 x f
  Tensor std;   // 1 x f, floored at 1e-6
};

FeatureStats ComputeStats(const std::vector<IrregularSeries>& series);

// Z-scores every split in place with statistics from the train split.
// Returns the stats so predictions can be mapped back.
FeatureStats NormalizeDataset(Dataset* ds);

// A supervised view for reconstruction tasks: `context` is what the model
// conditions on, `target` is the same series with `target.mask` marking the
// entries to predict (entries present in context are excluded).
struct TaskView {
  IrregularSeries context;
  IrregularSeries target;
};

// Interpolation: moves `target_frac` of the observed entries out of the
// context into the target at random.
TaskView MakeInterpolationView(const IrregularSeries& s, Scalar target_frac,
                               Rng& rng);

// Extrapolation: context is the first half of the time span; the target is
// every observation in the second half.
TaskView MakeExtrapolationView(const IrregularSeries& s);

// Drops series rows whose mask is all-zero (keeps at least two rows).
IrregularSeries DropEmptyRows(const IrregularSeries& s);

}  // namespace diffode::data

#endif  // DIFFODE_DATA_SPLITS_H_
