#include "data/splits.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace diffode::data {

FeatureStats ComputeStats(const std::vector<IrregularSeries>& series) {
  DIFFODE_CHECK(!series.empty());
  const Index f = series[0].num_features();
  Tensor sum(Shape{1, f});
  Tensor sum_sq(Shape{1, f});
  Tensor count(Shape{1, f});
  for (const auto& s : series) {
    for (Index i = 0; i < s.length(); ++i) {
      for (Index j = 0; j < f; ++j) {
        if (s.mask.at(i, j) > 0) {
          const Scalar v = s.values.at(i, j);
          sum.at(0, j) += v;
          sum_sq.at(0, j) += v * v;
          count.at(0, j) += 1.0;
        }
      }
    }
  }
  FeatureStats stats;
  stats.mean = Tensor(Shape{1, f});
  stats.std = Tensor(Shape{1, f});
  for (Index j = 0; j < f; ++j) {
    const Scalar n = std::max(count.at(0, j), 1.0);
    const Scalar mean = sum.at(0, j) / n;
    const Scalar var = std::max(sum_sq.at(0, j) / n - mean * mean, 0.0);
    stats.mean.at(0, j) = mean;
    stats.std.at(0, j) = std::max(std::sqrt(var), 1e-6);
  }
  return stats;
}

namespace {

void ApplyStats(const FeatureStats& stats, std::vector<IrregularSeries>* split) {
  for (auto& s : *split) {
    for (Index i = 0; i < s.length(); ++i)
      for (Index j = 0; j < s.num_features(); ++j)
        s.values.at(i, j) =
            (s.values.at(i, j) - stats.mean.at(0, j)) / stats.std.at(0, j);
  }
}

}  // namespace

FeatureStats NormalizeDataset(Dataset* ds) {
  FeatureStats stats = ComputeStats(ds->train);
  ApplyStats(stats, &ds->train);
  ApplyStats(stats, &ds->val);
  ApplyStats(stats, &ds->test);
  return stats;
}

IrregularSeries DropEmptyRows(const IrregularSeries& s) {
  std::vector<Index> keep;
  for (Index i = 0; i < s.length(); ++i) {
    bool any = false;
    for (Index j = 0; j < s.num_features(); ++j)
      if (s.mask.at(i, j) > 0) any = true;
    if (any) keep.push_back(i);
  }
  if (static_cast<Index>(keep.size()) < 2) {
    keep.clear();
    keep.push_back(0);
    if (s.length() > 1) keep.push_back(s.length() - 1);
  }
  IrregularSeries out;
  out.label = s.label;
  const Index f = s.num_features();
  out.values = Tensor(Shape{static_cast<Index>(keep.size()), f});
  out.mask = Tensor(Shape{static_cast<Index>(keep.size()), f});
  for (std::size_t k = 0; k < keep.size(); ++k) {
    out.times.push_back(s.times[static_cast<std::size_t>(keep[k])]);
    for (Index j = 0; j < f; ++j) {
      out.values.at(static_cast<Index>(k), j) = s.values.at(keep[k], j);
      out.mask.at(static_cast<Index>(k), j) = s.mask.at(keep[k], j);
    }
  }
  return out;
}

TaskView MakeInterpolationView(const IrregularSeries& s, Scalar target_frac,
                               Rng& rng) {
  TaskView view;
  view.context = s;
  view.target = s;
  view.target.mask = Tensor(s.mask.shape());  // start empty
  // Move a random fraction of observed entries from context to target.
  for (Index i = 0; i < s.length(); ++i) {
    for (Index j = 0; j < s.num_features(); ++j) {
      if (s.mask.at(i, j) > 0 && rng.Bernoulli(target_frac)) {
        view.context.mask.at(i, j) = 0;
        view.target.mask.at(i, j) = 1;
      }
    }
  }
  view.context = DropEmptyRows(view.context);
  return view;
}

TaskView MakeExtrapolationView(const IrregularSeries& s) {
  TaskView view;
  const Scalar t0 = s.times.front();
  const Scalar t1 = s.times.back();
  const Scalar mid = 0.5 * (t0 + t1);
  view.context = s;
  view.target = s;
  view.target.mask = Tensor(s.mask.shape());
  for (Index i = 0; i < s.length(); ++i) {
    const bool first_half = s.times[static_cast<std::size_t>(i)] <= mid;
    for (Index j = 0; j < s.num_features(); ++j) {
      if (s.mask.at(i, j) > 0) {
        if (first_half) {
          // stays in context
        } else {
          view.context.mask.at(i, j) = 0;
          view.target.mask.at(i, j) = 1;
        }
      }
    }
  }
  view.context = DropEmptyRows(view.context);
  return view;
}

}  // namespace diffode::data
