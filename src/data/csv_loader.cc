#include "data/csv_loader.h"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

namespace diffode::data {
namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.push_back("");
  return cells;
}

bool ParseScalar(const std::string& cell, Scalar* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(cell.c_str(), &end);
  return end != cell.c_str() && *end == '\0';
}

struct RawRow {
  Scalar time;
  std::vector<Scalar> values;
  std::vector<Scalar> mask;
  Index label;
};

}  // namespace

std::vector<IrregularSeries> LoadCsv(const std::string& path,
                                     Index num_channels, bool has_label,
                                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return {};
  }
  const std::size_t expected_cells =
      2 + static_cast<std::size_t>(num_channels) + (has_label ? 1 : 0);
  // Preserve first-appearance order of series ids.
  std::map<std::string, std::size_t> id_to_slot;
  std::vector<std::vector<RawRow>> rows_by_series;
  std::string line;
  long line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> cells = SplitCsvLine(line);
    Scalar probe = 0.0;
    if (line_no == 1 && cells.size() >= 2 && !ParseScalar(cells[1], &probe)) {
      continue;  // header
    }
    if (cells.size() != expected_cells) {
      if (error)
        *error = "line " + std::to_string(line_no) + ": expected " +
                 std::to_string(expected_cells) + " cells, got " +
                 std::to_string(cells.size());
      return {};
    }
    RawRow row;
    row.label = -1;
    if (!ParseScalar(cells[1], &row.time)) {
      if (error)
        *error = "line " + std::to_string(line_no) + ": bad time cell";
      return {};
    }
    for (Index c = 0; c < num_channels; ++c) {
      Scalar v = 0.0;
      if (ParseScalar(cells[static_cast<std::size_t>(2 + c)], &v)) {
        row.values.push_back(v);
        row.mask.push_back(1.0);
      } else if (cells[static_cast<std::size_t>(2 + c)].empty()) {
        row.values.push_back(0.0);
        row.mask.push_back(0.0);
      } else {
        if (error)
          *error = "line " + std::to_string(line_no) + ": bad value cell";
        return {};
      }
    }
    if (has_label) {
      Scalar l = 0.0;
      if (!ParseScalar(cells.back(), &l)) {
        if (error)
          *error = "line " + std::to_string(line_no) + ": bad label cell";
        return {};
      }
      row.label = static_cast<Index>(l);
    }
    auto [it, inserted] =
        id_to_slot.try_emplace(cells[0], rows_by_series.size());
    if (inserted) rows_by_series.emplace_back();
    auto& rows = rows_by_series[it->second];
    if (!rows.empty() && row.time < rows.back().time) {
      if (error)
        *error = "line " + std::to_string(line_no) +
                 ": time goes backwards within series " + cells[0];
      return {};
    }
    rows.push_back(std::move(row));
  }
  std::vector<IrregularSeries> out;
  out.reserve(rows_by_series.size());
  for (const auto& rows : rows_by_series) {
    IrregularSeries s;
    const Index n = static_cast<Index>(rows.size());
    s.values = Tensor(Shape{n, num_channels});
    s.mask = Tensor(Shape{n, num_channels});
    for (Index i = 0; i < n; ++i) {
      const RawRow& row = rows[static_cast<std::size_t>(i)];
      s.times.push_back(row.time);
      for (Index c = 0; c < num_channels; ++c) {
        s.values.at(i, c) = row.values[static_cast<std::size_t>(c)];
        s.mask.at(i, c) = row.mask[static_cast<std::size_t>(c)];
      }
      s.label = row.label;
    }
    out.push_back(std::move(s));
  }
  return out;
}

bool SaveCsv(const std::vector<IrregularSeries>& series,
             const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << std::setprecision(17);
  bool any_label = false;
  for (const auto& s : series) any_label = any_label || s.label >= 0;
  out << "series_id,time";
  if (!series.empty())
    for (Index c = 0; c < series.front().num_features(); ++c)
      out << ",ch" << c;
  if (any_label) out << ",label";
  out << "\n";
  for (std::size_t k = 0; k < series.size(); ++k) {
    const auto& s = series[k];
    for (Index i = 0; i < s.length(); ++i) {
      out << k << "," << s.times[static_cast<std::size_t>(i)];
      for (Index c = 0; c < s.num_features(); ++c) {
        out << ",";
        if (s.mask.at(i, c) > 0) out << s.values.at(i, c);
      }
      if (any_label) out << "," << s.label;
      out << "\n";
    }
  }
  return bool(out);
}

}  // namespace diffode::data
