#include "data/encoding.h"

namespace diffode::data {

EncoderInputs BuildEncoderInputs(const IrregularSeries& series, Scalar span) {
  const Index n = series.length();
  DIFFODE_CHECK_GE(n, 1);
  const Index f = series.num_features();
  EncoderInputs enc;
  const Scalar t0 = series.times.front();
  Scalar window = series.times.back() - t0;
  if (window <= 0.0) window = 1.0;
  enc.t_scale = span / window;
  enc.t_offset = t0;
  enc.inputs = Tensor(Shape{n, 2 * f + 2});
  enc.norm_times.reserve(static_cast<std::size_t>(n));
  Scalar prev = 0.0;
  for (Index i = 0; i < n; ++i) {
    const Scalar t_norm = enc.Normalize(series.times[static_cast<std::size_t>(i)]);
    enc.norm_times.push_back(t_norm);
    for (Index j = 0; j < f; ++j) {
      enc.inputs.at(i, j) = series.values.at(i, j) * series.mask.at(i, j);
      enc.inputs.at(i, f + j) = series.mask.at(i, j);
    }
    enc.inputs.at(i, 2 * f) = t_norm;
    enc.inputs.at(i, 2 * f + 1) = i == 0 ? 0.0 : t_norm - prev;
    prev = t_norm;
  }
  return enc;
}

}  // namespace diffode::data
