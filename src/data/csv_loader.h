#ifndef DIFFODE_DATA_CSV_LOADER_H_
#define DIFFODE_DATA_CSV_LOADER_H_

#include <string>
#include <vector>

#include "data/irregular_series.h"

namespace diffode::data {

// Plain-text interchange format for irregular series:
//
//   series_id,time,<channel_1>,...,<channel_f>[,label]
//
// * rows of one series must appear with non-decreasing time (rows with
//   equal ids are grouped; ids need not be contiguous in the file),
// * empty channel cells mean "not observed" (mask 0),
// * the optional trailing `label` column (an integer, constant per series)
//   turns the file into a classification dataset,
// * a header line is detected (non-numeric second column) and skipped.
//
// Returns the parsed series; on malformed input returns an empty vector and
// fills *error with a line-numbered message.
std::vector<IrregularSeries> LoadCsv(const std::string& path,
                                     Index num_channels, bool has_label,
                                     std::string* error);

// Writes the same format (label column included when any label >= 0).
bool SaveCsv(const std::vector<IrregularSeries>& series,
             const std::string& path);

}  // namespace diffode::data

#endif  // DIFFODE_DATA_CSV_LOADER_H_
