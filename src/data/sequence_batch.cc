#include "data/sequence_batch.h"

#include <algorithm>

namespace diffode::data {

SequenceBatch MakeSequenceBatch(std::vector<const IrregularSeries*> series) {
  SequenceBatch out;
  DIFFODE_CHECK(!series.empty());
  out.batch = static_cast<Index>(series.size());
  out.features = series.front()->num_features();
  for (const IrregularSeries* s : series) {
    DIFFODE_CHECK(s != nullptr);
    DIFFODE_CHECK_GT(s->length(), 0);
    DIFFODE_CHECK_EQ(s->num_features(), out.features);
    for (Index i = 1; i < s->length(); ++i)
      DIFFODE_CHECK_MSG(s->times[static_cast<std::size_t>(i)] >
                            s->times[static_cast<std::size_t>(i - 1)],
                        "SequenceBatch needs strictly increasing times");
    out.lengths.push_back(s->length());
    out.max_len = std::max(out.max_len, s->length());
  }
  out.series = std::move(series);

  // Padded per-row views.
  const Index b = out.batch;
  const Index f = out.features;
  const Index ml = out.max_len;
  out.values = Tensor(Shape{b * ml, f});
  out.mask = Tensor(Shape{b * ml, f});
  out.row_mask.assign(static_cast<std::size_t>(b * ml), 0);
  for (Index r = 0; r < b; ++r) {
    const IrregularSeries& s = *out.series[static_cast<std::size_t>(r)];
    const Index n = s.length();
    std::copy_n(s.values.data(), n * f, out.values.data() + r * ml * f);
    std::copy_n(s.mask.data(), n * f, out.mask.data() + r * ml * f);
    std::fill_n(out.row_mask.begin() + static_cast<std::size_t>(r * ml),
                static_cast<std::size_t>(n), static_cast<unsigned char>(1));
  }

  // Union grid: merged sorted-unique raw times + membership bitmaps. Each
  // sequence's times are strictly increasing, so a single pointer walk per
  // sequence maps observations onto union points.
  for (const IrregularSeries* s : out.series)
    out.union_times.insert(out.union_times.end(), s->times.begin(),
                           s->times.end());
  std::sort(out.union_times.begin(), out.union_times.end());
  out.union_times.erase(
      std::unique(out.union_times.begin(), out.union_times.end()),
      out.union_times.end());

  const Index u_count = out.union_size();
  out.words_per_point = (b + 63) / 64;
  out.membership.assign(
      static_cast<std::size_t>(u_count * out.words_per_point), 0);
  out.obs_index.assign(static_cast<std::size_t>(u_count * b), -1);
  for (Index r = 0; r < b; ++r) {
    const IrregularSeries& s = *out.series[static_cast<std::size_t>(r)];
    Index u = 0;
    for (Index i = 0; i < s.length(); ++i) {
      const Scalar t = s.times[static_cast<std::size_t>(i)];
      while (out.union_times[static_cast<std::size_t>(u)] < t) ++u;
      out.membership[static_cast<std::size_t>(u * out.words_per_point +
                                              r / 64)] |= 1ull << (r % 64);
      out.obs_index[static_cast<std::size_t>(u * b + r)] = i;
      ++u;
    }
  }
  return out;
}

SequenceBatch MakeSequenceBatch(const std::vector<IrregularSeries>& split,
                                Index begin, Index count) {
  std::vector<const IrregularSeries*> ptrs;
  ptrs.reserve(static_cast<std::size_t>(count));
  for (Index i = 0; i < count; ++i)
    ptrs.push_back(&split[static_cast<std::size_t>(begin + i)]);
  return MakeSequenceBatch(std::move(ptrs));
}

}  // namespace diffode::data
