#ifndef DIFFODE_DATA_ENCODING_H_
#define DIFFODE_DATA_ENCODING_H_

#include <vector>

#include "data/irregular_series.h"

namespace diffode::data {

// Shared observation-to-feature convention used by DIFFODE and every
// baseline: row i is [x_i * m_i, m_i, t_i, dt_i] with times affinely mapped
// so the context window spans [0, span]. One convention across models keeps
// the comparisons in Tables III-V architecture-only.
struct EncoderInputs {
  Tensor inputs;                  // n x (2 f + 2)
  std::vector<Scalar> norm_times; // n, in [0, span]
  Scalar t_scale = 1.0;           // norm = (raw - t_offset) * t_scale
  Scalar t_offset = 0.0;

  Scalar Normalize(Scalar raw_time) const {
    return (raw_time - t_offset) * t_scale;
  }
};

EncoderInputs BuildEncoderInputs(const IrregularSeries& series,
                                 Scalar span = 10.0);

}  // namespace diffode::data

#endif  // DIFFODE_DATA_ENCODING_H_
