#ifndef DIFFODE_DATA_IRREGULAR_SERIES_H_
#define DIFFODE_DATA_IRREGULAR_SERIES_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace diffode::data {

// One irregularly sampled multivariate time series.
//
// `times` holds the n observation time points (strictly increasing);
// `values` is n x f with the observed values; `mask` is n x f with 1 where
// the entry was actually observed (sparse datasets like the climate sim have
// rows where only some channels report). Classification samples carry a
// label; regression tasks ignore it.
struct IrregularSeries {
  std::vector<Scalar> times;
  Tensor values;  // n x f
  Tensor mask;    // n x f, 0/1
  Index label = -1;

  Index length() const { return static_cast<Index>(times.size()); }
  Index num_features() const { return values.cols(); }

  // Sub-series of observation indices [begin, begin+count).
  IrregularSeries Slice(Index begin, Index count) const {
    IrregularSeries out;
    out.times.assign(times.begin() + begin, times.begin() + begin + count);
    out.values = values.Rows(begin, count);
    out.mask = mask.Rows(begin, count);
    out.label = label;
    return out;
  }
};

// A task-ready dataset with fixed splits.
struct Dataset {
  std::string name;
  std::vector<IrregularSeries> train;
  std::vector<IrregularSeries> val;
  std::vector<IrregularSeries> test;
  Index num_features = 0;
  Index num_classes = 0;  // 0 for regression tasks

  Index TotalSeries() const {
    return static_cast<Index>(train.size() + val.size() + test.size());
  }
};

}  // namespace diffode::data

#endif  // DIFFODE_DATA_IRREGULAR_SERIES_H_
