#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace diffode::data {
namespace {

constexpr Scalar kPi = 3.14159265358979323846;

// Bernoulli-thins the rows of a series, always keeping at least two points
// (ODE integration needs a non-degenerate time span).
IrregularSeries ThinSeries(const IrregularSeries& s, Scalar keep_rate,
                           Rng& rng) {
  std::vector<Index> keep;
  for (Index i = 0; i < s.length(); ++i)
    if (rng.Bernoulli(keep_rate)) keep.push_back(i);
  if (static_cast<Index>(keep.size()) < 2) {
    keep.clear();
    keep.push_back(0);
    keep.push_back(s.length() - 1);
  }
  IrregularSeries out;
  out.label = s.label;
  out.values = Tensor(Shape{static_cast<Index>(keep.size()), s.num_features()});
  out.mask = Tensor(Shape{static_cast<Index>(keep.size()), s.num_features()});
  for (std::size_t k = 0; k < keep.size(); ++k) {
    out.times.push_back(s.times[static_cast<std::size_t>(keep[k])]);
    for (Index j = 0; j < s.num_features(); ++j) {
      out.values.at(static_cast<Index>(k), j) = s.values.at(keep[k], j);
      out.mask.at(static_cast<Index>(k), j) = s.mask.at(keep[k], j);
    }
  }
  return out;
}

// Shuffles and splits into train/val/test by the given fractions.
void SplitThree(std::vector<IrregularSeries> all, Scalar train_frac,
                Scalar val_frac, Rng& rng, Dataset* out) {
  std::shuffle(all.begin(), all.end(), rng.engine());
  const Index n = static_cast<Index>(all.size());
  const Index n_train = static_cast<Index>(train_frac * n);
  const Index n_val = static_cast<Index>(val_frac * n);
  for (Index i = 0; i < n; ++i) {
    if (i < n_train) {
      out->train.push_back(std::move(all[static_cast<std::size_t>(i)]));
    } else if (i < n_train + n_val) {
      out->val.push_back(std::move(all[static_cast<std::size_t>(i)]));
    } else {
      out->test.push_back(std::move(all[static_cast<std::size_t>(i)]));
    }
  }
}

}  // namespace

Dataset MakeSyntheticPeriodic(const SyntheticPeriodicConfig& config) {
  Rng rng(config.seed);
  std::vector<IrregularSeries> all;
  all.reserve(static_cast<std::size_t>(config.num_series));
  for (Index i = 0; i < config.num_series; ++i) {
    const Scalar phi = rng.Normal(0.0, 2.0 * kPi);
    IrregularSeries dense;
    dense.values = Tensor(Shape{config.grid_points, 1});
    dense.mask = Tensor::Ones(Shape{config.grid_points, 1});
    for (Index k = 0; k < config.grid_points; ++k) {
      // Dense grid strictly inside (0, 10).
      const Scalar t = 10.0 * (static_cast<Scalar>(k) + 0.5) /
                       static_cast<Scalar>(config.grid_points);
      dense.times.push_back(t);
      Scalar x = std::sin(t + phi) * std::cos(3.0 * (t + phi));
      if (config.noise_std > 0.0) x += rng.Normal(0.0, config.noise_std);
      dense.values.at(k, 0) = x;
    }
    const Scalar x5 = std::sin(5.0 + phi) * std::cos(3.0 * (5.0 + phi));
    dense.label = x5 > 0.5 ? 1 : 0;
    all.push_back(ThinSeries(dense, config.keep_rate, rng));
  }
  Dataset ds;
  ds.name = "synthetic_periodic";
  ds.num_features = 1;
  ds.num_classes = 2;
  SplitThree(std::move(all), 0.5, 0.25, rng, &ds);
  return ds;
}

Tensor IntegrateLorenz63(const Tensor& state, Scalar dt, Index steps) {
  DIFFODE_CHECK_EQ(state.numel() % 3, 0);
  const Index copies = state.numel() / 3;
  auto rhs = [copies](const Tensor& s) {
    constexpr Scalar kSigma = 10.0, kRho = 28.0, kBeta = 8.0 / 3.0;
    Tensor d(s.shape());
    for (Index c = 0; c < copies; ++c) {
      const Scalar x = s[3 * c], y = s[3 * c + 1], z = s[3 * c + 2];
      d[3 * c] = kSigma * (y - x);
      d[3 * c + 1] = x * (kRho - z) - y;
      d[3 * c + 2] = x * y - kBeta * z;
    }
    return d;
  };
  Tensor s = state;
  for (Index k = 0; k < steps; ++k) {
    Tensor k1 = rhs(s);
    Tensor k2 = rhs(s + k1 * (dt / 2));
    Tensor k3 = rhs(s + k2 * (dt / 2));
    Tensor k4 = rhs(s + k3 * dt);
    s += (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (dt / 6.0);
  }
  return s;
}

Tensor IntegrateLorenz96(const Tensor& state, Scalar dt, Index steps) {
  const Index n = state.numel();
  DIFFODE_CHECK_GE(n, 4);
  auto rhs = [n](const Tensor& s) {
    constexpr Scalar kForcing = 8.0;
    Tensor d(s.shape());
    for (Index i = 0; i < n; ++i) {
      const Scalar xm2 = s[(i - 2 + n) % n];
      const Scalar xm1 = s[(i - 1 + n) % n];
      const Scalar xp1 = s[(i + 1) % n];
      d[i] = (xp1 - xm2) * xm1 - s[i] + kForcing;
    }
    return d;
  };
  Tensor s = state;
  for (Index k = 0; k < steps; ++k) {
    Tensor k1 = rhs(s);
    Tensor k2 = rhs(s + k1 * (dt / 2));
    Tensor k3 = rhs(s + k2 * (dt / 2));
    Tensor k4 = rhs(s + k3 * dt);
    s += (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (dt / 6.0);
  }
  return s;
}

namespace {

// Shared windowing/labelling logic for the two chaotic systems.
// `step` advances the full state by dt; `trajectory` gathers states.
Dataset MakeChaotic(const DynamicalSystemConfig& config, const char* name,
                    bool lorenz96) {
  Rng rng(config.seed);
  const Index dim = config.dim;
  // Initial state near the attractor with small random perturbation.
  Index state_dim = dim;
  if (!lorenz96) state_dim = ((dim + 2) / 3) * 3;  // whole Lorenz-63 copies
  Tensor state(Shape{state_dim});
  for (Index i = 0; i < state_dim; ++i) state[i] = rng.Normal(0.0, 1.0);
  // Burn-in onto the attractor.
  state = lorenz96 ? IntegrateLorenz96(state, config.dt, 500)
                   : IntegrateLorenz63(state, config.dt, 500);
  // Record the trajectory.
  std::vector<Tensor> traj;
  traj.reserve(static_cast<std::size_t>(config.trajectory_steps));
  for (Index k = 0; k < config.trajectory_steps; ++k) {
    state = lorenz96 ? IntegrateLorenz96(state, config.dt, 1)
                     : IntegrateLorenz63(state, config.dt, 1);
    traj.push_back(state);
  }
  // Cut into windows; the last dimension is hidden (never observed, as in
  // the paper). The label is a short-horizon forecast: whether the first
  // state dimension a few steps past the window end exceeds its median —
  // solvable only by assimilating the window's (thinned) dynamics.
  const Index obs_dim = dim - 1;
  const Index lookahead = 5;
  const Index num_windows =
      (config.trajectory_steps - lookahead) / config.window;
  DIFFODE_CHECK_GE(num_windows, 4);
  std::vector<Scalar> hidden_end(static_cast<std::size_t>(num_windows));
  std::vector<IrregularSeries> dense(static_cast<std::size_t>(num_windows));
  for (Index w = 0; w < num_windows; ++w) {
    IrregularSeries& s = dense[static_cast<std::size_t>(w)];
    s.values = Tensor(Shape{config.window, obs_dim});
    s.mask = Tensor::Ones(Shape{config.window, obs_dim});
    for (Index k = 0; k < config.window; ++k) {
      s.times.push_back(static_cast<Scalar>(k) * config.dt /
                        (config.dt * config.window) * 10.0);
      const Tensor& st = traj[static_cast<std::size_t>(w * config.window + k)];
      for (Index j = 0; j < obs_dim; ++j) s.values.at(k, j) = st[j];
    }
    hidden_end[static_cast<std::size_t>(w)] =
        traj[static_cast<std::size_t>((w + 1) * config.window - 1 +
                                      lookahead)][0];
  }
  // Label: forecast target above/below the dataset median.
  std::vector<Scalar> sorted = hidden_end;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const Scalar median = sorted[sorted.size() / 2];
  std::vector<IrregularSeries> all;
  for (Index w = 0; w < num_windows; ++w) {
    dense[static_cast<std::size_t>(w)].label =
        hidden_end[static_cast<std::size_t>(w)] > median ? 1 : 0;
    all.push_back(
        ThinSeries(dense[static_cast<std::size_t>(w)], config.keep_rate, rng));
  }
  Dataset ds;
  ds.name = name;
  ds.num_features = obs_dim;
  ds.num_classes = 2;
  SplitThree(std::move(all), 0.5, 0.25, rng, &ds);
  return ds;
}

}  // namespace

Dataset MakeLorenz63(DynamicalSystemConfig config) {
  if (config.dim <= 0) config.dim = 63;
  return MakeChaotic(config, "lorenz63", /*lorenz96=*/false);
}

Dataset MakeLorenz96(DynamicalSystemConfig config) {
  if (config.dim <= 0) config.dim = 96;
  return MakeChaotic(config, "lorenz96", /*lorenz96=*/true);
}

Dataset MakeUshcnLike(const UshcnLikeConfig& config) {
  Rng rng(config.seed);
  constexpr Index kChannels = 5;  // precip, snowfall, snow depth, tmin, tmax
  std::vector<IrregularSeries> all;
  for (Index s = 0; s < config.num_stations; ++s) {
    // Station-specific climate parameters.
    const Scalar base_temp = rng.Normal(12.0, 8.0);      // mean annual temp
    const Scalar amplitude = rng.Normal(12.0, 3.0);      // seasonal swing
    const Scalar phase = rng.Uniform(-0.2, 0.2);
    const Scalar wetness = rng.Uniform(0.1, 0.5);        // precip propensity
    Scalar snow_depth = 0.0;
    // Synoptic-scale weather persistence: a multi-day AR(1) temperature
    // anomaly, so the near future is genuinely predictable from the recent
    // past (as in real weather), not just from the seasonal cycle.
    Scalar anomaly = 0.0;
    IrregularSeries dense;
    dense.values = Tensor(Shape{config.num_days, kChannels});
    dense.mask = Tensor(Shape{config.num_days, kChannels});
    for (Index day = 0; day < config.num_days; ++day) {
      const Scalar year_pos =
          2.0 * kPi *
          (static_cast<Scalar>(day) / 365.25 + phase);
      const Scalar season = -std::cos(year_pos);  // cold at t=0
      anomaly = 0.85 * anomaly + rng.Normal(0.0, 1.8);
      const Scalar tmax =
          base_temp + amplitude * season + 5.0 + anomaly + rng.Normal(0.0, 1.0);
      const Scalar tmin = tmax - rng.Uniform(5.0, 12.0);
      const bool wet = rng.Bernoulli(wetness);
      const Scalar precip = wet ? rng.Exponential(0.5) : 0.0;
      const Scalar snowfall = (wet && tmin < 0.0) ? precip : 0.0;
      snow_depth = std::max(0.0, snow_depth * 0.9 + snowfall -
                                     std::max(0.0, tmax) * 0.05);
      dense.times.push_back(static_cast<Scalar>(day));
      dense.values.at(day, 0) = precip;
      dense.values.at(day, 1) = snowfall;
      dense.values.at(day, 2) = snow_depth;
      dense.values.at(day, 3) = tmin;
      dense.values.at(day, 4) = tmax;
      // Sparse per-channel reporting: temperatures are read most days,
      // snow depth only occasionally (as in the real archive).
      const Scalar rates[kChannels] = {config.obs_rate, config.obs_rate * 0.6,
                                       config.obs_rate * 0.4,
                                       config.obs_rate * 1.4,
                                       config.obs_rate * 1.4};
      for (Index c = 0; c < kChannels; ++c)
        dense.mask.at(day, c) = rng.Bernoulli(std::min(rates[c], 0.95)) ? 1 : 0;
    }
    // Paper's preprocessing: remove half the time points, then drop 20% of
    // the remaining observations.
    IrregularSeries thinned = ThinSeries(dense, config.keep_time_rate, rng);
    for (Index i = 0; i < thinned.length(); ++i)
      for (Index c = 0; c < kChannels; ++c)
        if (thinned.mask.at(i, c) > 0 && rng.Bernoulli(config.drop_rate))
          thinned.mask.at(i, c) = 0;
    all.push_back(std::move(thinned));
  }
  Dataset ds;
  ds.name = "ushcn_like";
  ds.num_features = kChannels;
  ds.num_classes = 0;
  SplitThree(std::move(all), 0.6, 0.2, rng, &ds);
  return ds;
}

Dataset MakePhysioNetLike(const PhysioNetLikeConfig& config) {
  Rng rng(config.seed);
  const Index f = config.num_channels;
  // Channel archetypes: baseline level, sensitivity to the latent severity
  // process, noise scale and observation rate.
  std::vector<Scalar> base(static_cast<std::size_t>(f)),
      sens(static_cast<std::size_t>(f)), noise(static_cast<std::size_t>(f)),
      rate(static_cast<std::size_t>(f));
  for (Index c = 0; c < f; ++c) {
    base[static_cast<std::size_t>(c)] = rng.Normal(0.0, 1.0);
    sens[static_cast<std::size_t>(c)] = rng.Normal(0.0, 0.8);
    noise[static_cast<std::size_t>(c)] = rng.Uniform(0.05, 0.3);
    // Vitals are measured often, labs rarely.
    rate[static_cast<std::size_t>(c)] = c < f / 4 ? 0.8 : rng.Uniform(0.05, 0.4);
  }
  std::vector<IrregularSeries> all;
  for (Index p = 0; p < config.num_patients; ++p) {
    // Latent severity: Ornstein-Uhlenbeck with patient-specific drift.
    const Scalar drift = rng.Normal(0.0, 0.3);
    Scalar sev = rng.Normal(0.0, 1.0);
    // Observation times: rounded to tick_hours, sorted, deduplicated.
    std::vector<Scalar> times;
    for (Index k = 0; k < config.max_obs_per_patient; ++k) {
      Scalar t = rng.Uniform(0.0, config.horizon_hours);
      t = std::round(t / config.tick_hours) * config.tick_hours;
      times.push_back(t);
    }
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());
    if (times.size() < 2) {
      times = {0.0, config.horizon_hours};
    }
    const Index n = static_cast<Index>(times.size());
    IrregularSeries s;
    s.times = times;
    s.values = Tensor(Shape{n, f});
    s.mask = Tensor(Shape{n, f});
    Scalar prev_t = 0.0;
    for (Index i = 0; i < n; ++i) {
      const Scalar dt = times[static_cast<std::size_t>(i)] - prev_t;
      prev_t = times[static_cast<std::size_t>(i)];
      // OU step: mean-revert to drift with rate 0.05/h.
      const Scalar a = std::exp(-0.05 * dt);
      sev = a * sev + (1.0 - a) * drift +
            rng.Normal(0.0, 0.2 * std::sqrt(std::max(dt, 1e-6)));
      bool any = false;
      for (Index c = 0; c < f; ++c) {
        if (rng.Bernoulli(rate[static_cast<std::size_t>(c)])) {
          s.mask.at(i, c) = 1.0;
          any = true;
        }
        s.values.at(i, c) =
            base[static_cast<std::size_t>(c)] +
            sens[static_cast<std::size_t>(c)] * sev +
            0.3 * std::sin(2.0 * kPi * prev_t / 24.0) +  // circadian
            rng.Normal(0.0, noise[static_cast<std::size_t>(c)]);
      }
      if (!any) s.mask.at(i, 0) = 1.0;  // every row reports something
    }
    all.push_back(std::move(s));
  }
  Dataset ds;
  ds.name = "physionet_like";
  ds.num_features = f;
  ds.num_classes = 0;
  SplitThree(std::move(all), 0.6, 0.2, rng, &ds);
  return ds;
}

Dataset MakeLargeStLike(const LargeStLikeConfig& config) {
  Rng rng(config.seed);
  std::vector<IrregularSeries> all;
  for (Index sensor = 0; sensor < config.num_sensors; ++sensor) {
    const Scalar base_flow = rng.Uniform(200.0, 800.0);
    const Scalar am_peak = rng.Uniform(0.5, 1.5);
    const Scalar pm_peak = rng.Uniform(0.5, 1.5);
    IrregularSeries dense;
    dense.values = Tensor(Shape{config.hours_per_sensor, 1});
    dense.mask = Tensor::Ones(Shape{config.hours_per_sensor, 1});
    for (Index h = 0; h < config.hours_per_sensor; ++h) {
      const Scalar hour_of_day = static_cast<Scalar>(h % 24);
      const Index day_of_week = (h / 24) % 7;
      const bool weekend = day_of_week >= 5;
      // Twin gaussian rush-hour bumps at 8:00 and 18:00.
      auto bump = [](Scalar x, Scalar mu, Scalar sigma) {
        const Scalar z = (x - mu) / sigma;
        return std::exp(-0.5 * z * z);
      };
      Scalar flow = base_flow *
                    (0.4 + am_peak * bump(hour_of_day, 8.0, 2.0) +
                     pm_peak * bump(hour_of_day, 18.0, 2.5));
      if (weekend) flow *= 0.6;
      // Occasional congestion collapse.
      if (rng.Bernoulli(0.02)) flow *= rng.Uniform(0.2, 0.6);
      flow += rng.Normal(0.0, base_flow * 0.05);
      dense.times.push_back(static_cast<Scalar>(h));
      dense.values.at(h, 0) = std::max(flow, 0.0);
    }
    all.push_back(ThinSeries(dense, config.keep_rate, rng));
  }
  Dataset ds;
  ds.name = "largest_like";
  ds.num_features = 1;
  ds.num_classes = 0;
  SplitThree(std::move(all), 0.6, 0.2, rng, &ds);
  return ds;
}

}  // namespace diffode::data
