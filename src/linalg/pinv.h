#ifndef DIFFODE_LINALG_PINV_H_
#define DIFFODE_LINALG_PINV_H_

#include "tensor/tensor.h"

namespace diffode::linalg {

// Moore-Penrose pseudoinverse A† via SVD with relative singular-value cutoff
// tol * sigma_max. Works for any shape and rank; this is the reference path
// for the paper's generalized-inverse machinery (Definition 1).
Tensor PInverse(const Tensor& a, Scalar tol = 1e-12);

// Fast path for a full-row-rank wide matrix A (m x n, m <= n):
// A† = Aᵀ (A Aᵀ)^{-1}, computed with a ridge-regularized Cholesky solve.
// This matches the paper's (Zᵀ)† = Z (ZᵀZ)^{-1} identity for Zᵀ.
Tensor PInverseFullRowRank(const Tensor& a, Scalar ridge = 1e-10);

}  // namespace diffode::linalg

#endif  // DIFFODE_LINALG_PINV_H_
