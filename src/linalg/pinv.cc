#include "linalg/pinv.h"

#include "linalg/cholesky.h"
#include "linalg/svd.h"

namespace diffode::linalg {

Tensor PInverse(const Tensor& a, Scalar tol) {
  const bool wide = a.rows() < a.cols();
  const Tensor work = wide ? a.Transposed() : a;
  SvdResult svd = Svd(work);
  const Index n = svd.sigma.numel();
  const Scalar cutoff = tol * std::max(svd.sigma.Max(), Scalar{0});
  // pinv(work) = V diag(1/sigma) Uᵀ with small sigmas dropped.
  Tensor vs = svd.v;  // n x n, scale columns by 1/sigma
  for (Index j = 0; j < n; ++j) {
    const Scalar s = svd.sigma[j];
    const Scalar inv = s > cutoff ? 1.0 / s : 0.0;
    for (Index i = 0; i < n; ++i) vs.at(i, j) *= inv;
  }
  Tensor pinv_work = vs.MatMul(svd.u.Transposed());
  return wide ? pinv_work.Transposed() : pinv_work;
}

Tensor PInverseFullRowRank(const Tensor& a, Scalar ridge) {
  DIFFODE_CHECK_LE(a.rows(), a.cols());
  Tensor gram = a.MatMul(a.Transposed());  // m x m
  Tensor inv = SolveSpd(gram, Tensor::Eye(a.rows()), ridge);
  return a.Transposed().MatMul(inv);
}

}  // namespace diffode::linalg
