#include "linalg/lu.h"

#include <cmath>
#include <numeric>
#include <vector>

namespace diffode::linalg {

Tensor Solve(const Tensor& a, const Tensor& b) {
  const Index n = a.rows();
  DIFFODE_CHECK_EQ(a.cols(), n);
  DIFFODE_CHECK_EQ(b.rows(), n);
  Tensor lu = a;
  Tensor x = b;
  std::vector<Index> piv(static_cast<std::size_t>(n));
  std::iota(piv.begin(), piv.end(), 0);
  for (Index k = 0; k < n; ++k) {
    // Partial pivoting.
    Index pivot = k;
    Scalar best = std::fabs(lu.at(k, k));
    for (Index i = k + 1; i < n; ++i) {
      const Scalar v = std::fabs(lu.at(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    DIFFODE_CHECK_MSG(best > 1e-300, "singular matrix in Solve");
    if (pivot != k) {
      for (Index j = 0; j < n; ++j) std::swap(lu.at(k, j), lu.at(pivot, j));
      for (Index j = 0; j < x.cols(); ++j) std::swap(x.at(k, j), x.at(pivot, j));
    }
    const Scalar inv = 1.0 / lu.at(k, k);
    for (Index i = k + 1; i < n; ++i) {
      const Scalar factor = lu.at(i, k) * inv;
      if (factor == 0.0) continue;
      lu.at(i, k) = factor;
      for (Index j = k + 1; j < n; ++j) lu.at(i, j) -= factor * lu.at(k, j);
      for (Index j = 0; j < x.cols(); ++j) x.at(i, j) -= factor * x.at(k, j);
    }
  }
  // Back substitution.
  for (Index c = 0; c < x.cols(); ++c) {
    for (Index i = n - 1; i >= 0; --i) {
      Scalar s = x.at(i, c);
      for (Index j = i + 1; j < n; ++j) s -= lu.at(i, j) * x.at(j, c);
      x.at(i, c) = s / lu.at(i, i);
    }
  }
  return x;
}

Tensor Inverse(const Tensor& a) { return Solve(a, Tensor::Eye(a.rows())); }

}  // namespace diffode::linalg
