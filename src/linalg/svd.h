#ifndef DIFFODE_LINALG_SVD_H_
#define DIFFODE_LINALG_SVD_H_

#include "tensor/tensor.h"

namespace diffode::linalg {

struct SvdResult {
  Tensor u;      // m x n, orthonormal columns
  Tensor sigma;  // n (rank-1 tensor), descending, non-negative
  Tensor v;      // n x n, orthogonal
};

// Thin singular value decomposition A = U diag(sigma) Vᵀ of an m x n matrix
// with m >= n, computed with the one-sided Jacobi method (slow but simple and
// extremely robust — used for pseudoinverses and validation, not hot paths).
SvdResult Svd(const Tensor& a);

// Numerical rank with relative tolerance tol * sigma_max.
Index Rank(const Tensor& a, Scalar tol = 1e-10);

}  // namespace diffode::linalg

#endif  // DIFFODE_LINALG_SVD_H_
