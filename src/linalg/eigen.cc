#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>

namespace diffode::linalg {
namespace {

// Reduces a to upper Hessenberg form in place with Householder reflections.
void HessenbergReduce(Tensor* a) {
  const Index n = a->rows();
  for (Index k = 0; k < n - 2; ++k) {
    Scalar norm = 0.0;
    for (Index i = k + 1; i < n; ++i) norm += a->at(i, k) * a->at(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-300) continue;
    std::vector<Scalar> v(static_cast<std::size_t>(n - k - 1));
    for (Index i = k + 1; i < n; ++i)
      v[static_cast<std::size_t>(i - k - 1)] = a->at(i, k);
    const Scalar alpha = v[0] >= 0 ? -norm : norm;
    v[0] -= alpha;
    Scalar vnorm = 0.0;
    for (Scalar x : v) vnorm += x * x;
    vnorm = std::sqrt(vnorm);
    if (vnorm < 1e-300) continue;
    for (Scalar& x : v) x /= vnorm;
    // A <- H A H with H = I - 2 v vᵀ on the trailing block.
    for (Index j = 0; j < n; ++j) {  // left multiply rows k+1..n-1
      Scalar dot = 0.0;
      for (Index i = k + 1; i < n; ++i)
        dot += v[static_cast<std::size_t>(i - k - 1)] * a->at(i, j);
      for (Index i = k + 1; i < n; ++i)
        a->at(i, j) -= 2.0 * dot * v[static_cast<std::size_t>(i - k - 1)];
    }
    for (Index i = 0; i < n; ++i) {  // right multiply columns k+1..n-1
      Scalar dot = 0.0;
      for (Index j = k + 1; j < n; ++j)
        dot += a->at(i, j) * v[static_cast<std::size_t>(j - k - 1)];
      for (Index j = k + 1; j < n; ++j)
        a->at(i, j) -= 2.0 * dot * v[static_cast<std::size_t>(j - k - 1)];
    }
  }
}

// Extracts the eigenvalues of the trailing 2x2 block [a b; c d].
void TwoByTwoEigen(Scalar a, Scalar b, Scalar c, Scalar d,
                   std::complex<Scalar>* l1, std::complex<Scalar>* l2) {
  const Scalar tr = a + d;
  const Scalar det = a * d - b * c;
  const Scalar disc = tr * tr / 4.0 - det;
  if (disc >= 0.0) {
    const Scalar root = std::sqrt(disc);
    *l1 = tr / 2.0 + root;
    *l2 = tr / 2.0 - root;
  } else {
    const Scalar imag = std::sqrt(-disc);
    *l1 = {tr / 2.0, imag};
    *l2 = {tr / 2.0, -imag};
  }
}

}  // namespace

std::vector<std::complex<Scalar>> Eigenvalues(const Tensor& a,
                                              int max_iterations) {
  const Index n = a.rows();
  DIFFODE_CHECK_EQ(a.cols(), n);
  std::vector<std::complex<Scalar>> out;
  if (n == 0) return out;
  if (n == 1) return {a.at(0, 0)};
  Tensor h = a;
  HessenbergReduce(&h);
  // Shifted QR with deflation (Wilkinson shift via trailing 2x2).
  Index hi = n - 1;
  int iter = 0;
  const Scalar kEps = 1e-12;
  while (hi > 0 && iter < max_iterations * n) {
    ++iter;
    // Deflate: zero sub-diagonal entries that are negligible.
    Index lo = hi;
    while (lo > 0 &&
           std::fabs(h.at(lo, lo - 1)) >
               kEps * (std::fabs(h.at(lo - 1, lo - 1)) +
                       std::fabs(h.at(lo, lo))))
      --lo;
    if (lo == hi) {
      out.push_back(h.at(hi, hi));
      --hi;
      continue;
    }
    if (lo == hi - 1) {
      std::complex<Scalar> l1, l2;
      TwoByTwoEigen(h.at(hi - 1, hi - 1), h.at(hi - 1, hi), h.at(hi, hi - 1),
                    h.at(hi, hi), &l1, &l2);
      // Accept the 2x2 block if it is (numerically) irreducible.
      out.push_back(l1);
      out.push_back(l2);
      hi -= 2;
      if (hi == 0) {
        out.push_back(h.at(0, 0));
        hi = -1;
        break;
      }
      continue;
    }
    // One explicit single-shift QR sweep on the active block [lo, hi]:
    //   B - sigma I = Q R,   B <- R Q + sigma I,
    // a similarity on the (deflation-isolated) block, so its eigenvalues
    // are preserved. The shift is the trailing-2x2 eigenvalue closest to
    // the bottom-right entry (Wilkinson's choice, real part when complex).
    std::complex<Scalar> l1, l2;
    TwoByTwoEigen(h.at(hi - 1, hi - 1), h.at(hi - 1, hi), h.at(hi, hi - 1),
                  h.at(hi, hi), &l1, &l2);
    const Scalar target = h.at(hi, hi);
    Scalar shift = std::fabs(l1.real() - target) <
                           std::fabs(l2.real() - target)
                       ? l1.real()
                       : l2.real();
    // Exceptional shift (EISPACK-style) to break rare stalls of the real
    // single shift on complex clusters.
    if (iter % 13 == 0) {
      shift = std::fabs(h.at(hi, hi - 1)) +
              (hi >= 2 ? std::fabs(h.at(hi - 1, hi - 2)) : 0.0);
    }
    const Index m = hi - lo + 1;
    // B = block - shift I (dense copy; blocks are small after deflation).
    Tensor b(Shape{m, m});
    for (Index r = 0; r < m; ++r)
      for (Index c = 0; c < m; ++c)
        b.at(r, c) = h.at(lo + r, lo + c) - (r == c ? shift : 0.0);
    // QR of the Hessenberg block with Givens rotations on the subdiagonal.
    std::vector<std::pair<Scalar, Scalar>> rotations;
    rotations.reserve(static_cast<std::size_t>(m - 1));
    for (Index i = 0; i < m - 1; ++i) {
      const Scalar x = b.at(i, i);
      const Scalar y = b.at(i + 1, i);
      const Scalar r = std::hypot(x, y);
      const Scalar cs = r > 1e-300 ? x / r : 1.0;
      const Scalar sn = r > 1e-300 ? y / r : 0.0;
      rotations.emplace_back(cs, sn);
      for (Index j = i; j < m; ++j) {  // Gᵀ from the left
        const Scalar b1 = b.at(i, j);
        const Scalar b2 = b.at(i + 1, j);
        b.at(i, j) = cs * b1 + sn * b2;
        b.at(i + 1, j) = -sn * b1 + cs * b2;
      }
    }
    // B <- R Q (apply the rotations from the right) + shift I.
    for (Index i = 0; i < m - 1; ++i) {
      const auto [cs, sn] = rotations[static_cast<std::size_t>(i)];
      for (Index r = 0; r <= std::min<Index>(i + 1, m - 1); ++r) {
        const Scalar c1 = b.at(r, i);
        const Scalar c2 = b.at(r, i + 1);
        b.at(r, i) = cs * c1 + sn * c2;
        b.at(r, i + 1) = -sn * c1 + cs * c2;
      }
    }
    for (Index r = 0; r < m; ++r) {
      for (Index c = 0; c < m; ++c)
        h.at(lo + r, lo + c) = b.at(r, c) + (r == c ? shift : 0.0);
    }
  }
  if (hi == 0) out.push_back(h.at(0, 0));
  return out;
}

Scalar SpectralRadius(const Tensor& a) {
  Scalar radius = 0.0;
  for (const auto& l : Eigenvalues(a)) radius = std::max(radius, std::abs(l));
  return radius;
}

Scalar SpectralAbscissa(const Tensor& a) {
  Scalar abscissa = -1e300;
  for (const auto& l : Eigenvalues(a))
    abscissa = std::max(abscissa, l.real());
  return abscissa;
}

SymmetricEigen EigenSym(const Tensor& a) {
  const Index n = a.rows();
  DIFFODE_CHECK_EQ(a.cols(), n);
  DIFFODE_CHECK_MSG((a - a.Transposed()).MaxAbs() < 1e-8 * (1.0 + a.MaxAbs()),
                    "EigenSym needs a symmetric matrix");
  Tensor d = a;
  Tensor v = Tensor::Eye(n);
  const int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    Scalar off = 0.0;
    for (Index p = 0; p < n; ++p)
      for (Index q = p + 1; q < n; ++q) off += d.at(p, q) * d.at(p, q);
    if (off < 1e-24) break;
    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        if (std::fabs(d.at(p, q)) < 1e-300) continue;
        const Scalar theta = (d.at(q, q) - d.at(p, p)) / (2.0 * d.at(p, q));
        const Scalar t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(1.0 + theta * theta));
        const Scalar c = 1.0 / std::sqrt(1.0 + t * t);
        const Scalar s = c * t;
        for (Index i = 0; i < n; ++i) {
          const Scalar dip = d.at(i, p);
          const Scalar diq = d.at(i, q);
          d.at(i, p) = c * dip - s * diq;
          d.at(i, q) = s * dip + c * diq;
        }
        for (Index i = 0; i < n; ++i) {
          const Scalar dpi = d.at(p, i);
          const Scalar dqi = d.at(q, i);
          d.at(p, i) = c * dpi - s * dqi;
          d.at(q, i) = s * dpi + c * dqi;
        }
        for (Index i = 0; i < n; ++i) {
          const Scalar vip = v.at(i, p);
          const Scalar viq = v.at(i, q);
          v.at(i, p) = c * vip - s * viq;
          v.at(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  // Sort ascending.
  std::vector<Index> idx(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  std::sort(idx.begin(), idx.end(),
            [&](Index x, Index y) { return d.at(x, x) < d.at(y, y); });
  SymmetricEigen out;
  out.eigenvalues = Tensor(Shape{n});
  out.eigenvectors = Tensor(Shape{n, n});
  for (Index j = 0; j < n; ++j) {
    const Index src = idx[static_cast<std::size_t>(j)];
    out.eigenvalues[j] = d.at(src, src);
    for (Index i = 0; i < n; ++i) out.eigenvectors.at(i, j) = v.at(i, src);
  }
  return out;
}

}  // namespace diffode::linalg
