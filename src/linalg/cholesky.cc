#include "linalg/cholesky.h"

#include <cmath>

namespace diffode::linalg {

Tensor Cholesky(const Tensor& a) {
  const Index n = a.rows();
  DIFFODE_CHECK_EQ(a.cols(), n);
  Tensor l(Shape{n, n});
  for (Index j = 0; j < n; ++j) {
    Scalar d = a.at(j, j);
    for (Index k = 0; k < j; ++k) d -= l.at(j, k) * l.at(j, k);
    DIFFODE_CHECK_MSG(d > 0.0, "matrix not positive definite");
    const Scalar ljj = std::sqrt(d);
    l.at(j, j) = ljj;
    for (Index i = j + 1; i < n; ++i) {
      Scalar s = a.at(i, j);
      for (Index k = 0; k < j; ++k) s -= l.at(i, k) * l.at(j, k);
      l.at(i, j) = s / ljj;
    }
  }
  return l;
}

Tensor CholeskySolve(const Tensor& l, const Tensor& b) {
  const Index n = l.rows();
  DIFFODE_CHECK_EQ(b.rows(), n);
  const Index m = b.cols();
  // Forward substitution: L y = b.
  Tensor y = b;
  for (Index c = 0; c < m; ++c) {
    for (Index i = 0; i < n; ++i) {
      Scalar s = y.at(i, c);
      for (Index k = 0; k < i; ++k) s -= l.at(i, k) * y.at(k, c);
      y.at(i, c) = s / l.at(i, i);
    }
  }
  // Back substitution: Lᵀ x = y.
  Tensor x = y;
  for (Index c = 0; c < m; ++c) {
    for (Index i = n - 1; i >= 0; --i) {
      Scalar s = x.at(i, c);
      for (Index k = i + 1; k < n; ++k) s -= l.at(k, i) * x.at(k, c);
      x.at(i, c) = s / l.at(i, i);
    }
  }
  return x;
}

Tensor SolveSpd(const Tensor& a, const Tensor& b, Scalar ridge) {
  Tensor reg = a;
  if (ridge > 0.0) {
    for (Index i = 0; i < reg.rows(); ++i) reg.at(i, i) += ridge;
  }
  return CholeskySolve(Cholesky(reg), b);
}

}  // namespace diffode::linalg
