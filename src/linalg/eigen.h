#ifndef DIFFODE_LINALG_EIGEN_H_
#define DIFFODE_LINALG_EIGEN_H_

#include <complex>
#include <vector>

#include "tensor/tensor.h"

namespace diffode::linalg {

// Eigenvalues of a general (real, possibly non-symmetric) square matrix via
// the shifted QR algorithm on the Hessenberg form. Used for stability
// analysis of dynamics matrices (e.g. verifying the HiPPO-LegS spectrum and
// the solver stability bounds in DESIGN.md §5.1); not a hot path.
std::vector<std::complex<Scalar>> Eigenvalues(const Tensor& a,
                                              int max_iterations = 500);

// Spectral radius max_i |lambda_i|.
Scalar SpectralRadius(const Tensor& a);

// Spectral abscissa max_i Re(lambda_i) — negative iff dy/dt = A y is
// asymptotically stable.
Scalar SpectralAbscissa(const Tensor& a);

// Symmetric eigendecomposition A = V diag(w) Vᵀ via Jacobi rotations
// (ascending eigenvalues). Aborts if A is not (numerically) symmetric.
struct SymmetricEigen {
  Tensor eigenvalues;   // n (rank-1), ascending
  Tensor eigenvectors;  // n x n, columns
};
SymmetricEigen EigenSym(const Tensor& a);

}  // namespace diffode::linalg

#endif  // DIFFODE_LINALG_EIGEN_H_
