#include "linalg/qr.h"

#include <cmath>
#include <vector>

namespace diffode::linalg {

QrResult Qr(const Tensor& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  DIFFODE_CHECK_GE(m, n);
  Tensor r = a;  // working copy, reduced in place
  // Store Householder vectors to form Q afterwards.
  std::vector<std::vector<Scalar>> vs;
  vs.reserve(static_cast<std::size_t>(n));
  for (Index k = 0; k < n; ++k) {
    // Householder vector for column k below the diagonal.
    Scalar norm = 0.0;
    for (Index i = k; i < m; ++i) norm += r.at(i, k) * r.at(i, k);
    norm = std::sqrt(norm);
    std::vector<Scalar> v(static_cast<std::size_t>(m - k), 0.0);
    if (norm > 0.0) {
      const Scalar alpha = r.at(k, k) >= 0 ? -norm : norm;
      for (Index i = k; i < m; ++i)
        v[static_cast<std::size_t>(i - k)] = r.at(i, k);
      v[0] -= alpha;
      Scalar vnorm = 0.0;
      for (Scalar x : v) vnorm += x * x;
      vnorm = std::sqrt(vnorm);
      if (vnorm > 1e-300) {
        for (Scalar& x : v) x /= vnorm;
        // Apply H = I - 2 v vᵀ to trailing columns.
        for (Index j = k; j < n; ++j) {
          Scalar dot = 0.0;
          for (Index i = k; i < m; ++i)
            dot += v[static_cast<std::size_t>(i - k)] * r.at(i, j);
          for (Index i = k; i < m; ++i)
            r.at(i, j) -= 2.0 * dot * v[static_cast<std::size_t>(i - k)];
        }
      } else {
        for (Scalar& x : v) x = 0.0;
      }
    }
    vs.push_back(std::move(v));
  }
  // Form thin Q by applying the reflections to the first n columns of I.
  Tensor q(Shape{m, n});
  for (Index j = 0; j < n; ++j) q.at(j, j) = 1.0;
  for (Index k = n - 1; k >= 0; --k) {
    const auto& v = vs[static_cast<std::size_t>(k)];
    for (Index j = 0; j < n; ++j) {
      Scalar dot = 0.0;
      for (Index i = k; i < m; ++i)
        dot += v[static_cast<std::size_t>(i - k)] * q.at(i, j);
      if (dot == 0.0) continue;
      for (Index i = k; i < m; ++i)
        q.at(i, j) -= 2.0 * dot * v[static_cast<std::size_t>(i - k)];
    }
  }
  QrResult result;
  result.q = std::move(q);
  result.r = Tensor(Shape{n, n});
  for (Index i = 0; i < n; ++i)
    for (Index j = i; j < n; ++j) result.r.at(i, j) = r.at(i, j);
  return result;
}

Tensor LeastSquares(const Tensor& a, const Tensor& b) {
  DIFFODE_CHECK_EQ(a.rows(), b.rows());
  QrResult qr = Qr(a);
  Tensor y = qr.q.Transposed().MatMul(b);  // n x k
  const Index n = qr.r.rows();
  Tensor x = y;
  for (Index c = 0; c < x.cols(); ++c) {
    for (Index i = n - 1; i >= 0; --i) {
      Scalar s = x.at(i, c);
      for (Index k = i + 1; k < n; ++k) s -= qr.r.at(i, k) * x.at(k, c);
      DIFFODE_CHECK_MSG(std::fabs(qr.r.at(i, i)) > 1e-300,
                        "rank-deficient least squares");
      x.at(i, c) = s / qr.r.at(i, i);
    }
  }
  return x;
}

}  // namespace diffode::linalg
