#ifndef DIFFODE_LINALG_CHOLESKY_H_
#define DIFFODE_LINALG_CHOLESKY_H_

#include "tensor/tensor.h"

namespace diffode::linalg {

// Cholesky factorization A = L Lᵀ of a symmetric positive-definite matrix.
// Returns the lower-triangular factor L. Aborts if A is not (numerically)
// positive definite; callers needing robustness should add ridge
// regularization first (see SolveSpd).
Tensor Cholesky(const Tensor& a);

// Solves A x = b for symmetric positive-definite A via Cholesky.
// b may have multiple columns.
Tensor CholeskySolve(const Tensor& l, const Tensor& b);

// Solves (A + ridge*I) x = b for symmetric positive-semidefinite A.
Tensor SolveSpd(const Tensor& a, const Tensor& b, Scalar ridge = 0.0);

}  // namespace diffode::linalg

#endif  // DIFFODE_LINALG_CHOLESKY_H_
