#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace diffode::linalg {

SvdResult Svd(const Tensor& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  DIFFODE_CHECK_GE(m, n);
  Tensor u = a;            // columns rotated into U * Sigma
  Tensor v = Tensor::Eye(n);
  const int kMaxSweeps = 60;
  const Scalar kEps = 1e-14;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool converged = true;
    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        // 2x2 Gram entries for columns p, q.
        Scalar app = 0.0, aqq = 0.0, apq = 0.0;
        for (Index i = 0; i < m; ++i) {
          app += u.at(i, p) * u.at(i, p);
          aqq += u.at(i, q) * u.at(i, q);
          apq += u.at(i, p) * u.at(i, q);
        }
        if (std::fabs(apq) <= kEps * std::sqrt(app * aqq)) continue;
        converged = false;
        // Jacobi rotation zeroing the off-diagonal Gram entry.
        const Scalar tau = (aqq - app) / (2.0 * apq);
        const Scalar t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const Scalar c = 1.0 / std::sqrt(1.0 + t * t);
        const Scalar s = c * t;
        for (Index i = 0; i < m; ++i) {
          const Scalar up = u.at(i, p);
          const Scalar uq = u.at(i, q);
          u.at(i, p) = c * up - s * uq;
          u.at(i, q) = s * up + c * uq;
        }
        for (Index i = 0; i < n; ++i) {
          const Scalar vp = v.at(i, p);
          const Scalar vq = v.at(i, q);
          v.at(i, p) = c * vp - s * vq;
          v.at(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }
  // Column norms are the singular values; normalize U's columns.
  std::vector<Scalar> sig(static_cast<std::size_t>(n), 0.0);
  for (Index j = 0; j < n; ++j) {
    Scalar norm = 0.0;
    for (Index i = 0; i < m; ++i) norm += u.at(i, j) * u.at(i, j);
    norm = std::sqrt(norm);
    sig[static_cast<std::size_t>(j)] = norm;
    if (norm > 1e-300) {
      for (Index i = 0; i < m; ++i) u.at(i, j) /= norm;
    }
  }
  // Sort descending.
  std::vector<Index> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](Index x, Index y) {
    return sig[static_cast<std::size_t>(x)] > sig[static_cast<std::size_t>(y)];
  });
  SvdResult result;
  result.u = Tensor(Shape{m, n});
  result.v = Tensor(Shape{n, n});
  result.sigma = Tensor(Shape{n});
  for (Index j = 0; j < n; ++j) {
    const Index src = idx[static_cast<std::size_t>(j)];
    result.sigma[j] = sig[static_cast<std::size_t>(src)];
    for (Index i = 0; i < m; ++i) result.u.at(i, j) = u.at(i, src);
    for (Index i = 0; i < n; ++i) result.v.at(i, j) = v.at(i, src);
  }
  return result;
}

Index Rank(const Tensor& a, Scalar tol) {
  const bool wide = a.rows() < a.cols();
  SvdResult svd = Svd(wide ? a.Transposed() : a);
  const Scalar cutoff = tol * std::max(svd.sigma.Max(), Scalar{0});
  Index rank = 0;
  for (Index i = 0; i < svd.sigma.numel(); ++i)
    if (svd.sigma[i] > cutoff) ++rank;
  return rank;
}

}  // namespace diffode::linalg
