#ifndef DIFFODE_LINALG_LU_H_
#define DIFFODE_LINALG_LU_H_

#include "tensor/tensor.h"

namespace diffode::linalg {

// Solves the square system A x = b with Gaussian elimination and partial
// pivoting. b may have multiple columns. Aborts on singular A.
Tensor Solve(const Tensor& a, const Tensor& b);

// Inverse of a square matrix via LU.
Tensor Inverse(const Tensor& a);

}  // namespace diffode::linalg

#endif  // DIFFODE_LINALG_LU_H_
