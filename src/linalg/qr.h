#ifndef DIFFODE_LINALG_QR_H_
#define DIFFODE_LINALG_QR_H_

#include "tensor/tensor.h"

namespace diffode::linalg {

struct QrResult {
  Tensor q;  // m x n, orthonormal columns (thin factor)
  Tensor r;  // n x n, upper triangular
};

// Thin QR factorization of an m x n matrix with m >= n via Householder
// reflections.
QrResult Qr(const Tensor& a);

// Solves the least-squares problem min ||A x - b||_2 using QR (A m x n,
// m >= n, full column rank). b may have multiple columns.
Tensor LeastSquares(const Tensor& a, const Tensor& b);

}  // namespace diffode::linalg

#endif  // DIFFODE_LINALG_QR_H_
