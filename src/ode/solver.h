#ifndef DIFFODE_ODE_SOLVER_H_
#define DIFFODE_ODE_SOLVER_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace diffode::ode {

// Right-hand side of dy/dt = f(t, y) on plain tensors (inference path).
using OdeFunc = std::function<Tensor(Scalar t, const Tensor& y)>;

enum class Method {
  kEuler,
  kMidpoint,
  kRk4,
  kDopri5,         // adaptive Dormand-Prince 5(4)
  kImplicitAdams,  // Adams-Moulton predictor-corrector (paper's solver)
};

struct SolveOptions {
  Method method = Method::kRk4;
  // Fixed step size for non-adaptive methods (the paper uses 0.05 for
  // classification, 5 for interpolation/extrapolation).
  Scalar step = 0.05;
  // Tolerances for adaptive methods.
  Scalar rtol = 1e-6;
  Scalar atol = 1e-8;
  Scalar max_step = 1.0e30;
  Scalar min_step = 1e-10;
  // Corrector iterations for implicit Adams.
  int corrector_iters = 2;
  int adams_order = 4;
};

struct SolveStats {
  Index steps = 0;
  Index rhs_evals = 0;
  Index rejected_steps = 0;
};

// Integrates from (t0, y0) to t1 and returns y(t1).
Tensor Integrate(const OdeFunc& f, Tensor y0, Scalar t0, Scalar t1,
                 const SolveOptions& options = {}, SolveStats* stats = nullptr);

// Integrates through the (strictly increasing) time grid and returns the
// state at every grid point, including times[0] (= the initial state).
std::vector<Tensor> IntegrateDense(const OdeFunc& f, Tensor y0,
                                   const std::vector<Scalar>& times,
                                   const SolveOptions& options = {},
                                   SolveStats* stats = nullptr);

}  // namespace diffode::ode

#endif  // DIFFODE_ODE_SOLVER_H_
