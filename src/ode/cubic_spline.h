#ifndef DIFFODE_ODE_CUBIC_SPLINE_H_
#define DIFFODE_ODE_CUBIC_SPLINE_H_

#include <vector>

#include "tensor/tensor.h"

namespace diffode::ode {

// Natural cubic spline through multichannel knots — the control-path
// construction used by Neural CDEs (Kidger et al. 2020), i.e. the paper's
// Fig. 1(b) interpolation approach. Each channel is splined independently.
class CubicSpline {
 public:
  // times: strictly increasing knot locations (size n >= 2);
  // values: n x c knot values.
  CubicSpline(std::vector<Scalar> times, Tensor values);

  Index num_channels() const { return values_.cols(); }
  Scalar t_min() const { return times_.front(); }
  Scalar t_max() const { return times_.back(); }

  // Spline value at t (1 x c). Queries outside [t_min, t_max] extrapolate
  // the boundary cubic.
  Tensor Evaluate(Scalar t) const;

  // Spline derivative dX/dt at t (1 x c) — the CDE control signal.
  Tensor Derivative(Scalar t) const;

 private:
  Index SegmentIndex(Scalar t) const;

  std::vector<Scalar> times_;
  Tensor values_;  // n x c
  Tensor m_;       // n x c second derivatives at the knots
};

}  // namespace diffode::ode

#endif  // DIFFODE_ODE_CUBIC_SPLINE_H_
