#include "ode/lockstep.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "autograd/ops.h"
#include "tensor/kernels.h"

namespace diffode::ode {
namespace {

// Per-row stage combination through the shared forward-arithmetic range
// functions of the per-sequence integrator (ops.cc), sliced at each row's
// own step size. Stage buffers are plain Tensors reused across iterations.
template <typename T>
struct StageBuffers {
  TensorT<T> stage;        // packed stage states (a x d)
  std::vector<Scalar> tt;  // packed stage times
};

// out[i] = y[i] + k[i] * h in T. The f64 branch calls the per-sequence
// integrator's exact range function so the lockstep path stays bitwise
// identical to the unrolled solver; the f32 branch is the same expression
// with the row's step size rounded once to float.
template <typename T>
inline void AxpyRowT(Index d, const T* y, const T* k, Scalar h, T* out) {
  if constexpr (std::is_same_v<T, Scalar>) {
    ag::detail::AxpyForward(d, y, k, h, out);
  } else {
    const T ht = static_cast<T>(h);
    kernels::Zip(d, y, k, out, [ht](T yv, T kv) { return yv + kv * ht; });
  }
}

// RK4 combination out = y + h/6 (k1 + 2 k2 + 2 k3 + k4), same branch
// structure as AxpyRowT.
template <typename T>
inline void Rk4CombineRowT(Index d, const T* y, const T* k1, const T* k2,
                           const T* k3, const T* k4, Scalar h, T* out) {
  if constexpr (std::is_same_v<T, Scalar>) {
    ag::detail::Rk4CombineForward(d, y, k1, k2, k3, k4, h, out);
  } else {
    const T h6 = static_cast<T>(h) / T(6);
    for (Index i = 0; i < d; ++i)
      out[i] = y[i] + h6 * ((k1[i] + T(2) * k2[i]) + (T(2) * k3[i] + k4[i]));
  }
}

template <typename T>
void AxpyRows(const TensorT<T>& y, const TensorT<T>& k,
              const std::vector<Scalar>& h, Scalar h_factor, Index a, Index d,
              TensorT<T>* out) {
  for (Index i = 0; i < a; ++i)
    AxpyRowT<T>(d, y.data() + i * d, k.data() + i * d,
                h_factor * h[static_cast<std::size_t>(i)], out->data() + i * d);
}

}  // namespace

void AppendSegment(RowPlan* plan, Scalar t0, Scalar t1, Scalar step) {
  if (t0 == t1) return;
  const Scalar direction = t1 >= t0 ? 1.0 : -1.0;
  const Scalar h_mag = std::fabs(step);
  DIFFODE_CHECK_GT(h_mag, 0.0);
  Scalar t = t0;
  while (direction * (t1 - t) > 1e-14) {
    const Scalar h = direction * std::min(h_mag, std::fabs(t1 - t));
    plan->steps.push_back(RowStep{t, h});
    t += h;
  }
}

void AppendCheckpoint(RowPlan* plan, Index tag) {
  plan->checkpoints.push_back(
      RowCheckpoint{static_cast<Index>(plan->steps.size()), tag});
}

template <typename T>
void LockstepIntegrateT(const std::vector<RowPlan>& plans, DiffMethod method,
                        const BatchedRhsT<T>& rhs,
                        const LockstepEventFnT<T>& on_event, TensorT<T>* y) {
  const Index b = static_cast<Index>(plans.size());
  DIFFODE_CHECK_EQ(y->rows(), b);
  const Index d = y->cols();
  std::vector<Index> steps_done(static_cast<std::size_t>(b), 0);
  std::vector<std::size_t> next_cp(static_cast<std::size_t>(b), 0);

  std::vector<LockstepEvent> events;
  std::vector<Index> active;
  std::vector<Scalar> t0, h;
  TensorT<T> packed, k1, k2, k3, k4;
  StageBuffers<T> bufs;

  for (;;) {
    // Fire due checkpoints first — one per row per wave, so several
    // checkpoints at the same step index apply in tag order (matching the
    // per-sequence interleave of jumps and readouts at coincident times).
    for (;;) {
      events.clear();
      for (Index r = 0; r < b; ++r) {
        const auto& cps = plans[static_cast<std::size_t>(r)].checkpoints;
        std::size_t& cp = next_cp[static_cast<std::size_t>(r)];
        if (cp < cps.size() &&
            cps[cp].after_steps == steps_done[static_cast<std::size_t>(r)]) {
          events.push_back(LockstepEvent{r, cps[cp].tag});
          ++cp;
        }
      }
      if (events.empty()) break;
      on_event(events, y);
    }

    // Pack the rows that still have steps to take.
    active.clear();
    t0.clear();
    h.clear();
    for (Index r = 0; r < b; ++r) {
      const auto& steps = plans[static_cast<std::size_t>(r)].steps;
      const Index done = steps_done[static_cast<std::size_t>(r)];
      if (done < static_cast<Index>(steps.size())) {
        active.push_back(r);
        t0.push_back(steps[static_cast<std::size_t>(done)].t);
        h.push_back(steps[static_cast<std::size_t>(done)].h);
      }
    }
    if (active.empty()) return;
    const Index a = static_cast<Index>(active.size());
    packed = TensorT<T>::Uninit(Shape{a, d});
    kernels::SelectRows(a, d, active.data(), y->data(), packed.data());

    // One step per active row, same stage structure and stage-time
    // expressions as the per-sequence EulerStep/MidpointStep/Rk4Step.
    bufs.tt.resize(static_cast<std::size_t>(a));
    switch (method) {
      case DiffMethod::kEuler: {
        k1 = rhs(active, t0, packed);
        AxpyRows<T>(packed, k1, h, 1.0, a, d, &packed);
        break;
      }
      case DiffMethod::kMidpoint: {
        k1 = rhs(active, t0, packed);
        bufs.stage = TensorT<T>::Uninit(Shape{a, d});
        AxpyRows<T>(packed, k1, h, 0.5, a, d, &bufs.stage);
        for (Index i = 0; i < a; ++i)
          bufs.tt[static_cast<std::size_t>(i)] =
              t0[static_cast<std::size_t>(i)] +
              0.5 * h[static_cast<std::size_t>(i)];
        k2 = rhs(active, bufs.tt, bufs.stage);
        AxpyRows<T>(packed, k2, h, 1.0, a, d, &packed);
        break;
      }
      case DiffMethod::kRk4: {
        k1 = rhs(active, t0, packed);
        bufs.stage = TensorT<T>::Uninit(Shape{a, d});
        AxpyRows<T>(packed, k1, h, 0.5, a, d, &bufs.stage);
        for (Index i = 0; i < a; ++i)
          bufs.tt[static_cast<std::size_t>(i)] =
              t0[static_cast<std::size_t>(i)] +
              0.5 * h[static_cast<std::size_t>(i)];
        k2 = rhs(active, bufs.tt, bufs.stage);
        AxpyRows<T>(packed, k2, h, 0.5, a, d, &bufs.stage);
        k3 = rhs(active, bufs.tt, bufs.stage);
        AxpyRows<T>(packed, k3, h, 1.0, a, d, &bufs.stage);
        for (Index i = 0; i < a; ++i)
          bufs.tt[static_cast<std::size_t>(i)] =
              t0[static_cast<std::size_t>(i)] + h[static_cast<std::size_t>(i)];
        k4 = rhs(active, bufs.tt, bufs.stage);
        for (Index i = 0; i < a; ++i)
          Rk4CombineRowT<T>(d, packed.data() + i * d, k1.data() + i * d,
                            k2.data() + i * d, k3.data() + i * d,
                            k4.data() + i * d, h[static_cast<std::size_t>(i)],
                            packed.data() + i * d);
        break;
      }
    }
    kernels::ScatterRows(a, d, active.data(), packed.data(), y->data());
    for (Index r : active) ++steps_done[static_cast<std::size_t>(r)];
  }
}

void LockstepIntegrateMixed(const std::vector<RowPlan>& plans,
                            DiffMethod method, const BatchedRhsT<float>& rhs,
                            const LockstepEventFnT<Scalar>& on_event,
                            Tensor* y) {
  const Index b = static_cast<Index>(plans.size());
  DIFFODE_CHECK_EQ(y->rows(), b);
  const Index d = y->cols();
  std::vector<Index> steps_done(static_cast<std::size_t>(b), 0);
  std::vector<std::size_t> next_cp(static_cast<std::size_t>(b), 0);

  std::vector<LockstepEvent> events;
  std::vector<Index> active;
  std::vector<Scalar> t0, h, tt;
  Tensor packed, stage;
  Tensor32 narrow32, k1, k2, k3, k4;

  // Narrow an f64 stage state into the reused f32 RHS operand.
  const auto narrow = [&narrow32](const Tensor& src) -> const Tensor32& {
    if (narrow32.numel() != src.numel())
      narrow32 = Tensor32::Uninit(src.shape());
    const Scalar* s = src.data();
    float* dst = narrow32.data();
    for (Index i = 0; i < src.numel(); ++i)
      dst[i] = static_cast<float>(s[i]);
    return narrow32;
  };
  // out[i] = y[i] + widen(k[i]) * (factor * h_row), accumulated in f64.
  const auto axpy_rows = [&h](const Tensor& yv, const Tensor32& k,
                              Scalar factor, Index a, Index d, Tensor* out) {
    for (Index i = 0; i < a; ++i) {
      const Scalar hi = factor * h[static_cast<std::size_t>(i)];
      const Scalar* yr = yv.data() + i * d;
      const float* kr = k.data() + i * d;
      Scalar* o = out->data() + i * d;
      for (Index j = 0; j < d; ++j)
        o[j] = yr[j] + static_cast<Scalar>(kr[j]) * hi;
    }
  };

  for (;;) {
    for (;;) {
      events.clear();
      for (Index r = 0; r < b; ++r) {
        const auto& cps = plans[static_cast<std::size_t>(r)].checkpoints;
        std::size_t& cp = next_cp[static_cast<std::size_t>(r)];
        if (cp < cps.size() &&
            cps[cp].after_steps == steps_done[static_cast<std::size_t>(r)]) {
          events.push_back(LockstepEvent{r, cps[cp].tag});
          ++cp;
        }
      }
      if (events.empty()) break;
      on_event(events, y);
    }

    active.clear();
    t0.clear();
    h.clear();
    for (Index r = 0; r < b; ++r) {
      const auto& steps = plans[static_cast<std::size_t>(r)].steps;
      const Index done = steps_done[static_cast<std::size_t>(r)];
      if (done < static_cast<Index>(steps.size())) {
        active.push_back(r);
        t0.push_back(steps[static_cast<std::size_t>(done)].t);
        h.push_back(steps[static_cast<std::size_t>(done)].h);
      }
    }
    if (active.empty()) return;
    const Index a = static_cast<Index>(active.size());
    packed = Tensor::Uninit(Shape{a, d});
    kernels::SelectRows(a, d, active.data(), y->data(), packed.data());

    tt.resize(static_cast<std::size_t>(a));
    switch (method) {
      case DiffMethod::kEuler: {
        k1 = rhs(active, t0, narrow(packed));
        axpy_rows(packed, k1, 1.0, a, d, &packed);
        break;
      }
      case DiffMethod::kMidpoint: {
        k1 = rhs(active, t0, narrow(packed));
        stage = Tensor::Uninit(Shape{a, d});
        axpy_rows(packed, k1, 0.5, a, d, &stage);
        for (Index i = 0; i < a; ++i)
          tt[static_cast<std::size_t>(i)] = t0[static_cast<std::size_t>(i)] +
                                            0.5 * h[static_cast<std::size_t>(i)];
        k2 = rhs(active, tt, narrow(stage));
        axpy_rows(packed, k2, 1.0, a, d, &packed);
        break;
      }
      case DiffMethod::kRk4: {
        k1 = rhs(active, t0, narrow(packed));
        stage = Tensor::Uninit(Shape{a, d});
        axpy_rows(packed, k1, 0.5, a, d, &stage);
        for (Index i = 0; i < a; ++i)
          tt[static_cast<std::size_t>(i)] = t0[static_cast<std::size_t>(i)] +
                                            0.5 * h[static_cast<std::size_t>(i)];
        k2 = rhs(active, tt, narrow(stage));
        axpy_rows(packed, k2, 0.5, a, d, &stage);
        k3 = rhs(active, tt, narrow(stage));
        axpy_rows(packed, k3, 1.0, a, d, &stage);
        for (Index i = 0; i < a; ++i)
          tt[static_cast<std::size_t>(i)] = t0[static_cast<std::size_t>(i)] +
                                            h[static_cast<std::size_t>(i)];
        k4 = rhs(active, tt, narrow(stage));
        for (Index i = 0; i < a; ++i) {
          const Scalar h6 = h[static_cast<std::size_t>(i)] / 6.0;
          const Scalar* yr = packed.data() + i * d;
          const float* a1 = k1.data() + i * d;
          const float* a2 = k2.data() + i * d;
          const float* a3 = k3.data() + i * d;
          const float* a4 = k4.data() + i * d;
          Scalar* o = packed.data() + i * d;
          for (Index j = 0; j < d; ++j)
            o[j] = yr[j] +
                   h6 * ((static_cast<Scalar>(a1[j]) +
                          2.0 * static_cast<Scalar>(a2[j])) +
                         (2.0 * static_cast<Scalar>(a3[j]) +
                          static_cast<Scalar>(a4[j])));
        }
        break;
      }
    }
    kernels::ScatterRows(a, d, active.data(), packed.data(), y->data());
    for (Index r : active) ++steps_done[static_cast<std::size_t>(r)];
  }
}

template void LockstepIntegrateT<Scalar>(  // dtype:ok — f64 default engine
    const std::vector<RowPlan>&, DiffMethod, const BatchedRhsT<Scalar>&,
    const LockstepEventFnT<Scalar>&, Tensor*);
template void LockstepIntegrateT<float>(const std::vector<RowPlan>&,
                                        DiffMethod, const BatchedRhsT<float>&,
                                        const LockstepEventFnT<float>&,
                                        Tensor32*);

}  // namespace diffode::ode
