#include "ode/lockstep.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "tensor/kernels.h"

namespace diffode::ode {
namespace {

// Per-row stage combination through the shared forward-arithmetic range
// functions of the per-sequence integrator (ops.cc), sliced at each row's
// own step size. Stage buffers are plain Tensors reused across iterations.
struct StageBuffers {
  Tensor stage;            // packed stage states (a x d)
  std::vector<Scalar> tt;  // packed stage times
};

void AxpyRows(const Tensor& y, const Tensor& k, const std::vector<Scalar>& h,
              Scalar h_factor, Index a, Index d, Tensor* out) {
  for (Index i = 0; i < a; ++i)
    ag::detail::AxpyForward(d, y.data() + i * d, k.data() + i * d,
                            h_factor * h[static_cast<std::size_t>(i)],
                            out->data() + i * d);
}

}  // namespace

void AppendSegment(RowPlan* plan, Scalar t0, Scalar t1, Scalar step) {
  if (t0 == t1) return;
  const Scalar direction = t1 >= t0 ? 1.0 : -1.0;
  const Scalar h_mag = std::fabs(step);
  DIFFODE_CHECK_GT(h_mag, 0.0);
  Scalar t = t0;
  while (direction * (t1 - t) > 1e-14) {
    const Scalar h = direction * std::min(h_mag, std::fabs(t1 - t));
    plan->steps.push_back(RowStep{t, h});
    t += h;
  }
}

void AppendCheckpoint(RowPlan* plan, Index tag) {
  plan->checkpoints.push_back(
      RowCheckpoint{static_cast<Index>(plan->steps.size()), tag});
}

void LockstepIntegrate(const std::vector<RowPlan>& plans, DiffMethod method,
                       const BatchedRhs& rhs, const LockstepEventFn& on_event,
                       Tensor* y) {
  const Index b = static_cast<Index>(plans.size());
  DIFFODE_CHECK_EQ(y->rows(), b);
  const Index d = y->cols();
  std::vector<Index> steps_done(static_cast<std::size_t>(b), 0);
  std::vector<std::size_t> next_cp(static_cast<std::size_t>(b), 0);

  std::vector<LockstepEvent> events;
  std::vector<Index> active;
  std::vector<Scalar> t0, h;
  Tensor packed, k1, k2, k3, k4;
  StageBuffers bufs;

  for (;;) {
    // Fire due checkpoints first — one per row per wave, so several
    // checkpoints at the same step index apply in tag order (matching the
    // per-sequence interleave of jumps and readouts at coincident times).
    for (;;) {
      events.clear();
      for (Index r = 0; r < b; ++r) {
        const auto& cps = plans[static_cast<std::size_t>(r)].checkpoints;
        std::size_t& cp = next_cp[static_cast<std::size_t>(r)];
        if (cp < cps.size() &&
            cps[cp].after_steps == steps_done[static_cast<std::size_t>(r)]) {
          events.push_back(LockstepEvent{r, cps[cp].tag});
          ++cp;
        }
      }
      if (events.empty()) break;
      on_event(events, y);
    }

    // Pack the rows that still have steps to take.
    active.clear();
    t0.clear();
    h.clear();
    for (Index r = 0; r < b; ++r) {
      const auto& steps = plans[static_cast<std::size_t>(r)].steps;
      const Index done = steps_done[static_cast<std::size_t>(r)];
      if (done < static_cast<Index>(steps.size())) {
        active.push_back(r);
        t0.push_back(steps[static_cast<std::size_t>(done)].t);
        h.push_back(steps[static_cast<std::size_t>(done)].h);
      }
    }
    if (active.empty()) return;
    const Index a = static_cast<Index>(active.size());
    packed = Tensor::Uninit(Shape{a, d});
    kernels::SelectRows(a, d, active.data(), y->data(), packed.data());

    // One step per active row, same stage structure and stage-time
    // expressions as the per-sequence EulerStep/MidpointStep/Rk4Step.
    bufs.tt.resize(static_cast<std::size_t>(a));
    switch (method) {
      case DiffMethod::kEuler: {
        k1 = rhs(active, t0, packed);
        AxpyRows(packed, k1, h, 1.0, a, d, &packed);
        break;
      }
      case DiffMethod::kMidpoint: {
        k1 = rhs(active, t0, packed);
        bufs.stage = Tensor::Uninit(Shape{a, d});
        AxpyRows(packed, k1, h, 0.5, a, d, &bufs.stage);
        for (Index i = 0; i < a; ++i)
          bufs.tt[static_cast<std::size_t>(i)] =
              t0[static_cast<std::size_t>(i)] +
              0.5 * h[static_cast<std::size_t>(i)];
        k2 = rhs(active, bufs.tt, bufs.stage);
        AxpyRows(packed, k2, h, 1.0, a, d, &packed);
        break;
      }
      case DiffMethod::kRk4: {
        k1 = rhs(active, t0, packed);
        bufs.stage = Tensor::Uninit(Shape{a, d});
        AxpyRows(packed, k1, h, 0.5, a, d, &bufs.stage);
        for (Index i = 0; i < a; ++i)
          bufs.tt[static_cast<std::size_t>(i)] =
              t0[static_cast<std::size_t>(i)] +
              0.5 * h[static_cast<std::size_t>(i)];
        k2 = rhs(active, bufs.tt, bufs.stage);
        AxpyRows(packed, k2, h, 0.5, a, d, &bufs.stage);
        k3 = rhs(active, bufs.tt, bufs.stage);
        AxpyRows(packed, k3, h, 1.0, a, d, &bufs.stage);
        for (Index i = 0; i < a; ++i)
          bufs.tt[static_cast<std::size_t>(i)] =
              t0[static_cast<std::size_t>(i)] + h[static_cast<std::size_t>(i)];
        k4 = rhs(active, bufs.tt, bufs.stage);
        for (Index i = 0; i < a; ++i)
          ag::detail::Rk4CombineForward(
              d, packed.data() + i * d, k1.data() + i * d, k2.data() + i * d,
              k3.data() + i * d, k4.data() + i * d,
              h[static_cast<std::size_t>(i)], packed.data() + i * d);
        break;
      }
    }
    kernels::ScatterRows(a, d, active.data(), packed.data(), y->data());
    for (Index r : active) ++steps_done[static_cast<std::size_t>(r)];
  }
}

}  // namespace diffode::ode
