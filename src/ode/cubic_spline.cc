#include "ode/cubic_spline.h"

#include <algorithm>

namespace diffode::ode {

CubicSpline::CubicSpline(std::vector<Scalar> times, Tensor values)
    : times_(std::move(times)), values_(std::move(values)) {
  const Index n = static_cast<Index>(times_.size());
  DIFFODE_CHECK_GE(n, 2);
  DIFFODE_CHECK_EQ(values_.rows(), n);
  for (std::size_t i = 1; i < times_.size(); ++i)
    DIFFODE_CHECK_MSG(times_[i] > times_[i - 1],
                      "spline knots must be strictly increasing");
  const Index c = values_.cols();
  m_ = Tensor(Shape{n, c});
  if (n == 2) return;  // natural spline of two points is linear; m = 0
  // Solve the tridiagonal system for second derivatives (natural BCs),
  // Thomas algorithm, one pass shared across channels.
  const Index interior = n - 2;
  std::vector<Scalar> h(static_cast<std::size_t>(n - 1));
  for (Index i = 0; i < n - 1; ++i)
    h[static_cast<std::size_t>(i)] =
        times_[static_cast<std::size_t>(i + 1)] -
        times_[static_cast<std::size_t>(i)];
  // Tridiagonal coefficients (same for every channel).
  std::vector<Scalar> sub(static_cast<std::size_t>(interior)),
      diag(static_cast<std::size_t>(interior)),
      sup(static_cast<std::size_t>(interior));
  for (Index i = 0; i < interior; ++i) {
    sub[static_cast<std::size_t>(i)] = h[static_cast<std::size_t>(i)];
    diag[static_cast<std::size_t>(i)] =
        2.0 * (h[static_cast<std::size_t>(i)] +
               h[static_cast<std::size_t>(i + 1)]);
    sup[static_cast<std::size_t>(i)] = h[static_cast<std::size_t>(i + 1)];
  }
  for (Index ch = 0; ch < c; ++ch) {
    std::vector<Scalar> rhs(static_cast<std::size_t>(interior));
    for (Index i = 0; i < interior; ++i) {
      const Scalar d1 = (values_.at(i + 1, ch) - values_.at(i, ch)) /
                        h[static_cast<std::size_t>(i)];
      const Scalar d2 = (values_.at(i + 2, ch) - values_.at(i + 1, ch)) /
                        h[static_cast<std::size_t>(i + 1)];
      rhs[static_cast<std::size_t>(i)] = 6.0 * (d2 - d1);
    }
    // Thomas forward sweep.
    std::vector<Scalar> cp(static_cast<std::size_t>(interior)),
        dp(static_cast<std::size_t>(interior));
    cp[0] = sup[0] / diag[0];
    dp[0] = rhs[0] / diag[0];
    for (Index i = 1; i < interior; ++i) {
      const Scalar denom =
          diag[static_cast<std::size_t>(i)] -
          sub[static_cast<std::size_t>(i)] * cp[static_cast<std::size_t>(i - 1)];
      cp[static_cast<std::size_t>(i)] =
          sup[static_cast<std::size_t>(i)] / denom;
      dp[static_cast<std::size_t>(i)] =
          (rhs[static_cast<std::size_t>(i)] -
           sub[static_cast<std::size_t>(i)] *
               dp[static_cast<std::size_t>(i - 1)]) /
          denom;
    }
    // Back substitution into the interior rows of m_.
    m_.at(interior, ch) = 0.0;  // natural boundary handled below
    Scalar next = dp[static_cast<std::size_t>(interior - 1)];
    m_.at(interior, ch) = next;
    for (Index i = interior - 2; i >= 0; --i) {
      next = dp[static_cast<std::size_t>(i)] -
             cp[static_cast<std::size_t>(i)] * next;
      m_.at(i + 1, ch) = next;
    }
    m_.at(0, ch) = 0.0;
    m_.at(n - 1, ch) = 0.0;
  }
}

Index CubicSpline::SegmentIndex(Scalar t) const {
  const Index n = static_cast<Index>(times_.size());
  if (t <= times_.front()) return 0;
  if (t >= times_.back()) return n - 2;
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  return static_cast<Index>(it - times_.begin()) - 1;
}

Tensor CubicSpline::Evaluate(Scalar t) const {
  const Index i = SegmentIndex(t);
  const Scalar t0 = times_[static_cast<std::size_t>(i)];
  const Scalar t1 = times_[static_cast<std::size_t>(i + 1)];
  const Scalar h = t1 - t0;
  const Scalar a = (t1 - t) / h;
  const Scalar b = (t - t0) / h;
  const Index c = values_.cols();
  Tensor out(Shape{1, c});
  for (Index ch = 0; ch < c; ++ch) {
    out.at(0, ch) = a * values_.at(i, ch) + b * values_.at(i + 1, ch) +
                    ((a * a * a - a) * m_.at(i, ch) +
                     (b * b * b - b) * m_.at(i + 1, ch)) *
                        (h * h) / 6.0;
  }
  return out;
}

Tensor CubicSpline::Derivative(Scalar t) const {
  const Index i = SegmentIndex(t);
  const Scalar t0 = times_[static_cast<std::size_t>(i)];
  const Scalar t1 = times_[static_cast<std::size_t>(i + 1)];
  const Scalar h = t1 - t0;
  const Scalar a = (t1 - t) / h;
  const Scalar b = (t - t0) / h;
  const Index c = values_.cols();
  Tensor out(Shape{1, c});
  for (Index ch = 0; ch < c; ++ch) {
    out.at(0, ch) =
        (values_.at(i + 1, ch) - values_.at(i, ch)) / h +
        ((1.0 - 3.0 * a * a) * m_.at(i, ch) +
         (3.0 * b * b - 1.0) * m_.at(i + 1, ch)) *
            h / 6.0;
  }
  return out;
}

}  // namespace diffode::ode
