#ifndef DIFFODE_ODE_ADJOINT_H_
#define DIFFODE_ODE_ADJOINT_H_

#include "ode/diff_integrator.h"

namespace diffode::ode {

// Memory-efficient gradients for ODE training (the adjoint-style companion
// to IntegrateVar).
//
// IntegrateVar unrolls every solver stage onto the tape: memory grows with
// the number of steps. AdjointSolve instead runs the forward pass WITHOUT a
// tape, checkpointing only the state at each step boundary, and then walks
// the steps backwards, rebuilding each step's tiny local graph to pull the
// adjoint (vector-Jacobian product) through it. Gradients are bit-identical
// to the unrolled tape (this is the discrete adjoint on the same grid — the
// robust form of the continuous adjoint method of Chen et al. 2018), while
// peak tape memory is one step instead of the whole trajectory.
//
// Parameter gradients accumulate into the Params captured inside `f` (they
// are ordinary tape leaves of each local graph), exactly as a Backward()
// through IntegrateVar would.
struct AdjointResult {
  Tensor y1;   // forward solution at t1
  Tensor dy0;  // dL/dy0 given the seed dL/dy1
};

AdjointResult AdjointSolve(const DiffOdeFunc& f, const Tensor& y0, Scalar t0,
                           Scalar t1, const Tensor& dl_dy1,
                           const DiffSolveOptions& options = {});

// Forward-only convenience: integrates the Var-based RHS on plain tensors
// (no tape), e.g. for inference with a trained dynamics closure.
Tensor ForwardOnly(const DiffOdeFunc& f, Tensor y0, Scalar t0, Scalar t1,
                   const DiffSolveOptions& options = {});

}  // namespace diffode::ode

#endif  // DIFFODE_ODE_ADJOINT_H_
