#include <cmath>

#include "ode/dopri5.h"
#include "ode/implicit_adams.h"
#include "ode/solver.h"

namespace diffode::ode {
namespace {

Tensor EulerStep(const OdeFunc& f, Scalar t, const Tensor& y, Scalar h,
                 SolveStats* stats) {
  if (stats) stats->rhs_evals += 1;
  return y + f(t, y) * h;
}

Tensor MidpointStep(const OdeFunc& f, Scalar t, const Tensor& y, Scalar h,
                    SolveStats* stats) {
  if (stats) stats->rhs_evals += 2;
  Tensor k1 = f(t, y);
  Tensor k2 = f(t + 0.5 * h, y + k1 * (0.5 * h));
  return y + k2 * h;
}

Tensor Rk4Step(const OdeFunc& f, Scalar t, const Tensor& y, Scalar h,
               SolveStats* stats) {
  if (stats) stats->rhs_evals += 4;
  Tensor k1 = f(t, y);
  Tensor k2 = f(t + 0.5 * h, y + k1 * (0.5 * h));
  Tensor k3 = f(t + 0.5 * h, y + k2 * (0.5 * h));
  Tensor k4 = f(t + h, y + k3 * h);
  return y + (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (h / 6.0);
}

// Fixed-step march from t0 to t1 with the step function of the chosen method.
Tensor FixedStepIntegrate(const OdeFunc& f, Tensor y, Scalar t0, Scalar t1,
                          const SolveOptions& options, SolveStats* stats) {
  const Scalar direction = t1 >= t0 ? 1.0 : -1.0;
  const Scalar h_mag = std::fabs(options.step);
  DIFFODE_CHECK_GT(h_mag, 0.0);
  Scalar t = t0;
  while (direction * (t1 - t) > 1e-14) {
    const Scalar h = direction * std::min(h_mag, std::fabs(t1 - t));
    switch (options.method) {
      case Method::kEuler:
        y = EulerStep(f, t, y, h, stats);
        break;
      case Method::kMidpoint:
        y = MidpointStep(f, t, y, h, stats);
        break;
      case Method::kRk4:
        y = Rk4Step(f, t, y, h, stats);
        break;
      default:
        DIFFODE_CHECK_MSG(false, "not a fixed-step method");
    }
    t += h;
    if (stats) stats->steps += 1;
  }
  return y;
}

}  // namespace

Tensor Integrate(const OdeFunc& f, Tensor y0, Scalar t0, Scalar t1,
                 const SolveOptions& options, SolveStats* stats) {
  if (t0 == t1) return y0;
  switch (options.method) {
    case Method::kEuler:
    case Method::kMidpoint:
    case Method::kRk4:
      return FixedStepIntegrate(f, std::move(y0), t0, t1, options, stats);
    case Method::kDopri5:
      return internal::Dopri5Integrate(f, std::move(y0), t0, t1, options,
                                       stats);
    case Method::kImplicitAdams:
      return internal::ImplicitAdamsIntegrate(f, std::move(y0), t0, t1,
                                              options, stats);
  }
  DIFFODE_CHECK(false);
  return y0;
}

std::vector<Tensor> IntegrateDense(const OdeFunc& f, Tensor y0,
                                   const std::vector<Scalar>& times,
                                   const SolveOptions& options,
                                   SolveStats* stats) {
  DIFFODE_CHECK(!times.empty());
  std::vector<Tensor> out;
  out.reserve(times.size());
  out.push_back(y0);
  Tensor y = std::move(y0);
  for (std::size_t i = 1; i < times.size(); ++i) {
    DIFFODE_CHECK_MSG(times[i] > times[i - 1],
                      "IntegrateDense needs strictly increasing times");
    y = Integrate(f, std::move(y), times[i - 1], times[i], options, stats);
    out.push_back(y);
  }
  return out;
}

}  // namespace diffode::ode
