#ifndef DIFFODE_ODE_DOPRI5_H_
#define DIFFODE_ODE_DOPRI5_H_

#include "ode/solver.h"

namespace diffode::ode::internal {

// Adaptive Dormand-Prince 5(4) with a PI step-size controller.
Tensor Dopri5Integrate(const OdeFunc& f, Tensor y0, Scalar t0, Scalar t1,
                       const SolveOptions& options, SolveStats* stats);

}  // namespace diffode::ode::internal

#endif  // DIFFODE_ODE_DOPRI5_H_
