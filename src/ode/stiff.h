#ifndef DIFFODE_ODE_STIFF_H_
#define DIFFODE_ODE_STIFF_H_

#include "ode/solver.h"

namespace diffode::ode {

// Implicit solvers for stiff systems — the regime where the explicit
// methods in solver.h need impractically small steps (e.g. the raw
// HiPPO-LegS block, DESIGN.md §5.1). Each step solves its implicit
// equation with a damped Newton iteration; the Jacobian of f is formed by
// forward differences and factored with LU.

struct StiffOptions {
  Scalar step = 0.1;
  int max_newton_iters = 8;
  Scalar newton_tol = 1e-10;
  // Re-evaluate the Jacobian once per step (true) or reuse across Newton
  // iterations only (false keeps it for the whole step anyway; placeholder
  // for future modified-Newton variants).
  Scalar fd_eps = 1e-7;
};

// Backward (implicit) Euler: y_{k+1} = y_k + h f(t_{k+1}, y_{k+1}).
// A-stable, first order.
Tensor ImplicitEulerIntegrate(const OdeFunc& f, Tensor y0, Scalar t0,
                              Scalar t1, const StiffOptions& options = {},
                              SolveStats* stats = nullptr);

// Trapezoidal rule: y_{k+1} = y_k + h/2 (f(t_k, y_k) + f(t_{k+1}, y_{k+1})).
// A-stable, second order.
Tensor TrapezoidalIntegrate(const OdeFunc& f, Tensor y0, Scalar t0, Scalar t1,
                            const StiffOptions& options = {},
                            SolveStats* stats = nullptr);

}  // namespace diffode::ode

#endif  // DIFFODE_ODE_STIFF_H_
