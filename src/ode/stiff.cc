#include "ode/stiff.h"

#include <cmath>

#include "linalg/lu.h"

namespace diffode::ode {
namespace {

// Forward-difference Jacobian of f(t, .) at y, flattened to N x N.
Tensor NumericJacobian(const OdeFunc& f, Scalar t, const Tensor& y,
                       Scalar eps, SolveStats* stats) {
  const Index n = y.numel();
  Tensor base = f(t, y);
  if (stats) stats->rhs_evals += 1 + n;
  Tensor jac(Shape{n, n});
  for (Index j = 0; j < n; ++j) {
    Tensor yp = y;
    const Scalar h = eps * std::max(std::fabs(y[j]), 1.0);
    yp[j] += h;
    Tensor fp = f(t, yp);
    for (Index i = 0; i < n; ++i) jac.at(i, j) = (fp[i] - base[i]) / h;
  }
  return jac;
}

// Solves y_next = rhs_base + w * f(t_next, y_next) by Newton iteration,
// starting from `guess`. w is the implicit weight (h for backward Euler,
// h/2 for trapezoidal).
Tensor SolveImplicitStage(const OdeFunc& f, Scalar t_next,
                          const Tensor& rhs_base, Scalar w,
                          const Tensor& guess, const StiffOptions& options,
                          SolveStats* stats) {
  const Index n = guess.numel();
  Tensor y = guess;
  Tensor jac = NumericJacobian(f, t_next, y, options.fd_eps, stats);
  // Newton matrix M = I - w J, factored once per step.
  Tensor m = Tensor::Eye(n) - jac * w;
  for (int it = 0; it < options.max_newton_iters; ++it) {
    Tensor fy = f(t_next, y);
    if (stats) stats->rhs_evals += 1;
    // Residual g(y) = y - rhs_base - w f(y).
    Tensor residual = y - rhs_base - fy * w;
    if (residual.MaxAbs() < options.newton_tol) break;
    Tensor delta =
        linalg::Solve(m, residual.Reshaped(Shape{n, 1}));
    y -= delta.Reshaped(y.shape());
  }
  return y;
}

}  // namespace

Tensor ImplicitEulerIntegrate(const OdeFunc& f, Tensor y0, Scalar t0,
                              Scalar t1, const StiffOptions& options,
                              SolveStats* stats) {
  const Scalar direction = t1 >= t0 ? 1.0 : -1.0;
  const Scalar h_mag = std::fabs(options.step);
  DIFFODE_CHECK_GT(h_mag, 0.0);
  Scalar t = t0;
  Tensor y = std::move(y0);
  while (direction * (t1 - t) > 1e-14) {
    const Scalar h = direction * std::min(h_mag, std::fabs(t1 - t));
    y = SolveImplicitStage(f, t + h, y, h, y, options, stats);
    t += h;
    if (stats) stats->steps += 1;
  }
  return y;
}

Tensor TrapezoidalIntegrate(const OdeFunc& f, Tensor y0, Scalar t0, Scalar t1,
                            const StiffOptions& options, SolveStats* stats) {
  const Scalar direction = t1 >= t0 ? 1.0 : -1.0;
  const Scalar h_mag = std::fabs(options.step);
  DIFFODE_CHECK_GT(h_mag, 0.0);
  Scalar t = t0;
  Tensor y = std::move(y0);
  while (direction * (t1 - t) > 1e-14) {
    const Scalar h = direction * std::min(h_mag, std::fabs(t1 - t));
    Tensor fy = f(t, y);
    if (stats) stats->rhs_evals += 1;
    Tensor rhs_base = y + fy * (h / 2.0);
    y = SolveImplicitStage(f, t + h, rhs_base, h / 2.0, y, options, stats);
    t += h;
    if (stats) stats->steps += 1;
  }
  return y;
}

}  // namespace diffode::ode
