#ifndef DIFFODE_ODE_IMPLICIT_ADAMS_H_
#define DIFFODE_ODE_IMPLICIT_ADAMS_H_

#include "ode/solver.h"

namespace diffode::ode::internal {

// Fixed-step implicit Adams (Adams-Moulton) predictor-corrector of order up
// to options.adams_order (max 4), bootstrapped with RK4. This is the solver
// family the paper reports using for the DHS integration.
Tensor ImplicitAdamsIntegrate(const OdeFunc& f, Tensor y0, Scalar t0,
                              Scalar t1, const SolveOptions& options,
                              SolveStats* stats);

}  // namespace diffode::ode::internal

#endif  // DIFFODE_ODE_IMPLICIT_ADAMS_H_
