#include "ode/diff_integrator.h"

#include <cmath>

#include "autograd/ops.h"

namespace diffode::ode {
namespace {

// Each stage update is a fused y + h·k node (ag::AxpyFused) instead of a
// MulScalar + Add pair, and RK4's combination collapses five nodes into one
// ag::Rk4Combine. The unroll builds these once per solver step, so tape size
// per step drops by ~2x for RK4.

ag::Var EulerStep(const DiffOdeFunc& f, Scalar t, const ag::Var& y, Scalar h) {
  return ag::AxpyFused(y, f(t, y), h);
}

ag::Var MidpointStep(const DiffOdeFunc& f, Scalar t, const ag::Var& y,
                     Scalar h) {
  ag::Var k1 = f(t, y);
  ag::Var k2 = f(t + 0.5 * h, ag::AxpyFused(y, k1, 0.5 * h));
  return ag::AxpyFused(y, k2, h);
}

ag::Var Rk4Step(const DiffOdeFunc& f, Scalar t, const ag::Var& y, Scalar h) {
  ag::Var k1 = f(t, y);
  ag::Var k2 = f(t + 0.5 * h, ag::AxpyFused(y, k1, 0.5 * h));
  ag::Var k3 = f(t + 0.5 * h, ag::AxpyFused(y, k2, 0.5 * h));
  ag::Var k4 = f(t + h, ag::AxpyFused(y, k3, h));
  return ag::Rk4Combine(y, k1, k2, k3, k4, h);
}

}  // namespace

ag::Var IntegrateVar(const DiffOdeFunc& f, ag::Var y0, Scalar t0, Scalar t1,
                     const DiffSolveOptions& options) {
  if (t0 == t1) return y0;
  const Scalar direction = t1 >= t0 ? 1.0 : -1.0;
  const Scalar h_mag = std::fabs(options.step);
  DIFFODE_CHECK_GT(h_mag, 0.0);
  Scalar t = t0;
  ag::Var y = std::move(y0);
  while (direction * (t1 - t) > 1e-14) {
    const Scalar h = direction * std::min(h_mag, std::fabs(t1 - t));
    switch (options.method) {
      case DiffMethod::kEuler:
        y = EulerStep(f, t, y, h);
        break;
      case DiffMethod::kMidpoint:
        y = MidpointStep(f, t, y, h);
        break;
      case DiffMethod::kRk4:
        y = Rk4Step(f, t, y, h);
        break;
    }
    t += h;
  }
  return y;
}

std::vector<ag::Var> IntegrateVarDense(const DiffOdeFunc& f, ag::Var y0,
                                       const std::vector<Scalar>& times,
                                       const DiffSolveOptions& options) {
  DIFFODE_CHECK(!times.empty());
  std::vector<ag::Var> out;
  out.reserve(times.size());
  out.push_back(y0);
  ag::Var y = std::move(y0);
  for (std::size_t i = 1; i < times.size(); ++i) {
    DIFFODE_CHECK_MSG(times[i] > times[i - 1],
                      "IntegrateVarDense needs strictly increasing times");
    y = IntegrateVar(f, y, times[i - 1], times[i], options);
    out.push_back(y);
  }
  return out;
}

}  // namespace diffode::ode
