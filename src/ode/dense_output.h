#ifndef DIFFODE_ODE_DENSE_OUTPUT_H_
#define DIFFODE_ODE_DENSE_OUTPUT_H_

#include <vector>

#include "ode/solver.h"

namespace diffode::ode {

// Continuous extension of a fixed-step RK4 integration: stores the state
// and derivative at every accepted step and answers state queries at any
// time inside the integrated span with cubic Hermite interpolation (locally
// 4th-order accurate between nodes). This is the "dense output" facility
// adaptive ODE suites provide, built here for evaluating latent
// trajectories at arbitrary irregular query times without re-integrating.
class DenseSolution {
 public:
  // Integrates dy/dt = f(t, y) from t0 to t1 with fixed step `step`,
  // recording the trajectory.
  DenseSolution(const OdeFunc& f, Tensor y0, Scalar t0, Scalar t1,
                Scalar step);

  Scalar t_min() const { return std::min(t0_, t1_); }
  Scalar t_max() const { return std::max(t0_, t1_); }

  // State at any t in [t_min, t_max] (clamped outside).
  Tensor Evaluate(Scalar t) const;

  // Derivative dy/dt at t (from the Hermite segment).
  Tensor Derivative(Scalar t) const;

  // The recorded nodes (for inspection/tests).
  const std::vector<Scalar>& times() const { return times_; }
  const std::vector<Tensor>& states() const { return states_; }

 private:
  std::size_t SegmentIndex(Scalar t) const;

  Scalar t0_;
  Scalar t1_;
  std::vector<Scalar> times_;
  std::vector<Tensor> states_;
  std::vector<Tensor> derivs_;
};

}  // namespace diffode::ode

#endif  // DIFFODE_ODE_DENSE_OUTPUT_H_
