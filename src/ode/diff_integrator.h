#ifndef DIFFODE_ODE_DIFF_INTEGRATOR_H_
#define DIFFODE_ODE_DIFF_INTEGRATOR_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"
#include "ode/solver.h"

namespace diffode::ode {

// Right-hand side of dy/dt = f(t, y) on autograd Vars (training path).
using DiffOdeFunc = std::function<ag::Var(Scalar t, const ag::Var& y)>;

// Which fixed-step scheme to unroll through the tape. Adaptive and implicit
// schemes are inference-only; training uses discretize-then-optimize with an
// explicit scheme (see DESIGN.md, substitutions).
enum class DiffMethod { kEuler, kMidpoint, kRk4 };

struct DiffSolveOptions {
  DiffMethod method = DiffMethod::kRk4;
  Scalar step = 0.05;
};

// Integrates from (t0, y0) to t1, building the tape as it goes; the result
// is differentiable w.r.t. y0 and any parameters used inside f.
ag::Var IntegrateVar(const DiffOdeFunc& f, ag::Var y0, Scalar t0, Scalar t1,
                     const DiffSolveOptions& options = {});

// Differentiable dense output over a strictly increasing time grid. Returns
// one Var per grid point, the first being y0 itself.
std::vector<ag::Var> IntegrateVarDense(const DiffOdeFunc& f, ag::Var y0,
                                       const std::vector<Scalar>& times,
                                       const DiffSolveOptions& options = {});

}  // namespace diffode::ode

#endif  // DIFFODE_ODE_DIFF_INTEGRATOR_H_
