#include "ode/dense_output.h"

#include <algorithm>
#include <cmath>

namespace diffode::ode {

DenseSolution::DenseSolution(const OdeFunc& f, Tensor y0, Scalar t0,
                             Scalar t1, Scalar step)
    : t0_(t0), t1_(t1) {
  DIFFODE_CHECK_GT(std::fabs(step), 0.0);
  const Scalar direction = t1 >= t0 ? 1.0 : -1.0;
  const Scalar h_mag = std::fabs(step);
  Scalar t = t0;
  Tensor y = std::move(y0);
  times_.push_back(t);
  derivs_.push_back(f(t, y));
  states_.push_back(y);
  while (direction * (t1 - t) > 1e-14) {
    const Scalar h = direction * std::min(h_mag, std::fabs(t1 - t));
    Tensor k1 = derivs_.back();
    Tensor k2 = f(t + 0.5 * h, y + k1 * (0.5 * h));
    Tensor k3 = f(t + 0.5 * h, y + k2 * (0.5 * h));
    Tensor k4 = f(t + h, y + k3 * h);
    y += (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (h / 6.0);
    t += h;
    times_.push_back(t);
    states_.push_back(y);
    derivs_.push_back(f(t, y));
  }
}

std::size_t DenseSolution::SegmentIndex(Scalar t) const {
  if (times_.size() < 2) return 0;
  const bool increasing = times_.back() >= times_.front();
  // Binary search over (possibly decreasing) node times.
  std::size_t lo = 0, hi = times_.size() - 2;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    const bool before = increasing ? times_[mid] <= t : times_[mid] >= t;
    if (before) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

Tensor DenseSolution::Evaluate(Scalar t) const {
  if (times_.size() == 1) return states_[0];
  const std::size_t i = SegmentIndex(t);
  const Scalar ta = times_[i];
  const Scalar tb = times_[i + 1];
  const Scalar h = tb - ta;
  Scalar u = (t - ta) / h;
  u = std::clamp(u, 0.0, 1.0);
  // Cubic Hermite basis.
  const Scalar h00 = (1 + 2 * u) * (1 - u) * (1 - u);
  const Scalar h10 = u * (1 - u) * (1 - u);
  const Scalar h01 = u * u * (3 - 2 * u);
  const Scalar h11 = u * u * (u - 1);
  return states_[i] * h00 + derivs_[i] * (h10 * h) + states_[i + 1] * h01 +
         derivs_[i + 1] * (h11 * h);
}

Tensor DenseSolution::Derivative(Scalar t) const {
  if (times_.size() == 1) return derivs_[0];
  const std::size_t i = SegmentIndex(t);
  const Scalar ta = times_[i];
  const Scalar tb = times_[i + 1];
  const Scalar h = tb - ta;
  Scalar u = (t - ta) / h;
  u = std::clamp(u, 0.0, 1.0);
  const Scalar dh00 = 6 * u * (u - 1) / h;
  const Scalar dh10 = (1 - u) * (1 - 3 * u);
  const Scalar dh01 = -6 * u * (u - 1) / h;
  const Scalar dh11 = u * (3 * u - 2);
  return states_[i] * dh00 + derivs_[i] * dh10 + states_[i + 1] * dh01 +
         derivs_[i + 1] * dh11;
}

}  // namespace diffode::ode
