#include "ode/adjoint.h"

#include <cmath>
#include <vector>

#include "autograd/ops.h"

namespace diffode::ode {
namespace {

// One solver step on Vars, matching diff_integrator.cc exactly so the
// discrete adjoint reproduces IntegrateVar's gradients.
ag::Var StepVar(const DiffOdeFunc& f, Scalar t, const ag::Var& y, Scalar h,
                DiffMethod method) {
  switch (method) {
    case DiffMethod::kEuler:
      return ag::Add(y, ag::MulScalar(f(t, y), h));
    case DiffMethod::kMidpoint: {
      ag::Var k1 = f(t, y);
      ag::Var k2 = f(t + 0.5 * h, ag::Add(y, ag::MulScalar(k1, 0.5 * h)));
      return ag::Add(y, ag::MulScalar(k2, h));
    }
    case DiffMethod::kRk4: {
      ag::Var k1 = f(t, y);
      ag::Var k2 = f(t + 0.5 * h, ag::Add(y, ag::MulScalar(k1, 0.5 * h)));
      ag::Var k3 = f(t + 0.5 * h, ag::Add(y, ag::MulScalar(k2, 0.5 * h)));
      ag::Var k4 = f(t + h, ag::Add(y, ag::MulScalar(k3, h)));
      ag::Var sum = ag::Add(ag::Add(k1, ag::MulScalar(k2, 2.0)),
                            ag::Add(ag::MulScalar(k3, 2.0), k4));
      return ag::Add(y, ag::MulScalar(sum, h / 6.0));
    }
  }
  DIFFODE_CHECK(false);
  return y;
}

}  // namespace

Tensor ForwardOnly(const DiffOdeFunc& f, Tensor y0, Scalar t0, Scalar t1,
                   const DiffSolveOptions& options) {
  if (t0 == t1) return y0;
  // Only values are kept, so run the whole sweep tape-free.
  ag::NoGradScope no_grad;
  const Scalar direction = t1 >= t0 ? 1.0 : -1.0;
  const Scalar h_mag = std::fabs(options.step);
  DIFFODE_CHECK_GT(h_mag, 0.0);
  Scalar t = t0;
  Tensor y = std::move(y0);
  while (direction * (t1 - t) > 1e-14) {
    const Scalar h = direction * std::min(h_mag, std::fabs(t1 - t));
    y = StepVar(f, t, ag::Constant(y), h, options.method).value();
    t += h;
  }
  return y;
}

AdjointResult AdjointSolve(const DiffOdeFunc& f, const Tensor& y0, Scalar t0,
                           Scalar t1, const Tensor& dl_dy1,
                           const DiffSolveOptions& options) {
  DIFFODE_CHECK(dl_dy1.shape() == y0.shape());
  // The backward sweep rebuilds per-step graphs and calls Backward on them;
  // under NoGradScope those graphs would never exist.
  DIFFODE_CHECK_MSG(ag::GradMode::IsEnabled(),
                    "AdjointSolve requires grad mode (called under "
                    "NoGradScope)");
  AdjointResult result;
  if (t0 == t1) {
    result.y1 = y0;
    result.dy0 = dl_dy1;
    return result;
  }
  const Scalar direction = t1 >= t0 ? 1.0 : -1.0;
  const Scalar h_mag = std::fabs(options.step);
  DIFFODE_CHECK_GT(h_mag, 0.0);
  // Forward sweep: checkpoint the state at every step boundary (values
  // only, no tape).
  std::vector<Scalar> ts = {t0};
  std::vector<Tensor> ys = {y0};
  {
    ag::NoGradScope no_grad;
    Scalar t = t0;
    Tensor y = y0;
    while (direction * (t1 - t) > 1e-14) {
      const Scalar h = direction * std::min(h_mag, std::fabs(t1 - t));
      y = StepVar(f, t, ag::Constant(y), h, options.method).value();
      t += h;
      ts.push_back(t);
      ys.push_back(y);
    }
  }
  result.y1 = ys.back();
  // Backward sweep: rebuild each step's local graph from its checkpoint and
  // pull the adjoint through it. Parameter leaves captured in `f`
  // accumulate their gradients on each local Backward.
  Tensor adjoint = dl_dy1;
  for (std::size_t k = ys.size() - 1; k > 0; --k) {
    const Scalar t = ts[k - 1];
    const Scalar h = ts[k] - ts[k - 1];
    ag::Var y_leaf = ag::Var(ys[k - 1], /*requires_grad=*/true);
    ag::Var y_next = StepVar(f, t, y_leaf, h, options.method);
    y_next.Backward(adjoint);
    adjoint = y_leaf.grad();
  }
  result.dy0 = adjoint;
  return result;
}

}  // namespace diffode::ode
