#include "ode/dopri5.h"

#include <algorithm>
#include <cmath>

namespace diffode::ode::internal {
namespace {

// Dormand-Prince 5(4) Butcher tableau.
constexpr Scalar kC[7] = {0.0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1.0, 1.0};
constexpr Scalar kA[7][6] = {
    {},
    {1.0 / 5},
    {3.0 / 40, 9.0 / 40},
    {44.0 / 45, -56.0 / 15, 32.0 / 9},
    {19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
    {9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
    {35.0 / 384, 0.0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
};
// 5th-order solution weights (same as the last A row: FSAL).
constexpr Scalar kB5[7] = {35.0 / 384,    0.0,  500.0 / 1113, 125.0 / 192,
                           -2187.0 / 6784, 11.0 / 84, 0.0};
// 4th-order embedded weights.
constexpr Scalar kB4[7] = {5179.0 / 57600,  0.0,          7571.0 / 16695,
                           393.0 / 640,     -92097.0 / 339200,
                           187.0 / 2100,    1.0 / 40};

Scalar ErrorNorm(const Tensor& err, const Tensor& y0, const Tensor& y1,
                 Scalar rtol, Scalar atol) {
  Scalar sum = 0.0;
  for (Index i = 0; i < err.numel(); ++i) {
    const Scalar scale =
        atol + rtol * std::max(std::fabs(y0[i]), std::fabs(y1[i]));
    const Scalar e = err[i] / scale;
    sum += e * e;
  }
  return std::sqrt(sum / static_cast<Scalar>(std::max<Index>(err.numel(), 1)));
}

}  // namespace

Tensor Dopri5Integrate(const OdeFunc& f, Tensor y0, Scalar t0, Scalar t1,
                       const SolveOptions& options, SolveStats* stats) {
  const Scalar direction = t1 >= t0 ? 1.0 : -1.0;
  Scalar t = t0;
  Tensor y = std::move(y0);
  Tensor k[7];
  k[0] = f(t, y);
  if (stats) stats->rhs_evals += 1;
  // Initial step heuristic: a small fraction of the interval.
  Scalar h = direction * std::min(std::fabs(t1 - t0) / 10.0, options.max_step);
  if (h == 0.0) return y;
  Scalar prev_error = 1.0;  // for the PI controller
  const Scalar kSafety = 0.9;
  while (direction * (t1 - t) > 1e-14) {
    if (direction * (t + h - t1) > 0.0) h = t1 - t;
    // Stages.
    for (int s = 1; s < 7; ++s) {
      Tensor ys = y;
      for (int j = 0; j < s; ++j) {
        if (kA[s][j] != 0.0) ys += k[j] * (h * kA[s][j]);
      }
      k[s] = f(t + kC[s] * h, ys);
      if (stats) stats->rhs_evals += 1;
    }
    // 5th-order solution and embedded error estimate.
    Tensor y5 = y;
    Tensor err(y.shape());
    for (int s = 0; s < 7; ++s) {
      if (kB5[s] != 0.0) y5 += k[s] * (h * kB5[s]);
      const Scalar db = kB5[s] - kB4[s];
      if (db != 0.0) err += k[s] * (h * db);
    }
    const Scalar error = ErrorNorm(err, y, y5, options.rtol, options.atol);
    if (error <= 1.0 || std::fabs(h) <= options.min_step) {
      // Accept.
      t += h;
      y = std::move(y5);
      k[0] = k[6];  // FSAL
      if (stats) stats->steps += 1;
      const Scalar e = std::max(error, 1e-10);
      // PI controller (beta1=0.7/5, beta2=-0.4/5 per Hairer).
      Scalar factor = kSafety * std::pow(e, -0.7 / 5.0) *
                      std::pow(std::max(prev_error, 1e-10), 0.4 / 5.0);
      factor = std::clamp(factor, 0.2, 5.0);
      h *= factor;
      prev_error = e;
    } else {
      if (stats) stats->rejected_steps += 1;
      const Scalar factor =
          std::clamp(kSafety * std::pow(error, -1.0 / 5.0), 0.1, 1.0);
      h *= factor;
    }
    if (std::fabs(h) > options.max_step) h = direction * options.max_step;
    if (std::fabs(h) < options.min_step) h = direction * options.min_step;
  }
  return y;
}

}  // namespace diffode::ode::internal
