#include "ode/implicit_adams.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace diffode::ode::internal {
namespace {

// Adams-Bashforth (explicit predictor) coefficients, orders 1..4, newest
// derivative first.
const Scalar kAb[4][4] = {
    {1.0, 0.0, 0.0, 0.0},
    {3.0 / 2, -1.0 / 2, 0.0, 0.0},
    {23.0 / 12, -16.0 / 12, 5.0 / 12, 0.0},
    {55.0 / 24, -59.0 / 24, 37.0 / 24, -9.0 / 24},
};

// Adams-Moulton (implicit corrector) coefficients, orders 1..4. Entry 0
// multiplies f(t_{n+1}, y_pred); the rest multiply the history, newest first.
const Scalar kAm[4][4] = {
    {1.0, 0.0, 0.0, 0.0},
    {1.0 / 2, 1.0 / 2, 0.0, 0.0},
    {5.0 / 12, 8.0 / 12, -1.0 / 12, 0.0},
    {9.0 / 24, 19.0 / 24, -5.0 / 24, 1.0 / 24},
};

Tensor Rk4Step(const OdeFunc& f, Scalar t, const Tensor& y, Scalar h,
               SolveStats* stats) {
  if (stats) stats->rhs_evals += 4;
  Tensor k1 = f(t, y);
  Tensor k2 = f(t + 0.5 * h, y + k1 * (0.5 * h));
  Tensor k3 = f(t + 0.5 * h, y + k2 * (0.5 * h));
  Tensor k4 = f(t + h, y + k3 * h);
  return y + (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (h / 6.0);
}

}  // namespace

Tensor ImplicitAdamsIntegrate(const OdeFunc& f, Tensor y0, Scalar t0,
                              Scalar t1, const SolveOptions& options,
                              SolveStats* stats) {
  const int order = std::clamp(options.adams_order, 1, 4);
  const Scalar direction = t1 >= t0 ? 1.0 : -1.0;
  const Scalar h_mag = std::fabs(options.step);
  DIFFODE_CHECK_GT(h_mag, 0.0);
  Scalar t = t0;
  Tensor y = std::move(y0);
  // History of derivative evaluations, newest first.
  std::deque<Tensor> hist;
  hist.push_front(f(t, y));
  if (stats) stats->rhs_evals += 1;
  while (direction * (t1 - t) > 1e-14) {
    const Scalar h = direction * std::min(h_mag, std::fabs(t1 - t));
    const bool short_step = std::fabs(std::fabs(h) - h_mag) > 1e-12;
    const int k = std::min<int>(order, static_cast<int>(hist.size()));
    if (k < order && static_cast<int>(hist.size()) < order) {
      // Bootstrap with RK4 until enough history is available.
      y = Rk4Step(f, t, y, h, stats);
      t += h;
      hist.push_front(f(t, y));
      if (stats) {
        stats->rhs_evals += 1;
        stats->steps += 1;
      }
      continue;
    }
    // Predict with Adams-Bashforth of order k.
    Tensor y_pred = y;
    for (int j = 0; j < k; ++j)
      y_pred += hist[static_cast<std::size_t>(j)] * (h * kAb[k - 1][j]);
    // Correct with Adams-Moulton (functional iteration).
    Tensor y_next = y_pred;
    for (int it = 0; it < std::max(options.corrector_iters, 1); ++it) {
      Tensor f_next = f(t + h, y_next);
      if (stats) stats->rhs_evals += 1;
      Tensor acc = y;
      acc += f_next * (h * kAm[k - 1][0]);
      for (int j = 1; j < k; ++j)
        acc += hist[static_cast<std::size_t>(j - 1)] * (h * kAm[k - 1][j]);
      y_next = std::move(acc);
    }
    t += h;
    y = std::move(y_next);
    hist.push_front(f(t, y));
    if (stats) {
      stats->rhs_evals += 1;
      stats->steps += 1;
    }
    while (static_cast<int>(hist.size()) > order) hist.pop_back();
    // A truncated final step breaks the uniform-step assumption for the
    // history, so restart multistep accumulation afterwards.
    if (short_step) {
      Tensor newest = hist.front();
      hist.clear();
      hist.push_front(std::move(newest));
    }
  }
  return y;
}

}  // namespace diffode::ode::internal
