#ifndef DIFFODE_ODE_LOCKSTEP_H_
#define DIFFODE_ODE_LOCKSTEP_H_

#include <functional>
#include <vector>

#include "ode/diff_integrator.h"
#include "tensor/tensor.h"

// Lockstep batched integration: B independent trajectories packed into one
// B x d state matrix, advanced together so the RHS sees B x d operands (the
// GEMM regime where the SIMD backend pays) instead of B separate 1 x d rows.
//
// Equivalence contract. Each row follows its OWN precomputed step timeline —
// the exact (t, h) sequence IntegrateVar would produce for that sequence
// (AppendSegment replays the integrator's stop rule and last-step clamping).
// The engine batches only across rows; it never inserts another row's time
// as a stop point. Per-row stage updates go through the same range functions
// as the per-sequence unroll (ag::detail::AxpyForward / Rk4CombineForward),
// and row packing/unpacking is a pure copy, so a row's trajectory differs
// from its per-sequence run only through the RHS's batched GEMM shapes
// (m = active rows instead of m = 1) — within ~1e-15 relative at B > 1,
// bitwise identical at B = 1 (see tests/batched_equiv_test.cc).
namespace diffode::ode {

// One integration step of a row: advance from local time t by h.
struct RowStep {
  Scalar t;
  Scalar h;
};

// A point in a row's timeline where the caller intervenes: an observation
// jump (mutates the row) or a readout (records it). Fires after the row has
// completed `after_steps` steps, before it takes the next one.
struct RowCheckpoint {
  Index after_steps;
  Index tag;  // caller-defined (e.g. observation or query index)
};

// Precomputed per-row integration timeline.
struct RowPlan {
  std::vector<RowStep> steps;
  std::vector<RowCheckpoint> checkpoints;  // non-decreasing after_steps
};

// Appends the steps IntegrateVar(f, y, t0, t1, {method, step}) would take:
// same t0 == t1 early-out, same 1e-14 stop rule, same last-step clamp, same
// running-t accumulation. Supports both directions (t1 < t0 steps backward).
void AppendSegment(RowPlan* plan, Scalar t0, Scalar t1, Scalar step);

// Appends a checkpoint at the row's current end of timeline.
void AppendCheckpoint(RowPlan* plan, Index tag);

// RHS over the packed active rows. `rows[i]` is the batch row stored at row i
// of `y_active` (a x d); `t[i]` is that row's current stage time. Returns the
// a x d derivative block.
using BatchedRhs = std::function<Tensor(const std::vector<Index>& rows,
                                        const std::vector<Scalar>& t,
                                        const Tensor& y_active)>;

// One due checkpoint, identified by batch row and the caller's tag.
struct LockstepEvent {
  Index row;
  Index tag;
};

// Handles a wave of due checkpoints. `y` is the full B x d state; the
// handler may overwrite rows (jumps) or just read them (readouts). Within
// one wave each row appears at most once; a row with several checkpoints at
// the same step index receives them in tag order across successive waves.
using LockstepEventFn =
    std::function<void(const std::vector<LockstepEvent>& events, Tensor* y)>;

// Advances every row through its plan. `y` holds one row per plan; rows
// whose plans end early simply stop participating. `on_event` may be empty
// only if no plan has checkpoints.
void LockstepIntegrate(const std::vector<RowPlan>& plans, DiffMethod method,
                       const BatchedRhs& rhs, const LockstepEventFn& on_event,
                       Tensor* y);

}  // namespace diffode::ode

#endif  // DIFFODE_ODE_LOCKSTEP_H_
