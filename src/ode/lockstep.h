#ifndef DIFFODE_ODE_LOCKSTEP_H_
#define DIFFODE_ODE_LOCKSTEP_H_

#include <functional>
#include <vector>

#include "ode/diff_integrator.h"
#include "tensor/tensor.h"

// Lockstep batched integration: B independent trajectories packed into one
// B x d state matrix, advanced together so the RHS sees B x d operands (the
// GEMM regime where the SIMD backend pays) instead of B separate 1 x d rows.
//
// Equivalence contract. Each row follows its OWN precomputed step timeline —
// the exact (t, h) sequence IntegrateVar would produce for that sequence
// (AppendSegment replays the integrator's stop rule and last-step clamping).
// The engine batches only across rows; it never inserts another row's time
// as a stop point. Per-row stage updates go through the same range functions
// as the per-sequence unroll (ag::detail::AxpyForward / Rk4CombineForward),
// and row packing/unpacking is a pure copy, so a row's trajectory differs
// from its per-sequence run only through the RHS's batched GEMM shapes
// (m = active rows instead of m = 1) — within ~1e-15 relative at B > 1,
// bitwise identical at B = 1 (see tests/batched_equiv_test.cc).
namespace diffode::ode {

// One integration step of a row: advance from local time t by h.
struct RowStep {
  Scalar t;
  Scalar h;
};

// A point in a row's timeline where the caller intervenes: an observation
// jump (mutates the row) or a readout (records it). Fires after the row has
// completed `after_steps` steps, before it takes the next one.
struct RowCheckpoint {
  Index after_steps;
  Index tag;  // caller-defined (e.g. observation or query index)
};

// Precomputed per-row integration timeline.
struct RowPlan {
  std::vector<RowStep> steps;
  std::vector<RowCheckpoint> checkpoints;  // non-decreasing after_steps
};

// Appends the steps IntegrateVar(f, y, t0, t1, {method, step}) would take:
// same t0 == t1 early-out, same 1e-14 stop rule, same last-step clamp, same
// running-t accumulation. Supports both directions (t1 < t0 steps backward).
void AppendSegment(RowPlan* plan, Scalar t0, Scalar t1, Scalar step);

// Appends a checkpoint at the row's current end of timeline.
void AppendCheckpoint(RowPlan* plan, Index tag);

// RHS over the packed active rows. `rows[i]` is the batch row stored at row i
// of `y_active` (a x d); `t[i]` is that row's current stage time. Returns the
// a x d derivative block. Plans and stage times stay f64 for every state
// dtype: the timeline replay must be bit-identical across precisions so an
// f32 engine reuses the exact f64 step grids.
template <typename T>
using BatchedRhsT = std::function<TensorT<T>(const std::vector<Index>& rows,
                                             const std::vector<Scalar>& t,
                                             const TensorT<T>& y_active)>;
using BatchedRhs = BatchedRhsT<Scalar>;

// One due checkpoint, identified by batch row and the caller's tag.
struct LockstepEvent {
  Index row;
  Index tag;
};

// Handles a wave of due checkpoints. `y` is the full B x d state; the
// handler may overwrite rows (jumps) or just read them (readouts). Within
// one wave each row appears at most once; a row with several checkpoints at
// the same step index receives them in tag order across successive waves.
template <typename T>
using LockstepEventFnT =
    std::function<void(const std::vector<LockstepEvent>& events,
                       TensorT<T>* y)>;
using LockstepEventFn = LockstepEventFnT<Scalar>;

// Advances every row through its plan. `y` holds one row per plan; rows
// whose plans end early simply stop participating. `on_event` may be empty
// only if no plan has checkpoints. The f64 instantiation combines stages
// through the per-sequence integrator's exact range functions
// (ag::detail::AxpyForward / Rk4CombineForward); the f32 instantiation runs
// the same expressions at float precision with each row's f64 step size
// rounded once to float.
template <typename T>
void LockstepIntegrateT(const std::vector<RowPlan>& plans, DiffMethod method,
                        const BatchedRhsT<T>& rhs,
                        const LockstepEventFnT<T>& on_event, TensorT<T>* y);

extern template void LockstepIntegrateT<Scalar>(  // dtype:ok — f64 default
    const std::vector<RowPlan>&, DiffMethod, const BatchedRhsT<Scalar>&,
    const LockstepEventFnT<Scalar>&, Tensor*);
extern template void LockstepIntegrateT<float>(
    const std::vector<RowPlan>&, DiffMethod, const BatchedRhsT<float>&,
    const LockstepEventFnT<float>&, Tensor32*);

// Mixed-precision lockstep for the f32 serving tier: the carried state, the
// stage combines, and the step sizes stay f64 — the per-step accumulate is
// a rounding injection point that stiff/ill-conditioned dynamics amplify —
// while the RHS is evaluated in f32 on a state narrowed once per stage into
// a reused buffer. The f32 derivative is widened inside the f64 combines
// (no intermediate tensor), so the only per-stage overhead over the pure
// f32 instantiation is the narrow copy.
void LockstepIntegrateMixed(const std::vector<RowPlan>& plans,
                            DiffMethod method, const BatchedRhsT<float>& rhs,
                            const LockstepEventFnT<Scalar>& on_event,
                            Tensor* y);

// Non-template f64 entry point kept for the existing engines
// (diffode_batched.cc, baselines/jump_ode_base.cc).
inline void LockstepIntegrate(const std::vector<RowPlan>& plans,
                              DiffMethod method, const BatchedRhs& rhs,
                              const LockstepEventFn& on_event, Tensor* y) {
  LockstepIntegrateT<Scalar>(plans, method, rhs, on_event, y);
}

}  // namespace diffode::ode

#endif  // DIFFODE_ODE_LOCKSTEP_H_
