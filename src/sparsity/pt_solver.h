#ifndef DIFFODE_SPARSITY_PT_SOLVER_H_
#define DIFFODE_SPARSITY_PT_SOLVER_H_

#include "tensor/tensor.h"

namespace diffode::sparsity {

// Strategy for picking the free vector h in the underdetermined attention
// inversion p_tᵀ = (Zᵀ)† S_tᵀ + (I - (Zᵀ)† Zᵀ) h (paper Eq. 13).
enum class PtStrategy {
  kMaxHoyer,  // Theorem 2 closed form, Eq. 32 (the paper's default)
  kMinNorm,   // h = 0: the minimum-norm solution
  kAdaH,      // h is an externally supplied (trained) vector
  kExactKkt,  // Theorem 1: exact non-negative KKT search, O(2^n)
};

// Per-sequence factorization of the attention inversion. Built once from the
// latent matrix Z (n x d, n >= d assumed full column rank after ridging);
// afterwards every recovery is O(n d).
struct AttentionInverse {
  Tensor z;          // n x d
  Tensor zt_pinv;    // (Zᵀ)† = Z (ZᵀZ + ridge I)^{-1}, n x d
  Tensor ap_colsum;  // A_p J_{n,1} with A_p = I - (Zᵀ)† Zᵀ, n x 1
  Scalar ap_total;   // J_{1,n} A_p J_{n,1}

  static AttentionInverse Build(const Tensor& z, Scalar ridge = 1e-8);
};

// Recovers the attention weights p_t (1 x n) from the hidden state s (1 x d)
// under the chosen strategy. `h_ada` (1 x n) is required for kAdaH and
// ignored otherwise. For kExactKkt the sequence length must be <= 20.
Tensor RecoverP(const AttentionInverse& inv, const Tensor& s,
                PtStrategy strategy, const Tensor* h_ada = nullptr);

// Recovers the latent code z_t (1 x d) from p_t via the paper's Eq. 34,
// using the analytic rank-one identity
//   I - M M† = pᵀp / (p pᵀ)  for  M = J_{n,1} p - I_n   (since Σp = 1),
// so a_h = ((h₂·p)/(p·p)) p - 1 and z_t = sqrt(d) a_h (Zᵀ)†.
Tensor RecoverZ(const AttentionInverse& inv, const Tensor& p,
                const Tensor& h2);

// Reference implementation of Eq. 34 with an explicit SVD pseudoinverse of
// M = J_{n,1} p - I_n; used in tests to validate the rank-one fast path.
Tensor RecoverZReference(const Tensor& z, const Tensor& p, const Tensor& h2);

// Theorem-1 oracle: exact maximization of p pᵀ subject to p = b + A_p h,
// p >= 0, Σp = 1, by enumerating KKT active sets. Exponential in n; used to
// validate the relaxed closed form and exposed for analysis on short
// sequences. Returns an empty tensor if no feasible KKT point exists.
Tensor MaxHoyerExactKkt(const AttentionInverse& inv, const Tensor& s);

}  // namespace diffode::sparsity

#endif  // DIFFODE_SPARSITY_PT_SOLVER_H_
