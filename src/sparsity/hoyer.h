#ifndef DIFFODE_SPARSITY_HOYER_H_
#define DIFFODE_SPARSITY_HOYER_H_

#include "tensor/tensor.h"

namespace diffode::sparsity {

// Hoyer sparsity metric (Hurley & Rickard 2009), in the exact form of the
// paper's Eq. 14:
//   Hoyer(x) = (sqrt(N) - sum(x) / ||x||_2) / (sqrt(N) - 1).
// 1 means maximally sparse (single spike), 0 means perfectly uniform.
// The paper applies it to softmax outputs (non-negative, sum 1); with the
// relaxed negative-probability solution the signed sum is used as written.
Scalar Hoyer(const Tensor& x);

// Conventional variant on |x| — agrees with Hoyer() for non-negative input.
Scalar HoyerAbs(const Tensor& x);

// Effective support size: the smallest k such that the k largest |x_i|
// account for `mass` (default 90%) of the total |x| mass. A scalar summary
// of the gray-scale attention maps in the paper's Fig. 3.
Index EffectiveSupport(const Tensor& x, Scalar mass = 0.9);

}  // namespace diffode::sparsity

#endif  // DIFFODE_SPARSITY_HOYER_H_
