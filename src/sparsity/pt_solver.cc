#include "sparsity/pt_solver.h"

#include <cmath>
#include <vector>

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/pinv.h"

namespace diffode::sparsity {

AttentionInverse AttentionInverse::Build(const Tensor& z, Scalar ridge) {
  const Index n = z.rows();
  const Index d = z.cols();
  DIFFODE_CHECK_GE(n, 1);
  DIFFODE_CHECK_GE(d, 1);
  AttentionInverse inv;
  inv.z = z;
  // (Zᵀ)† = Z (ZᵀZ)^{-1}; ridge keeps the Gram matrix invertible when the
  // latent codes are (nearly) collinear.
  Tensor gram = z.Transposed().MatMul(z);  // d x d
  Tensor gram_inv = linalg::SolveSpd(gram, Tensor::Eye(d), ridge);
  inv.zt_pinv = z.MatMul(gram_inv);  // n x d
  // A_p J = (I - (Zᵀ)† Zᵀ) 1 = 1 - (Zᵀ)† (Zᵀ 1).
  Tensor zt_ones = z.ColSums().Transposed();  // d x 1, = Zᵀ 1
  Tensor proj_ones = inv.zt_pinv.MatMul(zt_ones);  // n x 1
  inv.ap_colsum = Tensor::Full(Shape{n, 1}, 1.0) - proj_ones;
  inv.ap_total = inv.ap_colsum.Sum();
  return inv;
}

Tensor RecoverP(const AttentionInverse& inv, const Tensor& s,
                PtStrategy strategy, const Tensor* h_ada) {
  const Index n = inv.z.rows();
  DIFFODE_CHECK_EQ(s.numel(), inv.z.cols());
  // b_p = (Zᵀ)† S_tᵀ as a row vector: s (1 x d) * zt_pinvᵀ (d x n).
  Tensor b = s.Reshaped(Shape{1, inv.z.cols()})
                 .MatMul(inv.zt_pinv.Transposed());  // 1 x n
  switch (strategy) {
    case PtStrategy::kMinNorm:
      return b;
    case PtStrategy::kAdaH: {
      DIFFODE_CHECK(h_ada != nullptr);
      DIFFODE_CHECK_EQ(h_ada->numel(), n);
      // p = b + h A_pᵀ; A_p is symmetric so compute h A_p directly:
      // (h A_p)_j = h_j - (h (Zᵀ)†) (Zᵀ)_j.
      Tensor h_row = h_ada->Reshaped(Shape{1, n});
      Tensor h_proj = h_row.MatMul(inv.zt_pinv)  // 1 x d
                          .MatMul(inv.z.Transposed());  // 1 x n
      return b + h_row - h_proj;
    }
    case PtStrategy::kMaxHoyer: {
      // Eq. 32: p = b - (Σb - 1) / (J A_p J) * (A_p J)ᵀ.
      if (std::fabs(inv.ap_total) < 1e-12) return b;  // 1 ∈ range(Z)
      const Scalar coeff = (b.Sum() - 1.0) / inv.ap_total;
      Tensor correction = inv.ap_colsum.Transposed() * coeff;  // 1 x n
      return b - correction;
    }
    case PtStrategy::kExactKkt: {
      Tensor exact = MaxHoyerExactKkt(inv, s);
      if (exact.numel() == n) return exact;
      // Fall back to the relaxed solution when the search finds nothing.
      return RecoverP(inv, s, PtStrategy::kMaxHoyer, nullptr);
    }
  }
  DIFFODE_CHECK(false);
  return b;
}

Tensor RecoverZ(const AttentionInverse& inv, const Tensor& p,
                const Tensor& h2) {
  const Index n = inv.z.rows();
  const Index d = inv.z.cols();
  DIFFODE_CHECK_EQ(p.numel(), n);
  DIFFODE_CHECK_EQ(h2.numel(), n);
  const Scalar pp = p.Dot(p);
  DIFFODE_CHECK_GT(pp, 0.0);
  const Scalar c = p.Dot(h2) / pp;
  // a_h = c p - 1 (row vector), z = sqrt(d) a_h (Zᵀ)†.
  Tensor a_h = p.Reshaped(Shape{1, n}) * c - Tensor::Full(Shape{1, n}, 1.0);
  return a_h.MatMul(inv.zt_pinv) * std::sqrt(static_cast<Scalar>(d));
}

Tensor RecoverZReference(const Tensor& z, const Tensor& p, const Tensor& h2) {
  const Index n = z.rows();
  const Index d = z.cols();
  DIFFODE_CHECK_EQ(p.numel(), n);
  // M = J_{n,1} p - I_n.
  Tensor m(Shape{n, n});
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) m.at(i, j) = p[j] - (i == j ? 1.0 : 0.0);
  }
  Tensor m_pinv = linalg::PInverse(m);
  Tensor proj = Tensor::Eye(n) - m.MatMul(m_pinv);  // I - M M†
  Tensor a_h = h2.Reshaped(Shape{1, n}).MatMul(proj) -
               Tensor::Full(Shape{1, n}, 1.0);
  Tensor zt_pinv = linalg::PInverse(z.Transposed());  // n x d
  return a_h.MatMul(zt_pinv) * std::sqrt(static_cast<Scalar>(d));
}

Tensor MaxHoyerExactKkt(const AttentionInverse& inv, const Tensor& s) {
  const Index n = inv.z.rows();
  DIFFODE_CHECK_LE(n, 20);
  Tensor b = s.Reshaped(Shape{1, inv.z.cols()})
                 .MatMul(inv.zt_pinv.Transposed());  // 1 x n
  // A_p (n x n), built explicitly for the small-n oracle.
  Tensor ap = Tensor::Eye(n) - inv.zt_pinv.MatMul(inv.z.Transposed());
  const Tensor aj = inv.ap_colsum;  // A_p J, n x 1
  const Scalar jaj = inv.ap_total;
  constexpr Scalar kTol = 1e-9;

  Tensor best;
  Scalar best_obj = -1.0;
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    // Active set: indices forced to p_i = 0 (mu_i may be non-zero).
    std::vector<Index> active;
    for (Index i = 0; i < n; ++i)
      if (mask & (std::uint64_t{1} << i)) active.push_back(i);
    const Index k = static_cast<Index>(active.size());
    if (k == n) continue;  // all-zero p cannot sum to 1
    // Stationarity gives q = A_p h = -(lambda * A_p J + A_p mu) / 2 and
    // p = b + q. Unknowns: lambda and mu_active, fixed by
    //   sum(p) = 1   and   p_i = 0 for i in the active set.
    const Index dim = 1 + k;
    Tensor lhs(Shape{dim, dim});
    Tensor rhs(Shape{dim, 1});
    // Row 0: sum(p) = 1 -> (lambda jaj + sum_i (A_p mu)_i) / 2 = sum(b) - 1.
    lhs.at(0, 0) = jaj / 2.0;
    for (Index c = 0; c < k; ++c) {
      // sum over rows of column active[c] of A_p = (A_p J)_{active[c]}
      // because A_p is symmetric.
      lhs.at(0, 1 + c) = aj.at(active[static_cast<std::size_t>(c)], 0) / 2.0;
    }
    rhs.at(0, 0) = b.Sum() - 1.0;
    // Rows for p_i = 0, i in active: b_i = (lambda (A_p J)_i + (A_p mu)_i)/2.
    for (Index r = 0; r < k; ++r) {
      const Index i = active[static_cast<std::size_t>(r)];
      lhs.at(1 + r, 0) = aj.at(i, 0) / 2.0;
      for (Index c = 0; c < k; ++c) {
        const Index j = active[static_cast<std::size_t>(c)];
        lhs.at(1 + r, 1 + c) = ap.at(i, j) / 2.0;
      }
      rhs.at(1 + r, 0) = b.at(0, i);
    }
    // The system can be singular for degenerate active sets; skip those.
    bool singular = false;
    Tensor sol;
    {
      // Detect singularity by checking the pivots via a rank test first.
      // (Solve aborts on singular input, so guard with a determinant-free
      // heuristic: attempt Cholesky-free LU on a copy.)
      Tensor check = lhs;
      const Index dn = dim;
      for (Index col = 0; col < dn && !singular; ++col) {
        Index piv = col;
        Scalar bestv = std::fabs(check.at(col, col));
        for (Index i2 = col + 1; i2 < dn; ++i2) {
          if (std::fabs(check.at(i2, col)) > bestv) {
            bestv = std::fabs(check.at(i2, col));
            piv = i2;
          }
        }
        if (bestv < 1e-12) {
          singular = true;
          break;
        }
        if (piv != col)
          for (Index j2 = 0; j2 < dn; ++j2)
            std::swap(check.at(col, j2), check.at(piv, j2));
        for (Index i2 = col + 1; i2 < dn; ++i2) {
          const Scalar f = check.at(i2, col) / check.at(col, col);
          for (Index j2 = col; j2 < dn; ++j2)
            check.at(i2, j2) -= f * check.at(col, j2);
        }
      }
      if (singular) continue;
      sol = linalg::Solve(lhs, rhs);
    }
    const Scalar lambda = sol.at(0, 0);
    // Dual feasibility: mu >= 0.
    bool dual_ok = true;
    for (Index c = 0; c < k; ++c)
      if (sol.at(1 + c, 0) < -kTol) dual_ok = false;
    if (!dual_ok) continue;
    // Assemble p = b - (lambda A_p J + A_p mu) / 2.
    Tensor p(Shape{1, n});
    for (Index i = 0; i < n; ++i) {
      Scalar corr = lambda * aj.at(i, 0);
      for (Index c = 0; c < k; ++c)
        corr += ap.at(i, active[static_cast<std::size_t>(c)]) *
                sol.at(1 + c, 0);
      p.at(0, i) = b.at(0, i) - corr / 2.0;
    }
    // Primal feasibility.
    bool feasible = std::fabs(p.Sum() - 1.0) < 1e-6;
    for (Index i = 0; i < n && feasible; ++i)
      if (p.at(0, i) < -1e-7) feasible = false;
    if (!feasible) continue;
    // Ill-conditioned active sets (more constraints than the affine set's
    // dimension) can pass the pivot check yet destroy the reconstruction
    // through cancellation; verify p Z = S directly.
    Tensor s_rec = p.MatMul(inv.z);
    const Scalar s_scale = 1.0 + s.MaxAbs();
    if ((s_rec - s.Reshaped(s_rec.shape())).MaxAbs() > 1e-6 * s_scale)
      continue;
    const Scalar obj = p.Dot(p);
    if (obj > best_obj) {
      best_obj = obj;
      best = p;
    }
  }
  return best;
}

}  // namespace diffode::sparsity
