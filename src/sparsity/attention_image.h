#ifndef DIFFODE_SPARSITY_ATTENTION_IMAGE_H_
#define DIFFODE_SPARSITY_ATTENTION_IMAGE_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace diffode::sparsity {

// Renders a stack of attention rows (each 1 x n) as a gray-scale PGM image,
// one image row per attention vector — the machine-readable counterpart of
// the paper's Fig. 3 maps. |p| is normalized per image; `magnify` scales
// each logical cell to a magnify x magnify pixel block.
bool WriteAttentionPgm(const std::vector<Tensor>& rows,
                       const std::string& path, int magnify = 4);

}  // namespace diffode::sparsity

#endif  // DIFFODE_SPARSITY_ATTENTION_IMAGE_H_
