#include "sparsity/hoyer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/kernels.h"

namespace diffode::sparsity {

Scalar Hoyer(const Tensor& x) {
  const Index n = x.numel();
  DIFFODE_CHECK_GT(n, 1);
  const Scalar sqrt_n = std::sqrt(static_cast<Scalar>(n));
  const Scalar norm = x.Norm();
  if (norm == 0.0) return 0.0;
  return (sqrt_n - x.Sum() / norm) / (sqrt_n - 1.0);
}

Scalar HoyerAbs(const Tensor& x) {
  Tensor mags = Tensor::Uninit(x.shape());
  kernels::Map(x.numel(), x.data(), mags.data(),
               [](Scalar v) { return std::fabs(v); });
  return Hoyer(mags);
}

Index EffectiveSupport(const Tensor& x, Scalar mass) {
  std::vector<Scalar> mags(static_cast<std::size_t>(x.numel()));
  for (Index i = 0; i < x.numel(); ++i)
    mags[static_cast<std::size_t>(i)] = std::fabs(x[i]);
  std::sort(mags.begin(), mags.end(), std::greater<Scalar>());
  Scalar total = 0.0;
  for (Scalar m : mags) total += m;
  if (total == 0.0) return 0;
  Scalar acc = 0.0;
  for (std::size_t k = 0; k < mags.size(); ++k) {
    acc += mags[k];
    if (acc >= mass * total) return static_cast<Index>(k + 1);
  }
  return x.numel();
}

}  // namespace diffode::sparsity
