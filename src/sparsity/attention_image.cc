#include "sparsity/attention_image.h"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace diffode::sparsity {

bool WriteAttentionPgm(const std::vector<Tensor>& rows,
                       const std::string& path, int magnify) {
  if (rows.empty() || magnify < 1) return false;
  const Index n = rows.front().numel();
  for (const auto& r : rows)
    if (r.numel() != n) return false;
  Scalar max_abs = 1e-12;
  for (const auto& r : rows) max_abs = std::max(max_abs, r.MaxAbs());
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const Index width = n * magnify;
  const Index height = static_cast<Index>(rows.size()) * magnify;
  out << "P5\n" << width << " " << height << "\n255\n";
  for (const auto& r : rows) {
    std::string line(static_cast<std::size_t>(width), '\0');
    for (Index j = 0; j < n; ++j) {
      // Dark = large attention (as in the paper's gray maps).
      const Scalar v = std::fabs(r[j]) / max_abs;
      const char pixel = static_cast<char>(
          255 - static_cast<int>(std::round(v * 255.0)));
      for (int m = 0; m < magnify; ++m)
        line[static_cast<std::size_t>(j * magnify + m)] = pixel;
    }
    for (int m = 0; m < magnify; ++m) out.write(line.data(), width);
  }
  return bool(out);
}

}  // namespace diffode::sparsity
