#include "train/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "sparsity/attention_image.h"
#include "tensor/random.h"

namespace diffode::train {
namespace {

TEST(RegressionMetricsTest, KnownErrors) {
  RegressionMetrics metrics(2);
  Tensor pred = Tensor::FromRows(2, 2, {1, 2, 3, 4});
  Tensor target = Tensor::FromRows(2, 2, {0, 2, 3, 1});
  Tensor mask = Tensor::Ones(Shape{2, 2});
  metrics.Add(pred, target, mask);
  // Errors: 1, 0, 0, 3.
  EXPECT_EQ(metrics.count(), 4);
  EXPECT_NEAR(metrics.Mae(), 1.0, 1e-12);
  EXPECT_NEAR(metrics.Rmse(), std::sqrt(10.0 / 4.0), 1e-12);
  EXPECT_NEAR(metrics.ChannelMae(0), 0.5, 1e-12);
  EXPECT_NEAR(metrics.ChannelMae(1), 1.5, 1e-12);
  EXPECT_NEAR(metrics.ChannelRmse(1), std::sqrt(4.5), 1e-12);
}

TEST(RegressionMetricsTest, MaskExcludesEntries) {
  RegressionMetrics metrics(1);
  Tensor pred = Tensor::FromRows(2, 1, {10, 1});
  Tensor target = Tensor::FromRows(2, 1, {0, 0});
  Tensor mask = Tensor::FromRows(2, 1, {0, 1});  // huge error masked out
  metrics.Add(pred, target, mask);
  EXPECT_EQ(metrics.count(), 1);
  EXPECT_NEAR(metrics.Mae(), 1.0, 1e-12);
}

TEST(RegressionMetricsTest, EmptyIsZero) {
  RegressionMetrics metrics(3);
  EXPECT_EQ(metrics.count(), 0);
  EXPECT_EQ(metrics.Mae(), 0.0);
  EXPECT_EQ(metrics.Rmse(), 0.0);
}

TEST(RegressionMetricsTest, ReportMentionsChannels) {
  RegressionMetrics metrics(2);
  metrics.Add(Tensor::Ones(Shape{1, 2}), Tensor::Zeros(Shape{1, 2}),
              Tensor::Ones(Shape{1, 2}));
  const std::string report = metrics.Report();
  EXPECT_NE(report.find("ch0"), std::string::npos);
  EXPECT_NE(report.find("ch1"), std::string::npos);
}

TEST(ConfusionMatrixTest, AccuracyPrecisionRecall) {
  ConfusionMatrix cm(2);
  // 3 true positives, 1 false positive, 2 true negatives, 1 false negative.
  for (int i = 0; i < 3; ++i) cm.Add(1, 1);
  cm.Add(1, 0);
  for (int i = 0; i < 2; ++i) cm.Add(0, 0);
  cm.Add(0, 1);
  EXPECT_EQ(cm.count(), 7);
  EXPECT_NEAR(cm.Accuracy(), 5.0 / 7.0, 1e-12);
  EXPECT_NEAR(cm.Precision(1), 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(cm.Recall(1), 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(cm.F1(1), 0.75, 1e-12);
}

TEST(ConfusionMatrixTest, MacroF1AveragesClasses) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  cm.Add(1, 1);
  cm.Add(2, 2);
  EXPECT_NEAR(cm.MacroF1(), 1.0, 1e-12);
  cm.Add(0, 1);
  EXPECT_LT(cm.MacroF1(), 1.0);
}

TEST(ConfusionMatrixTest, EmptyClassScoresZeroNotNan) {
  ConfusionMatrix cm(2);
  cm.Add(0, 0);
  EXPECT_EQ(cm.Precision(1), 0.0);
  EXPECT_EQ(cm.Recall(1), 0.0);
  EXPECT_EQ(cm.F1(1), 0.0);
}

TEST(AttentionImageTest, WritesValidPgm) {
  Rng rng(1);
  std::vector<Tensor> rows;
  for (int i = 0; i < 5; ++i)
    rows.push_back(rng.UniformTensor(Shape{1, 8}, 0.0, 1.0));
  const std::string path = ::testing::TempDir() + "/attn.pgm";
  ASSERT_TRUE(sparsity::WriteAttentionPgm(rows, path, 2));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  int w = 0, h = 0, maxval = 0;
  in >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 16);
  EXPECT_EQ(h, 10);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> pixels(static_cast<std::size_t>(w * h));
  in.read(pixels.data(), w * h);
  EXPECT_EQ(in.gcount(), w * h);
  std::remove(path.c_str());
}

TEST(AttentionImageTest, RejectsMismatchedRows) {
  std::vector<Tensor> rows = {Tensor::Ones(Shape{1, 4}),
                              Tensor::Ones(Shape{1, 5})};
  EXPECT_FALSE(
      sparsity::WriteAttentionPgm(rows, ::testing::TempDir() + "/bad.pgm"));
  EXPECT_FALSE(sparsity::WriteAttentionPgm({}, "/tmp/never.pgm"));
}

}  // namespace
}  // namespace diffode::train
