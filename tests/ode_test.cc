#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "gradcheck.h"
#include "ode/diff_integrator.h"
#include "ode/solver.h"

namespace diffode::ode {
namespace {

// dy/dt = -y, y(0) = 1 -> y(t) = exp(-t).
OdeFunc ExpDecay() {
  return [](Scalar, const Tensor& y) { return -y; };
}

// dy/dt = cos(t), y(0) = 0 -> y(t) = sin(t).
OdeFunc Cosine() {
  return [](Scalar t, const Tensor& y) {
    return Tensor::Full(y.shape(), std::cos(t));
  };
}

// 2-D rotation: dy/dt = [[0,-1],[1,0]] y; preserves the norm.
OdeFunc Rotation() {
  return [](Scalar, const Tensor& y) {
    Tensor d(y.shape());
    d[0] = -y[1];
    d[1] = y[0];
    return d;
  };
}

Scalar SolveExpDecay(Method method, Scalar step) {
  SolveOptions options;
  options.method = method;
  options.step = step;
  Tensor y0 = Tensor::Ones(Shape{1, 1});
  return Integrate(ExpDecay(), y0, 0.0, 1.0, options).item();
}

TEST(OdeTest, EulerFirstOrderConvergence) {
  const Scalar exact = std::exp(-1.0);
  const Scalar e1 = std::fabs(SolveExpDecay(Method::kEuler, 0.1) - exact);
  const Scalar e2 = std::fabs(SolveExpDecay(Method::kEuler, 0.05) - exact);
  // Halving the step should roughly halve the error.
  EXPECT_NEAR(e1 / e2, 2.0, 0.3);
}

TEST(OdeTest, MidpointSecondOrderConvergence) {
  const Scalar exact = std::exp(-1.0);
  const Scalar e1 = std::fabs(SolveExpDecay(Method::kMidpoint, 0.1) - exact);
  const Scalar e2 = std::fabs(SolveExpDecay(Method::kMidpoint, 0.05) - exact);
  EXPECT_NEAR(e1 / e2, 4.0, 0.8);
}

TEST(OdeTest, Rk4FourthOrderConvergence) {
  const Scalar exact = std::exp(-1.0);
  const Scalar e1 = std::fabs(SolveExpDecay(Method::kRk4, 0.2) - exact);
  const Scalar e2 = std::fabs(SolveExpDecay(Method::kRk4, 0.1) - exact);
  EXPECT_NEAR(e1 / e2, 16.0, 6.0);
}

TEST(OdeTest, Rk4HighAccuracy) {
  EXPECT_NEAR(SolveExpDecay(Method::kRk4, 0.05), std::exp(-1.0), 1e-7);
}

TEST(OdeTest, Dopri5MeetsTolerance) {
  SolveOptions options;
  options.method = Method::kDopri5;
  options.rtol = 1e-8;
  options.atol = 1e-10;
  SolveStats stats;
  Tensor y = Integrate(ExpDecay(), Tensor::Ones(Shape{1, 1}), 0.0, 2.0,
                       options, &stats);
  EXPECT_NEAR(y.item(), std::exp(-2.0), 1e-7);
  EXPECT_GT(stats.steps, 0);
}

TEST(OdeTest, Dopri5AdaptsStepCount) {
  SolveOptions loose;
  loose.method = Method::kDopri5;
  loose.rtol = 1e-3;
  loose.atol = 1e-5;
  SolveOptions tight = loose;
  tight.rtol = 1e-10;
  tight.atol = 1e-12;
  SolveStats s_loose, s_tight;
  Integrate(Rotation(), Tensor::FromVector({1.0, 0.0}), 0.0, 6.0, loose,
            &s_loose);
  Integrate(Rotation(), Tensor::FromVector({1.0, 0.0}), 0.0, 6.0, tight,
            &s_tight);
  EXPECT_GT(s_tight.rhs_evals, s_loose.rhs_evals);
}

TEST(OdeTest, ImplicitAdamsAccuracy) {
  SolveOptions options;
  options.method = Method::kImplicitAdams;
  options.step = 0.02;
  Tensor y = Integrate(ExpDecay(), Tensor::Ones(Shape{1, 1}), 0.0, 1.0,
                       options);
  EXPECT_NEAR(y.item(), std::exp(-1.0), 1e-6);
}

TEST(OdeTest, ImplicitAdamsNonAutonomous) {
  SolveOptions options;
  options.method = Method::kImplicitAdams;
  options.step = 0.01;
  Tensor y = Integrate(Cosine(), Tensor(Shape{1, 1}), 0.0, 2.0, options);
  EXPECT_NEAR(y.item(), std::sin(2.0), 1e-6);
}

TEST(OdeTest, BackwardIntegration) {
  SolveOptions options;
  options.method = Method::kRk4;
  options.step = 0.05;
  // Integrate forward then back: should recover the start.
  Tensor y1 = Integrate(ExpDecay(), Tensor::Ones(Shape{1, 1}), 0.0, 1.0,
                        options);
  Tensor y0 = Integrate(ExpDecay(), y1, 1.0, 0.0, options);
  EXPECT_NEAR(y0.item(), 1.0, 1e-7);
}

TEST(OdeTest, RotationPreservesNormDopri5) {
  SolveOptions options;
  options.method = Method::kDopri5;
  options.rtol = 1e-9;
  options.atol = 1e-11;
  Tensor y = Integrate(Rotation(), Tensor::FromVector({0.6, 0.8}), 0.0, 10.0,
                       options);
  EXPECT_NEAR(y.Norm(), 1.0, 1e-6);
  // y(t) = rotation by t of y(0).
  const Scalar c = std::cos(10.0), s = std::sin(10.0);
  EXPECT_NEAR(y[0], 0.6 * c - 0.8 * s, 1e-6);
  EXPECT_NEAR(y[1], 0.6 * s + 0.8 * c, 1e-6);
}

TEST(OdeTest, IntegrateDenseMatchesPointwise) {
  SolveOptions options;
  options.method = Method::kRk4;
  options.step = 0.05;
  std::vector<Scalar> times = {0.0, 0.3, 0.7, 1.5};
  auto dense = IntegrateDense(ExpDecay(), Tensor::Ones(Shape{1, 1}), times,
                              options);
  ASSERT_EQ(dense.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_NEAR(dense[i].item(), std::exp(-times[i]), 1e-6);
}

TEST(OdeTest, ZeroLengthIntervalIsIdentity) {
  Tensor y0 = Tensor::FromVector({2.0, 3.0});
  Tensor y = Integrate(ExpDecay(), y0, 1.0, 1.0);
  EXPECT_EQ((y - y0).MaxAbs(), 0.0);
}

// ---------------------------------------------------------------------------
// Differentiable integrator.
// ---------------------------------------------------------------------------

TEST(DiffIntegratorTest, MatchesPlainSolver) {
  DiffSolveOptions options;
  options.method = DiffMethod::kRk4;
  options.step = 0.05;
  ode::DiffOdeFunc f = [](Scalar, const ag::Var& y) { return ag::Neg(y); };
  ag::Var y0 = ag::Constant(Tensor::Ones(Shape{1, 1}));
  ag::Var y1 = IntegrateVar(f, y0, 0.0, 1.0, options);
  EXPECT_NEAR(y1.value().item(), std::exp(-1.0), 1e-6);
}

TEST(DiffIntegratorTest, GradientThroughLinearDecay) {
  // y' = -k y; y(1) = y0 exp(-k). d y(1)/d y0 = exp(-k), checked by tape.
  ag::Var k = ag::Param(Tensor::Full(Shape{1, 1}, 0.8));
  ag::Var y0 = ag::Param(Tensor::Full(Shape{1, 1}, 2.0));
  auto scalar_fn = [&] {
    ode::DiffOdeFunc f = [&](Scalar, const ag::Var& y) {
      return ag::Neg(ag::Mul(k, y));
    };
    DiffSolveOptions options;
    options.method = DiffMethod::kRk4;
    options.step = 0.1;
    return ag::Sum(IntegrateVar(f, y0, 0.0, 1.0, options));
  };
  EXPECT_LT(diffode::testing::MaxGradError(y0, scalar_fn), 1e-6);
  EXPECT_LT(diffode::testing::MaxGradError(k, scalar_fn), 1e-6);
}

TEST(DiffIntegratorTest, DenseGradientThroughMultiplePoints) {
  ag::Var k = ag::Param(Tensor::Full(Shape{1, 1}, 0.5));
  auto scalar_fn = [&] {
    ode::DiffOdeFunc f = [&](Scalar, const ag::Var& y) {
      return ag::Neg(ag::Mul(k, y));
    };
    DiffSolveOptions options;
    options.method = DiffMethod::kMidpoint;
    options.step = 0.1;
    auto states = IntegrateVarDense(f, ag::Constant(Tensor::Ones(Shape{1, 1})),
                                    {0.0, 0.5, 1.0, 2.0}, options);
    ag::Var acc = states[1];
    for (std::size_t i = 2; i < states.size(); ++i)
      acc = ag::Add(acc, states[i]);
    return ag::Sum(acc);
  };
  EXPECT_LT(diffode::testing::MaxGradError(k, scalar_fn), 1e-6);
}

TEST(DiffIntegratorTest, BackwardTimeIntegration) {
  ode::DiffOdeFunc f = [](Scalar, const ag::Var& y) { return ag::Neg(y); };
  DiffSolveOptions options;
  options.method = DiffMethod::kRk4;
  options.step = 0.05;
  ag::Var y0 = ag::Constant(Tensor::Ones(Shape{1, 1}));
  ag::Var back = IntegrateVar(f, y0, 0.0, -1.0, options);
  EXPECT_NEAR(back.value().item(), std::exp(1.0), 1e-5);
}

}  // namespace
}  // namespace diffode::ode
