#include "linalg/eigen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hippo/hippo.h"
#include "linalg/lu.h"
#include "tensor/random.h"

namespace diffode::linalg {
namespace {

TEST(EigenTest, TriangularMatrixEigenvaluesAreDiagonal) {
  Tensor a = Tensor::FromRows(3, 3, {2, 5, 1, 0, -3, 4, 0, 0, 7});
  auto eig = Eigenvalues(a);
  std::vector<Scalar> real;
  for (const auto& l : eig) {
    EXPECT_NEAR(l.imag(), 0.0, 1e-8);
    real.push_back(l.real());
  }
  std::sort(real.begin(), real.end());
  ASSERT_EQ(real.size(), 3u);
  EXPECT_NEAR(real[0], -3.0, 1e-8);
  EXPECT_NEAR(real[1], 2.0, 1e-8);
  EXPECT_NEAR(real[2], 7.0, 1e-8);
}

TEST(EigenTest, RotationMatrixHasComplexPair) {
  const Scalar theta = 0.7;
  Tensor a = Tensor::FromRows(
      2, 2, {std::cos(theta), -std::sin(theta), std::sin(theta),
             std::cos(theta)});
  auto eig = Eigenvalues(a);
  ASSERT_EQ(eig.size(), 2u);
  for (const auto& l : eig) {
    EXPECT_NEAR(std::abs(l), 1.0, 1e-8);
    EXPECT_NEAR(std::fabs(l.imag()), std::sin(theta), 1e-8);
  }
}

TEST(EigenTest, TraceAndDeterminantIdentities) {
  Rng rng(1);
  Tensor a = rng.NormalTensor(Shape{6, 6});
  auto eig = Eigenvalues(a);
  ASSERT_EQ(eig.size(), 6u);
  std::complex<Scalar> sum = 0.0, prod = 1.0;
  for (const auto& l : eig) {
    sum += l;
    prod *= l;
  }
  Scalar trace = 0.0;
  for (Index i = 0; i < 6; ++i) trace += a.at(i, i);
  EXPECT_NEAR(sum.real(), trace, 1e-6);
  EXPECT_NEAR(sum.imag(), 0.0, 1e-6);  // complex pairs conjugate
}

TEST(EigenTest, HippoLegsSpectrum) {
  // LegS A is lower triangular with diagonal -(i+1): eigenvalues are known
  // exactly — this is the stiffness fact behind DESIGN.md's timescale.
  Tensor a = hippo::MakeLegsA(8);
  auto eig = Eigenvalues(a);
  std::vector<Scalar> real;
  for (const auto& l : eig) real.push_back(l.real());
  std::sort(real.begin(), real.end());
  for (Index i = 0; i < 8; ++i)
    EXPECT_NEAR(real[static_cast<std::size_t>(i)],
                -static_cast<Scalar>(8 - i), 1e-6);
  EXPECT_NEAR(SpectralAbscissa(a), -1.0, 1e-6);
  EXPECT_NEAR(SpectralRadius(a), 8.0, 1e-6);
}

TEST(EigenTest, SpectralAbscissaDetectsInstability) {
  Tensor stable = Tensor::FromRows(2, 2, {-1, 0, 0, -2});
  Tensor unstable = Tensor::FromRows(2, 2, {0.5, 0, 0, -2});
  EXPECT_LT(SpectralAbscissa(stable), 0.0);
  EXPECT_GT(SpectralAbscissa(unstable), 0.0);
}

TEST(EigenSymTest, ReconstructsMatrix) {
  Rng rng(2);
  Tensor m = rng.NormalTensor(Shape{5, 5});
  Tensor a = (m + m.Transposed()) * 0.5;
  SymmetricEigen eig = EigenSym(a);
  // V diag(w) Vᵀ == A.
  Tensor vd = eig.eigenvectors;
  for (Index j = 0; j < 5; ++j)
    for (Index i = 0; i < 5; ++i) vd.at(i, j) *= eig.eigenvalues[j];
  EXPECT_LT((vd.MatMul(eig.eigenvectors.Transposed()) - a).MaxAbs(), 1e-8);
  // Eigenvalues ascending.
  for (Index j = 1; j < 5; ++j)
    EXPECT_GE(eig.eigenvalues[j], eig.eigenvalues[j - 1]);
  // Orthonormal eigenvectors.
  Tensor vtv = eig.eigenvectors.Transposed().MatMul(eig.eigenvectors);
  EXPECT_LT((vtv - Tensor::Eye(5)).MaxAbs(), 1e-9);
}

TEST(EigenSymTest, KnownSpectrum) {
  Tensor a = Tensor::FromRows(2, 2, {2, 1, 1, 2});
  SymmetricEigen eig = EigenSym(a);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-10);
}

TEST(EigenSymTest, ProjectorSpectrumZeroOne) {
  // A_p = I - (Zᵀ)† Zᵀ is an orthogonal projector: eigenvalues in {0, 1}
  // with multiplicity (n - d) at 1.
  Rng rng(3);
  Tensor z = rng.NormalTensor(Shape{9, 3});
  Tensor gram_inv = Inverse(z.Transposed().MatMul(z));
  Tensor proj = Tensor::Eye(9) - z.MatMul(gram_inv).MatMul(z.Transposed());
  SymmetricEigen eig = EigenSym(proj);
  Index ones = 0, zeros = 0;
  for (Index i = 0; i < 9; ++i) {
    if (std::fabs(eig.eigenvalues[i] - 1.0) < 1e-8) ++ones;
    if (std::fabs(eig.eigenvalues[i]) < 1e-8) ++zeros;
  }
  EXPECT_EQ(ones, 6);
  EXPECT_EQ(zeros, 3);
}

}  // namespace
}  // namespace diffode::linalg
