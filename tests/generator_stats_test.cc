// Statistical sanity checks on the synthetic dataset generators: observed
// rates, channel structure, periodicity and class balance must match the
// processes DESIGN.md says they implement.

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "data/splits.h"

namespace diffode::data {
namespace {

TEST(GeneratorStatsTest, PoissonThinningKeepsExpectedFraction) {
  SyntheticPeriodicConfig config;
  config.num_series = 300;
  config.grid_points = 40;
  config.keep_rate = 0.7;
  Dataset ds = MakeSyntheticPeriodic(config);
  Scalar total = 0.0;
  Index count = 0;
  for (const auto& s : ds.train) {
    total += static_cast<Scalar>(s.length());
    ++count;
  }
  const Scalar mean_kept = total / count / config.grid_points;
  EXPECT_NEAR(mean_kept, 0.7, 0.05);
}

TEST(GeneratorStatsTest, SyntheticClassBalanceMatchesThreshold) {
  // y = 1[x(5) > 0.5] with x in [-1, 1]: the positive class is the rarer
  // one but must be well represented.
  SyntheticPeriodicConfig config;
  config.num_series = 600;
  Dataset ds = MakeSyntheticPeriodic(config);
  Index positives = 0, total = 0;
  for (const auto* split : {&ds.train, &ds.val, &ds.test}) {
    for (const auto& s : *split) {
      positives += s.label;
      ++total;
    }
  }
  const Scalar rate = static_cast<Scalar>(positives) / total;
  EXPECT_GT(rate, 0.10);
  EXPECT_LT(rate, 0.50);
}

TEST(GeneratorStatsTest, UshcnTemperatureSeasonality) {
  // Average tmax in "summer" (mid-year) must exceed "winter" (year start)
  // given the -cos annual cycle.
  UshcnLikeConfig config;
  config.num_stations = 40;
  config.num_days = 365;
  config.keep_time_rate = 1.0;
  config.drop_rate = 0.0;
  Dataset ds = MakeUshcnLike(config);
  Scalar winter = 0.0, summer = 0.0;
  Scalar wn = 0.0, sn = 0.0;
  for (const auto& s : ds.train) {
    for (Index i = 0; i < s.length(); ++i) {
      const Scalar day = s.times[static_cast<std::size_t>(i)];
      const Scalar tmax = s.values.at(i, 4);
      if (day < 60.0) {
        winter += tmax;
        wn += 1.0;
      } else if (day > 150.0 && day < 210.0) {
        summer += tmax;
        sn += 1.0;
      }
    }
  }
  ASSERT_GT(wn, 0.0);
  ASSERT_GT(sn, 0.0);
  EXPECT_GT(summer / sn, winter / wn + 5.0);
}

TEST(GeneratorStatsTest, UshcnAnomalyPersistence) {
  // The AR(1) weather anomaly makes day-to-day tmax differences much
  // smaller than differences across 30 days (beyond the seasonal trend).
  UshcnLikeConfig config;
  config.num_stations = 20;
  config.num_days = 200;
  config.keep_time_rate = 1.0;
  config.drop_rate = 0.0;
  Dataset ds = MakeUshcnLike(config);
  Scalar adjacent = 0.0, distant = 0.0;
  Scalar an = 0.0, dn = 0.0;
  for (const auto& s : ds.train) {
    for (Index i = 1; i < s.length(); ++i) {
      const Scalar d = std::fabs(s.values.at(i, 4) - s.values.at(i - 1, 4));
      adjacent += d;
      an += 1.0;
    }
    for (Index i = 30; i < s.length(); i += 7) {
      const Scalar d = std::fabs(s.values.at(i, 4) - s.values.at(i - 30, 4));
      distant += d;
      dn += 1.0;
    }
  }
  EXPECT_LT(adjacent / an, distant / dn);
}

TEST(GeneratorStatsTest, PhysioNetVitalChannelsObservedMoreOften) {
  PhysioNetLikeConfig config;
  config.num_patients = 40;
  config.num_channels = 16;
  Dataset ds = MakePhysioNetLike(config);
  // First quarter of channels are "vitals" with rate 0.8; the rest are labs
  // with rates <= 0.4.
  Tensor counts(Shape{1, 16});
  Scalar rows = 0.0;
  for (const auto& s : ds.train) {
    rows += static_cast<Scalar>(s.length());
    for (Index i = 0; i < s.length(); ++i)
      for (Index c = 0; c < 16; ++c) counts.at(0, c) += s.mask.at(i, c);
  }
  Scalar vitals = 0.0, labs = 0.0;
  for (Index c = 0; c < 4; ++c) vitals += counts.at(0, c) / rows;
  for (Index c = 4; c < 16; ++c) labs += counts.at(0, c) / rows;
  EXPECT_GT(vitals / 4.0, labs / 12.0);
}

TEST(GeneratorStatsTest, TrafficRushHourPeaks) {
  LargeStLikeConfig config;
  config.num_sensors = 20;
  config.hours_per_sensor = 24 * 7;
  config.keep_rate = 1.0;
  Dataset ds = MakeLargeStLike(config);
  Scalar rush = 0.0, night = 0.0;
  Scalar rn = 0.0, nn = 0.0;
  for (const auto& s : ds.train) {
    for (Index i = 0; i < s.length(); ++i) {
      const int hour = static_cast<int>(s.times[static_cast<std::size_t>(i)]) % 24;
      if (hour == 8 || hour == 18) {
        rush += s.values.at(i, 0);
        rn += 1.0;
      } else if (hour >= 1 && hour <= 4) {
        night += s.values.at(i, 0);
        nn += 1.0;
      }
    }
  }
  EXPECT_GT(rush / rn, 1.5 * (night / nn));
}

TEST(GeneratorStatsTest, LorenzLabelsBalancedByMedianSplit) {
  DynamicalSystemConfig config;
  config.dim = 8;
  config.trajectory_steps = 2000;
  config.window = 25;
  Dataset ds = MakeLorenz96(config);
  Index positives = 0, total = 0;
  for (const auto* split : {&ds.train, &ds.val, &ds.test}) {
    for (const auto& s : *split) {
      positives += s.label;
      ++total;
    }
  }
  const Scalar rate = static_cast<Scalar>(positives) / total;
  EXPECT_NEAR(rate, 0.5, 0.06);  // median split
}

TEST(GeneratorStatsTest, NormalizationIsInvertibleViaStats) {
  UshcnLikeConfig config;
  config.num_stations = 15;
  config.num_days = 60;
  Dataset ds = MakeUshcnLike(config);
  Dataset original = ds;  // keep a copy to undo against
  FeatureStats stats = NormalizeDataset(&ds);
  // De-normalize the first train sample and compare with the original.
  const auto& norm = ds.train.front();
  const auto& orig = original.train.front();
  for (Index i = 0; i < norm.length(); ++i)
    for (Index j = 0; j < 5; ++j)
      EXPECT_NEAR(norm.values.at(i, j) * stats.std.at(0, j) +
                      stats.mean.at(0, j),
                  orig.values.at(i, j), 1e-9);
}

}  // namespace
}  // namespace diffode::data
