#include "nn/layer_norm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.h"
#include "tensor/random.h"

namespace diffode::nn {
namespace {

using testing::MaxGradError;

TEST(LayerNormOpTest, RowsNormalized) {
  Rng rng(1);
  ag::Var x = ag::Constant(rng.NormalTensor(Shape{3, 6}, 5.0, 2.0));
  Tensor y = ag::LayerNormRows(x).value();
  for (Index i = 0; i < 3; ++i) {
    Scalar mean = 0.0, var = 0.0;
    for (Index j = 0; j < 6; ++j) mean += y.at(i, j);
    mean /= 6.0;
    for (Index j = 0; j < 6; ++j)
      var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    var /= 6.0;
    EXPECT_NEAR(mean, 0.0, 1e-10);
    EXPECT_NEAR(var, 1.0, 1e-4);
  }
}

TEST(LayerNormOpTest, ShiftAndScaleInvariance) {
  Rng rng(2);
  Tensor x = rng.NormalTensor(Shape{2, 5});
  Tensor y1 = ag::LayerNormRows(ag::Constant(x)).value();
  Tensor y2 = ag::LayerNormRows(ag::Constant(x * 3.0 + 7.0)).value();
  // Invariance is exact only up to the eps regularizer in the denominator.
  EXPECT_LT((y1 - y2).MaxAbs(), 5e-4);
}

TEST(LayerNormOpTest, GradCheck) {
  Rng rng(3);
  ag::Var x = ag::Param(rng.NormalTensor(Shape{2, 5}));
  ag::Var w = ag::Constant(rng.NormalTensor(Shape{2, 5}));
  EXPECT_LT(MaxGradError(
                x, [&] { return ag::Sum(ag::Mul(ag::LayerNormRows(x), w)); }),
            1e-5);
}

TEST(MulRowVecTest, ForwardAndGradients) {
  Rng rng(4);
  ag::Var m = ag::Param(rng.NormalTensor(Shape{3, 4}));
  ag::Var v = ag::Param(rng.NormalTensor(Shape{1, 4}));
  ag::Var out = ag::MulRowVec(m, v);
  for (Index i = 0; i < 3; ++i)
    for (Index j = 0; j < 4; ++j)
      EXPECT_NEAR(out.value().at(i, j),
                  m.value().at(i, j) * v.value().at(0, j), 1e-15);
  ag::Var w = ag::Constant(rng.NormalTensor(Shape{3, 4}));
  auto fn = [&] { return ag::Sum(ag::Mul(ag::MulRowVec(m, v), w)); };
  EXPECT_LT(MaxGradError(m, fn), 1e-6);
  EXPECT_LT(MaxGradError(v, fn), 1e-6);
}

TEST(LayerNormModuleTest, IdentityAtInitThenTrainable) {
  Rng rng(5);
  LayerNorm norm(4);
  ag::Var x = ag::Constant(rng.NormalTensor(Shape{2, 4}));
  // gain=1, bias=0 at init: module output equals the raw normalization.
  Tensor raw = ag::LayerNormRows(x).value();
  EXPECT_LT((norm.Forward(x).value() - raw).MaxAbs(), 1e-12);
  EXPECT_EQ(norm.NumParams(), 8);
  // Gradients reach gain and bias.
  ag::Var loss = ag::Mean(ag::Square(norm.Forward(x)));
  loss.Backward();
  for (auto& p : norm.Params()) EXPECT_GE(p.grad().MaxAbs(), 0.0);
}

}  // namespace
}  // namespace diffode::nn
