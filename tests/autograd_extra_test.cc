// Additional autograd coverage: trig ops, seeding, graph-structure edge
// cases, and requires_grad propagation rules.

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "gradcheck.h"
#include "tensor/random.h"

namespace diffode::ag {
namespace {

using testing::MaxGradError;

TEST(AutogradExtraTest, SinCosForward) {
  Tensor x = Tensor::FromRows(1, 3, {0.0, 1.0, -2.0});
  Var v = Constant(x);
  Tensor s = Sin(v).value();
  Tensor c = Cos(v).value();
  for (Index i = 0; i < 3; ++i) {
    EXPECT_NEAR(s[i], std::sin(x[i]), 1e-15);
    EXPECT_NEAR(c[i], std::cos(x[i]), 1e-15);
  }
}

TEST(AutogradExtraTest, SinCosGradients) {
  Rng rng(1);
  Var a = Param(rng.NormalTensor(Shape{2, 3}));
  Var w = Constant(rng.NormalTensor(Shape{2, 3}));
  EXPECT_LT(MaxGradError(a, [&] { return Sum(Mul(Sin(a), w)); }), 1e-6);
  EXPECT_LT(MaxGradError(a, [&] { return Sum(Mul(Cos(a), w)); }), 1e-6);
}

TEST(AutogradExtraTest, PythagoreanIdentityThroughTape) {
  Rng rng(2);
  Var a = Param(rng.NormalTensor(Shape{1, 5}));
  Var identity = Add(Square(Sin(a)), Square(Cos(a)));
  for (Index i = 0; i < 5; ++i)
    EXPECT_NEAR(identity.value()[i], 1.0, 1e-14);
  // And its gradient is identically zero.
  Sum(identity).Backward();
  EXPECT_LT(a.grad().MaxAbs(), 1e-12);
}

TEST(AutogradExtraTest, BackwardWithCustomSeed) {
  Var a = Param(Tensor::FromRows(1, 2, {1.0, 2.0}));
  Var y = MulScalar(a, 3.0);
  Tensor seed = Tensor::FromRows(1, 2, {10.0, -1.0});
  y.Backward(seed);
  EXPECT_DOUBLE_EQ(a.grad()[0], 30.0);
  EXPECT_DOUBLE_EQ(a.grad()[1], -3.0);
}

TEST(AutogradExtraTest, ConstantsReceiveNoBackwardFn) {
  Var a = Constant(Tensor::Ones(Shape{1, 2}));
  Var b = Constant(Tensor::Ones(Shape{1, 2}));
  Var y = Add(a, b);
  // Adding two constants yields a node that doesn't require grad.
  EXPECT_FALSE(y.requires_grad());
}

TEST(AutogradExtraTest, RequiresGradPropagatesThroughMixedGraph) {
  Var a = Constant(Tensor::Ones(Shape{1, 2}));
  Var p = Param(Tensor::Ones(Shape{1, 2}));
  EXPECT_TRUE(Add(a, p).requires_grad());
  EXPECT_TRUE(Mul(Add(a, p), a).requires_grad());
}

TEST(AutogradExtraTest, LongChainGradient) {
  // 60 chained tanh layers: gradients must stay finite and correct.
  Var x = Param(Tensor::Full(Shape{1, 1}, 0.3));
  auto fn = [&] {
    Var h = x;
    for (int i = 0; i < 60; ++i) h = Tanh(MulScalar(h, 1.1));
    return Sum(h);
  };
  EXPECT_LT(MaxGradError(x, fn), 1e-5);
}

TEST(AutogradExtraTest, WideFanOutAccumulates) {
  // One leaf feeding 20 consumers: gradient is the sum of all paths.
  Var x = Param(Tensor::Full(Shape{1, 1}, 2.0));
  std::vector<Var> terms;
  for (int i = 0; i < 20; ++i) terms.push_back(MulScalar(x, 1.0));
  Var y = terms[0];
  for (std::size_t i = 1; i < terms.size(); ++i) y = Add(y, terms[i]);
  Sum(y).Backward();
  EXPECT_NEAR(x.grad()[0], 20.0, 1e-12);
}

TEST(AutogradExtraTest, TransposeOfTransposeGradient) {
  Rng rng(3);
  Var a = Param(rng.NormalTensor(Shape{3, 2}));
  Var w = Constant(rng.NormalTensor(Shape{3, 2}));
  EXPECT_LT(MaxGradError(
                a,
                [&] {
                  return Sum(Mul(Transpose(Transpose(a)), w));
                }),
            1e-6);
}

TEST(AutogradExtraTest, SliceOfConcatRoundTrip) {
  Rng rng(4);
  Var a = Param(rng.NormalTensor(Shape{2, 3}));
  Var b = Param(rng.NormalTensor(Shape{2, 2}));
  Var cat = ConcatCols({a, b});
  Var back_a = SliceCols(cat, 0, 3);
  EXPECT_LT((back_a.value() - a.value()).MaxAbs(), 1e-15);
  Sum(back_a).Backward();
  EXPECT_DOUBLE_EQ(a.grad().Sum(), 6.0);  // ones everywhere
  EXPECT_DOUBLE_EQ(b.grad().Sum(), 0.0);  // not on the path
}

TEST(AutogradExtraTest, ZeroGradResetsBetweenSteps) {
  Var a = Param(Tensor::Full(Shape{1, 1}, 1.0));
  Sum(Square(a)).Backward();
  EXPECT_DOUBLE_EQ(a.grad()[0], 2.0);
  a.ZeroGrad();
  Sum(Square(a)).Backward();
  EXPECT_DOUBLE_EQ(a.grad()[0], 2.0);
}

TEST(AutogradExtraTest, DetachedValueMutationAffectsNextForward) {
  Var a = Param(Tensor::Full(Shape{1, 1}, 1.0));
  EXPECT_DOUBLE_EQ(Sum(Square(a)).value().item(), 1.0);
  a.mutable_value()[0] = 3.0;
  EXPECT_DOUBLE_EQ(Sum(Square(a)).value().item(), 9.0);
}

TEST(AutogradExtraTest, SoftmaxTranslationInvariance) {
  Rng rng(5);
  Tensor logits = rng.NormalTensor(Shape{2, 4});
  Tensor shifted = logits + 100.0;
  Tensor p1 = Softmax(Constant(logits)).value();
  Tensor p2 = Softmax(Constant(shifted)).value();
  EXPECT_LT((p1 - p2).MaxAbs(), 1e-12);
}

TEST(AutogradExtraTest, SoftmaxExtremeLogitsStable) {
  Tensor logits = Tensor::FromRows(1, 3, {1000.0, -1000.0, 999.0});
  Tensor p = Softmax(Constant(logits)).value();
  EXPECT_TRUE(p.AllFinite());
  EXPECT_NEAR(p.Sum(), 1.0, 1e-12);
  EXPECT_GT(p[0], p[2]);
}

TEST(AutogradExtraTest, CrossEntropyIgnoresConstantShift) {
  Rng rng(6);
  Tensor logits = rng.NormalTensor(Shape{2, 3});
  Var v1 = Constant(logits);
  Var v2 = Constant(logits + 5.0);
  std::vector<Index> labels = {1, 2};
  EXPECT_NEAR(SoftmaxCrossEntropy(v1, labels).value().item(),
              SoftmaxCrossEntropy(v2, labels).value().item(), 1e-12);
}

}  // namespace
}  // namespace diffode::ag
