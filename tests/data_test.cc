#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/encoding.h"
#include "data/generators.h"
#include "data/splits.h"

namespace diffode::data {
namespace {

TEST(SyntheticPeriodicTest, SplitSizesAndLabels) {
  SyntheticPeriodicConfig config;
  config.num_series = 200;
  Dataset ds = MakeSyntheticPeriodic(config);
  EXPECT_EQ(ds.num_classes, 2);
  EXPECT_EQ(ds.num_features, 1);
  EXPECT_EQ(ds.TotalSeries(), 200);
  EXPECT_EQ(static_cast<Index>(ds.train.size()), 100);
  EXPECT_EQ(static_cast<Index>(ds.val.size()), 50);
  EXPECT_EQ(static_cast<Index>(ds.test.size()), 50);
  std::set<Index> labels;
  for (const auto& s : ds.train) labels.insert(s.label);
  EXPECT_EQ(labels.size(), 2u);  // both classes present
}

TEST(SyntheticPeriodicTest, ValuesFollowGeneratingEquationModuloThinning) {
  SyntheticPeriodicConfig config;
  config.num_series = 10;
  config.keep_rate = 1.0;  // no thinning: values must match x(t) exactly
  Dataset ds = MakeSyntheticPeriodic(config);
  const auto& s = ds.train.front();
  // The generating family is x(t) = sin(t+phi)cos(3(t+phi)); with unknown
  // phi we verify the functional identity x = 0.5(sin(4u) - sin(2u)) via
  // amplitude bounds instead: |x| <= 1.
  for (Index i = 0; i < s.length(); ++i)
    EXPECT_LE(std::fabs(s.values.at(i, 0)), 1.0 + 1e-9);
  // Times strictly increasing inside (0, 10).
  for (std::size_t i = 1; i < s.times.size(); ++i)
    EXPECT_GT(s.times[i], s.times[i - 1]);
  EXPECT_GT(s.times.front(), 0.0);
  EXPECT_LT(s.times.back(), 10.0);
}

TEST(SyntheticPeriodicTest, ThinningReducesLength) {
  SyntheticPeriodicConfig config;
  config.num_series = 50;
  config.grid_points = 40;
  config.keep_rate = 0.5;
  Dataset ds = MakeSyntheticPeriodic(config);
  Scalar mean_len = 0.0;
  for (const auto& s : ds.train) mean_len += s.length();
  mean_len /= ds.train.size();
  EXPECT_NEAR(mean_len, 20.0, 4.0);
}

TEST(SyntheticPeriodicTest, Deterministic) {
  SyntheticPeriodicConfig config;
  config.num_series = 20;
  Dataset a = MakeSyntheticPeriodic(config);
  Dataset b = MakeSyntheticPeriodic(config);
  ASSERT_EQ(a.train.size(), b.train.size());
  EXPECT_EQ((a.train[0].values - b.train[0].values).MaxAbs(), 0.0);
  EXPECT_EQ(a.train[0].label, b.train[0].label);
}

TEST(LorenzTest, Lorenz63EquationsFixedPoint) {
  // The origin-ish fixed point: x=y=0, z=0 -> derivative zero except... use
  // the known fixed point (sqrt(beta(rho-1)), sqrt(beta(rho-1)), rho-1).
  const Scalar beta = 8.0 / 3.0, rho = 28.0;
  const Scalar c = std::sqrt(beta * (rho - 1.0));
  Tensor fp = Tensor::FromVector({c, c, rho - 1.0});
  Tensor moved = IntegrateLorenz63(fp, 0.001, 10);
  EXPECT_LT((moved - fp).MaxAbs(), 1e-6);
}

TEST(LorenzTest, Lorenz96EquilibriumAtForcing) {
  // x_i = F for all i is an equilibrium of Lorenz-96.
  Tensor fp = Tensor::Full(Shape{12}, 8.0);
  Tensor moved = IntegrateLorenz96(fp, 0.001, 10);
  EXPECT_LT((moved - fp).MaxAbs(), 1e-9);
}

TEST(LorenzTest, ChaoticSensitivity) {
  // Nearby Lorenz-63 states diverge (positive Lyapunov exponent).
  Tensor a = Tensor::FromVector({1.0, 1.0, 1.0});
  Tensor b = Tensor::FromVector({1.0 + 1e-6, 1.0, 1.0});
  Tensor a_end = IntegrateLorenz63(a, 0.01, 3000);
  Tensor b_end = IntegrateLorenz63(b, 0.01, 3000);
  EXPECT_GT((a_end - b_end).MaxAbs(), 1.0);
}

TEST(LorenzTest, DatasetShapes) {
  DynamicalSystemConfig config;
  config.dim = 12;
  config.trajectory_steps = 400;
  config.window = 40;
  Dataset ds = MakeLorenz96(config);
  EXPECT_EQ(ds.num_features, 11);  // last dimension hidden
  // (trajectory_steps - lookahead) / window whole windows.
  EXPECT_EQ(ds.TotalSeries(), 9);
  for (const auto& s : ds.train) {
    EXPECT_GE(s.length(), 2);
    EXPECT_TRUE(s.values.AllFinite());
    EXPECT_TRUE(s.label == 0 || s.label == 1);
  }
}

TEST(LorenzTest, Lorenz63DatasetUsesCopies) {
  DynamicalSystemConfig config;
  config.dim = 9;
  config.trajectory_steps = 200;
  config.window = 25;
  Dataset ds = MakeLorenz63(config);
  EXPECT_EQ(ds.num_features, 8);
}

TEST(UshcnLikeTest, ShapesSparsityAndSplits) {
  UshcnLikeConfig config;
  config.num_stations = 40;
  config.num_days = 120;
  Dataset ds = MakeUshcnLike(config);
  EXPECT_EQ(ds.num_features, 5);
  EXPECT_EQ(static_cast<Index>(ds.train.size()), 24);
  // Sparse: a sizable fraction of mask entries must be zero.
  Scalar observed = 0.0, total = 0.0;
  for (const auto& s : ds.train) {
    observed += s.mask.Sum();
    total += static_cast<Scalar>(s.mask.numel());
  }
  EXPECT_LT(observed / total, 0.9);
  EXPECT_GT(observed / total, 0.05);
}

TEST(UshcnLikeTest, SnowOnlyWhenCold) {
  UshcnLikeConfig config;
  config.num_stations = 10;
  Dataset ds = MakeUshcnLike(config);
  for (const auto& s : ds.train) {
    for (Index i = 0; i < s.length(); ++i) {
      const Scalar snowfall = s.values.at(i, 1);
      const Scalar tmin = s.values.at(i, 3);
      if (snowfall > 0.0) {
        EXPECT_LT(tmin, 0.0);
      }
    }
  }
}

TEST(PhysioNetLikeTest, ShapesAndTickRounding) {
  PhysioNetLikeConfig config;
  config.num_patients = 30;
  config.num_channels = 12;
  Dataset ds = MakePhysioNetLike(config);
  EXPECT_EQ(ds.num_features, 12);
  for (const auto& s : ds.train) {
    for (Scalar t : s.times) {
      EXPECT_GE(t, 0.0);
      EXPECT_LE(t, config.horizon_hours + 1e-9);
      // 6-minute rounding.
      const Scalar ticks = t / config.tick_hours;
      EXPECT_NEAR(ticks, std::round(ticks), 1e-6);
    }
    // Every row reports at least one channel.
    for (Index i = 0; i < s.length(); ++i) {
      Scalar row_mask = 0.0;
      for (Index j = 0; j < 12; ++j) row_mask += s.mask.at(i, j);
      EXPECT_GT(row_mask, 0.0);
    }
  }
}

TEST(LargeStLikeTest, FlowsNonNegativeAndPeriodic) {
  LargeStLikeConfig config;
  config.num_sensors = 10;
  config.hours_per_sensor = 24 * 7;
  Dataset ds = MakeLargeStLike(config);
  EXPECT_EQ(ds.num_features, 1);
  for (const auto& s : ds.train)
    for (Index i = 0; i < s.length(); ++i)
      EXPECT_GE(s.values.at(i, 0), 0.0);
}

TEST(SplitsTest, NormalizeZeroMeanUnitVar) {
  UshcnLikeConfig config;
  config.num_stations = 30;
  Dataset ds = MakeUshcnLike(config);
  NormalizeDataset(&ds);
  FeatureStats stats = ComputeStats(ds.train);
  for (Index j = 0; j < 5; ++j) {
    EXPECT_NEAR(stats.mean.at(0, j), 0.0, 1e-9);
    EXPECT_NEAR(stats.std.at(0, j), 1.0, 1e-6);
  }
}

TEST(SplitsTest, InterpolationViewPartitionsObservations) {
  PhysioNetLikeConfig config;
  config.num_patients = 5;
  Dataset ds = MakePhysioNetLike(config);
  Rng rng(3);
  const auto& s = ds.train.front();
  TaskView view = MakeInterpolationView(s, 0.4, rng);
  // Target mask entries were observed in the original and are no longer in
  // the context.
  Index moved = 0;
  for (Index i = 0; i < view.target.length(); ++i) {
    for (Index j = 0; j < view.target.num_features(); ++j) {
      if (view.target.mask.at(i, j) > 0) {
        EXPECT_GT(s.mask.at(i, j), 0.0);
        ++moved;
      }
    }
  }
  EXPECT_GT(moved, 0);
  // Context only keeps rows with some observation.
  for (Index i = 0; i < view.context.length(); ++i) {
    Scalar row = 0.0;
    for (Index j = 0; j < view.context.num_features(); ++j)
      row += view.context.mask.at(i, j);
    EXPECT_GT(row, 0.0);
  }
}

TEST(SplitsTest, ExtrapolationViewSplitsAtMidpoint) {
  PhysioNetLikeConfig config;
  config.num_patients = 5;
  Dataset ds = MakePhysioNetLike(config);
  const auto& s = ds.train.front();
  TaskView view = MakeExtrapolationView(s);
  const Scalar mid = 0.5 * (s.times.front() + s.times.back());
  // All context observations are in the first half.
  EXPECT_LE(view.context.times.back(), mid + 1e-9);
  // All target entries are in the second half.
  for (Index i = 0; i < view.target.length(); ++i) {
    for (Index j = 0; j < view.target.num_features(); ++j) {
      if (view.target.mask.at(i, j) > 0) {
        EXPECT_GT(view.target.times[static_cast<std::size_t>(i)], mid);
      }
    }
  }
}

TEST(EncodingTest, NormalizedTimesSpanTen) {
  PhysioNetLikeConfig config;
  config.num_patients = 3;
  Dataset ds = MakePhysioNetLike(config);
  EncoderInputs enc = BuildEncoderInputs(ds.train.front());
  EXPECT_NEAR(enc.norm_times.front(), 0.0, 1e-12);
  EXPECT_NEAR(enc.norm_times.back(), 10.0, 1e-9);
  // Round trip.
  EXPECT_NEAR(enc.Normalize(ds.train.front().times.back()), 10.0, 1e-9);
}

TEST(EncodingTest, MaskedValuesZeroedInInputs) {
  data::IrregularSeries s;
  s.times = {0.0, 1.0};
  s.values = Tensor::FromRows(2, 2, {5.0, 7.0, 9.0, 11.0});
  s.mask = Tensor::FromRows(2, 2, {1, 0, 0, 1});
  EncoderInputs enc = BuildEncoderInputs(s);
  EXPECT_DOUBLE_EQ(enc.inputs.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(enc.inputs.at(0, 1), 0.0);  // masked out
  EXPECT_DOUBLE_EQ(enc.inputs.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(enc.inputs.at(1, 1), 11.0);
  EXPECT_DOUBLE_EQ(enc.inputs.at(0, 2), 1.0);  // mask channel
  EXPECT_DOUBLE_EQ(enc.inputs.at(0, 3), 0.0);
}

TEST(SeriesTest, SliceKeepsAlignment) {
  data::IrregularSeries s;
  s.times = {0.0, 1.0, 2.0, 3.0};
  s.values = Tensor::FromRows(4, 1, {10, 11, 12, 13});
  s.mask = Tensor::Ones(Shape{4, 1});
  s.label = 1;
  data::IrregularSeries sub = s.Slice(1, 2);
  EXPECT_EQ(sub.length(), 2);
  EXPECT_DOUBLE_EQ(sub.times[0], 1.0);
  EXPECT_DOUBLE_EQ(sub.values.at(1, 0), 12.0);
  EXPECT_EQ(sub.label, 1);
}

}  // namespace
}  // namespace diffode::data
