#include "core/alloc_stats.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "autograd/arena.h"
#include "autograd/ops.h"
#include "core/diffode_model.h"
#include "core/parallel.h"
#include "data/generators.h"
#include "tensor/buffer_pool.h"
#include "train/trainer.h"

namespace diffode {
namespace {

using core::AllocStats;
using tensor::BufferPool;

TEST(BufferPoolTest, BucketRounding) {
  EXPECT_EQ(BufferPool::BucketBytes(1), 64u);
  EXPECT_EQ(BufferPool::BucketBytes(64), 64u);
  EXPECT_EQ(BufferPool::BucketBytes(65), 128u);
  EXPECT_EQ(BufferPool::BucketBytes(1000), 1024u);
  EXPECT_EQ(BufferPool::BucketBytes(1 << 20), std::size_t{1} << 20);
}

TEST(BufferPoolTest, RecyclesWithinScope) {
  BufferPool::Scope scope;
  void* a = BufferPool::Allocate(256);
  BufferPool::Deallocate(a, 256);
  const AllocStats::Snapshot before = AllocStats::Read();
  void* b = BufferPool::Allocate(256);
  const AllocStats::Snapshot d =
      AllocStats::Delta(before, AllocStats::Read());
  EXPECT_EQ(b, a);  // served straight from the thread cache
  EXPECT_EQ(d.pool_hits, 1u);
  EXPECT_EQ(d.pool_misses, 0u);
  BufferPool::Deallocate(b, 256);
}

TEST(BufferPoolTest, ScopesAreReentrant) {
  EXPECT_FALSE(BufferPool::ScopeActive());
  {
    BufferPool::Scope outer;
    EXPECT_TRUE(BufferPool::ScopeActive());
    void* a = BufferPool::Allocate(128);
    {
      BufferPool::Scope inner;
      EXPECT_TRUE(BufferPool::ScopeActive());
      BufferPool::Deallocate(a, 128);
    }
    // The inner scope must not have flushed the cache: the block is still
    // available for recycling on this thread.
    const AllocStats::Snapshot before = AllocStats::Read();
    void* b = BufferPool::Allocate(128);
    EXPECT_EQ(AllocStats::Delta(before, AllocStats::Read()).pool_hits, 1u);
    BufferPool::Deallocate(b, 128);
  }
  EXPECT_FALSE(BufferPool::ScopeActive());
}

TEST(BufferPoolTest, OutsideScopeBypassesToHeap) {
  ASSERT_FALSE(BufferPool::ScopeActive());
  const AllocStats::Snapshot before = AllocStats::Read();
  void* p = BufferPool::Allocate(512);
  const AllocStats::Snapshot d =
      AllocStats::Delta(before, AllocStats::Read());
  EXPECT_GE(d.pool_bypass, 1u);
  EXPECT_EQ(d.pool_hits, 0u);
  BufferPool::Deallocate(p, 512);
}

TEST(TapeArenaTest, BumpAllocatesAndResetsWarm) {
  ag::TapeArena::Scope scope;
  ag::TapeArena* arena = ag::TapeArena::Active();
  ASSERT_NE(arena, nullptr);
  void* a = arena->Allocate(100, 16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 16, 0u);
  void* b = arena->Allocate(100, 16);
  EXPECT_NE(a, b);
  EXPECT_GE(arena->BytesInUse(), 200u);
  arena->Reset();
  EXPECT_EQ(arena->BytesInUse(), 0u);
  // Blocks are retained: a warm arena hands back the same storage.
  EXPECT_EQ(arena->Allocate(100, 16), a);
  arena->Reset();
}

TEST(TapeArenaTest, DisabledMeansNoActiveArena) {
  ag::TapeArena::SetEnabled(false);
  {
    ag::TapeArena::Scope scope;
    EXPECT_EQ(ag::TapeArena::Active(), nullptr);
  }
  ag::TapeArena::SetEnabled(true);
  {
    ag::TapeArena::Scope scope;
    EXPECT_NE(ag::TapeArena::Active(), nullptr);
  }
}

TEST(VarGradTest, ZeroGradReusesTheGradBuffer) {
  ag::Var p = ag::Param(Tensor::Ones(Shape{3, 4}));
  ag::Var loss = ag::Sum(ag::Mul(p, p));
  loss.Backward();
  ASSERT_GT(p.grad().numel(), 0);
  const Scalar* buf = p.grad().values().data();
  p.ZeroGrad();
  EXPECT_EQ(p.grad().values().data(), buf);  // cleared in place
  for (Index i = 0; i < p.grad().numel(); ++i)
    EXPECT_EQ(p.grad().values()[static_cast<std::size_t>(i)], 0.0);
}

core::DiffOdeConfig TinyConfig() {
  core::DiffOdeConfig config;
  config.input_dim = 1;
  config.latent_dim = 8;
  config.hippo_dim = 6;
  config.info_dim = 6;
  config.mlp_hidden = 12;
  config.num_classes = 2;
  config.step = 1.0;
  return config;
}

data::Dataset TinyDataset() {
  data::SyntheticPeriodicConfig dconfig;
  dconfig.num_series = 12;
  dconfig.grid_points = 8;
  return data::MakeSyntheticPeriodic(dconfig);
}

train::TrainOptions TinyOptions(Index epochs) {
  train::TrainOptions options;
  options.epochs = epochs;
  options.batch_size = 16;  // >= train split: one batch per epoch
  options.lr = 1e-3;
  options.patience = 100;
  return options;
}

// The steady-state contract of the PR: once the pool and arena are warm,
// a training step allocates nothing from the heap for its intermediates.
TEST(AllocStatsTest, SteadyStateTrainingHasZeroPoolMisses) {
  const int prev_threads = parallel::ThreadPool::Get().num_threads();
  parallel::ThreadPool::SetNumThreads(1);
  data::Dataset ds = TinyDataset();
  core::DiffOde model(TinyConfig());
  // Warm-up: first epochs populate the depot and the arena blocks.
  (void)train::TrainClassifier(&model, ds, TinyOptions(2));
  const AllocStats::Snapshot before = AllocStats::Read();
  (void)train::TrainClassifier(&model, ds, TinyOptions(1));
  const AllocStats::Snapshot d =
      AllocStats::Delta(before, AllocStats::Read());
  EXPECT_EQ(d.pool_misses, 0u);
  EXPECT_GT(d.pool_hits + d.depot_hits, 0u);  // the pool actually served
  EXPECT_GT(d.arena_nodes, 0u);               // tapes came from the arena
  parallel::ThreadPool::SetNumThreads(prev_threads);
}

struct TrainOutcome {
  std::vector<Scalar> losses;
  std::vector<Tensor> params;
};

TrainOutcome RunTinyTraining(bool fast_alloc, int threads) {
  parallel::ThreadPool::SetNumThreads(threads);
  ag::TapeArena::SetEnabled(fast_alloc);
  tensor::BufferPool::SetEnabled(fast_alloc);
  data::Dataset ds = TinyDataset();
  core::DiffOde model(TinyConfig());
  train::FitResult fit =
      train::TrainClassifier(&model, ds, TinyOptions(2));
  TrainOutcome out;
  out.losses = fit.train_losses;
  for (const auto& p : model.Params()) out.params.push_back(p.value());
  ag::TapeArena::SetEnabled(true);
  tensor::BufferPool::SetEnabled(true);
  return out;
}

void ExpectBitwiseEqual(const TrainOutcome& a, const TrainOutcome& b) {
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (std::size_t i = 0; i < a.losses.size(); ++i)
    EXPECT_EQ(a.losses[i], b.losses[i]);
  ASSERT_EQ(a.params.size(), b.params.size());
  for (std::size_t i = 0; i < a.params.size(); ++i) {
    ASSERT_EQ(a.params[i].shape(), b.params[i].shape());
    for (Index k = 0; k < a.params[i].numel(); ++k)
      EXPECT_EQ(a.params[i].values()[static_cast<std::size_t>(k)],
                b.params[i].values()[static_cast<std::size_t>(k)]);
  }
}

// Arena + pool must change where bytes live, never what is computed: losses
// and weights are bitwise identical with the fast allocators on or off, at
// one thread and at four.
TEST(AllocStatsTest, ArenaAndPoolAreBitwiseEquivalent) {
  const int prev_threads = parallel::ThreadPool::Get().num_threads();
  const TrainOutcome fast1 = RunTinyTraining(/*fast_alloc=*/true, 1);
  const TrainOutcome slow1 = RunTinyTraining(/*fast_alloc=*/false, 1);
  const TrainOutcome fast4 = RunTinyTraining(/*fast_alloc=*/true, 4);
  const TrainOutcome slow4 = RunTinyTraining(/*fast_alloc=*/false, 4);
  ExpectBitwiseEqual(fast1, slow1);
  ExpectBitwiseEqual(fast1, fast4);
  ExpectBitwiseEqual(fast1, slow4);
  parallel::ThreadPool::SetNumThreads(prev_threads);
}

}  // namespace
}  // namespace diffode
