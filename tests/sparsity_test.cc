#include <gtest/gtest.h>

#include <cmath>

#include "linalg/pinv.h"
#include "sparsity/hoyer.h"
#include "sparsity/pt_solver.h"
#include "tensor/random.h"

namespace diffode::sparsity {
namespace {

// ---------------------------------------------------------------------------
// Hoyer metric: the paper's four properties (Definition 2, criteria a-d).
// ---------------------------------------------------------------------------

TEST(HoyerTest, ExtremeValues) {
  // Single spike -> 1; uniform -> 0.
  EXPECT_NEAR(Hoyer(Tensor::FromVector({0, 0, 5, 0})), 1.0, 1e-12);
  EXPECT_NEAR(Hoyer(Tensor::FromVector({2, 2, 2, 2})), 0.0, 1e-12);
}

TEST(HoyerTest, PropertyA_RobinHoodTransferLowersSparsity) {
  // Moving alpha from a larger to a smaller element (sum constant) must
  // strictly decrease the metric.
  Tensor x = Tensor::FromVector({0.7, 0.2, 0.1});
  Tensor y = Tensor::FromVector({0.6, 0.3, 0.1});  // alpha=0.1 from x0 to x1
  EXPECT_LT(Hoyer(y), Hoyer(x));
}

TEST(HoyerTest, PropertyB_ScaleInvariance) {
  Rng rng(1);
  Tensor x = rng.UniformTensor(Shape{10}, 0.01, 1.0);
  EXPECT_NEAR(Hoyer(x), Hoyer(x * 7.3), 1e-12);
  EXPECT_NEAR(Hoyer(x), Hoyer(x * 0.001), 1e-12);
}

TEST(HoyerTest, PropertyC_GrowingMainElementRaisesSparsity) {
  // Once one element dominates, growing it further increases sparsity.
  Tensor base = Tensor::FromVector({1.0, 0.3, 0.2, 0.1});
  Scalar prev = Hoyer(base);
  for (Scalar add = 1.0; add < 5.0; add += 1.0) {
    Tensor grown = base;
    grown[0] += add;
    const Scalar h = Hoyer(grown);
    EXPECT_GT(h, prev);
    prev = h;
  }
}

TEST(HoyerTest, PropertyD_AppendingZerosRaisesSparsity) {
  Tensor x = Tensor::FromVector({0.5, 0.3, 0.2});
  Tensor padded = Tensor::FromVector({0.5, 0.3, 0.2, 0.0, 0.0});
  EXPECT_GT(Hoyer(padded), Hoyer(x));
}

TEST(HoyerTest, AbsVariantAgreesOnNonNegative) {
  Rng rng(2);
  Tensor x = rng.UniformTensor(Shape{8}, 0.0, 1.0);
  EXPECT_NEAR(Hoyer(x), HoyerAbs(x), 1e-12);
}

TEST(HoyerTest, EffectiveSupport) {
  EXPECT_EQ(EffectiveSupport(Tensor::FromVector({10, 0, 0, 0})), 1);
  EXPECT_EQ(EffectiveSupport(Tensor::FromVector({1, 1, 1, 1}), 0.9), 4);
  EXPECT_EQ(EffectiveSupport(Tensor::Zeros(Shape{4})), 0);
}

// ---------------------------------------------------------------------------
// Attention inversion.
// ---------------------------------------------------------------------------

struct Fixture {
  Tensor z;                // n x d
  AttentionInverse inv;
  Tensor p_true;           // 1 x n softmax attention
  Tensor s;                // 1 x d DHS

  static Fixture Make(Index n, Index d, std::uint64_t seed) {
    Fixture f;
    Rng rng(seed);
    f.z = rng.NormalTensor(Shape{n, d});
    f.inv = AttentionInverse::Build(f.z, 0.0);
    // True attention from a random query.
    Tensor q = rng.NormalTensor(Shape{1, d});
    Tensor logits = q.MatMul(f.z.Transposed()) *
                    (1.0 / std::sqrt(static_cast<Scalar>(d)));
    const Scalar m = logits.Max();
    f.p_true = logits.Map([m](Scalar x) { return std::exp(x - m); });
    f.p_true *= 1.0 / f.p_true.Sum();
    f.s = f.p_true.MatMul(f.z);
    return f;
  }
};

TEST(AttentionInverseTest, PinvMatchesPaperIdentity) {
  Fixture f = Fixture::Make(12, 4, 3);
  // (Zᵀ)† Zᵀ should be a projector (idempotent, symmetric).
  Tensor proj = f.inv.zt_pinv.MatMul(f.z.Transposed());
  EXPECT_LT((proj.MatMul(proj) - proj).MaxAbs(), 1e-8);
  EXPECT_LT((proj - proj.Transposed()).MaxAbs(), 1e-8);
}

TEST(AttentionInverseTest, AllStrategiesReproduceS) {
  // Any admissible p must satisfy p Z = S: the recovery is a right inverse.
  Fixture f = Fixture::Make(12, 4, 4);
  for (PtStrategy strategy :
       {PtStrategy::kMinNorm, PtStrategy::kMaxHoyer, PtStrategy::kAdaH}) {
    Rng rng(99);
    Tensor h = rng.NormalTensor(Shape{1, 12});
    Tensor p = RecoverP(f.inv, f.s, strategy, &h);
    Tensor s_rec = p.MatMul(f.z);
    EXPECT_LT((s_rec - f.s).MaxAbs(), 1e-8)
        << "strategy " << static_cast<int>(strategy);
  }
}

TEST(AttentionInverseTest, MaxHoyerSumsToOne) {
  Fixture f = Fixture::Make(15, 5, 5);
  Tensor p = RecoverP(f.inv, f.s, PtStrategy::kMaxHoyer);
  EXPECT_NEAR(p.Sum(), 1.0, 1e-8);
}

TEST(AttentionInverseTest, MaxHoyerIsLeastNormOnSumConstraint) {
  // The Lagrange stationary point of Theorem 2 (Eq. 31/32) is the unique
  // least-norm element of the feasible set {p : p Z = S, Σp = 1}. Every
  // other feasible candidate (random h projected onto the sum constraint)
  // must have a norm at least as large.
  Fixture f = Fixture::Make(14, 4, 100);
  Tensor p_star = RecoverP(f.inv, f.s, PtStrategy::kMaxHoyer);
  const Scalar norm_star = p_star.Norm();
  Rng rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    Tensor h = rng.NormalTensor(Shape{1, 14});
    Tensor p = RecoverP(f.inv, f.s, PtStrategy::kAdaH, &h);
    ASSERT_GT(std::fabs(f.inv.ap_total), 1e-12);
    const Scalar shift = (p.Sum() - 1.0) / f.inv.ap_total;
    Tensor p_feasible = p - f.inv.ap_colsum.Transposed() * shift;
    ASSERT_NEAR(p_feasible.Sum(), 1.0, 1e-7);
    EXPECT_GE(p_feasible.Norm(), norm_star - 1e-9);
  }
}

TEST(AttentionInverseTest, MaxHoyerIsTheorem2StationaryPoint) {
  // Theorem 2's Lagrange solution (Eq. 31/32) is the stationary point of
  // p pᵀ on the affine feasible set {b + A_p h : J(b + A_p h) = 1}: the
  // objective gradient (= 2p) must be orthogonal to every feasible
  // direction, i.e. every dir = A_p v with sum(dir) = 0.
  Fixture f = Fixture::Make(10, 3, 6);
  Tensor p_star = RecoverP(f.inv, f.s, PtStrategy::kMaxHoyer);
  Tensor ap = Tensor::Eye(10) - f.inv.zt_pinv.MatMul(f.z.Transposed());
  Rng rng2(8);
  for (int trial = 0; trial < 20; ++trial) {
    Tensor v = rng2.NormalTensor(Shape{10, 1});
    Tensor dir = ap.MatMul(v);  // n x 1, in range(A_p)
    if (std::fabs(f.inv.ap_total) > 1e-12) {
      const Scalar beta = dir.Sum() / f.inv.ap_total;
      dir -= f.inv.ap_colsum * beta;  // remove sum component
    }
    ASSERT_NEAR(dir.Sum(), 0.0, 1e-7);
    const Scalar inner = p_star.Reshaped(Shape{10, 1}).Dot(dir);
    EXPECT_NEAR(inner, 0.0, 1e-7);
  }
}

TEST(AttentionInverseTest, ExactKktFeasibility) {
  Fixture f = Fixture::Make(8, 3, 9);
  Tensor p = MaxHoyerExactKkt(f.inv, f.s);
  if (p.numel() == 0) GTEST_SKIP() << "no KKT point found for this instance";
  EXPECT_NEAR(p.Sum(), 1.0, 1e-6);
  for (Index i = 0; i < p.numel(); ++i) EXPECT_GE(p[i], -1e-7);
}

TEST(AttentionInverseTest, ExactKktAtLeastAsSparseAsFeasibleRelaxed) {
  // When the relaxed (possibly negative) solution happens to be feasible
  // (all non-negative), the exact search must achieve >= its objective.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Fixture f = Fixture::Make(8, 3, 200 + seed);
    Tensor relaxed = RecoverP(f.inv, f.s, PtStrategy::kMaxHoyer);
    bool feasible = true;
    for (Index i = 0; i < relaxed.numel(); ++i)
      if (relaxed[i] < 0) feasible = false;
    if (!feasible) continue;
    Tensor exact = MaxHoyerExactKkt(f.inv, f.s);
    if (exact.numel() == 0) continue;
    EXPECT_GE(exact.Dot(exact), relaxed.Dot(relaxed) - 1e-6);
  }
}

TEST(RecoverZTest, FastPathMatchesSvdReference) {
  Fixture f = Fixture::Make(9, 3, 11);
  Rng rng(12);
  Tensor h2 = rng.NormalTensor(Shape{1, 9});
  Tensor fast = RecoverZ(f.inv, f.p_true, h2);
  Tensor reference = RecoverZReference(f.z, f.p_true, h2);
  EXPECT_LT((fast - reference).MaxAbs(), 1e-6);
}

TEST(RecoverZTest, RankOneProjectorIdentity) {
  // I - M M† == pᵀ p / (p pᵀ) for M = J p - I with sum(p) = 1.
  Rng rng(13);
  Tensor raw = rng.UniformTensor(Shape{1, 7}, 0.01, 1.0);
  Tensor p = raw * (1.0 / raw.Sum());
  Tensor m(Shape{7, 7});
  for (Index i = 0; i < 7; ++i)
    for (Index j = 0; j < 7; ++j) m.at(i, j) = p[j] - (i == j ? 1.0 : 0.0);
  Tensor m_pinv = linalg::PInverse(m);
  Tensor lhs = Tensor::Eye(7) - m.MatMul(m_pinv);
  Tensor rhs = p.Transposed().MatMul(p) * (1.0 / p.Dot(p));
  EXPECT_LT((lhs - rhs).MaxAbs(), 1e-8);
}

}  // namespace
}  // namespace diffode::sparsity
