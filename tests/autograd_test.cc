#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/ops_linalg.h"
#include "gradcheck.h"
#include "tensor/random.h"

namespace diffode {
namespace {

using ag::Var;
using testing::MaxGradError;

constexpr double kTol = 1e-6;

TEST(AutogradTest, AddSubMulGradients) {
  Rng rng(1);
  Var a = ag::Param(rng.NormalTensor(Shape{2, 3}));
  Var b = ag::Param(rng.NormalTensor(Shape{2, 3}));
  EXPECT_LT(MaxGradError(a, [&] { return ag::Sum(ag::Add(a, b)); }), kTol);
  EXPECT_LT(MaxGradError(a, [&] { return ag::Sum(ag::Sub(a, b)); }), kTol);
  EXPECT_LT(MaxGradError(a, [&] { return ag::Sum(ag::Mul(a, b)); }), kTol);
  EXPECT_LT(MaxGradError(b, [&] { return ag::Sum(ag::Mul(a, b)); }), kTol);
}

TEST(AutogradTest, DivGradients) {
  Rng rng(2);
  Var a = ag::Param(rng.NormalTensor(Shape{2, 2}));
  Var b = ag::Param(rng.UniformTensor(Shape{2, 2}, 0.5, 2.0));
  EXPECT_LT(MaxGradError(a, [&] { return ag::Sum(ag::Div(a, b)); }), kTol);
  EXPECT_LT(MaxGradError(b, [&] { return ag::Sum(ag::Div(a, b)); }), kTol);
}

TEST(AutogradTest, ScalarOps) {
  Rng rng(3);
  Var a = ag::Param(rng.NormalTensor(Shape{3, 2}));
  EXPECT_LT(MaxGradError(a, [&] { return ag::Sum(ag::MulScalar(a, -2.5)); }),
            kTol);
  EXPECT_LT(MaxGradError(a, [&] { return ag::Sum(ag::AddScalar(a, 3.0)); }),
            kTol);
  EXPECT_LT(MaxGradError(a, [&] { return ag::Sum(ag::Neg(a)); }), kTol);
}

TEST(AutogradTest, ScalarVarOps) {
  Rng rng(4);
  Var a = ag::Param(rng.NormalTensor(Shape{2, 3}));
  Var s = ag::Param(Tensor::Full(Shape{1, 1}, 1.7));
  EXPECT_LT(
      MaxGradError(a, [&] { return ag::Sum(ag::DivByScalarVar(a, s)); }),
      kTol);
  EXPECT_LT(
      MaxGradError(s, [&] { return ag::Sum(ag::DivByScalarVar(a, s)); }),
      kTol);
  EXPECT_LT(
      MaxGradError(a, [&] { return ag::Sum(ag::MulByScalarVar(a, s)); }),
      kTol);
  EXPECT_LT(
      MaxGradError(s, [&] { return ag::Sum(ag::MulByScalarVar(a, s)); }),
      kTol);
}

TEST(AutogradTest, MatMulGradients) {
  Rng rng(5);
  Var a = ag::Param(rng.NormalTensor(Shape{3, 4}));
  Var b = ag::Param(rng.NormalTensor(Shape{4, 2}));
  // Weighted sum so the output gradient is non-uniform.
  Var w = ag::Constant(rng.NormalTensor(Shape{3, 2}));
  auto fn = [&] { return ag::Sum(ag::Mul(ag::MatMul(a, b), w)); };
  EXPECT_LT(MaxGradError(a, fn), kTol);
  EXPECT_LT(MaxGradError(b, fn), kTol);
}

TEST(AutogradTest, TransposeReshapeGradients) {
  Rng rng(6);
  Var a = ag::Param(rng.NormalTensor(Shape{2, 3}));
  Var w = ag::Constant(rng.NormalTensor(Shape{3, 2}));
  EXPECT_LT(
      MaxGradError(a, [&] { return ag::Sum(ag::Mul(ag::Transpose(a), w)); }),
      kTol);
  Var w2 = ag::Constant(rng.NormalTensor(Shape{6, 1}));
  EXPECT_LT(MaxGradError(a,
                         [&] {
                           return ag::Sum(
                               ag::Mul(ag::Reshape(a, Shape{6, 1}), w2));
                         }),
            kTol);
}

TEST(AutogradTest, AddRowVecGradients) {
  Rng rng(7);
  Var m = ag::Param(rng.NormalTensor(Shape{3, 4}));
  Var v = ag::Param(rng.NormalTensor(Shape{1, 4}));
  Var w = ag::Constant(rng.NormalTensor(Shape{3, 4}));
  auto fn = [&] { return ag::Sum(ag::Mul(ag::AddRowVec(m, v), w)); };
  EXPECT_LT(MaxGradError(m, fn), kTol);
  EXPECT_LT(MaxGradError(v, fn), kTol);
}

TEST(AutogradTest, SoftmaxForwardRowsSumToOne) {
  Rng rng(8);
  Var a = ag::Param(rng.NormalTensor(Shape{3, 5}));
  Var p = ag::Softmax(a);
  for (Index i = 0; i < 3; ++i) {
    Scalar row = 0.0;
    for (Index j = 0; j < 5; ++j) row += p.value().at(i, j);
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
}

TEST(AutogradTest, SoftmaxGradients) {
  Rng rng(9);
  Var a = ag::Param(rng.NormalTensor(Shape{2, 4}));
  Var w = ag::Constant(rng.NormalTensor(Shape{2, 4}));
  EXPECT_LT(
      MaxGradError(a, [&] { return ag::Sum(ag::Mul(ag::Softmax(a), w)); }),
      kTol);
}

TEST(AutogradTest, NonlinearityGradients) {
  Rng rng(10);
  Var a = ag::Param(rng.NormalTensor(Shape{2, 3}));
  Var w = ag::Constant(rng.NormalTensor(Shape{2, 3}));
  EXPECT_LT(MaxGradError(a, [&] { return ag::Sum(ag::Mul(ag::Tanh(a), w)); }),
            kTol);
  EXPECT_LT(
      MaxGradError(a, [&] { return ag::Sum(ag::Mul(ag::Sigmoid(a), w)); }),
      kTol);
  EXPECT_LT(MaxGradError(a, [&] { return ag::Sum(ag::Mul(ag::Exp(a), w)); }),
            kTol);
  EXPECT_LT(MaxGradError(a, [&] { return ag::Sum(ag::Square(a)); }), kTol);
}

TEST(AutogradTest, ReluGradientAwayFromKink) {
  Var a = ag::Param(Tensor::FromRows(1, 4, {-2.0, -0.5, 0.5, 2.0}));
  EXPECT_LT(MaxGradError(a, [&] { return ag::Sum(ag::Relu(a)); }), kTol);
}

TEST(AutogradTest, LogSqrtGradients) {
  Rng rng(11);
  Var a = ag::Param(rng.UniformTensor(Shape{2, 3}, 0.5, 3.0));
  EXPECT_LT(MaxGradError(a, [&] { return ag::Sum(ag::Log(a)); }), kTol);
  EXPECT_LT(MaxGradError(a, [&] { return ag::Sum(ag::Sqrt(a)); }), kTol);
}

TEST(AutogradTest, ReductionGradients) {
  Rng rng(12);
  Var a = ag::Param(rng.NormalTensor(Shape{3, 3}));
  Var b = ag::Param(rng.NormalTensor(Shape{3, 3}));
  EXPECT_LT(MaxGradError(a, [&] { return ag::Mean(a); }), kTol);
  EXPECT_LT(MaxGradError(a, [&] { return ag::Dot(a, b); }), kTol);
  EXPECT_LT(MaxGradError(b, [&] { return ag::Dot(a, b); }), kTol);
}

TEST(AutogradTest, ConcatSliceGradients) {
  Rng rng(13);
  Var a = ag::Param(rng.NormalTensor(Shape{2, 2}));
  Var b = ag::Param(rng.NormalTensor(Shape{2, 3}));
  Var w = ag::Constant(rng.NormalTensor(Shape{2, 5}));
  auto cat_fn = [&] {
    return ag::Sum(ag::Mul(ag::ConcatCols({a, b}), w));
  };
  EXPECT_LT(MaxGradError(a, cat_fn), kTol);
  EXPECT_LT(MaxGradError(b, cat_fn), kTol);
  Var c = ag::Param(rng.NormalTensor(Shape{1, 2}));
  Var wr = ag::Constant(rng.NormalTensor(Shape{3, 2}));
  auto cat_rows_fn = [&] {
    return ag::Sum(ag::Mul(ag::ConcatRows({a, c}), wr));
  };
  EXPECT_LT(MaxGradError(a, cat_rows_fn), kTol);
  EXPECT_LT(MaxGradError(c, cat_rows_fn), kTol);
  Var ws = ag::Constant(rng.NormalTensor(Shape{2, 2}));
  EXPECT_LT(MaxGradError(b,
                         [&] {
                           return ag::Sum(
                               ag::Mul(ag::SliceCols(b, 1, 2), ws));
                         }),
            kTol);
  Var wrow = ag::Constant(rng.NormalTensor(Shape{1, 2}));
  EXPECT_LT(MaxGradError(a,
                         [&] {
                           return ag::Sum(
                               ag::Mul(ag::SliceRows(a, 1, 1), wrow));
                         }),
            kTol);
}

TEST(AutogradTest, MseLossGradient) {
  Rng rng(14);
  Var pred = ag::Param(rng.NormalTensor(Shape{3, 2}));
  Tensor target = rng.NormalTensor(Shape{3, 2});
  EXPECT_LT(MaxGradError(pred, [&] { return ag::MseLoss(pred, target); }),
            kTol);
}

TEST(AutogradTest, MaskedMseLossGradientAndValue) {
  Var pred = ag::Param(Tensor::FromRows(2, 2, {1, 2, 3, 4}));
  Tensor target = Tensor::FromRows(2, 2, {0, 2, 3, 0});
  Tensor mask = Tensor::FromRows(2, 2, {1, 1, 0, 1});
  Var loss = ag::MaskedMseLoss(pred, target, mask);
  // Errors: (1-0)^2=1 observed, (2-2)^2=0 observed, (3-3) masked out,
  // (4-0)^2=16 observed -> mean over 3 = 17/3.
  EXPECT_NEAR(loss.value().item(), 17.0 / 3.0, 1e-12);
  EXPECT_LT(
      MaxGradError(pred, [&] { return ag::MaskedMseLoss(pred, target, mask); }),
      kTol);
}

TEST(AutogradTest, SoftmaxCrossEntropyGradient) {
  Rng rng(15);
  Var logits = ag::Param(rng.NormalTensor(Shape{3, 4}));
  std::vector<Index> labels = {2, 0, 3};
  EXPECT_LT(MaxGradError(
                logits, [&] { return ag::SoftmaxCrossEntropy(logits, labels); }),
            kTol);
}

TEST(AutogradTest, SoftmaxCrossEntropyMatchesManual) {
  Var logits = ag::Constant(Tensor::FromRows(1, 2, {0.0, 0.0}));
  Var loss = ag::SoftmaxCrossEntropy(logits, {1});
  EXPECT_NEAR(loss.value().item(), std::log(2.0), 1e-12);
}

TEST(AutogradTest, InverseGradient) {
  Rng rng(16);
  // Well-conditioned matrix: diag-dominant.
  Tensor m = rng.NormalTensor(Shape{3, 3}, 0.0, 0.3);
  for (Index i = 0; i < 3; ++i) m.at(i, i) += 2.0;
  Var a = ag::Param(m);
  Var w = ag::Constant(rng.NormalTensor(Shape{3, 3}));
  EXPECT_LT(
      MaxGradError(a, [&] { return ag::Sum(ag::Mul(ag::Inverse(a), w)); }),
      1e-5);
}

TEST(AutogradTest, RidgeInverseMatchesShiftedInverse) {
  Rng rng(17);
  Tensor m = rng.NormalTensor(Shape{3, 3}, 0.0, 0.5);
  Var a = ag::Param(m);
  Var inv = ag::RidgeInverse(a, 2.0);
  Tensor shifted = m;
  for (Index i = 0; i < 3; ++i) shifted.at(i, i) += 2.0;
  Tensor product = shifted.MatMul(inv.value());
  EXPECT_LT((product - Tensor::Eye(3)).MaxAbs(), 1e-9);
}

TEST(AutogradTest, GradientAccumulationAcrossBackwardCalls) {
  Var a = ag::Param(Tensor::FromRows(1, 1, {3.0}));
  ag::Sum(ag::Square(a)).Backward();
  ag::Sum(ag::Square(a)).Backward();
  // d/da a^2 = 6 per pass; two passes accumulate to 12.
  EXPECT_NEAR(a.grad()[0], 12.0, 1e-12);
  a.ZeroGrad();
  EXPECT_EQ(a.grad()[0], 0.0);
}

TEST(AutogradTest, DiamondGraphGradient) {
  // y = (a*a) + (a*a) reuses the same intermediate twice.
  Var a = ag::Param(Tensor::FromRows(1, 1, {2.0}));
  Var sq = ag::Square(a);
  Var y = ag::Sum(ag::Add(sq, sq));
  y.Backward();
  EXPECT_NEAR(a.grad()[0], 8.0, 1e-12);  // d/da 2a^2 = 4a
}

TEST(AutogradTest, ChainedCompositeGradient) {
  Rng rng(18);
  Var a = ag::Param(rng.NormalTensor(Shape{2, 3}));
  Var b = ag::Param(rng.NormalTensor(Shape{3, 2}));
  auto fn = [&] {
    ag::Var h = ag::Tanh(ag::MatMul(a, b));
    ag::Var p = ag::Softmax(h);
    return ag::Mean(ag::Square(p));
  };
  EXPECT_LT(MaxGradError(a, fn), kTol);
  EXPECT_LT(MaxGradError(b, fn), kTol);
}

}  // namespace
}  // namespace diffode
