// Checkpoint round-trip for the serving path: train a small DIFFODE, save
// it, reload into a freshly constructed model, freeze, and verify the frozen
// model reproduces the trained one bitwise under NoGradScope. Also pins the
// TakeAuxiliaryLoss contract (cleared after read, undefined when absent)
// across the whole model zoo.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "baselines/zoo.h"
#include "core/diffode_model.h"
#include "data/generators.h"
#include "data/sequence_batch.h"
#include "nn/serialize.h"
#include "tensor/random.h"
#include "train/trainer.h"

namespace diffode {
namespace {

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.shape() == b.shape()) << what;
  for (Index i = 0; i < a.numel(); ++i) {
    const Scalar av = a[i], bv = b[i];
    std::uint64_t ia, ib;
    std::memcpy(&ia, &av, sizeof(ia));
    std::memcpy(&ib, &bv, sizeof(ib));
    EXPECT_EQ(ia, ib) << what << " i=" << i << " a=" << av << " b=" << bv;
  }
}

core::DiffOdeConfig TinyConfig() {
  core::DiffOdeConfig config;
  config.input_dim = 1;
  config.latent_dim = 8;
  config.hippo_dim = 6;
  config.info_dim = 6;
  config.mlp_hidden = 12;
  config.num_classes = 2;
  config.step = 1.0;
  return config;
}

data::IrregularSeries TinySeries(std::uint64_t seed) {
  Rng rng(seed);
  data::IrregularSeries s;
  const Index n = 8;
  s.values = Tensor(Shape{n, 1});
  s.mask = Tensor::Ones(Shape{n, 1});
  Scalar t = 0.0;
  for (Index i = 0; i < n; ++i) {
    t += rng.Uniform(0.2, 1.0);
    s.times.push_back(t);
    s.values.at(i, 0) = std::sin(t) + rng.Normal(0.0, 0.05);
  }
  s.label = 0;
  return s;
}

std::string CheckpointPath(const char* name) {
  return testing::TempDir() + name;
}

TEST(SerializeRoundtripTest, FrozenReloadMatchesTrainedModelBitwise) {
  data::SyntheticPeriodicConfig dconfig;
  dconfig.num_series = 12;
  dconfig.grid_points = 8;
  data::Dataset ds = data::MakeSyntheticPeriodic(dconfig);

  core::DiffOde trained(TinyConfig());
  train::TrainOptions options;
  options.epochs = 2;
  options.batch_size = 16;
  options.lr = 1e-3;
  options.patience = 100;
  (void)train::TrainClassifier(&trained, ds, options);

  const std::string path = CheckpointPath("diffode_roundtrip.ckpt");
  auto trained_params = trained.Params();
  ASSERT_TRUE(nn::SaveParams(trained_params, path));

  // Fresh model, different init seed: every weight must come from the file.
  core::DiffOdeConfig config2 = TinyConfig();
  config2.seed = 1234;
  core::DiffOde served(config2);
  auto served_params = served.Params();
  ASSERT_TRUE(nn::LoadParams(&served_params, path));
  served.Freeze();
  for (const auto& p : served.Params()) EXPECT_FALSE(p.requires_grad());

  data::IrregularSeries s = TinySeries(21);
  const std::vector<Scalar> queries = {s.times[3] + 0.1,
                                       s.times.back() + 0.5};
  (void)trained.TakeAuxiliaryLoss();
  Tensor logits_ref = trained.ClassifyLogits(s).value();
  (void)trained.TakeAuxiliaryLoss();
  std::vector<Tensor> preds_ref;
  for (auto& v : trained.PredictAt(s, queries)) preds_ref.push_back(v.value());
  (void)trained.TakeAuxiliaryLoss();

  ag::NoGradScope no_grad;
  ExpectBitwiseEqual(served.ClassifyLogits(s).value(), logits_ref, "logits");
  (void)served.TakeAuxiliaryLoss();
  std::vector<ag::Var> preds = served.PredictAt(s, queries);
  (void)served.TakeAuxiliaryLoss();
  ASSERT_EQ(preds.size(), preds_ref.size());
  for (std::size_t k = 0; k < preds.size(); ++k)
    ExpectBitwiseEqual(preds[k].value(), preds_ref[k], "PredictAt");
  std::remove(path.c_str());
}

// Serialization stores plain f64 on disk in every precision; Freeze(kF32)
// rounds the parameters through float BEFORE the snapshot cast, so a
// save -> load -> Freeze(kF32) round-trip rebuilds the frozen f32 serving
// snapshot bit for bit: the reloaded weights round to themselves (the
// rounding is idempotent) and the f32 engine is deterministic.
TEST(SerializeRoundtripTest, FrozenF32SnapshotReloadsBitExact) {
  core::DiffOde a(TinyConfig());
  a.Freeze(Precision::kF32);
  ASSERT_EQ(a.serving_precision(), Precision::kF32);
  const std::string path = CheckpointPath("diffode_f32_roundtrip.ckpt");
  auto a_params = a.Params();
  ASSERT_TRUE(nn::SaveParams(a_params, path));

  core::DiffOdeConfig config2 = TinyConfig();
  config2.seed = 4321;  // every weight must come from the file
  core::DiffOde b(config2);
  auto b_params = b.Params();
  ASSERT_TRUE(nn::LoadParams(&b_params, path));
  b.Freeze(Precision::kF32);

  // The reloaded parameters are already f32-representable, so the second
  // rounding is the identity and both masters are bitwise equal.
  const auto pa = a.Params();
  const auto pb = b.Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    ExpectBitwiseEqual(pa[i].value(), pb[i].value(), "f32 param");

  // And the f32 engines over the two snapshots produce bitwise-identical
  // serving outputs.
  const data::IrregularSeries s1 = TinySeries(31);
  const data::IrregularSeries s2 = TinySeries(32);
  const std::vector<const data::IrregularSeries*> ptrs = {&s1, &s2};
  const data::SequenceBatch batch = data::MakeSequenceBatch(ptrs);
  ExpectBitwiseEqual(a.ClassifyLogitsBatched(batch),
                     b.ClassifyLogitsBatched(batch), "f32 logits");
  const std::vector<std::vector<Scalar>> times(
      2, std::vector<Scalar>{s1.times.front(), s1.times.back() + 0.5});
  const auto preds_a = a.PredictAtBatched(batch, times);
  const auto preds_b = b.PredictAtBatched(batch, times);
  ASSERT_EQ(preds_a.size(), preds_b.size());
  for (std::size_t r = 0; r < preds_a.size(); ++r) {
    ASSERT_EQ(preds_a[r].size(), preds_b[r].size());
    for (std::size_t k = 0; k < preds_a[r].size(); ++k)
      ExpectBitwiseEqual(preds_a[r][k], preds_b[r][k], "f32 pred");
  }
  std::remove(path.c_str());
}

TEST(SerializeRoundtripTest, LoadRejectsArchitectureMismatch) {
  core::DiffOde a(TinyConfig());
  const std::string path = CheckpointPath("diffode_mismatch.ckpt");
  auto a_params = a.Params();
  ASSERT_TRUE(nn::SaveParams(a_params, path));
  core::DiffOdeConfig other = TinyConfig();
  other.latent_dim = 16;  // different shapes
  core::DiffOde b(other);
  auto b_params = b.Params();
  EXPECT_FALSE(nn::LoadParams(&b_params, path));
  std::remove(path.c_str());
}

TEST(SerializeRoundtripTest, FrozenForwardBuildsNoTrainableGraph) {
  core::DiffOde model(TinyConfig());
  model.Freeze();
  data::IrregularSeries s = TinySeries(5);
  // Even in grad mode, a frozen model's outputs depend on no trainable leaf,
  // so the root does not require grad and carries no backward closure.
  ag::Var logits = model.ClassifyLogits(s);
  (void)model.TakeAuxiliaryLoss();
  EXPECT_FALSE(logits.requires_grad());
}

// The TakeAuxiliaryLoss contract, uniformly across the zoo:
//  - undefined before any forward,
//  - after a forward, a single Take drains the slot (second Take undefined).
TEST(SerializeRoundtripTest, TakeAuxiliaryLossContractAcrossZoo) {
  data::IrregularSeries s = TinySeries(9);
  std::vector<std::string> names = baselines::BaselineNames();
  for (const auto& name : names) {
    baselines::BaselineConfig config;
    config.input_dim = 1;
    config.hidden_dim = 8;
    config.hippo_dim = 6;
    config.step = 0.5;
    auto model = baselines::MakeBaseline(name, config);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_FALSE(model->TakeAuxiliaryLoss().defined()) << name;
    (void)model->ClassifyLogits(s);
    (void)model->TakeAuxiliaryLoss();  // may or may not be defined
    EXPECT_FALSE(model->TakeAuxiliaryLoss().defined())
        << name << ": aux slot not cleared by Take";
  }
  // DIFFODE: defined after a grad-on forward (consistency term), cleared by
  // one Take, and never produced under NoGradScope.
  core::DiffOde model(TinyConfig());
  EXPECT_FALSE(model.TakeAuxiliaryLoss().defined());
  (void)model.ClassifyLogits(s);
  EXPECT_TRUE(model.TakeAuxiliaryLoss().defined());
  EXPECT_FALSE(model.TakeAuxiliaryLoss().defined());
  ag::NoGradScope no_grad;
  (void)model.ClassifyLogits(s);
  EXPECT_FALSE(model.TakeAuxiliaryLoss().defined());
}

}  // namespace
}  // namespace diffode
