// Cross-backend equivalence and per-ISA determinism, over the full
// (dtype x ISA) matrix: {f64, f32} x {scalar, avx2, avx512}. SIMD legs skip
// at runtime when the host CPU (or the build) lacks the ISA.
//
// Backends are allowed to differ by rounding (FMA contraction, SIMD lane
// association, polynomial transcendentals), so cross-ISA checks use an ulp
// budget in the dtype under test rather than bitwise equality. Within one
// (ISA, dtype) pair, results must be bitwise identical at any thread count —
// the PR-1 determinism contract, re-verified here for every backend.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "core/parallel.h"
#include "tensor/kernels.h"
#include "tensor/random.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace diffode::kernels {
namespace {

// SIMD backends usable on this host/build, each compared against scalar.
std::vector<simd::Isa> SimdIsas() {
  std::vector<simd::Isa> isas;
  if (simd::IsaSupported(simd::Isa::kAvx2)) isas.push_back(simd::Isa::kAvx2);
  if (simd::IsaSupported(simd::Isa::kAvx512))
    isas.push_back(simd::Isa::kAvx512);
  return isas;
}

// Restores the startup ISA even if the test fails mid-way.
struct IsaGuard {
  explicit IsaGuard(simd::Isa isa) : prev(simd::ActiveIsa()) {
    EXPECT_TRUE(simd::SetActiveIsa(isa));
  }
  ~IsaGuard() { simd::SetActiveIsa(prev); }
  simd::Isa prev;
};

struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) { parallel::ThreadPool::SetNumThreads(n); }
  ~ThreadCountGuard() { parallel::ThreadPool::SetNumThreads(0); }
};

template <typename T>
struct UlpInt;
template <>
struct UlpInt<double> {
  using S = std::int64_t;
};
template <>
struct UlpInt<float> {
  using S = std::int32_t;
};

// Distance in representable values of T between a and b (same-sign finite
// values; the monotone integer mapping of IEEE-754 makes this exact).
template <typename T>
std::uint64_t UlpDiff(T a, T b) {
  if (a == b) return 0;
  if (std::isnan(a) && std::isnan(b)) return 0;
  if (std::isnan(a) || std::isnan(b)) return ~std::uint64_t{0};
  typename UlpInt<T>::S ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if ((ia < 0) != (ib < 0)) return ~std::uint64_t{0};  // opposite signs
  const auto d = ia - ib;
  return static_cast<std::uint64_t>(d < 0 ? -d : d);
}

// Cross-ISA agreement: |got - want| within max_ulp (in T's ulps), with an
// absolute escape hatch for results that cancel to ~0 (ulp distance explodes
// near zero).
template <typename T>
void ExpectClose(const TensorT<T>& got, const TensorT<T>& want,
                 std::uint64_t max_ulp, double abs_tol, const char* what) {
  ASSERT_TRUE(got.shape() == want.shape());
  for (Index i = 0; i < got.numel(); ++i) {
    if (std::fabs(static_cast<double>(got[i]) -
                  static_cast<double>(want[i])) <= abs_tol)
      continue;
    EXPECT_LE(UlpDiff(got[i], want[i]), max_ulp)
        << what << " i=" << i << " got=" << got[i] << " want=" << want[i];
  }
}

template <typename T>
void ExpectBitwiseEqual(const TensorT<T>& a, const TensorT<T>& b,
                        const char* what) {
  ASSERT_TRUE(a.shape() == b.shape());
  for (Index i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(UlpDiff(a[i], b[i]), 0u)
        << what << " i=" << i << " a=" << a[i] << " b=" << b[i];
  }
}

// Per-dtype tolerances: the f32 columns scale the f64 ones by the epsilon
// ratio (~1.2e-7 / 2.2e-16), keeping the same multiple-of-eps strictness.
template <typename T>
struct Tol;
template <>
struct Tol<double> {
  static constexpr double kGemmAbs = 1e-13;
  static constexpr double kVecAbs = 4e-15;
  static constexpr double kSumRel = 1e-11;
};
template <>
struct Tol<float> {
  static constexpr double kGemmAbs = 5e-5;
  static constexpr double kVecAbs = 2e-6;
  static constexpr double kSumRel = 5e-4;
};

// Shapes chosen to exercise every microkernel edge: sizes below one vector
// (f64 and f32 widths), non-multiples of the 8-row / 4-column register
// blocks, the kc=256 packing boundary of GemmTN, GEMV-like n=1, and empty
// tensors.
struct GemmShape {
  Index m, k, n;
};
const GemmShape kGemmShapes[] = {
    {1, 1, 1},   {1, 9, 1},    {3, 5, 2},    {7, 13, 5},   {8, 32, 4},
    {9, 33, 5},  {17, 300, 7}, {31, 64, 1},  {64, 257, 3}, {65, 130, 33},
    {128, 32, 128}, {0, 4, 4}, {4, 0, 4},    {4, 4, 0},
};

template <typename Fn>
auto WithIsa(simd::Isa isa, Fn fn) {
  IsaGuard guard(isa);
  return fn();
}

template <typename T>
void CheckGemmFamily(simd::Isa simd_isa) {
  Rng rng(101);
  for (const auto& s : kGemmShapes) {
    TensorT<T> a = rng.NormalTensor(Shape{s.m, s.k}).template Cast<T>();
    TensorT<T> b = rng.NormalTensor(Shape{s.k, s.n}).template Cast<T>();
    // A / B stored transposed for the TN / NT variants.
    TensorT<T> at = rng.NormalTensor(Shape{s.k, s.m}).template Cast<T>();
    TensorT<T> bt = rng.NormalTensor(Shape{s.n, s.k}).template Cast<T>();

    auto run = [&](simd::Isa isa,
                   void (*gemm)(Index, Index, Index, const T*, const T*, T*),
                   const TensorT<T>& lhs, const TensorT<T>& rhs) {
      return WithIsa(isa, [&] {
        TensorT<T> c(Shape{s.m, s.n});
        gemm(s.m, s.k, s.n, lhs.data(), rhs.data(), c.data());
        return c;
      });
    };

    // k accumulation magnifies rounding differences, so budget scales with k.
    const std::uint64_t ulp = 16 + 4 * static_cast<std::uint64_t>(s.k);
    const double abs = Tol<T>::kGemmAbs;
    ExpectClose<T>(run(simd_isa, Gemm<T>, a, b),
                   run(simd::Isa::kScalar, Gemm<T>, a, b), ulp, abs, "Gemm");
    ExpectClose<T>(run(simd_isa, GemmTN<T>, at, b),
                   run(simd::Isa::kScalar, GemmTN<T>, at, b), ulp, abs,
                   "GemmTN");
    ExpectClose<T>(run(simd_isa, GemmNT<T>, a, bt),
                   run(simd::Isa::kScalar, GemmNT<T>, a, bt), ulp, abs,
                   "GemmNT");
  }
}

TEST(KernelsIsaTest, GemmFamilyMatchesScalarBackend) {
  const auto isas = SimdIsas();
  if (isas.empty()) GTEST_SKIP() << "no SIMD backend on this host/build";
  for (simd::Isa isa : isas) {
    SCOPED_TRACE(simd::IsaName(isa));
    CheckGemmFamily<double>(isa);
    CheckGemmFamily<float>(isa);
  }
}

template <typename T>
void CheckVectorOps(simd::Isa simd_isa) {
  Rng rng(102);
  for (Index n : {Index{0}, Index{1}, Index{3}, Index{4}, Index{7}, Index{15},
                  Index{17}, Index{64}, Index{1001}, Index{20000}}) {
    TensorT<T> x =
        rng.NormalTensor(Shape{1, std::max<Index>(n, 1)}).template Cast<T>();
    TensorT<T> y0 =
        rng.NormalTensor(Shape{1, std::max<Index>(n, 1)}).template Cast<T>();
    const T alpha = T(1.7);

    auto axpy = [&](simd::Isa isa) {
      return WithIsa(isa, [&] {
        TensorT<T> y = y0;
        Axpy(n, alpha, x.data(), y.data());
        return y;
      });
    };
    auto add_scaled = [&](simd::Isa isa) {
      return WithIsa(isa, [&] {
        TensorT<T> out = TensorT<T>::Uninit(x.shape());
        AddScaled(n, x.data(), alpha, y0.data(), out.data());
        for (Index i = n; i < out.numel(); ++i) out[i] = T(0);
        return out;
      });
    };
    auto scale = [&](simd::Isa isa) {
      return WithIsa(isa, [&] {
        TensorT<T> v = x;
        Scale(n, alpha, v.data());
        return v;
      });
    };
    // Per-element ops: a*b+c contracts to FMA on the SIMD backends only. The
    // absolute error is bounded by one rounding of the product (~eps·|αx|),
    // but the ulp distance of the SUM blows up when the add cancels, so the
    // budget pairs a small ulp cap with an operand-scaled absolute floor.
    ExpectClose<T>(axpy(simd_isa), axpy(simd::Isa::kScalar), 4,
                   Tol<T>::kVecAbs, "Axpy");
    ExpectClose<T>(add_scaled(simd_isa), add_scaled(simd::Isa::kScalar), 4,
                   Tol<T>::kVecAbs, "AddScaled");
    ExpectBitwiseEqual<T>(scale(simd_isa), scale(simd::Isa::kScalar), "Scale");
  }
}

TEST(KernelsIsaTest, VectorOpsMatchScalarBackend) {
  const auto isas = SimdIsas();
  if (isas.empty()) GTEST_SKIP() << "no SIMD backend on this host/build";
  for (simd::Isa isa : isas) {
    SCOPED_TRACE(simd::IsaName(isa));
    CheckVectorOps<double>(isa);
    CheckVectorOps<float>(isa);
  }
}

template <typename T>
void CheckReductions(simd::Isa simd_isa) {
  Rng rng(103);
  for (Index n : {Index{0}, Index{1}, Index{5}, Index{4095}, Index{4096},
                  Index{4097}, Index{50000}}) {
    TensorT<T> x =
        rng.NormalTensor(Shape{1, std::max<Index>(n, 1)}).template Cast<T>();
    TensorT<T> y =
        rng.NormalTensor(Shape{1, std::max<Index>(n, 1)}).template Cast<T>();
    T sum_simd, sum_sca, dot_simd, dot_sca;
    {
      IsaGuard g(simd_isa);
      sum_simd = Sum(n, x.data());
      dot_simd = Dot(n, x.data(), y.data());
    }
    {
      IsaGuard g(simd::Isa::kScalar);
      sum_sca = Sum(n, x.data());
      dot_sca = Dot(n, x.data(), y.data());
    }
    const double tol =
        Tol<T>::kSumRel * std::sqrt(static_cast<double>(n) + 1.0);
    EXPECT_NEAR(sum_simd, sum_sca, tol) << "n=" << n;
    EXPECT_NEAR(dot_simd, dot_sca, tol) << "n=" << n;
  }
}

TEST(KernelsIsaTest, ReductionsMatchScalarBackend) {
  const auto isas = SimdIsas();
  if (isas.empty()) GTEST_SKIP() << "no SIMD backend on this host/build";
  for (simd::Isa isa : isas) {
    SCOPED_TRACE(simd::IsaName(isa));
    CheckReductions<double>(isa);
    CheckReductions<float>(isa);
  }
}

template <typename T>
void CheckTranscendentals(simd::Isa simd_isa) {
  // Regular range plus the branch points and extremes of the vector
  // implementations: tanh's 0.625 split, exp's overflow/flush thresholds
  // (f64 thresholds; past the f32 range both paths saturate identically),
  // infinities and NaN.
  std::vector<double> xs;
  Rng rng(104);
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.Uniform(-30.0, 30.0));
  for (double s : {-1.0, 1.0}) {
    for (double v : {0.0, 1e-30, 1e-8, 0.624, 0.625, 0.626, 1.0, 19.0, 22.0,
                     80.0, 87.0, 89.0, 100.0, 708.0, 709.7, 709.9, 745.0,
                     746.0, 1e4})
      xs.push_back(s * v);
  }
  xs.push_back(std::numeric_limits<double>::infinity());
  xs.push_back(-std::numeric_limits<double>::infinity());
  xs.push_back(std::numeric_limits<double>::quiet_NaN());

  const Index n = static_cast<Index>(xs.size());
  TensorT<T> x(Shape{1, n});
  for (Index i = 0; i < n; ++i)
    x[i] = static_cast<T>(xs[static_cast<std::size_t>(i)]);

  auto run = [&](simd::Isa isa, void (*map)(Index, const T*, T*)) {
    return WithIsa(isa, [&] {
      TensorT<T> out = TensorT<T>::Uninit(x.shape());
      map(n, x.data(), out.data());
      return out;
    });
  };

  // 4 ulp vs libm plus an absolute floor for subnormal exp results.
  const double abs = std::is_same_v<T, float> ? 1e-37 : 1e-300;
  ExpectClose<T>(run(simd_isa, MapTanh<T>), run(simd::Isa::kScalar, MapTanh<T>),
                 4, abs, "tanh");
  ExpectClose<T>(run(simd_isa, MapSigmoid<T>),
                 run(simd::Isa::kScalar, MapSigmoid<T>), 4, abs, "sigmoid");
  ExpectClose<T>(run(simd_isa, MapExp<T>), run(simd::Isa::kScalar, MapExp<T>),
                 4, abs, "exp");
}

TEST(KernelsIsaTest, TranscendentalsMatchLibm) {
  const auto isas = SimdIsas();
  if (isas.empty()) GTEST_SKIP() << "no SIMD backend on this host/build";
  for (simd::Isa isa : isas) {
    SCOPED_TRACE(simd::IsaName(isa));
    CheckTranscendentals<double>(isa);
    CheckTranscendentals<float>(isa);
  }
}

template <typename T>
void CheckThreadDeterminism(const std::vector<simd::Isa>& isas) {
  Rng rng(105);
  const Index m = 96, k = 300, n = 40;
  TensorT<T> a = rng.NormalTensor(Shape{m, k}).template Cast<T>();
  TensorT<T> b = rng.NormalTensor(Shape{k, n}).template Cast<T>();
  TensorT<T> big = rng.NormalTensor(Shape{1, 50000}).template Cast<T>();

  for (simd::Isa isa : isas) {
    IsaGuard ig(isa);
    TensorT<T> c1(Shape{m, n}), t1 = TensorT<T>::Uninit(big.shape());
    T s1;
    {
      ThreadCountGuard tg(1);
      Gemm(m, k, n, a.data(), b.data(), c1.data());
      MapTanh(big.numel(), big.data(), t1.data());
      s1 = Sum(big.numel(), big.data());
    }
    for (int threads : {2, 4}) {
      ThreadCountGuard tg(threads);
      TensorT<T> c(Shape{m, n}), t = TensorT<T>::Uninit(big.shape());
      Gemm(m, k, n, a.data(), b.data(), c.data());
      MapTanh(big.numel(), big.data(), t.data());
      const T s = Sum(big.numel(), big.data());
      ExpectBitwiseEqual<T>(c, c1, simd::IsaName(isa));
      ExpectBitwiseEqual<T>(t, t1, simd::IsaName(isa));
      EXPECT_EQ(UlpDiff(s, s1), 0u)
          << simd::IsaName(isa) << " threads=" << threads;
    }
  }
}

TEST(KernelsIsaTest, BitwiseDeterministicAcrossThreadCountsPerIsa) {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  for (simd::Isa isa : SimdIsas()) isas.push_back(isa);
  CheckThreadDeterminism<double>(isas);
  CheckThreadDeterminism<float>(isas);
}

TEST(KernelsIsaTest, EnvOverrideAndDispatchStateAreConsistent) {
  // Whatever the startup resolution chose, it must be a supported ISA, and
  // SetActiveIsa must refuse unsupported requests without changing state.
  const simd::Isa active = simd::ActiveIsa();
  EXPECT_TRUE(simd::IsaSupported(active));
  // Auto-resolution caps at AVX2; only the explicit override (or
  // SetActiveIsa, exercised below) reaches AVX-512.
  const char* env = std::getenv("DIFFODE_KERNEL_ISA");
  if (env == nullptr || std::strcmp(env, "avx512") != 0) {
    EXPECT_TRUE(active == simd::Isa::kScalar || active == simd::Isa::kAvx2);
  }
  for (simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (simd::IsaSupported(isa)) {
      EXPECT_TRUE(simd::SetActiveIsa(isa));
      EXPECT_EQ(simd::ActiveIsa(), isa);
    } else {
      const simd::Isa before = simd::ActiveIsa();
      EXPECT_FALSE(simd::SetActiveIsa(isa));
      EXPECT_EQ(simd::ActiveIsa(), before);
    }
  }
  EXPECT_TRUE(simd::SetActiveIsa(active));
}

TEST(KernelsIsaTest, BestSupportedIsaOrdering) {
  // BestSupportedIsa reports hardware truth and must be internally
  // consistent with the IsaSupported predicate.
  const simd::Isa best = simd::BestSupportedIsa();
  EXPECT_TRUE(simd::IsaSupported(best));
  if (simd::IsaSupported(simd::Isa::kAvx512))
    EXPECT_EQ(best, simd::Isa::kAvx512);
  else if (simd::IsaSupported(simd::Isa::kAvx2))
    EXPECT_EQ(best, simd::Isa::kAvx2);
  else
    EXPECT_EQ(best, simd::Isa::kScalar);
}

}  // namespace
}  // namespace diffode::kernels
