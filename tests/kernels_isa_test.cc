// Scalar-vs-AVX2 backend equivalence and per-ISA determinism.
//
// The two backends are allowed to differ by rounding (FMA contraction, SIMD
// lane association, polynomial transcendentals), so cross-ISA checks use an
// ulp budget rather than bitwise equality. Within one ISA, results must be
// bitwise identical at any thread count — the PR-1 determinism contract,
// re-verified here for both backends.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/parallel.h"
#include "tensor/kernels.h"
#include "tensor/random.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace diffode::kernels {
namespace {

bool HasAvx2() { return simd::BestSupportedIsa() == simd::Isa::kAvx2; }

// Restores the startup ISA even if the test fails mid-way.
struct IsaGuard {
  explicit IsaGuard(simd::Isa isa) : prev(simd::ActiveIsa()) {
    EXPECT_TRUE(simd::SetActiveIsa(isa));
  }
  ~IsaGuard() { simd::SetActiveIsa(prev); }
  simd::Isa prev;
};

struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) { parallel::ThreadPool::SetNumThreads(n); }
  ~ThreadCountGuard() { parallel::ThreadPool::SetNumThreads(0); }
};

// Distance in representable doubles between a and b (same-sign finite
// values; the monotone integer mapping of IEEE-754 makes this exact).
std::uint64_t UlpDiff(double a, double b) {
  if (a == b) return 0;
  if (std::isnan(a) && std::isnan(b)) return 0;
  if (std::isnan(a) || std::isnan(b)) return ~std::uint64_t{0};
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if ((ia < 0) != (ib < 0)) return ~std::uint64_t{0};  // opposite signs
  const std::int64_t d = ia - ib;
  return static_cast<std::uint64_t>(d < 0 ? -d : d);
}

// Cross-ISA agreement: |got - want| within max_ulp, with an absolute escape
// hatch for results that cancel to ~0 (ulp distance explodes near zero).
void ExpectClose(const Tensor& got, const Tensor& want, std::uint64_t max_ulp,
                 double abs_tol, const char* what) {
  ASSERT_TRUE(got.shape() == want.shape());
  for (Index i = 0; i < got.numel(); ++i) {
    if (std::fabs(got[i] - want[i]) <= abs_tol) continue;
    EXPECT_LE(UlpDiff(got[i], want[i]), max_ulp)
        << what << " i=" << i << " got=" << got[i] << " want=" << want[i];
  }
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.shape() == b.shape());
  for (Index i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(UlpDiff(a[i], b[i]), 0u)
        << what << " i=" << i << " a=" << a[i] << " b=" << b[i];
  }
}

// Shapes chosen to exercise every microkernel edge: sizes below one vector,
// non-multiples of the 8-row / 4-column register blocks, the kc=256 packing
// boundary of GemmTN, GEMV-like n=1, and empty tensors.
struct GemmShape {
  Index m, k, n;
};
const GemmShape kGemmShapes[] = {
    {1, 1, 1},   {1, 9, 1},    {3, 5, 2},    {7, 13, 5},   {8, 32, 4},
    {9, 33, 5},  {17, 300, 7}, {31, 64, 1},  {64, 257, 3}, {65, 130, 33},
    {128, 32, 128}, {0, 4, 4}, {4, 0, 4},    {4, 4, 0},
};

template <typename Fn>
Tensor WithIsa(simd::Isa isa, Fn fn) {
  IsaGuard guard(isa);
  return fn();
}

TEST(KernelsIsaTest, GemmFamilyMatchesScalarBackend) {
  if (!HasAvx2()) GTEST_SKIP() << "no AVX2+FMA on this host/build";
  Rng rng(101);
  for (const auto& s : kGemmShapes) {
    Tensor a = rng.NormalTensor(Shape{s.m, s.k});
    Tensor b = rng.NormalTensor(Shape{s.k, s.n});
    Tensor at = rng.NormalTensor(Shape{s.k, s.m});  // A stored transposed
    Tensor bt = rng.NormalTensor(Shape{s.n, s.k});  // B stored transposed

    auto run = [&](simd::Isa isa, void (*gemm)(Index, Index, Index,
                                               const Scalar*, const Scalar*,
                                               Scalar*),
                   const Tensor& lhs, const Tensor& rhs) {
      return WithIsa(isa, [&] {
        Tensor c(Shape{s.m, s.n});
        gemm(s.m, s.k, s.n, lhs.data(), rhs.data(), c.data());
        return c;
      });
    };

    // k accumulation magnifies rounding differences, so budget scales with k.
    const std::uint64_t ulp = 16 + 4 * static_cast<std::uint64_t>(s.k);
    ExpectClose(run(simd::Isa::kAvx2, Gemm, a, b),
                run(simd::Isa::kScalar, Gemm, a, b), ulp, 1e-13, "Gemm");
    ExpectClose(run(simd::Isa::kAvx2, GemmTN, at, b),
                run(simd::Isa::kScalar, GemmTN, at, b), ulp, 1e-13, "GemmTN");
    ExpectClose(run(simd::Isa::kAvx2, GemmNT, a, bt),
                run(simd::Isa::kScalar, GemmNT, a, bt), ulp, 1e-13, "GemmNT");
  }
}

TEST(KernelsIsaTest, VectorOpsMatchScalarBackend) {
  if (!HasAvx2()) GTEST_SKIP() << "no AVX2+FMA on this host/build";
  Rng rng(102);
  for (Index n : {Index{0}, Index{1}, Index{3}, Index{4}, Index{7}, Index{64},
                  Index{1001}, Index{20000}}) {
    Tensor x = rng.NormalTensor(Shape{1, std::max<Index>(n, 1)});
    Tensor y0 = rng.NormalTensor(Shape{1, std::max<Index>(n, 1)});
    const Scalar alpha = 1.7;

    auto axpy = [&](simd::Isa isa) {
      return WithIsa(isa, [&] {
        Tensor y = y0;
        Axpy(n, alpha, x.data(), y.data());
        return y;
      });
    };
    auto add_scaled = [&](simd::Isa isa) {
      return WithIsa(isa, [&] {
        Tensor out = Tensor::Uninit(x.shape());
        AddScaled(n, x.data(), alpha, y0.data(), out.data());
        for (Index i = n; i < out.numel(); ++i) out[i] = 0.0;
        return out;
      });
    };
    auto scale = [&](simd::Isa isa) {
      return WithIsa(isa, [&] {
        Tensor v = x;
        Scale(n, alpha, v.data());
        return v;
      });
    };
    // Per-element ops: a*b+c contracts to FMA on the AVX2 backend only. The
    // absolute error is bounded by one rounding of the product (~eps·|αx|),
    // but the ulp distance of the SUM blows up when the add cancels, so the
    // budget pairs a small ulp cap with an operand-scaled absolute floor.
    ExpectClose(axpy(simd::Isa::kAvx2), axpy(simd::Isa::kScalar), 4, 4e-15,
                "Axpy");
    ExpectClose(add_scaled(simd::Isa::kAvx2), add_scaled(simd::Isa::kScalar),
                4, 4e-15, "AddScaled");
    ExpectBitwiseEqual(scale(simd::Isa::kAvx2), scale(simd::Isa::kScalar),
                       "Scale");
  }
}

TEST(KernelsIsaTest, ReductionsMatchScalarBackend) {
  if (!HasAvx2()) GTEST_SKIP() << "no AVX2+FMA on this host/build";
  Rng rng(103);
  for (Index n : {Index{0}, Index{1}, Index{5}, Index{4095}, Index{4096},
                  Index{4097}, Index{50000}}) {
    Tensor x = rng.NormalTensor(Shape{1, std::max<Index>(n, 1)});
    Tensor y = rng.NormalTensor(Shape{1, std::max<Index>(n, 1)});
    Scalar sum_avx, sum_sca, dot_avx, dot_sca;
    {
      IsaGuard g(simd::Isa::kAvx2);
      sum_avx = Sum(n, x.data());
      dot_avx = Dot(n, x.data(), y.data());
    }
    {
      IsaGuard g(simd::Isa::kScalar);
      sum_sca = Sum(n, x.data());
      dot_sca = Dot(n, x.data(), y.data());
    }
    const double tol = 1e-11 * std::sqrt(static_cast<double>(n) + 1.0);
    EXPECT_NEAR(sum_avx, sum_sca, tol) << "n=" << n;
    EXPECT_NEAR(dot_avx, dot_sca, tol) << "n=" << n;
  }
}

TEST(KernelsIsaTest, TranscendentalsMatchLibm) {
  if (!HasAvx2()) GTEST_SKIP() << "no AVX2+FMA on this host/build";
  // Regular range plus the branch points and extremes of the vector
  // implementations: tanh's 0.625 split, exp's overflow/flush thresholds,
  // infinities and NaN.
  std::vector<Scalar> xs;
  Rng rng(104);
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.Uniform(-30.0, 30.0));
  for (Scalar s : {-1.0, 1.0}) {
    for (Scalar v : {0.0, 1e-300, 1e-8, 0.624, 0.625, 0.626, 1.0, 19.0, 22.0,
                     100.0, 708.0, 709.7, 709.9, 745.0, 746.0, 1e4})
      xs.push_back(s * v);
  }
  xs.push_back(std::numeric_limits<Scalar>::infinity());
  xs.push_back(-std::numeric_limits<Scalar>::infinity());
  xs.push_back(std::numeric_limits<Scalar>::quiet_NaN());

  const Index n = static_cast<Index>(xs.size());
  Tensor x(Shape{1, n});
  for (Index i = 0; i < n; ++i) x[i] = xs[static_cast<std::size_t>(i)];

  auto run = [&](simd::Isa isa, void (*map)(Index, const Scalar*, Scalar*)) {
    return WithIsa(isa, [&] {
      Tensor out = Tensor::Uninit(x.shape());
      map(n, x.data(), out.data());
      return out;
    });
  };

  // 4 ulp vs libm plus an absolute floor for subnormal exp results.
  ExpectClose(run(simd::Isa::kAvx2, MapTanh), run(simd::Isa::kScalar, MapTanh),
              4, 1e-300, "tanh");
  ExpectClose(run(simd::Isa::kAvx2, MapSigmoid),
              run(simd::Isa::kScalar, MapSigmoid), 4, 1e-300, "sigmoid");
  ExpectClose(run(simd::Isa::kAvx2, MapExp), run(simd::Isa::kScalar, MapExp),
              4, 1e-300, "exp");
}

TEST(KernelsIsaTest, BitwiseDeterministicAcrossThreadCountsPerIsa) {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (HasAvx2()) isas.push_back(simd::Isa::kAvx2);
  Rng rng(105);
  const Index m = 96, k = 300, n = 40;
  Tensor a = rng.NormalTensor(Shape{m, k});
  Tensor b = rng.NormalTensor(Shape{k, n});
  Tensor big = rng.NormalTensor(Shape{1, 50000});

  for (simd::Isa isa : isas) {
    IsaGuard ig(isa);
    Tensor c1(Shape{m, n}), t1 = Tensor::Uninit(big.shape());
    Scalar s1;
    {
      ThreadCountGuard tg(1);
      Gemm(m, k, n, a.data(), b.data(), c1.data());
      MapTanh(big.numel(), big.data(), t1.data());
      s1 = Sum(big.numel(), big.data());
    }
    for (int threads : {2, 4}) {
      ThreadCountGuard tg(threads);
      Tensor c(Shape{m, n}), t = Tensor::Uninit(big.shape());
      Gemm(m, k, n, a.data(), b.data(), c.data());
      MapTanh(big.numel(), big.data(), t.data());
      const Scalar s = Sum(big.numel(), big.data());
      ExpectBitwiseEqual(c, c1, simd::IsaName(isa));
      ExpectBitwiseEqual(t, t1, simd::IsaName(isa));
      EXPECT_EQ(UlpDiff(s, s1), 0u) << simd::IsaName(isa) << " threads=" << threads;
    }
  }
}

TEST(KernelsIsaTest, EnvOverrideAndDispatchStateAreConsistent) {
  // Whatever the startup resolution chose, it must be a supported ISA, and
  // SetActiveIsa must refuse unsupported requests without changing state.
  const simd::Isa active = simd::ActiveIsa();
  EXPECT_TRUE(active == simd::Isa::kScalar || active == simd::Isa::kAvx2);
  if (!HasAvx2()) {
    EXPECT_EQ(active, simd::Isa::kScalar);
    EXPECT_FALSE(simd::SetActiveIsa(simd::Isa::kAvx2));
    EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
  }
  EXPECT_TRUE(simd::SetActiveIsa(simd::Isa::kScalar));
  EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
  EXPECT_TRUE(simd::SetActiveIsa(active));
}

}  // namespace
}  // namespace diffode::kernels
