#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "gradcheck.h"
#include "nn/attention.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "tensor/random.h"

namespace diffode::nn {
namespace {

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(1);
  Linear layer(3, 2, rng);
  ag::Var x = ag::Constant(Tensor::Zeros(Shape{4, 3}));
  ag::Var y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 4);
  EXPECT_EQ(y.cols(), 2);
  // Zero input -> bias rows; bias initialized to zero.
  EXPECT_EQ(y.value().MaxAbs(), 0.0);
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(2);
  Linear layer(3, 2, rng);
  ag::Var x = ag::Constant(rng.NormalTensor(Shape{2, 3}));
  ag::Var loss = ag::Mean(ag::Square(layer.Forward(x)));
  loss.Backward();
  auto params = layer.Params();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_GT(params[0].grad().MaxAbs(), 0.0);  // weight
  EXPECT_GT(params[1].grad().MaxAbs(), 0.0);  // bias
}

TEST(MlpTest, HiddenActivationBoundsOutputGrowth) {
  Rng rng(3);
  Mlp mlp({2, 8, 1}, rng, Activation::kTanh);
  // With tanh hidden units the output is a bounded-weight combination:
  // scaling the input by 1e3 cannot scale the output by 1e3.
  ag::Var x1 = ag::Constant(Tensor::FromRows(1, 2, {1.0, -1.0}));
  ag::Var x2 = ag::Constant(Tensor::FromRows(1, 2, {1e3, -1e3}));
  const Scalar y1 = std::fabs(mlp.Forward(x1).value().item());
  const Scalar y2 = std::fabs(mlp.Forward(x2).value().item());
  EXPECT_LT(y2, 1e3 * std::max(y1, 1e-3));
}

TEST(MlpTest, ParameterCount) {
  Rng rng(4);
  Mlp mlp({3, 5, 2}, rng);
  // (3*5 + 5) + (5*2 + 2) = 32.
  Index count = 0;
  for (const auto& p : mlp.Params()) count += p.value().numel();
  EXPECT_EQ(count, 32);
}

TEST(MlpTest, GradCheckThroughTwoLayers) {
  Rng rng(5);
  Mlp mlp({2, 4, 1}, rng);
  ag::Var x = ag::Param(rng.NormalTensor(Shape{1, 2}));
  EXPECT_LT(testing::MaxGradError(
                x, [&] { return ag::Sum(mlp.Forward(x)); }),
            1e-5);
}

TEST(GruCellTest, OutputBounded) {
  Rng rng(6);
  GruCell cell(3, 4, rng);
  ag::Var h = cell.InitialState(1);
  ag::Var x = ag::Constant(rng.NormalTensor(Shape{1, 3}, 0.0, 10.0));
  for (int step = 0; step < 50; ++step) h = cell.Forward(x, h);
  // h is a convex combination of tanh candidates: |h| <= 1 always.
  EXPECT_LE(h.value().MaxAbs(), 1.0 + 1e-12);
}

TEST(GruCellTest, StateUpdatesWithInput) {
  Rng rng(7);
  GruCell cell(2, 4, rng);
  ag::Var h0 = cell.InitialState(1);
  ag::Var x = ag::Constant(rng.NormalTensor(Shape{1, 2}));
  ag::Var h1 = cell.Forward(x, h0);
  EXPECT_GT((h1.value() - h0.value()).MaxAbs(), 0.0);
}

TEST(GruCellTest, GradientsReachBothWeightSets) {
  Rng rng(8);
  GruCell cell(2, 3, rng);
  ag::Var h = cell.InitialState(1);
  ag::Var x = ag::Constant(rng.NormalTensor(Shape{1, 2}));
  h = cell.Forward(x, h);
  h = cell.Forward(x, h);  // two steps so recurrent weights matter
  ag::Var loss = ag::Mean(ag::Square(h));
  loss.Backward();
  for (auto& p : cell.Params()) EXPECT_GT(p.grad().MaxAbs(), 0.0);
}

TEST(AttentionTest, ReducesToValueAverageForUniformLogits) {
  // Identical keys -> uniform attention -> output is the mean of values.
  Rng rng(9);
  Tensor k_same(Shape{4, 2});
  for (Index i = 0; i < 4; ++i) {
    k_same.at(i, 0) = 1.0;
    k_same.at(i, 1) = 2.0;
  }
  ag::Var q = ag::Constant(rng.NormalTensor(Shape{1, 2}));
  ag::Var k = ag::Constant(k_same);
  Tensor v_t = rng.NormalTensor(Shape{4, 3});
  ag::Var v = ag::Constant(v_t);
  ag::Var out = ScaledDotAttention(q, k, v);
  Tensor mean = v_t.ColSums() * 0.25;
  EXPECT_LT((out.value() - mean).MaxAbs(), 1e-12);
}

TEST(AttentionTest, MultiHeadMatchesSingleHeadWhenHeadsEqualOne) {
  Rng rng(10);
  ag::Var q = ag::Constant(rng.NormalTensor(Shape{2, 4}));
  ag::Var k = ag::Constant(rng.NormalTensor(Shape{5, 4}));
  ag::Var v = ag::Constant(rng.NormalTensor(Shape{5, 4}));
  ag::Var one = MultiHeadAttention(q, k, v, 1);
  ag::Var ref = ScaledDotAttention(q, k, v);
  EXPECT_LT((one.value() - ref.value()).MaxAbs(), 1e-12);
}

TEST(AttentionTest, MultiHeadOutputShape) {
  Rng rng(11);
  ag::Var q = ag::Constant(rng.NormalTensor(Shape{3, 8}));
  ag::Var k = ag::Constant(rng.NormalTensor(Shape{6, 8}));
  ag::Var v = ag::Constant(rng.NormalTensor(Shape{6, 8}));
  ag::Var out = MultiHeadAttention(q, k, v, 4);
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 8);
}

// ---------------------------------------------------------------------------
// Optimizers: each must minimize a simple convex quadratic.
// ---------------------------------------------------------------------------

Scalar MinimizeQuadratic(Optimizer& opt, ag::Var& x, int steps) {
  const Tensor target = Tensor::FromRows(1, 2, {3.0, -1.0});
  Scalar loss_value = 0.0;
  for (int i = 0; i < steps; ++i) {
    ag::Var loss = ag::MseLoss(x, target);
    loss_value = loss.value().item();
    loss.Backward();
    opt.StepAndZero();
  }
  return loss_value;
}

TEST(OptimizerTest, SgdConverges) {
  ag::Var x = ag::Param(Tensor::Zeros(Shape{1, 2}));
  Sgd opt({x}, 0.2);
  EXPECT_LT(MinimizeQuadratic(opt, x, 100), 1e-6);
}

TEST(OptimizerTest, SgdMomentumConverges) {
  ag::Var x = ag::Param(Tensor::Zeros(Shape{1, 2}));
  Sgd opt({x}, 0.05, 0.9);
  EXPECT_LT(MinimizeQuadratic(opt, x, 150), 1e-6);
}

TEST(OptimizerTest, AdamConverges) {
  ag::Var x = ag::Param(Tensor::Zeros(Shape{1, 2}));
  Adam opt({x}, 0.1);
  EXPECT_LT(MinimizeQuadratic(opt, x, 200), 1e-5);
}

TEST(OptimizerTest, WeightDecayShrinksUnusedParameter) {
  // A parameter with zero task gradient should decay toward zero.
  ag::Var used = ag::Param(Tensor::Zeros(Shape{1, 1}));
  ag::Var unused = ag::Param(Tensor::Full(Shape{1, 1}, 5.0));
  Adam opt({used, unused}, 0.05, /*weight_decay=*/0.1);
  const Tensor target = Tensor::Full(Shape{1, 1}, 1.0);
  for (int i = 0; i < 100; ++i) {
    ag::Var loss = ag::MseLoss(used, target);
    loss.Backward();
    unused.grad();  // ensure allocated
    opt.StepAndZero();
  }
  EXPECT_LT(std::fabs(unused.value().item()), 4.0);
}

TEST(OptimizerTest, ClipGradNorm) {
  ag::Var x = ag::Param(Tensor::Zeros(Shape{1, 4}));
  Adam opt({x}, 0.1);
  x.grad() = Tensor::Full(Shape{1, 4}, 100.0);
  opt.ClipGradNorm(1.0);
  EXPECT_NEAR(x.grad().Norm(), 1.0, 1e-9);
  // A small gradient is left untouched.
  x.grad() = Tensor::Full(Shape{1, 4}, 0.01);
  opt.ClipGradNorm(1.0);
  EXPECT_NEAR(x.grad().Norm(), 0.02, 1e-9);
}

TEST(OptimizerTest, ScaleGrads) {
  ag::Var x = ag::Param(Tensor::Zeros(Shape{1, 2}));
  Adam opt({x}, 0.1);
  x.grad() = Tensor::Full(Shape{1, 2}, 8.0);
  opt.ScaleGrads(0.25);
  EXPECT_DOUBLE_EQ(x.grad()[0], 2.0);
}

}  // namespace
}  // namespace diffode::nn
