// Behavior of the jump-ODE baseline family (ODE-RNN / GRU-ODE-Bayes /
// PolyODE): continuous evolution between observations, discrete updates at
// them, and nearest-anchor query answering.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gru_ode_bayes.h"
#include "baselines/ode_rnn.h"
#include "baselines/poly_ode.h"
#include "tensor/random.h"

namespace diffode::baselines {
namespace {

data::IrregularSeries MakeSeries(Index n, Index f, std::uint64_t seed) {
  Rng rng(seed);
  data::IrregularSeries s;
  s.values = Tensor(Shape{n, f});
  s.mask = Tensor::Ones(Shape{n, f});
  Scalar t = 0.0;
  for (Index i = 0; i < n; ++i) {
    t += rng.Uniform(0.4, 1.0);
    s.times.push_back(t);
    for (Index j = 0; j < f; ++j) s.values.at(i, j) = rng.Normal();
  }
  s.label = 0;
  return s;
}

BaselineConfig FastConfig(Index f) {
  BaselineConfig config;
  config.input_dim = f;
  config.hidden_dim = 6;
  config.mlp_hidden = 10;
  config.hippo_dim = 5;
  config.step = 0.5;
  return config;
}

TEST(JumpOdeTest, PredictionsVaryWithQueryTime) {
  OdeRnnBaseline model(FastConfig(1));
  data::IrregularSeries s = MakeSeries(5, 1, 1);
  // Queries anchored at different observations must produce different
  // outputs (the state evolves and jumps between them).
  auto preds =
      model.PredictAt(s, {s.times[1] + 0.05, s.times[3] + 0.05});
  EXPECT_GT((preds[0].value() - preds[1].value()).MaxAbs(), 0.0);
}

TEST(JumpOdeTest, ExtrapolationEvolvesBeyondLastObservation) {
  OdeRnnBaseline model(FastConfig(1));
  data::IrregularSeries s = MakeSeries(5, 1, 2);
  auto preds = model.PredictAt(
      s, {s.times.back(), s.times.back() + 2.0, s.times.back() + 4.0});
  for (const auto& p : preds) EXPECT_TRUE(p.value().AllFinite());
  // Distinct horizons -> distinct states -> (generically) distinct outputs.
  EXPECT_GT((preds[1].value() - preds[2].value()).MaxAbs(), 0.0);
}

TEST(JumpOdeTest, GruOdeBayesDriftIsBounded) {
  // The GRU-ODE field (1-u)(c-h) pulls h toward tanh candidates, so |h|
  // stays bounded by ~1 over long horizons.
  GruOdeBayesBaseline model(FastConfig(1));
  data::IrregularSeries s = MakeSeries(4, 1, 3);
  auto preds = model.PredictAt(s, {s.times.back() + 20.0});
  EXPECT_TRUE(preds[0].value().AllFinite());
}

TEST(JumpOdeTest, PolyOdeCarriesPolynomialMemory) {
  PolyOdeBaseline model(FastConfig(1));
  data::IrregularSeries s = MakeSeries(6, 1, 4);
  // Classification exercises the [h | c] split; just needs to be finite
  // and sensitive to the input values.
  Tensor logits_a = model.ClassifyLogits(s).value();
  data::IrregularSeries s2 = s;
  for (Index i = 0; i < s2.length(); ++i) s2.values.at(i, 0) += 1.0;
  Tensor logits_b = model.ClassifyLogits(s2).value();
  EXPECT_TRUE(logits_a.AllFinite());
  EXPECT_GT((logits_a - logits_b).MaxAbs(), 0.0);
}

TEST(JumpOdeTest, DeterministicAcrossRepeatedQueries) {
  OdeRnnBaseline model(FastConfig(1));
  data::IrregularSeries s = MakeSeries(5, 1, 5);
  auto p1 = model.PredictAt(s, {s.times[2]});
  auto p2 = model.PredictAt(s, {s.times[2]});
  EXPECT_EQ((p1[0].value() - p2[0].value()).MaxAbs(), 0.0);
}

}  // namespace
}  // namespace diffode::baselines
