// Lockstep batched execution (core/batched_model.h) vs the per-sequence
// path: random irregular grids, B in {1, 3, 8}, both kernel backends, 1 and
// 4 threads. Batched results must match per-sequence within 1e-10 relative;
// at B = 1 every kernel call collapses to the per-sequence shape and the
// match must be bitwise.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "baselines/zoo.h"
#include "core/batch_predictor.h"
#include "core/batched_model.h"
#include "core/diffode_model.h"
#include "core/parallel.h"
#include "data/generators.h"
#include "data/sequence_batch.h"
#include "tensor/random.h"
#include "tensor/simd.h"

namespace diffode {
namespace {

struct IsaGuard {
  explicit IsaGuard(simd::Isa isa) : prev(simd::ActiveIsa()) {
    EXPECT_TRUE(simd::SetActiveIsa(isa));
  }
  ~IsaGuard() { simd::SetActiveIsa(prev); }
  simd::Isa prev;
};

struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) { parallel::ThreadPool::SetNumThreads(n); }
  ~ThreadCountGuard() { parallel::ThreadPool::SetNumThreads(0); }
};

std::vector<simd::Isa> SupportedIsas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::IsaSupported(simd::Isa::kAvx2)) isas.push_back(simd::Isa::kAvx2);
  if (simd::IsaSupported(simd::Isa::kAvx512))
    isas.push_back(simd::Isa::kAvx512);
  return isas;
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.shape() == b.shape()) << what;
  for (Index i = 0; i < a.numel(); ++i) {
    const Scalar av = a[i], bv = b[i];
    std::uint64_t ia, ib;
    std::memcpy(&ia, &av, sizeof(ia));
    std::memcpy(&ib, &bv, sizeof(ib));
    EXPECT_EQ(ia, ib) << what << " i=" << i << " a=" << av << " b=" << bv;
  }
}

void ExpectClose(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.shape() == b.shape()) << what;
  for (Index i = 0; i < a.numel(); ++i) {
    const Scalar tol = 1e-10 * std::max(1.0, std::fabs(b[i]));
    EXPECT_NEAR(a[i], b[i], tol) << what << " i=" << i;
  }
}

// Random irregular series: random length, random gaps, partially observed
// channels (every row keeps at least one observed channel so the encoding
// stays informative, though nothing in the batched path requires that).
data::IrregularSeries MakeSeries(std::uint64_t seed, Index features = 2) {
  Rng rng(seed);
  data::IrregularSeries s;
  const Index n = 6 + static_cast<Index>(rng.Uniform(0.0, 6.0));
  s.values = Tensor(Shape{n, features});
  s.mask = Tensor(Shape{n, features});
  Scalar t = rng.Uniform(0.0, 0.3);
  for (Index i = 0; i < n; ++i) {
    t += rng.Uniform(0.1, 0.9);
    s.times.push_back(t);
    Index observed = 0;
    for (Index j = 0; j < features; ++j) {
      if (rng.Uniform(0.0, 1.0) < 0.75) {
        s.mask.at(i, j) = 1.0;
        ++observed;
      }
      s.values.at(i, j) =
          std::sin(t + static_cast<Scalar>(j)) + rng.Normal(0.0, 0.1);
    }
    if (observed == 0) s.mask.at(i, i % features) = 1.0;
  }
  s.label = static_cast<Index>(seed % 2);
  return s;
}

std::vector<data::IrregularSeries> MakeBatchSeries(Index b,
                                                   std::uint64_t seed0) {
  std::vector<data::IrregularSeries> out;
  out.reserve(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r)
    out.push_back(MakeSeries(seed0 + static_cast<std::uint64_t>(r)));
  return out;
}

// Query times per sequence: before the context window (backward chain),
// inside it, past its end, plus an unsorted duplicate.
std::vector<std::vector<Scalar>> MakeQueryTimes(
    const std::vector<data::IrregularSeries>& series) {
  std::vector<std::vector<Scalar>> times;
  times.reserve(series.size());
  for (const data::IrregularSeries& s : series) {
    const Scalar lo = s.times.front(), hi = s.times.back();
    times.push_back({hi + 0.7, lo - 0.4, 0.5 * (lo + hi), lo - 0.4});
  }
  return times;
}

core::DiffOdeConfig SmallConfig() {
  core::DiffOdeConfig config;
  config.input_dim = 2;
  config.latent_dim = 8;
  config.hippo_dim = 6;
  config.info_dim = 6;
  config.mlp_hidden = 12;
  config.num_classes = 3;
  config.step = 0.5;
  return config;
}

baselines::BaselineConfig SmallBaselineConfig() {
  baselines::BaselineConfig config;
  config.input_dim = 2;
  config.hidden_dim = 10;
  config.mlp_hidden = 12;
  config.num_classes = 3;
  config.step = 0.5;
  return config;
}

// Compares the batched forwards of `model` against its per-sequence path on
// a B-sequence batch. Bitwise at B = 1, 1e-10 relative otherwise.
void CheckModel(core::SequenceModel* model, Index b, std::uint64_t seed,
                bool expect_native) {
  const std::vector<data::IrregularSeries> series = MakeBatchSeries(b, seed);
  std::vector<const data::IrregularSeries*> ptrs;
  for (const auto& s : series) ptrs.push_back(&s);
  const data::SequenceBatch batch = data::MakeSequenceBatch(ptrs);
  const std::vector<std::vector<Scalar>> times = MakeQueryTimes(series);

  core::BatchedDispatch dispatch(model);
  EXPECT_EQ(dispatch.native(), expect_native);
  const Tensor logits = dispatch.ClassifyLogitsBatched(batch);
  const std::vector<std::vector<Tensor>> preds =
      dispatch.PredictAtBatched(batch, times);

  ag::NoGradScope no_grad;
  for (Index r = 0; r < b; ++r) {
    const data::IrregularSeries& s = series[static_cast<std::size_t>(r)];
    const Tensor ref_logits = model->ClassifyLogits(s).value();
    (void)model->TakeAuxiliaryLoss();
    if (b == 1) {
      ExpectBitwiseEqual(logits.Row(r), ref_logits, "logits");
    } else {
      ExpectClose(logits.Row(r), ref_logits, "logits");
    }
    const std::vector<ag::Var> ref_preds =
        model->PredictAt(s, times[static_cast<std::size_t>(r)]);
    (void)model->TakeAuxiliaryLoss();
    ASSERT_EQ(preds[static_cast<std::size_t>(r)].size(), ref_preds.size());
    for (std::size_t k = 0; k < ref_preds.size(); ++k) {
      if (b == 1) {
        ExpectBitwiseEqual(preds[static_cast<std::size_t>(r)][k],
                           ref_preds[k].value(), "pred");
      } else {
        ExpectClose(preds[static_cast<std::size_t>(r)][k],
                    ref_preds[k].value(), "pred");
      }
    }
  }
}

TEST(SequenceBatchTest, UnionGridAndPaddingInvariants) {
  const std::vector<data::IrregularSeries> series = MakeBatchSeries(5, 11);
  std::vector<const data::IrregularSeries*> ptrs;
  for (const auto& s : series) ptrs.push_back(&s);
  const data::SequenceBatch batch = data::MakeSequenceBatch(ptrs);
  ASSERT_EQ(batch.batch, 5);
  // Union grid is sorted-unique and covers every observation exactly once.
  for (Index u = 1; u < batch.union_size(); ++u)
    EXPECT_LT(batch.union_times[static_cast<std::size_t>(u - 1)],
              batch.union_times[static_cast<std::size_t>(u)]);
  for (Index r = 0; r < batch.batch; ++r) {
    const data::IrregularSeries& s = *ptrs[static_cast<std::size_t>(r)];
    Index seen = 0;
    for (Index u = 0; u < batch.union_size(); ++u) {
      if (!batch.IsMember(u, r)) {
        EXPECT_EQ(batch.ObsIndex(u, r), -1);
        continue;
      }
      const Index i = batch.ObsIndex(u, r);
      EXPECT_EQ(s.times[static_cast<std::size_t>(i)],
                batch.union_times[static_cast<std::size_t>(u)]);
      ++seen;
      // Padded row view holds the same numbers as the source series.
      for (Index j = 0; j < batch.features; ++j) {
        EXPECT_EQ(batch.values.at(r * batch.max_len + i, j), s.values.at(i, j));
        EXPECT_EQ(batch.mask.at(r * batch.max_len + i, j), s.mask.at(i, j));
      }
      EXPECT_EQ(batch.row_mask[static_cast<std::size_t>(r * batch.max_len + i)],
                1);
    }
    EXPECT_EQ(seen, s.length());
    for (Index i = s.length(); i < batch.max_len; ++i)
      EXPECT_EQ(batch.row_mask[static_cast<std::size_t>(r * batch.max_len + i)],
                0);
  }
}

TEST(BatchedEquivTest, DiffOdeMatchesPerSequence) {
  for (simd::Isa isa : SupportedIsas()) {
    IsaGuard ig(isa);
    for (int threads : {1, 4}) {
      ThreadCountGuard tg(threads);
      core::DiffOde model(SmallConfig());
      for (Index b : {1, 3, 8}) CheckModel(&model, b, 100 + b, true);
    }
  }
}

TEST(BatchedEquivTest, DiffOdeVariantsMatchPerSequence) {
  // Strategy / head / encoder / attention variants, one pass each at B = 3
  // (and B = 1 for the bitwise guarantee) on the active backend.
  std::vector<core::DiffOdeConfig> configs;
  {
    core::DiffOdeConfig c = SmallConfig();
    c.pt_strategy = sparsity::PtStrategy::kMinNorm;
    configs.push_back(c);
  }
  {
    core::DiffOdeConfig c = SmallConfig();
    c.pt_strategy = sparsity::PtStrategy::kAdaH;
    configs.push_back(c);
  }
  {
    core::DiffOdeConfig c = SmallConfig();
    c.head = core::OutputHead::kDirect;
    configs.push_back(c);
  }
  {
    core::DiffOdeConfig c = SmallConfig();
    c.use_attention = false;
    configs.push_back(c);
  }
  {
    core::DiffOdeConfig c = SmallConfig();
    c.encoder = core::EncoderType::kMlp;
    configs.push_back(c);
  }
  {
    core::DiffOdeConfig c = SmallConfig();
    c.num_heads = 2;
    configs.push_back(c);
  }
  std::uint64_t seed = 300;
  for (const core::DiffOdeConfig& config : configs) {
    core::DiffOde model(config);
    CheckModel(&model, 1, seed += 17, true);
    CheckModel(&model, 3, seed += 17, true);
  }
}

TEST(BatchedEquivTest, OdeRnnMatchesPerSequence) {
  for (simd::Isa isa : SupportedIsas()) {
    IsaGuard ig(isa);
    for (int threads : {1, 4}) {
      ThreadCountGuard tg(threads);
      auto model = baselines::MakeBaseline("ODE-RNN", SmallBaselineConfig());
      for (Index b : {1, 3, 8}) CheckModel(model.get(), b, 500 + b, true);
    }
  }
}

TEST(BatchedEquivTest, GruDMatchesPerSequence) {
  for (simd::Isa isa : SupportedIsas()) {
    IsaGuard ig(isa);
    for (int threads : {1, 4}) {
      ThreadCountGuard tg(threads);
      auto model = baselines::MakeBaseline("GRU-D", SmallBaselineConfig());
      for (Index b : {1, 3, 8}) CheckModel(model.get(), b, 700 + b, true);
    }
  }
}

TEST(BatchedEquivTest, FallbackLoopServesNonLockstepModels) {
  // Plain GRU has no native lockstep engine; BatchedDispatch must serve it
  // through the per-sequence loop with identical (bitwise) results.
  auto model = baselines::MakeBaseline("GRU", SmallBaselineConfig());
  for (Index b : {1, 3}) {
    const std::vector<data::IrregularSeries> series = MakeBatchSeries(b, 900);
    std::vector<const data::IrregularSeries*> ptrs;
    for (const auto& s : series) ptrs.push_back(&s);
    const data::SequenceBatch batch = data::MakeSequenceBatch(ptrs);
    core::BatchedDispatch dispatch(model.get());
    EXPECT_FALSE(dispatch.native());
    const Tensor logits = dispatch.ClassifyLogitsBatched(batch);
    ag::NoGradScope no_grad;
    for (Index r = 0; r < b; ++r)
      ExpectBitwiseEqual(
          logits.Row(r),
          model->ClassifyLogits(*ptrs[static_cast<std::size_t>(r)]).value(),
          "fallback logits");
  }
}

TEST(BatchPredictorTest, MicroBatchesMixedRequests) {
  core::DiffOde model(SmallConfig());
  const std::vector<data::IrregularSeries> series = MakeBatchSeries(6, 40);
  core::BatchPredictor predictor(&model, /*max_batch=*/4);
  EXPECT_TRUE(predictor.native());
  std::vector<Index> cls_ids, reg_ids;
  std::vector<std::vector<Scalar>> reg_times;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i % 2 == 0) {
      cls_ids.push_back(predictor.Enqueue(series[i]));
    } else {
      std::vector<Scalar> times = {series[i].times.back() + 0.5,
                                   series[i].times.front() - 0.25};
      reg_ids.push_back(predictor.Enqueue(series[i], times));
      reg_times.push_back(std::move(times));
    }
  }
  predictor.Flush();
  EXPECT_EQ(predictor.pending(), 0);
  ag::NoGradScope no_grad;
  for (std::size_t i = 0; i < cls_ids.size(); ++i) {
    const Tensor ref = model.ClassifyLogits(series[2 * i]).value();
    ExpectClose(predictor.result(cls_ids[i]).logits, ref, "served logits");
  }
  for (std::size_t i = 0; i < reg_ids.size(); ++i) {
    const std::vector<ag::Var> ref =
        model.PredictAt(series[2 * i + 1], reg_times[i]);
    const auto& got = predictor.result(reg_ids[i]).predictions;
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t k = 0; k < ref.size(); ++k)
      ExpectClose(got[k], ref[k].value(), "served prediction");
  }
}

}  // namespace
}  // namespace diffode
