#include "tensor/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "autograd/ops.h"
#include "core/parallel.h"
#include "gradcheck.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace diffode::kernels {
namespace {

// Textbook triple loop, the reference the blocked kernels must reproduce.
Tensor NaiveGemm(const Tensor& a, const Tensor& b) {
  const Index m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c(Shape{m, n});
  for (Index i = 0; i < m; ++i)
    for (Index p = 0; p < k; ++p)
      for (Index j = 0; j < n; ++j)
        c.at(i, j) += a.at(i, p) * b.at(p, j);
  return c;
}

void ExpectNear(const Tensor& got, const Tensor& want, double tol) {
  ASSERT_TRUE(got.shape() == want.shape());
  for (Index i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got[i], want[i], tol * (1.0 + std::fabs(want[i]))) << "i=" << i;
}

// Pool-size guard that always restores the default, even on test failure.
struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) { parallel::ThreadPool::SetNumThreads(n); }
  ~ThreadCountGuard() { parallel::ThreadPool::SetNumThreads(0); }
};

TEST(KernelsTest, GemmMatchesNaiveOnOddShapes) {
  Rng rng(11);
  const struct { Index m, k, n; } shapes[] = {
      {1, 1, 1}, {1, 9, 1}, {1, 1, 7}, {5, 1, 3},
      {65, 130, 33}, {33, 65, 17}, {64, 64, 64}};
  for (const auto& s : shapes) {
    Tensor a = rng.NormalTensor(Shape{s.m, s.k});
    Tensor b = rng.NormalTensor(Shape{s.k, s.n});
    // The blocked kernel sums in the same p order as the naive loop, so the
    // match is exact, not just close.
    ExpectNear(a.MatMul(b), NaiveGemm(a, b), 1e-12);
  }
}

TEST(KernelsTest, GemmTNMatchesExplicitTranspose) {
  Rng rng(12);
  const struct { Index m, k, n; } shapes[] = {
      {1, 1, 1}, {3, 1, 5}, {65, 130, 33}, {17, 64, 9}};
  for (const auto& s : shapes) {
    Tensor a = rng.NormalTensor(Shape{s.k, s.m});  // stored transposed
    Tensor b = rng.NormalTensor(Shape{s.k, s.n});
    ExpectNear(a.TransposedMatMul(b), NaiveGemm(a.Transposed(), b), 1e-12);
  }
}

TEST(KernelsTest, GemmNTMatchesExplicitTranspose) {
  Rng rng(13);
  const struct { Index m, k, n; } shapes[] = {
      {1, 1, 1}, {3, 5, 1}, {65, 130, 33}, {9, 64, 17}};
  for (const auto& s : shapes) {
    Tensor a = rng.NormalTensor(Shape{s.m, s.k});
    Tensor b = rng.NormalTensor(Shape{s.n, s.k});  // stored transposed
    // NT accumulates its dot products in a different association than the
    // naive loop, so allow rounding-level slack.
    ExpectNear(a.MatMulTransposed(b), NaiveGemm(a, b.Transposed()), 1e-12);
  }
}

TEST(KernelsTest, ElementwiseKernelsMatchLoops) {
  Rng rng(14);
  const Index n = 1037;
  Tensor x = rng.NormalTensor(Shape{n});
  Tensor y = rng.NormalTensor(Shape{n});

  Tensor axpy = y;
  Axpy(n, 2.5, x.data(), axpy.data());
  Tensor scaled(Shape{n});
  AddScaled(n, y.data(), 2.5, x.data(), scaled.data());  // y + 2.5 x
  Tensor mapped(Shape{n});
  Map(n, x.data(), mapped.data(), [](Scalar v) { return std::tanh(v); });
  Tensor zipped(Shape{n});
  Zip(n, x.data(), y.data(), zipped.data(),
      [](Scalar a, Scalar b) { return a * b + 1.0; });
  for (Index i = 0; i < n; ++i) {
    // The compiled kernels may fuse mul+add; the fused and unfused results
    // differ by at most the rounding of the product, so compare with an
    // absolute bound. The two kernels must still agree exactly.
    EXPECT_NEAR(axpy[i], y[i] + 2.5 * x[i], 1e-14);
    EXPECT_EQ(scaled[i], axpy[i]);
    EXPECT_DOUBLE_EQ(mapped[i], std::tanh(x[i]));
    EXPECT_DOUBLE_EQ(zipped[i], x[i] * y[i] + 1.0);
  }
}

TEST(KernelsTest, ParallelForCoversRangeWithDisjointChunks) {
  ThreadCountGuard guard(4);
  const Index n = 100000;
  std::vector<Scalar> out(static_cast<std::size_t>(n), 0.0);
  parallel::ParallelFor(0, n, 1024, [&](Index b, Index e) {
    for (Index i = b; i < e; ++i)
      out[static_cast<std::size_t>(i)] += static_cast<Scalar>(i);
  });
  for (Index i = 0; i < n; ++i)
    ASSERT_EQ(out[static_cast<std::size_t>(i)], static_cast<Scalar>(i));
}

TEST(KernelsTest, ReductionsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(15);
  const Index n = 50001;
  Tensor x = rng.NormalTensor(Shape{n});
  Tensor y = rng.NormalTensor(Shape{n});
  Scalar sum1, dot1, sum4, dot4;
  {
    ThreadCountGuard guard(1);
    sum1 = x.Sum();
    dot1 = x.Dot(y);
  }
  {
    ThreadCountGuard guard(4);
    sum4 = x.Sum();
    dot4 = x.Dot(y);
  }
  EXPECT_EQ(sum1, sum4);
  EXPECT_EQ(dot1, dot4);
}

TEST(KernelsTest, GemmBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(16);
  Tensor a = rng.NormalTensor(Shape{130, 70});
  Tensor b = rng.NormalTensor(Shape{70, 90});
  Tensor c1, c4;
  {
    ThreadCountGuard guard(1);
    c1 = a.MatMul(b);
  }
  {
    ThreadCountGuard guard(4);
    c4 = a.MatMul(b);
  }
  ASSERT_TRUE(c1.shape() == c4.shape());
  for (Index i = 0; i < c1.numel(); ++i) EXPECT_EQ(c1[i], c4[i]);
}

TEST(KernelsTest, MatMulGradcheckNonSquare) {
  Rng rng(17);
  ag::Var x = ag::Param(rng.NormalTensor(Shape{3, 4}));
  Tensor b = rng.NormalTensor(Shape{4, 2});
  const double err = testing::MaxGradError(
      x, [&]() { return ag::Sum(ag::MatMul(x, ag::Constant(b))); });
  EXPECT_LT(err, 1e-6);

  ag::Var y = ag::Param(rng.NormalTensor(Shape{4, 5}));
  Tensor a = rng.NormalTensor(Shape{2, 4});
  const double err_rhs = testing::MaxGradError(
      y, [&]() { return ag::Sum(ag::MatMul(ag::Constant(a), y)); });
  EXPECT_LT(err_rhs, 1e-6);
}

TEST(KernelsTest, MatMulNTGradcheckBothSides) {
  Rng rng(18);
  ag::Var q = ag::Param(rng.NormalTensor(Shape{3, 4}));
  Tensor k = rng.NormalTensor(Shape{5, 4});
  const double err_q = testing::MaxGradError(q, [&]() {
    return ag::Sum(ag::Square(ag::MatMulNT(q, ag::Constant(k))));
  });
  EXPECT_LT(err_q, 1e-6);

  ag::Var kv = ag::Param(rng.NormalTensor(Shape{5, 4}));
  Tensor qc = rng.NormalTensor(Shape{3, 4});
  const double err_k = testing::MaxGradError(kv, [&]() {
    return ag::Sum(ag::Square(ag::MatMulNT(ag::Constant(qc), kv)));
  });
  EXPECT_LT(err_k, 1e-6);
}

TEST(KernelsTest, MatMulNTMatchesMatMulOfTranspose) {
  Rng rng(19);
  ag::Var a = ag::Param(rng.NormalTensor(Shape{6, 7}));
  ag::Var b = ag::Param(rng.NormalTensor(Shape{9, 7}));
  ag::Var nt = ag::MatMulNT(a, b);
  ag::Var ref = ag::MatMul(a, ag::Transpose(b));
  ExpectNear(nt.value(), ref.value(), 1e-12);

  ag::Var loss_nt = ag::Sum(ag::Square(nt));
  loss_nt.Backward();
  Tensor ga_nt = a.grad(), gb_nt = b.grad();
  a.ZeroGrad();
  b.ZeroGrad();
  ag::Var loss_ref = ag::Sum(ag::Square(ref));
  loss_ref.Backward();
  ExpectNear(ga_nt, a.grad(), 1e-11);
  ExpectNear(gb_nt, b.grad(), 1e-11);
}

}  // namespace
}  // namespace diffode::kernels
