#ifndef DIFFODE_TESTS_GRADCHECK_H_
#define DIFFODE_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>

#include "autograd/variable.h"

namespace diffode::testing {

// Compares the analytic gradient of scalar_fn w.r.t. the leaf `x` against a
// central finite difference. scalar_fn must rebuild the graph from x's
// current value on every call and return a 1x1 Var.
inline double MaxGradError(
    ag::Var& x, const std::function<ag::Var()>& scalar_fn, double eps = 1e-5) {
  x.ZeroGrad();
  ag::Var out = scalar_fn();
  out.Backward();
  Tensor analytic = x.grad();
  double max_err = 0.0;
  for (Index i = 0; i < x.value().numel(); ++i) {
    const Scalar orig = x.value()[i];
    x.mutable_value()[i] = orig + eps;
    const Scalar up = scalar_fn().value().item();
    x.mutable_value()[i] = orig - eps;
    const Scalar down = scalar_fn().value().item();
    x.mutable_value()[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    const double denom = std::max(1.0, std::fabs(numeric));
    max_err = std::max(max_err, std::fabs(numeric - analytic[i]) / denom);
  }
  return max_err;
}

}  // namespace diffode::testing

#endif  // DIFFODE_TESTS_GRADCHECK_H_
