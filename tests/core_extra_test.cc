// Additional DIFFODE-core coverage: consistency-term training effect,
// backward-time queries, HiPPO timescale stability guard, and multi-head
// inversion paths under each p_t strategy.

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "core/diffode_model.h"
#include "nn/optimizer.h"
#include "tensor/random.h"

namespace diffode::core {
namespace {

data::IrregularSeries MakeSeries(Index n, Index f, std::uint64_t seed) {
  Rng rng(seed);
  data::IrregularSeries s;
  s.values = Tensor(Shape{n, f});
  s.mask = Tensor::Ones(Shape{n, f});
  Scalar t = 0.0;
  for (Index i = 0; i < n; ++i) {
    t += rng.Uniform(0.3, 1.0);
    s.times.push_back(t);
    for (Index j = 0; j < f; ++j) s.values.at(i, j) = std::sin(t + j);
  }
  s.label = 0;
  return s;
}

DiffOdeConfig FastConfig(Index f) {
  DiffOdeConfig config;
  config.input_dim = f;
  config.latent_dim = 8;
  config.hippo_dim = 6;
  config.info_dim = 6;
  config.mlp_hidden = 12;
  config.step = 1.0;
  return config;
}

TEST(CoreExtraTest, ConsistencyTrainingShrinksAnchorGap) {
  // Minimizing only the consistency term must reduce it: the dynamics
  // learn to track the attention-defined DHS.
  DiffOdeConfig config = FastConfig(1);
  config.consistency_weight = 1.0;
  DiffOde model(config);
  data::IrregularSeries s = MakeSeries(6, 1, 1);
  nn::Adam opt(model.Params(), 0.02);
  Scalar first = 0.0, last = 0.0;
  for (int step = 0; step < 20; ++step) {
    model.ClassifyLogits(s);
    ag::Var aux = model.TakeAuxiliaryLoss();
    ASSERT_TRUE(aux.defined());
    last = aux.value().item();
    if (step == 0) first = last;
    aux.Backward();
    opt.StepAndZero();
  }
  EXPECT_LT(last, first);
}

TEST(CoreExtraTest, QueriesBeforeFirstObservationIntegrateBackward) {
  DiffOde model(FastConfig(2));
  data::IrregularSeries s = MakeSeries(6, 2, 2);
  // Three queries straddling the context start; all must be finite and the
  // pre-context one distinct from the first-observation state.
  const Scalar t0 = s.times.front();
  auto preds = model.PredictAt(s, {t0 - 1.0, t0, t0 + 0.5});
  for (const auto& p : preds) EXPECT_TRUE(p.value().AllFinite());
  EXPECT_GT((preds[0].value() - preds[1].value()).MaxAbs(), 0.0);
}

TEST(CoreExtraTest, DuplicateQueryTimesShareStates) {
  DiffOde model(FastConfig(1));
  data::IrregularSeries s = MakeSeries(5, 1, 3);
  auto preds = model.PredictAt(s, {s.times[2], s.times[2], s.times[2]});
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_EQ((preds[0].value() - preds[1].value()).MaxAbs(), 0.0);
  EXPECT_EQ((preds[1].value() - preds[2].value()).MaxAbs(), 0.0);
}

TEST(CoreExtraTest, StiffHippoTimescaleGuardKeepsStatesFinite) {
  // Even with a deliberately stiff timescale the model must not NaN on a
  // short window (the guard only tunes accuracy/stability trade-off).
  DiffOdeConfig config = FastConfig(1);
  config.hippo_timescale = 24.0;  // very slow memory
  DiffOde slow(config);
  data::IrregularSeries s = MakeSeries(6, 1, 4);
  EXPECT_TRUE(slow.ClassifyLogits(s).value().AllFinite());
  config.hippo_timescale = 0.0;  // auto
  DiffOde autoscaled(config);
  EXPECT_TRUE(autoscaled.ClassifyLogits(s).value().AllFinite());
}

TEST(CoreExtraTest, MultiHeadWithEachStrategy) {
  data::IrregularSeries s = MakeSeries(7, 2, 5);
  for (auto strategy :
       {sparsity::PtStrategy::kMaxHoyer, sparsity::PtStrategy::kMinNorm,
        sparsity::PtStrategy::kAdaH}) {
    DiffOdeConfig config = FastConfig(2);
    config.num_heads = 2;
    config.pt_strategy = strategy;
    DiffOde model(config);
    auto preds = model.PredictAt(s, {s.times[3], s.times.back() + 0.5});
    for (const auto& p : preds)
      EXPECT_TRUE(p.value().AllFinite()) << static_cast<int>(strategy);
  }
}

TEST(CoreExtraTest, GradientsReachEveryParameter) {
  DiffOdeConfig config = FastConfig(1);
  config.pt_strategy = sparsity::PtStrategy::kAdaH;  // exercises h_ada head
  DiffOde model(config);
  data::IrregularSeries s = MakeSeries(6, 1, 6);
  // Combined classification + regression losses touch both heads.
  ag::Var loss = ag::SoftmaxCrossEntropy(model.ClassifyLogits(s), {0});
  ag::Var aux = model.TakeAuxiliaryLoss();
  if (aux.defined()) loss = ag::Add(loss, aux);
  auto preds = model.PredictAt(s, {s.times[1], s.times[4]});
  loss = ag::Add(loss, ag::Mean(ag::Square(ag::ConcatRows(preds))));
  loss.Backward();
  Index with_grad = 0, total = 0;
  for (auto& p : model.Params()) {
    ++total;
    if (p.grad().MaxAbs() > 0.0) ++with_grad;
  }
  // Every parameter except (possibly) dead-ReLU corners must receive
  // gradient; allow a small slack for the unused-in-this-pass heads.
  EXPECT_GE(with_grad, total - 2);
}

TEST(CoreExtraTest, AttentionTrajectoryLengthTracksContext) {
  DiffOde model(FastConfig(1));
  for (Index n : {4, 9, 15}) {
    data::IrregularSeries s = MakeSeries(n, 1, 7);
    auto rows = model.AttentionTrajectory(s);
    EXPECT_EQ(static_cast<Index>(rows.size()), n);
    for (const auto& p : rows) EXPECT_EQ(p.numel(), n);
  }
}

TEST(CoreExtraTest, LatentZShapeAndDeterminism) {
  DiffOde model(FastConfig(2));
  data::IrregularSeries s = MakeSeries(6, 2, 8);
  Tensor z1 = model.LatentZ(s);
  Tensor z2 = model.LatentZ(s);
  EXPECT_EQ(z1.rows(), 6);
  EXPECT_EQ(z1.cols(), 8);
  EXPECT_EQ((z1 - z2).MaxAbs(), 0.0);
}

TEST(CoreExtraTest, TwoObservationMinimumContext) {
  DiffOde model(FastConfig(1));
  data::IrregularSeries s = MakeSeries(2, 1, 9);
  EXPECT_TRUE(model.ClassifyLogits(s).value().AllFinite());
  auto preds = model.PredictAt(s, {0.5 * (s.times[0] + s.times[1])});
  EXPECT_TRUE(preds[0].value().AllFinite());
}

}  // namespace
}  // namespace diffode::core
