#include "core/dhs.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.h"
#include "sparsity/pt_solver.h"
#include "tensor/random.h"

namespace diffode::core {
namespace {

using ag::Var;

struct Fixture {
  Var z;           // n x d parameter
  DhsContext ctx;
  Var query;       // 1 x d
  Var s;           // 1 x d = DHS at the query

  static Fixture Make(Index n, Index d, std::uint64_t seed) {
    Fixture f;
    Rng rng(seed);
    f.z = ag::Param(rng.NormalTensor(Shape{n, d}));
    f.ctx = BuildDhsContext(f.z, 0.0);
    f.query = ag::Param(rng.NormalTensor(Shape{1, d}));
    f.s = DhsForward(f.ctx, f.query);
    return f;
  }
};

TEST(DhsContextTest, MatchesPlainTensorFactorization) {
  Fixture f = Fixture::Make(10, 4, 1);
  sparsity::AttentionInverse ref =
      sparsity::AttentionInverse::Build(f.z.value(), 0.0);
  EXPECT_LT((f.ctx.zt_pinv.value() - ref.zt_pinv).MaxAbs(), 1e-8);
  EXPECT_LT((f.ctx.ap_colsum.value() - ref.ap_colsum).MaxAbs(), 1e-8);
  EXPECT_NEAR(f.ctx.ap_total.value().item(), ref.ap_total, 1e-8);
}

TEST(DhsForwardTest, IsConvexCombinationOfRows) {
  // S = p Z with p a softmax: S lies inside the convex hull of Z's rows,
  // so every coordinate is bounded by the per-column extrema.
  Fixture f = Fixture::Make(8, 3, 2);
  const Tensor s = f.s.value();
  for (Index j = 0; j < 3; ++j) {
    Scalar lo = f.z.value().at(0, j), hi = lo;
    for (Index i = 1; i < 8; ++i) {
      lo = std::min(lo, f.z.value().at(i, j));
      hi = std::max(hi, f.z.value().at(i, j));
    }
    EXPECT_GE(s.at(0, j), lo - 1e-12);
    EXPECT_LE(s.at(0, j), hi + 1e-12);
  }
}

TEST(RecoverPVarTest, MatchesPlainTensorPath) {
  Fixture f = Fixture::Make(12, 4, 3);
  sparsity::AttentionInverse ref =
      sparsity::AttentionInverse::Build(f.z.value(), 0.0);
  for (auto strategy : {sparsity::PtStrategy::kMinNorm,
                        sparsity::PtStrategy::kMaxHoyer}) {
    Var p_var = RecoverPVar(f.ctx, f.s, strategy, Var());
    Tensor p_ref = sparsity::RecoverP(ref, f.s.value(), strategy);
    EXPECT_LT((p_var.value() - p_ref).MaxAbs(), 1e-8);
  }
  Rng rng(4);
  Var h = ag::Constant(rng.NormalTensor(Shape{1, 12}));
  Var p_var = RecoverPVar(f.ctx, f.s, sparsity::PtStrategy::kAdaH, h);
  Tensor h_t = h.value();
  Tensor p_ref =
      sparsity::RecoverP(ref, f.s.value(), sparsity::PtStrategy::kAdaH, &h_t);
  EXPECT_LT((p_var.value() - p_ref).MaxAbs(), 1e-8);
}

TEST(RecoverPVarTest, RoundTripReconstructsS) {
  Fixture f = Fixture::Make(12, 4, 5);
  Var p = RecoverPVar(f.ctx, f.s, sparsity::PtStrategy::kMaxHoyer, Var());
  Var s_rec = ag::MatMul(p, f.ctx.z);
  EXPECT_LT((s_rec.value() - f.s.value()).MaxAbs(), 1e-8);
  EXPECT_NEAR(p.value().Sum(), 1.0, 1e-8);
}

TEST(RecoverPVarTest, GradientFlowsToZAndS) {
  Fixture f = Fixture::Make(7, 3, 6);
  auto scalar_fn = [&] {
    DhsContext ctx = BuildDhsContext(f.z, 1e-9);
    Var s = DhsForward(ctx, f.query);
    Var p = RecoverPVar(ctx, s, sparsity::PtStrategy::kMaxHoyer, Var());
    return ag::Mean(ag::Square(p));
  };
  EXPECT_LT(testing::MaxGradError(f.query, scalar_fn, 1e-6), 1e-4);
  EXPECT_LT(testing::MaxGradError(f.z, scalar_fn, 1e-6), 1e-4);
}

TEST(RecoverZVarTest, MatchesPlainTensorPath) {
  Fixture f = Fixture::Make(9, 3, 7);
  Rng rng(8);
  Tensor h2_t = rng.NormalTensor(Shape{1, 9});
  Var p = RecoverPVar(f.ctx, f.s, sparsity::PtStrategy::kMaxHoyer, Var());
  Var z_rec = RecoverZVar(f.ctx, p, ag::Constant(h2_t));
  sparsity::AttentionInverse ref =
      sparsity::AttentionInverse::Build(f.z.value(), 0.0);
  Tensor z_ref = sparsity::RecoverZ(ref, p.value(), h2_t);
  EXPECT_LT((z_rec.value() - z_ref).MaxAbs(), 1e-8);
}

TEST(RecoverZVarTest, GradientFlows) {
  Fixture f = Fixture::Make(6, 3, 9);
  Rng rng(10);
  Var h2 = ag::Param(rng.NormalTensor(Shape{1, 6}));
  auto scalar_fn = [&] {
    DhsContext ctx = BuildDhsContext(f.z, 1e-9);
    Var s = DhsForward(ctx, f.query);
    Var p = RecoverPVar(ctx, s, sparsity::PtStrategy::kMaxHoyer, Var());
    Var z_rec = RecoverZVar(ctx, p, h2);
    return ag::Mean(ag::Square(z_rec));
  };
  EXPECT_LT(testing::MaxGradError(h2, scalar_fn, 1e-6), 1e-4);
  EXPECT_LT(testing::MaxGradError(f.z, scalar_fn, 1e-6), 1e-4);
}

// The centrepiece identity: the analytic DHS derivative (Eq. 6/12)
// matches a finite difference of the *definition* S(t) = softmax(z(t) Zᵀ/√d) Z
// when z(t) moves along a known path.
TEST(DhsDerivativeTest, MatchesFiniteDifferenceOfDefinition) {
  const Index n = 10, d = 4;
  Rng rng(11);
  Tensor z_mat = rng.NormalTensor(Shape{n, d});
  Tensor z0 = rng.NormalTensor(Shape{1, d});
  Tensor vel = rng.NormalTensor(Shape{1, d});  // dz/dt, fixed
  Var z = ag::Constant(z_mat);
  DhsContext ctx = BuildDhsContext(z, 0.0);
  auto s_of_t = [&](Scalar t) {
    Var zq = ag::Constant(z0 + vel * t);
    return DhsForward(ctx, zq).value();
  };
  // Attention weights at t = 0 (directly from the definition).
  Tensor logits = z0.MatMul(z_mat.Transposed()) *
                  (1.0 / std::sqrt(static_cast<Scalar>(d)));
  const Scalar m = logits.Max();
  Tensor p = logits.Map([m](Scalar x) { return std::exp(x - m); });
  p *= 1.0 / p.Sum();
  Var ds = DhsDerivative(ctx, ag::Constant(vel), ag::Constant(p));
  const Scalar eps = 1e-6;
  Tensor fd = (s_of_t(eps) - s_of_t(-eps)) * (1.0 / (2.0 * eps));
  EXPECT_LT((ds.value() - fd).MaxAbs(), 1e-6);
}

TEST(DhsDerivativeTest, EquivalentToExplicitMatrixForm) {
  // ((w Zᵀ) ⊙ p) Z - (w Zᵀ pᵀ)(p Z) == w Zᵀ (P_diag - pᵀp) Z / ... (x √d).
  const Index n = 8, d = 3;
  Rng rng(12);
  Tensor z = rng.NormalTensor(Shape{n, d});
  Tensor w = rng.NormalTensor(Shape{1, d});
  Tensor raw = rng.UniformTensor(Shape{1, n}, 0.01, 1.0);
  Tensor p = raw * (1.0 / raw.Sum());
  Var zv = ag::Constant(z);
  DhsContext ctx = BuildDhsContext(zv, 0.0);
  Var fast = DhsDerivative(ctx, ag::Constant(w), ag::Constant(p));
  // Explicit O(n d^2) form.
  Tensor pdiag(Shape{n, n});
  for (Index i = 0; i < n; ++i) pdiag.at(i, i) = p[i];
  Tensor middle = pdiag - p.Transposed().MatMul(p);
  Tensor slow = w.MatMul(z.Transposed()).MatMul(middle).MatMul(z) *
                (1.0 / std::sqrt(static_cast<Scalar>(d)));
  EXPECT_LT((fast.value() - slow).MaxAbs(), 1e-10);
}

TEST(DhsDerivativeTest, ZeroVelocityGivesZeroDerivative) {
  Fixture f = Fixture::Make(6, 3, 13);
  Tensor p_raw = Tensor::Full(Shape{1, 6}, 1.0 / 6.0);
  Var ds = DhsDerivative(f.ctx, ag::Constant(Tensor(Shape{1, 3})),
                         ag::Constant(p_raw));
  EXPECT_EQ(ds.value().MaxAbs(), 0.0);
}

}  // namespace
}  // namespace diffode::core
