#include "train/trainer.h"

#include <gtest/gtest.h>

#include "baselines/zoo.h"
#include "core/diffode_model.h"
#include "core/parallel.h"
#include "data/generators.h"
#include "nn/optimizer.h"

namespace diffode::train {
namespace {

TEST(TrainerTest, ClassifierImprovesOverMajorityOnEasyData) {
  data::SyntheticPeriodicConfig dconfig;
  dconfig.num_series = 80;
  dconfig.grid_points = 16;
  data::Dataset ds = data::MakeSyntheticPeriodic(dconfig);
  baselines::BaselineConfig mconfig;
  mconfig.input_dim = 1;
  mconfig.hidden_dim = 12;
  mconfig.mlp_hidden = 16;
  auto model = baselines::MakeBaseline("GRU", mconfig);
  TrainOptions options;
  options.epochs = 25;
  options.batch_size = 8;
  options.lr = 5e-3;
  options.patience = 25;
  FitResult fit = TrainClassifier(model.get(), ds, options);
  EXPECT_GT(fit.epochs_run, 0);
  EXPECT_FALSE(fit.train_losses.empty());
  // Loss should drop substantially from its starting point.
  EXPECT_LT(fit.train_losses.back(), fit.train_losses.front());
  const Scalar test_acc = EvaluateAccuracy(model.get(), ds.test);
  EXPECT_GT(test_acc, 0.5);
}

TEST(TrainerTest, EarlyStoppingHonorsPatience) {
  data::SyntheticPeriodicConfig dconfig;
  dconfig.num_series = 40;
  dconfig.grid_points = 10;
  data::Dataset ds = data::MakeSyntheticPeriodic(dconfig);
  baselines::BaselineConfig mconfig;
  mconfig.input_dim = 1;
  mconfig.hidden_dim = 4;
  auto model = baselines::MakeBaseline("HiPPO-obs", mconfig);
  TrainOptions options;
  options.epochs = 50;
  options.patience = 2;  // aggressive: must stop well before 50
  options.lr = 1e-4;     // slow learning so validation stalls
  FitResult fit = TrainClassifier(model.get(), ds, options);
  EXPECT_LT(fit.epochs_run, 50);
}

TEST(TrainerTest, RegressorInterpolationLearns) {
  data::UshcnLikeConfig dconfig;
  dconfig.num_stations = 20;
  dconfig.num_days = 60;
  data::Dataset ds = data::MakeUshcnLike(dconfig);
  data::NormalizeDataset(&ds);
  baselines::BaselineConfig mconfig;
  mconfig.input_dim = 5;
  mconfig.hidden_dim = 12;
  auto model = baselines::MakeBaseline("mTAN", mconfig);
  TrainOptions options;
  options.epochs = 10;
  options.batch_size = 8;
  options.lr = 5e-3;
  options.patience = 10;
  const Scalar before = EvaluateMse(model.get(), ds.test,
                                    RegressionTask::kInterpolation, 0.3, 11);
  FitResult fit =
      TrainRegressor(model.get(), ds, RegressionTask::kInterpolation, options);
  const Scalar after = EvaluateMse(model.get(), ds.test,
                                   RegressionTask::kInterpolation, 0.3, 11);
  EXPECT_GT(fit.epochs_run, 0);
  EXPECT_LT(after, before);
}

TEST(TrainerTest, EvaluateMseDeterministicGivenSeed) {
  data::UshcnLikeConfig dconfig;
  dconfig.num_stations = 10;
  dconfig.num_days = 40;
  data::Dataset ds = data::MakeUshcnLike(dconfig);
  data::NormalizeDataset(&ds);
  baselines::BaselineConfig mconfig;
  mconfig.input_dim = 5;
  auto model = baselines::MakeBaseline("GRU", mconfig);
  const Scalar a = EvaluateMse(model.get(), ds.test,
                               RegressionTask::kExtrapolation, 0.3, 5);
  const Scalar b = EvaluateMse(model.get(), ds.test,
                               RegressionTask::kExtrapolation, 0.3, 5);
  EXPECT_EQ(a, b);
}

TEST(TrainerTest, SampleCapsRespected) {
  data::SyntheticPeriodicConfig dconfig;
  dconfig.num_series = 40;
  dconfig.grid_points = 10;
  data::Dataset ds = data::MakeSyntheticPeriodic(dconfig);
  baselines::BaselineConfig mconfig;
  mconfig.input_dim = 1;
  auto model = baselines::MakeBaseline("GRU", mconfig);
  TrainOptions options;
  options.epochs = 1;
  options.max_train_samples = 4;
  options.max_eval_samples = 3;
  FitResult fit = TrainClassifier(model.get(), ds, options);
  EXPECT_EQ(fit.epochs_run, 1);
}

// Trains the same model twice — once on a single thread, once on four — and
// demands bitwise-identical losses and weights: the data-parallel path must
// be a pure reordering-free refactoring of the serial one.
TEST(TrainerTest, TrainingIsBitwiseDeterministicAcrossThreadCounts) {
  data::SyntheticPeriodicConfig dconfig;
  dconfig.num_series = 24;
  dconfig.grid_points = 10;
  data::Dataset ds = data::MakeSyntheticPeriodic(dconfig);
  baselines::BaselineConfig mconfig;
  mconfig.input_dim = 1;
  mconfig.hidden_dim = 6;
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 8;
  options.patience = 5;

  auto run = [&](int threads) {
    parallel::ThreadPool::SetNumThreads(threads);
    auto model = baselines::MakeBaseline("GRU", mconfig);
    FitResult fit = TrainClassifier(model.get(), ds, options);
    std::vector<Tensor> weights;
    for (const auto& p : model->Params()) weights.push_back(p.value());
    return std::make_pair(fit.train_losses, weights);
  };
  auto [losses1, weights1] = run(1);
  auto [losses4, weights4] = run(4);
  parallel::ThreadPool::SetNumThreads(0);

  ASSERT_EQ(losses1.size(), losses4.size());
  for (std::size_t e = 0; e < losses1.size(); ++e)
    EXPECT_EQ(losses1[e], losses4[e]) << "epoch " << e;
  ASSERT_EQ(weights1.size(), weights4.size());
  for (std::size_t i = 0; i < weights1.size(); ++i)
    for (Index j = 0; j < weights1[i].numel(); ++j)
      EXPECT_EQ(weights1[i][j], weights4[i][j]) << "param " << i;
}

// Same bitwise bar for the DiffOde model, whose forwards also accumulate the
// per-thread auxiliary DHS loss.
TEST(TrainerTest, DiffOdeTrainingDeterministicAcrossThreadCounts) {
  data::SyntheticPeriodicConfig dconfig;
  dconfig.num_series = 12;
  dconfig.grid_points = 8;
  data::Dataset ds = data::MakeSyntheticPeriodic(dconfig);
  core::DiffOdeConfig mconfig;
  mconfig.input_dim = 1;
  mconfig.latent_dim = 6;
  mconfig.hippo_dim = 4;
  mconfig.info_dim = 4;
  mconfig.mlp_hidden = 8;
  mconfig.step = 1.0;
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 4;
  options.patience = 5;

  auto run = [&](int threads) {
    parallel::ThreadPool::SetNumThreads(threads);
    core::DiffOde model(mconfig);
    FitResult fit = TrainClassifier(&model, ds, options);
    return fit.train_losses;
  };
  auto losses1 = run(1);
  auto losses4 = run(4);
  parallel::ThreadPool::SetNumThreads(0);

  ASSERT_EQ(losses1.size(), losses4.size());
  for (std::size_t e = 0; e < losses1.size(); ++e)
    EXPECT_EQ(losses1[e], losses4[e]) << "epoch " << e;
}

TEST(TrainerTest, DiffOdeEndToEndClassification) {
  data::SyntheticPeriodicConfig dconfig;
  dconfig.num_series = 30;
  dconfig.grid_points = 10;
  data::Dataset ds = data::MakeSyntheticPeriodic(dconfig);
  core::DiffOdeConfig mconfig;
  mconfig.input_dim = 1;
  mconfig.latent_dim = 8;
  mconfig.hippo_dim = 6;
  mconfig.info_dim = 6;
  mconfig.mlp_hidden = 12;
  mconfig.step = 1.0;
  core::DiffOde model(mconfig);
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 8;
  options.patience = 5;
  FitResult fit = TrainClassifier(&model, ds, options);
  EXPECT_EQ(fit.epochs_run, 3);
  EXPECT_LE(fit.train_losses.back(), fit.train_losses.front() * 1.5);
}

}  // namespace
}  // namespace diffode::train
