// Additional solver coverage: dense/pointwise equivalence, adaptive-solver
// bookkeeping, and non-autonomous adjoint equivalence.

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "nn/linear.h"
#include "ode/adjoint.h"
#include "ode/solver.h"
#include "tensor/random.h"

namespace diffode::ode {
namespace {

TEST(SolverExtraTest, DenseGridEqualsChainedPointwise) {
  // IntegrateDense must produce exactly the states a chained Integrate
  // produces, because both step through the same grid.
  OdeFunc f = [](Scalar t, const Tensor& y) {
    return y * -0.3 + Tensor::Full(y.shape(), std::sin(t));
  };
  SolveOptions options;
  options.method = Method::kRk4;
  options.step = 0.05;
  std::vector<Scalar> times = {0.0, 0.4, 1.1, 2.0};
  auto dense = IntegrateDense(f, Tensor::Ones(Shape{1, 2}), times, options);
  Tensor y = Tensor::Ones(Shape{1, 2});
  for (std::size_t i = 1; i < times.size(); ++i) {
    y = Integrate(f, y, times[i - 1], times[i], options);
    EXPECT_LT((dense[i] - y).MaxAbs(), 1e-14) << i;
  }
}

TEST(SolverExtraTest, Dopri5CountsRejectionsOnAbruptDynamics) {
  // A sharp transition forces the controller to reject at least once when
  // starting from the default (large) initial step.
  OdeFunc f = [](Scalar t, const Tensor& y) {
    const Scalar pull = t > 1.0 ? -200.0 : -0.1;
    return y * pull;
  };
  SolveOptions options;
  options.method = Method::kDopri5;
  options.rtol = 1e-8;
  options.atol = 1e-10;
  SolveStats stats;
  Tensor y = Integrate(f, Tensor::Ones(Shape{1, 1}), 0.0, 2.0, options,
                       &stats);
  EXPECT_TRUE(y.AllFinite());
  EXPECT_GT(stats.rejected_steps, 0);
  EXPECT_GT(stats.steps, 10);
}

TEST(SolverExtraTest, FixedStepHonorsPartialFinalStep) {
  // t-span not divisible by the step: the final short step must land
  // exactly on t1 (validated through the exact solution).
  OdeFunc f = [](Scalar, const Tensor& y) { return y * -1.0; };
  SolveOptions options;
  options.method = Method::kRk4;
  options.step = 0.3;  // 0.3 does not divide 1.0
  Tensor y = Integrate(f, Tensor::Ones(Shape{1, 1}), 0.0, 1.0, options);
  // RK4 truncation at h = 0.3 dominates; a mishandled final step would be
  // off by O(1e-1), not O(1e-5).
  EXPECT_NEAR(y.item(), std::exp(-1.0), 1e-4);
}

TEST(SolverExtraTest, StatsCountRhsEvaluations) {
  OdeFunc f = [](Scalar, const Tensor& y) { return y * -1.0; };
  SolveOptions options;
  options.method = Method::kRk4;
  options.step = 0.1;
  SolveStats stats;
  Integrate(f, Tensor::Ones(Shape{1, 1}), 0.0, 1.0, options, &stats);
  EXPECT_EQ(stats.steps, 10);
  EXPECT_EQ(stats.rhs_evals, 40);  // 4 per RK4 step
}

TEST(SolverExtraTest, AdjointMatchesTapeForNonAutonomousField) {
  // f depends on t explicitly (through a learned affine map of [y, t]).
  Rng rng(1);
  nn::Linear lift(3, 2, rng);
  DiffOdeFunc f = [&](Scalar t, const ag::Var& y) {
    ag::Var t_var = ag::Constant(Tensor::Full(Shape{1, 1}, t));
    return ag::Tanh(lift.Forward(ag::ConcatCols({y, t_var})));
  };
  DiffSolveOptions options;
  options.method = DiffMethod::kRk4;
  options.step = 0.25;
  Tensor y0 = rng.NormalTensor(Shape{1, 2});
  Tensor seed = rng.NormalTensor(Shape{1, 2});
  auto params = lift.Params();

  for (auto& p : params) p.ZeroGrad();
  ag::Var y0_var = ag::Var(y0, true);
  IntegrateVar(f, y0_var, 0.0, 1.5, options).Backward(seed);
  std::vector<Tensor> ref;
  for (auto& p : params) ref.push_back(p.grad());
  Tensor ref_dy0 = y0_var.grad();

  for (auto& p : params) p.ZeroGrad();
  AdjointResult result = AdjointSolve(f, y0, 0.0, 1.5, seed, options);
  EXPECT_LT((result.dy0 - ref_dy0).MaxAbs(), 1e-10);
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_LT((params[i].grad() - ref[i]).MaxAbs(), 1e-10) << i;
}

TEST(SolverExtraTest, ImplicitAdamsOrderSelectionClamped) {
  // adams_order outside [1, 4] is clamped rather than rejected.
  OdeFunc f = [](Scalar, const Tensor& y) { return y * -1.0; };
  SolveOptions options;
  options.method = Method::kImplicitAdams;
  options.step = 0.02;
  options.adams_order = 99;
  Tensor y = Integrate(f, Tensor::Ones(Shape{1, 1}), 0.0, 1.0, options);
  EXPECT_NEAR(y.item(), std::exp(-1.0), 1e-6);
  options.adams_order = 0;
  y = Integrate(f, Tensor::Ones(Shape{1, 1}), 0.0, 1.0, options);
  EXPECT_NEAR(y.item(), std::exp(-1.0), 1e-2);  // clamped to order 1
}

}  // namespace
}  // namespace diffode::ode
