#include "core/diffode_model.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/optimizer.h"
#include "tensor/random.h"

namespace diffode::core {
namespace {

data::IrregularSeries MakeSeries(Index n, Index f, std::uint64_t seed) {
  Rng rng(seed);
  data::IrregularSeries s;
  Scalar t = 0.0;
  s.values = Tensor(Shape{n, f});
  s.mask = Tensor::Ones(Shape{n, f});
  for (Index i = 0; i < n; ++i) {
    t += rng.Uniform(0.2, 1.0);
    s.times.push_back(t);
    for (Index j = 0; j < f; ++j)
      s.values.at(i, j) = std::sin(t + static_cast<Scalar>(j));
  }
  s.label = 1;
  return s;
}

DiffOdeConfig FastConfig(Index f) {
  DiffOdeConfig config;
  config.input_dim = f;
  config.latent_dim = 8;
  config.hippo_dim = 6;
  config.info_dim = 6;
  config.mlp_hidden = 12;
  config.num_classes = 2;
  config.step = 1.0;  // coarse integration keeps the tests fast
  return config;
}

TEST(DiffOdeModelTest, ClassificationLogitShape) {
  DiffOde model(FastConfig(2));
  data::IrregularSeries s = MakeSeries(6, 2, 1);
  ag::Var logits = model.ClassifyLogits(s);
  EXPECT_EQ(logits.rows(), 1);
  EXPECT_EQ(logits.cols(), 2);
  EXPECT_TRUE(logits.value().AllFinite());
}

TEST(DiffOdeModelTest, PredictShapesAndFiniteness) {
  DiffOde model(FastConfig(3));
  data::IrregularSeries s = MakeSeries(7, 3, 2);
  std::vector<Scalar> queries = {s.times[1], s.times.back() + 1.0,
                                 s.times[0] - 0.5};
  auto preds = model.PredictAt(s, queries);
  ASSERT_EQ(preds.size(), 3u);
  for (const auto& p : preds) {
    EXPECT_EQ(p.rows(), 1);
    EXPECT_EQ(p.cols(), 3);
    EXPECT_TRUE(p.value().AllFinite());
  }
}

TEST(DiffOdeModelTest, AllConfigVariantsRun) {
  data::IrregularSeries s = MakeSeries(6, 2, 3);
  for (EncoderType enc : {EncoderType::kGru, EncoderType::kMlp}) {
    for (OutputHead head : {OutputHead::kHippo, OutputHead::kDirect}) {
      for (bool attn : {true, false}) {
        DiffOdeConfig config = FastConfig(2);
        config.encoder = enc;
        config.head = head;
        config.use_attention = attn;
        DiffOde model(config);
        ag::Var logits = model.ClassifyLogits(s);
        EXPECT_TRUE(logits.value().AllFinite())
            << "enc=" << static_cast<int>(enc)
            << " head=" << static_cast<int>(head) << " attn=" << attn;
        auto preds = model.PredictAt(s, {s.times[2]});
        EXPECT_TRUE(preds[0].value().AllFinite());
      }
    }
  }
}

TEST(DiffOdeModelTest, PtStrategyVariantsRun) {
  data::IrregularSeries s = MakeSeries(6, 2, 4);
  for (auto strategy : {sparsity::PtStrategy::kMaxHoyer,
                        sparsity::PtStrategy::kMinNorm,
                        sparsity::PtStrategy::kAdaH}) {
    DiffOdeConfig config = FastConfig(2);
    config.pt_strategy = strategy;
    DiffOde model(config);
    EXPECT_TRUE(model.ClassifyLogits(s).value().AllFinite());
  }
}

TEST(DiffOdeModelTest, MultiHeadVariantsRun) {
  data::IrregularSeries s = MakeSeries(6, 2, 5);
  for (Index heads : {1, 2, 4}) {
    DiffOdeConfig config = FastConfig(2);
    config.num_heads = heads;
    DiffOde model(config);
    EXPECT_TRUE(model.ClassifyLogits(s).value().AllFinite()) << heads;
  }
}

TEST(DiffOdeModelTest, ParameterCountPositiveAndStable) {
  DiffOde model(FastConfig(2));
  const Index n1 = model.NumParams();
  EXPECT_GT(n1, 100);
  EXPECT_EQ(model.NumParams(), n1);
}

TEST(DiffOdeModelTest, ClassificationLossDecreasesWithTraining) {
  DiffOdeConfig config = FastConfig(1);
  DiffOde model(config);
  // Two easily separable series: constant +1 vs constant -1.
  data::IrregularSeries pos = MakeSeries(5, 1, 6);
  data::IrregularSeries neg = MakeSeries(5, 1, 7);
  for (Index i = 0; i < 5; ++i) {
    pos.values.at(i, 0) = 1.0;
    neg.values.at(i, 0) = -1.0;
  }
  pos.label = 1;
  neg.label = 0;
  nn::Adam opt(model.Params(), 0.02);
  Scalar first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 30; ++step) {
    ag::Var loss_p = ag::SoftmaxCrossEntropy(model.ClassifyLogits(pos), {1});
    ag::Var loss_n = ag::SoftmaxCrossEntropy(model.ClassifyLogits(neg), {0});
    ag::Var loss = ag::Add(loss_p, loss_n);
    const Scalar value = loss.value().item();
    if (step == 0) first_loss = value;
    last_loss = value;
    loss.Backward();
    opt.StepAndZero();
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
}

TEST(DiffOdeModelTest, RegressionLossDecreasesWithTraining) {
  DiffOdeConfig config = FastConfig(1);
  config.step = 1.0;
  DiffOde model(config);
  data::IrregularSeries s = MakeSeries(6, 1, 8);
  std::vector<Scalar> targets_t = {s.times[1], s.times[3], s.times[4]};
  Tensor target(Shape{3, 1});
  for (int i = 0; i < 3; ++i) target.at(i, 0) = 0.5;
  nn::Adam opt(model.Params(), 0.02);
  Scalar first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 30; ++step) {
    auto preds = model.PredictAt(s, targets_t);
    ag::Var loss = ag::MseLoss(ag::ConcatRows(preds), target);
    const Scalar value = loss.value().item();
    if (step == 0) first_loss = value;
    last_loss = value;
    loss.Backward();
    opt.StepAndZero();
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
}

TEST(DiffOdeModelTest, AttentionTrajectoryRowsAreDistributions) {
  DiffOde model(FastConfig(2));
  data::IrregularSeries s = MakeSeries(8, 2, 9);
  auto rows = model.AttentionTrajectory(s);
  ASSERT_EQ(rows.size(), 8u);
  for (const auto& p : rows) {
    EXPECT_NEAR(p.Sum(), 1.0, 1e-10);
    for (Index i = 0; i < p.numel(); ++i) EXPECT_GE(p[i], 0.0);
  }
}

TEST(DiffOdeModelTest, DeterministicAcrossIdenticalSeeds) {
  DiffOdeConfig config = FastConfig(2);
  DiffOde m1(config), m2(config);
  data::IrregularSeries s = MakeSeries(6, 2, 10);
  Tensor l1 = m1.ClassifyLogits(s).value();
  Tensor l2 = m2.ClassifyLogits(s).value();
  EXPECT_EQ((l1 - l2).MaxAbs(), 0.0);
}

TEST(DiffOdeModelTest, SparseMaskHandled) {
  DiffOde model(FastConfig(2));
  data::IrregularSeries s = MakeSeries(6, 2, 11);
  // Zero out most of the mask.
  for (Index i = 0; i < 6; ++i)
    for (Index j = 0; j < 2; ++j) s.mask.at(i, j) = (i + j) % 2;
  EXPECT_TRUE(model.ClassifyLogits(s).value().AllFinite());
}

}  // namespace
}  // namespace diffode::core
