// Cross-module integration tests: full DIFFODE + datasets + trainer + task
// views, weight checkpointing, and the model-zoo interface used by the
// benchmark harness.

#include <gtest/gtest.h>

#include <cstdio>

#include "autograd/ops.h"
#include "baselines/zoo.h"
#include "bench_common.h"
#include "core/diffode_model.h"
#include "data/generators.h"
#include "data/splits.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "train/trainer.h"

namespace diffode {
namespace {

core::DiffOdeConfig SmallConfig(Index f) {
  core::DiffOdeConfig config;
  config.input_dim = f;
  config.latent_dim = 8;
  config.hippo_dim = 6;
  config.info_dim = 6;
  config.mlp_hidden = 12;
  config.step = 1.0;
  return config;
}

TEST(IntegrationTest, DiffOdeOnEveryGeneratedDataset) {
  // The model must produce finite outputs on every dataset family's raw
  // samples (different feature counts, sparsity patterns and time scales).
  data::SyntheticPeriodicConfig syn;
  syn.num_series = 12;
  data::UshcnLikeConfig ushcn;
  ushcn.num_stations = 8;
  ushcn.num_days = 50;
  data::PhysioNetLikeConfig physio;
  physio.num_patients = 8;
  physio.num_channels = 6;
  physio.max_obs_per_patient = 20;
  data::LargeStLikeConfig traffic;
  traffic.num_sensors = 8;
  traffic.hours_per_sensor = 24 * 3;
  data::DynamicalSystemConfig lorenz;
  lorenz.dim = 6;
  lorenz.trajectory_steps = 150;
  lorenz.window = 25;

  std::vector<data::Dataset> datasets;
  datasets.push_back(data::MakeSyntheticPeriodic(syn));
  datasets.push_back(data::MakeUshcnLike(ushcn));
  datasets.push_back(data::MakePhysioNetLike(physio));
  datasets.push_back(data::MakeLargeStLike(traffic));
  datasets.push_back(data::MakeLorenz96(lorenz));
  for (auto& ds : datasets) {
    data::NormalizeDataset(&ds);
    core::DiffOde model(SmallConfig(ds.num_features));
    const auto& s = ds.train.front();
    if (ds.num_classes > 0) {
      EXPECT_TRUE(model.ClassifyLogits(s).value().AllFinite()) << ds.name;
    }
    auto preds = model.PredictAt(
        s, {s.times.front(), 0.5 * (s.times.front() + s.times.back()),
            s.times.back() + 1.0});
    for (const auto& p : preds)
      EXPECT_TRUE(p.value().AllFinite()) << ds.name;
  }
}

TEST(IntegrationTest, InterpolationViewRoundTripThroughTrainer) {
  data::UshcnLikeConfig config;
  config.num_stations = 12;
  config.num_days = 40;
  data::Dataset ds = data::MakeUshcnLike(config);
  data::NormalizeDataset(&ds);
  core::DiffOde model(SmallConfig(5));
  train::TrainOptions options;
  options.epochs = 2;
  options.batch_size = 4;
  options.patience = 5;
  train::FitResult fit = train::TrainRegressor(
      &model, ds, train::RegressionTask::kInterpolation, options);
  EXPECT_EQ(fit.epochs_run, 2);
  EXPECT_TRUE(std::isfinite(fit.train_losses.back()));
  const Scalar mse = train::EvaluateMse(
      &model, ds.test, train::RegressionTask::kInterpolation, 0.3, 3);
  EXPECT_GT(mse, 0.0);
  EXPECT_TRUE(std::isfinite(mse));
}

TEST(IntegrationTest, AuxiliaryLossProducedAndCleared) {
  data::SyntheticPeriodicConfig config;
  config.num_series = 8;
  data::Dataset ds = data::MakeSyntheticPeriodic(config);
  core::DiffOde model(SmallConfig(1));
  ASSERT_FALSE(model.TakeAuxiliaryLoss().defined());  // nothing yet
  model.ClassifyLogits(ds.train.front());
  ag::Var aux = model.TakeAuxiliaryLoss();
  ASSERT_TRUE(aux.defined());
  EXPECT_GE(aux.value().item(), 0.0);
  // Taking it clears it.
  EXPECT_FALSE(model.TakeAuxiliaryLoss().defined());
}

TEST(IntegrationTest, HoyerRegularizerProducesLossAndSharpensAttention) {
  data::SyntheticPeriodicConfig config;
  config.num_series = 8;
  data::Dataset ds = data::MakeSyntheticPeriodic(config);
  core::DiffOdeConfig mconfig = SmallConfig(1);
  mconfig.consistency_weight = 0.0;
  mconfig.hoyer_weight = 1.0;
  core::DiffOde model(mconfig);
  const auto& sample = ds.train.front();
  model.ClassifyLogits(sample);
  ag::Var aux = model.TakeAuxiliaryLoss();
  ASSERT_TRUE(aux.defined());
  const Scalar before = aux.value().item();
  EXPECT_GT(before, 0.0);  // 1 - Hoyer in (0, 1) for non-degenerate rows
  EXPECT_LT(before, 1.0);
  // A few steps of minimizing only the Hoyer term must sharpen attention.
  nn::Adam opt(model.Params(), 0.05);
  Scalar last = before;
  for (int step = 0; step < 10; ++step) {
    model.ClassifyLogits(sample);
    ag::Var loss = model.TakeAuxiliaryLoss();
    last = loss.value().item();
    loss.Backward();
    opt.StepAndZero();
  }
  EXPECT_LT(last, before);
}

TEST(IntegrationTest, ConsistencyLossDisabledWhenWeightZero) {
  data::SyntheticPeriodicConfig config;
  config.num_series = 8;
  data::Dataset ds = data::MakeSyntheticPeriodic(config);
  core::DiffOdeConfig mconfig = SmallConfig(1);
  mconfig.consistency_weight = 0.0;
  core::DiffOde model(mconfig);
  model.ClassifyLogits(ds.train.front());
  EXPECT_FALSE(model.TakeAuxiliaryLoss().defined());
}

TEST(IntegrationTest, CheckpointRoundTripPreservesPredictions) {
  data::SyntheticPeriodicConfig config;
  config.num_series = 8;
  data::Dataset ds = data::MakeSyntheticPeriodic(config);
  core::DiffOde model(SmallConfig(1));
  const auto& s = ds.train.front();
  Tensor before = model.ClassifyLogits(s).value();
  const std::string path = ::testing::TempDir() + "/diffode_ckpt.bin";
  auto params = model.Params();
  ASSERT_TRUE(nn::SaveParams(params, path));
  // Perturb every parameter, then restore.
  for (auto& p : params) p.mutable_value() += 0.5;
  Tensor perturbed = model.ClassifyLogits(s).value();
  EXPECT_GT((perturbed - before).MaxAbs(), 0.0);
  auto reload = model.Params();
  ASSERT_TRUE(nn::LoadParams(&reload, path));
  Tensor after = model.ClassifyLogits(s).value();
  EXPECT_LT((after - before).MaxAbs(), 1e-12);
  std::remove(path.c_str());
}

TEST(IntegrationTest, CheckpointRejectsArchitectureMismatch) {
  core::DiffOde small(SmallConfig(1));
  core::DiffOdeConfig big_config = SmallConfig(1);
  big_config.latent_dim = 12;
  core::DiffOde big(big_config);
  const std::string path = ::testing::TempDir() + "/diffode_mismatch.bin";
  auto small_params = small.Params();
  ASSERT_TRUE(nn::SaveParams(small_params, path));
  auto big_params = big.Params();
  EXPECT_FALSE(nn::LoadParams(&big_params, path));
  std::remove(path.c_str());
}

TEST(IntegrationTest, TrainerRestoresBestValidationWeights) {
  // With lr large enough to oscillate, the returned model must match the
  // best validation epoch, i.e. final val accuracy >= a fresh evaluation
  // of the last epoch would suggest. We verify indirectly: train, then
  // evaluating the val split must reproduce best_val_metric.
  data::SyntheticPeriodicConfig config;
  config.num_series = 60;
  config.grid_points = 12;
  data::Dataset ds = data::MakeSyntheticPeriodic(config);
  baselines::BaselineConfig bconfig;
  bconfig.input_dim = 1;
  bconfig.hidden_dim = 8;
  auto model = baselines::MakeBaseline("GRU", bconfig);
  train::TrainOptions options;
  options.epochs = 6;
  options.lr = 5e-3;
  options.patience = 6;
  train::FitResult fit = train::TrainClassifier(model.get(), ds, options);
  const Scalar val_now = train::EvaluateAccuracy(model.get(), ds.val);
  EXPECT_NEAR(val_now, fit.best_val_metric, 1e-12);
}

TEST(IntegrationTest, BenchModelFactoryCoversEveryName) {
  bench::ModelSpec spec;
  spec.input_dim = 2;
  for (const auto& name : baselines::BaselineNames()) {
    auto model = bench::MakeModel(name, spec);
    EXPECT_EQ(model->name(), name);
  }
  EXPECT_EQ(bench::MakeModel("DIFFODE", spec)->name(), "DIFFODE");
}

}  // namespace
}  // namespace diffode
