#include "ode/adjoint.h"

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "nn/mlp.h"
#include "tensor/random.h"

namespace diffode::ode {
namespace {

TEST(AdjointTest, ForwardOnlyMatchesIntegrateVar) {
  DiffOdeFunc f = [](Scalar, const ag::Var& y) { return ag::Neg(y); };
  DiffSolveOptions options;
  options.method = DiffMethod::kRk4;
  options.step = 0.1;
  Tensor y0 = Tensor::Full(Shape{1, 3}, 2.0);
  Tensor fast = ForwardOnly(f, y0, 0.0, 1.5, options);
  Tensor taped = IntegrateVar(f, ag::Constant(y0), 0.0, 1.5, options).value();
  EXPECT_LT((fast - taped).MaxAbs(), 1e-14);
}

TEST(AdjointTest, Dy0MatchesUnrolledTapeLinearSystem) {
  Rng rng(1);
  Tensor a = rng.NormalTensor(Shape{3, 3}, 0.0, 0.4);
  ag::Var a_var = ag::Param(a);
  DiffOdeFunc f = [&](Scalar, const ag::Var& y) {
    return ag::MatMul(y, ag::Transpose(a_var));
  };
  DiffSolveOptions options;
  options.method = DiffMethod::kRk4;
  options.step = 0.1;
  Tensor y0 = rng.NormalTensor(Shape{1, 3});
  Tensor seed = rng.NormalTensor(Shape{1, 3});

  // Unrolled tape reference.
  a_var.ZeroGrad();
  ag::Var y0_var = ag::Var(y0, /*requires_grad=*/true);
  ag::Var y1 = IntegrateVar(f, y0_var, 0.0, 1.0, options);
  y1.Backward(seed);
  Tensor ref_dy0 = y0_var.grad();
  Tensor ref_da = a_var.grad();

  // Checkpointed adjoint.
  a_var.ZeroGrad();
  AdjointResult result = AdjointSolve(f, y0, 0.0, 1.0, seed, options);
  EXPECT_LT((result.y1 - y1.value()).MaxAbs(), 1e-12);
  EXPECT_LT((result.dy0 - ref_dy0).MaxAbs(), 1e-10);
  EXPECT_LT((a_var.grad() - ref_da).MaxAbs(), 1e-10);
}

TEST(AdjointTest, MatchesUnrolledTapeThroughNeuralField) {
  Rng rng(2);
  nn::Mlp field({4, 8, 4}, rng);
  DiffOdeFunc f = [&](Scalar, const ag::Var& y) {
    return ag::Tanh(field.Forward(y));
  };
  DiffSolveOptions options;
  options.method = DiffMethod::kMidpoint;
  options.step = 0.2;
  Tensor y0 = rng.NormalTensor(Shape{1, 4});
  Tensor seed = rng.NormalTensor(Shape{1, 4});
  auto params = field.Params();

  for (auto& p : params) p.ZeroGrad();
  ag::Var y0_var = ag::Var(y0, true);
  IntegrateVar(f, y0_var, 0.0, 1.0, options).Backward(seed);
  std::vector<Tensor> ref_grads;
  for (auto& p : params) ref_grads.push_back(p.grad());
  Tensor ref_dy0 = y0_var.grad();

  for (auto& p : params) p.ZeroGrad();
  AdjointResult result = AdjointSolve(f, y0, 0.0, 1.0, seed, options);
  EXPECT_LT((result.dy0 - ref_dy0).MaxAbs(), 1e-10);
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_LT((params[i].grad() - ref_grads[i]).MaxAbs(), 1e-10) << i;
}

TEST(AdjointTest, AnalyticLinearDecayGradient) {
  // y' = -k y: y(1) = y0 e^{-k}, so dL/dy0 = seed * e^{-k}.
  const Scalar k = 0.7;
  DiffOdeFunc f = [k](Scalar, const ag::Var& y) {
    return ag::MulScalar(y, -k);
  };
  DiffSolveOptions options;
  options.method = DiffMethod::kRk4;
  options.step = 0.05;
  Tensor y0 = Tensor::Full(Shape{1, 1}, 2.0);
  Tensor seed = Tensor::Full(Shape{1, 1}, 1.0);
  AdjointResult result = AdjointSolve(f, y0, 0.0, 1.0, seed, options);
  EXPECT_NEAR(result.dy0.item(), std::exp(-k), 1e-7);
}

TEST(AdjointTest, BackwardTimeInterval) {
  DiffOdeFunc f = [](Scalar, const ag::Var& y) { return ag::Neg(y); };
  DiffSolveOptions options;
  options.method = DiffMethod::kRk4;
  options.step = 0.05;
  Tensor y0 = Tensor::Ones(Shape{1, 1});
  Tensor seed = Tensor::Ones(Shape{1, 1});
  // Integrating backward in time: y(-1) = y0 * e^{1}; dy0 = e^{1}.
  AdjointResult result = AdjointSolve(f, y0, 0.0, -1.0, seed, options);
  EXPECT_NEAR(result.y1.item(), std::exp(1.0), 1e-6);
  EXPECT_NEAR(result.dy0.item(), std::exp(1.0), 1e-6);
}

TEST(AdjointTest, ZeroIntervalIsIdentity) {
  DiffOdeFunc f = [](Scalar, const ag::Var& y) { return ag::Neg(y); };
  Tensor y0 = Tensor::Full(Shape{1, 2}, 3.0);
  Tensor seed = Tensor::Ones(Shape{1, 2});
  AdjointResult result = AdjointSolve(f, y0, 1.0, 1.0, seed);
  EXPECT_EQ((result.y1 - y0).MaxAbs(), 0.0);
  EXPECT_EQ((result.dy0 - seed).MaxAbs(), 0.0);
}

}  // namespace
}  // namespace diffode::ode
