#include "baselines/zoo.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "baselines/nrde.h"
#include "nn/optimizer.h"
#include "tensor/random.h"

namespace diffode::baselines {
namespace {

data::IrregularSeries MakeSeries(Index n, Index f, std::uint64_t seed,
                                 Scalar level = 0.0) {
  Rng rng(seed);
  data::IrregularSeries s;
  s.values = Tensor(Shape{n, f});
  s.mask = Tensor::Ones(Shape{n, f});
  Scalar t = 0.0;
  for (Index i = 0; i < n; ++i) {
    t += rng.Uniform(0.2, 1.0);
    s.times.push_back(t);
    for (Index j = 0; j < f; ++j)
      s.values.at(i, j) = level + 0.3 * std::sin(t + j);
  }
  s.label = level > 0 ? 1 : 0;
  return s;
}

BaselineConfig FastConfig(Index f) {
  BaselineConfig config;
  config.input_dim = f;
  config.hidden_dim = 8;
  config.mlp_hidden = 12;
  config.hippo_dim = 6;
  config.num_classes = 2;
  config.step = 1.0;
  return config;
}

class BaselineZooTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineZooTest, ClassifyShapeAndFiniteness) {
  auto model = MakeBaseline(GetParam(), FastConfig(2));
  data::IrregularSeries s = MakeSeries(6, 2, 1);
  ag::Var logits = model->ClassifyLogits(s);
  EXPECT_EQ(logits.rows(), 1);
  EXPECT_EQ(logits.cols(), 2);
  EXPECT_TRUE(logits.value().AllFinite());
}

TEST_P(BaselineZooTest, PredictShapesIncludingExtrapolation) {
  auto model = MakeBaseline(GetParam(), FastConfig(2));
  data::IrregularSeries s = MakeSeries(7, 2, 2);
  std::vector<Scalar> queries = {s.times[2], s.times.back() + 0.7};
  auto preds = model->PredictAt(s, queries);
  ASSERT_EQ(preds.size(), 2u);
  for (const auto& p : preds) {
    EXPECT_EQ(p.rows(), 1);
    EXPECT_EQ(p.cols(), 2);
    EXPECT_TRUE(p.value().AllFinite());
  }
}

TEST_P(BaselineZooTest, HasTrainableParametersExceptHippoObs) {
  auto model = MakeBaseline(GetParam(), FastConfig(2));
  EXPECT_GT(model->NumParams(), 0);
}

TEST_P(BaselineZooTest, ClassificationGradientStepReducesLoss) {
  auto model = MakeBaseline(GetParam(), FastConfig(1));
  data::IrregularSeries pos = MakeSeries(5, 1, 3, 1.0);
  data::IrregularSeries neg = MakeSeries(5, 1, 4, -1.0);
  nn::Adam opt(model->Params(), 0.02);
  Scalar first = 0.0, last = 0.0;
  for (int step = 0; step < 25; ++step) {
    ag::Var loss = ag::Add(
        ag::SoftmaxCrossEntropy(model->ClassifyLogits(pos), {1}),
        ag::SoftmaxCrossEntropy(model->ClassifyLogits(neg), {0}));
    if (step == 0) first = loss.value().item();
    last = loss.value().item();
    loss.Backward();
    opt.StepAndZero();
  }
  EXPECT_LT(last, first) << GetParam();
}

TEST_P(BaselineZooTest, SparseMaskHandled) {
  auto model = MakeBaseline(GetParam(), FastConfig(3));
  data::IrregularSeries s = MakeSeries(6, 3, 5);
  for (Index i = 0; i < 6; ++i)
    for (Index j = 0; j < 3; ++j) s.mask.at(i, j) = (i + j) % 2;
  EXPECT_TRUE(model->ClassifyLogits(s).value().AllFinite());
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineZooTest,
                         ::testing::ValuesIn(BaselineNames()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

TEST(ZooTest, FourteenBaselines) {
  // The paper's twelve plus our extra Neural CDE and ODE-LSTM.
  EXPECT_EQ(BaselineNames().size(), 14u);
}

// ---------------------------------------------------------------------------
// NRDE log-signature unit checks.
// ---------------------------------------------------------------------------

TEST(LogSignatureTest, IncrementsMatchEndpoints) {
  Tensor path = Tensor::FromRows(3, 2, {0, 0, 1, 2, 3, 1});
  Tensor sig = NrdeBaseline::LogSignature2(path);
  EXPECT_DOUBLE_EQ(sig.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sig.at(0, 1), 1.0);
}

TEST(LogSignatureTest, LevyAreaAntisymmetricUnderChannelSwap) {
  Rng rng(6);
  Tensor path = rng.NormalTensor(Shape{6, 2});
  Tensor sig = NrdeBaseline::LogSignature2(path);
  // Swap the two channels.
  Tensor swapped(path.shape());
  for (Index i = 0; i < 6; ++i) {
    swapped.at(i, 0) = path.at(i, 1);
    swapped.at(i, 1) = path.at(i, 0);
  }
  Tensor sig_swapped = NrdeBaseline::LogSignature2(swapped);
  EXPECT_NEAR(sig.at(0, 2), -sig_swapped.at(0, 2), 1e-12);
}

TEST(LogSignatureTest, StraightLineHasZeroArea) {
  // A straight-line path encloses no area.
  Tensor path(Shape{5, 2});
  for (Index i = 0; i < 5; ++i) {
    path.at(i, 0) = static_cast<Scalar>(i);
    path.at(i, 1) = 2.0 * static_cast<Scalar>(i);
  }
  Tensor sig = NrdeBaseline::LogSignature2(path);
  EXPECT_NEAR(sig.at(0, 2), 0.0, 1e-12);
}

TEST(LogSignatureTest, UnitSquareLoopArea) {
  // Closed unit square traversed counter-clockwise: increments 0, area 1.
  Tensor path = Tensor::FromRows(5, 2, {0, 0, 1, 0, 1, 1, 0, 1, 0, 0});
  Tensor sig = NrdeBaseline::LogSignature2(path);
  EXPECT_NEAR(sig.at(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(sig.at(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(sig.at(0, 2), 1.0, 1e-12);
}

}  // namespace
}  // namespace diffode::baselines
